// Figure 3: simulated selection speedup of JAFAR over CPU-only execution as a
// function of query selectivity, on the gem5-like platform (Table 1, left).
//
// Paper setup (§3.1–3.2): 4M rows of uniformly distributed random integers in
// [0, 1M), unsorted and unindexed; single-column range select; selectivity
// swept 0%..100%; the CPU spin-waits while JAFAR runs (no memory contention);
// the CPU baseline does NOT use predication. Expected shape: speedup grows
// from ~5x at 0% selectivity to ~9x at 100%.
//
// Points run in parallel across NDP_BENCH_THREADS workers; each point owns a
// fresh SystemModel, so the output is byte-identical at any thread count.
//
// Device generations: with NDP_DEVICE_GEN unset the sweep runs v1_rank_io and
// v2_bank_level head-to-head (one table per generation); set, it pins the
// sweep to that generation — and a v1_rank_io pin reproduces the pre-refactor
// output byte for byte.
//
// Environment overrides: FIG3_ROWS (default 4194304), FIG3_STEP (default 10),
// NDP_DEVICE_GEN, NDP_BENCH_THREADS (default hardware concurrency).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/api.h"

int main() {
  using namespace ndp;
  const uint64_t rows = bench::EnvU64("FIG3_ROWS", 4u * 1024 * 1024);
  const uint64_t step = bench::EnvU64("FIG3_STEP", 10);
  const std::vector<jafar::DeviceGeneration> gens = bench::EnvGenerations();
  const bool pinned = gens.size() == 1;

  bench::PrintHeader(
      "Figure 3 — JAFAR speedup on selects vs. selectivity "
      "(gem5-like platform, " +
      std::to_string(rows) + " uniform random rows)");

  db::Column col = bench::UniformColumn(rows);

  std::vector<uint64_t> pcts;
  for (uint64_t pct = 0; pct <= 100; pct += step) pcts.push_back(pct);

  struct PointResult {
    uint64_t pct = 0;
    uint64_t cpu_ps = 0, jafar_ps = 0;
    uint64_t cpu_matches = 0, jafar_matches = 0;
    uint64_t cpu_mispredicts = 0, pages = 0;
    double accel_frac = 0;
    StatsSnapshot cpu_counters, jafar_counters;
  };
  // The sweep is (generation x selectivity), generation-major: results for
  // gens[g] live at [g * pcts.size(), (g + 1) * pcts.size()).
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      gens.size() * pcts.size(), [&](size_t i) {
        // Each point runs on a fresh system so bank/cache state is identical.
        PointResult r;
        r.pct = pcts[i % pcts.size()];
        core::PlatformConfig plat = core::PlatformConfig::Gem5();
        plat.device_gen = gens[i / pcts.size()];
        core::SystemModel sys(plat);
        // Selectivity via the range's upper bound over the [0, 1M) domain.
        int64_t hi = static_cast<int64_t>(r.pct * 10000) - 1;
        auto cpu = sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
                       .ValueOrDie();
        auto jaf = sys.RunJafarSelect(col, 0, hi).ValueOrDie();
        r.cpu_ps = cpu.duration_ps;
        r.jafar_ps = jaf.duration_ps;
        r.cpu_matches = cpu.matches;
        r.jafar_matches = jaf.matches;
        r.cpu_mispredicts = cpu.stats.mispredicts;
        // Fraction of the JAFAR run spent inside the accelerated region, i.e.
        // excluding per-page invocation overhead and the ownership hand-off
        // (§3.1: the paper reports 93%).
        r.pages = jaf.stats.jobs_completed;
        sim::Tick overhead_ps =
            r.pages * sys.jafar().config().invocation_overhead_cycles *
                sys.jafar().config().clock.period_ps() +
            jaf.ownership_ps;
        r.accel_frac = 1.0 - static_cast<double>(overhead_ps) /
                                 static_cast<double>(jaf.duration_ps);
        r.cpu_counters = cpu.counters;
        r.jafar_counters = jaf.counters;
        return r;
      });

  bench::Reporter report("fig3");
  {
    core::PlatformConfig plat = core::PlatformConfig::Gem5();
    report.Config("rows", static_cast<double>(rows))
        .Config("step", static_cast<double>(step))
        .Config("platform", "gem5")
        .Config("generations",
                bench::GenerationsConfigJson(gens, plat.dram_timing,
                                             plat.dram_org,
                                             plat.jafar_datapath));
  }

  double min_speedup = 1e30, max_speedup = 0;
  for (size_t g = 0; g < gens.size(); ++g) {
    const char* gen_name = jafar::DeviceGenerationToString(gens[g]);
    if (!pinned) std::printf("\n---- generation: %s ----\n", gen_name);
    std::printf(
        "\n%-12s %-14s %-14s %-10s %-12s %-12s %-10s\n", "selectivity",
        "cpu_time_ms", "jafar_time_ms", "speedup", "cpu_misp", "jafar_pages",
        "accel_frac");
    for (size_t i = 0; i < pcts.size(); ++i) {
      const PointResult& r = results[g * pcts.size() + i];
      if (r.cpu_matches != r.jafar_matches) {
        std::fprintf(stderr, "MISMATCH at %llu%% (%s): cpu=%llu jafar=%llu\n",
                     (unsigned long long)r.pct, gen_name,
                     (unsigned long long)r.cpu_matches,
                     (unsigned long long)r.jafar_matches);
        return 1;
      }
      double speedup =
          static_cast<double>(r.cpu_ps) / static_cast<double>(r.jafar_ps);
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      std::printf("%9llu%%  %-14.3f %-14.3f %-10.2f %-12llu %-12llu %-10.3f\n",
                  (unsigned long long)r.pct, bench::Ms(r.cpu_ps),
                  bench::Ms(r.jafar_ps), speedup,
                  (unsigned long long)r.cpu_mispredicts,
                  (unsigned long long)r.pages, r.accel_frac);
      std::string label = std::to_string(r.pct) + "%";
      if (!pinned) label += std::string(" ") + gen_name;
      report.AddPoint(label)
          .Metric("selectivity_pct", static_cast<double>(r.pct))
          .Metric("cpu_time_ms", bench::Ms(r.cpu_ps))
          .Metric("jafar_time_ms", bench::Ms(r.jafar_ps))
          .Metric("speedup", speedup)
          .Metric("matches", static_cast<double>(r.cpu_matches))
          .Metric("cpu_mispredicts", static_cast<double>(r.cpu_mispredicts))
          .Metric("jafar_pages", static_cast<double>(r.pages))
          .Metric("accel_frac", r.accel_frac)
          .Counters("cpu", r.cpu_counters)
          .Counters("jafar", r.jafar_counters);
    }
  }

  std::printf(
      "\nPaper: speedup rises from ~5x (0%% selectivity) to ~9x (100%%).\n");
  std::printf("Measured: %.2fx .. %.2fx (ratio %.2f; paper ratio 9/5 = 1.80)\n",
              min_speedup, max_speedup, max_speedup / min_speedup);

  // §2.2 wait-time observation, from the device counters of a 50% run.
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  std::printf(
      "JAFAR wait fraction: %.2f of each access spent waiting on DRAM "
      "(paper: ~9 of 13 ns = 0.69)\n",
      jaf.stats.WaitFraction());
  report.Config("wait_fraction_at_50pct", jaf.stats.WaitFraction());
  return report.WriteJson() ? 0 : 1;
}
