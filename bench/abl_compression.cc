// Ablation — §4 "Indexing and Compression": does NDP obviate compression?
// No — they compound. Frame-of-reference encoding halves the bytes any scan
// must stream, so the compressed JAFAR scan (packed 32-bit datapath on
// rewritten predicates) is ~2x faster again than the raw JAFAR scan, exactly
// as it is for the CPU.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"
#include "db/compression.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation — FOR compression x NDP (" +
                     std::to_string(rows) + " rows, 50% selectivity)");
  // Values in a narrow band around 5M: FOR-compressible to 32-bit deltas.
  db::Column col = db::Column::Int64("v");
  Rng rng(3);
  for (uint64_t i = 0; i < rows; ++i) {
    col.Append(5000000 + rng.NextInRange(0, 999999));
  }
  auto enc = db::ForEncodedColumn::Encode(col).ValueOrDie();
  int64_t vlo = 5000000, vhi = 5499999;
  int64_t clo, chi;
  NDP_CHECK(enc.CodeRangeFor(vlo, vhi, &clo, &chi));

  // (1) CPU on raw 64-bit data.
  core::SystemModel sys_raw(core::PlatformConfig::Gem5());
  auto cpu_raw = sys_raw.RunCpuSelect(col, vlo, vhi, db::SelectMode::kBranching)
                     .ValueOrDie();
  // (2) JAFAR on raw 64-bit data.
  auto jafar_raw = sys_raw.RunJafarSelect(col, vlo, vhi).ValueOrDie();

  // (3) JAFAR on FOR-encoded data (packed 32-bit lanes).
  core::PlatformConfig p = core::PlatformConfig::Gem5();
  core::SystemModel sys_enc(p);
  jafar::DeviceConfig dcfg = sys_enc.jafar().config();
  dcfg.elem_bytes = 4;
  jafar::Device enc_device(&sys_enc.dram(), 0, 0, dcfg);
  uint64_t code_base = sys_enc.Allocate(enc.SizeBytes(), 4096);
  sys_enc.dram().backing_store().Write(code_base, enc.codes(), enc.SizeBytes());
  uint64_t out = sys_enc.Allocate((rows + 7) / 8 + 64, 4096);
  bool granted = false;
  sys_enc.dram().controller(0).TransferOwnership(
      0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
  sys_enc.eq().RunUntilTrue([&] { return granted; });
  jafar::SelectJob job;
  job.col_base = code_base;
  job.num_rows = rows;
  job.range_low = clo;
  job.range_high = chi;
  job.out_base = out;
  bool done = false;
  sim::Tick start = sys_enc.eq().Now(), end = 0;
  NDP_CHECK(enc_device.StartSelect(job, [&](sim::Tick t) {
    done = true;
    end = t;
  }).ok());
  sys_enc.eq().RunUntilTrue([&] { return done; });
  double jafar_enc_ms = bench::Ms(end - start);
  NDP_CHECK(enc_device.last_match_count() == cpu_raw.matches);
  NDP_CHECK(jafar_raw.matches == cpu_raw.matches);

  std::printf("\n%-40s %-12s %-12s %-14s\n", "configuration", "bytes_moved",
              "time_ms", "vs_cpu_raw");
  double cpu_ms = bench::Ms(cpu_raw.duration_ps);
  std::printf("%-40s %-12llu %-12.3f %-14.2f\n", "CPU, raw int64",
              (unsigned long long)(rows * 8), cpu_ms, 1.0);
  std::printf("%-40s %-12llu %-12.3f %-14.2f\n", "JAFAR, raw int64",
              (unsigned long long)(rows * 8), bench::Ms(jafar_raw.duration_ps),
              cpu_ms / bench::Ms(jafar_raw.duration_ps));
  std::printf("%-40s %-12llu %-12.3f %-14.2f\n",
              "JAFAR, FOR-encoded (32-bit lanes)",
              (unsigned long long)enc.SizeBytes(), jafar_enc_ms,
              cpu_ms / jafar_enc_ms);
  std::printf(
      "\nExpected: compression and NDP compound — the encoded NDP scan moves\n"
      "half the bytes and doubles the raw NDP speedup; NDP does not obviate\n"
      "compression (§4), it multiplies with it.\n");
  return 0;
}
