// Ablation — memory-controller row-buffer policy (context for §3.3's
// "reordering DRAM reads and writes can provide large increases in memory
// bandwidth"): open-page rewards the streaming locality database scans (and
// JAFAR) live on; closed-page rewards random traffic. Reports mean read
// latency per workload x policy.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

namespace {

double MeanReadLatencyNs(dram::PagePolicy policy, bool sequential,
                         int requests) {
  sim::EventQueue eq;
  dram::DramOrganization org;
  org.rows_per_bank = 8192;
  dram::ControllerConfig cfg;
  cfg.page_policy = policy;
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous, cfg);
  Rng rng(7);
  double total_ns = 0;
  int done = 0;
  sim::Tick issue_gap = 100 * dram.timing().tck_ps;  // light, latency-bound load
  for (int i = 0; i < requests; ++i) {
    uint64_t addr = sequential
                        ? static_cast<uint64_t>(i) * 64
                        : (rng.NextU64() % org.TotalBytes()) & ~uint64_t{63};
    sim::Tick issued = eq.Now();
    dram::Request req;
    req.addr = addr;
    req.on_complete = [&total_ns, &done, issued](sim::Tick t) {
      total_ns += static_cast<double>(t - issued) / 1000.0;
      ++done;
    };
    while (!dram.EnqueueRequest(req).ok()) {
      eq.RunUntil(eq.Now() + issue_gap);  // backpressure: wait for queue room
    }
    eq.RunUntil(eq.Now() + issue_gap);
  }
  NDP_CHECK(eq.RunUntilTrue([&] { return done == requests; }));
  return total_ns / requests;
}

}  // namespace

int main() {
  const int requests = static_cast<int>(bench::EnvU64("ABL_ROWS", 20000));
  bench::PrintHeader("Ablation — row-buffer page policy (" +
                     std::to_string(requests) +
                     " latency-bound reads per cell)");
  std::printf("\n%-14s %-22s %-22s\n", "policy", "sequential_lat_ns",
              "random_lat_ns");
  for (auto [policy, name] :
       {std::pair{dram::PagePolicy::kOpen, "open-page"},
        std::pair{dram::PagePolicy::kClosed, "closed-page"}}) {
    double seq = MeanReadLatencyNs(policy, true, requests);
    double rnd = MeanReadLatencyNs(policy, false, requests);
    std::printf("%-14s %-22.1f %-22.1f\n", name, seq, rnd);
  }
  std::printf(
      "\nExpected: open-page wins sequential scans (row hits skip tRCD);\n"
      "closed-page wins random traffic (precharge is off the critical\n"
      "path). Database scans — and JAFAR — are the sequential case, which\n"
      "is why the open-row interruptions of §3.3 are so costly.\n");
  return 0;
}
