// Ablation — pushdown planning on real query plans: runs TPC-H Q6 (the most
// select-heavy Figure 4 query) through the column-store three ways: CPU only,
// always-pushdown, and cost-model-planned pushdown, reporting the simulated
// select time each plan spends.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const double scale = bench::EnvDouble("ABL_TPCH_SCALE", 0.01);
  bench::PrintHeader("Ablation — select pushdown planning on TPC-H Q6 (scale " +
                     std::to_string(scale) + ")");
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = scale;
  db::tpch::Generate(cfg, &catalog);

  // CPU-only reference result.
  db::QueryContext plain;
  int64_t expected = db::tpch::RunQ6(&plain, &catalog);

  // Always push down.
  core::SystemModel sys_always(core::PlatformConfig::Gem5());
  db::QueryContext always;
  always.ndp_select = sys_always.MakePushdownHook();
  int64_t always_rev = db::tpch::RunQ6(&always, &catalog);
  sim::Tick always_ps = sys_always.eq().Now();

  // Planner-guided.
  core::SystemModel sys_planned(core::PlatformConfig::Gem5());
  core::PushdownPlanner planner(&sys_planned);
  db::QueryContext planned;
  planner.Install(&planned, /*default_selectivity=*/0.15);
  int64_t planned_rev = db::tpch::RunQ6(&planned, &catalog);
  sim::Tick planned_ps = sys_planned.eq().Now();

  NDP_CHECK(always_rev == expected && planned_rev == expected);

  auto count_jafar_ops = [](const db::QueryContext& ctx) {
    int n = 0;
    for (const auto& s : ctx.stats) n += s.op == "scan_select[jafar]";
    return n;
  };
  std::printf("\nQ6 revenue checksum agrees across all three plans: %lld\n",
              static_cast<long long>(expected));
  std::printf("%-28s %-22s %-18s\n", "plan", "selects_on_jafar",
              "sim_select_time_ms");
  std::printf("%-28s %-22d %-18s\n", "CPU only", 0, "(not simulated)");
  std::printf("%-28s %-22d %-18.3f\n", "always push down",
              count_jafar_ops(always), bench::Ms(always_ps));
  std::printf("%-28s %-22d %-18.3f\n", "cost-model planned",
              count_jafar_ops(planned), bench::Ms(planned_ps));
  std::printf(
      "\nNote: Q6's leading select is a full scan (pushdown wins); the two\n"
      "refining selects run on small position lists where the planner keeps\n"
      "them on the CPU.\n");
  return 0;
}
