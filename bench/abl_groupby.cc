// Ablation — §4 grouped aggregation: the device's bucket-SRAM group-by vs.
// the CPU's hash aggregation loop (dependent bucket loads), across group
// counts. Beyond the device's bucket capacity the hierarchical scheme pays
// one full data pass per bucket window — §4's predicted trade-off.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 512u * 1024);
  bench::PrintHeader("Ablation — NDP grouped aggregation (" +
                     std::to_string(rows) + " rows, 256-bucket device SRAM)");

  std::printf("\n%-10s %-10s %-12s %-12s %-10s %-8s\n", "groups", "passes",
              "cpu_ms", "jafar_ms", "speedup", "check");
  bool all_ok = true;
  for (uint32_t groups : {4u, 64u, 256u, 1024u, 4096u}) {
    core::SystemModel sys(core::PlatformConfig::Gem5());
    Rng rng(groups);
    db::Column keys = db::Column::Int64("k");
    db::Column vals = db::Column::Int64("v");
    for (uint64_t i = 0; i < rows; ++i) {
      keys.Append(rng.NextInRange(0, groups - 1));
      vals.Append(rng.NextInRange(0, 999));
    }
    uint64_t key_base = sys.PinColumn(keys);
    uint64_t val_base = sys.PinColumn(vals);
    uint32_t buckets = sys.jafar().config().groupby_buckets;
    uint32_t passes = (groups + buckets - 1) / buckets;
    uint64_t out = sys.Allocate(static_cast<uint64_t>(passes) * buckets * 16,
                                4096);
    uint64_t ht = sys.Allocate(static_cast<uint64_t>(groups) * 16, 4096);

    // CPU hash group-by.
    cpu::GroupByScanStream cpu_stream(keys.data(), rows, key_base, val_base,
                                      ht, groups);
    auto cpu = sys.RunStream(&cpu_stream).ValueOrDie();

    // Device group-by (hierarchical when groups > buckets).
    bool granted = false;
    sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
    sys.eq().RunUntilTrue([&] { return granted; });
    jafar::GroupByJob job;
    job.key_base = key_base;
    job.val_base = val_base;
    job.num_rows = rows;
    job.kind = jafar::AggKind::kSum;
    job.out_base = out;
    bool done = false;
    sim::Tick start = sys.eq().Now(), end = 0;
    NDP_CHECK(sys.driver()
                  .HierarchicalGroupBy(job, groups,
                                       [&](sim::Tick t) {
                                         done = true;
                                         end = t;
                                       })
                  .ok());
    sys.eq().RunUntilTrue([&] { return done; });
    double jafar_ms = bench::Ms(end - start);

    // Functional check on a few groups.
    bool ok = true;
    for (uint32_t g = 0; g < groups; g += std::max(1u, groups / 7)) {
      int64_t oracle = 0;
      for (uint64_t i = 0; i < rows; ++i) {
        if (keys[i] == g) oracle += vals[i];
      }
      ok &= static_cast<int64_t>(sys.dram().backing_store().Read64(
                out + static_cast<uint64_t>(g) * 16)) == oracle;
    }
    std::printf("%-10u %-10u %-12.3f %-12.3f %-10.2f %-8s\n", groups, passes,
                bench::Ms(cpu.duration_ps), jafar_ms,
                bench::Ms(cpu.duration_ps) / jafar_ms, ok ? "ok" : "FAIL");
    all_ok &= ok;
  }
  std::printf(
      "\nExpected: within the bucket SRAM the device wins (stream-rate keys\n"
      "and values vs. dependent bucket loads on the CPU); past 256 groups\n"
      "each extra bucket window costs a full extra pass over both columns,\n"
      "eroding the advantage — the §4 hierarchical-aggregation trade-off.\n");
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: device group-by disagreed with the oracle\n");
    return 1;
  }
  return 0;
}
