// Ablation — multi-DIMM scaling (§4 "Memory Management": "adding support for
// more than one DIMM is an essential future step"). Partitions one column
// across 1..8 JAFAR-equipped DIMMs and runs the selects in parallel.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"
#include "core/dimm_array.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 2u * 1024 * 1024);
  bench::PrintHeader("Ablation — multi-DIMM parallel select scaling (" +
                     std::to_string(rows) + " rows)");
  db::Column col = bench::UniformColumn(rows);
  auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                         accel::DatapathResources{})
                 .ValueOrDie();

  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 0 && col[i] <= 499999;
  }

  std::printf("\n%-10s %-10s %-12s %-10s %-12s\n", "channels", "devices",
              "time_ms", "speedup", "efficiency");
  double base_ms = 0;
  for (uint32_t channels : {1u, 2u, 4u, 8u}) {
    core::DimmArray array(dram::DramTiming::DDR3_1600(), channels, 1, cfg,
                          /*rows_per_bank=*/8192);
    array.AcquireAllOwnership();
    array.LoadPartitioned(col);
    auto result = array.RunParallelSelect(0, 499999).ValueOrDie();
    NDP_CHECK(result.matches == oracle);
    NDP_CHECK(result.bitmap.CountOnes() == oracle);
    double ms = bench::Ms(result.duration_ps);
    if (channels == 1) base_ms = ms;
    double speedup = base_ms / ms;
    std::printf("%-10u %-10u %-12.3f %-10.2f %-12.2f\n", channels,
                array.num_devices(), ms, speedup,
                speedup / channels);
  }
  std::printf(
      "\nExpected: near-linear scaling — each JAFAR streams its own DIMM and\n"
      "the bitmaps merge without cross-DIMM traffic; efficiency dips only\n"
      "from the fixed invocation overhead on the shrinking partitions.\n");
  return 0;
}
