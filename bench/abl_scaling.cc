// Ablation — multi-DIMM scaling (§4 "Memory Management": "adding support for
// more than one DIMM is an essential future step"). Partitions one column
// across 1..8 JAFAR-equipped DIMMs and runs the selects in parallel.
//
// With NDP_DEVICE_GEN unset the sweep runs v1_rank_io and v2_bank_level
// head-to-head (one table per generation); set, it pins the sweep to that
// generation, and a v1_rank_io pin reproduces the pre-refactor output.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/api.h"
#include "core/dimm_array.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 2u * 1024 * 1024);
  bench::PrintHeader("Ablation — multi-DIMM parallel select scaling (" +
                     std::to_string(rows) + " rows)");
  db::Column col = bench::UniformColumn(rows);
  const std::vector<jafar::DeviceGeneration> gens = bench::EnvGenerations();
  const bool pinned = gens.size() == 1;
  // DimmArray builds its DRAM organization from defaults (8 banks, 8 KB
  // rows) plus the channel/rank counts, none of which affect the per-bank
  // comparator derivation — a default organization matches.
  const dram::DramOrganization org;
  std::vector<jafar::DeviceConfig> cfgs;
  for (jafar::DeviceGeneration gen : gens) {
    cfgs.push_back(bench::DeriveDeviceConfig(gen, dram::DramTiming::DDR3_1600(),
                                             org, accel::DatapathResources{}));
  }

  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 0 && col[i] <= 499999;
  }

  const std::vector<uint32_t> channel_counts = {1, 2, 4, 8};
  struct PointResult {
    uint32_t channels = 0;
    uint32_t devices = 0;
    double ms = 0;
    StatsSnapshot counters;
  };
  // Generation-major: results for gens[g] live at [g * channel_counts.size(),
  // (g + 1) * channel_counts.size()).
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      gens.size() * channel_counts.size(), [&](size_t i) {
        PointResult r;
        r.channels = channel_counts[i % channel_counts.size()];
        core::DimmArray array(dram::DramTiming::DDR3_1600(), r.channels, 1,
                              cfgs[i / channel_counts.size()],
                              /*rows_per_bank=*/8192);
        array.AcquireAllOwnership();
        array.LoadPartitioned(col);
        auto result = array.RunParallelSelect(0, 499999).ValueOrDie();
        NDP_CHECK(result.matches == oracle);
        NDP_CHECK(result.bitmap.CountOnes() == oracle);
        r.devices = array.num_devices();
        r.ms = bench::Ms(result.duration_ps);
        r.counters = result.counters;
        return r;
      });

  bench::Reporter report("abl_scaling");
  report.Config("rows", static_cast<double>(rows))
      .Config("selectivity_pct", 50.0)
      .Config("generations",
              bench::GenerationsConfigJson(gens, dram::DramTiming::DDR3_1600(),
                                           org, accel::DatapathResources{}));

  for (size_t g = 0; g < gens.size(); ++g) {
    const char* gen_name = jafar::DeviceGenerationToString(gens[g]);
    if (!pinned) std::printf("\n---- generation: %s ----\n", gen_name);
    std::printf("\n%-10s %-10s %-12s %-10s %-12s\n", "channels", "devices",
                "time_ms", "speedup", "efficiency");
    double base_ms = results[g * channel_counts.size()].ms;
    for (size_t i = 0; i < channel_counts.size(); ++i) {
      const PointResult& r = results[g * channel_counts.size() + i];
      double speedup = base_ms / r.ms;
      std::printf("%-10u %-10u %-12.3f %-10.2f %-12.2f\n", r.channels,
                  r.devices, r.ms, speedup, speedup / r.channels);
      std::string label = std::to_string(r.channels) + "ch";
      if (!pinned) label += std::string(" ") + gen_name;
      report.AddPoint(label)
          .Metric("channels", r.channels)
          .Metric("devices", r.devices)
          .Metric("time_ms", r.ms)
          .Metric("speedup", speedup)
          .Metric("efficiency", speedup / r.channels)
          .Counters("", r.counters);
    }
  }
  std::printf(
      "\nExpected: near-linear scaling — each JAFAR streams its own DIMM and\n"
      "the bitmaps merge without cross-DIMM traffic; efficiency dips only\n"
      "from the fixed invocation overhead on the shrinking partitions.\n");
  return report.WriteJson() ? 0 : 1;
}
