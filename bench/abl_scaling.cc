// Ablation — multi-DIMM scaling (§4 "Memory Management": "adding support for
// more than one DIMM is an essential future step"). Partitions one column
// across 1..8 JAFAR-equipped DIMMs and runs the selects in parallel.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/api.h"
#include "core/dimm_array.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 2u * 1024 * 1024);
  bench::PrintHeader("Ablation — multi-DIMM parallel select scaling (" +
                     std::to_string(rows) + " rows)");
  db::Column col = bench::UniformColumn(rows);
  auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                         accel::DatapathResources{})
                 .ValueOrDie();

  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 0 && col[i] <= 499999;
  }

  const std::vector<uint32_t> channel_counts = {1, 2, 4, 8};
  struct PointResult {
    uint32_t channels = 0;
    uint32_t devices = 0;
    double ms = 0;
    StatsSnapshot counters;
  };
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      channel_counts.size(), [&](size_t i) {
        PointResult r;
        r.channels = channel_counts[i];
        core::DimmArray array(dram::DramTiming::DDR3_1600(), r.channels, 1,
                              cfg, /*rows_per_bank=*/8192);
        array.AcquireAllOwnership();
        array.LoadPartitioned(col);
        auto result = array.RunParallelSelect(0, 499999).ValueOrDie();
        NDP_CHECK(result.matches == oracle);
        NDP_CHECK(result.bitmap.CountOnes() == oracle);
        r.devices = array.num_devices();
        r.ms = bench::Ms(result.duration_ps);
        r.counters = result.counters;
        return r;
      });

  bench::Reporter report("abl_scaling");
  report.Config("rows", static_cast<double>(rows))
      .Config("selectivity_pct", 50.0);

  std::printf("\n%-10s %-10s %-12s %-10s %-12s\n", "channels", "devices",
              "time_ms", "speedup", "efficiency");
  double base_ms = results.front().ms;
  for (const PointResult& r : results) {
    double speedup = base_ms / r.ms;
    std::printf("%-10u %-10u %-12.3f %-10.2f %-12.2f\n", r.channels, r.devices,
                r.ms, speedup, speedup / r.channels);
    report.AddPoint(std::to_string(r.channels) + "ch")
        .Metric("channels", r.channels)
        .Metric("devices", r.devices)
        .Metric("time_ms", r.ms)
        .Metric("speedup", speedup)
        .Metric("efficiency", speedup / r.channels)
        .Counters("", r.counters);
  }
  std::printf(
      "\nExpected: near-linear scaling — each JAFAR streams its own DIMM and\n"
      "the bitmaps merge without cross-DIMM traffic; efficiency dips only\n"
      "from the fixed invocation overhead on the shrinking partitions.\n");
  return report.WriteJson() ? 0 : 1;
}
