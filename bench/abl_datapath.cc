// Ablation — datapath resources, the pre-RTL design-space sweep Aladdin
// enables (§3.1): ALU count, IO-buffer ports, pipelining, and the resulting
// device throughput and end-to-end select time. Validates the paper's choice
// of two parallel ALUs for range filters (§2.2).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 512u * 1024);
  bench::PrintHeader(
      "Ablation — JAFAR datapath design space (accel schedule -> device), " +
      std::to_string(rows) + " rows");
  db::Column col = bench::UniformColumn(rows);

  struct Point {
    uint32_t alus;
    uint32_t ports;
    bool pipelined;
  };
  const std::vector<Point> points = {
      {1, 1, true}, {2, 1, true}, {4, 1, true}, {2, 2, true}, {2, 1, false}};

  struct PointResult {
    double sched_ii = 0;
    double words_per_cycle = 0;
    double energy_fj = 0;
    uint64_t jafar_ps = 0;
  };
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      points.size(), [&](size_t i) {
        const Point& pt = points[i];
        accel::DatapathResources res;
        res.alus = pt.alus;
        res.mem_read_ports = pt.ports;
        res.pipelined = pt.pipelined;
        auto sched = accel::ScheduleKernel(accel::MakeSelectKernel(), res, 128)
                         .ValueOrDie();
        core::PlatformConfig p = core::PlatformConfig::Gem5();
        p.jafar_datapath = res;
        core::SystemModel sys(p);
        auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
        return PointResult{sched.steady_state_ii, sched.words_per_cycle,
                           sched.dynamic_energy_fj, jaf.duration_ps};
      });

  std::printf("\n%-8s %-10s %-10s %-12s %-14s %-12s %-12s\n", "alus",
              "rd_ports", "pipelined", "sched_II", "words/cycle", "energy_fJ",
              "select_ms");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const PointResult& r = results[i];
    std::printf("%-8u %-10u %-10s %-12.2f %-14.2f %-12.1f %-12.3f\n", pt.alus,
                pt.ports, pt.pipelined ? "yes" : "no", r.sched_ii,
                r.words_per_cycle, r.energy_fj / 128.0, bench::Ms(r.jafar_ps));
  }
  std::printf(
      "\nExpected: 2 ALUs reach II=1 (one word/cycle, matching the bus burst\n"
      "rate) — more ALUs or ports buy nothing; 1 ALU halves throughput; an\n"
      "unpipelined datapath is ~4x slower (iteration latency bound).\n");
  return 0;
}
