// Figure 4: memory-controller idle-period estimates for filter-heavy TPC-H
// queries (Q1, Q3, Q6, Q18, Q22) plus their average.
//
// Paper methodology (§3.3): run the queries (MonetDB on a Xeon E7-4820 v2 in
// the paper; our column-store traces replayed through the Xeon-class
// simulated memory system here), sample the IMC busy counters, and apply the
// pessimistic estimator
//     MC_empty = total_cycles - RC_busy - WC_busy
//     mean_idle = MC_empty / (#reads + #writes).
// Expected range: 200–800 bus cycles per idle period, average ~500; the §3.3
// corollary is ~125 32-byte blocks ≈ 4 KB of JAFAR work per idle period.
//
// Calibration (see EXPERIMENTS.md): the Xeon-class platform models one
// socket's quad-channel memory system; traces are replayed cold with a
// compute-scale factor of 24, which puts the replayed core's per-value cost
// in the 5-15 cycles/value range a MonetDB-class engine exhibits (the raw
// operator hooks record idealized tight-loop µop counts).
//
// Environment overrides: FIG4_SCALE (TPC-H scale, default 0.05),
// FIG4_SAMPLE (trace sampling period, default 1), FIG4_COMPUTE_SCALE
// (default 24).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "core/api.h"

int main() {
  using namespace ndp;
  const double scale = bench::EnvDouble("FIG4_SCALE", 0.05);
  const uint64_t sample = bench::EnvU64("FIG4_SAMPLE", 1);
  const uint64_t compute_scale = bench::EnvU64("FIG4_COMPUTE_SCALE", 24);

  bench::PrintHeader(
      "Figure 4 — Memory controller idle-period estimates, TPC-H queries "
      "(Xeon-class platform, scale " +
      std::to_string(scale) + ")");

  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = scale;
  db::tpch::Generate(cfg, &catalog);
  std::printf("\nlineitem rows: %llu, orders: %llu, customers: %llu\n",
              (unsigned long long)catalog.Tab("lineitem").num_rows(),
              (unsigned long long)catalog.Tab("orders").num_rows(),
              (unsigned long long)catalog.Tab("customer").num_rows());

  std::printf("%-8s %-16s %-16s %-12s %-12s %-14s\n", "query",
              "est_idle_cycles", "meas_idle_cycles", "reads", "writes",
              "kB_per_idle");

  bench::Reporter report("fig4");
  report.Config("tpch_scale", scale)
      .Config("sample", static_cast<double>(sample))
      .Config("compute_scale", static_cast<double>(compute_scale))
      .Config("platform", "xeon");

  double sum_est = 0;
  int n = 0;
  for (int q : {1, 3, 6, 18, 22}) {
    db::TraceRecorder trace(static_cast<uint32_t>(sample),
                            static_cast<uint32_t>(compute_scale));
    db::QueryContext ctx;
    ctx.trace = &trace;
    auto checksum = db::tpch::RunQueryByNumber(&ctx, &catalog, q);
    if (!checksum.ok()) {
      std::fprintf(stderr, "Q%d failed: %s\n", q,
                   checksum.status().ToString().c_str());
      return 1;
    }
    core::SystemModel sys(core::PlatformConfig::Xeon());
    core::IdlePeriodProfiler profiler(&sys);
    auto profile = profiler.Profile("Q" + std::to_string(q), trace.events())
                       .ValueOrDie();
    double est = profile.EstimatedMeanIdleCycles();
    sum_est += est;
    ++n;
    std::printf("Q%-7d %-16.0f %-16.0f %-12llu %-12llu %-14.1f\n", q, est,
                profile.MeasuredMeanIdleCycles(),
                (unsigned long long)profile.reads,
                (unsigned long long)profile.writes,
                profile.BytesPerIdlePeriodPaperAccounting() / 1024.0);
    report.AddPoint("Q" + std::to_string(q))
        .Metric("est_idle_cycles", est)
        .Metric("meas_idle_cycles", profile.MeasuredMeanIdleCycles())
        .Metric("total_bus_cycles", static_cast<double>(profile.total_bus_cycles))
        .Metric("rc_busy_cycles", static_cast<double>(profile.rc_busy_cycles))
        .Metric("wc_busy_cycles", static_cast<double>(profile.wc_busy_cycles))
        .Metric("reads", static_cast<double>(profile.reads))
        .Metric("writes", static_cast<double>(profile.writes))
        .Metric("kb_per_idle",
                profile.BytesPerIdlePeriodPaperAccounting() / 1024.0)
        .Counters("", profile.counters);
  }
  double avg = sum_est / n;
  std::printf("%-8s %-16.0f\n", "average", avg);
  std::printf(
      "\nPaper: idle periods range 200-800 bus cycles, average ~500;\n"
      "       at 4 bus cycles per request, JAFAR could process ~%0.f blocks\n"
      "       (~%.1f kB) per average idle period (paper: 125 blocks ~ 4 kB).\n",
      avg / 4.0, avg / 4.0 * 32.0 / 1024.0);
  report.Config("avg_est_idle_cycles", avg);
  return report.WriteJson() ? 0 : 1;
}
