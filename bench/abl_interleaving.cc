// Ablation A3 — handling data interleaving (§2.2). When column data is
// word-interleaved across two DIMMs, each DIMM's JAFAR sees a contiguous
// stream of every-other logical row and must merge its bitmap bits under a
// mask. Alternatives compared:
//   (a) contiguous layout, one JAFAR scans everything;
//   (b) word-interleaved across 2 DIMMs, two JAFARs run in parallel with
//       masked bitmap write-back (write amplification on the shared bitmap);
//   (c) storage-engine shuffle to contiguous (the NDA-style approach the
//       paper cites), paying a one-time CPU pass first.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

namespace {

struct TwoDimmSystem {
  sim::EventQueue eq;
  std::unique_ptr<dram::DramSystem> dram;
  std::unique_ptr<jafar::Device> dev0, dev1;

  explicit TwoDimmSystem(const jafar::DeviceConfig& cfg) {
    dram::DramOrganization org;
    org.channels = 2;
    org.rows_per_bank = 8192;
    dram = std::make_unique<dram::DramSystem>(
        &eq, dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, dram::ControllerConfig{});
    dev0 = std::make_unique<jafar::Device>(dram.get(), 0, 0, cfg);
    dev1 = std::make_unique<jafar::Device>(dram.get(), 1, 0, cfg);
    for (auto* d : {dev0.get(), dev1.get()}) {
      bool granted = false;
      dram->controller(d->channel_index())
          .TransferOwnership(0, dram::RankOwner::kAccelerator,
                             [&](sim::Tick) { granted = true; });
      eq.RunUntilTrue([&] { return granted; });
    }
  }
};

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation A3 — DIMM interleaving strategies (" +
                     std::to_string(rows) + " rows)");
  db::Column col = bench::UniformColumn(rows);
  auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                         accel::DatapathResources{})
                 .ValueOrDie();

  // (a) Contiguous, single device.
  double contiguous_ms;
  uint64_t matches_a;
  {
    TwoDimmSystem sys(cfg);
    sys.dram->backing_store().Write(0, col.data(), col.SizeBytes());
    jafar::SelectJob job;
    job.col_base = 0;
    job.num_rows = rows;
    job.range_low = 0;
    job.range_high = 499999;
    job.out_base = 1ull << 28;
    bool done = false;
    sim::Tick end = 0;
    NDP_CHECK(sys.dev0->StartSelect(job, [&](sim::Tick t) {
      done = true;
      end = t;
    }).ok());
    sys.eq.RunUntilTrue([&] { return done; });
    contiguous_ms = bench::Ms(end);
    matches_a = sys.dev0->last_match_count();
  }

  // (b) Word-interleaved across two DIMMs: device k scans the logical rows
  // 2i+k (each DIMM's share is physically contiguous on that DIMM), and both
  // merge into the same logical bitmap with complementary masks.
  double interleaved_ms;
  uint64_t matches_b;
  {
    TwoDimmSystem sys(cfg);
    // Split the column: even rows to DIMM 0, odd rows to DIMM 1.
    std::vector<int64_t> even, odd;
    for (uint64_t i = 0; i < rows; ++i) {
      ((i % 2 == 0) ? even : odd).push_back(col[i]);
    }
    uint64_t dimm1_base = sys.dram->organization().BytesPerRank() *
                          sys.dram->organization().ranks_per_channel;
    sys.dram->backing_store().Write(0, even.data(), even.size() * 8);
    sys.dram->backing_store().Write(dimm1_base, odd.data(), odd.size() * 8);

    auto make_job = [&](uint64_t base, uint64_t n, uint64_t out,
                        uint64_t mask) {
      jafar::SelectJob job;
      job.col_base = base;
      job.num_rows = n;
      job.range_low = 0;
      job.range_high = 499999;
      job.out_base = out;
      job.masked_writeback = true;
      job.writeback_mask = mask;
      return job;
    };
    // Each device writes its own half-bitmap (in its own DIMM); a final
    // interleave of the two halves is the CPU's job, modeled as already
    // reflected in the masked write-back cost.
    bool d0 = false, d1 = false;
    sim::Tick end0 = 0, end1 = 0;
    NDP_CHECK(sys.dev0
                  ->StartSelect(make_job(0, (rows + 1) / 2, 1ull << 28,
                                         0x5555555555555555ull),
                                [&](sim::Tick t) {
                                  d0 = true;
                                  end0 = t;
                                })
                  .ok());
    NDP_CHECK(sys.dev1
                  ->StartSelect(make_job(dimm1_base, rows / 2,
                                         dimm1_base + (1ull << 28),
                                         0xAAAAAAAAAAAAAAAAull),
                                [&](sim::Tick t) {
                                  d1 = true;
                                  end1 = t;
                                })
                  .ok());
    sys.eq.RunUntilTrue([&] { return d0 && d1; });
    interleaved_ms = bench::Ms(std::max(end0, end1));
    matches_b =
        sys.dev0->last_match_count() + sys.dev1->last_match_count();
  }

  // (c) Shuffle-first: a CPU pass rewrites the column contiguously (modeled
  // as a streaming copy at one line per tCCD read + write), then case (a).
  dram::DramTiming t = dram::DramTiming::DDR3_1600();
  double shuffle_ms = static_cast<double>(rows * 8 / 64) * 2.0 *
                      static_cast<double>(t.tccd) *
                      static_cast<double>(t.tck_ps) / 1e9;
  double shuffled_total_ms = shuffle_ms + contiguous_ms;

  NDP_CHECK(matches_a == matches_b);
  std::printf("\n%-44s %-12s %-10s\n", "strategy", "time_ms", "vs_(a)");
  std::printf("%-44s %-12.3f %-10.2f\n",
              "(a) contiguous, 1 JAFAR", contiguous_ms, 1.0);
  std::printf("%-44s %-12.3f %-10.2f\n",
              "(b) word-interleaved, 2 JAFARs + masked WB", interleaved_ms,
              interleaved_ms / contiguous_ms);
  std::printf("%-44s %-12.3f %-10.2f\n",
              "(c) shuffle to contiguous first, then (a)", shuffled_total_ms,
              shuffled_total_ms / contiguous_ms);
  std::printf(
      "\nExpected: (b) approaches 0.5x of (a) — interleaving buys DIMM-level\n"
      "parallelism and the masked write-back overhead is minor; (c) pays a\n"
      "full extra pass over the data up front.\n");
  return 0;
}
