// Ablation A5 — §4 "Aggregations": sum/min/max/count require minimal extra
// hardware. Compares CPU aggregation scans against the JAFAR aggregate
// engine, unfiltered and bitmap-filtered.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation A5 — NDP aggregation (" + std::to_string(rows) +
                     " rows)");
  db::Column col = bench::UniformColumn(rows);

  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t col_base = sys.PinColumn(col);
  auto cpu = sys.RunCpuAggregate(col).ValueOrDie();

  // JAFAR aggregate (sum).
  uint64_t out_addr = sys.Allocate(64, 64);
  bool granted = false;
  sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
  sys.eq().RunUntilTrue([&] { return granted; });

  auto run_agg = [&](jafar::AggKind kind, uint64_t bitmap) {
    jafar::AggregateJob job;
    job.col_base = col_base;
    job.num_rows = rows;
    job.kind = kind;
    job.bitmap_base = bitmap;
    job.out_addr = out_addr;
    bool done = false;
    sim::Tick start = sys.eq().Now(), end = 0;
    NDP_CHECK(sys.driver().AggregateJafar(job, [&](sim::Tick t) {
      done = true;
      end = t;
    }).ok());
    sys.eq().RunUntilTrue([&] { return done; });
    return bench::Ms(end - start);
  };
  double jafar_sum_ms = run_agg(jafar::AggKind::kSum, 0);

  // Functional check against the host-side oracle, read back before the
  // filtered run overwrites out_addr.
  int64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) oracle += col[i];
  int64_t got =
      static_cast<int64_t>(sys.dram().backing_store().Read64(out_addr));
  if (got != oracle) {
    std::fprintf(stderr, "MISMATCH: jafar sum=%lld oracle=%lld\n",
                 (long long)got, (long long)oracle);
    return 1;
  }

  // Filtered aggregate: JAFAR select produces the bitmap, then aggregates
  // under it — the whole filter+agg pipeline stays in memory.
  uint64_t bitmap = sys.Allocate((rows + 7) / 8 + 64, 4096);
  jafar::SelectJob sel;
  sel.col_base = col_base;
  sel.num_rows = rows;
  sel.range_low = 250000;
  sel.range_high = 750000;
  sel.out_base = bitmap;
  bool sel_done = false;
  sim::Tick sel_start = sys.eq().Now(), sel_end = 0;
  NDP_CHECK(sys.jafar().StartSelect(sel, [&](sim::Tick t) {
    sel_done = true;
    sel_end = t;
  }).ok());
  sys.eq().RunUntilTrue([&] { return sel_done; });
  double filtered_ms =
      bench::Ms(sel_end - sel_start) + run_agg(jafar::AggKind::kSum, bitmap);

  std::printf("\n%-44s %-12s %-10s\n", "configuration", "time_ms", "speedup");
  std::printf("%-44s %-12.3f %-10s\n", "CPU aggregate scan (sum)",
              bench::Ms(cpu.duration_ps), "1.00");
  std::printf("%-44s %-12.3f %-10.2f\n", "JAFAR aggregate (sum)", jafar_sum_ms,
              bench::Ms(cpu.duration_ps) / jafar_sum_ms);
  std::printf("%-44s %-12.3f %-10.2f\n",
              "JAFAR select (50%) + filtered aggregate", filtered_ms,
              bench::Ms(cpu.duration_ps) / filtered_ms);
  std::printf(
      "\nExpected: the aggregate engine matches select throughput (both are\n"
      "stream-bound); filter+aggregate costs ~2 passes but never moves data\n"
      "up the hierarchy.\n");
  return 0;
}
