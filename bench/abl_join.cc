// Ablation — JSPIM-style join & group-by pushdown under skew. Two parts:
//
// Part 1 (query sweep): TPC-H Q3 and Q18 over datasets generated at Zipf
// lines-per-order skew theta in {0, 0.5, 1, 1.5, 2}. For each theta the
// accelerable operators run head-to-head: the CPU baseline simulates the
// hash semijoin probe (HashProbeStream, dependent hash-table loads) and the
// hash group-by (GroupByScanStream) on the gem5-calibrated core, while the
// NDP path routes the same operators through the NdpRuntime's Bloom-probe
// and bucket-window group-by jobs over a 4-device DIMM array. Query results
// must be bit-identical (checksum MATCH at every point); at full size the
// device must win both operators at every theta.
//
// Part 2 (skew microbench): one probe job over a column placed across the
// 4 devices with Zipf(theta) weights (device 0 hottest). Work stealing with
// the ETA-based heavy-hitter victim selection on vs. stealing off; the
// candidate bitmap is checked bit-for-bit against the host Bloom evaluation
// (shared BloomBitIndex semantics). Claim under test: heavy-hitter
// rebalancing measurably cuts the makespan at theta >= 1.5.
//
// Writes BENCH_abl_join.json.
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "core/api.h"
#include "core/runtime.h"
#include "db/tpch_queries.h"

using namespace ndp;

namespace {

jafar::DeviceConfig DeviceConfig() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// One theta point of the query sweep.
struct QueryPoint {
  double theta = 0;
  double q3_cpu_ms = 0;   ///< CPU semijoin probe (accelerable operator)
  double q3_ndp_ms = 0;   ///< device Bloom probe + refinement window
  double q18_cpu_ms = 0;  ///< CPU hash group-by (accelerable operator)
  double q18_ndp_ms = 0;  ///< device bucket-window group-by
  bool match = true;      ///< Q3 + Q18 checksums identical to the CPU run
};

/// CPU-side cost of Q3's accelerable operator: the hash semijoin probe of
/// the shipdate-qualifying lineitem keys against the qualifying orderkeys,
/// on the gem5-calibrated core.
double CpuProbeMs(db::Catalog* catalog) {
  db::QueryContext ctx;
  db::Table& cust = catalog->Tab("customer");
  db::Table& ord = catalog->Tab("orders");
  db::Table& li = catalog->Tab("lineitem");
  int64_t date = db::tpch::DayNumber(1995, 3, 15);
  int64_t building =
      cust.Col("c_mktsegment").CodeOf("BUILDING").ValueOrDie();
  db::PositionList cust_pos =
      db::ScanSelect(&ctx, cust.Col("c_mktsegment"), db::Pred::Eq(building));
  db::PositionList ord_pos =
      db::ScanSelect(&ctx, ord.Col("o_orderdate"), db::Pred::Lt(date));
  db::JoinResult co = db::HashJoin(&ctx, cust.Col("c_custkey"), cust_pos,
                                   ord.Col("o_custkey"), ord_pos);
  std::unordered_set<int64_t> okeys;
  for (uint32_t p : co.right) okeys.insert(ord.Col("o_orderkey")[p]);
  db::PositionList li_pos =
      db::ScanSelect(&ctx, li.Col("l_shipdate"), db::Pred::Gt(date));

  // Probe keys + per-row hit outcomes drive the stream's branch behaviour.
  db::Column probe_keys = db::Column::Int64("probe_keys");
  probe_keys.Reserve(li_pos.size());
  std::vector<uint8_t> hits(li_pos.size(), 0);
  for (size_t i = 0; i < li_pos.size(); ++i) {
    int64_t key = li.Col("l_orderkey")[li_pos[i]];
    probe_keys.Append(key);
    hits[i] = okeys.count(key) != 0 ? 1 : 0;
  }

  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t key_base = sys.PinColumn(probe_keys);
  uint64_t ht = sys.Allocate(std::max<uint64_t>(1, okeys.size()) * 16, 4096);
  uint64_t out = sys.Allocate(li_pos.size() * 4 + 64, 4096);
  cpu::HashProbeStream stream(
      probe_keys.data(), probe_keys.size(), key_base, ht, out,
      static_cast<uint32_t>(std::max<size_t>(1, okeys.size())), hits.data());
  return bench::Ms(sys.RunStream(&stream).ValueOrDie().duration_ps);
}

/// CPU-side cost of Q18's accelerable operator: the full-column hash
/// group-by of l_quantity by l_orderkey.
double CpuGroupByMs(db::Catalog* catalog) {
  db::Table& li = catalog->Tab("lineitem");
  const db::Column& okey = li.Col("l_orderkey");
  const db::Column& qty = li.Col("l_quantity");
  uint32_t groups = static_cast<uint32_t>(
      std::max<int64_t>(1, okey.size() == 0 ? 1 : okey[okey.size() - 1]));
  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t key_base = sys.PinColumn(okey);
  uint64_t val_base = sys.PinColumn(qty);
  uint64_t ht = sys.Allocate(static_cast<uint64_t>(groups) * 16, 4096);
  cpu::GroupByScanStream stream(okey.data(), okey.size(), key_base, val_base,
                                ht, groups);
  return bench::Ms(sys.RunStream(&stream).ValueOrDie().duration_ps);
}

/// Runs query `number` with the join/group-by hooks installed and returns
/// {checksum, device_ms}: the event-queue advance is exactly the device time
/// of the pushed-down operators (host compute does not move the sim clock).
std::pair<int64_t, double> NdpQuery(db::Catalog* catalog, int number) {
  core::DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, DeviceConfig());
  core::NdpRuntime runtime(&array, core::RuntimeConfig{});
  db::QueryContext ctx;
  ctx.ndp_semi_join = runtime.MakeSemiJoinHook();
  ctx.ndp_group_by = runtime.MakeGroupByHook();
  // Warm-up: channel-silence history for the idle-period estimator.
  array.eq().RunUntil(array.eq().Now() + 20'000'000);
  sim::Tick start = array.eq().Now();
  int64_t checksum =
      db::tpch::RunQueryByNumber(&ctx, catalog, number).ValueOrDie();
  return {checksum, bench::Ms(array.eq().Now() - start)};
}

QueryPoint RunQueryPoint(double theta, double scale) {
  QueryPoint r;
  r.theta = theta;

  db::tpch::TpchConfig cfg;
  cfg.scale = scale;
  cfg.skew_theta = theta;
  db::Catalog catalog;
  db::tpch::Generate(cfg, &catalog);

  db::QueryContext cpu_ctx;
  int64_t cpu_q3 =
      db::tpch::RunQueryByNumber(&cpu_ctx, &catalog, 3).ValueOrDie();
  int64_t cpu_q18 =
      db::tpch::RunQueryByNumber(&cpu_ctx, &catalog, 18).ValueOrDie();

  r.q3_cpu_ms = CpuProbeMs(&catalog);
  r.q18_cpu_ms = CpuGroupByMs(&catalog);

  auto [ndp_q3, q3_ms] = NdpQuery(&catalog, 3);
  auto [ndp_q18, q18_ms] = NdpQuery(&catalog, 18);
  r.q3_ndp_ms = q3_ms;
  r.q18_ndp_ms = q18_ms;
  r.match = ndp_q3 == cpu_q3 && ndp_q18 == cpu_q18;
  return r;
}

/// One steal on/off run of the probe skew microbench.
struct SkewPoint {
  double theta = 0;
  bool steal = true;
  double makespan_ms = 0;
  bool match = true;
  StatsSnapshot counters;
};

SkewPoint RunSkewPoint(const db::Column& col, double theta, bool steal) {
  SkewPoint r;
  r.theta = theta;
  r.steal = steal;

  core::DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, DeviceConfig());
  core::RuntimeConfig cfg;
  cfg.steal_enabled = steal;
  // Short lease windows so the probe spans many leases per lane: the
  // heavy-hitter detector only trusts a lane's rate after
  // `join_hh_min_leases` completed leases, so the hot lane must finish
  // several leases while the imbalance is still live (DESIGN.md §12).
  cfg.lease_init_bus_cycles = 4'000;
  cfg.lease_max_bus_cycles = 8'000;
  core::NdpRuntime runtime(&array, cfg);

  // Zipf(theta) placement: device d holds a share proportional to (d+1)^-th.
  std::vector<double> weights;
  for (int d = 0; d < 4; ++d) {
    weights.push_back(std::pow(static_cast<double>(d + 1), -theta));
  }
  core::PlacedColumn placed = array.PlaceColumn(col, weights).ValueOrDie();

  // Bloom image over a ~4k-key build set (multiples of 256 in the value
  // domain): sparse enough that the filter stays discriminating.
  const uint64_t filter_words = cfg.join_filter_kb * 1024 / 8;
  std::vector<uint64_t> image(filter_words, 0);
  for (int64_t key = 0; key < 1'000'000; key += 256) {
    for (uint32_t h = 0; h < cfg.join_hashes; ++h) {
      uint64_t bit =
          jafar::BloomBitIndex(static_cast<uint64_t>(key), h, filter_words);
      image[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }

  array.eq().RunUntil(array.eq().Now() + 20'000'000);
  StatsSnapshot before = array.stats().Snapshot();
  sim::Tick start = array.eq().Now();
  auto id = runtime.SubmitProbe(placed, image).ValueOrDie();
  NDP_CHECK(runtime.Drain().ok());
  r.makespan_ms = bench::Ms(array.eq().Now() - start);
  r.counters = array.stats().Snapshot().DeltaSince(before);

  // Bit-exact functional check: the device bitmap must equal the host-side
  // Bloom evaluation of every row (same BloomBitIndex, same image).
  const core::JobResult* res = runtime.result(id);
  r.match = res != nullptr && res->status.ok();
  if (r.match) {
    uint64_t expected_matches = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      bool candidate = true;
      for (uint32_t h = 0; h < cfg.join_hashes && candidate; ++h) {
        uint64_t bit = jafar::BloomBitIndex(static_cast<uint64_t>(col[i]), h,
                                            filter_words);
        candidate = (image[bit / 64] >> (bit % 64)) & 1;
      }
      expected_matches += candidate;
      if (res->bitmap.Get(i) != candidate) {
        r.match = false;
        break;
      }
    }
    r.match &= res->matches == expected_matches;
  }
  return r;
}

}  // namespace

int main() {
  const double scale = bench::EnvDouble("ABL_TPCH_SCALE", 0.01);
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 256u * 1024);
  const bool full_size = scale >= 0.01 && rows >= 128u * 1024;
  bench::PrintHeader(
      "Ablation — join & group-by pushdown under skew (TPC-H scale " +
      std::to_string(scale) + ", " + std::to_string(rows) + " probe rows)");

  core::RuntimeConfig defaults;
  bench::Reporter report("abl_join");
  report.Config("scale", scale);
  report.Config("rows", static_cast<double>(rows));
  report.Config("filter_kb", static_cast<double>(defaults.join_filter_kb));
  report.Config("hashes", static_cast<double>(defaults.join_hashes));

  // ---- Part 1: Q3/Q18 across generator skew --------------------------------
  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5, 2.0};
  std::printf("\n%-8s %-12s %-12s %-10s %-12s %-12s %-10s %s\n", "theta",
              "q3_cpu_ms", "q3_ndp_ms", "q3_x", "q18_cpu_ms", "q18_ndp_ms",
              "q18_x", "match");
  bool all_match = true;
  bool ndp_wins = true;
  for (double theta : thetas) {
    QueryPoint r = RunQueryPoint(theta, scale);
    std::printf("%-8g %-12.4f %-12.4f %-10.2f %-12.4f %-12.4f %-10.2f %s\n",
                r.theta, r.q3_cpu_ms, r.q3_ndp_ms, r.q3_cpu_ms / r.q3_ndp_ms,
                r.q18_cpu_ms, r.q18_ndp_ms, r.q18_cpu_ms / r.q18_ndp_ms,
                r.match ? "MATCH" : "MISMATCH");
    all_match &= r.match;
    ndp_wins &= r.q3_ndp_ms < r.q3_cpu_ms && r.q18_ndp_ms < r.q18_cpu_ms;
    report.AddPoint("theta" + std::to_string(static_cast<int>(theta * 10)))
        .Metric("theta", r.theta)
        .Metric("q3_cpu_ms", r.q3_cpu_ms)
        .Metric("q3_ndp_ms", r.q3_ndp_ms)
        .Metric("q18_cpu_ms", r.q18_cpu_ms)
        .Metric("q18_ndp_ms", r.q18_ndp_ms)
        .Metric("match", r.match ? 1.0 : 0.0);
  }

  // ---- Part 2: probe makespan under Zipf placement, steal on vs. off -------
  db::Column col = bench::UniformColumn(rows);
  const std::vector<double> skew_thetas = {0.0, 1.0, 1.5, 2.0};
  std::printf("\n%-8s %-10s %-12s %-8s %-10s %-10s %-8s %s\n", "theta",
              "steal", "makespan_ms", "steals", "hh_flags", "eta_steals",
              "ratio", "match");
  double ratio_t15 = 0, ratio_t20 = 0;
  double hh_flags_t20_on = 0;
  for (double theta : skew_thetas) {
    SkewPoint on = RunSkewPoint(col, theta, /*steal=*/true);
    SkewPoint off = RunSkewPoint(col, theta, /*steal=*/false);
    all_match &= on.match && off.match;
    double ratio = off.makespan_ms / on.makespan_ms;
    if (theta == 1.5) ratio_t15 = ratio;
    if (theta == 2.0) ratio_t20 = ratio;
    for (const SkewPoint* p : {&on, &off}) {
      double steals = p->counters.Value("array.runtime.steals");
      double hh = p->counters.Value("array.runtime.hh_flags");
      double eta = p->counters.Value("array.runtime.eta_steals");
      if (theta == 2.0 && p->steal) hh_flags_t20_on = hh;
      std::printf("%-8g %-10s %-12.4f %-8g %-10g %-10g %-8.2f %s\n", p->theta,
                  p->steal ? "on" : "off", p->makespan_ms, steals, hh, eta,
                  ratio, p->match ? "MATCH" : "MISMATCH");
      report.AddPoint("skew" + std::to_string(static_cast<int>(theta * 10)) +
                      (p->steal ? "_steal_on" : "_steal_off"))
          .Metric("theta", p->theta)
          .Metric("steal", p->steal ? 1.0 : 0.0)
          .Metric("makespan_ms", p->makespan_ms)
          .Metric("match", p->match ? 1.0 : 0.0)
          .Counters("", p->counters);
    }
  }

  std::printf("\nSteal contrast: %.2fx at theta 1.5, %.2fx at theta 2.0 "
              "(hh_flags on hot run: %g)\n",
              ratio_t15, ratio_t20, hh_flags_t20_on);
  report.AddPoint("summary")
      .Metric("steal_ratio_t15", ratio_t15)
      .Metric("steal_ratio_t20", ratio_t20)
      .Metric("hh_flags_t20", hh_flags_t20_on);

  NDP_CHECK_MSG(all_match, "a pushed-down join/group-by diverged from the "
                           "CPU oracle");
  if (full_size) {
    NDP_CHECK_MSG(ndp_wins,
                  "NDP lost an accelerable operator at some skew point");
    NDP_CHECK_MSG(ratio_t15 > 1.05 && ratio_t20 > 1.05,
                  "heavy-hitter rebalancing failed to cut the skewed probe "
                  "makespan at theta >= 1.5");
    NDP_CHECK_MSG(hh_flags_t20_on >= 1.0,
                  "no heavy hitter was flagged on the theta=2 placement");
  } else {
    std::printf("(small ABL_TPCH_SCALE/ABL_ROWS: bounds reported, not enforced)\n");
  }

  report.WriteJson();
  return 0;
}
