// Ablation A1 — output bitmap buffer size n (§2.2: "the output buffer holds
// n bits ... every n cycles the output buffer is fully filled and its
// contents are written back to DRAM"). Each flush interrupts the read stream
// (write bursts + write-to-read turnaround), so a larger buffer amortizes
// those interruptions at the cost of device area.
//
// This ablation drives the device directly with one large job; through the
// Figure-2 paged API the effect disappears, because a 4 KB page holds only
// 512 values and every per-page job ends with a single partial flush no
// matter how large the buffer is — an interaction worth knowing about when
// sizing n (see EXPERIMENTS.md).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation A1 — JAFAR output buffer size (" +
                     std::to_string(rows) +
                     " rows, single device job, 100% selectivity)");

  db::Column col = bench::UniformColumn(rows);
  std::printf("\n%-14s %-14s %-16s %-14s %-12s\n", "buffer_bits", "jafar_ms",
              "bursts_written", "activates", "vs_best");

  double best = 1e30;
  std::vector<std::tuple<uint32_t, double, uint64_t, uint64_t>> results;
  for (uint32_t bits : {512u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    sim::EventQueue eq;
    dram::DramOrganization org;
    org.rows_per_bank = 32768;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                          dram::InterleaveScheme::kContiguous, mc);
    auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                           accel::DatapathResources{})
                   .ValueOrDie();
    cfg.output_buffer_bits = bits;
    jafar::Device device(&dram, 0, 0, cfg);
    bool granted = false;
    dram.controller(0).TransferOwnership(0, dram::RankOwner::kAccelerator,
                                         [&](sim::Tick) { granted = true; });
    eq.RunUntilTrue([&] { return granted; });
    dram.backing_store().Write(0, col.data(), col.SizeBytes());

    jafar::SelectJob job;
    job.col_base = 0;
    job.num_rows = rows;
    job.range_low = 0;
    job.range_high = 999999;
    job.out_base = 1ull << 27;
    bool done = false;
    sim::Tick start = eq.Now(), end = 0;
    NDP_CHECK(device.StartSelect(job, [&](sim::Tick t) {
      done = true;
      end = t;
    }).ok());
    eq.RunUntilTrue([&] { return done; });
    double ms = bench::Ms(end - start);
    best = std::min(best, ms);
    results.emplace_back(bits, ms, device.stats().bursts_written,
                         device.stats().activates);
  }
  for (auto& [bits, ms, bw, acts] : results) {
    std::printf("%-14u %-14.3f %-16llu %-14llu %-12.3f\n", bits, ms,
                (unsigned long long)bw, (unsigned long long)acts, ms / best);
  }
  std::printf(
      "\nExpected: total write-back bursts are ~rows/512 regardless of n,\n"
      "but small buffers flush often, paying the write-to-read turnaround\n"
      "(tWTR) each time; beyond a few KB the effect saturates.\n");
  return 0;
}
