// Ablation — overload-robust serving: offered load x overload governor x
// fault injection. Each grid point stands up the full serving path (client
// fleet -> bounded ingress rings -> burst admission into the NdpRuntime over
// a 4-device DIMM array) and drives a two-tenant mix — an interactive tenant
// with a tight per-request deadline and a batch tenant with a loose one —
// open-loop, so offered load does NOT slow down when the system sheds. That
// is what makes true overload reachable: the ladder spans well past
// saturation.
//
// Claims under test (enforced at full size):
//   * No cliff: with the governor on, goodput past saturation stays >= 0.8x
//     the peak observed anywhere on the ladder — brownout sheds batch at the
//     door, bounds the NDP backlog, and routes interactive overflow to the
//     bit-identical CPU fallback.
//   * The governor-off control DOES cliff (goodput < 0.8x peak at the top of
//     the ladder): unbounded admitted backlog expires mid-job and the wasted
//     partial leases eat the machine.
//   * Deadlines are honored end to end: p99 goodput latency of the
//     interactive tenant stays within its SLO at 2x saturation — late work
//     is cancelled at chunk boundaries, never silently completed.
//   * Every completed request (NDP or CPU fallback, faulted lane or not)
//     matches the sorted-scan oracle. Always enforced, any size.
// Writes BENCH_serving.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/host_traffic.h"
#include "core/ingress.h"
#include "core/runtime.h"
#include "fault/injector.h"

using namespace ndp;

namespace {

constexpr sim::Tick kInteractiveDeadlinePs = 500'000'000;  // 500 us SLO
constexpr sim::Tick kBatchDeadlinePs = 3'000'000'000;      // 3 ms

jafar::DeviceConfig DeviceConfig() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// Bench-tuned ingress policy. Governor on: a small slot pool so the
/// occupancy signal (and therefore the governor) reacts within a fraction of
/// the measurement window, and a brownout NDP bound sized so
/// admitted-request sojourn stays well inside the interactive SLO. Governor
/// off is the pre-ingress control: a generously over-provisioned pool (the
/// classic "just make the queue bigger" deployment) with no governor — and
/// RunPoint additionally turns off deadline propagation, so admitted work is
/// never cancelled and completes silently late.
core::IngressConfig ServingConfig(bool governor_on) {
  core::IngressConfig cfg;
  cfg.rings = 2;
  cfg.ring_capacity = 256;
  cfg.slots = governor_on ? 128 : 2048;
  cfg.burst = 16;
  cfg.poll_bus_cycles = 800;
  cfg.governor_enabled = governor_on;
  cfg.governor_poll_bus_cycles = 2'000;
  cfg.brownout_ndp_inflight = 8;
  cfg.cpu_scan_bus_cycles_per_row = 1;
  NDP_CHECK(cfg.Validate().ok());
  return cfg;
}

std::vector<core::TenantSpec> Tenants() {
  core::TenantSpec interactive;
  interactive.name = "interactive";
  interactive.priority = core::JobPriority::kInteractive;
  interactive.weight = 0.6;
  interactive.deadline_ps = kInteractiveDeadlinePs;
  core::TenantSpec batch;
  batch.name = "batch";
  batch.priority = core::JobPriority::kBatch;
  batch.weight = 0.4;
  batch.deadline_ps = kBatchDeadlinePs;
  return {interactive, batch};
}

struct PointResult {
  double load_reqs_per_us = 0;
  bool governor_on = true;
  bool faulted = false;
  double offered_qps = 0;
  double goodput_qps = 0;
  double goodput_cpu_qps = 0;  ///< CPU-fallback share of goodput
  double shed_frac = 0;        ///< shed / issued (door + retry budget)
  double late_frac = 0;        ///< expired or cancelled / issued
  double p50_us = 0, p99_us = 0, p999_us = 0;  ///< interactive goodput latency
  int final_state = 0;
  bool match = true;
  StatsSnapshot counters;
};

PointResult RunPoint(const db::Column& col,
                     const std::vector<int64_t>& sorted, double load,
                     bool governor_on, bool faulted, sim::Tick window_ps) {
  PointResult r;
  r.load_reqs_per_us = load;
  r.governor_on = governor_on;
  r.faulted = faulted;

  core::DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, DeviceConfig());
  core::RuntimeConfig rcfg;
#ifdef NDP_FAULT_INJECT
  fault::FaultPlan plan;
  plan.hang_per_job = faulted ? 1.0 : 0.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  if (faulted) {
    // Doom device 0: single-attempt driver retry plus a short watchdog turns
    // every lease on that lane into a fast permanent failure, so the point
    // measures the ingress retry budget, not the watchdog.
    rcfg.driver.retry.max_attempts = 1;
    rcfg.driver.watchdog_base_ps = 5'000'000;
    array.device(0).set_fault_injector(&injector);
  }
#endif
  core::NdpRuntime runtime(&array, rcfg);
  core::PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  core::ServingIngress ingress(&runtime, &array, ServingConfig(governor_on),
                               Tenants());
  uint32_t table = ingress.AddTable(&col, &placed);
  NDP_CHECK(table == 0);

  core::FleetConfig fcfg;
  fcfg.reqs_per_us = load;
  fcfg.seed = 20150601;
  fcfg.propagate_deadlines = governor_on;
  core::ClientFleet fleet(&array.eq(), &ingress, fcfg);
  fleet.set_oracle([&sorted](const core::ServingRequest& req) {
    return static_cast<uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), req.hi) -
        std::lower_bound(sorted.begin(), sorted.end(), req.lo));
  });

  // A short observable stretch of channel silence warms the lease
  // controller's idle estimator before the first admission.
  array.eq().RunUntil(array.eq().Now() + 20'000'000);

  StatsSnapshot before = array.stats().Snapshot();
  ingress.Start();
  fleet.Start();
  array.eq().RunUntil(array.eq().Now() + window_ps);
  fleet.Stop();
  ingress.Stop();
  NDP_CHECK(ingress.Drain().ok());
  NDP_CHECK(runtime.Drain().ok());
  r.counters = array.stats().Snapshot().DeltaSince(before);

  double window_s = static_cast<double>(window_ps) / 1e12;
  r.offered_qps = static_cast<double>(fleet.issued()) / window_s;
  r.goodput_qps = static_cast<double>(fleet.goodput()) / window_s;
  r.goodput_cpu_qps =
      r.counters.Value("array.ingress.completed_cpu") / window_s;
  double issued = std::max<double>(1.0, static_cast<double>(fleet.issued()));
  uint64_t late = 0, failed = 0;
  for (uint32_t t = 0; t < 2; ++t) {
    late += fleet.tenant_stats(t).late;
    failed += fleet.tenant_stats(t).failed;
  }
  r.shed_frac = static_cast<double>(fleet.shed()) / issued;
  r.late_frac = static_cast<double>(late) / issued;
  const Histogram& lat = fleet.tenant_stats(0).latency;
  r.p50_us = lat.Quantile(0.5) / 1e6;
  r.p99_us = lat.Quantile(0.99) / 1e6;
  r.p999_us = lat.Quantile(0.999) / 1e6;
  r.final_state = static_cast<int>(ingress.state());
  r.match = fleet.mismatches() == 0;
  // A faulted lane may leave terminal failures (that is the shed-not-spin
  // contract); a healthy ladder point must not.
  if (!faulted) r.match &= failed == 0;
  return r;
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("SERVING_ROWS", 32u * 1024);
  const uint64_t window_us = bench::EnvU64("SERVING_WINDOW_US", 4000);
  const sim::Tick window_ps = static_cast<sim::Tick>(window_us) * 1'000'000;
  // The overload claims need the governor to see several reaction times
  // inside the window and enough per-request work for deadlines to bind.
  const bool full_size = rows >= 32u * 1024 && window_us >= 4000;
  bench::PrintHeader("Ablation — serving ingress: load x governor x fault (" +
                     std::to_string(rows) + " rows, " +
                     std::to_string(window_us) + " us window)");
  db::Column col = bench::UniformColumn(rows);
  std::vector<int64_t> sorted(col.values().begin(), col.values().end());
  std::sort(sorted.begin(), sorted.end());

  // Requests per microsecond, open-loop across both tenants. The top of the
  // ladder offers several times what four lanes can stream.
  const std::vector<double> loads = {0.01, 0.02, 0.05, 0.1, 0.2, 0.4};

  struct GridPoint {
    double load;
    bool governor_on;
    bool faulted;
  };
  std::vector<GridPoint> grid;
  for (double load : loads) grid.push_back({load, true, false});
  for (double load : loads) grid.push_back({load, false, false});
#ifdef NDP_FAULT_INJECT
  const size_t fault_idx = grid.size();
  grid.push_back({0.05, true, true});
#endif

  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      grid.size(), [&](size_t i) {
        return RunPoint(col, sorted, grid[i].load, grid[i].governor_on,
                        grid[i].faulted, window_ps);
      });

  bench::Reporter report("serving");
  report.Config("rows", static_cast<double>(rows));
  report.Config("window_us", static_cast<double>(window_us));
  report.Config("interactive_slo_us",
                static_cast<double>(kInteractiveDeadlinePs) / 1e6);
  report.Config("tenants", 2.0);

  std::printf("\n%-8s %-4s %-6s %-12s %-12s %-10s %-7s %-7s %-8s %-8s %-8s %s\n",
              "load/us", "gov", "fault", "offered_qps", "goodput_qps",
              "cpu_qps", "shed", "late", "p50_us", "p99_us", "p999_us",
              "match");
  bool all_match = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    std::printf(
        "%-8g %-4s %-6s %-12.0f %-12.0f %-10.0f %-7.2f %-7.2f %-8.1f %-8.1f "
        "%-8.1f %s [%s]\n",
        r.load_reqs_per_us, r.governor_on ? "on" : "off",
        r.faulted ? "yes" : "no", r.offered_qps, r.goodput_qps,
        r.goodput_cpu_qps, r.shed_frac, r.late_frac, r.p50_us, r.p99_us,
        r.p999_us, r.match ? "MATCH" : "MISMATCH",
        core::OverloadStateToString(
            static_cast<core::OverloadState>(r.final_state)));
    all_match &= r.match;
    char label[64];
    std::snprintf(label, sizeof(label), "load%g_%s%s", r.load_reqs_per_us,
                  r.governor_on ? "on" : "off", r.faulted ? "_fault" : "");
    report.AddPoint(label)
        .Metric("load_reqs_per_us", r.load_reqs_per_us)
        .Metric("governor_on", r.governor_on ? 1.0 : 0.0)
        .Metric("faulted", r.faulted ? 1.0 : 0.0)
        .Metric("offered_qps", r.offered_qps)
        .Metric("goodput_qps", r.goodput_qps)
        .Metric("goodput_cpu_qps", r.goodput_cpu_qps)
        .Metric("shed_frac", r.shed_frac)
        .Metric("late_frac", r.late_frac)
        .Metric("p50_us", r.p50_us)
        .Metric("p99_us", r.p99_us)
        .Metric("p999_us", r.p999_us)
        .Metric("final_state", r.final_state)
        .Metric("match", r.match ? 1.0 : 0.0)
        .Counters("", r.counters);
  }

  // Saturation: the first ladder rung where the governor-on system can no
  // longer complete ~everything it is offered. Peak is the best goodput seen
  // anywhere on the governor-on ladder.
  double peak_on = 0;
  double sat_load = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    peak_on = std::max(peak_on, results[i].goodput_qps);
    if (sat_load == 0 && results[i].goodput_qps < 0.9 * results[i].offered_qps) {
      sat_load = loads[i];
    }
  }
  std::printf("\npeak goodput (governor on): %.0f qps, saturation at "
              "%g reqs/us\n",
              peak_on, sat_load);
  report.AddPoint("summary")
      .Metric("peak_goodput_qps", peak_on)
      .Metric("saturation_load_reqs_per_us", sat_load);

  NDP_CHECK_MSG(all_match, "a serving completion diverged from the oracle");
  if (full_size) {
    NDP_CHECK_MSG(sat_load > 0, "ladder never saturated: raise the top load");
    bool off_cliffs = false;
    for (size_t i = 0; i < loads.size(); ++i) {
      const PointResult& on = results[i];
      const PointResult& off = results[loads.size() + i];
      if (loads[i] >= 2.0 * sat_load) {
        // No cliff with the governor: past saturation, goodput holds.
        NDP_CHECK_MSG(on.goodput_qps >= 0.8 * peak_on,
                      "governor-on goodput cliffed past saturation");
        // Deadlines bind end to end: what completes, completes on time.
        NDP_CHECK_MSG(on.p99_us * 1e6 <= kInteractiveDeadlinePs,
                      "interactive p99 exceeded the SLO past saturation");
        off_cliffs |= off.goodput_qps < 0.8 * peak_on;
      }
    }
    NDP_CHECK_MSG(off_cliffs,
                  "governor-off control failed to cliff past saturation — "
                  "the contrast claim is vacuous");
#ifdef NDP_FAULT_INJECT
    const PointResult& f = results[fault_idx];
    NDP_CHECK_MSG(f.goodput_qps > 0,
                  "faulted point served nothing: retry budget spun instead "
                  "of shedding");
#endif
  } else {
    std::printf("(small SERVING_ROWS/WINDOW: bounds reported, not enforced)\n");
  }

  report.WriteJson();
  return 0;
}
