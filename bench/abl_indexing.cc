// Ablation — §4 "Indexing and Compression": "As NDP accelerators like JAFAR
// can perform extremely efficient scans, this raises the research question of
// whether NDP obviates the need for indexing." Compares a zone-map-pruned CPU
// scan against the JAFAR full scan on (a) unclustered uniform data, where
// zone maps prune nothing, and (b) value-clustered data, where they prune
// almost everything.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"
#include "db/zonemap.h"

using namespace ndp;

namespace {

/// Times a zone-map select: per-block scans of the candidate blocks.
double ZoneMapSelectMs(core::SystemModel* sys, const db::Column& col,
                       const db::ZoneMap& zm, int64_t lo, int64_t hi) {
  db::Pred pred = db::Pred::Between(lo, hi);
  auto blocks = zm.CandidateBlocks(pred);
  uint64_t col_base = sys->PinColumn(col);
  uint64_t out_base = sys->Allocate(col.size() * 4);
  std::vector<std::unique_ptr<cpu::SelectScanStream>> scans;
  std::vector<cpu::UopStream*> children;
  for (uint32_t b : blocks) {
    uint64_t begin = static_cast<uint64_t>(b) * zm.block_rows();
    uint64_t n = std::min<uint64_t>(zm.block_rows(), col.size() - begin);
    scans.push_back(std::make_unique<cpu::SelectScanStream>(
        col.data() + begin, n, lo, hi, col_base + begin * 8,
        out_base + begin * 4, /*predicated=*/false));
    children.push_back(scans.back().get());
  }
  cpu::ConcatStream stream(children);
  auto run = sys->RunStream(&stream).ValueOrDie();
  return bench::Ms(run.duration_ps);
}

void RunCase(const char* label, const db::Column& col, int64_t lo, int64_t hi) {
  db::ZoneMap zm(col);
  db::Pred pred = db::Pred::Between(lo, hi);
  core::SystemModel sys_zm(core::PlatformConfig::Gem5());
  double zm_ms = ZoneMapSelectMs(&sys_zm, col, zm, lo, hi);
  core::SystemModel sys_full(core::PlatformConfig::Gem5());
  auto full = sys_full
                  .RunCpuSelect(col, lo, hi, db::SelectMode::kBranching)
                  .ValueOrDie();
  core::SystemModel sys_j(core::PlatformConfig::Gem5());
  auto jaf = sys_j.RunJafarSelect(col, lo, hi).ValueOrDie();
  std::printf("%-14s %10.1f%% %-14.3f %-14.3f %-12.3f %s\n", label,
              zm.PruneFraction(pred) * 100, bench::Ms(full.duration_ps), zm_ms,
              bench::Ms(jaf.duration_ps),
              zm_ms < bench::Ms(jaf.duration_ps) ? "zone map" : "JAFAR");
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader(
      "Ablation — zone-map indexing vs. NDP scan, 5% selectivity (" +
      std::to_string(rows) + " rows)");

  // Unclustered: uniform random — every 4096-row block spans ~the full value
  // domain, so zone maps prune nothing.
  db::Column random_col = bench::UniformColumn(rows);

  // Clustered: the same values, sorted — qualifying rows concentrate in a few
  // blocks (think: a date column in insertion order).
  db::Column sorted_col = db::Column::Int64("sorted");
  {
    std::vector<int64_t> v(random_col.values());
    std::sort(v.begin(), v.end());
    for (int64_t x : v) sorted_col.Append(x);
  }

  std::printf("\n%-14s %11s %-14s %-14s %-12s %s\n", "data", "pruned",
              "cpu_full_ms", "cpu_zonemap_ms", "jafar_ms", "winner");
  RunCase("unclustered", random_col, 400000, 449999);
  RunCase("clustered", sorted_col, 400000, 449999);
  std::printf(
      "\nExpected: on unclustered data zone maps prune ~0%% and JAFAR wins\n"
      "outright; on clustered data the zone map skips ~95%% of blocks and\n"
      "beats even the NDP scan — NDP does not obviate lightweight indexing,\n"
      "it changes where the break-even sits (§4).\n");
  return 0;
}
