// Ablation A4 — memory contention without a scheduler (§3.3). "Without a
// scheduling system, JAFAR can only run while the memory controller is idle."
// We compare exclusive rank ownership (MR3/MPR) against "polite" execution,
// where JAFAR defers to any pending host traffic, while the CPU runs a
// memory-intensive aggregate over a different region of the same channel.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

namespace {

/// Runs a JAFAR select while the CPU streams an aggregate; returns the JAFAR
/// completion time (ms) and number of polite back-offs.
std::pair<double, uint64_t> RunWithContention(bool require_ownership,
                                              const db::Column& col,
                                              const db::Column& cpu_col) {
  core::PlatformConfig p = core::PlatformConfig::Gem5();
  p.dram_org.ranks_per_channel = 2;  // JAFAR on rank 0, CPU data on rank 1
  core::SystemModel sys(p);
  uint64_t col_base = sys.PinColumn(col);
  uint64_t out_base = sys.Allocate((col.size() + 7) / 8 + 64, 4096);

  // CPU working set on rank 1 so only bus/bank-level interference remains in
  // the exclusive case.
  uint64_t rank1 = sys.dram().organization().BytesPerRank();
  sys.dram().backing_store().Write(rank1, cpu_col.data(), cpu_col.SizeBytes());

  jafar::DeviceConfig cfg = sys.jafar().config();
  cfg.require_ownership = require_ownership;
  jafar::Device device(&sys.dram(), 0, 0, cfg);
  if (require_ownership) {
    bool granted = false;
    sys.dram().controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    sys.eq().RunUntilTrue([&] { return granted; });
  }

  // Start the CPU streaming loop (continuous aggregate over rank 1).
  cpu::AggregateScanStream cpu_stream(cpu_col.size(), rank1);
  bool cpu_done = false;
  NDP_CHECK(sys.cpu().Run(&cpu_stream, [&](sim::Tick) { cpu_done = true; }).ok());

  jafar::SelectJob job;
  job.col_base = col_base;
  job.num_rows = col.size();
  job.range_low = 0;
  job.range_high = 499999;
  job.out_base = out_base;
  bool done = false;
  sim::Tick start = sys.eq().Now(), end = 0;
  NDP_CHECK(device.StartSelect(job, [&](sim::Tick tk) {
    done = true;
    end = tk;
  }).ok());
  sys.eq().RunUntilTrue([&] { return done; });
  (void)cpu_done;
  return {bench::Ms(end - start), device.stats().polite_backoffs};
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 256u * 1024);
  bench::PrintHeader(
      "Ablation A4 — JAFAR under memory contention, with and without rank "
      "ownership (" +
      std::to_string(rows) + " rows; CPU streams an aggregate concurrently)");
  db::Column col = bench::UniformColumn(rows);
  db::Column cpu_col = bench::UniformColumn(rows, 99);

  auto [own_ms, own_backoffs] = RunWithContention(true, col, cpu_col);
  auto [polite_ms, polite_backoffs] = RunWithContention(false, col, cpu_col);

  std::printf("\n%-44s %-12s %-16s\n", "mode", "jafar_ms", "polite_backoffs");
  std::printf("%-44s %-12.3f %-16llu\n",
              "exclusive rank ownership (MR3/MPR)", own_ms,
              (unsigned long long)own_backoffs);
  std::printf("%-44s %-12.3f %-16llu\n",
              "no scheduler: idle-period stealing only", polite_ms,
              (unsigned long long)polite_backoffs);
  std::printf("slowdown without a scheduler: %.2fx\n", polite_ms / own_ms);
  std::printf(
      "\nExpected: without coordinated scheduling JAFAR repeatedly defers to\n"
      "host traffic and runs several times slower — the paper's motivation\n"
      "for DRAM-ownership scheduling (§3.3).\n");
  return 0;
}
