// Machine-readable benchmark reporting. Every bench builds a Reporter,
// records its configuration and one Point per sweep step (metrics plus,
// optionally, the registry counter deltas of the runs behind the step), and
// finishes with WriteJson(): a BENCH_<name>.json file next to the binary that
// downstream tooling (plotters, regression trackers, the bench_json_valid
// ctest) can consume without scraping the human-oriented table.
//
// JSON layout:
//   {
//     "name": "<bench name>",
//     "config": { "<key>": <value>, ... },        // env knobs, sizes, modes
//     "points": [
//       { "label": "<point label>",
//         "metrics": { "<key>": <number>, ... },
//         "counters": { "<path>": <number>, ... } // optional snapshot delta
//       }, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/stats_registry.h"

namespace ndp::bench {

/// \brief One sweep step of a benchmark.
class Point {
 public:
  explicit Point(std::string label) : label_(std::move(label)) {}

  Point& Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    return *this;
  }

  /// Attaches a registry snapshot delta; paths are prefixed with
  /// "<prefix>." when `prefix` is non-empty (to distinguish e.g. the CPU
  /// run's counters from the JAFAR run's within one point).
  Point& Counters(const std::string& prefix, const StatsSnapshot& delta) {
    for (const auto& [path, entry] : delta.entries()) {
      counters_.emplace_back(prefix.empty() ? path : prefix + "." + path,
                             entry.value);
    }
    return *this;
  }

  const std::string& label() const { return label_; }
  double metric(const std::string& key, double fallback = 0.0) const {
    for (const auto& [k, v] : metrics_) {
      if (k == key) return v;
    }
    return fallback;
  }

  json::Value ToJson() const {
    json::Value p = json::Value::Object();
    p.Set("label", json::Value::Str(label_));
    json::Value metrics = json::Value::Object();
    for (const auto& [k, v] : metrics_) metrics.Set(k, json::Value::Number(v));
    p.Set("metrics", std::move(metrics));
    if (!counters_.empty()) {
      json::Value counters = json::Value::Object();
      for (const auto& [k, v] : counters_) {
        counters.Set(k, json::Value::Number(v));
      }
      p.Set("counters", std::move(counters));
    }
    return p;
  }

 private:
  std::string label_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, double>> counters_;
};

/// \brief Accumulates a benchmark's config and points; renders JSON.
class Reporter {
 public:
  explicit Reporter(std::string name) : name_(std::move(name)) {}

  Reporter& Config(const std::string& key, double value) {
    config_.Set(key, json::Value::Number(value));
    return *this;
  }
  Reporter& Config(const std::string& key, const std::string& value) {
    config_.Set(key, json::Value::Str(value));
    return *this;
  }
  /// Structured config blocks (e.g. the per-generation device parameters);
  /// the value is emitted verbatim under `key`.
  Reporter& Config(const std::string& key, json::Value value) {
    config_.Set(key, std::move(value));
    return *this;
  }

  /// Starts a new point; returns it for Metric()/Counters() chaining. The
  /// reference stays valid until the next AddPoint (deque-like storage).
  Point& AddPoint(const std::string& label) {
    points_.push_back(std::make_unique<Point>(label));
    return *points_.back();
  }

  const std::vector<std::unique_ptr<Point>>& points() const { return points_; }

  json::Value ToJson() const {
    json::Value root = json::Value::Object();
    root.Set("name", json::Value::Str(name_));
    root.Set("config", config_);
    json::Value pts = json::Value::Array();
    for (const auto& p : points_) pts.Append(p->ToJson());
    root.Set("points", std::move(pts));
    return root;
  }

  /// Writes BENCH_<name>.json into the working directory (or `dir` when
  /// given). Returns false (with a message on stderr) if the file cannot be
  /// written; benches treat that as a failure so CI notices.
  bool WriteJson(const std::string& dir = "") const {
    std::string path = dir.empty() ? "" : dir + "/";
    path += "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string text = ToJson().Dump(/*indent=*/2);
    text += "\n";
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  json::Value config_ = json::Value::Object();
  std::vector<std::unique_ptr<Point>> points_;
};

}  // namespace ndp::bench
