// Ablation A6 — §4 "Projections": tuple reconstruction fetches qualifying
// values of one column given a selection on another. Compares the CPU
// late-materialization gather against the JAFAR project engine across
// selectivities.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 512u * 1024);
  bench::PrintHeader("Ablation A6 — NDP projection (" + std::to_string(rows) +
                     " rows)");
  db::Column sel_col = bench::UniformColumn(rows, 1);
  db::Column val_col = bench::UniformColumn(rows, 2);

  std::printf("\n%-12s %-16s %-16s %-10s\n", "selectivity", "cpu_gather_ms",
              "jafar_proj_ms", "speedup");
  for (uint64_t pct : {1ull, 10ull, 25ull, 50ull, 100ull}) {
    int64_t hi = static_cast<int64_t>(pct * 10000) - 1;
    core::SystemModel sys(core::PlatformConfig::Gem5());
    // Build the selection (positions + bitmap) once, outside the timing.
    db::QueryContext ctx;
    db::PositionList pos =
        db::ScanSelect(&ctx, sel_col, db::Pred::Between(0, hi));
    auto cpu = sys.RunCpuProject(val_col, pos).ValueOrDie();

    uint64_t col_base = sys.PinColumn(val_col);
    BitVector bm = db::PositionsToBitmap(pos, rows);
    uint64_t bitmap = sys.Allocate(bm.num_bytes() + 64, 4096);
    sys.dram().backing_store().Write(bitmap, bm.bytes(), bm.num_bytes());
    uint64_t out = sys.Allocate(rows * 8, 4096);

    bool granted = false;
    sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
    sys.eq().RunUntilTrue([&] { return granted; });
    jafar::ProjectJob job;
    job.col_base = col_base;
    job.num_rows = rows;
    job.bitmap_base = bitmap;
    job.out_base = out;
    bool done = false;
    sim::Tick start = sys.eq().Now(), end = 0;
    NDP_CHECK(sys.driver().ProjectJafar(job, [&](sim::Tick t) {
      done = true;
      end = t;
    }).ok());
    sys.eq().RunUntilTrue([&] { return done; });
    double jafar_ms = bench::Ms(end - start);
    std::printf("%9llu%%  %-16.3f %-16.3f %-10.2f\n", (unsigned long long)pct,
                bench::Ms(cpu.duration_ps), jafar_ms,
                bench::Ms(cpu.duration_ps) / jafar_ms);
  }
  std::printf(
      "\nExpected: the CPU gather cost grows with qualifying rows (dependent\n"
      "loads through the hierarchy); JAFAR streams the column once at fixed\n"
      "cost, so its advantage peaks at high selectivity where every gather\n"
      "is a full cache-line round trip.\n");
  return 0;
}
