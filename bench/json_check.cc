// Validates BENCH_*.json artifacts: each file named on the command line must
// parse as JSON and carry the Reporter schema — a string "name", an object
// "config", and a non-empty array "points" whose elements each have a string
// "label" and an object "metrics". A point may also carry an optional
// "counters" object (a registry snapshot delta): every key must be a
// dotted-path counter name and every value a number. A config may carry an
// optional "generations" block (one object per swept device generation,
// keyed by generation name): every key must parse as a DeviceGeneration —
// an unknown generation string fails the file — and every entry must carry
// the accel-derived datapath numbers (plus the bank-comparator block for
// v2_bank_level). Exit 0 iff every file checks out; used by the
// bench_json_valid ctest targets.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jafar/generation.h"
#include "util/json.h"

namespace {

/// Every generation entry carries the rank-datapath numbers; the v2 entry
/// additionally carries the per-bank comparator rate/energy and the
/// command-flow timing pushed into the DRAM model.
bool CheckGenerationEntry(const char* path, const std::string& name,
                          ndp::jafar::DeviceGeneration gen,
                          const ndp::json::Value& entry) {
  if (!entry.is_object()) {
    std::fprintf(stderr, "%s: generation \"%s\" is not an object\n", path,
                 name.c_str());
    return false;
  }
  std::vector<const char*> required = {"words_per_cycle",
                                       "energy_per_word_fj"};
  if (gen == ndp::jafar::DeviceGeneration::kV2BankLevel) {
    required.insert(required.end(),
                    {"bank_words_per_cycle", "bank_energy_per_word_fj",
                     "fill_latency_cycles", "min_rd_spacing_cycles",
                     "drain_cycles"});
  }
  for (const char* field : required) {
    const ndp::json::Value* v = entry.Find(field);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr,
                   "%s: generation \"%s\": missing numeric \"%s\"\n", path,
                   name.c_str(), field);
      return false;
    }
  }
  return true;
}

bool CheckGenerationsBlock(const char* path, const ndp::json::Value& block) {
  if (!block.is_object() || block.members().empty()) {
    std::fprintf(stderr, "%s: \"generations\" is not a non-empty object\n",
                 path);
    return false;
  }
  for (const auto& [name, entry] : block.members()) {
    ndp::Result<ndp::jafar::DeviceGeneration> gen =
        ndp::jafar::ParseDeviceGeneration(name);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s: unknown device generation \"%s\" (%s)\n",
                   path, name.c_str(), gen.status().ToString().c_str());
      return false;
    }
    if (!CheckGenerationEntry(path, name, gen.value(), entry)) return false;
  }
  return true;
}

/// BENCH_serving.json carries the overload-ladder schema on top of the
/// generic Reporter one: the config pins the experiment size and the
/// interactive SLO, every ladder point ("load...") reports offered vs.
/// goodput qps plus the full latency tail and the oracle verdict, and a
/// "summary" point carries the derived peak/saturation numbers the no-cliff
/// analysis keys on. A serving file missing any of these is rejected — the
/// downstream goodput regression tracker would otherwise silently chart 0s.
bool CheckServingSchema(const char* path, const ndp::json::Value& root) {
  const ndp::json::Value& config = *root.Find("config");
  for (const char* field : {"rows", "window_us", "interactive_slo_us"}) {
    const ndp::json::Value* v = config.Find(field);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr, "%s: serving config: missing numeric \"%s\"\n",
                   path, field);
      return false;
    }
  }
  bool has_summary = false;
  for (const ndp::json::Value& p : root.Find("points")->items()) {
    const std::string& label = p.Find("label")->AsString();
    const ndp::json::Value& metrics = *p.Find("metrics");
    if (label == "summary") {
      has_summary = true;
      for (const char* field :
           {"peak_goodput_qps", "saturation_load_reqs_per_us"}) {
        const ndp::json::Value* v = metrics.Find(field);
        if (v == nullptr || !v->is_number()) {
          std::fprintf(stderr, "%s: serving summary: missing numeric \"%s\"\n",
                       path, field);
          return false;
        }
      }
      continue;
    }
    if (label.rfind("load", 0) != 0) continue;
    for (const char* field : {"offered_qps", "goodput_qps", "governor_on",
                              "p50_us", "p99_us", "p999_us", "match"}) {
      const ndp::json::Value* v = metrics.Find(field);
      if (v == nullptr || !v->is_number()) {
        std::fprintf(stderr,
                     "%s: serving point \"%s\": missing numeric \"%s\"\n",
                     path, label.c_str(), field);
        return false;
      }
    }
  }
  if (!has_summary) {
    std::fprintf(stderr, "%s: serving file has no \"summary\" point\n", path);
    return false;
  }
  return true;
}

/// BENCH_abl_join.json carries the join-pushdown schema on top of the
/// generic Reporter one: the config pins the sweep sizes and Bloom-filter
/// shape, every query point ("theta...") reports both operators' CPU and
/// NDP times plus the oracle verdict, every skew point ("skew...") reports
/// the steal setting and makespan, and a "summary" point carries the
/// steal-contrast ratios the skew-rebalancing claim keys on.
bool CheckJoinSchema(const char* path, const ndp::json::Value& root) {
  const ndp::json::Value& config = *root.Find("config");
  for (const char* field : {"scale", "rows", "filter_kb", "hashes"}) {
    const ndp::json::Value* v = config.Find(field);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr, "%s: join config: missing numeric \"%s\"\n", path,
                   field);
      return false;
    }
  }
  bool has_theta = false, has_skew = false, has_summary = false;
  for (const ndp::json::Value& p : root.Find("points")->items()) {
    const std::string& label = p.Find("label")->AsString();
    const ndp::json::Value& metrics = *p.Find("metrics");
    std::vector<const char*> required;
    if (label == "summary") {
      has_summary = true;
      required = {"steal_ratio_t15", "steal_ratio_t20"};
    } else if (label.rfind("theta", 0) == 0) {
      has_theta = true;
      required = {"theta", "q3_cpu_ms", "q3_ndp_ms", "q18_cpu_ms",
                  "q18_ndp_ms", "match"};
    } else if (label.rfind("skew", 0) == 0) {
      has_skew = true;
      required = {"theta", "steal", "makespan_ms", "match"};
    } else {
      continue;
    }
    for (const char* field : required) {
      const ndp::json::Value* v = metrics.Find(field);
      if (v == nullptr || !v->is_number()) {
        std::fprintf(stderr, "%s: join point \"%s\": missing numeric \"%s\"\n",
                     path, label.c_str(), field);
        return false;
      }
    }
  }
  if (!has_theta || !has_skew || !has_summary) {
    std::fprintf(stderr,
                 "%s: join file lacks a theta/skew/summary point "
                 "(theta=%d skew=%d summary=%d)\n",
                 path, has_theta, has_skew, has_summary);
    return false;
  }
  return true;
}

bool CheckFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  ndp::Result<ndp::json::Value> parsed = ndp::json::Value::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  const ndp::json::Value& root = parsed.value();
  if (!root.is_object()) {
    std::fprintf(stderr, "%s: root is not an object\n", path);
    return false;
  }
  const ndp::json::Value* name = root.Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    std::fprintf(stderr, "%s: missing string \"name\"\n", path);
    return false;
  }
  const ndp::json::Value* config = root.Find("config");
  if (config == nullptr || !config->is_object()) {
    std::fprintf(stderr, "%s: missing object \"config\"\n", path);
    return false;
  }
  const ndp::json::Value* generations = config->Find("generations");
  if (generations != nullptr && !CheckGenerationsBlock(path, *generations)) {
    return false;
  }
  const ndp::json::Value* points = root.Find("points");
  if (points == nullptr || !points->is_array() || points->size() == 0) {
    std::fprintf(stderr, "%s: missing non-empty array \"points\"\n", path);
    return false;
  }
  for (const ndp::json::Value& p : points->items()) {
    const ndp::json::Value* label = p.is_object() ? p.Find("label") : nullptr;
    const ndp::json::Value* metrics = p.is_object() ? p.Find("metrics") : nullptr;
    if (label == nullptr || !label->is_string() || metrics == nullptr ||
        !metrics->is_object()) {
      std::fprintf(stderr, "%s: malformed point\n", path);
      return false;
    }
    const ndp::json::Value* counters = p.Find("counters");
    if (counters != nullptr) {
      if (!counters->is_object()) {
        std::fprintf(stderr, "%s: point \"%s\": \"counters\" is not an object\n",
                     path, label->AsString().c_str());
        return false;
      }
      for (const auto& [key, value] : counters->members()) {
        // Registry counter paths are dotted (e.g. "sim.part0.events"): a key
        // with no dot is a metric that leaked into the wrong object.
        if (key.find('.') == std::string::npos || !value.is_number()) {
          std::fprintf(stderr,
                       "%s: point \"%s\": counter \"%s\" is not a dotted "
                       "path with a numeric value\n",
                       path, label->AsString().c_str(), key.c_str());
          return false;
        }
      }
    }
  }
  if (name->AsString() == "serving" && !CheckServingSchema(path, root)) {
    return false;
  }
  if (name->AsString() == "abl_join" && !CheckJoinSchema(path, root)) {
    return false;
  }
  std::printf("%s: ok (%zu points)\n", path, points->size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json...\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) all_ok = CheckFile(argv[i]) && all_ok;
  return all_ok ? 0 : 1;
}
