// Ablation — concurrent multi-query runtime: offered host load x QoS budget
// x placement skew. Each grid point runs a batch of concurrent selects
// through the NdpRuntime over a 4-device DIMM array while a seeded host
// traffic generator loads one channel, and measures NDP throughput, the p99
// host-request latency (against a jobs-free baseline of identical sim
// length), and the adaptation counters (admission defers, QoS shrinks/grows,
// steals). A separate no-traffic pair contrasts steal on/off under 4x skew.
// Claims under test: every job matches the CPU oracle; the runtime's
// added p99 host stall stays within the configured lease-stall bound; and
// work stealing cuts the skewed makespan by >= 1.5x. Writes
// BENCH_abl_runtime.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/host_traffic.h"
#include "core/runtime.h"

using namespace ndp;

namespace {

constexpr int kJobs = 3;  ///< concurrent selects per grid point
constexpr int64_t kLo[kJobs] = {0, 250'000, 700'000};
constexpr int64_t kHi[kJobs] = {333'333, 649'999, 999'999};

jafar::DeviceConfig DeviceConfig() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

struct PointResult {
  double load_reqs_per_us = 0;
  double qos_pct = 0;
  double skew = 1.0;
  double makespan_ms = 0;
  double mrows_per_s = 0;
  double p99_host_us = 0;       ///< with NDP jobs running
  double p99_baseline_us = 0;   ///< traffic alone, same sim length
  bool match = true;
  StatsSnapshot counters;
};

/// Runs `traffic alone` for `horizon_ps` at the given load and returns the
/// p99 request latency — the no-NDP yardstick for the stall-budget claim.
double BaselineP99Us(const db::Column& col, double load, uint64_t seed,
                     sim::Tick horizon_ps) {
  core::DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, DeviceConfig());
  (void)array.PlaceColumn(col).ValueOrDie();  // identical address layout
  uint64_t region = array.AllocOnDevice(0, 1u << 20).ValueOrDie();
  core::HostTrafficConfig tc;
  tc.reqs_per_us = load;
  tc.seed = seed;
  core::HostTrafficGen traffic(&array.eq(), &array.dram().controller(0), tc);
  traffic.AddRegion(region, 1u << 20);
  traffic.Start();
  array.eq().RunUntil(array.eq().Now() + horizon_ps);
  traffic.Stop();
  return traffic.latency().Quantile(0.99) / 1e6;
}

PointResult RunPoint(const db::Column& col, double load, double qos_pct,
                     double skew, bool steal) {
  PointResult r;
  r.load_reqs_per_us = load;
  r.qos_pct = qos_pct;
  r.skew = skew;

  core::DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, DeviceConfig());
  core::RuntimeConfig cfg;
  cfg.qos_max_cpu_slowdown_pct = qos_pct;
  cfg.steal_enabled = steal;
  core::NdpRuntime runtime(&array, cfg);
  core::PlacedColumn placed =
      array.PlaceColumn(col, {skew, 1.0, 1.0, 1.0}).ValueOrDie();

  uint64_t region = array.AllocOnDevice(0, 1u << 20).ValueOrDie();
  core::HostTrafficConfig tc;
  tc.reqs_per_us = load > 0 ? load : 1.0;  // generator rejects a zero rate
  tc.seed = 20150601;
  core::HostTrafficGen traffic(&array.eq(), &array.dram().controller(0), tc);
  traffic.AddRegion(region, 1u << 20);
  if (load > 0) traffic.Start();
  // Warm-up: host-only traffic (or an observable stretch of channel
  // silence) gives the estimator real history before any job arrives.
  array.eq().RunUntil(array.eq().Now() + 20'000'000);

  StatsSnapshot before = array.stats().Snapshot();
  sim::Tick start = array.eq().Now();
  std::vector<core::NdpRuntime::JobId> ids;
  for (int j = 0; j < kJobs; ++j) {
    ids.push_back(runtime
                      .SubmitSelect(placed, kLo[j], kHi[j],
                                    core::JobPriority::kBatch)
                      .ValueOrDie());
  }
  NDP_CHECK(runtime.Drain().ok());
  sim::Tick makespan = array.eq().Now() - start;
  if (load > 0) traffic.Stop();

  for (int j = 0; j < kJobs; ++j) {
    const core::JobResult* res = runtime.result(ids[j]);
    uint64_t oracle = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      oracle += col[i] >= kLo[j] && col[i] <= kHi[j];
    }
    r.match &= res != nullptr && res->status.ok() && res->matches == oracle;
  }
  r.makespan_ms = bench::Ms(makespan);
  r.mrows_per_s = static_cast<double>(col.size()) * kJobs /
                  (r.makespan_ms * 1e3);
  r.counters = array.stats().Snapshot().DeltaSince(before);
  if (load > 0) {
    r.p99_host_us = traffic.latency().Quantile(0.99) / 1e6;
    r.p99_baseline_us =
        BaselineP99Us(col, load, tc.seed, makespan + 20'000'000);
  }
  return r;
}

/// Streaming rate of ONE device on an otherwise idle system — the yardstick
/// for the array-level scaling claim.
double SingleLaneMRowsPerS(const db::Column& col) {
  core::DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, DeviceConfig());
  core::NdpRuntime runtime(&array, core::RuntimeConfig{});
  core::PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  array.eq().RunUntil(array.eq().Now() + 20'000'000);
  sim::Tick start = array.eq().Now();
  auto id = runtime.SubmitSelect(placed, kLo[0], kHi[0]).ValueOrDie();
  NDP_CHECK(runtime.WaitFor(id).ok());
  double ms = bench::Ms(array.eq().Now() - start);
  return static_cast<double>(col.size()) / (ms * 1e3);
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 256u * 1024);
  // Assertions about ratios and tail latencies need enough work per lane to
  // amortize lease grain; smoke runs print the table but skip the bounds.
  const bool full_size = rows >= 128u * 1024;
  bench::PrintHeader(
      "Ablation — multi-query runtime: load x QoS budget x skew (" +
      std::to_string(rows) + " rows, " + std::to_string(kJobs) +
      " concurrent selects)");
  db::Column col = bench::UniformColumn(rows);

  // Random row-miss traffic serves only a few tens of requests/us per
  // channel, so the ladder spans idle -> fractional -> saturated.
  const std::vector<double> loads = {0.0, 5.0, 15.0, 60.0};
  const std::vector<double> qos_pcts = {10.0, 25.0, 50.0};
  const std::vector<double> skews = {1.0, 4.0};

  struct GridPoint {
    double load, qos, skew;
  };
  std::vector<GridPoint> grid;
  for (double load : loads) {
    for (double qos : qos_pcts) {
      for (double skew : skews) grid.push_back({load, qos, skew});
    }
  }
  // Two extra no-traffic points isolate the steal contrast under 4x skew.
  const size_t steal_on_idx = grid.size();
  grid.push_back({0.0, 25.0, 4.0});
  const size_t steal_off_idx = grid.size();
  grid.push_back({0.0, 25.0, 4.0});

  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      grid.size(), [&](size_t i) {
        bool steal = i != steal_off_idx;
        return RunPoint(col, grid[i].load, grid[i].qos, grid[i].skew, steal);
      });

  bench::Reporter report("abl_runtime");
  report.Config("rows", static_cast<double>(rows));
  report.Config("jobs", static_cast<double>(kJobs));

  core::RuntimeConfig defaults;
  const double stall_budget_us =
      static_cast<double>(defaults.qos_max_stall_bus_cycles) *
      dram::DramTiming::DDR3_1600().tck_ps / 1e6;

  std::printf("\n%-8s %-6s %-6s %-12s %-12s %-10s %-10s %-8s %-8s %s\n",
              "load/us", "qos%", "skew", "makespan_ms", "mrows_per_s",
              "p99_us", "base_us", "defers", "shrinks", "match");
  bool all_match = true;
  bool stalls_in_budget = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    double defers = r.counters.Value("array.runtime.admission_defers");
    double shrinks = 0;
    for (int c = 0; c < 4; ++c) {
      shrinks += r.counters.Value("array.runtime.ctrl" + std::to_string(c) +
                                  ".qos_shrinks");
    }
    const char* tag = i == steal_on_idx    ? " [steal on]"
                      : i == steal_off_idx ? " [steal off]"
                                           : "";
    std::printf(
        "%-8g %-6g %-6g %-12.3f %-12.2f %-10.2f %-10.2f %-8g %-8g %s%s\n",
        r.load_reqs_per_us, r.qos_pct, r.skew, r.makespan_ms, r.mrows_per_s,
        r.p99_host_us, r.p99_baseline_us, defers, shrinks,
        r.match ? "MATCH" : "MISMATCH", tag);
    all_match &= r.match;
    // The runtime may stretch host tail latency by at most the lease-stall
    // bound (a request can land just as a lease begins) plus queue-drain
    // slack; measured against the jobs-free baseline at the same load.
    if (r.load_reqs_per_us > 0 && i < steal_on_idx) {
      stalls_in_budget &=
          r.p99_host_us <= r.p99_baseline_us + 1.5 * stall_budget_us;
    }
    std::string label = "load" + std::to_string((int)r.load_reqs_per_us) +
                        "_qos" + std::to_string((int)r.qos_pct) + "_skew" +
                        std::to_string((int)r.skew) +
                        (i == steal_on_idx    ? "_steal_on"
                         : i == steal_off_idx ? "_steal_off"
                                              : "");
    report.AddPoint(label)
        .Metric("load_reqs_per_us", r.load_reqs_per_us)
        .Metric("qos_pct", r.qos_pct)
        .Metric("skew", r.skew)
        .Metric("makespan_ms", r.makespan_ms)
        .Metric("mrows_per_s", r.mrows_per_s)
        .Metric("p99_host_us", r.p99_host_us)
        .Metric("p99_baseline_us", r.p99_baseline_us)
        .Metric("stall_budget_us", stall_budget_us)
        .Metric("match", r.match ? 1.0 : 0.0)
        .Counters("", r.counters);
  }

  double steal_ratio = results[steal_off_idx].makespan_ms /
                       results[steal_on_idx].makespan_ms;
  std::printf("\nSteal contrast at 4x skew (no traffic): %.3fms off vs "
              "%.3fms on = %.2fx\n",
              results[steal_off_idx].makespan_ms,
              results[steal_on_idx].makespan_ms, steal_ratio);
  report.AddPoint("steal_contrast").Metric("makespan_ratio", steal_ratio);

  double single_lane = SingleLaneMRowsPerS(col);
  std::printf("Single-lane reference: %.2f Mrows/s\n", single_lane);
  report.AddPoint("single_lane_reference")
      .Metric("mrows_per_s", single_lane);

  NDP_CHECK_MSG(all_match, "a runtime select diverged from the CPU oracle");
  if (full_size) {
    NDP_CHECK_MSG(stalls_in_budget,
                  "p99 host latency exceeded the lease-stall budget");
    NDP_CHECK_MSG(steal_ratio >= 1.5,
                  "work stealing cut the 4x-skew makespan by < 1.5x");
    // Throughput scales across the array: the no-traffic uniform grid
    // points must beat a single lane's streaming rate by a wide margin
    // (4 lanes minus lease/window overheads).
    for (const PointResult& r : results) {
      if (r.load_reqs_per_us == 0 && r.skew == 1.0) {
        NDP_CHECK_MSG(r.mrows_per_s >= 2.0 * single_lane,
                      "concurrent throughput failed to scale across lanes");
      }
    }
  } else {
    std::printf("(small ABL_ROWS: bounds reported but not enforced)\n");
  }

  report.WriteJson();
  return 0;
}
