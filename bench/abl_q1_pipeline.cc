// Ablation — a whole query core in memory: TPC-H Q1's filter + grouped
// aggregation (the paper's headline combination of §2's select with §4's
// aggregations). JAFAR selects l_shipdate <= cutoff into a bitmap, then the
// grouped-aggregation engine sums l_quantity per (returnflag, linestatus)
// under that bitmap — no column data ever crosses the memory bus. The CPU
// baseline runs the same select + hash group-by µop kernels.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const double scale = bench::EnvDouble("ABL_TPCH_SCALE", 0.05);
  bench::PrintHeader(
      "Ablation — TPC-H Q1 core (filter + group-by) fully in memory (scale " +
      std::to_string(scale) + ")");
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = scale;
  db::tpch::Generate(cfg, &catalog);
  db::Table& li = catalog.Tab("lineitem");
  const uint64_t rows = li.num_rows();
  int64_t cutoff = db::tpch::DayNumber(1998, 12, 1) - 90;

  // Packed (returnflag, linestatus) key column, as the plan layer builds it.
  db::Column keys = db::Column::Int64("q1_key");
  const db::Column& rf = li.Col("l_returnflag");
  const db::Column& ls = li.Col("l_linestatus");
  for (uint64_t i = 0; i < rows; ++i) keys.Append(rf[i] * 16 + ls[i]);

  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t ship_base = sys.PinColumn(li.Col("l_shipdate"));
  uint64_t key_base = sys.PinColumn(keys);
  uint64_t qty_base = sys.PinColumn(li.Col("l_quantity"));
  uint64_t bitmap = sys.Allocate((rows + 7) / 8 + 64, 4096);
  uint64_t out = sys.Allocate(sys.jafar().config().groupby_buckets * 16, 4096);

  // --- CPU baseline: select µop kernel + hash group-by µop kernel over the
  // qualifying rows (modeled as a full-pass group-by; Q1's filter passes
  // ~98% of rows, so this is within 2% of the exact cost).
  cpu::SelectScanStream sel_stream(li.Col("l_shipdate").data(), rows,
                                   INT64_MIN, cutoff, ship_base,
                                   sys.Allocate(rows * 4), false);
  auto cpu_sel = sys.RunStream(&sel_stream).ValueOrDie();
  cpu::GroupByScanStream gb_stream(keys.data(), rows, key_base, qty_base,
                                   sys.Allocate(64 * 16), 64);
  auto cpu_gb = sys.RunStream(&gb_stream).ValueOrDie();
  double cpu_ms = bench::Ms(cpu_sel.duration_ps + cpu_gb.duration_ps);

  // --- NDP pipeline: select -> bitmap -> filtered group-by, all on-DIMM.
  bool granted = false;
  sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
  sys.eq().RunUntilTrue([&] { return granted; });

  sim::Tick start = sys.eq().Now();
  jafar::SelectJob sel;
  sel.col_base = ship_base;
  sel.num_rows = rows;
  sel.op = jafar::CompareOp::kLe;
  sel.range_low = cutoff;
  sel.out_base = bitmap;
  bool sel_done = false;
  NDP_CHECK(sys.jafar().StartSelect(sel, [&](sim::Tick) {
    sel_done = true;
  }).ok());
  sys.eq().RunUntilTrue([&] { return sel_done; });
  sim::Tick select_end = sys.eq().Now();

  jafar::GroupByJob gb;
  gb.key_base = key_base;
  gb.val_base = qty_base;
  gb.num_rows = rows;
  gb.kind = jafar::AggKind::kSum;
  gb.bitmap_base = bitmap;
  gb.out_base = out;
  bool gb_done = false;
  sim::Tick end = 0;
  NDP_CHECK(sys.driver().GroupByJafar(gb, [&](sim::Tick t) {
    gb_done = true;
    end = t;
  }).ok());
  sys.eq().RunUntilTrue([&] { return gb_done; });
  double ndp_ms = bench::Ms(end - start);

  // Functional check against the reference query implementation.
  db::QueryContext qctx;
  auto reference = db::tpch::RunQ1(&qctx, &catalog);
  bool ok = true;
  for (const auto& row : reference) {
    int64_t rf_code = rf.CodeOf(row.returnflag).ValueOrDie();
    int64_t ls_code = ls.CodeOf(row.linestatus).ValueOrDie();
    int64_t key = rf_code * 16 + ls_code;
    int64_t got = static_cast<int64_t>(
        sys.dram().backing_store().Read64(out + static_cast<uint64_t>(key) * 16));
    int64_t got_n = static_cast<int64_t>(sys.dram().backing_store().Read64(
        out + static_cast<uint64_t>(key) * 16 + 8));
    ok &= got == row.sum_qty && got_n == row.count_order;
  }

  std::printf("\nlineitem rows: %llu; Q1 groups verified against the plan\n",
              (unsigned long long)rows);
  std::printf("%-44s %-12s %-10s\n", "pipeline", "time_ms", "speedup");
  std::printf("%-44s %-12.3f %-10s\n", "CPU select + CPU hash group-by",
              cpu_ms, "1.00");
  std::printf("%-44s %-12.3f %-10.2f   (select %.3f + group-by %.3f)\n",
              "JAFAR select -> bitmap -> JAFAR group-by", ndp_ms,
              cpu_ms / ndp_ms, bench::Ms(select_end - start),
              bench::Ms(end - select_end));
  std::printf("functional check: %s\n", ok ? "sum_qty and counts match RunQ1"
                                           : "MISMATCH");
  return ok ? 0 : 1;
}
