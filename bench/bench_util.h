// Shared helpers for the benchmark harnesses.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "db/column.h"
#include "jafar/config.h"
#include "util/json.h"
#include "util/rng.h"

namespace ndp::bench {

/// Reads an environment override (e.g. FIG3_ROWS) or returns `fallback`.
/// Aborts on malformed input instead of silently treating it as 0 — a typo'd
/// FIG3_ROWS would otherwise quietly run a degenerate experiment.
inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  uint64_t parsed = std::strtoull(v, &end, 10);
  // strtoull legally wraps a leading '-' instead of failing; reject it too.
  if (errno != 0 || end == v || *end != '\0' || *v == '-') {
    std::fprintf(stderr, "%s: not a valid unsigned integer: \"%s\"\n", name, v);
    std::abort();
  }
  return parsed;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double parsed = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "%s: not a valid number: \"%s\"\n", name, v);
    std::abort();
  }
  return parsed;
}

/// The device-generation sweep list for head-to-head benches. NDP_DEVICE_GEN
/// unset (or empty) means "sweep every generation"; set, it pins the sweep to
/// exactly that generation — with the strict-parse abort of EnvU64, so a typo
/// never silently benchmarks the wrong datapath.
inline std::vector<jafar::DeviceGeneration> EnvGenerations() {
  const char* v = std::getenv("NDP_DEVICE_GEN");
  if (v == nullptr || *v == '\0') {
    return {jafar::DeviceGeneration::kV1RankIo,
            jafar::DeviceGeneration::kV2BankLevel};
  }
  Result<jafar::DeviceGeneration> parsed = jafar::ParseDeviceGeneration(v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "NDP_DEVICE_GEN: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  return {parsed.value()};
}

/// Derives the DeviceConfig matching `gen` (the deriver differs: the v2
/// datapath needs the organization to size its per-bank comparator slices).
inline jafar::DeviceConfig DeriveDeviceConfig(
    jafar::DeviceGeneration gen, const dram::DramTiming& timing,
    const dram::DramOrganization& org,
    const accel::DatapathResources& resources) {
  return (gen == jafar::DeviceGeneration::kV2BankLevel
              ? jafar::DeviceConfig::DeriveBank(timing, org, resources)
              : jafar::DeviceConfig::Derive(timing, resources))
      .ValueOrDie();
}

/// Renders the accel-derived parameters of one generation's DeviceConfig as
/// a JSON object — the per-generation block json_check validates inside
/// "config"."generations".
inline json::Value GenerationConfigJson(const jafar::DeviceConfig& cfg) {
  json::Value g = json::Value::Object();
  g.Set("words_per_cycle", json::Value::Number(cfg.words_per_cycle));
  g.Set("energy_per_word_fj", json::Value::Number(cfg.energy_per_word_fj));
  if (cfg.generation == jafar::DeviceGeneration::kV2BankLevel) {
    g.Set("bank_words_per_cycle", json::Value::Number(cfg.bank_words_per_cycle));
    g.Set("bank_energy_per_word_fj",
          json::Value::Number(cfg.bank_energy_per_word_fj));
    g.Set("fill_latency_cycles",
          json::Value::Number(cfg.bank_filter.fill_latency_cycles));
    g.Set("min_rd_spacing_cycles",
          json::Value::Number(cfg.bank_filter.min_rd_spacing_cycles));
    g.Set("drain_cycles", json::Value::Number(cfg.bank_filter.drain_cycles));
  }
  return g;
}

/// The whole "generations" config block: one entry per swept generation,
/// keyed by the generation name, each derived for the given platform.
inline json::Value GenerationsConfigJson(
    const std::vector<jafar::DeviceGeneration>& gens,
    const dram::DramTiming& timing, const dram::DramOrganization& org,
    const accel::DatapathResources& resources) {
  json::Value block = json::Value::Object();
  for (jafar::DeviceGeneration gen : gens) {
    block.Set(jafar::DeviceGenerationToString(gen),
              GenerationConfigJson(DeriveDeviceConfig(gen, timing, org,
                                                      resources)));
  }
  return block;
}

/// The paper's Figure 3 dataset: uniformly distributed random integers in
/// [0, 1M) (§3.1), as an int64 column.
inline db::Column UniformColumn(uint64_t rows, uint64_t seed = 20150601) {
  db::Column col = db::Column::Int64("values");
  col.Reserve(rows);
  Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline double Ms(uint64_t ps) { return static_cast<double>(ps) / 1e9; }

}  // namespace ndp::bench
