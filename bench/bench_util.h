// Shared helpers for the benchmark harnesses.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/column.h"
#include "util/rng.h"

namespace ndp::bench {

/// Reads an environment override (e.g. FIG3_ROWS) or returns `fallback`.
/// Aborts on malformed input instead of silently treating it as 0 — a typo'd
/// FIG3_ROWS would otherwise quietly run a degenerate experiment.
inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  uint64_t parsed = std::strtoull(v, &end, 10);
  // strtoull legally wraps a leading '-' instead of failing; reject it too.
  if (errno != 0 || end == v || *end != '\0' || *v == '-') {
    std::fprintf(stderr, "%s: not a valid unsigned integer: \"%s\"\n", name, v);
    std::abort();
  }
  return parsed;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  double parsed = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "%s: not a valid number: \"%s\"\n", name, v);
    std::abort();
  }
  return parsed;
}

/// The paper's Figure 3 dataset: uniformly distributed random integers in
/// [0, 1M) (§3.1), as an int64 column.
inline db::Column UniformColumn(uint64_t rows, uint64_t seed = 20150601) {
  db::Column col = db::Column::Int64("values");
  col.Reserve(rows);
  Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline double Ms(uint64_t ps) { return static_cast<double>(ps) / 1e9; }

}  // namespace ndp::bench
