// Ablation — bank-level filtering (the v2_bank_level datapath) vs. the
// paper's rank-IO datapath, swept over query selectivity and bank
// parallelism. The v2 generation moves the comparators from the DIMM IO
// buffer into the banks: armed-bank reads never occupy the shared data bus,
// so up to banks_per_rank comparator streams run concurrently, paying for it
// with ARM/DISARM commands and an accumulator drain per row segment. The
// sweep shows where that trade wins — speedup should grow with
// banks_per_rank and be roughly selectivity-insensitive (the filter reads
// every row either way).
//
// With NDP_DEVICE_GEN unset both generations run and the bench FAILS (exit 1)
// if v2 does not beat v1 at every (selectivity, banks) point, or if any
// device result disagrees with the CPU oracle. Set, it pins the sweep to one
// generation and only the oracle check applies.
//
// Environment overrides: ABF_ROWS (default 1048576), NDP_DEVICE_GEN,
// NDP_BENCH_THREADS (default hardware concurrency).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABF_ROWS", 1u * 1024 * 1024);
  const std::vector<jafar::DeviceGeneration> gens = bench::EnvGenerations();
  const bool pinned = gens.size() == 1;
  // Starts at 4 banks: the per-bank comparator runs at about half the IO
  // burst rate, so two lanes only break even with the rank datapath — the
  // win comes from four lanes up.
  const std::vector<uint64_t> sel_pcts = {10, 50, 90};
  const std::vector<uint32_t> bank_counts = {4, 8, 16};

  bench::PrintHeader(
      "Ablation — bank-level filtering: selectivity x bank parallelism (" +
      std::to_string(rows) + " rows)");

  db::Column col = bench::UniformColumn(rows);

  struct PointResult {
    uint64_t pct = 0;
    uint32_t banks = 0;
    uint64_t cpu_ps = 0, jafar_ps = 0;
    uint64_t cpu_matches = 0, jafar_matches = 0;
    StatsSnapshot counters;
  };
  const size_t per_gen = sel_pcts.size() * bank_counts.size();
  // Generation-major, then banks-major: the point for (gens[g],
  // bank_counts[b], sel_pcts[s]) lives at g * per_gen + b * sel_pcts.size()
  // + s.
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      gens.size() * per_gen, [&](size_t i) {
        PointResult r;
        r.pct = sel_pcts[i % sel_pcts.size()];
        r.banks = bank_counts[(i / sel_pcts.size()) % bank_counts.size()];
        core::PlatformConfig plat = core::PlatformConfig::Gem5();
        plat.dram_org.banks_per_rank = r.banks;
        plat.device_gen = gens[i / per_gen];
        core::SystemModel sys(plat);
        int64_t hi = static_cast<int64_t>(r.pct * 10000) - 1;
        auto cpu = sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
                       .ValueOrDie();
        auto jaf = sys.RunJafarSelect(col, 0, hi).ValueOrDie();
        r.cpu_ps = cpu.duration_ps;
        r.jafar_ps = jaf.duration_ps;
        r.cpu_matches = cpu.matches;
        r.jafar_matches = jaf.matches;
        r.counters = jaf.counters;
        return r;
      });

  bench::Reporter report("abl_bank_filter");
  {
    core::PlatformConfig plat = core::PlatformConfig::Gem5();
    report.Config("rows", static_cast<double>(rows))
        .Config("platform", "gem5")
        .Config("generations",
                bench::GenerationsConfigJson(gens, plat.dram_timing,
                                             plat.dram_org,
                                             plat.jafar_datapath));
  }

  bool ok = true;
  for (size_t g = 0; g < gens.size(); ++g) {
    const char* gen_name = jafar::DeviceGenerationToString(gens[g]);
    std::printf("\n---- generation: %s ----\n", gen_name);
    std::printf("\n%-8s %-12s %-14s %-14s %-12s\n", "banks", "selectivity",
                "jafar_time_ms", "cpu_time_ms", "vs_cpu");
    for (size_t b = 0; b < bank_counts.size(); ++b) {
      for (size_t s = 0; s < sel_pcts.size(); ++s) {
        const PointResult& r =
            results[g * per_gen + b * sel_pcts.size() + s];
        if (r.cpu_matches != r.jafar_matches) {
          std::fprintf(stderr,
                       "MISMATCH %s banks=%u sel=%llu%%: cpu=%llu jafar=%llu\n",
                       gen_name, r.banks, (unsigned long long)r.pct,
                       (unsigned long long)r.cpu_matches,
                       (unsigned long long)r.jafar_matches);
          ok = false;
          continue;
        }
        double vs_cpu =
            static_cast<double>(r.cpu_ps) / static_cast<double>(r.jafar_ps);
        std::printf("%-8u %10llu%%  %-14.3f %-14.3f %-12.2f\n", r.banks,
                    (unsigned long long)r.pct, bench::Ms(r.jafar_ps),
                    bench::Ms(r.cpu_ps), vs_cpu);
        std::string label = std::to_string(r.pct) + "% " +
                            std::to_string(r.banks) + "banks";
        if (!pinned) label += std::string(" ") + gen_name;
        report.AddPoint(label)
            .Metric("selectivity_pct", static_cast<double>(r.pct))
            .Metric("banks_per_rank", static_cast<double>(r.banks))
            .Metric("jafar_time_ms", bench::Ms(r.jafar_ps))
            .Metric("cpu_time_ms", bench::Ms(r.cpu_ps))
            .Metric("speedup_vs_cpu", vs_cpu)
            .Metric("matches", static_cast<double>(r.jafar_matches))
            .Counters("jafar", r.counters);
      }
    }
  }

  // Head-to-head: with both generations in the sweep, v2 must win every
  // point — the whole reason to spend per-bank comparator area.
  if (!pinned) {
    size_t v1 = SIZE_MAX, v2 = SIZE_MAX;
    for (size_t g = 0; g < gens.size(); ++g) {
      if (gens[g] == jafar::DeviceGeneration::kV1RankIo) v1 = g;
      if (gens[g] == jafar::DeviceGeneration::kV2BankLevel) v2 = g;
    }
    std::printf("\n%-8s %-12s %-12s %-12s %-10s\n", "banks", "selectivity",
                "v1_ms", "v2_ms", "v2_gain");
    for (size_t b = 0; b < bank_counts.size(); ++b) {
      for (size_t s = 0; s < sel_pcts.size(); ++s) {
        const PointResult& r1 =
            results[v1 * per_gen + b * sel_pcts.size() + s];
        const PointResult& r2 =
            results[v2 * per_gen + b * sel_pcts.size() + s];
        double gain = static_cast<double>(r1.jafar_ps) /
                      static_cast<double>(r2.jafar_ps);
        std::printf("%-8u %10llu%%  %-12.3f %-12.3f %-10.2f\n", r1.banks,
                    (unsigned long long)r1.pct, bench::Ms(r1.jafar_ps),
                    bench::Ms(r2.jafar_ps), gain);
        if (r2.jafar_ps >= r1.jafar_ps) {
          std::fprintf(stderr,
                       "REGRESSION: v2_bank_level not faster than v1_rank_io "
                       "at banks=%u sel=%llu%% (v1=%llu ps, v2=%llu ps)\n",
                       r1.banks, (unsigned long long)r1.pct,
                       (unsigned long long)r1.jafar_ps,
                       (unsigned long long)r2.jafar_ps);
          ok = false;
        }
      }
    }
    std::printf(
        "\nExpected: v2 gains grow with banks_per_rank (more concurrent\n"
        "comparator streams off the shared IO bus) and vary little with\n"
        "selectivity (the filter scans every row regardless).\n");
  }
  if (!report.WriteJson()) ok = false;
  return ok ? 0 : 1;
}
