// Ablation A7 — §4 "NDP in Row-Stores and Hybrids": a slightly altered JAFAR
// applies several predicates per tuple in parallel. Row-store JAFAR must
// stream whole tuples (more bursts), while column-store JAFAR scans only the
// referenced columns — quantifying the classic trade-off at the DIMM level.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t tuples = bench::EnvU64("ABL_ROWS", 256u * 1024);
  bench::PrintHeader("Ablation A7 — row-store vs. column-store JAFAR (" +
                     std::to_string(tuples) + " tuples)");

  std::printf("\n%-14s %-12s %-18s %-18s %-14s\n", "tuple_bytes",
              "predicates", "rowstore_ms", "columnstore_ms", "col_advantage");
  for (uint32_t tuple_bytes : {16u, 32u, 64u, 128u}) {
    uint32_t attrs = tuple_bytes / 8;
    uint32_t npreds = std::min(2u, attrs);

    core::SystemModel sys(core::PlatformConfig::Gem5());
    // Row-store layout: tuples of `attrs` int64 attributes.
    Rng rng(7);
    std::vector<int64_t> rowdata(tuples * attrs);
    for (auto& v : rowdata) v = rng.NextInRange(0, 999999);
    uint64_t tuple_base = sys.Allocate(rowdata.size() * 8, 4096);
    sys.dram().backing_store().Write(tuple_base, rowdata.data(),
                                     rowdata.size() * 8);
    uint64_t out = sys.Allocate((tuples + 7) / 8 + 64, 4096);

    bool granted = false;
    sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
    sys.eq().RunUntilTrue([&] { return granted; });

    jafar::RowStoreJob rs;
    rs.tuple_base = tuple_base;
    rs.num_tuples = tuples;
    rs.tuple_bytes = tuple_bytes;
    for (uint32_t p = 0; p < npreds; ++p) {
      rs.predicates.push_back(
          {p * 8, jafar::CompareOp::kBetween, 100000, 900000});
    }
    rs.out_base = out;
    bool done = false;
    sim::Tick start = sys.eq().Now(), end = 0;
    NDP_CHECK(sys.driver().RowStoreJafar(rs, [&](sim::Tick t) {
      done = true;
      end = t;
    }).ok());
    sys.eq().RunUntilTrue([&] { return done; });
    double rowstore_ms = bench::Ms(end - start);

    // Column-store: scan only the npreds referenced columns (select +
    // refining select modeled as two full column passes + bitmap combine).
    double colstore_ms = 0;
    for (uint32_t p = 0; p < npreds; ++p) {
      std::vector<int64_t> colvals(tuples);
      for (uint64_t i = 0; i < tuples; ++i) colvals[i] = rowdata[i * attrs + p];
      uint64_t col_base = sys.Allocate(tuples * 8, 4096);
      sys.dram().backing_store().Write(col_base, colvals.data(), tuples * 8);
      uint64_t bm = sys.Allocate((tuples + 7) / 8 + 64, 4096);
      jafar::SelectJob job;
      job.col_base = col_base;
      job.num_rows = tuples;
      job.range_low = 100000;
      job.range_high = 900000;
      job.out_base = bm;
      bool sel_done = false;
      sim::Tick s2 = sys.eq().Now(), e2 = 0;
      NDP_CHECK(sys.jafar().StartSelect(job, [&](sim::Tick t) {
        sel_done = true;
        e2 = t;
      }).ok());
      sys.eq().RunUntilTrue([&] { return sel_done; });
      colstore_ms += bench::Ms(e2 - s2);
    }
    std::printf("%-14u %-12u %-18.3f %-18.3f %-14.2f\n", tuple_bytes, npreds,
                rowstore_ms, colstore_ms, rowstore_ms / colstore_ms);
  }
  std::printf(
      "\nExpected: the row-store device streams tuple_bytes/8 words per\n"
      "tuple, the column-store device only the predicate columns — the\n"
      "advantage grows linearly with tuple width (§4's open question made\n"
      "quantitative at the DIMM level).\n");
  return 0;
}
