// Ablation — fault rate vs. select throughput: sweeps a composite fault
// intensity through the seeded injection campaign (hangs, mid-job stalls,
// result-bitmap corruption, dropped completions, ECC flips) and measures the
// end-to-end select latency including every watchdog fire, backoff retry, and
// — past the retry budget — the CPU re-execution. The claim under test:
// recovery degrades throughput smoothly (monotone, cliff-free) and never the
// answer. Writes BENCH_abl_faults.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "bench/reporter.h"
#include "core/api.h"

using namespace ndp;

namespace {

/// One knob scales every layer; the mix keeps the per-event frequencies in a
/// plausible ratio (hangs and corruptions per job/flush, stalls per burst,
/// ECC per burst far rarer, UEs rarest).
fault::FaultPlan PlanAtIntensity(double r) {
  fault::FaultPlan plan;
  plan.seed = 20150601;
  plan.hang_per_job = r;
  plan.stall_per_burst = r / 100.0;
  plan.corrupt_per_flush = r;
  plan.drop_per_completion = r / 2.0;
  plan.ecc_ce_per_burst = r / 10.0;
  plan.ecc_ue_per_burst = r / 1000.0;
  return plan;
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 256u * 1024);
  bench::PrintHeader("Ablation — fault rate vs. select throughput (" +
                     std::to_string(rows) + " rows)");
#ifndef NDP_FAULT_INJECT
  std::printf(
      "note: built without NDP_FAULT_INJECT — all sweep points run "
      "fault-free.\n");
#endif
  db::Column col = bench::UniformColumn(rows);
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 0 && col[i] <= 499999;
  }

  const std::vector<double> rates = {0.0,  1e-4, 1e-3, 1e-2,
                                     0.05, 0.1,  0.2};
  struct PointResult {
    double rate = 0;
    double ms = 0;
    bool match = false;
    bool fell_back = false;
    jafar::DriverStats driver;
    uint64_t injected = 0;
    StatsSnapshot counters;
  };
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      rates.size(), [&](size_t i) {
        PointResult r;
        r.rate = rates[i];
        core::PlatformConfig config = core::PlatformConfig::Gem5();
        config.fault_plan = PlanAtIntensity(rates[i]);
        // A generous budget: the sweep studies degradation, not failure, so
        // only a pathological page should exhaust it and fall back.
        config.driver.retry.max_attempts = 10;
        core::SystemModel sys(config);
        StatsSnapshot before = sys.stats().Snapshot();
        sim::Tick start = sys.eq().Now();
        uint64_t matches = 0;
        auto run = sys.RunJafarSelect(col, 0, 499999);
        if (run.ok()) {
          matches = run.ValueOrDie().matches;
        } else {
          // Past the retry budget: graceful degradation — the query re-runs
          // on the CPU scalar path, and its simulated time counts too.
          r.fell_back = true;
          matches = sys.RunCpuSelect(col, 0, 499999,
                                     db::SelectMode::kBranching)
                        .ValueOrDie()
                        .matches;
        }
        r.ms = bench::Ms(sys.eq().Now() - start);
        r.match = matches == oracle;
        r.driver = sys.driver().stats();
        if (sys.fault_injector() != nullptr) {
          const auto& c = sys.fault_injector()->counters();
          r.injected = c.ecc_ce_injected + c.ecc_ue_injected +
                       c.hangs_injected + c.stalls_injected +
                       c.corruptions_injected + c.drops_injected;
        }
        r.counters = sys.stats().Snapshot().DeltaSince(before);
        return r;
      });

  bench::Reporter report("abl_faults");
  report.Config("rows", static_cast<double>(rows));

  std::printf("\n%-10s %-10s %-14s %-10s %-10s %-10s %-10s %-10s\n",
              "rate", "time_ms", "mrows_per_s", "injected", "watchdog",
              "retries", "cksum_err", "match");
  double base_ms = results.front().ms;
  bool monotone = true;
  bool all_match = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    double mrows_s = static_cast<double>(rows) / (r.ms * 1e3);
    std::printf("%-10g %-10.3f %-14.2f %-10llu %-10llu %-10llu %-10llu %s\n",
                r.rate, r.ms, mrows_s,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.driver.watchdog_fires),
                static_cast<unsigned long long>(r.driver.retries),
                static_cast<unsigned long long>(r.driver.checksum_errors),
                r.match ? "MATCH" : "MISMATCH");
    all_match &= r.match;
    // Monotone: more faults cost time, never save it (tiny tolerance for the
    // printf-rounding of ms).
    if (i > 0) monotone &= r.ms >= results[i - 1].ms - 1e-9;
    report.AddPoint("rate_" + std::to_string(r.rate))
        .Metric("fault_rate", r.rate)
        .Metric("time_ms", r.ms)
        .Metric("mrows_per_s", mrows_s)
        .Metric("slowdown", r.ms / base_ms)
        .Metric("injected_faults", static_cast<double>(r.injected))
        .Metric("watchdog_fires",
                static_cast<double>(r.driver.watchdog_fires))
        .Metric("retries", static_cast<double>(r.driver.retries))
        .Metric("checksum_errors",
                static_cast<double>(r.driver.checksum_errors))
        .Metric("device_errors", static_cast<double>(r.driver.device_errors))
        .Metric("permanent_failures",
                static_cast<double>(r.driver.permanent_failures))
        .Metric("cpu_fallback", r.fell_back ? 1.0 : 0.0)
        .Metric("match", r.match ? 1.0 : 0.0)
        .Counters("", r.counters);
  }
  std::printf(
      "\nDegradation at max rate: %.2fx the fault-free time; every point "
      "%s.\n",
      results.back().ms / base_ms,
      all_match ? "MATCHes the CPU oracle" : "MISMATCHED");
  NDP_CHECK_MSG(all_match,
                "a faulted select returned a wrong answer — recovery bug");
  NDP_CHECK_MSG(monotone,
                "throughput not monotone in fault rate — timing anomaly");
  // Cliff-free: each fault costs at most one watchdog deadline (~55us at
  // 512-row pages) plus the capped backoff (12.8us) plus the page re-run, so
  // total time must stay within a per-fault budget of the fault-free time.
  // A retry storm or a wedged watchdog would blow through this linear bound.
  constexpr double kMaxRecoveryMsPerFault = 0.15;
  for (const PointResult& r : results) {
    NDP_CHECK_MSG(
        r.ms <= base_ms + static_cast<double>(r.injected) *
                              kMaxRecoveryMsPerFault,
        "degradation cliff: recovery cost exceeds the per-fault budget");
  }
  return report.WriteJson() ? 0 : 1;
}
