// Table 1: specifications of the two evaluation platforms, printed exactly as
// the other benchmarks instantiate them, plus the JAFAR datapath parameters
// derived from the Aladdin-style schedule.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

int main() {
  using namespace ndp;
  bench::PrintHeader(
      "Table 1 — Specifications of the evaluation platforms (as simulated)");

  core::PlatformConfig gem5 = core::PlatformConfig::Gem5();
  core::PlatformConfig xeon = core::PlatformConfig::Xeon();
  std::printf("\n[gem5-like simulator — Figure 3 platform]\n%s\n",
              gem5.ToString().c_str());
  std::printf("[Xeon-class system — Figure 4 profiling platform]\n%s\n",
              xeon.ToString().c_str());

  std::printf("[JAFAR device, derived from the accel (Aladdin-like) model]\n");
  auto sched = accel::ScheduleKernel(accel::MakeSelectKernel(),
                                     gem5.jafar_datapath, 128)
                   .ValueOrDie();
  auto cfg = jafar::DeviceConfig::Derive(gem5.dram_timing, gem5.jafar_datapath)
                 .ValueOrDie();
  std::printf("  select-range kernel schedule: %s\n", sched.ToString().c_str());
  std::printf("  JAFAR clock: %.2f GHz (2x the %.0f MHz DDR3 data bus)\n",
              cfg.clock.frequency_ghz(),
              1e6 / static_cast<double>(gem5.dram_timing.tck_ps));
  std::printf("  throughput: %.2f words/cycle; energy: %.1f fJ/word\n",
              cfg.words_per_cycle, cfg.energy_per_word_fj);
  std::printf("  CAS latency: %.2f ns (paper quotes ~13 ns)\n",
              gem5.dram_timing.CasLatencyNs());
  std::printf(
      "  8-word burst streams in %u bus cycles = %.1f ns at the device\n",
      gem5.dram_timing.tburst,
      static_cast<double>(gem5.dram_timing.tburst * gem5.dram_timing.tck_ps) /
          1000.0);
  return 0;
}
