// Host-side microbenchmarks (google-benchmark) of the library's hot
// primitives: these bound how fast the simulator itself runs, independent of
// simulated time.
#include <benchmark/benchmark.h>

#include "accel/schedule.h"
#include "cpu/kernels.h"
#include "db/operators.h"
#include "dram/dram_system.h"
#include "sim/event_queue.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace ndp {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue eq;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      eq.ScheduleAt(static_cast<sim::Tick>(i * 7 % 997), [&sink] { ++sink; });
    }
    eq.RunUntilEmpty();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_BitVectorSetCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<uint32_t> positions(n / 3);
  for (auto& p : positions) p = rng.NextBounded(static_cast<uint32_t>(n));
  for (auto _ : state) {
    BitVector bv(n);
    for (uint32_t p : positions) bv.Set(p);
    benchmark::DoNotOptimize(bv.CountOnes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitVectorSetCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScanSelectBranching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  db::Column col = db::Column::Int64("c");
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  db::QueryContext ctx;
  for (auto _ : state) {
    auto pos = db::ScanSelect(&ctx, col, db::Pred::Between(0, 499999));
    benchmark::DoNotOptimize(pos.data());
    ctx.stats.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ScanSelectBranching)->Arg(1 << 16)->Arg(1 << 20);

void BM_SelectUopStreamGeneration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> values(n);
  Rng rng(3);
  for (auto& v : values) v = rng.NextInRange(0, 999999);
  for (auto _ : state) {
    cpu::SelectScanStream s(values.data(), n, 0, 499999, 0, 1 << 28, false);
    cpu::Uop u;
    uint64_t count = 0;
    while (s.Next(&u)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectUopStreamGeneration)->Arg(1 << 16);

void BM_DddgScheduleSelectKernel(benchmark::State& state) {
  accel::LoopKernel kernel = accel::MakeSelectKernel();
  accel::DatapathResources res;
  for (auto _ : state) {
    auto r = accel::ScheduleKernel(kernel, res,
                                   static_cast<uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(r.ValueOrDie().total_cycles);
  }
}
BENCHMARK(BM_DddgScheduleSelectKernel)->Arg(64)->Arg(512);

void BM_DramRandomReads(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue eq;
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig cc;
    cc.refresh_enabled = false;
    dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                          dram::InterleaveScheme::kContiguous, cc);
    Rng rng(4);
    state.ResumeTiming();
    int completed = 0;
    for (int i = 0; i < 512; ++i) {
      dram::Request req;
      req.addr = (rng.NextU64() % org.TotalBytes()) & ~uint64_t{63};
      req.on_complete = [&completed](sim::Tick) { ++completed; };
      while (!dram.EnqueueRequest(req).ok()) eq.Step();
    }
    eq.RunUntilTrue([&] { return completed == 512; });
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DramRandomReads);

}  // namespace
}  // namespace ndp
