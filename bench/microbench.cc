// Host-side microbenchmarks (google-benchmark) of the library's hot
// primitives: these bound how fast the simulator itself runs, independent of
// simulated time.
//
// Besides the google-benchmark suite, main() runs a sim-kernel throughput
// comparison — the timing-wheel EventQueue vs. the seed heap kernel
// (sim/reference_queue.h) on identical ticker workloads — and writes the
// numbers to BENCH_sim.json in the working directory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "accel/schedule.h"
#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "core/api.h"
#include "core/dimm_array.h"
#include "cpu/kernels.h"
#include "db/operators.h"
#include "dram/dram_system.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"
#include "sim/ticking.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/stats_registry.h"

namespace ndp {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue eq;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      eq.ScheduleAt(static_cast<sim::Tick>(i * 7 % 997), [&sink] { ++sink; });
    }
    eq.RunUntilEmpty();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

// ---------------------------------------------------------------------------
// Sim-kernel throughput: identical ticker workloads on the timing-wheel
// kernel (intrusive nodes) and on the seed heap kernel (closure per edge).
// ---------------------------------------------------------------------------

/// A component that ticks forever; the workload of a streaming JAFAR engine.
class CountingTicker final : public sim::TickingComponent {
 public:
  CountingTicker(sim::EventQueue* eq, sim::ClockDomain clock, uint64_t* count)
      : sim::TickingComponent(eq, clock), count_(count) {}

 protected:
  bool Tick() override {
    ++*count_;
    return true;
  }

 private:
  uint64_t* count_;
};

/// Seed-style ticker: re-schedules a closure every edge. The context pointer
/// keeps the capture within std::function's small-buffer optimisation, as the
/// seed's TickingComponent lambda was.
struct HeapTickerCtx {
  sim::ReferenceEventQueue* eq;
  sim::Tick period;
  uint64_t* count;
  void Arm(sim::Tick at) {
    eq->ScheduleAt(at, [this] {
      ++*count;
      Arm(eq->Now() + period);
    });
  }
};

/// Periods for the multi-ticker scenario: the clock domains that coexist in a
/// full-system run (CPU 1 GHz, DRAM bus 800 MHz, JAFAR 1.6 GHz, ...).
const std::vector<sim::Tick> kMultiPeriods = {625,  800,  1000, 1250,
                                              1600, 2000, 2500, 3200};

uint64_t WheelTickerRun(size_t num_tickers, sim::Tick span) {
  sim::EventQueue eq;
  uint64_t count = 0;
  std::vector<std::unique_ptr<CountingTicker>> tickers;
  for (size_t i = 0; i < num_tickers; ++i) {
    tickers.push_back(std::make_unique<CountingTicker>(
        &eq, sim::ClockDomain(kMultiPeriods[i % kMultiPeriods.size()]),
        &count));
    tickers.back()->Wake();
  }
  eq.RunUntil(span);
  return count;
}

uint64_t HeapTickerRun(size_t num_tickers, sim::Tick span) {
  sim::ReferenceEventQueue eq;
  uint64_t count = 0;
  std::vector<std::unique_ptr<HeapTickerCtx>> tickers;
  for (size_t i = 0; i < num_tickers; ++i) {
    sim::Tick period = kMultiPeriods[i % kMultiPeriods.size()];
    tickers.push_back(
        std::make_unique<HeapTickerCtx>(HeapTickerCtx{&eq, period, &count}));
    tickers.back()->Arm(period);
  }
  eq.RunUntil(span);
  return count;
}

void BM_WheelTickers(benchmark::State& state) {
  const size_t tickers = static_cast<size_t>(state.range(0));
  const sim::Tick span = 1 << 20;
  uint64_t events = 0;
  for (auto _ : state) {
    events = WheelTickerRun(tickers, span);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(events));
}
BENCHMARK(BM_WheelTickers)->Arg(1)->Arg(8);

void BM_HeapTickers(benchmark::State& state) {
  const size_t tickers = static_cast<size_t>(state.range(0));
  const sim::Tick span = 1 << 20;
  uint64_t events = 0;
  for (auto _ : state) {
    events = HeapTickerRun(tickers, span);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(events));
}
BENCHMARK(BM_HeapTickers)->Arg(1)->Arg(8);

void BM_BitVectorSetCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<uint32_t> positions(n / 3);
  for (auto& p : positions) p = rng.NextBounded(static_cast<uint32_t>(n));
  for (auto _ : state) {
    BitVector bv(n);
    for (uint32_t p : positions) bv.Set(p);
    benchmark::DoNotOptimize(bv.CountOnes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitVectorSetCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScanSelectBranching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  db::Column col = db::Column::Int64("c");
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  db::QueryContext ctx;
  for (auto _ : state) {
    auto pos = db::ScanSelect(&ctx, col, db::Pred::Between(0, 499999));
    benchmark::DoNotOptimize(pos.data());
    ctx.stats.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ScanSelectBranching)->Arg(1 << 16)->Arg(1 << 20);

void BM_SelectUopStreamGeneration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> values(n);
  Rng rng(3);
  for (auto& v : values) v = rng.NextInRange(0, 999999);
  for (auto _ : state) {
    cpu::SelectScanStream s(values.data(), n, 0, 499999, 0, 1 << 28, false);
    cpu::Uop u;
    uint64_t count = 0;
    while (s.Next(&u)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectUopStreamGeneration)->Arg(1 << 16);

void BM_DddgScheduleSelectKernel(benchmark::State& state) {
  accel::LoopKernel kernel = accel::MakeSelectKernel();
  accel::DatapathResources res;
  for (auto _ : state) {
    auto r = accel::ScheduleKernel(kernel, res,
                                   static_cast<uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(r.ValueOrDie().total_cycles);
  }
}
BENCHMARK(BM_DddgScheduleSelectKernel)->Arg(64)->Arg(512);

void BM_DramRandomReads(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue eq;
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig cc;
    cc.refresh_enabled = false;
    dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                          dram::InterleaveScheme::kContiguous, cc);
    Rng rng(4);
    state.ResumeTiming();
    int completed = 0;
    for (int i = 0; i < 512; ++i) {
      dram::Request req;
      req.addr = (rng.NextU64() % org.TotalBytes()) & ~uint64_t{63};
      req.on_complete = [&completed](sim::Tick) { ++completed; };
      while (!dram.EnqueueRequest(req).ok()) eq.Step();
    }
    eq.RunUntilTrue([&] { return completed == 512; });
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DramRandomReads);

// ---------------------------------------------------------------------------
// BENCH_sim.json: machine-readable kernel throughput record.
// ---------------------------------------------------------------------------

struct KernelMeasurement {
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double sim_ticks_per_sec = 0;  ///< simulated picoseconds per wall second
};

/// Best-of-3 wall-clock measurement of `run(num_tickers, span)`.
template <typename RunFn>
KernelMeasurement Measure(RunFn&& run, size_t num_tickers, sim::Tick span) {
  KernelMeasurement best;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    uint64_t events = run(num_tickers, span);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs <= 0) secs = 1e-9;
    if (best.wall_seconds == 0 || secs < best.wall_seconds) {
      best.events = events;
      best.wall_seconds = secs;
      best.events_per_sec = static_cast<double>(events) / secs;
      best.sim_ticks_per_sec = static_cast<double>(span) / secs;
    }
  }
  return best;
}

void AddScenario(bench::Reporter* report, const char* name, size_t num_tickers,
                 sim::Tick span) {
  KernelMeasurement wheel = Measure(WheelTickerRun, num_tickers, span);
  KernelMeasurement heap = Measure(HeapTickerRun, num_tickers, span);
  double speedup = wheel.events_per_sec / heap.events_per_sec;
  report->AddPoint(name)
      .Metric("tickers", static_cast<double>(num_tickers))
      .Metric("sim_span_ps", static_cast<double>(span))
      .Metric("wheel_events", static_cast<double>(wheel.events))
      .Metric("wheel_wall_seconds", wheel.wall_seconds)
      .Metric("wheel_events_per_sec", wheel.events_per_sec)
      .Metric("wheel_sim_ticks_per_sec", wheel.sim_ticks_per_sec)
      .Metric("heap_events", static_cast<double>(heap.events))
      .Metric("heap_wall_seconds", heap.wall_seconds)
      .Metric("heap_events_per_sec", heap.events_per_sec)
      .Metric("heap_sim_ticks_per_sec", heap.sim_ticks_per_sec)
      .Metric("events_per_sec_speedup", speedup);
  std::printf(
      "%-14s %zu tickers: wheel %.1fM events/s, heap %.1fM events/s "
      "(%.2fx)\n",
      name, num_tickers, wheel.events_per_sec / 1e6, heap.events_per_sec / 1e6,
      speedup);
}

// ---------------------------------------------------------------------------
// Parallel-in-time scaling: the partitioned DimmArray (per-channel wheels +
// conservative epoch barriers) on a 4-channel parallel select, wall-clocked
// at NDP_SIM_THREADS=1 vs =4. The schedule is identical by construction
// (pdes_determinism_test pins that); this measures only the wall-clock win.
// ---------------------------------------------------------------------------

struct PdesMeasurement {
  double wall_seconds = 0;
  uint64_t matches = 0;
  StatsSnapshot sim;  ///< the sim.* slice of the run's registry snapshot
};

/// One partitioned run; NDP_SIM_THREADS is read at DimmArray construction, so
/// the caller sets it before calling.
PdesMeasurement PdesPartitionedRun(const db::Column& col) {
  jafar::DeviceConfig cfg = jafar::DeviceConfig::Derive(
                                dram::DramTiming::DDR3_1600(),
                                accel::DatapathResources{})
                                .ValueOrDie();
  core::DimmArray array(dram::DramTiming::DDR3_1600(), /*channels=*/4,
                        /*ranks_per_channel=*/1, cfg, /*rows_per_bank=*/8192,
                        /*partitioned=*/true);
  array.AcquireAllOwnership();
  array.LoadPartitioned(col);
  auto t0 = std::chrono::steady_clock::now();
  core::DimmArray::ParallelResult r =
      array.RunParallelSelect(0, 499999).ValueOrDie();
  auto t1 = std::chrono::steady_clock::now();
  PdesMeasurement m;
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (m.wall_seconds <= 0) m.wall_seconds = 1e-9;
  m.matches = r.matches;
  StatsSnapshot full = array.stats().Snapshot();
  for (const auto& [path, entry] : full.entries()) {
    if (path.rfind("sim.", 0) == 0) m.sim.mutable_entries()[path] = entry;
  }
  return m;
}

/// Best-of-3 at a fixed thread count; restores the previous NDP_SIM_THREADS.
PdesMeasurement MeasurePdes(const db::Column& col, const char* threads) {
  const char* old = std::getenv("NDP_SIM_THREADS");
  std::string saved = old == nullptr ? "" : old;
  ::setenv("NDP_SIM_THREADS", threads, /*overwrite=*/1);
  PdesMeasurement best;
  for (int rep = 0; rep < 3; ++rep) {
    PdesMeasurement m = PdesPartitionedRun(col);
    if (best.wall_seconds == 0 || m.wall_seconds < best.wall_seconds) best = m;
  }
  if (old == nullptr) {
    ::unsetenv("NDP_SIM_THREADS");
  } else {
    ::setenv("NDP_SIM_THREADS", saved.c_str(), 1);
  }
  return best;
}

void AddPdesScaling(bench::Reporter* report) {
  std::printf(
      "\nParallel-in-time scaling (partitioned wheels, 4-ch select)\n"
      "----------------------------------------------------------\n");
  const uint64_t rows = bench::EnvU64("BENCH_PDES_ROWS", 256 * 1024);
  db::Column col = bench::UniformColumn(rows);
  PdesMeasurement serial = MeasurePdes(col, "1");
  PdesMeasurement parallel = MeasurePdes(col, "4");
  double speedup = serial.wall_seconds / parallel.wall_seconds;
  unsigned hw = std::thread::hardware_concurrency();
  auto add = [&](const char* label, const PdesMeasurement& m) {
    report->AddPoint(label)
        .Metric("rows", static_cast<double>(rows))
        .Metric("wall_seconds", m.wall_seconds)
        .Metric("matches", static_cast<double>(m.matches))
        .Counters("", m.sim);
  };
  add("pdes_threads_1", serial);
  add("pdes_threads_4", parallel);
  report->AddPoint("pdes_scaling")
      .Metric("speedup_4_threads", speedup)
      .Metric("hardware_concurrency", static_cast<double>(hw));
  std::printf(
      "pdes 4-ch select, %llu rows: 1 thread %.3fs, 4 threads %.3fs "
      "(%.2fx, %u hw threads)\n",
      static_cast<unsigned long long>(rows), serial.wall_seconds,
      parallel.wall_seconds, speedup, hw);
  if (speedup < 2.5 && hw >= 4) {
    std::printf("  note: below the 2.5x target on >=4-core hardware\n");
  } else if (hw < 4) {
    std::printf(
        "  note: %u hardware thread(s); 4 sim threads cannot speed up here — "
        "see hardware_concurrency in BENCH_sim.json\n",
        hw);
  }
}

bool WriteBenchSimJson() {
  std::printf(
      "\nSim-kernel throughput (timing wheel vs. seed heap kernel)\n"
      "---------------------------------------------------------\n");
  // Solo: one armed component — the queue's single-event fast path (a JAFAR
  // engine streaming while the CPU spin-waits). Multi: every clock domain of
  // a full-system run ticking concurrently. BENCH_SIM_SPAN shrinks the
  // simulated span for smoke runs.
  const sim::Tick span =
      bench::EnvU64("BENCH_SIM_SPAN", 1u << 28);  // ~268 us sim, ~1M events
  bench::Reporter report("sim");
  report.Config("sim_span_ps", static_cast<double>(span));
  AddScenario(&report, "solo_ticker", 1, span);
  AddScenario(&report, "multi_ticker", 8, span / 4);
  AddPdesScaling(&report);
  return report.WriteJson();
}

}  // namespace
}  // namespace ndp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return ndp::WriteBenchSimJson() ? 0 : 1;
}
