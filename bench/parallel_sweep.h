// Deterministic parallel sweep harness for the benchmark drivers.
//
// Each sweep point builds its own SystemModel + EventQueue, so points share no
// mutable state and every point's simulation is bit-identical no matter how
// many worker threads run it or in what order the pool picks points up.
// Results are collected into a vector indexed by point and printed by the
// caller in point order after the join, so stdout is also byte-identical
// across thread counts (the property the BENCH determinism check relies on).
//
// Workers are hoisted into a process-wide persistent pool (SweepPool): a
// bench driver runs many sweeps back to back, and re-spawning a thread per
// sweep per worker dominated small sweeps' wall clock. The pool spawns each
// worker lazily on the first sweep that needs it and parks workers on a
// condition variable between sweeps; SweepPool::threads_spawned() exposes the
// lifetime spawn count so a regression test can pin "many sweeps, one spawn
// per worker".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ndp::bench {

/// Worker-thread count for sweeps: NDP_BENCH_THREADS if set (0 means serial,
/// i.e. 1), else the hardware concurrency.
inline unsigned SweepThreads() {
  uint64_t n = EnvU64("NDP_BENCH_THREADS", 0);
  if (n == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return static_cast<unsigned>(n);
}

/// \brief Process-wide persistent worker pool behind ParallelSweep.
///
/// One sweep runs at a time (Run serializes internally); workers persist
/// across sweeps and across differing worker counts — a sweep that wants W
/// workers wakes the first W, any further parked workers sit the round out.
class SweepPool {
 public:
  static SweepPool& Instance() {
    static SweepPool pool;
    return pool;
  }

  /// Runs `body(i)` for every i in [0, num_points), claimed dynamically, on
  /// `num_workers` pool workers plus the calling thread. Returns after every
  /// point completed.
  void Run(size_t num_points, unsigned num_workers,
           const std::function<void(size_t)>& body) {
    std::unique_lock<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (threads_.size() < num_workers) {
        threads_.emplace_back([this, id = threads_.size()] { WorkerMain(id); });
        ++threads_spawned_;
      }
      body_ = &body;
      next_point_ = 0;
      num_points_ = num_points;
      active_workers_ = num_workers;
      workers_left_ = num_workers;
      ++generation_;
    }
    work_cv_.notify_all();
    DrainPoints(body, num_points);  // the caller works too — no idle thread
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_left_ == 0; });
    body_ = nullptr;
  }

  /// Lifetime worker-spawn count (monotone). A driver that runs N sweeps at a
  /// fixed worker count W must observe exactly max-W spawns in total — the
  /// thread-churn regression test pins this.
  uint64_t threads_spawned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return threads_spawned_;
  }

  ~SweepPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    // Teardown: every worker has observed shutdown_ under mu_ above, and no
    // other thread can touch the process-lifetime singleton while it
    // destructs; joining must not hold mu_ (the workers still lock it).
    // ndp-lint: guarded-by-ok single-threaded teardown, join cannot hold mu_
    for (std::thread& t : threads_) t.join();
  }

 private:
  SweepPool() = default;

  /// The sweep description travels by value: callers snapshot body/num_points
  /// under mu_ (or own them, in Run), so the drain loop itself touches no
  /// guarded state — only the atomic point ticket.
  void DrainPoints(const std::function<void(size_t)>& body, size_t num_points) {
    for (size_t i = next_point_.fetch_add(1); i < num_points;
         i = next_point_.fetch_add(1)) {
      body(i);
    }
  }

  void WorkerMain(size_t id) {
    uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return generation_ != seen || shutdown_; });
      if (shutdown_) return;
      seen = generation_;
      if (id >= active_workers_) continue;  // this round wants fewer workers
      const std::function<void(size_t)>& body = *body_;
      const size_t num_points = num_points_;
      lock.unlock();
      DrainPoints(body, num_points);
      lock.lock();
      if (--workers_left_ == 0) done_cv_.notify_all();
    }
  }

  mutable std::mutex mu_;
  std::mutex run_mu_;  ///< serializes sweeps (nested calls run inline instead)
  std::condition_variable work_cv_, done_cv_;
  std::vector<std::thread> threads_;  // ndp: guarded-by(mu_)
  const std::function<void(size_t)>* body_ = nullptr;  // ndp: guarded-by(mu_)
  std::atomic<size_t> next_point_{0};
  size_t num_points_ = 0;      // ndp: guarded-by(mu_)
  size_t active_workers_ = 0;  // ndp: guarded-by(mu_)
  size_t workers_left_ = 0;    // ndp: guarded-by(mu_)
  uint64_t generation_ = 0;    // ndp: guarded-by(mu_)
  uint64_t threads_spawned_ = 0;  // ndp: guarded-by(mu_)
  bool shutdown_ = false;      // ndp: guarded-by(mu_)
};

namespace internal {
/// True while this thread is executing a sweep point: a nested ParallelSweep
/// (a point that itself sweeps) must run inline rather than deadlock waiting
/// for the pool it is currently occupying.
inline thread_local bool in_sweep_point = false;
}  // namespace internal

/// Runs `fn(point_index)` for every index in [0, num_points) across
/// `num_threads` workers and returns the results in point order. `fn` must be
/// self-contained per point: it builds its own model state and returns a
/// result value; it must not touch shared mutable state (stdout included —
/// print from the returned results instead).
template <typename Result, typename Fn>
std::vector<Result> ParallelSweep(size_t num_points, Fn&& fn,
                                  unsigned num_threads = SweepThreads()) {
  std::vector<Result> results(num_points);
  if (num_points == 0) return results;
  if (num_threads <= 1 || internal::in_sweep_point) {
    for (size_t i = 0; i < num_points; ++i) results[i] = fn(i);
    return results;
  }
  if (num_threads > num_points) num_threads = static_cast<unsigned>(num_points);
  std::function<void(size_t)> body = [&](size_t i) {
    internal::in_sweep_point = true;
    results[i] = fn(i);
    internal::in_sweep_point = false;
  };
  // The caller participates, so the pool only needs num_threads - 1 workers.
  SweepPool::Instance().Run(num_points, num_threads - 1, body);
  return results;
}

}  // namespace ndp::bench
