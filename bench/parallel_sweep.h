// Deterministic parallel sweep harness for the benchmark drivers.
//
// Each sweep point builds its own SystemModel + EventQueue, so points share no
// mutable state and every point's simulation is bit-identical no matter how
// many worker threads run it or in what order the pool picks points up.
// Results are collected into a vector indexed by point and printed by the
// caller in point order after the join, so stdout is also byte-identical
// across thread counts (the property the BENCH determinism check relies on).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace ndp::bench {

/// Worker-thread count for sweeps: NDP_BENCH_THREADS if set (0 means serial,
/// i.e. 1), else the hardware concurrency.
inline unsigned SweepThreads() {
  uint64_t n = EnvU64("NDP_BENCH_THREADS", 0);
  if (n == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return static_cast<unsigned>(n);
}

/// Runs `fn(point_index)` for every index in [0, num_points) across
/// `num_threads` workers and returns the results in point order. `fn` must be
/// self-contained per point: it builds its own model state and returns a
/// result value; it must not touch shared mutable state (stdout included —
/// print from the returned results instead).
template <typename Result, typename Fn>
std::vector<Result> ParallelSweep(size_t num_points, Fn&& fn,
                                  unsigned num_threads = SweepThreads()) {
  std::vector<Result> results(num_points);
  if (num_points == 0) return results;
  if (num_threads <= 1) {
    for (size_t i = 0; i < num_points; ++i) results[i] = fn(i);
    return results;
  }
  if (num_threads > num_points) num_threads = static_cast<unsigned>(num_points);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < num_points; i = next.fetch_add(1)) {
      results[i] = fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace ndp::bench
