// Ablation — §4 "Sorting": JAFAR's fixed-function bitonic block sorter emits
// 8 KB sorted runs in memory; the CPU merges them (divide and conquer).
// Compared against a pure-CPU bottom-up merge sort with its data-dependent
// merge branch.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 256u * 1024);
  bench::PrintHeader("Ablation — NDP block sort + CPU merge vs. CPU sort (" +
                     std::to_string(rows) + " rows)");
  db::Column col = bench::UniformColumn(rows);

  // CPU-only merge sort.
  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t src = sys.PinColumn(col);
  uint64_t ping = sys.Allocate(rows * 8, 4096);
  cpu::MergeSortStream cpu_sort(rows, src, ping);
  auto cpu = sys.RunStream(&cpu_sort).ValueOrDie();

  // JAFAR block sort, then a CPU merge of the rows/block runs. The merge is
  // modeled as log2(runs) additional merge passes? No: a k-way heap merge is
  // one pass; we charge one MergeSortStream pass per log2(k) levels.
  uint64_t out = sys.Allocate(rows * 8, 4096);
  bool granted = false;
  sys.driver().AcquireOwnership([&](sim::Tick) { granted = true; });
  sys.eq().RunUntilTrue([&] { return granted; });
  jafar::SortJob job;
  job.col_base = src;
  job.num_rows = rows;
  job.out_base = out;
  bool done = false;
  sim::Tick start = sys.eq().Now(), end = 0;
  NDP_CHECK(sys.driver().SortJafar(job, [&](sim::Tick t) {
    done = true;
    end = t;
  }).ok());
  sys.eq().RunUntilTrue([&] { return done; });
  double jafar_block_ms = bench::Ms(end - start);

  // Verify the runs are sorted and a merge reproduces the full sort.
  uint32_t block = sys.jafar().config().sort_block_elems;
  std::vector<std::vector<int64_t>> runs;
  for (uint64_t r = 0; r < rows; r += block) {
    uint64_t n = std::min<uint64_t>(block, rows - r);
    std::vector<int64_t> run(n);
    sys.dram().backing_store().Read(out + r * 8, run.data(), n * 8);
    NDP_CHECK(std::is_sorted(run.begin(), run.end()));
    runs.push_back(std::move(run));
  }
  db::QueryContext mctx;
  std::vector<int64_t> merged = db::MergeSortedRuns(&mctx, runs);
  NDP_CHECK(std::is_sorted(merged.begin(), merged.end()));
  NDP_CHECK(merged.size() == rows);

  // CPU merge cost of the device runs: log2(#runs) ping-pong passes.
  uint32_t merge_levels = 0;
  while ((uint64_t{1} << merge_levels) < runs.size()) ++merge_levels;
  double merge_ms = 0;
  if (merge_levels > 0) {
    // One MergeSortStream pass costs ~1/passes of a full CPU sort; reuse the
    // stream with exactly merge_levels passes by scaling measured full cost.
    cpu::MergeSortStream probe(rows, src, ping);
    merge_ms = bench::Ms(cpu.duration_ps) * merge_levels / probe.passes();
  }
  double jafar_total_ms = jafar_block_ms + merge_ms;

  std::printf("\n%-44s %-12s %-10s\n", "configuration", "time_ms", "speedup");
  std::printf("%-44s %-12.3f %-10.2f\n", "CPU merge sort", bench::Ms(cpu.duration_ps),
              1.0);
  std::printf("%-44s %-12.3f %-10s\n", "  JAFAR bitonic block sort (8 kB runs)",
              jafar_block_ms, "-");
  std::printf("%-44s %-12.3f %-10s\n", "  CPU merge of device runs", merge_ms,
              "-");
  std::printf("%-44s %-12.3f %-10.2f\n", "JAFAR blocks + CPU merge",
              jafar_total_ms, bench::Ms(cpu.duration_ps) / jafar_total_ms);
  uint32_t block_levels = 0;
  while ((uint64_t{1} << block_levels) < block) ++block_levels;
  std::printf(
      "\nExpected: the device removes the first log2(block) = %u of %u merge\n"
      "levels (plus all their branch mispredicts); the remaining CPU merge\n"
      "dominates the total — sorting is a partial, not headline, NDP win.\n",
      block_levels, block_levels + merge_levels);
  return 0;
}
