// Ablation — DRAM-ownership scheduling (§2.2/§3.3). A CPU workload and a
// JAFAR select share the SAME rank. Three coordination policies:
//   exclusive : JAFAR owns the rank for the whole select; CPU requests to the
//               rank stall until it finishes (best JAFAR, worst CPU latency);
//   sliced    : the query manager grants time-sliced leases with guaranteed
//               host windows between them (the paper's proposal);
//   polite    : no scheduler — JAFAR steals idle periods only (§3.3).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"
#include "core/scheduler.h"

using namespace ndp;

namespace {

struct Outcome {
  double jafar_ms;
  double cpu_ms;
  double cpu_max_stall_us;  ///< longest contiguous CPU stall
  uint64_t transfers;
};

/// Runs a JAFAR select over `col` while the CPU aggregates `cpu_rows` of data
/// living in the SAME rank.
Outcome Run(const char* mode, const db::Column& col, uint64_t cpu_rows) {
  core::SystemModel sys(core::PlatformConfig::Gem5());
  uint64_t col_base = sys.PinColumn(col);
  (void)col_base;
  // CPU working set in rank 0, after the column.
  uint64_t cpu_base = sys.Allocate(cpu_rows * 8, 4096);

  cpu::AggregateScanStream cpu_stream(cpu_rows, cpu_base);
  bool cpu_done = false;
  sim::Tick cpu_start = sys.eq().Now(), cpu_end = 0;
  NDP_CHECK(sys.cpu().Run(&cpu_stream, [&](sim::Tick t) {
    cpu_done = true;
    cpu_end = t;
  }).ok());

  Outcome out{};
  std::string m(mode);
  if (m == "exclusive") {
    sim::Tick s = sys.eq().Now();
    auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
    out.jafar_ms = bench::Ms(jaf.duration_ps);
    out.transfers = 2;
    (void)s;
  } else if (m == "sliced") {
    core::SchedulerConfig cfg;
    core::NdpScheduler scheduler(&sys, cfg);
    auto r = scheduler.RunSlicedSelect(col, 0, 499999).ValueOrDie();
    out.jafar_ms = bench::Ms(r.duration_ps);
    out.transfers = r.ownership_transfers;
  } else {  // polite
    jafar::DeviceConfig dcfg = sys.jafar().config();
    dcfg.require_ownership = false;
    jafar::Device device(&sys.dram(), 0, 0, dcfg);
    jafar::SelectJob job;
    job.col_base = sys.PinColumn(col);
    job.num_rows = col.size();
    job.range_low = 0;
    job.range_high = 499999;
    job.out_base = sys.Allocate((col.size() + 7) / 8 + 64, 4096);
    bool done = false;
    sim::Tick s = sys.eq().Now(), e = 0;
    NDP_CHECK(device.StartSelect(job, [&](sim::Tick t) {
      done = true;
      e = t;
    }).ok());
    sys.eq().RunUntilTrue([&] { return done; });
    out.jafar_ms = bench::Ms(e - s);
    out.transfers = 0;
  }
  sys.eq().RunUntilTrue([&] { return cpu_done; });
  out.cpu_ms = bench::Ms(cpu_end - cpu_start);
  out.cpu_max_stall_us =
      static_cast<double>(sys.cpu().stats().max_retire_gap_ps) / 1e6;
  return out;
}

}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 512u * 1024);
  bench::PrintHeader(
      "Ablation — ownership scheduling policies, CPU and JAFAR sharing one "
      "rank (" +
      std::to_string(rows) + " rows each)");
  db::Column col = bench::UniformColumn(rows);

  std::printf("\n%-12s %-12s %-12s %-18s %-16s\n", "policy", "jafar_ms",
              "cpu_ms", "cpu_max_stall_us", "mrs_transfers");
  for (const char* mode : {"exclusive", "sliced", "polite"}) {
    Outcome o = Run(mode, col, rows);
    std::printf("%-12s %-12.3f %-12.3f %-18.1f %-16llu\n", mode, o.jafar_ms,
                o.cpu_ms, o.cpu_max_stall_us,
                (unsigned long long)o.transfers);
  }
  std::printf(
      "\nExpected: total CPU throughput loss is similar for exclusive and\n"
      "sliced (the same JAFAR work displaces the same bandwidth), but the\n"
      "WORST CONTIGUOUS STALL drops from the whole select to one lease —\n"
      "the latency guarantee the §2.2 cycle-bounded ownership grants buy.\n"
      "Polite protects the CPU entirely but starves JAFAR (§3.3).\n");
  return 0;
}
