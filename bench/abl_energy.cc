// Ablation — energy. The paper's NDP premise is as much about energy as
// latency: moving a cache line across the memory bus costs roughly as much
// energy as the DRAM array access itself, and the CPU burns pipeline energy
// on every µop of the scan loop. JAFAR pays the array access but neither the
// off-chip transfer nor the host pipeline.
//
// Coarse 2010s-class energy constants (order-of-magnitude, documented in
// EXPERIMENTS.md): CPU 25 pJ/µop, L1 10 pJ, L2 30 pJ per access, DRAM array
// 5 nJ per 64 B burst, off-chip bus transfer 5 nJ per burst; JAFAR datapath
// energy comes from the accel model (~214 fJ/word), on-DIMM movement
// 0.5 nJ/burst.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "core/api.h"

using namespace ndp;

namespace {
constexpr double kCpuPjPerUop = 25.0;
constexpr double kL1PjPerAccess = 10.0;
constexpr double kL2PjPerAccess = 30.0;
constexpr double kDramArrayNjPerBurst = 5.0;
constexpr double kBusNjPerBurst = 5.0;
constexpr double kDimmMoveNjPerBurst = 0.5;
}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation — energy per select (" + std::to_string(rows) +
                     " rows, 50% selectivity)");
  db::Column col = bench::UniformColumn(rows);

  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  // All accounting reads the run's registry delta — nothing was reset, so a
  // preceding warm-up or co-running measurement would not skew it.
  const StatsSnapshot& d = cpu.counters;
  auto mc_sum = [&](const char* name) {
    double total = 0;
    for (uint32_t c = 0; c < sys.dram().num_channels(); ++c) {
      total += d.Value("system.dram.ctrl" + std::to_string(c) + "." + name);
    }
    return total;
  };
  double l1_accesses =
      d.Value("system.cpu.l1.hits") + d.Value("system.cpu.l1.misses");
  double l2_accesses =
      d.Value("system.cpu.l2.hits") + d.Value("system.cpu.l2.misses");
  double bursts_moved = mc_sum("reads_served") + mc_sum("writes_served");
  double cpu_uj =
      (static_cast<double>(cpu.stats.uops_retired) * kCpuPjPerUop +
       l1_accesses * kL1PjPerAccess + l2_accesses * kL2PjPerAccess) /
          1e6 +
      bursts_moved * (kDramArrayNjPerBurst + kBusNjPerBurst) / 1e3;

  core::SystemModel sys2(core::PlatformConfig::Gem5());
  auto jaf = sys2.RunJafarSelect(col, 0, 499999).ValueOrDie();
  double jafar_uj =
      jaf.stats.energy_fj / 1e9 +  // datapath (fJ -> uJ)
      static_cast<double>(jaf.stats.bursts_read + jaf.stats.bursts_written) *
          (kDramArrayNjPerBurst + kDimmMoveNjPerBurst) / 1e3;

  std::printf("\n%-28s %-14s %-14s %-16s\n", "path", "energy_uJ",
              "time_ms", "energy_breakdown");
  std::printf("%-28s %-14.1f %-14.3f pipeline %.1f + caches %.1f + DRAM+bus "
              "%.1f uJ\n",
              "CPU select", cpu_uj, bench::Ms(cpu.duration_ps),
              static_cast<double>(cpu.stats.uops_retired) * kCpuPjPerUop / 1e6,
              (l1_accesses * kL1PjPerAccess + l2_accesses * kL2PjPerAccess) /
                  1e6,
              bursts_moved * (kDramArrayNjPerBurst + kBusNjPerBurst) / 1e3);
  std::printf("%-28s %-14.1f %-14.3f datapath %.3f + DRAM-on-DIMM %.1f uJ\n",
              "JAFAR select", jafar_uj, bench::Ms(jaf.duration_ps),
              jaf.stats.energy_fj / 1e9,
              static_cast<double>(jaf.stats.bursts_read +
                                  jaf.stats.bursts_written) *
                  (kDramArrayNjPerBurst + kDimmMoveNjPerBurst) / 1e3);
  std::printf("\nenergy ratio (CPU / JAFAR): %.1fx\n", cpu_uj / jafar_uj);
  std::printf(
      "Expected: JAFAR saves both the off-chip transfer energy of every\n"
      "burst and the host pipeline energy of ~8-11 µops/row; the DRAM array\n"
      "energy is paid either way.\n");

  bench::Reporter report("abl_energy");
  report.Config("rows", static_cast<double>(rows))
      .Config("selectivity_pct", 50.0)
      .Config("cpu_pj_per_uop", kCpuPjPerUop)
      .Config("l1_pj_per_access", kL1PjPerAccess)
      .Config("l2_pj_per_access", kL2PjPerAccess)
      .Config("dram_array_nj_per_burst", kDramArrayNjPerBurst)
      .Config("bus_nj_per_burst", kBusNjPerBurst)
      .Config("dimm_move_nj_per_burst", kDimmMoveNjPerBurst);
  report.AddPoint("cpu_select")
      .Metric("energy_uj", cpu_uj)
      .Metric("time_ms", bench::Ms(cpu.duration_ps))
      .Metric("uops_retired", static_cast<double>(cpu.stats.uops_retired))
      .Metric("l1_accesses", l1_accesses)
      .Metric("l2_accesses", l2_accesses)
      .Metric("bursts_moved", bursts_moved)
      .Counters("", cpu.counters);
  report.AddPoint("jafar_select")
      .Metric("energy_uj", jafar_uj)
      .Metric("time_ms", bench::Ms(jaf.duration_ps))
      .Metric("datapath_fj", jaf.stats.energy_fj)
      .Metric("bursts_moved", static_cast<double>(jaf.stats.bursts_read +
                                                  jaf.stats.bursts_written))
      .Counters("", jaf.counters);
  return report.WriteJson() ? 0 : 1;
}
