// Ablation — energy. The paper's NDP premise is as much about energy as
// latency: moving a cache line across the memory bus costs roughly as much
// energy as the DRAM array access itself, and the CPU burns pipeline energy
// on every µop of the scan loop. JAFAR pays the array access but neither the
// off-chip transfer nor the host pipeline.
//
// Coarse 2010s-class energy constants (order-of-magnitude, documented in
// EXPERIMENTS.md): CPU 25 pJ/µop, L1 10 pJ, L2 30 pJ per access, DRAM array
// 5 nJ per 64 B burst, off-chip bus transfer 5 nJ per burst; JAFAR datapath
// energy comes from the accel model (~214 fJ/word), on-DIMM movement
// 0.5 nJ/burst.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

using namespace ndp;

namespace {
constexpr double kCpuPjPerUop = 25.0;
constexpr double kL1PjPerAccess = 10.0;
constexpr double kL2PjPerAccess = 30.0;
constexpr double kDramArrayNjPerBurst = 5.0;
constexpr double kBusNjPerBurst = 5.0;
constexpr double kDimmMoveNjPerBurst = 0.5;
}  // namespace

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation — energy per select (" + std::to_string(rows) +
                     " rows, 50% selectivity)");
  db::Column col = bench::UniformColumn(rows);

  core::SystemModel sys(core::PlatformConfig::Gem5());
  sys.dram().ResetCounters();
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto mc = sys.dram().TotalCounters();
  const auto& l1 = sys.caches().level(0).stats();
  const auto& l2 = sys.caches().level(1).stats();
  double cpu_uj =
      (static_cast<double>(cpu.stats.uops_retired) * kCpuPjPerUop +
       static_cast<double>(l1.hits + l1.misses) * kL1PjPerAccess +
       static_cast<double>(l2.hits + l2.misses) * kL2PjPerAccess) /
          1e6 +
      static_cast<double>(mc.reads_served + mc.writes_served) *
          (kDramArrayNjPerBurst + kBusNjPerBurst) / 1e3;

  core::SystemModel sys2(core::PlatformConfig::Gem5());
  auto jaf = sys2.RunJafarSelect(col, 0, 499999).ValueOrDie();
  double jafar_uj =
      jaf.stats.energy_fj / 1e9 +  // datapath (fJ -> uJ)
      static_cast<double>(jaf.stats.bursts_read + jaf.stats.bursts_written) *
          (kDramArrayNjPerBurst + kDimmMoveNjPerBurst) / 1e3;

  std::printf("\n%-28s %-14s %-14s %-16s\n", "path", "energy_uJ",
              "time_ms", "energy_breakdown");
  std::printf("%-28s %-14.1f %-14.3f pipeline %.1f + caches %.1f + DRAM+bus "
              "%.1f uJ\n",
              "CPU select", cpu_uj, bench::Ms(cpu.duration_ps),
              static_cast<double>(cpu.stats.uops_retired) * kCpuPjPerUop / 1e6,
              (static_cast<double>(l1.hits + l1.misses) * kL1PjPerAccess +
               static_cast<double>(l2.hits + l2.misses) * kL2PjPerAccess) /
                  1e6,
              static_cast<double>(mc.reads_served + mc.writes_served) *
                  (kDramArrayNjPerBurst + kBusNjPerBurst) / 1e3);
  std::printf("%-28s %-14.1f %-14.3f datapath %.3f + DRAM-on-DIMM %.1f uJ\n",
              "JAFAR select", jafar_uj, bench::Ms(jaf.duration_ps),
              jaf.stats.energy_fj / 1e9,
              static_cast<double>(jaf.stats.bursts_read +
                                  jaf.stats.bursts_written) *
                  (kDramArrayNjPerBurst + kDimmMoveNjPerBurst) / 1e3);
  std::printf("\nenergy ratio (CPU / JAFAR): %.1fx\n", cpu_uj / jafar_uj);
  std::printf(
      "Expected: JAFAR saves both the off-chip transfer energy of every\n"
      "burst and the host pipeline energy of ~8-11 µops/row; the DRAM array\n"
      "energy is paid either way.\n");
  return 0;
}
