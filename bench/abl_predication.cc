// Ablation A2 — CPU select style vs. JAFAR (§3.2): "we do not use predication
// for the software that runs the selects in the CPU. Thus, JAFAR would
// materialize even bigger benefits for lower selectivity against a database
// system that uses predication, because while predication leads to more
// stable and better performance on average, for lower selectivity it has
// adverse impact. Essentially, JAFAR implements predication at the hardware
// level at zero cost."
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

int main() {
  using namespace ndp;
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 1u << 20);
  bench::PrintHeader("Ablation A2 — branching vs. predicated CPU select vs. "
                     "JAFAR (" +
                     std::to_string(rows) + " rows)");

  db::Column col = bench::UniformColumn(rows);
  std::printf("\n%-12s %-14s %-14s %-14s %-18s %-18s\n", "selectivity",
              "branching_ms", "predicated_ms", "jafar_ms",
              "speedup_vs_branch", "speedup_vs_pred");
  for (uint64_t pct : {0ull, 10ull, 25ull, 50ull, 75ull, 90ull, 100ull}) {
    int64_t hi = static_cast<int64_t>(pct * 10000) - 1;
    core::SystemModel sys_b(core::PlatformConfig::Gem5());
    auto branching =
        sys_b.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching).ValueOrDie();
    core::SystemModel sys_p(core::PlatformConfig::Gem5());
    auto predicated =
        sys_p.RunCpuSelect(col, 0, hi, db::SelectMode::kPredicated)
            .ValueOrDie();
    core::SystemModel sys_j(core::PlatformConfig::Gem5());
    auto jaf = sys_j.RunJafarSelect(col, 0, hi).ValueOrDie();
    std::printf("%9llu%%  %-14.3f %-14.3f %-14.3f %-18.2f %-18.2f\n",
                (unsigned long long)pct, bench::Ms(branching.duration_ps),
                bench::Ms(predicated.duration_ps), bench::Ms(jaf.duration_ps),
                static_cast<double>(branching.duration_ps) /
                    static_cast<double>(jaf.duration_ps),
                static_cast<double>(predicated.duration_ps) /
                    static_cast<double>(jaf.duration_ps));
  }
  std::printf(
      "\nExpected: predicated CPU time is ~flat across selectivity (stable\n"
      "but worse at low selectivity than branching); JAFAR is flat AND fast\n"
      "— predication at the hardware level at zero cost.\n");
  return 0;
}
