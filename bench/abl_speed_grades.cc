// Ablation — DDR3 speed grades: how the CPU/JAFAR balance shifts with memory
// timing. JAFAR's rate is tied to the bus clock (it processes one word per
// half-bus-cycle), so faster grades speed it up proportionally; the CPU is
// partly pipeline-bound and benefits less.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "core/api.h"

using namespace ndp;

int main() {
  const uint64_t rows = bench::EnvU64("ABL_ROWS", 512u * 1024);
  bench::PrintHeader("Ablation — DDR3 speed grades (" + std::to_string(rows) +
                     " rows, 50% selectivity)");
  db::Column col = bench::UniformColumn(rows);

  const std::vector<dram::DramTiming> grades = {dram::DramTiming::DDR3_1066(),
                                                dram::DramTiming::DDR3_1600(),
                                                dram::DramTiming::DDR3_1866()};
  struct PointResult {
    uint64_t cpu_ps = 0, jafar_ps = 0;
  };
  std::vector<PointResult> results = bench::ParallelSweep<PointResult>(
      grades.size(), [&](size_t i) {
        core::PlatformConfig p = core::PlatformConfig::Gem5();
        p.dram_timing = grades[i];
        core::SystemModel sys(p);
        auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                       .ValueOrDie();
        auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
        return PointResult{cpu.duration_ps, jaf.duration_ps};
      });

  std::printf("\n%-22s %-10s %-12s %-12s %-10s\n", "grade", "CAS_ns",
              "cpu_ms", "jafar_ms", "speedup");
  for (size_t i = 0; i < grades.size(); ++i) {
    const dram::DramTiming& t = grades[i];
    const PointResult& r = results[i];
    std::printf("%-22s %-10.2f %-12.3f %-12.3f %-10.2f\n", t.name.c_str(),
                t.CasLatencyNs(), bench::Ms(r.cpu_ps), bench::Ms(r.jafar_ps),
                static_cast<double>(r.cpu_ps) /
                    static_cast<double>(r.jafar_ps));
  }
  return 0;
}
