// Quickstart: build a column, run the same range select on the simulated CPU
// and on JAFAR, and compare results and simulated time.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/api.h"
#include "util/rng.h"

int main() {
  using namespace ndp;

  // 1. A column of 256k uniform random integers in [0, 1M) — the paper's
  //    Figure 3 data distribution, scaled down for a fast demo.
  db::Column col = db::Column::Int64("measurements");
  Rng rng(42);
  for (int i = 0; i < 256 * 1024; ++i) col.Append(rng.NextInRange(0, 999999));

  // 2. A simulated system: the gem5-like platform from Table 1 (1 GHz OoO
  //    core, 64kB L1 / 128kB L2, one DDR3-1600 channel with a JAFAR unit on
  //    its DIMM).
  core::SystemModel sys(core::PlatformConfig::Gem5());

  // 3. SELECT count(*) WHERE 250000 <= v <= 750000, CPU-only.
  auto cpu = sys.RunCpuSelect(col, 250000, 750000, db::SelectMode::kBranching)
                 .ValueOrDie();
  std::printf("CPU   : %8.3f ms  (%llu matches, IPC %.2f, %llu mispredicts)\n",
              static_cast<double>(cpu.duration_ps) / 1e9,
              static_cast<unsigned long long>(cpu.matches), cpu.stats.Ipc(),
              static_cast<unsigned long long>(cpu.stats.mispredicts));

  // 4. The same select pushed down to JAFAR: the driver acquires rank
  //    ownership via MR3/MPR, invokes the Figure-2 API page by page, and the
  //    device filters the column directly in memory, writing back only a
  //    bitmap.
  auto jaf = sys.RunJafarSelect(col, 250000, 750000).ValueOrDie();
  std::printf("JAFAR : %8.3f ms  (%llu matches, %.0f%% of latency waiting "
              "on DRAM)\n",
              static_cast<double>(jaf.duration_ps) / 1e9,
              static_cast<unsigned long long>(jaf.matches),
              jaf.stats.WaitFraction() * 100);

  if (cpu.matches != jaf.matches) {
    std::fprintf(stderr, "ERROR: result mismatch!\n");
    return 1;
  }
  std::printf("Speedup: %.2fx — only qualifying data travels up the memory "
              "hierarchy.\n",
              static_cast<double>(cpu.duration_ps) /
                  static_cast<double>(jaf.duration_ps));
  return 0;
}
