// Memory-controller profiling (the Figure 4 methodology as a library): record
// a query's memory trace, replay it through the Xeon-class platform, and
// print the idle-period profile with the paper's estimator and the exact
// measured distribution.
//
//   $ ./build/examples/tpch_profiling [query_number]
#include <cstdio>
#include <cstdlib>

#include "core/api.h"

int main(int argc, char** argv) {
  using namespace ndp;
  int query = argc > 1 ? std::atoi(argv[1]) : 6;

  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = 0.005;
  db::tpch::Generate(cfg, &catalog);

  db::TraceRecorder trace;
  db::QueryContext ctx;
  ctx.trace = &trace;
  auto checksum = db::tpch::RunQueryByNumber(&ctx, &catalog, query);
  if (!checksum.ok()) {
    std::fprintf(stderr, "Q%d: %s\n", query,
                 checksum.status().ToString().c_str());
    return 1;
  }
  std::printf("Q%d executed; %llu memory accesses recorded, checksum %lld\n",
              query, static_cast<unsigned long long>(trace.total_accesses()),
              static_cast<long long>(checksum.value()));

  core::SystemModel sys(core::PlatformConfig::Xeon());
  core::IdlePeriodProfiler profiler(&sys);
  auto profile =
      profiler.Profile("Q" + std::to_string(query), trace.events())
          .ValueOrDie();

  std::printf("\nreplay window  : %llu bus cycles\n",
              static_cast<unsigned long long>(profile.total_bus_cycles));
  std::printf("RC_busy        : %llu cycles\n",
              static_cast<unsigned long long>(profile.rc_busy_cycles));
  std::printf("WC_busy        : %llu cycles\n",
              static_cast<unsigned long long>(profile.wc_busy_cycles));
  std::printf("reads / writes : %llu / %llu\n",
              static_cast<unsigned long long>(profile.reads),
              static_cast<unsigned long long>(profile.writes));
  std::printf("mean idle est. : %.0f cycles (paper formula, lower bound)\n",
              profile.EstimatedMeanIdleCycles());
  std::printf("mean idle meas.: %.0f cycles (exact, both queues empty)\n",
              profile.MeasuredMeanIdleCycles());
  std::printf("JAFAR headroom : %.1f kB per average idle period\n\n",
              profile.BytesPerIdlePeriodPaperAccounting() / 1024.0);
  std::printf("Idle-gap distribution (bus cycles):\n%s",
              sys.dram().controller(0).idle_period_histogram().ToAscii().c_str());
  return 0;
}
