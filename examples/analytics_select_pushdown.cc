// Analytics with transparent NDP pushdown: runs TPC-H Q6 through the bulk
// column-store twice — CPU-only and with the cost-model-guided JAFAR pushdown
// hook installed — and shows the plans agree while the scan goes to memory.
//
//   $ ./build/examples/analytics_select_pushdown
#include <cstdio>

#include "core/api.h"

int main() {
  using namespace ndp;

  // Generate a TPC-H-lite instance (the Figure 4 workload tables).
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = 0.005;
  db::tpch::Generate(cfg, &catalog);
  std::printf("TPC-H-lite: %llu lineitem rows\n",
              static_cast<unsigned long long>(
                  catalog.Tab("lineitem").num_rows()));

  // Plan A: pure CPU operators.
  db::QueryContext cpu_ctx;
  int64_t cpu_revenue = db::tpch::RunQ6(&cpu_ctx, &catalog);

  // Plan B: same query, with the planner deciding per-select whether to push
  // down to the JAFAR unit of a simulated system.
  core::SystemModel sys(core::PlatformConfig::Gem5());
  core::PushdownPlanner planner(&sys);
  db::QueryContext ndp_ctx;
  planner.Install(&ndp_ctx, /*default_selectivity=*/0.15);
  int64_t ndp_revenue = db::tpch::RunQ6(&ndp_ctx, &catalog);

  std::printf("Q6 revenue (CPU plan)  : %lld cents\n",
              static_cast<long long>(cpu_revenue));
  std::printf("Q6 revenue (NDP plan)  : %lld cents\n",
              static_cast<long long>(ndp_revenue));
  std::printf("\nOperator trace of the NDP plan:\n");
  for (const auto& s : ndp_ctx.stats) {
    std::printf("  %-24s in=%-9llu out=%llu\n", s.op.c_str(),
                static_cast<unsigned long long>(s.rows_in),
                static_cast<unsigned long long>(s.rows_out));
  }
  std::printf("\nSimulated select time spent on the NDP system: %.3f ms\n",
              static_cast<double>(sys.eq().Now()) / 1e9);
  return cpu_revenue == ndp_revenue ? 0 : 1;
}
