// The physical-plan layer: build a Q6-style plan, let the optimizer dissolve
// filters into the scan (where they become JAFAR-eligible position-list
// selects), print EXPLAIN output, and execute with NDP pushdown.
//
//   $ ./build/examples/plan_explain
#include <cstdio>

#include "core/api.h"
#include "db/plan.h"

using namespace ndp;
using namespace ndp::db;

int main() {
  Catalog catalog;
  tpch::TpchConfig cfg;
  cfg.scale = 0.005;
  tpch::Generate(cfg, &catalog);

  // SELECT sum(l_extendedprice * l_discount / 100) AS revenue
  // FROM lineitem
  // WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
  //   AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24;
  int64_t from = tpch::DayNumber(1994, 1, 1);
  int64_t to = tpch::DayNumber(1995, 1, 1) - 1;
  plan::NodePtr root = std::make_unique<plan::FilterNode>(
      std::make_unique<plan::FilterNode>(
          std::make_unique<plan::FilterNode>(
              std::make_unique<plan::ScanNode>(
                  &catalog.Tab("lineitem"),
                  std::vector<std::string>{"l_extendedprice", "l_discount"}),
              "l_shipdate", Pred::Between(from, to)),
          "l_discount", Pred::Between(5, 7)),
      "l_quantity", Pred::Lt(24));

  std::printf("Before optimization:\n%s\n", root->ExplainString().c_str());
  root = plan::PushFiltersIntoScans(std::move(root));
  std::printf("After PushFiltersIntoScans:\n%s\n",
              root->ExplainString().c_str());

  std::vector<plan::Expr> exprs = {
      {"revenue",
       {"l_extendedprice", "l_discount"},
       [](const std::vector<int64_t>& a) { return a[0] * a[1] / 100; }}};
  auto agg = std::make_unique<plan::AggregateNode>(
      std::make_unique<plan::ProjectNode>(std::move(root),
                                          std::vector<std::string>{}, exprs),
      std::vector<std::string>{},
      std::vector<plan::AggOutput>{{AggFn::kSum, "revenue", "revenue"}});
  std::printf("Full plan:\n%s\n", agg->ExplainString().c_str());

  // Execute twice: CPU-only and with the JAFAR pushdown hook installed.
  QueryContext cpu_ctx;
  auto cpu = agg->Execute(&cpu_ctx).ValueOrDie();

  core::SystemModel sys(core::PlatformConfig::Gem5());
  QueryContext ndp_ctx;
  ndp_ctx.ndp_select = sys.MakePushdownHook();
  auto ndp = agg->Execute(&ndp_ctx).ValueOrDie();

  std::printf("revenue (CPU plan) : %lld cents\n",
              static_cast<long long>(cpu.Col("revenue")[0]));
  std::printf("revenue (NDP plan) : %lld cents\n",
              static_cast<long long>(ndp.Col("revenue")[0]));
  std::printf("\nOperators executed by the NDP plan:\n");
  for (const auto& s : ndp_ctx.stats) {
    std::printf("  %-24s in=%-9llu out=%llu\n", s.op.c_str(),
                static_cast<unsigned long long>(s.rows_in),
                static_cast<unsigned long long>(s.rows_out));
  }
  return cpu.Col("revenue")[0] == ndp.Col("revenue")[0] ? 0 : 1;
}
