// Coordinating DRAM access (§2.2/§3.3 as a demo): a CPU workload and a JAFAR
// select share one channel. Shows the MR3/MPR ownership hand-off protocol,
// what the host controller does with requests while the rank is lent out, and
// the channel-level counters afterwards.
//
//   $ ./build/examples/mixed_contention
#include <cstdio>

#include "core/api.h"
#include "util/rng.h"

using namespace ndp;

int main() {
  db::Column col = db::Column::Int64("shared");
  Rng rng(7);
  for (int i = 0; i < 128 * 1024; ++i) col.Append(rng.NextInRange(0, 999999));

  core::PlatformConfig p = core::PlatformConfig::Gem5();
  p.dram_org.ranks_per_channel = 2;  // rank 0: JAFAR's DIMM, rank 1: CPU data
  core::SystemModel sys(p);
  uint64_t col_base = sys.PinColumn(col);
  uint64_t out = sys.Allocate((col.size() + 7) / 8 + 64, 4096);

  // CPU working set on the other rank.
  db::Column cpu_col = db::Column::Int64("cpu_side");
  for (int i = 0; i < 128 * 1024; ++i) cpu_col.Append(rng.NextInRange(0, 9));
  uint64_t rank1 = sys.dram().organization().BytesPerRank();
  sys.dram().backing_store().Write(rank1, cpu_col.data(), cpu_col.SizeBytes());

  std::printf("rank 0 owner before hand-off: %s\n",
              sys.dram().channel(0).rank(0).owner() == dram::RankOwner::kHost
                  ? "host memory controller"
                  : "accelerator");

  // Acquire ownership while the CPU is already streaming.
  cpu::AggregateScanStream cpu_stream(cpu_col.size(), rank1);
  bool cpu_done = false;
  NDP_CHECK(sys.cpu().Run(&cpu_stream, [&](sim::Tick) { cpu_done = true; }).ok());

  bool granted = false;
  sim::Tick grant_at = 0;
  sys.driver().AcquireOwnership([&](sim::Tick t) {
    granted = true;
    grant_at = t;
  });
  sys.eq().RunUntilTrue([&] { return granted; });
  std::printf("MR3/MPR hand-off completed at %.3f us of simulated time\n",
              static_cast<double>(grant_at) / 1e6);
  std::printf("rank 0 owner after hand-off : accelerator\n");

  jafar::SelectJob job;
  job.col_base = col_base;
  job.num_rows = col.size();
  job.range_low = 100000;
  job.range_high = 200000;
  job.out_base = out;
  bool done = false;
  sim::Tick start = sys.eq().Now(), end = 0;
  NDP_CHECK(sys.jafar().StartSelect(job, [&](sim::Tick t) {
    done = true;
    end = t;
  }).ok());
  sys.eq().RunUntilTrue([&] { return done; });
  std::printf("\nJAFAR filtered %llu rows in %.3f ms while the CPU streamed "
              "its own rank\n",
              static_cast<unsigned long long>(col.size()),
              static_cast<double>(end - start) / 1e9);
  std::printf("matches: %llu\n",
              static_cast<unsigned long long>(sys.jafar().last_match_count()));

  bool released = false;
  sys.driver().ReleaseOwnership([&](sim::Tick) { released = true; });
  sys.eq().RunUntilTrue([&] { return released; });
  std::printf("ownership returned to the host controller\n");

  sys.eq().RunUntilTrue([&] { return cpu_done; });
  auto counters = sys.dram().TotalCounters();
  std::printf("\nchannel totals: %llu reads, %llu writes, %llu row hits, "
              "%llu conflicts\n",
              static_cast<unsigned long long>(counters.reads_served),
              static_cast<unsigned long long>(counters.writes_served),
              static_cast<unsigned long long>(counters.row_hits),
              static_cast<unsigned long long>(counters.row_conflicts));
  return 0;
}
