#include "db/zonemap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace ndp::db {
namespace {

Column MakeColumn(const std::vector<int64_t>& values) {
  Column c = Column::Int64("c");
  for (int64_t v : values) c.Append(v);
  return c;
}

TEST(ZoneMapTest, BlockMinMax) {
  Column col = MakeColumn({5, 1, 9, 3, 100, 50, 70, 60});
  ZoneMap zm(col, 4);
  ASSERT_EQ(zm.num_blocks(), 2u);
  EXPECT_EQ(zm.block_min(0), 1);
  EXPECT_EQ(zm.block_max(0), 9);
  EXPECT_EQ(zm.block_min(1), 50);
  EXPECT_EQ(zm.block_max(1), 100);
}

TEST(ZoneMapTest, PruningIsConservative) {
  // Property: a pruned block must contain no qualifying value; Select()
  // must equal ScanSelect exactly.
  Rng rng(3);
  std::vector<int64_t> values(20000);
  for (auto& v : values) v = rng.NextInRange(0, 999);
  std::sort(values.begin(), values.end());
  Column col = MakeColumn(values);
  ZoneMap zm(col, 512);
  QueryContext ctx;
  for (const Pred& pred :
       {Pred::Between(100, 200), Pred::Eq(500), Pred::Lt(50), Pred::Gt(950),
        Pred::Le(0), Pred::Ge(999), Pred::Ne(values[0])}) {
    auto expected = ScanSelect(&ctx, col, pred);
    auto got = zm.Select(&ctx, col, pred);
    EXPECT_EQ(got, expected);
    // Cross-check BlockMayMatch against a per-block oracle.
    for (size_t b = 0; b < zm.num_blocks(); ++b) {
      bool any = false;
      for (size_t i = b * 512; i < std::min(values.size(), (b + 1) * 512);
           ++i) {
        any |= pred.Eval(values[i]);
      }
      if (any) {
        EXPECT_TRUE(zm.BlockMayMatch(b, pred))
            << "false prune, block " << b;
      }
    }
  }
}

TEST(ZoneMapTest, SortedDataPrunesUnsortedDoesNot) {
  Rng rng(7);
  std::vector<int64_t> values(40960);
  for (auto& v : values) v = rng.NextInRange(0, 999999);
  Column random_col = MakeColumn(values);
  std::sort(values.begin(), values.end());
  Column sorted_col = MakeColumn(values);
  Pred pred = Pred::Between(100000, 150000);
  ZoneMap zm_random(random_col);
  ZoneMap zm_sorted(sorted_col);
  EXPECT_LT(zm_random.PruneFraction(pred), 0.05);
  EXPECT_GT(zm_sorted.PruneFraction(pred), 0.8);
}

TEST(ZoneMapTest, PartialLastBlock) {
  Column col = MakeColumn({1, 2, 3, 4, 5});
  ZoneMap zm(col, 4);
  ASSERT_EQ(zm.num_blocks(), 2u);
  EXPECT_EQ(zm.block_min(1), 5);
  EXPECT_EQ(zm.block_max(1), 5);
  QueryContext ctx;
  EXPECT_EQ(zm.Select(&ctx, col, Pred::Ge(5)), (PositionList{4}));
}

TEST(ZoneMapTest, TraceRecordsOnlyCandidateBlocks) {
  std::vector<int64_t> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);  // perfectly clustered
  }
  Column col = MakeColumn(values);
  ZoneMap zm(col, 512);
  TraceRecorder trace;
  QueryContext ctx;
  ctx.trace = &trace;
  (void)zm.Select(&ctx, col, Pred::Between(0, 511));  // first block only
  size_t loads = 0;
  for (const auto& ev : trace.events()) {
    loads += ev.kind == cpu::TraceEvent::Kind::kLoad;
  }
  // 8 zone-map loads + 512 value loads (1 candidate block of 8).
  EXPECT_EQ(loads, 8u + 512u);
}

}  // namespace
}  // namespace ndp::db
