#include "db/column.h"

#include <gtest/gtest.h>

#include "db/table.h"

namespace ndp::db {
namespace {

TEST(ColumnTest, Int64AppendAndRead) {
  Column c = Column::Int64("x");
  c.Append(5);
  c.Append(-7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 5);
  EXPECT_EQ(c[1], -7);
  EXPECT_EQ(c.type(), ColumnType::kInt64);
  EXPECT_EQ(c.SizeBytes(), 16u);
}

TEST(ColumnTest, SetMutates) {
  Column c = Column::Int64("x");
  c.Append(1);
  c.Set(0, 42);
  EXPECT_EQ(c[0], 42);
}

TEST(ColumnTest, DictionaryInternsAndDecodes) {
  Column c = Column::Dictionary("flag");
  int64_t a = c.AppendString("A");
  int64_t n = c.AppendString("N");
  int64_t a2 = c.AppendString("A");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, n);
  EXPECT_EQ(c.dictionary_size(), 2u);
  EXPECT_EQ(c.StringAt(0), "A");
  EXPECT_EQ(c.StringAt(1), "N");
  EXPECT_EQ(c.StringAt(2), "A");
  EXPECT_EQ(c.DecodeCode(n), "N");
}

TEST(ColumnTest, CodeOfMissingString) {
  Column c = Column::Dictionary("flag");
  c.AppendString("A");
  EXPECT_TRUE(c.CodeOf("A").ok());
  EXPECT_EQ(c.CodeOf("Z").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, ColumnsAndValidation) {
  Table t("t");
  Column* a = t.AddColumn(Column::Int64("a"));
  Column* b = t.AddColumn(Column::Int64("b"));
  a->Append(1);
  b->Append(2);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_TRUE(t.Validate().ok());
  a->Append(3);
  EXPECT_FALSE(t.Validate().ok());
  EXPECT_EQ(&t.Col("a"), a);
  EXPECT_EQ(t.FindColumn("zzz"), nullptr);
}

TEST(CatalogTest, AddAndFind) {
  Catalog cat;
  Table* t = cat.AddTable("orders");
  EXPECT_EQ(cat.FindTable("orders"), t);
  EXPECT_EQ(cat.FindTable("nope"), nullptr);
  EXPECT_EQ(&cat.Tab("orders"), t);
  EXPECT_EQ(cat.num_tables(), 1u);
}

}  // namespace
}  // namespace ndp::db
