#include "db/tpch.h"

#include <gtest/gtest.h>

#include <set>

#include "db/tpch_queries.h"

namespace ndp::db::tpch {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    TpchConfig cfg;
    cfg.scale = 0.002;  // ~300 customers, ~3000 orders, ~12k lineitems
    Generate(cfg, catalog_);
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* TpchTest::catalog_ = nullptr;

TEST(DayNumberTest, KnownDates) {
  EXPECT_EQ(DayNumber(1992, 1, 1), 0);
  EXPECT_EQ(DayNumber(1992, 1, 2), 1);
  EXPECT_EQ(DayNumber(1992, 2, 1), 31);
  EXPECT_EQ(DayNumber(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(DayNumber(1998, 12, 1) - DayNumber(1998, 9, 2), 90);
}

TEST_F(TpchTest, TablesExistWithExpectedCardinalities) {
  Table& cust = catalog_->Tab("customer");
  Table& ord = catalog_->Tab("orders");
  Table& li = catalog_->Tab("lineitem");
  TpchConfig cfg;
  cfg.scale = 0.002;
  EXPECT_EQ(cust.num_rows(), cfg.num_customers());
  EXPECT_EQ(ord.num_rows(), cfg.num_orders());
  // 1-7 lines per order, so roughly 4x orders.
  EXPECT_GT(li.num_rows(), ord.num_rows() * 2);
  EXPECT_LT(li.num_rows(), ord.num_rows() * 7);
  EXPECT_TRUE(cust.Validate().ok());
  EXPECT_TRUE(ord.Validate().ok());
  EXPECT_TRUE(li.Validate().ok());
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Catalog other;
  TpchConfig cfg;
  cfg.scale = 0.002;
  Generate(cfg, &other);
  const Column& a = catalog_->Tab("lineitem").Col("l_extendedprice");
  const Column& b = other.Tab("lineitem").Col("l_extendedprice");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) EXPECT_EQ(a[i], b[i]);
}

TEST_F(TpchTest, DomainsRespectTpchRules) {
  Table& li = catalog_->Tab("lineitem");
  const Column& qty = li.Col("l_quantity");
  const Column& disc = li.Col("l_discount");
  const Column& ship = li.Col("l_shipdate");
  const Column& receipt = li.Col("l_receiptdate");
  const Column& rf = li.Col("l_returnflag");
  const Column& ls = li.Col("l_linestatus");
  int64_t current = DayNumber(1995, 6, 17);
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(qty[i], 1);
    ASSERT_LE(qty[i], 50);
    ASSERT_GE(disc[i], 0);
    ASSERT_LE(disc[i], 10);
    ASSERT_LT(receipt[i] - ship[i], 31);
    ASSERT_GT(receipt[i], ship[i]);
    // Return flag rule: N iff received after the "current date".
    if (receipt[i] <= current) {
      ASSERT_NE(rf.StringAt(i), "N");
    } else {
      ASSERT_EQ(rf.StringAt(i), "N");
    }
    ASSERT_EQ(ls.StringAt(i), ship[i] > current ? "O" : "F");
  }
}

TEST_F(TpchTest, SomeCustomersPlaceNoOrders) {
  // Required for Q22's anti-join to produce results.
  Table& cust = catalog_->Tab("customer");
  Table& ord = catalog_->Tab("orders");
  std::set<int64_t> ordering;
  const Column& ock = ord.Col("o_custkey");
  for (size_t i = 0; i < ord.num_rows(); ++i) ordering.insert(ock[i]);
  EXPECT_LT(ordering.size(), cust.num_rows());
}

TEST_F(TpchTest, Q6MatchesBruteForceOracle) {
  QueryContext ctx;
  int64_t got = RunQ6(&ctx, catalog_);
  Table& li = catalog_->Tab("lineitem");
  int64_t from = DayNumber(1994, 1, 1), to = DayNumber(1995, 1, 1);
  int64_t expected = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int64_t ship = li.Col("l_shipdate")[i];
    int64_t disc = li.Col("l_discount")[i];
    int64_t qty = li.Col("l_quantity")[i];
    if (ship >= from && ship < to && disc >= 5 && disc <= 7 && qty < 24) {
      expected += li.Col("l_extendedprice")[i] * disc / 100;
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(got, 0);
}

TEST_F(TpchTest, Q1ProducesFourGroupsCoveringAllSelectedRows) {
  QueryContext ctx;
  auto rows = RunQ1(&ctx, catalog_);
  // (A,F), (R,F), (N,F), (N,O) are the classic TPC-H Q1 groups.
  EXPECT_EQ(rows.size(), 4u);
  int64_t total_count = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.count_order, 0);
    EXPECT_GE(r.sum_base_price, r.sum_disc_price);  // discounts only reduce
    total_count += r.count_order;
  }
  // Total grouped rows == rows passing the date filter.
  Table& li = catalog_->Tab("lineitem");
  int64_t cutoff = DayNumber(1998, 12, 1) - 90;
  int64_t expected = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    expected += li.Col("l_shipdate")[i] <= cutoff;
  }
  EXPECT_EQ(total_count, expected);
}

TEST_F(TpchTest, Q3TopTenOrderedByRevenue) {
  QueryContext ctx;
  auto rows = RunQ3(&ctx, catalog_);
  ASSERT_LE(rows.size(), 10u);
  ASSERT_GE(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].revenue, rows[i].revenue);
  }
  // Spot-check the winner against a brute-force recomputation.
  Table& li = catalog_->Tab("lineitem");
  int64_t date = DayNumber(1995, 3, 15);
  int64_t revenue = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.Col("l_orderkey")[i] == rows[0].orderkey &&
        li.Col("l_shipdate")[i] > date) {
      revenue += li.Col("l_extendedprice")[i] *
                 (100 - li.Col("l_discount")[i]) / 100;
    }
  }
  EXPECT_EQ(rows[0].revenue, revenue);
}

TEST_F(TpchTest, Q18AllRowsExceed300Units) {
  QueryContext ctx;
  auto rows = RunQ18(&ctx, catalog_);
  for (const auto& r : rows) {
    EXPECT_GT(r.sum_quantity, 300);
    EXPECT_GT(r.custkey, 0);
  }
  // Descending by totalprice.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].totalprice, rows[i].totalprice);
  }
}

TEST_F(TpchTest, Q22CustomersHaveNoOrders) {
  QueryContext ctx;
  auto rows = RunQ22(&ctx, catalog_);
  EXPECT_GT(rows.size(), 0u);
  int64_t total = 0;
  for (const auto& r : rows) {
    EXPECT_GE(r.country_code, 10);
    EXPECT_LE(r.country_code, 34);
    EXPECT_GT(r.num_customers, 0);
    EXPECT_GT(r.total_acctbal, 0);  // above-average balances are positive
    total += r.num_customers;
  }
  EXPECT_GT(total, 0);
}

TEST_F(TpchTest, QueriesAgreeAcrossSelectModesAndTracing) {
  for (int q : {1, 3, 6, 18, 22}) {
    QueryContext branching;
    branching.select_mode = SelectMode::kBranching;
    QueryContext predicated;
    predicated.select_mode = SelectMode::kPredicated;
    TraceRecorder trace;
    QueryContext traced;
    traced.trace = &trace;
    int64_t a = RunQueryByNumber(&branching, catalog_, q).ValueOrDie();
    int64_t b = RunQueryByNumber(&predicated, catalog_, q).ValueOrDie();
    int64_t c = RunQueryByNumber(&traced, catalog_, q).ValueOrDie();
    EXPECT_EQ(a, b) << "Q" << q;
    EXPECT_EQ(a, c) << "Q" << q;
    EXPECT_GT(trace.events().size(), 100u) << "Q" << q;
  }
}

TEST_F(TpchTest, UnknownQueryNumberRejected) {
  QueryContext ctx;
  EXPECT_FALSE(RunQueryByNumber(&ctx, catalog_, 2).ok());
}

}  // namespace
}  // namespace ndp::db::tpch
