#include "db/operators.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace ndp::db {
namespace {

Column MakeColumn(const std::vector<int64_t>& values, const char* name = "c") {
  Column c = Column::Int64(name);
  for (int64_t v : values) c.Append(v);
  return c;
}

std::vector<int64_t> RandomValues(size_t n, int64_t lo, int64_t hi,
                                  uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(lo, hi);
  return v;
}

TEST(PredTest, AllOperators) {
  EXPECT_TRUE(Pred::Between(2, 5).Eval(2));
  EXPECT_TRUE(Pred::Between(2, 5).Eval(5));
  EXPECT_FALSE(Pred::Between(2, 5).Eval(6));
  EXPECT_TRUE(Pred::Eq(3).Eval(3));
  EXPECT_TRUE(Pred::Ne(3).Eval(4));
  EXPECT_TRUE(Pred::Lt(3).Eval(2));
  EXPECT_FALSE(Pred::Lt(3).Eval(3));
  EXPECT_TRUE(Pred::Gt(3).Eval(4));
  EXPECT_TRUE(Pred::Le(3).Eval(3));
  EXPECT_TRUE(Pred::Ge(3).Eval(3));
}

TEST(ScanSelectTest, BranchingAndPredicatedAgree) {
  auto values = RandomValues(10000, 0, 999);
  Column col = MakeColumn(values);
  QueryContext branching;
  branching.select_mode = SelectMode::kBranching;
  QueryContext predicated;
  predicated.select_mode = SelectMode::kPredicated;
  Pred p = Pred::Between(100, 400);
  EXPECT_EQ(ScanSelect(&branching, col, p), ScanSelect(&predicated, col, p));
}

TEST(ScanSelectTest, MatchesOracle) {
  auto values = RandomValues(5000, -100, 100, 9);
  Column col = MakeColumn(values);
  QueryContext ctx;
  PositionList got = ScanSelect(&ctx, col, Pred::Ge(50));
  PositionList expected;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= 50) expected.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_EQ(got, expected);
  ASSERT_EQ(ctx.stats.size(), 1u);
  EXPECT_EQ(ctx.stats[0].rows_in, 5000u);
  EXPECT_EQ(ctx.stats[0].rows_out, expected.size());
}

TEST(ScanSelectTest, NdpHookIsUsedWhenInstalled) {
  Column col = MakeColumn({1, 2, 3, 4});
  QueryContext ctx;
  bool called = false;
  ctx.ndp_select = [&](const Column&, const Pred&) -> Result<PositionList> {
    called = true;
    return PositionList{1, 3};
  };
  PositionList got = ScanSelect(&ctx, col, Pred::Gt(0));
  EXPECT_TRUE(called);
  EXPECT_EQ(got, (PositionList{1, 3}));
  EXPECT_EQ(ctx.stats[0].op, "scan_select[jafar]");
}

TEST(ScanSelectTest, NdpHookErrorFallsBackToCpu) {
  Column col = MakeColumn({1, 2, 3, 4});
  QueryContext ctx;
  ctx.ndp_select = [](const Column&, const Pred&) -> Result<PositionList> {
    return Status::FailedPrecondition("not pinned on a JAFAR DIMM");
  };
  PositionList got = ScanSelect(&ctx, col, Pred::Gt(2));
  EXPECT_EQ(got, (PositionList{2, 3}));
  EXPECT_EQ(ctx.stats[0].op, "scan_select");
}

TEST(RefineTest, NarrowsPositions) {
  Column col = MakeColumn({10, 20, 30, 40, 50});
  QueryContext ctx;
  PositionList in = {0, 2, 4};
  PositionList out = Refine(&ctx, col, Pred::Ge(30), in);
  EXPECT_EQ(out, (PositionList{2, 4}));
}

TEST(GatherTest, LateMaterialization) {
  Column col = MakeColumn({10, 20, 30, 40});
  QueryContext ctx;
  auto vals = Gather(&ctx, col, {3, 0, 2});
  EXPECT_EQ(vals, (std::vector<int64_t>{40, 10, 30}));
}

TEST(HashJoinTest, MatchesNestedLoopOracle) {
  auto lk = RandomValues(300, 0, 50, 2);
  auto rk = RandomValues(500, 0, 50, 3);
  Column left = MakeColumn(lk, "l");
  Column right = MakeColumn(rk, "r");
  PositionList lp(lk.size()), rp(rk.size());
  std::iota(lp.begin(), lp.end(), 0);
  std::iota(rp.begin(), rp.end(), 0);
  QueryContext ctx;
  JoinResult jr = HashJoin(&ctx, left, lp, right, rp);
  ASSERT_EQ(jr.left.size(), jr.right.size());
  // Oracle: count pairs.
  size_t expected = 0;
  for (int64_t a : lk) {
    for (int64_t b : rk) expected += (a == b);
  }
  EXPECT_EQ(jr.left.size(), expected);
  for (size_t i = 0; i < jr.left.size(); ++i) {
    EXPECT_EQ(lk[jr.left[i]], rk[jr.right[i]]);
  }
}

TEST(HashSemiJoinTest, SemiAndAntiPartitionProbe) {
  Column build = MakeColumn({1, 2, 3});
  Column probe = MakeColumn({0, 1, 2, 3, 4, 5});
  PositionList bp = {0, 1, 2};
  PositionList pp = {0, 1, 2, 3, 4, 5};
  QueryContext ctx;
  PositionList semi = HashSemiJoin(&ctx, build, bp, probe, pp, false);
  PositionList anti = HashSemiJoin(&ctx, build, bp, probe, pp, true);
  EXPECT_EQ(semi, (PositionList{1, 2, 3}));
  EXPECT_EQ(anti, (PositionList{0, 4, 5}));
  EXPECT_EQ(semi.size() + anti.size(), pp.size());
}

TEST(AggregateTest, AllFunctions) {
  QueryContext ctx;
  std::vector<int64_t> v = {4, -2, 7, 7, 0};
  EXPECT_EQ(Aggregate(&ctx, AggFn::kSum, v), 16);
  EXPECT_EQ(Aggregate(&ctx, AggFn::kMin, v), -2);
  EXPECT_EQ(Aggregate(&ctx, AggFn::kMax, v), 7);
  EXPECT_EQ(Aggregate(&ctx, AggFn::kCount, v), 5);
}

TEST(GroupAggregateTest, MultipleSpecs) {
  QueryContext ctx;
  std::vector<int64_t> keys = {1, 2, 1, 2, 1};
  std::vector<int64_t> vals = {10, 20, 30, 40, 50};
  auto groups = GroupAggregate(
      &ctx, keys,
      {{AggFn::kSum, &vals}, {AggFn::kCount, nullptr}, {AggFn::kMax, &vals}});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1], (std::vector<int64_t>{90, 3, 50}));
  EXPECT_EQ(groups[2], (std::vector<int64_t>{60, 2, 40}));
}

TEST(SortByTest, StableAndDirectional) {
  QueryContext ctx;
  std::vector<int64_t> keys = {5, 1, 5, 3};
  PositionList pos = {10, 11, 12, 13};
  EXPECT_EQ(SortBy(&ctx, keys, pos), (PositionList{11, 13, 10, 12}));
  EXPECT_EQ(SortBy(&ctx, keys, pos, /*descending=*/true),
            (PositionList{10, 12, 13, 11}));
}

TEST(BitmapConversionTest, RoundTrip) {
  PositionList pos = {0, 5, 63, 64, 100};
  BitVector bm = PositionsToBitmap(pos, 128);
  EXPECT_EQ(bm.CountOnes(), 5u);
  EXPECT_EQ(BitmapToPositions(bm), pos);
}

TEST(IntersectSortedTest, Basic) {
  EXPECT_EQ(IntersectSorted({1, 3, 5, 7}, {3, 4, 5, 8}), (PositionList{3, 5}));
  EXPECT_EQ(IntersectSorted({}, {1}), PositionList{});
}

TEST(TraceRecorderTest, RecordsOperatorTraffic) {
  auto values = RandomValues(1000, 0, 99, 5);
  Column col = MakeColumn(values);
  TraceRecorder trace;
  QueryContext ctx;
  ctx.trace = &trace;
  PositionList pos = ScanSelect(&ctx, col, Pred::Lt(50));
  EXPECT_GT(trace.events().size(), 1000u);  // loads + computes + stores
  // One load per row plus one store per match.
  size_t loads = 0, stores = 0;
  for (const auto& ev : trace.events()) {
    loads += ev.kind == cpu::TraceEvent::Kind::kLoad;
    stores += ev.kind == cpu::TraceEvent::Kind::kStore;
  }
  EXPECT_EQ(loads, 1000u);
  EXPECT_EQ(stores, pos.size());
}

TEST(TraceRecorderTest, SamplingKeepsComputeMemoryRatio) {
  auto values = RandomValues(10000, 0, 99, 6);
  Column col = MakeColumn(values);
  auto count = [&](uint32_t period) {
    TraceRecorder trace(period);
    QueryContext ctx;
    ctx.trace = &trace;
    (void)ScanSelect(&ctx, col, Pred::Lt(200));  // all match
    uint64_t loads = 0, compute = 0;
    for (const auto& ev : trace.events()) {
      if (ev.kind == cpu::TraceEvent::Kind::kLoad) ++loads;
      if (ev.kind == cpu::TraceEvent::Kind::kCompute) compute += ev.value;
    }
    return std::pair<uint64_t, uint64_t>(loads, compute);
  };
  auto [full_loads, full_compute] = count(1);
  auto [s_loads, s_compute] = count(10);
  EXPECT_NEAR(static_cast<double>(s_loads) / full_loads, 0.1, 0.02);
  double full_ratio = static_cast<double>(full_compute) / full_loads;
  double s_ratio = static_cast<double>(s_compute) / s_loads;
  EXPECT_NEAR(s_ratio, full_ratio, full_ratio * 0.2);
}

}  // namespace
}  // namespace ndp::db
