#include "db/plan.h"

#include <gtest/gtest.h>

#include "db/tpch.h"
#include "db/tpch_queries.h"

namespace ndp::db::plan {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::TpchConfig cfg;
    cfg.scale = 0.002;
    tpch::Generate(cfg, catalog_);
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* PlanTest::catalog_ = nullptr;

TEST_F(PlanTest, ScanProducesAllRows) {
  QueryContext ctx;
  ScanNode scan(&catalog_->Tab("customer"), {"c_custkey", "c_acctbal"});
  Batch b = scan.Execute(&ctx).ValueOrDie();
  EXPECT_EQ(b.rows(), catalog_->Tab("customer").num_rows());
  EXPECT_EQ(b.names, (std::vector<std::string>{"c_custkey", "c_acctbal"}));
}

TEST_F(PlanTest, ScanConjunctsLateMaterialize) {
  QueryContext ctx;
  ScanNode scan(&catalog_->Tab("lineitem"), {"l_extendedprice"});
  scan.AddConjunct("l_quantity", Pred::Le(10));
  Batch b = scan.Execute(&ctx).ValueOrDie();
  const Table& li = catalog_->Tab("lineitem");
  size_t expected = 0;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    expected += li.Col("l_quantity")[i] <= 10;
  }
  EXPECT_EQ(b.rows(), expected);
  // The gather only touched qualifying rows.
  ASSERT_FALSE(ctx.stats.empty());
  EXPECT_EQ(ctx.stats.back().rows_in, expected);
}

TEST_F(PlanTest, FilterAboveScanEqualsConjunctInScan) {
  QueryContext ctx1, ctx2;
  auto filtered = std::make_unique<FilterNode>(
      std::make_unique<ScanNode>(&catalog_->Tab("lineitem"),
                                 std::vector<std::string>{"l_quantity",
                                                          "l_discount"}),
      "l_quantity", Pred::Between(10, 20));
  Batch a = filtered->Execute(&ctx1).ValueOrDie();

  auto scan = std::make_unique<ScanNode>(
      &catalog_->Tab("lineitem"),
      std::vector<std::string>{"l_quantity", "l_discount"});
  scan->AddConjunct("l_quantity", Pred::Between(10, 20));
  Batch b = scan->Execute(&ctx2).ValueOrDie();
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.Col("l_discount"), b.Col("l_discount"));
}

TEST_F(PlanTest, OptimizerDissolvesFilterIntoScan) {
  NodePtr root = std::make_unique<FilterNode>(
      std::make_unique<FilterNode>(
          std::make_unique<ScanNode>(
              &catalog_->Tab("lineitem"),
              std::vector<std::string>{"l_extendedprice"}),
          "l_quantity", Pred::Lt(24)),
      "l_discount", Pred::Between(5, 7));
  root = PushFiltersIntoScans(std::move(root));
  auto* scan = dynamic_cast<ScanNode*>(root.get());
  ASSERT_NE(scan, nullptr) << root->ExplainString();
  EXPECT_EQ(scan->num_conjuncts(), 2u);
  // A filter on a non-table column must NOT be pushed.
  NodePtr root2 = std::make_unique<FilterNode>(
      std::make_unique<ScanNode>(&catalog_->Tab("lineitem"),
                                 std::vector<std::string>{"l_quantity"}),
      "not_a_column", Pred::Eq(1));
  root2 = PushFiltersIntoScans(std::move(root2));
  EXPECT_NE(dynamic_cast<FilterNode*>(root2.get()), nullptr);
}

TEST_F(PlanTest, Q6AsPlanMatchesHandWrittenQuery) {
  // SELECT sum(extendedprice * discount / 100) FROM lineitem
  // WHERE shipdate in [1994, 1995) AND discount in [5,7] AND quantity < 24.
  int64_t from = tpch::DayNumber(1994, 1, 1);
  int64_t to = tpch::DayNumber(1995, 1, 1) - 1;
  NodePtr root = std::make_unique<FilterNode>(
      std::make_unique<FilterNode>(
          std::make_unique<FilterNode>(
              std::make_unique<ScanNode>(
                  &catalog_->Tab("lineitem"),
                  std::vector<std::string>{"l_extendedprice", "l_discount"}),
              "l_shipdate", Pred::Between(from, to)),
          "l_discount", Pred::Between(5, 7)),
      "l_quantity", Pred::Lt(24));
  root = PushFiltersIntoScans(std::move(root));

  std::vector<Expr> exprs = {{"revenue",
                              {"l_extendedprice", "l_discount"},
                              [](const std::vector<int64_t>& a) {
                                return a[0] * a[1] / 100;
                              }}};
  auto project = std::make_unique<ProjectNode>(
      std::move(root), std::vector<std::string>{}, exprs);
  auto agg = std::make_unique<AggregateNode>(
      std::move(project), std::vector<std::string>{},
      std::vector<AggOutput>{{AggFn::kSum, "revenue", "total"}});

  QueryContext pctx;
  Batch result = agg->Execute(&pctx).ValueOrDie();
  ASSERT_EQ(result.rows(), 1u);

  QueryContext qctx;
  EXPECT_EQ(result.Col("total")[0], tpch::RunQ6(&qctx, catalog_));
}

TEST_F(PlanTest, JoinAggregateSortPipeline) {
  // Revenue of the BUILDING segment per order, top 5 — a Q3-like plan.
  Table& cust = catalog_->Tab("customer");
  int64_t building = cust.Col("c_mktsegment").CodeOf("BUILDING").ValueOrDie();

  auto cust_scan = std::make_unique<ScanNode>(
      &cust, std::vector<std::string>{"c_custkey"});
  cust_scan->AddConjunct("c_mktsegment", Pred::Eq(building));
  auto ord_scan = std::make_unique<ScanNode>(
      &catalog_->Tab("orders"),
      std::vector<std::string>{"o_custkey", "o_orderkey", "o_totalprice"});
  auto join = std::make_unique<HashJoinNode>(
      std::move(cust_scan), std::move(ord_scan), "c_custkey", "o_custkey");
  auto agg = std::make_unique<AggregateNode>(
      std::move(join), std::vector<std::string>{"o_orderkey"},
      std::vector<AggOutput>{{AggFn::kSum, "o_totalprice", "revenue"},
                             {AggFn::kCount, "", "n"}});
  auto sort = std::make_unique<SortNode>(std::move(agg), "revenue",
                                         /*descending=*/true, /*limit=*/5);
  QueryContext ctx;
  Batch top = sort->Execute(&ctx).ValueOrDie();
  EXPECT_LE(top.rows(), 5u);
  ASSERT_GE(top.rows(), 1u);
  const auto& rev = top.Col("revenue");
  for (size_t i = 1; i < rev.size(); ++i) EXPECT_GE(rev[i - 1], rev[i]);
  // Each group has exactly one order row.
  for (int64_t n : top.Col("n")) EXPECT_EQ(n, 1);
}

TEST_F(PlanTest, MultiKeyGroupByPacksAndUnpacks) {
  auto scan = std::make_unique<ScanNode>(
      &catalog_->Tab("lineitem"),
      std::vector<std::string>{"l_returnflag", "l_linestatus", "l_quantity"});
  auto agg = std::make_unique<AggregateNode>(
      std::move(scan),
      std::vector<std::string>{"l_returnflag", "l_linestatus"},
      std::vector<AggOutput>{{AggFn::kCount, "", "n"}});
  QueryContext ctx;
  Batch groups = agg->Execute(&ctx).ValueOrDie();
  EXPECT_EQ(groups.rows(), 4u);  // (A,F), (R,F), (N,F), (N,O)
  int64_t total = 0;
  for (int64_t n : groups.Col("n")) total += n;
  EXPECT_EQ(static_cast<size_t>(total), catalog_->Tab("lineitem").num_rows());
  // Key columns decoded back to their original domains.
  for (int64_t rf : groups.Col("l_returnflag")) {
    EXPECT_GE(rf, 0);
    EXPECT_LE(rf, 2);
  }
}

TEST_F(PlanTest, ExplainRendersTree) {
  auto scan = std::make_unique<ScanNode>(
      &catalog_->Tab("lineitem"), std::vector<std::string>{"l_quantity"});
  scan->AddConjunct("l_shipdate", Pred::Le(100));
  auto sort = std::make_unique<SortNode>(std::move(scan), "l_quantity", true, 3);
  std::string s = sort->ExplainString();
  EXPECT_NE(s.find("Sort l_quantity desc limit 3"), std::string::npos);
  EXPECT_NE(s.find("Scan lineitem"), std::string::npos);
  EXPECT_NE(s.find("l_shipdate <= 100"), std::string::npos);
}

TEST_F(PlanTest, MissingColumnsReportNotFound) {
  QueryContext ctx;
  ScanNode bad(&catalog_->Tab("customer"), {"nope"});
  EXPECT_EQ(bad.Execute(&ctx).status().code(), StatusCode::kNotFound);
  auto filter = std::make_unique<FilterNode>(
      std::make_unique<ScanNode>(&catalog_->Tab("customer"),
                                 std::vector<std::string>{"c_custkey"}),
      "ghost", Pred::Eq(1));
  EXPECT_EQ(filter->Execute(&ctx).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ndp::db::plan
