#include "db/compression.h"

#include <gtest/gtest.h>

#include "jafar/device.h"
#include "util/rng.h"

namespace ndp::db {
namespace {

Column MakeColumn(const std::vector<int64_t>& values) {
  Column c = Column::Int64("c");
  for (int64_t v : values) c.Append(v);
  return c;
}

TEST(ForEncodingTest, RoundTripsValues) {
  Column col = MakeColumn({1000000, 1000005, 999990, 1000123});
  auto enc = ForEncodedColumn::Encode(col).ValueOrDie();
  EXPECT_EQ(enc.base(), 999990);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(enc.Decode(i), col[i]);
  }
  EXPECT_EQ(enc.SizeBytes(), col.SizeBytes() / 2);
}

TEST(ForEncodingTest, RejectsWideRanges) {
  Column col = MakeColumn({0, int64_t{1} << 40});
  EXPECT_EQ(ForEncodedColumn::Encode(col).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ForEncodingTest, EmptyColumn) {
  Column col = Column::Int64("e");
  auto enc = ForEncodedColumn::Encode(col).ValueOrDie();
  EXPECT_EQ(enc.size(), 0u);
  int64_t lo, hi;
  EXPECT_FALSE(enc.CodeRangeFor(0, 100, &lo, &hi));
}

TEST(ForEncodingTest, SelectMatchesPlainSelectForAllOperators) {
  Rng rng(4);
  std::vector<int64_t> values(10000);
  for (auto& v : values) v = 500000 + rng.NextInRange(0, 99999);
  Column col = MakeColumn(values);
  auto enc = ForEncodedColumn::Encode(col).ValueOrDie();
  QueryContext ctx;
  for (const Pred& pred :
       {Pred::Between(520000, 540000), Pred::Eq(values[7]), Pred::Lt(510000),
        Pred::Gt(590000), Pred::Le(500000), Pred::Ge(599999),
        Pred::Ne(values[0]),
        // Ranges straddling / outside the frame:
        Pred::Between(0, 499999), Pred::Between(700000, 800000),
        Pred::Between(490000, 510000)}) {
    EXPECT_EQ(enc.Select(&ctx, pred), ScanSelect(&ctx, col, pred))
        << "op " << static_cast<int>(pred.op) << " lo " << pred.lo;
  }
}

TEST(ForEncodingTest, CodeRangeClampsToFrame) {
  Column col = MakeColumn({100, 200, 300});
  auto enc = ForEncodedColumn::Encode(col).ValueOrDie();
  int64_t lo, hi;
  ASSERT_TRUE(enc.CodeRangeFor(150, 250, &lo, &hi));
  EXPECT_EQ(lo, 50);
  EXPECT_EQ(hi, 150);
  ASSERT_TRUE(enc.CodeRangeFor(-1000, 150, &lo, &hi));
  EXPECT_EQ(lo, 0);
  EXPECT_FALSE(enc.CodeRangeFor(1 << 20, 2 << 20, &lo, &hi));
}

TEST(ForEncodingTest, NdpScanOverEncodedDataMatchesOracle) {
  // End to end: FOR codes scanned by the packed-32-bit JAFAR datapath with
  // the predicate rewritten into the code domain.
  Rng rng(9);
  std::vector<int64_t> values(8192);
  for (auto& v : values) v = 1000000 + rng.NextInRange(0, 999999);
  Column col = MakeColumn(values);
  auto enc = ForEncodedColumn::Encode(col).ValueOrDie();

  sim::EventQueue eq;
  dram::DramOrganization org;
  org.rows_per_bank = 4096;
  dram::ControllerConfig mc;
  mc.refresh_enabled = false;
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous, mc);
  auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                         accel::DatapathResources{})
                 .ValueOrDie();
  cfg.elem_bytes = 4;
  jafar::Device device(&dram, 0, 0, cfg);
  bool granted = false;
  dram.controller(0).TransferOwnership(0, dram::RankOwner::kAccelerator,
                                       [&](sim::Tick) { granted = true; });
  ASSERT_TRUE(eq.RunUntilTrue([&] { return granted; }));
  dram.backing_store().Write(0, enc.codes(), enc.SizeBytes());

  int64_t vlo = 1200000, vhi = 1500000;
  int64_t clo, chi;
  ASSERT_TRUE(enc.CodeRangeFor(vlo, vhi, &clo, &chi));
  jafar::SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.range_low = clo;
  job.range_high = chi;
  job.out_base = 1 << 20;
  bool done = false;
  ASSERT_TRUE(device.StartSelect(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq.RunUntilTrue([&] { return done; }));

  uint64_t oracle = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    bool pass = values[i] >= vlo && values[i] <= vhi;
    oracle += pass;
    uint64_t word = dram.backing_store().Read64((1 << 20) + (i / 64) * 8);
    ASSERT_EQ(((word >> (i % 64)) & 1) != 0, pass) << "row " << i;
  }
  EXPECT_EQ(device.last_match_count(), oracle);
  // Half the bursts of the uncompressed scan.
  EXPECT_EQ(device.stats().bursts_read, values.size() / 16);
}

}  // namespace
}  // namespace ndp::db
