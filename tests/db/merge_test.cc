#include <gtest/gtest.h>

#include <algorithm>

#include "cpu/kernels.h"
#include "db/operators.h"
#include "util/rng.h"

namespace ndp::db {
namespace {

TEST(MergeSortedRunsTest, MergesToGlobalOrder) {
  Rng rng(1);
  std::vector<std::vector<int64_t>> runs(7);
  std::vector<int64_t> all;
  for (auto& run : runs) {
    size_t n = 10 + rng.NextBounded(500);
    for (size_t i = 0; i < n; ++i) run.push_back(rng.NextInRange(-1000, 1000));
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  QueryContext ctx;
  auto merged = MergeSortedRuns(&ctx, runs);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(merged, all);
}

TEST(MergeSortedRunsTest, HandlesEmptyRuns) {
  QueryContext ctx;
  EXPECT_TRUE(MergeSortedRuns(&ctx, {}).empty());
  EXPECT_TRUE(MergeSortedRuns(&ctx, {{}, {}}).empty());
  EXPECT_EQ(MergeSortedRuns(&ctx, {{}, {1, 2}, {}}),
            (std::vector<int64_t>{1, 2}));
}

TEST(MergeSortedRunsTest, RecordsTrace) {
  TraceRecorder trace;
  QueryContext ctx;
  ctx.trace = &trace;
  (void)MergeSortedRuns(&ctx, {{1, 3}, {2, 4}});
  EXPECT_GT(trace.events().size(), 4u);
  ASSERT_FALSE(ctx.stats.empty());
  EXPECT_EQ(ctx.stats.back().op, "merge_runs");
  EXPECT_EQ(ctx.stats.back().rows_out, 4u);
}

TEST(MergeSortStreamTest, EmitsPassesTimesRowsIterations) {
  cpu::MergeSortStream s(64, 0, 1 << 20);
  EXPECT_EQ(s.passes(), 6u);
  cpu::Uop u;
  size_t loads = 0, stores = 0, branches = 0;
  while (s.Next(&u)) {
    loads += u.type == cpu::UopType::kLoad;
    stores += u.type == cpu::UopType::kStore;
    branches += u.type == cpu::UopType::kBranch;
  }
  EXPECT_EQ(loads, 6u * 64);
  EXPECT_EQ(stores, 6u * 64);
  EXPECT_EQ(branches, 2u * 6 * 64);  // merge branch + loop branch
}

TEST(MergeSortStreamTest, PingPongsBuffers) {
  cpu::MergeSortStream s(4, 0x1000, 0x2000);
  cpu::Uop u;
  std::vector<uint64_t> store_bases;
  while (s.Next(&u)) {
    if (u.type == cpu::UopType::kStore && u.addr % 0x1000 == 0) {
      store_bases.push_back(u.addr & ~uint64_t{0xFFF});
    }
  }
  ASSERT_GE(store_bases.size(), 2u);
  EXPECT_EQ(store_bases[0], 0x2000u);  // pass 0 writes dst
  EXPECT_EQ(store_bases[1], 0x1000u);  // pass 1 writes back to src
}

TEST(ConcatStreamTest, ChainsChildrenInOrder) {
  std::vector<cpu::TraceEvent> a = {{cpu::TraceEvent::Kind::kLoad, 1}};
  std::vector<cpu::TraceEvent> b = {{cpu::TraceEvent::Kind::kLoad, 2},
                                    {cpu::TraceEvent::Kind::kLoad, 3}};
  cpu::ReplayStream ra(&a), rb(&b);
  cpu::ConcatStream s({&ra, &rb});
  cpu::Uop u;
  std::vector<uint64_t> addrs;
  while (s.Next(&u)) addrs.push_back(u.addr);
  EXPECT_EQ(addrs, (std::vector<uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace ndp::db
