// Property-based suites: randomized inputs exercising cross-module
// invariants — JAFAR results equal the scalar oracle for arbitrary
// predicates/data/geometry; the memory system is live under random traffic;
// caches never lose or duplicate completions.
#include <gtest/gtest.h>

#include "core/api.h"
#include "util/rng.h"

namespace ndp {
namespace {

// ---------------------------------------------------------------------------
// JAFAR vs oracle under randomized jobs.

class JafarOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JafarOracleProperty, SelectMatchesOracleOnRandomJobs) {
  Rng rng(GetParam());
  sim::EventQueue eq;
  dram::DramOrganization org;
  org.rows_per_bank = 2048;
  dram::ControllerConfig mc;
  mc.refresh_enabled = rng.NextBool(0.5);
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous, mc);
  auto cfg = jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                         accel::DatapathResources{})
                 .ValueOrDie();
  cfg.output_buffer_bits = 512u << rng.NextBounded(4);
  jafar::Device device(&dram, 0, 0, cfg);
  bool granted = false;
  dram.controller(0).TransferOwnership(0, dram::RankOwner::kAccelerator,
                                       [&](sim::Tick) { granted = true; });
  ASSERT_TRUE(eq.RunUntilTrue([&] { return granted; }));

  for (int trial = 0; trial < 4; ++trial) {
    uint64_t rows = 64 + rng.NextBounded(8000);
    std::vector<int64_t> values(rows);
    int64_t domain = 1 + static_cast<int64_t>(rng.NextBounded(1000));
    for (auto& v : values) v = rng.NextInRange(-domain, domain);
    dram.backing_store().Write(0, values.data(), rows * 8);

    jafar::SelectJob job;
    job.col_base = 0;
    job.num_rows = rows;
    job.op = static_cast<jafar::CompareOp>(rng.NextBounded(6));
    job.range_low = rng.NextInRange(-domain, domain);
    job.range_high = rng.NextInRange(job.range_low, domain);
    job.out_base = 1 << 22;
    // Clear the bitmap region (trials reuse it).
    std::vector<uint8_t> zeros((rows + 7) / 8 + 64, 0);
    dram.backing_store().Write(job.out_base, zeros.data(), zeros.size());

    bool done = false;
    ASSERT_TRUE(
        device.StartSelect(job, [&](sim::Tick) { done = true; }).ok());
    ASSERT_TRUE(eq.RunUntilTrue([&] { return done; }));

    uint64_t oracle = 0;
    for (uint64_t i = 0; i < rows; ++i) {
      bool pass = jafar::EvalCompare(job.op, values[i], job.range_low,
                                     job.range_high);
      oracle += pass;
      uint64_t word = dram.backing_store().Read64(job.out_base + (i / 64) * 8);
      ASSERT_EQ(((word >> (i % 64)) & 1) != 0, pass)
          << "trial " << trial << " row " << i << " op "
          << jafar::CompareOpToString(job.op);
    }
    EXPECT_EQ(device.last_match_count(), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JafarOracleProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Memory-system liveness: every request completes, exactly once.

class DramLivenessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DramLivenessProperty, RandomTrafficAlwaysCompletes) {
  Rng rng(GetParam());
  sim::EventQueue eq;
  dram::DramOrganization org;
  org.channels = 1 + rng.NextBounded(2);
  org.ranks_per_channel = 1 + rng.NextBounded(2);
  org.rows_per_bank = 512;
  dram::ControllerConfig mc;
  mc.refresh_enabled = rng.NextBool(0.7);
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous, mc);

  const int kRequests = 2000;
  int completed = 0;
  std::vector<int> completions(kRequests, 0);
  int issued = 0;
  // Issue in waves, respecting backpressure.
  std::function<void()> issue_some = [&] {
    while (issued < kRequests) {
      dram::Request r;
      r.addr = (rng.NextU64() % org.TotalBytes()) & ~uint64_t{63};
      r.is_write = rng.NextBool(0.3);
      int id = issued;
      r.on_complete = [&, id](sim::Tick) {
        ++completions[id];
        ++completed;
        issue_some();
      };
      if (!dram.EnqueueRequest(r).ok()) break;
      ++issued;
    }
  };
  issue_some();
  ASSERT_TRUE(eq.RunUntilTrue([&] { return completed == kRequests; }))
      << "deadlock: " << completed << "/" << kRequests;
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(completions[i], 1) << "request " << i;
  }
  auto c = dram.TotalCounters();
  EXPECT_EQ(c.reads_served + c.writes_served,
            static_cast<uint64_t>(kRequests));
  EXPECT_EQ(c.row_hits + c.row_misses + c.row_conflicts,
            static_cast<uint64_t>(kRequests));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramLivenessProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Core + caches: every load completes exactly once under random mixes.

class CoreLivenessProperty : public ::testing::TestWithParam<uint64_t> {};

class RandomMixStream : public cpu::UopStream {
 public:
  RandomMixStream(uint64_t seed, uint64_t count) : rng_(seed), left_(count) {}
  bool Next(cpu::Uop* u) override {
    if (left_ == 0) return false;
    --left_;
    cpu::Uop uop;
    uint32_t kind = rng_.NextBounded(10);
    if (kind < 4) {
      uop.type = cpu::UopType::kLoad;
      uop.addr = rng_.NextBounded(1 << 20) & ~uint64_t{7};
    } else if (kind < 6) {
      uop.type = cpu::UopType::kStore;
      uop.addr = rng_.NextBounded(1 << 20) & ~uint64_t{7};
    } else if (kind < 8) {
      uop.type = cpu::UopType::kBranch;
      uop.taken = rng_.NextBool(0.5);
      uop.pc = 0x400 + rng_.NextBounded(4) * 8;
    } else {
      uop.type = cpu::UopType::kAlu;
      uop.dep_distance = static_cast<uint8_t>(rng_.NextBounded(3));
    }
    *u = uop;
    return true;
  }

 private:
  Rng rng_;
  uint64_t left_;
};

TEST_P(CoreLivenessProperty, RandomUopMixRetiresCompletely) {
  sim::EventQueue eq;
  dram::DramOrganization org;
  org.rows_per_bank = 512;
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous,
                        dram::ControllerConfig{});
  cpu::CacheConfig l1;
  l1.size_bytes = 8192;
  l1.ways = 2;
  l1.mshrs = 4;
  cpu::CacheHierarchy hier(&eq, sim::ClockDomain(1000), {l1}, &dram, 5000);
  cpu::CoreConfig cc;
  cc.rob_entries = 32;
  cc.issue_width = 2;
  cpu::Core core(&eq, cc, hier.top());

  const uint64_t kUops = 5000;
  RandomMixStream stream(GetParam(), kUops);
  bool done = false;
  ASSERT_TRUE(core.Run(&stream, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq.RunUntilTrue([&] { return done; })) << "core hung";
  EXPECT_EQ(core.stats().uops_retired, kUops);
  EXPECT_EQ(core.stats().loads + core.stats().stores +
                core.stats().branches,
            kUops - (kUops - core.stats().loads - core.stats().stores -
                     core.stats().branches));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreLivenessProperty,
                         ::testing::Values(7, 17, 27, 37, 47));

// ---------------------------------------------------------------------------
// Operator algebra properties on random data.

class OperatorAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorAlgebraProperty, SelectDecomposesOverConjunction) {
  Rng rng(GetParam());
  db::Column col = db::Column::Int64("c");
  for (int i = 0; i < 5000; ++i) col.Append(rng.NextInRange(0, 99));
  db::QueryContext ctx;
  // between(a, b) == refine(<=b, select(>=a)).
  int64_t a = rng.NextInRange(0, 50), b = rng.NextInRange(a, 99);
  auto direct = db::ScanSelect(&ctx, col, db::Pred::Between(a, b));
  auto staged = db::Refine(&ctx, col, db::Pred::Le(b),
                           db::ScanSelect(&ctx, col, db::Pred::Ge(a)));
  EXPECT_EQ(direct, staged);
  // Selectivity monotonicity: widening the range never loses positions.
  auto wider = db::ScanSelect(&ctx, col, db::Pred::Between(a, 99));
  EXPECT_GE(wider.size(), direct.size());
  EXPECT_EQ(db::IntersectSorted(direct, wider), direct);
  // Bitmap round trip.
  EXPECT_EQ(db::BitmapToPositions(db::PositionsToBitmap(direct, col.size())),
            direct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorAlgebraProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace ndp
