// Runtime x fault-injection composition: a device that fails permanently
// mid-run must neither lose nor double-count pages — its remaining work
// re-enters the surviving lanes' queues through the same transplant path work
// stealing uses, and every job still matches the CPU oracle.
#include <gtest/gtest.h>

#include <string>

#include "core/runtime.h"
#include "fault/injector.h"
#include "util/rng.h"

#ifdef NDP_FAULT_INJECT

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// Dooms `device`: every job hangs at dispatch, and the runtime's per-lane
/// driver gets a single-attempt retry budget, so the first lease on that lane
/// is a permanent failure. A short watchdog keeps the test fast.
RuntimeConfig DoomedLaneConfig() {
  RuntimeConfig cfg;
  cfg.driver.retry.max_attempts = 1;
  cfg.driver.watchdog_base_ps = 5'000'000;  // 5 us
  return cfg;
}

TEST(RuntimeFaultsTest, FailedLanePagesAreReassignedNotLostNotDoubled) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  fault::FaultPlan plan;
  plan.hang_per_job = 1.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(1).set_fault_injector(&injector);  // only device 1 is doomed

  NdpRuntime runtime(&array, DoomedLaneConfig());
  db::Column col = RandomColumn(60'000, 81);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  auto s1 = runtime.SubmitSelect(placed, 0, 333'333).ValueOrDie();
  auto s2 = runtime.SubmitSelect(placed, 666'666, 999'999).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());

  EXPECT_EQ(runtime.lanes_alive(), 3u);
  EXPECT_GT(array.stats().ReadValue("array.runtime.lane_failures"), 0.0);
  EXPECT_GT(array.stats().ReadValue("array.runtime.chunks_reassigned"), 0.0);

  const JobResult* r1 = runtime.result(s1);
  const JobResult* r2 = runtime.result(s2);
  ASSERT_TRUE(r1 && r2);
  ASSERT_TRUE(r1->status.ok()) << r1->status.ToString();
  ASSERT_TRUE(r2->status.ok()) << r2->status.ToString();
  // Exact-bitmap comparison: a lost page would clear bits, a double-counted
  // page could not survive this check either way.
  EXPECT_EQ(r1->matches, Oracle(col, 0, 333'333));
  EXPECT_EQ(r2->matches, Oracle(col, 666'666, 999'999));
  uint64_t popcount = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    bool expect = col[i] >= 0 && col[i] <= 333'333;
    ASSERT_EQ(r1->bitmap.Get(i), expect) << "row " << i;
    popcount += expect;
  }
  EXPECT_EQ(popcount, r1->matches);
}

TEST(RuntimeFaultsTest, FailureMidStealComposesWithReassignment) {
  // Skewed placement forces steals onto the doomed lane: device 1 goes down
  // while (or after) it receives transplanted pages, which must bounce to a
  // surviving lane rather than vanish.
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  fault::FaultPlan plan;
  plan.hang_per_job = 1.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(1).set_fault_injector(&injector);

  NdpRuntime runtime(&array, DoomedLaneConfig());
  db::Column col = RandomColumn(1u << 17, 82);
  PlacedColumn placed =
      array.PlaceColumn(col, {6.0, 1.0, 1.0, 1.0}).ValueOrDie();
  auto id = runtime.SubmitSelect(placed, 100'000, 900'000).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());

  const JobResult* r = runtime.result(id);
  ASSERT_TRUE(r != nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->matches, Oracle(col, 100'000, 900'000));
  EXPECT_EQ(runtime.lanes_alive(), 3u);
}

TEST(RuntimeFaultsTest, AllLanesFailedFailsJobsCleanly) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  fault::FaultPlan plan;
  plan.hang_per_job = 1.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(0).set_fault_injector(&injector);

  NdpRuntime runtime(&array, DoomedLaneConfig());
  db::Column col = RandomColumn(8'192, 83);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  auto id = runtime.SubmitSelect(placed, 0, 1).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());
  const JobResult* r = runtime.result(id);
  ASSERT_TRUE(r != nullptr);
  EXPECT_FALSE(r->status.ok());
  EXPECT_EQ(runtime.lanes_alive(), 0u);
  // A fresh submission is rejected up front rather than hanging.
  EXPECT_EQ(runtime.SubmitSelect(placed, 0, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ndp::core

#else  // !NDP_FAULT_INJECT

namespace ndp::core {
TEST(RuntimeFaultsTest, SkippedWithoutFaultInjectionHook) {
  GTEST_SKIP() << "built with NDP_FAULT_INJECT=OFF (tools/check.sh runs the "
                  "ON configuration)";
}
}  // namespace ndp::core

#endif  // NDP_FAULT_INJECT
