// End-to-end integration tests pinning the paper's quantitative claims at
// reduced scale (full-scale numbers are produced by the bench harnesses and
// recorded in EXPERIMENTS.md). These are the regression guards for the
// reproduction's shape criteria.
#include <gtest/gtest.h>

#include "core/api.h"
#include "util/rng.h"

namespace ndp {
namespace {

db::Column UniformColumn(size_t n, uint64_t seed = 20150601) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

/// Figure 3 at 1/16 scale: speedup in the paper's band and monotone in
/// selectivity up to a small tolerance.
TEST(PaperClaimsTest, Figure3SpeedupShape) {
  db::Column col = UniformColumn(256 * 1024);
  std::vector<double> speedups;
  for (uint64_t pct : {0ull, 25ull, 50ull, 75ull, 100ull}) {
    core::SystemModel sys(core::PlatformConfig::Gem5());
    int64_t hi = static_cast<int64_t>(pct * 10000) - 1;
    auto cpu = sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
                   .ValueOrDie();
    auto jaf = sys.RunJafarSelect(col, 0, hi).ValueOrDie();
    ASSERT_EQ(cpu.matches, jaf.matches) << pct;
    speedups.push_back(static_cast<double>(cpu.duration_ps) /
                       static_cast<double>(jaf.duration_ps));
  }
  // Paper: ~5x at 0% rising to ~9x at 100%. Bands per DESIGN.md: [4, 11],
  // end-to-end ratio 1.8 +/- 0.5, monotone non-decreasing within 5%.
  for (double s : speedups) {
    EXPECT_GE(s, 4.0);
    EXPECT_LE(s, 11.0);
  }
  double ratio = speedups.back() / speedups.front();
  EXPECT_GE(ratio, 1.3);
  EXPECT_LE(ratio, 2.3);
  for (size_t i = 1; i < speedups.size(); ++i) {
    EXPECT_GE(speedups[i], speedups[i - 1] * 0.95)
        << "speedup dipped between points " << i - 1 << " and " << i;
  }
}

/// §3.1: the vast majority of a JAFAR run is inside the accelerated region
/// (paper reports 93%).
TEST(PaperClaimsTest, AcceleratedRegionDominates) {
  db::Column col = UniformColumn(128 * 1024);
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  double accel_frac = static_cast<double>(jaf.stats.total_busy_ps) /
                      static_cast<double>(jaf.duration_ps);
  EXPECT_GT(accel_frac, 0.85);
  EXPECT_LE(accel_frac, 1.0);
}

/// §2.2: JAFAR processes 8 words in 4 ns and waits ~9 of 13 ns per access —
/// the device is wait-dominated, leaving headroom for richer operators.
TEST(PaperClaimsTest, WaitFractionLeavesHeadroom) {
  db::Column col = UniformColumn(64 * 1024);
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  EXPECT_GT(jaf.stats.WaitFraction(), 0.55);
  EXPECT_LT(jaf.stats.WaitFraction(), 0.85);
}

/// §3.3 estimator arithmetic on the paper's own headline numbers.
TEST(PaperClaimsTest, IdlePeriodCorollary) {
  core::IdleProfile p;
  p.total_bus_cycles = 1000000;
  p.reads = 1500;
  p.writes = 500;
  p.rc_busy_cycles = 0;
  p.wc_busy_cycles = 0;
  EXPECT_DOUBLE_EQ(p.EstimatedMeanIdleCycles(), 500.0);
  // 500 cycles -> 125 blocks of 32 B -> 4 kB, the paper's number.
  EXPECT_DOUBLE_EQ(p.BytesPerIdlePeriodPaperAccounting() / 1024.0, 500.0 / 4 *
                                                                       32 /
                                                                       1024);
  EXPECT_NEAR(p.BytesPerIdlePeriodPaperAccounting(), 4000.0, 1.0);
}

/// The Figure 3 mechanism (§3.2): CPU time grows ~linearly with selectivity,
/// JAFAR time is constant.
TEST(PaperClaimsTest, CpuCostLinearInSelectivityJafarConstant) {
  db::Column col = UniformColumn(128 * 1024);
  std::vector<double> cpu_ms, jaf_ms;
  for (uint64_t pct : {0ull, 50ull, 100ull}) {
    core::SystemModel sys(core::PlatformConfig::Gem5());
    int64_t hi = static_cast<int64_t>(pct * 10000) - 1;
    cpu_ms.push_back(static_cast<double>(
        sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
            .ValueOrDie()
            .duration_ps));
    jaf_ms.push_back(
        static_cast<double>(sys.RunJafarSelect(col, 0, hi).ValueOrDie()
                                .duration_ps));
  }
  // CPU: mid-point within 15% of the linear interpolation of the endpoints.
  double interp = (cpu_ms[0] + cpu_ms[2]) / 2;
  EXPECT_NEAR(cpu_ms[1] / interp, 1.0, 0.15);
  EXPECT_GT(cpu_ms[2], cpu_ms[0] * 1.3);
  // JAFAR: endpoints within 2%.
  EXPECT_NEAR(jaf_ms[2] / jaf_ms[0], 1.0, 0.02);
}

/// TPC-H queries produce identical results with and without JAFAR pushdown —
/// the co-design is semantically transparent.
TEST(PaperClaimsTest, PushdownPreservesQueryResults) {
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = 0.002;
  db::tpch::Generate(cfg, &catalog);
  core::SystemModel sys(core::PlatformConfig::Gem5());
  for (int q : {1, 3, 6, 18, 22}) {
    db::QueryContext plain;
    db::QueryContext pushed;
    pushed.ndp_select = sys.MakePushdownHook();
    int64_t a = db::tpch::RunQueryByNumber(&plain, &catalog, q).ValueOrDie();
    int64_t b = db::tpch::RunQueryByNumber(&pushed, &catalog, q).ValueOrDie();
    EXPECT_EQ(a, b) << "Q" << q;
  }
}

}  // namespace
}  // namespace ndp
