// SweepPool regression tests: ParallelSweep's workers are hoisted into a
// process-wide persistent pool, so running many sweeps must not re-spawn a
// thread per sweep (the churn the pool was built to eliminate). The check is
// deterministic — it counts lifetime spawns through the pool's own counter,
// not wall-clock variance.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "bench/parallel_sweep.h"

namespace ndp::bench {
namespace {

// The pool is process-global and other suites may have warmed it already, so
// every assertion here is a delta on the lifetime spawn counter, never an
// absolute count.

TEST(SweepPoolTest, ManySweepsSpawnWorkersAtMostOnce) {
  // Warm the pool to (at least) its 4-thread shape (3 workers + the caller),
  // then pin the spawn counter: 30 more sweeps at the same width must not
  // create a single new thread.
  auto square = [](size_t i) { return i * i; };
  uint64_t before = SweepPool::Instance().threads_spawned();
  ParallelSweep<size_t>(16, square, /*num_threads=*/4);
  uint64_t spawned = SweepPool::Instance().threads_spawned();
  EXPECT_LE(spawned - before, 3u);
  for (int round = 0; round < 30; ++round) {
    std::vector<size_t> out = ParallelSweep<size_t>(16, square, 4);
    for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
  }
  EXPECT_EQ(SweepPool::Instance().threads_spawned(), spawned)
      << "running more sweeps re-spawned workers (thread churn)";
}

TEST(SweepPoolTest, PoolGrowsMonotonicallyToTheWidestSweep) {
  auto identity = [](size_t i) { return i; };
  uint64_t before = SweepPool::Instance().threads_spawned();
  ParallelSweep<size_t>(8, identity, /*num_threads=*/2);
  uint64_t after_narrow = SweepPool::Instance().threads_spawned();
  EXPECT_LE(after_narrow - before, 1u);
  ParallelSweep<size_t>(8, identity, /*num_threads=*/6);
  uint64_t after_wide = SweepPool::Instance().threads_spawned();
  // Widening spawns only the missing workers; repeats (wide or narrow) none.
  EXPECT_LE(after_wide - before, 5u);
  EXPECT_GE(after_wide, after_narrow);
  ParallelSweep<size_t>(8, identity, /*num_threads=*/6);
  ParallelSweep<size_t>(8, identity, /*num_threads=*/2);
  EXPECT_EQ(SweepPool::Instance().threads_spawned(), after_wide);
}

TEST(SweepPoolTest, ResultsAreInPointOrderRegardlessOfClaimOrder) {
  const size_t n = 257;  // not a multiple of any worker count
  std::vector<size_t> out =
      ParallelSweep<size_t>(n, [](size_t i) { return i * 3 + 1; }, 5);
  ASSERT_EQ(out.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(SweepPoolTest, NestedSweepRunsInlineWithoutDeadlock) {
  // A sweep point that itself sweeps must not wait on the pool it occupies:
  // the inner call detects the nesting and runs serially inline.
  std::vector<uint64_t> out = ParallelSweep<uint64_t>(
      6,
      [](size_t i) {
        std::vector<uint64_t> inner = ParallelSweep<uint64_t>(
            4, [i](size_t j) { return static_cast<uint64_t>(i * 10 + j); },
            /*num_threads=*/4);
        return std::accumulate(inner.begin(), inner.end(), uint64_t{0});
      },
      /*num_threads=*/3);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 4 * static_cast<uint64_t>(i) * 10 + 0 + 1 + 2 + 3);
  }
}

TEST(SweepPoolTest, SerialPathBypassesThePool) {
  uint64_t before = SweepPool::Instance().threads_spawned();
  std::vector<int> out =
      ParallelSweep<int>(5, [](size_t i) { return static_cast<int>(i); },
                         /*num_threads=*/1);
  EXPECT_EQ(SweepPool::Instance().threads_spawned(), before);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
}

}  // namespace
}  // namespace ndp::bench
