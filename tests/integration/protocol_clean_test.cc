// End-to-end protocol audit: with the NDP_PROTOCOL_CHECK hook compiled in,
// the command streams of the paper's two headline experiments — the Figure 3
// CPU-vs-JAFAR select pipeline and the Figure 4 TPC-H trace replay — must be
// JEDEC-legal: zero violations recorded by any channel's shadow checker.
//
// In builds without the hook (the default for optimized build types) these
// tests skip; tools/check.sh runs a -DNDP_PROTOCOL_CHECK=ON configuration so
// the audit always happens in the full lane.
#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "core/api.h"
#include "gtest/gtest.h"

namespace ndp {
namespace {

#ifdef NDP_PROTOCOL_CHECK

/// Switches every channel of `sys` to record mode (so a violation produces a
/// readable report instead of an abort) — call before running anything.
void RecordViolations(core::SystemModel& sys) {
  for (uint32_t c = 0; c < sys.dram().num_channels(); ++c) {
    sys.dram().channel(c).protocol_checker().set_fail_fast(false);
  }
}

/// Asserts every channel observed traffic-proportional commands and recorded
/// zero violations, printing the full report on failure.
void ExpectClean(core::SystemModel& sys) {
  uint64_t observed = 0;
  for (uint32_t c = 0; c < sys.dram().num_channels(); ++c) {
    const dram::ProtocolChecker& checker =
        sys.dram().channel(c).protocol_checker();
    observed += checker.commands_observed();
    EXPECT_TRUE(checker.violations().empty())
        << "channel " << c << ":\n" << checker.Report();
  }
  EXPECT_GT(observed, 0u) << "checker hook saw no commands — not attached?";
  EXPECT_EQ(sys.dram().TotalProtocolViolations(), 0u);
}

TEST(ProtocolCleanTest, Fig3SelectPipelineIsCommandLegal) {
  db::Column col = bench::UniformColumn(32 * 1024);
  core::SystemModel sys(core::PlatformConfig::Gem5());
  RecordViolations(sys);
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  EXPECT_EQ(cpu.matches, jaf.matches);
  ExpectClean(sys);
}

TEST(ProtocolCleanTest, Fig4TpchTraceReplayIsCommandLegal) {
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = 0.002;
  db::tpch::Generate(cfg, &catalog);
  for (int q : {1, 6}) {
    db::TraceRecorder trace(/*sample=*/4, /*compute_scale=*/24);
    db::QueryContext ctx;
    ctx.trace = &trace;
    ASSERT_TRUE(db::tpch::RunQueryByNumber(&ctx, &catalog, q).ok());
    core::SystemModel sys(core::PlatformConfig::Xeon());
    RecordViolations(sys);
    core::IdlePeriodProfiler profiler(&sys);
    ASSERT_TRUE(
        profiler.Profile("Q" + std::to_string(q), trace.events()).ok());
    ExpectClean(sys);
  }
}

#else  // !NDP_PROTOCOL_CHECK

TEST(ProtocolCleanTest, SkippedWithoutProtocolCheckHook) {
  GTEST_SKIP() << "built with NDP_PROTOCOL_CHECK=OFF; the checker hook is "
                  "compiled out (tools/check.sh runs the ON configuration)";
}

#endif  // NDP_PROTOCOL_CHECK

}  // namespace
}  // namespace ndp
