// Device-generation tests (NDP_DEVICE_GEN, DatapathModel v1/v2).
//
//   * Equivalence: the v2 bank-level datapath must be functionally identical
//     to the v1 rank-IO datapath — same match count and byte-identical result
//     bitmap — and both must agree with a scalar CPU oracle. Timing may (and
//     should) differ; answers may not.
//   * Strict config parsing: NDP_DEVICE_GEN accepts exactly the published
//     generation names; a typo is an error listing them, never a silent
//     fallback.
//   * Determinism: for BOTH generations, a partitioned run's full stats dump
//     plus final simulated time is byte-identical for NDP_SIM_THREADS in
//     {1, 4}. The v2 command flow (ARM/DISARM, accumulator drains on the
//     per-rank result bus) adds cross-partition traffic that must stay on
//     the conservative-barrier rails like everything else.
//   * Violation injection: the ProtocolChecker's v2 filter-flow rules
//     (kBankArm, kDrainTooEarly, kResultBus, kRefreshArmed) each get a
//     deliberate protocol error asserting the checker flags exactly that
//     rule, plus a legal ARM..drain..DISARM sequence asserting silence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/dimm_array.h"
#include "dram/command.h"
#include "dram/protocol_checker.h"
#include "dram/timing.h"
#include "jafar/generation.h"
#include "util/rng.h"

namespace ndp {
namespace {

/// RAII env override; restores the previous value (or unset state) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

db::Column RandomColumn(size_t n, uint64_t seed) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

/// Derives the device config for `gen` against the organization DimmArray
/// builds internally (default banks/row size, the given rows_per_bank).
jafar::DeviceConfig ConfigFor(jafar::DeviceGeneration gen,
                              uint32_t rows_per_bank) {
  const dram::DramTiming timing = dram::DramTiming::DDR3_1600();
  if (gen == jafar::DeviceGeneration::kV2BankLevel) {
    dram::DramOrganization org;
    org.rows_per_bank = rows_per_bank;
    return jafar::DeviceConfig::DeriveBank(timing, org,
                                           accel::DatapathResources{})
        .ValueOrDie();
  }
  return jafar::DeviceConfig::Derive(timing, accel::DatapathResources{})
      .ValueOrDie();
}

core::DimmArray MakeArray(jafar::DeviceGeneration gen, uint32_t channels,
                          bool partitioned) {
  constexpr uint32_t kRowsPerBank = 8192;
  return core::DimmArray(dram::DramTiming::DDR3_1600(), channels,
                         /*ranks_per_channel=*/1, ConfigFor(gen, kRowsPerBank),
                         kRowsPerBank, partitioned);
}

// -- Generation equivalence ---------------------------------------------------

TEST(DevGenEquivalenceTest, V2BitmapAndMatchesIdenticalToV1) {
  db::Column col = RandomColumn(80'000, 41);
  const uint64_t oracle = Oracle(col, 150'000, 800'000);
  auto run = [&](jafar::DeviceGeneration gen) {
    core::DimmArray array = MakeArray(gen, 2, /*partitioned=*/false);
    array.AcquireAllOwnership();
    array.LoadPartitioned(col);
    return array.RunParallelSelect(150'000, 800'000).ValueOrDie();
  };
  core::DimmArray::ParallelResult v1 =
      run(jafar::DeviceGeneration::kV1RankIo);
  core::DimmArray::ParallelResult v2 =
      run(jafar::DeviceGeneration::kV2BankLevel);
  EXPECT_EQ(v1.matches, oracle);
  EXPECT_EQ(v2.matches, oracle);
  ASSERT_EQ(v1.bitmap.size(), v2.bitmap.size());
  for (uint64_t w = 0; w < (col.size() + 63) / 64; ++w) {
    ASSERT_EQ(v1.bitmap.Word(w), v2.bitmap.Word(w)) << "word " << w;
  }
}

TEST(DevGenEquivalenceTest, SystemModelAgreesWithCpuForBothGenerations) {
  db::Column col = RandomColumn(48'000, 43);
  for (jafar::DeviceGeneration gen : {jafar::DeviceGeneration::kV1RankIo,
                                      jafar::DeviceGeneration::kV2BankLevel}) {
    core::PlatformConfig plat = core::PlatformConfig::Gem5();
    plat.device_gen = gen;
    core::SystemModel sys(plat);
    auto cpu = sys.RunCpuSelect(col, 0, 420'000, db::SelectMode::kBranching)
                   .ValueOrDie();
    auto jaf = sys.RunJafarSelect(col, 0, 420'000).ValueOrDie();
    EXPECT_EQ(jaf.matches, cpu.matches)
        << jafar::DeviceGenerationToString(gen);
    EXPECT_EQ(jaf.matches, Oracle(col, 0, 420'000));
  }
}

// -- Strict NDP_DEVICE_GEN parsing --------------------------------------------

TEST(DevGenConfigTest, EnvAcceptsPublishedNamesOnly) {
  {
    ScopedEnv env("NDP_DEVICE_GEN", "v1_rank_io");
    auto gen = jafar::DeviceGenerationFromEnv(
        jafar::DeviceGeneration::kV2BankLevel);
    ASSERT_TRUE(gen.ok());
    EXPECT_EQ(gen.value(), jafar::DeviceGeneration::kV1RankIo);
  }
  {
    ScopedEnv env("NDP_DEVICE_GEN", "v2_bank_level");
    auto gen =
        jafar::DeviceGenerationFromEnv(jafar::DeviceGeneration::kV1RankIo);
    ASSERT_TRUE(gen.ok());
    EXPECT_EQ(gen.value(), jafar::DeviceGeneration::kV2BankLevel);
  }
}

TEST(DevGenConfigTest, UnknownNameFailsListingValidOnes) {
  ScopedEnv env("NDP_DEVICE_GEN", "v3_vault_level");
  auto gen =
      jafar::DeviceGenerationFromEnv(jafar::DeviceGeneration::kV1RankIo);
  ASSERT_FALSE(gen.ok());
  // The error must name the valid generations — a typo'd knob that silently
  // fell back would invalidate a whole sweep.
  EXPECT_NE(gen.status().ToString().find("v1_rank_io"), std::string::npos);
  EXPECT_NE(gen.status().ToString().find("v2_bank_level"), std::string::npos);
}

TEST(DevGenConfigTest, V2ConfigDerivesValidFilterTiming) {
  dram::DramOrganization org;
  jafar::DeviceConfig cfg = ConfigFor(jafar::DeviceGeneration::kV2BankLevel,
                                      org.rows_per_bank);
  EXPECT_TRUE(cfg.bank_filter.valid());
  EXPECT_GT(cfg.bank_words_per_cycle, 0.0);
  EXPECT_GT(cfg.bank_energy_per_word_fj, 0.0);
  // One invocation must cover a whole wave (one row in every bank) or the
  // bank parallelism the generation exists for can never materialize.
  EXPECT_EQ(cfg.scan_chunk_bytes,
            static_cast<uint64_t>(org.banks_per_rank) * org.row_size_bytes);
}

// -- Thread-count invariance, both generations --------------------------------

/// Partitioned 4-channel run for one generation; returns the full registry
/// dump plus the final simulated time.
std::string RunPartitionedWorkload(jafar::DeviceGeneration gen) {
  core::DimmArray array = MakeArray(gen, 4, /*partitioned=*/true);
  array.AcquireAllOwnership();
  db::Column col = RandomColumn(64'000, 47);
  array.LoadPartitioned(col);
  auto result = array.RunParallelSelect(200'000, 900'000).ValueOrDie();
  EXPECT_EQ(result.matches, Oracle(col, 200'000, 900'000));
  return array.stats().Snapshot().ToText() + "\nnow=" +
         std::to_string(array.eq().Now());
}

class DevGenDeterminismTest
    : public ::testing::TestWithParam<jafar::DeviceGeneration> {};

TEST_P(DevGenDeterminismTest, DumpIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> dumps;
  for (const char* threads : {"1", "4"}) {
    ScopedEnv env("NDP_SIM_THREADS", threads);
    dumps.push_back(RunPartitionedWorkload(GetParam()));
  }
  EXPECT_EQ(dumps[0], dumps[1]) << "NDP_SIM_THREADS=4 diverged for "
                                << jafar::DeviceGenerationToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    BothGenerations, DevGenDeterminismTest,
    ::testing::Values(jafar::DeviceGeneration::kV1RankIo,
                      jafar::DeviceGeneration::kV2BankLevel),
    [](const ::testing::TestParamInfo<jafar::DeviceGeneration>& param) {
      return std::string(jafar::DeviceGenerationToString(param.param));
    });

// -- ProtocolChecker violation injection (v2 filter-flow rules) ---------------

/// Standalone checker with the v2 filter timing installed on rank 0. Command
/// times are chosen so the JEDEC windows (tRCD=11, tRAS=28, tRTP=6) are
/// honoured and only the filter rule under test trips.
class FilterCheckerTest : public ::testing::Test {
 protected:
  void Init(uint32_t fill_latency, uint32_t min_rd_spacing,
            uint32_t drain_cycles) {
    filter_.fill_latency_cycles = fill_latency;
    filter_.min_rd_spacing_cycles = min_rd_spacing;
    filter_.drain_cycles = drain_cycles;
    checker_.Configure(&timing_, &org_);
    checker_.set_bank_filter_timing(0, &filter_);
  }

  sim::Tick C(uint64_t cycles) const { return cycles * timing_.tck_ps; }

  void Arm(uint64_t cycle, uint32_t bank) {
    checker_.Observe(dram::Command{dram::CommandType::kBankArm, 0, bank},
                     C(cycle));
  }
  void Disarm(uint64_t cycle, uint32_t bank) {
    checker_.Observe(dram::Command{dram::CommandType::kBankDisarm, 0, bank},
                     C(cycle));
  }
  void Act(uint64_t cycle, uint32_t bank, uint32_t row = 0) {
    checker_.Observe(dram::Command{dram::CommandType::kActivate, 0, bank, row},
                     C(cycle));
  }
  void Rd(uint64_t cycle, uint32_t bank, uint32_t row = 0) {
    checker_.Observe(dram::Command{dram::CommandType::kRead, 0, bank, row},
                     C(cycle));
  }
  void Pre(uint64_t cycle, uint32_t bank) {
    checker_.Observe(dram::Command{dram::CommandType::kPrecharge, 0, bank},
                     C(cycle));
  }
  void Ref(uint64_t cycle) {
    checker_.Observe(dram::Command{dram::CommandType::kRefresh, 0}, C(cycle));
  }

  void ExpectOnly(dram::TimingRule rule) {
    ASSERT_EQ(checker_.violations().size(), 1u) << checker_.Report();
    EXPECT_EQ(checker_.violations()[0].rule, rule) << checker_.Report();
  }

  dram::DramTiming timing_ = dram::DramTiming::DDR3_1600();
  dram::DramOrganization org_;
  dram::BankFilterTiming filter_;
  dram::ProtocolChecker checker_;
};

TEST_F(FilterCheckerTest, LegalFilterFlowStaysSilent) {
  Init(/*fill=*/8, /*spacing=*/8, /*drain=*/16);
  Arm(0, 0);
  Act(2, 0);
  Rd(13, 0);   // >= ACT + tRCD(11)
  Rd(21, 0);   // >= previous filter RD + spacing(8)
  Pre(40, 0);  // >= ACT + tRAS(28=30), >= RD + tRTP, >= fill_ready(29): drains
  Disarm(60, 0);
  EXPECT_EQ(checker_.violations().size(), 0u) << checker_.Report();
}

TEST_F(FilterCheckerTest, ArmWithoutFilterTimingFlagged) {
  // No set_bank_filter_timing: the rank has no comparator timing installed,
  // so ARM itself is the violation.
  checker_.Configure(&timing_, &org_);
  Arm(0, 0);
  ExpectOnly(dram::TimingRule::kBankArm);
}

TEST_F(FilterCheckerTest, DoubleArmFlagged) {
  Init(8, 8, 16);
  Arm(0, 0);
  Arm(4, 0);
  ExpectOnly(dram::TimingRule::kBankArm);
}

TEST_F(FilterCheckerTest, DisarmOfUnarmedBankFlagged) {
  Init(8, 8, 16);
  Disarm(0, 0);
  ExpectOnly(dram::TimingRule::kBankArm);
}

TEST_F(FilterCheckerTest, FilterReadFasterThanComparatorFlagged) {
  Init(/*fill=*/8, /*spacing=*/8, /*drain=*/16);
  Arm(0, 0);
  Act(2, 0);
  Rd(13, 0);
  Rd(17, 0);  // 4 < spacing(8): faster than the per-bank comparator drains it
  ExpectOnly(dram::TimingRule::kTccd);
}

TEST_F(FilterCheckerTest, DrainBeforeMatchBitsLatchedFlagged) {
  // Slow comparator: the last RD's match bits latch at 13 + 64 = cycle 77,
  // but the PRE lands at 41 — legal by every JEDEC window (tRAS ends at 30,
  // tRTP at 19), illegal only as an accumulator drain.
  Init(/*fill=*/64, /*spacing=*/8, /*drain=*/16);
  Arm(0, 0);
  Act(2, 0);
  Rd(13, 0);
  Pre(41, 0);
  ExpectOnly(dram::TimingRule::kDrainTooEarly);
}

TEST_F(FilterCheckerTest, OverlappingDrainsOnResultBusFlagged) {
  // Two armed banks drain back to back: bank 0's PRE at 33 occupies the
  // per-rank result bus until 33 + 16 = 49, so bank 1's PRE at 40 overlaps.
  Init(/*fill=*/4, /*spacing=*/8, /*drain=*/16);
  Arm(0, 0);
  Arm(1, 1);
  Act(2, 0);
  Act(10, 1);
  Rd(13, 0);
  Rd(21, 1);
  Pre(33, 0);
  Pre(40, 1);
  ExpectOnly(dram::TimingRule::kResultBus);
}

TEST_F(FilterCheckerTest, RefreshToRankWithArmedBankFlagged) {
  Init(8, 8, 16);
  Arm(0, 0);
  Ref(10);
  ExpectOnly(dram::TimingRule::kRefreshArmed);
}

TEST_F(FilterCheckerTest, FilterResetClearsShadowArmedState) {
  // A device job abort disarms the banks out of band; after the mirrored
  // NoteBankFilterReset a refresh is legal again and a fresh ARM is not a
  // double arm.
  Init(8, 8, 16);
  Arm(0, 0);
  checker_.NoteBankFilterReset(0);
  Ref(10);
  Arm(220, 0);  // after tRFC(208) from the REF
  EXPECT_EQ(checker_.violations().size(), 0u) << checker_.Report();
}

}  // namespace
}  // namespace ndp
