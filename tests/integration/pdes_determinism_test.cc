// Parallel-in-time determinism and equivalence tests.
//
//   * Oracle equivalence: a partitioned DimmArray (per-channel wheels +
//     conservative epoch barriers) must produce the same functional answers
//     (matches, bitmaps, aggregates) as the single-wheel oracle mode.
//   * Thread-count invariance: with partitioning fixed, the full stats dump
//     (including sim.part<k>.* counters and final simulated time) must be
//     byte-identical for NDP_SIM_THREADS in {1, 2, 4, 8} — on the Figure 3
//     pipeline, on an abl_runtime-style multi-query run under host traffic,
//     and on a faulted run with recovery in the loop.
//
// Every run builds fresh systems after setting the env var: NDP_SIM_THREADS
// is read once, at PartitionSet construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/api.h"
#include "core/host_traffic.h"
#include "core/runtime.h"
#include "fault/injector.h"
#include "util/rng.h"

namespace ndp {
namespace {

const std::vector<const char*> kThreadCounts = {"1", "2", "4", "8"};

/// RAII env override; restores the previous value (or unset state) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

db::Column RandomColumn(size_t n, uint64_t seed) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

core::DimmArray MakeArray(uint32_t channels, bool partitioned) {
  return core::DimmArray(dram::DramTiming::DDR3_1600(), channels,
                         /*ranks_per_channel=*/1, Config(),
                         /*rows_per_bank=*/8192, partitioned);
}

// -- Oracle equivalence -------------------------------------------------------

TEST(PdesEquivalenceTest, ParallelSelectMatchesSingleWheelOracle) {
  db::Column col = RandomColumn(80'000, 17);
  uint64_t oracle = Oracle(col, 100'000, 700'000);
  auto run = [&](bool partitioned) {
    core::DimmArray array = MakeArray(4, partitioned);
    array.AcquireAllOwnership();
    array.LoadPartitioned(col);
    return array.RunParallelSelect(100'000, 700'000).ValueOrDie();
  };
  core::DimmArray::ParallelResult wheel = run(false);
  core::DimmArray::ParallelResult pdes = run(true);
  EXPECT_EQ(wheel.matches, oracle);
  EXPECT_EQ(pdes.matches, oracle);
  ASSERT_EQ(wheel.bitmap.size(), pdes.bitmap.size());
  for (uint64_t w = 0; w < (col.size() + 63) / 64; ++w) {
    ASSERT_EQ(wheel.bitmap.Word(w), pdes.bitmap.Word(w)) << "word " << w;
  }
}

TEST(PdesEquivalenceTest, RuntimeJobsMatchSingleWheelOracle) {
  db::Column col = RandomColumn(60'000, 23);
  uint64_t oracle = Oracle(col, 0, 450'000);
  auto run = [&](bool partitioned) {
    core::DimmArray array = MakeArray(2, partitioned);
    core::NdpRuntime runtime(&array, core::RuntimeConfig{});
    core::PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
    auto sel = runtime.SubmitSelect(placed, 0, 450'000).ValueOrDie();
    auto agg =
        runtime.SubmitAggregate(placed, jafar::AggKind::kSum).ValueOrDie();
    EXPECT_TRUE(runtime.WaitFor(sel).ok());
    EXPECT_TRUE(runtime.WaitFor(agg).ok());
    return std::make_pair(runtime.result(sel)->matches,
                          runtime.result(agg)->agg_value);
  };
  auto [wheel_matches, wheel_sum] = run(false);
  auto [pdes_matches, pdes_sum] = run(true);
  EXPECT_EQ(wheel_matches, oracle);
  EXPECT_EQ(pdes_matches, oracle);
  EXPECT_EQ(wheel_sum, pdes_sum);
}

// -- Thread-count invariance --------------------------------------------------

/// Figure 3 pipeline (SystemModel, single global wheel): the thread knob must
/// not perturb it at all.
std::string RunFig3Pipeline() {
  db::Column col = bench::UniformColumn(32 * 1024);
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  return std::to_string(cpu.duration_ps) + "/" +
         std::to_string(jaf.duration_ps) + "/" + std::to_string(jaf.matches) +
         "\n" + sys.DumpStats();
}

/// abl_runtime-style partitioned run: a 4-channel array, concurrent select +
/// aggregate jobs, host traffic on channel 0. Returns the full registry dump
/// (which includes sim.epochs and every sim.part<k>.* counter) plus the
/// final simulated time.
std::string RunPartitionedRuntimeWorkload() {
  core::DimmArray array = MakeArray(4, /*partitioned=*/true);
  core::NdpRuntime runtime(&array, core::RuntimeConfig{});
  db::Column col = RandomColumn(64'000, 31);
  core::PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  uint64_t region = array.AllocOnDevice(0, 1u << 18).ValueOrDie();
  core::HostTrafficConfig tc;
  tc.reqs_per_us = 40.0;
  tc.seed = 9;
  // The generator's arrival process lives on channel 0's wheel, next to the
  // controller it drives.
  core::HostTrafficGen traffic(&array.partitions()->queue(0),
                               &array.dram().controller(0), tc);
  traffic.AddRegion(region, 1u << 18);
  traffic.Start();
  auto s1 = runtime.SubmitSelect(placed, 0, 333'333).ValueOrDie();
  auto s2 =
      runtime.SubmitAggregate(placed, jafar::AggKind::kMax).ValueOrDie();
  EXPECT_TRUE(runtime.WaitFor(s1).ok());
  EXPECT_TRUE(runtime.WaitFor(s2).ok());
  traffic.Stop();
  EXPECT_EQ(runtime.result(s1)->matches, Oracle(col, 0, 333'333));
  return array.stats().Snapshot().ToText() + "\nnow=" +
         std::to_string(array.eq().Now());
}

TEST(PdesDeterminismTest, Fig3DumpIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> dumps;
  for (const char* threads : kThreadCounts) {
    ScopedEnv env("NDP_SIM_THREADS", threads);
    dumps.push_back(RunFig3Pipeline());
  }
  for (size_t i = 1; i < dumps.size(); ++i) {
    EXPECT_EQ(dumps[0], dumps[i]) << "NDP_SIM_THREADS=" << kThreadCounts[i];
  }
}

TEST(PdesDeterminismTest, PartitionedRuntimeDumpIsByteIdentical) {
  std::vector<std::string> dumps;
  for (const char* threads : kThreadCounts) {
    ScopedEnv env("NDP_SIM_THREADS", threads);
    dumps.push_back(RunPartitionedRuntimeWorkload());
  }
  EXPECT_NE(dumps[0].find("sim.epochs"), std::string::npos);
  EXPECT_NE(dumps[0].find("sim.part0.events"), std::string::npos);
  EXPECT_NE(dumps[0].find("sim.part4.events"), std::string::npos);
  for (size_t i = 1; i < dumps.size(); ++i) {
    EXPECT_EQ(dumps[0], dumps[i]) << "NDP_SIM_THREADS=" << kThreadCounts[i];
  }
}

#ifdef NDP_FAULT_INJECT

/// Faulted partitioned run: one device (on channel 1) draws hangs, stalls,
/// corruptions, and ECC flips from a seeded injector; the driver's recovery
/// machinery (watchdog, retries, writeback checksums) is in the loop. One
/// injector on one device keeps every fault draw on a single partition, so
/// the draw sequence is a pure function of that partition's schedule.
std::string RunFaultedPartitionedWorkload() {
  core::DimmArray array = MakeArray(4, /*partitioned=*/true);
  fault::FaultPlan plan;
  plan.seed = 1001;
  plan.hang_per_job = 0.1;
  plan.stall_per_burst = 0.002;
  plan.corrupt_per_flush = 0.1;
  plan.ecc_ce_per_burst = 0.01;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(1).set_fault_injector(&injector);

  core::NdpRuntime runtime(&array, core::RuntimeConfig{});
  db::Column col = RandomColumn(48'000, 37);
  core::PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  auto id = runtime.SubmitSelect(placed, 0, 500'000).ValueOrDie();
  EXPECT_TRUE(runtime.WaitFor(id).ok());
  EXPECT_EQ(runtime.result(id)->matches, Oracle(col, 0, 500'000));
  return array.stats().Snapshot().ToText() + "\nnow=" +
         std::to_string(array.eq().Now());
}

TEST(PdesDeterminismTest, FaultedPartitionedDumpIsByteIdentical) {
  std::vector<std::string> dumps;
  for (const char* threads : kThreadCounts) {
    ScopedEnv env("NDP_SIM_THREADS", threads);
    dumps.push_back(RunFaultedPartitionedWorkload());
  }
  EXPECT_NE(dumps[0].find("fault."), std::string::npos);
  for (size_t i = 1; i < dumps.size(); ++i) {
    EXPECT_EQ(dumps[0], dumps[i]) << "NDP_SIM_THREADS=" << kThreadCounts[i];
  }
}

#endif  // NDP_FAULT_INJECT

}  // namespace
}  // namespace ndp
