// Determinism regression tests: the entire simulation stack must be a pure
// function of its inputs. Two fresh systems running the Figure 3 pipeline on
// the same column must agree bit for bit — durations, match counts, every
// component counter — and a ParallelSweep must produce identical results at
// any worker-thread count (the property that makes the parallel benches'
// output byte-identical across NDP_BENCH_THREADS settings).
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "core/api.h"
#include "gtest/gtest.h"

namespace ndp {
namespace {

struct PipelineResult {
  sim::Tick cpu_ps = 0;
  sim::Tick jafar_ps = 0;
  sim::Tick ownership_ps = 0;
  uint64_t cpu_matches = 0;
  uint64_t jafar_matches = 0;
  std::string stats_dump;
  std::string stats_json;

  bool operator==(const PipelineResult& o) const {
    return cpu_ps == o.cpu_ps && jafar_ps == o.jafar_ps &&
           ownership_ps == o.ownership_ps && cpu_matches == o.cpu_matches &&
           jafar_matches == o.jafar_matches && stats_dump == o.stats_dump &&
           stats_json == o.stats_json;
  }
};

PipelineResult RunPipeline(const db::Column& col, int64_t hi) {
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto cpu = sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, hi).ValueOrDie();
  PipelineResult r;
  r.cpu_ps = cpu.duration_ps;
  r.jafar_ps = jaf.duration_ps;
  r.ownership_ps = jaf.ownership_ps;
  r.cpu_matches = cpu.matches;
  r.jafar_matches = jaf.matches;
  r.stats_dump = sys.DumpStats();
  r.stats_json = sys.stats().DumpJson().Dump(/*indent=*/2);
  return r;
}

TEST(DeterminismTest, Fig3PipelineIsBitIdenticalAcrossRuns) {
  db::Column col = bench::UniformColumn(64 * 1024);
  PipelineResult first = RunPipeline(col, 499999);
  PipelineResult second = RunPipeline(col, 499999);
  EXPECT_EQ(first.cpu_ps, second.cpu_ps);
  EXPECT_EQ(first.jafar_ps, second.jafar_ps);
  EXPECT_EQ(first.ownership_ps, second.ownership_ps);
  EXPECT_EQ(first.cpu_matches, second.cpu_matches);
  EXPECT_EQ(first.jafar_matches, second.jafar_matches);
  // Full registry dump, byte for byte: every counter, gauge, and histogram
  // percentile of every component, in both text and JSON renderings.
  EXPECT_EQ(first.stats_dump, second.stats_dump);
  EXPECT_EQ(first.stats_json, second.stats_json);
  EXPECT_NE(first.stats_dump.find("system.dram.ctrl0.reads_served"),
            std::string::npos);
}

TEST(DeterminismTest, ParallelSweepIsThreadCountInvariant) {
  db::Column col = bench::UniformColumn(16 * 1024);
  const std::vector<int64_t> his = {-1, 99999, 499999, 899999, 999999};
  auto run_point = [&](size_t i) { return RunPipeline(col, his[i]); };
  std::vector<PipelineResult> serial =
      bench::ParallelSweep<PipelineResult>(his.size(), run_point,
                                           /*num_threads=*/1);
  std::vector<PipelineResult> parallel =
      bench::ParallelSweep<PipelineResult>(his.size(), run_point,
                                           /*num_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

}  // namespace
}  // namespace ndp
