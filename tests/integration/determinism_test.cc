// Determinism regression tests: the entire simulation stack must be a pure
// function of its inputs. Two fresh systems running the Figure 3 pipeline on
// the same column must agree bit for bit — durations, match counts, every
// component counter — and a ParallelSweep must produce identical results at
// any worker-thread count (the property that makes the parallel benches'
// output byte-identical across NDP_BENCH_THREADS settings).
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/parallel_sweep.h"
#include "core/api.h"
#include "gtest/gtest.h"

namespace ndp {
namespace {

struct PipelineResult {
  sim::Tick cpu_ps = 0;
  sim::Tick jafar_ps = 0;
  sim::Tick ownership_ps = 0;
  uint64_t cpu_matches = 0;
  uint64_t jafar_matches = 0;
  std::string stats_dump;
  std::string stats_json;

  bool operator==(const PipelineResult& o) const {
    return cpu_ps == o.cpu_ps && jafar_ps == o.jafar_ps &&
           ownership_ps == o.ownership_ps && cpu_matches == o.cpu_matches &&
           jafar_matches == o.jafar_matches && stats_dump == o.stats_dump &&
           stats_json == o.stats_json;
  }
};

PipelineResult RunPipeline(const db::Column& col, int64_t hi) {
  core::SystemModel sys(core::PlatformConfig::Gem5());
  auto cpu = sys.RunCpuSelect(col, 0, hi, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, hi).ValueOrDie();
  PipelineResult r;
  r.cpu_ps = cpu.duration_ps;
  r.jafar_ps = jaf.duration_ps;
  r.ownership_ps = jaf.ownership_ps;
  r.cpu_matches = cpu.matches;
  r.jafar_matches = jaf.matches;
  r.stats_dump = sys.DumpStats();
  r.stats_json = sys.stats().DumpJson().Dump(/*indent=*/2);
  return r;
}

TEST(DeterminismTest, Fig3PipelineIsBitIdenticalAcrossRuns) {
  db::Column col = bench::UniformColumn(64 * 1024);
  PipelineResult first = RunPipeline(col, 499999);
  PipelineResult second = RunPipeline(col, 499999);
  EXPECT_EQ(first.cpu_ps, second.cpu_ps);
  EXPECT_EQ(first.jafar_ps, second.jafar_ps);
  EXPECT_EQ(first.ownership_ps, second.ownership_ps);
  EXPECT_EQ(first.cpu_matches, second.cpu_matches);
  EXPECT_EQ(first.jafar_matches, second.jafar_matches);
  // Full registry dump, byte for byte: every counter, gauge, and histogram
  // percentile of every component, in both text and JSON renderings.
  EXPECT_EQ(first.stats_dump, second.stats_dump);
  EXPECT_EQ(first.stats_json, second.stats_json);
  EXPECT_NE(first.stats_dump.find("system.dram.ctrl0.reads_served"),
            std::string::npos);
}

#ifdef NDP_FAULT_INJECT

struct FaultedResult {
  uint64_t matches = 0;
  std::string stats_dump;
};

/// Runs a JAFAR select under an active fault campaign (hangs, mid-job stalls,
/// bitmap corruption, ECC flips) whose recovery stays inside the driver's
/// retry budget.
FaultedResult RunFaultedPipeline(const db::Column& col, uint64_t fault_seed) {
  core::PlatformConfig config = core::PlatformConfig::Gem5();
  config.fault_plan.seed = fault_seed;
  config.fault_plan.hang_per_job = 0.1;
  config.fault_plan.stall_per_burst = 0.002;
  config.fault_plan.corrupt_per_flush = 0.1;
  config.fault_plan.ecc_ce_per_burst = 0.01;
  core::SystemModel sys(config);
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  FaultedResult r;
  r.matches = jaf.matches;
  r.stats_dump = sys.DumpStats();
  return r;
}

TEST(DeterminismTest, SameFaultSeedIsByteIdentical) {
  db::Column col = bench::UniformColumn(32 * 1024);
  FaultedResult first = RunFaultedPipeline(col, 1001);
  FaultedResult second = RunFaultedPipeline(col, 1001);
  // Same plan, same workload: every injected fault, watchdog fire, retry,
  // and recovery latency lands on the same tick — the registry dumps match
  // byte for byte.
  EXPECT_EQ(first.matches, second.matches);
  EXPECT_EQ(first.stats_dump, second.stats_dump);
  EXPECT_NE(first.stats_dump.find("system.fault."), std::string::npos);
}

TEST(DeterminismTest, DifferentFaultSeedsStillAgreeOnResults) {
  db::Column col = bench::UniformColumn(32 * 1024);
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 0 && col[i] <= 499999;
  }
  FaultedResult a = RunFaultedPipeline(col, 2001);
  FaultedResult b = RunFaultedPipeline(col, 2002);
  // Different fault sequences, but recovery makes the answer fault-invariant.
  EXPECT_EQ(a.matches, oracle);
  EXPECT_EQ(b.matches, oracle);
}

#endif  // NDP_FAULT_INJECT

TEST(DeterminismTest, ParallelSweepIsThreadCountInvariant) {
  db::Column col = bench::UniformColumn(16 * 1024);
  const std::vector<int64_t> his = {-1, 99999, 499999, 899999, 999999};
  auto run_point = [&](size_t i) { return RunPipeline(col, his[i]); };
  std::vector<PipelineResult> serial =
      bench::ParallelSweep<PipelineResult>(his.size(), run_point,
                                           /*num_threads=*/1);
  std::vector<PipelineResult> parallel =
      bench::ParallelSweep<PipelineResult>(his.size(), run_point,
                                           /*num_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

}  // namespace
}  // namespace ndp
