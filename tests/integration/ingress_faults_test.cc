// Ingress x fault-injection composition: a device that hangs under load must
// make its tenant SHED, not spin — the retry budget caps amplification, the
// CPU fallback absorbs what one token buys, and the whole faulted run stays
// a pure function of the seed (byte-identical digests).
#include <gtest/gtest.h>

#include <vector>

#include "core/host_traffic.h"
#include "core/ingress.h"
#include "core/runtime.h"
#include "fault/injector.h"
#include "util/rng.h"

#ifdef NDP_FAULT_INJECT

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// Single-attempt driver retry plus a short watchdog: the first lease on a
/// doomed lane becomes a fast permanent failure, so these tests measure the
/// ingress retry budget, not the watchdog.
RuntimeConfig DoomedLaneConfig() {
  RuntimeConfig cfg;
  cfg.driver.retry.max_attempts = 1;
  cfg.driver.watchdog_base_ps = 5'000'000;  // 5 us
  return cfg;
}

TEST(IngressFaultsTest, RetryBudgetExhaustionShedsInsteadOfSpinning) {
  // One lane, doomed: every NDP attempt fails. With a 1-token bucket and no
  // refill, exactly one request can buy a retry (which lands on the CPU
  // fallback once the lane is declared dead); the rest must shed.
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  fault::FaultPlan plan;
  plan.hang_per_job = 1.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(0).set_fault_injector(&injector);

  NdpRuntime runtime(&array, DoomedLaneConfig());
  db::Column col = RandomColumn(8'192, 91);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  IngressConfig cfg;
  cfg.retry_tokens = 1.0;
  cfg.retry_refill_per_ms = 0.0;
  cfg.governor_enabled = false;
  cfg.cpu_scan_bus_cycles_per_row = 1;
  TenantSpec tenant;
  tenant.name = "interactive";
  tenant.priority = JobPriority::kInteractive;
  tenant.deadline_ps = 0;  // no deadline: the budget, not the clock, decides
  ServingIngress ingress(&runtime, &array, cfg, {tenant});
  ingress.AddTable(&col, &placed);

  std::vector<ServingResult> results;
  ServingRequest req;
  req.lo = 100'000;
  req.hi = 400'000;
  ingress.Start();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ingress.Enqueue(0, req, [&results](const ServingResult& r) {
      results.push_back(r);
    }));
  }
  ingress.Stop();
  // The drain terminating at all is the spin check: an unbudgeted retry loop
  // against a dead lane would never quiesce.
  ASSERT_TRUE(ingress.Drain().ok());
  ASSERT_TRUE(runtime.Drain().ok());

  ASSERT_EQ(results.size(), 3u);
  uint64_t served_cpu = 0, shed_budget = 0;
  for (const ServingResult& r : results) {
    if (r.outcome == ServeOutcome::kOkCpuFallback) {
      ++served_cpu;
      EXPECT_EQ(r.matches, Oracle(col, 100'000, 400'000));
    } else {
      EXPECT_EQ(r.outcome, ServeOutcome::kShedRetryBudget);
      ++shed_budget;
    }
  }
  EXPECT_EQ(served_cpu, 1u);
  EXPECT_EQ(shed_budget, 2u);
  EXPECT_EQ(array.stats().ReadValue("array.ingress.retries"), 1.0);
  EXPECT_EQ(array.stats().ReadValue("array.ingress.shed_retry_budget"), 2.0);
  EXPECT_EQ(runtime.lanes_alive(), 0u);
}

uint64_t FaultedRunDigests(uint64_t seed, uint64_t* outcome_digest,
                           uint64_t* goodput) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  fault::FaultPlan plan;
  plan.hang_per_job = 1.0;
  StatsScope fault_scope(array.mutable_stats(), "fault");
  fault::FaultInjector injector(plan, fault_scope);
  array.device(0).set_fault_injector(&injector);  // device 1 stays healthy

  NdpRuntime runtime(&array, DoomedLaneConfig());
  db::Column col = RandomColumn(8'192, 92);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  ServingIngress ingress(&runtime, &array, IngressConfig{}, [] {
    TenantSpec t;
    t.name = "interactive";
    t.priority = JobPriority::kInteractive;
    t.deadline_ps = 0;
    return std::vector<TenantSpec>{t};
  }());
  ingress.AddTable(&col, &placed);

  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.02;
  fcfg.seed = seed;
  ClientFleet fleet(&array.eq(), &ingress, fcfg);
  ingress.Start();
  fleet.Start();
  array.eq().RunUntil(array.eq().Now() + 300'000'000);  // 300 us
  fleet.Stop();
  ingress.Stop();
  NDP_CHECK(ingress.Drain().ok());
  NDP_CHECK(runtime.Drain().ok());
  *outcome_digest = fleet.outcome_digest();
  *goodput = fleet.goodput();
  return fleet.issue_digest();
}

TEST(IngressFaultsTest, FaultedServingIsAPureFunctionOfTheSeed) {
  uint64_t out_a = 0, out_b = 0, good_a = 0, good_b = 0;
  uint64_t issue_a = FaultedRunDigests(42, &out_a, &good_a);
  uint64_t issue_b = FaultedRunDigests(42, &out_b, &good_b);
  // Same seed, same doomed lane: the entire serving history — every arrival
  // and every terminal outcome, recovery included — replays identically.
  EXPECT_EQ(issue_a, issue_b);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(good_a, good_b);
  // The surviving lane (plus budgeted recovery) kept serving.
  EXPECT_GT(good_a, 0u);
}

}  // namespace
}  // namespace ndp::core

#else  // !NDP_FAULT_INJECT

namespace ndp::core {
TEST(IngressFaultsTest, SkippedWithoutFaultInjectionHook) {
  GTEST_SKIP() << "built with NDP_FAULT_INJECT=OFF (tools/check.sh runs the "
                  "ON configuration)";
}
}  // namespace ndp::core

#endif  // NDP_FAULT_INJECT
