// Tests for the §4 extension engines: aggregation, projection, row-store.
#include <gtest/gtest.h>

#include <vector>

#include "jafar/device.h"
#include "util/rng.h"

namespace ndp::jafar {
namespace {

class EnginesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 1024;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg);
    bool granted = false;
    dram_->controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  }

  std::vector<int64_t> RandomColumn(size_t n, uint64_t seed = 3) {
    Rng rng(seed);
    std::vector<int64_t> v(n);
    for (auto& x : v) x = rng.NextInRange(-5000, 5000);
    return v;
  }

  void Run(const Status& st, bool* done) {
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return *done; }));
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
};

constexpr uint64_t kCol = 0;
constexpr uint64_t kBitmap = 1 << 20;
constexpr uint64_t kOut = 2 << 20;

TEST_F(EnginesTest, AggregateSumMinMaxCountMatchOracle) {
  auto values = RandomColumn(2048);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  int64_t sum = 0, mn = INT64_MAX, mx = INT64_MIN;
  for (int64_t v : values) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  struct Case {
    AggKind kind;
    int64_t expected;
  } cases[] = {{AggKind::kSum, sum},
               {AggKind::kMin, mn},
               {AggKind::kMax, mx},
               {AggKind::kCount, static_cast<int64_t>(values.size())}};
  for (const auto& c : cases) {
    AggregateJob job;
    job.col_base = kCol;
    job.num_rows = values.size();
    job.kind = c.kind;
    job.out_addr = kOut;
    bool done = false;
    Run(device_->StartAggregate(job, [&](sim::Tick) { done = true; }), &done);
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(kOut)),
              c.expected)
        << static_cast<int>(c.kind);
  }
}

TEST_F(EnginesTest, FilteredAggregateHonoursBitmap) {
  auto values = RandomColumn(1024);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  // Bitmap: every third row selected.
  BitVector bm(values.size());
  int64_t expected = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % 3 == 0) {
      bm.Set(i);
      expected += values[i];
    }
  }
  dram_->backing_store().Write(kBitmap, bm.bytes(), bm.num_bytes());
  AggregateJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.kind = AggKind::kSum;
  job.bitmap_base = kBitmap;
  job.out_addr = kOut;
  bool done = false;
  Run(device_->StartAggregate(job, [&](sim::Tick) { done = true; }), &done);
  EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(kOut)), expected);
}

TEST_F(EnginesTest, ProjectEmitsDenselyPackedQualifyingValues) {
  auto values = RandomColumn(1024, 11);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  BitVector bm(values.size());
  std::vector<int64_t> expected;
  Rng rng(5);
  for (size_t i = 0; i < values.size(); ++i) {
    if (rng.NextBool(0.3)) {
      bm.Set(i);
      expected.push_back(values[i]);
    }
  }
  dram_->backing_store().Write(kBitmap, bm.bytes(), bm.num_bytes());
  ProjectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.bitmap_base = kBitmap;
  job.out_base = kOut;
  bool done = false;
  Run(device_->StartProject(job, [&](sim::Tick) { done = true; }), &done);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(kOut + i * 8)),
              expected[i])
        << "position " << i;
  }
  EXPECT_EQ(device_->stats().matches, expected.size());
}

TEST_F(EnginesTest, ProjectWithEmptyBitmapWritesNothing) {
  auto values = RandomColumn(512);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  BitVector bm(values.size());  // all clear
  dram_->backing_store().Write(kBitmap, bm.bytes(), bm.num_bytes());
  ProjectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.bitmap_base = kBitmap;
  job.out_base = kOut;
  bool done = false;
  Run(device_->StartProject(job, [&](sim::Tick) { done = true; }), &done);
  EXPECT_EQ(device_->stats().matches, 0u);
  EXPECT_EQ(dram_->backing_store().Read64(kOut), 0u);
}

TEST_F(EnginesTest, RowStoreConjunctionMatchesOracle) {
  // Tuples of 32 bytes = 4 attributes; filter on attributes 0 and 2.
  const size_t tuples = 1024;
  const uint32_t tuple_bytes = 32;
  Rng rng(21);
  std::vector<int64_t> attrs(tuples * 4);
  for (auto& a : attrs) a = rng.NextInRange(0, 99);
  dram_->backing_store().Write(kCol, attrs.data(), attrs.size() * 8);

  RowStoreJob job;
  job.tuple_base = kCol;
  job.num_tuples = tuples;
  job.tuple_bytes = tuple_bytes;
  job.predicates = {
      {0, CompareOp::kBetween, 20, 80},
      {16, CompareOp::kGe, 50, 0},
  };
  job.out_base = kOut;
  bool done = false;
  Run(device_->StartRowStore(job, [&](sim::Tick) { done = true; }), &done);

  uint64_t expected_matches = 0;
  for (size_t t = 0; t < tuples; ++t) {
    bool pass = attrs[t * 4] >= 20 && attrs[t * 4] <= 80 && attrs[t * 4 + 2] >= 50;
    uint64_t word = dram_->backing_store().Read64(kOut + (t / 64) * 8);
    EXPECT_EQ(((word >> (t % 64)) & 1) != 0, pass) << "tuple " << t;
    expected_matches += pass;
  }
  EXPECT_EQ(device_->last_match_count(), expected_matches);
}

TEST_F(EnginesTest, RowStoreReadsMoreDataThanColumnStore) {
  // The row-store variant must stream whole tuples: 4x the bursts for
  // 32-byte tuples vs. an 8-byte column — the column-store advantage the
  // paper's §4 comparison question is about.
  const size_t tuples = 2048;
  std::vector<int64_t> attrs(tuples * 4, 42);
  dram_->backing_store().Write(kCol, attrs.data(), attrs.size() * 8);

  RowStoreJob rs;
  rs.tuple_base = kCol;
  rs.num_tuples = tuples;
  rs.tuple_bytes = 32;
  rs.predicates = {{0, CompareOp::kBetween, 0, 100}};
  rs.out_base = kOut;
  bool done = false;
  Run(device_->StartRowStore(rs, [&](sim::Tick) { done = true; }), &done);
  uint64_t rowstore_bursts = device_->stats().bursts_read;

  device_->ResetStats();
  SelectJob cs;
  cs.col_base = kCol;
  cs.num_rows = tuples;
  cs.range_low = 0;
  cs.range_high = 100;
  cs.out_base = kOut;
  done = false;
  Run(device_->StartSelect(cs, [&](sim::Tick) { done = true; }), &done);
  uint64_t colstore_bursts = device_->stats().bursts_read;
  EXPECT_EQ(rowstore_bursts, colstore_bursts * 4);
}

TEST_F(EnginesTest, RowStoreRejectsBadPredicates) {
  RowStoreJob job;
  job.tuple_base = kCol;
  job.num_tuples = 16;
  job.tuple_bytes = 16;
  job.out_base = kOut;
  EXPECT_EQ(device_->StartRowStore(job, nullptr).code(),
            StatusCode::kInvalidArgument);  // no predicates
  job.predicates = {{16, CompareOp::kEq, 1, 0}};  // offset beyond tuple
  EXPECT_EQ(device_->StartRowStore(job, nullptr).code(),
            StatusCode::kInvalidArgument);
  job.predicates = {{0, CompareOp::kEq, 1, 0}};
  job.tuple_bytes = 12;  // not a multiple of 8
  EXPECT_EQ(device_->StartRowStore(job, nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ndp::jafar
