// §4 "Data Types": JAFAR "can easily be extended to support additional
// fixed-length data types". Tests the packed 32-bit element mode: two values
// per 64-bit word, doubling effective scan rate per burst.
#include <gtest/gtest.h>

#include "jafar/device.h"
#include "util/rng.h"

namespace ndp::jafar {
namespace {

class Elem32Test : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    cfg_ = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                accel::DatapathResources{})
               .ValueOrDie();
    cfg_.elem_bytes = 4;
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg_);
    bool granted = false;
    dram_->controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  }

  sim::Tick RunSelect(const SelectJob& job) {
    bool done = false;
    sim::Tick start = eq_->Now(), end = 0;
    Status st = device_->StartSelect(job, [&](sim::Tick t) {
      done = true;
      end = t;
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  DeviceConfig cfg_;
  std::unique_ptr<Device> device_;
};

TEST_F(Elem32Test, SelectOnInt32ColumnMatchesOracle) {
  Rng rng(5);
  std::vector<int32_t> values(8192);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.NextInRange(-100000, 100000));
  }
  dram_->backing_store().Write(0, values.data(), values.size() * 4);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.range_low = -50000;
  job.range_high = 25000;
  job.out_base = 1 << 20;
  RunSelect(job);
  uint64_t oracle = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    bool pass = values[i] >= -50000 && values[i] <= 25000;
    oracle += pass;
    uint64_t word = dram_->backing_store().Read64((1 << 20) + (i / 64) * 8);
    ASSERT_EQ(((word >> (i % 64)) & 1) != 0, pass) << "row " << i;
  }
  EXPECT_EQ(device_->last_match_count(), oracle);
}

TEST_F(Elem32Test, NegativeValuesSignExtendCorrectly) {
  std::vector<int32_t> values = {-1, 0, 1, INT32_MIN, INT32_MAX, -7};
  values.resize(16, 0);
  dram_->backing_store().Write(0, values.data(), values.size() * 4);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.op = CompareOp::kLt;
  job.range_low = 0;
  job.out_base = 1 << 20;
  RunSelect(job);
  uint64_t word = dram_->backing_store().Read64(1 << 20);
  EXPECT_TRUE(word & (1ull << 0));   // -1
  EXPECT_FALSE(word & (1ull << 1));  // 0
  EXPECT_TRUE(word & (1ull << 3));   // INT32_MIN
  EXPECT_FALSE(word & (1ull << 4));  // INT32_MAX
  EXPECT_TRUE(word & (1ull << 5));   // -7
}

TEST_F(Elem32Test, HalvesTheBurstsVersus64Bit) {
  const uint64_t rows = 16384;
  std::vector<int32_t> v32(rows, 1);
  dram_->backing_store().Write(0, v32.data(), rows * 4);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = rows;
  job.range_low = 0;
  job.range_high = 10;
  job.out_base = 1 << 22;
  RunSelect(job);
  // 16 values per 64 B burst instead of 8.
  EXPECT_EQ(device_->stats().bursts_read, rows / 16);
}

TEST_F(Elem32Test, OtherEnginesRejectPackedMode) {
  AggregateJob agg;
  agg.col_base = 0;
  agg.num_rows = 64;
  agg.out_addr = 1 << 20;
  EXPECT_EQ(device_->StartAggregate(agg, nullptr).code(),
            StatusCode::kUnimplemented);
  SortJob sort;
  sort.col_base = 0;
  sort.num_rows = 64;
  sort.out_base = 1 << 20;
  EXPECT_EQ(device_->StartSort(sort, nullptr).code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace ndp::jafar
