// Tests for the §3.3 no-scheduler scenario: a device configured with
// require_ownership = false runs only while the host memory controller is
// idle, surviving host refresh and traffic that perturb its bank state.
#include <gtest/gtest.h>

#include "jafar/device.h"
#include "util/rng.h"

namespace ndp::jafar {
namespace {

class PoliteModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.ranks_per_channel = 2;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;  // refresh enabled: it must not break JAFAR
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    cfg.require_ownership = false;
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg);
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
};

TEST_F(PoliteModeTest, RunsWithoutOwnership) {
  ASSERT_EQ(dram_->channel(0).rank(0).owner(), dram::RankOwner::kHost);
  std::vector<int64_t> values(4096, 100);
  dram_->backing_store().Write(0, values.data(), values.size() * 8);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.range_low = 0;
  job.range_high = 200;
  job.out_base = 1 << 20;
  bool done = false;
  ASSERT_TRUE(device_->StartSelect(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_EQ(device_->last_match_count(), values.size());
}

TEST_F(PoliteModeTest, SurvivesRefreshClosingItsRows) {
  // A scan long enough to straddle several tREFI intervals: host refresh
  // precharges the device's open rows mid-scan; the stale-row revalidation
  // must recover and the result must stay exact.
  Rng rng(3);
  std::vector<int64_t> values(128 * 1024);
  for (auto& v : values) v = rng.NextInRange(0, 999);
  dram_->backing_store().Write(0, values.data(), values.size() * 8);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.range_low = 0;
  job.range_high = 499;
  job.out_base = 1 << 24;
  bool done = false;
  ASSERT_TRUE(device_->StartSelect(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  uint64_t oracle = 0;
  for (int64_t v : values) oracle += v <= 499;
  EXPECT_EQ(device_->last_match_count(), oracle);
  // The scan crossed refresh windows.
  EXPECT_GE(dram_->channel(0).rank(0).refreshes_issued(), 1u);
}

TEST_F(PoliteModeTest, DefersToHostTraffic) {
  std::vector<int64_t> values(32 * 1024, 5);
  dram_->backing_store().Write(0, values.data(), values.size() * 8);

  // Keep the controller busy with a stream of host reads to rank 1.
  uint64_t rank1 = dram_->organization().BytesPerRank();
  uint64_t issued = 0;
  std::function<void()> pump = [&] {
    if (issued >= 2000) return;
    dram::Request r;
    r.addr = rank1 + (issued % 512) * 64;
    r.on_complete = [&](sim::Tick) { pump(); };
    if (dram_->EnqueueRequest(r).ok()) ++issued;
  };
  // Prime several outstanding host requests.
  for (int i = 0; i < 8; ++i) pump();

  SelectJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.range_low = 0;
  job.range_high = 10;
  job.out_base = 1 << 24;
  bool done = false;
  ASSERT_TRUE(device_->StartSelect(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_GT(device_->stats().polite_backoffs, 0u);
  EXPECT_EQ(device_->last_match_count(), values.size());
}

TEST_F(PoliteModeTest, ExclusiveModeStillRequiresOwnership) {
  auto cfg = device_->config();
  cfg.require_ownership = true;
  Device strict(dram_.get(), 0, 0, cfg);
  SelectJob job;
  job.col_base = 0;
  job.num_rows = 64;
  job.out_base = 1 << 20;
  EXPECT_EQ(strict.StartSelect(job, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ndp::jafar
