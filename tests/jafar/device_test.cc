#include "jafar/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace ndp::jafar {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(DefaultConfig()); }

  static DeviceConfig DefaultConfig() {
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    cfg.output_buffer_bits = 512;  // one burst per flush, small for tests
    return cfg;
  }

  void Rebuild(DeviceConfig cfg) {
    device_.reset();  // components cancel their event nodes; queue must outlive them
    dram_.reset();
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.ranks_per_channel = 2;
    org.rows_per_bank = 1024;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;  // deterministic timing in unit tests
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg);
    GrantOwnership();
  }

  void GrantOwnership() {
    bool granted = false;
    dram_->controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  }

  /// Loads `values` into the backing store at `base` as 64-bit words.
  void LoadColumn(uint64_t base, const std::vector<int64_t>& values) {
    dram_->backing_store().Write(base, values.data(), values.size() * 8);
  }

  std::vector<int64_t> RandomColumn(size_t n, uint64_t seed = 7) {
    Rng rng(seed);
    std::vector<int64_t> v(n);
    for (auto& x : v) x = rng.NextInRange(0, 999999);
    return v;
  }

  BitVector ReadBitmap(uint64_t base, size_t bits) {
    BitVector bv(bits);
    for (size_t w = 0; w < bv.num_words(); ++w) {
      bv.SetWord(w, dram_->backing_store().Read64(base + w * 8));
    }
    return bv;
  }

  sim::Tick RunSelect(const SelectJob& job) {
    bool done = false;
    sim::Tick start = eq_->Now(), end = 0;
    Status st = device_->StartSelect(job, [&](sim::Tick t) {
      done = true;
      end = t;
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) return 0;
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
};

constexpr uint64_t kCol = 0;           // rank 0
constexpr uint64_t kOut = 1 << 20;     // rank 0, well clear of the column

TEST_F(DeviceTest, SelectBitmapMatchesScalarOracle) {
  auto values = RandomColumn(4096);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.range_low = 250000;
  job.range_high = 750000;
  job.out_base = kOut;
  RunSelect(job);

  BitVector bm = ReadBitmap(kOut, values.size());
  uint64_t expected_matches = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    bool pass = values[i] >= 250000 && values[i] <= 750000;
    EXPECT_EQ(bm.Get(i), pass) << "row " << i;
    expected_matches += pass;
  }
  EXPECT_EQ(device_->last_match_count(), expected_matches);
  EXPECT_EQ(bm.CountOnes(), expected_matches);
}

class CompareOpTest : public DeviceTest,
                      public ::testing::WithParamInterface<CompareOp> {};

TEST_P(CompareOpTest, AllOperatorsMatchOracle) {
  CompareOp op = GetParam();
  auto values = RandomColumn(512, 99);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.op = op;
  job.range_low = 500000;
  job.range_high = 600000;
  job.out_base = kOut;
  RunSelect(job);
  BitVector bm = ReadBitmap(kOut, values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(bm.Get(i), EvalCompare(op, values[i], 500000, 600000))
        << CompareOpToString(op) << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, CompareOpTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kLt,
                                           CompareOp::kGt, CompareOp::kLe,
                                           CompareOp::kGe, CompareOp::kBetween));

TEST_F(DeviceTest, ExecutionTimeIsSelectivityIndependent) {
  // §3.2: "JAFAR has constant execution time irrespective of the query
  // selectivity" — it always writes full output buffers.
  auto values = RandomColumn(8192);
  LoadColumn(kCol, values);
  SelectJob all;
  all.col_base = kCol;
  all.num_rows = values.size();
  all.range_low = 0;
  all.range_high = 999999;
  all.out_base = kOut;
  // Warm-up run so both measured runs start from identical bank state.
  (void)RunSelect(all);
  sim::Tick t_all = RunSelect(all);

  SelectJob none = all;
  none.range_low = -2;
  none.range_high = -1;
  sim::Tick t_none = RunSelect(none);
  EXPECT_EQ(t_all, t_none);
}

TEST_F(DeviceTest, RequiresOwnershipWhenConfigured) {
  bool released = false;
  dram_->controller(0).TransferOwnership(0, dram::RankOwner::kHost,
                                         [&](sim::Tick) { released = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return released; }));
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = 64;
  job.out_base = kOut;
  Status st = device_->StartSelect(job, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DeviceTest, RejectsJobOutsideItsRank) {
  // Rank 1 starts at BytesPerRank in the contiguous layout.
  uint64_t rank1 = dram_->organization().BytesPerRank();
  SelectJob job;
  job.col_base = rank1;
  job.num_rows = 64;
  job.out_base = rank1 + (1 << 20);
  EXPECT_EQ(device_->StartSelect(job, nullptr).code(),
            StatusCode::kInvalidArgument);
  // A job whose data straddles the rank boundary is also rejected.
  SelectJob straddle;
  straddle.col_base = rank1 - 64;
  straddle.num_rows = 64;
  straddle.out_base = kOut;
  EXPECT_EQ(device_->StartSelect(straddle, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DeviceTest, RejectsConcurrentJobs) {
  auto values = RandomColumn(512);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.out_base = kOut;
  ASSERT_TRUE(device_->StartSelect(job, nullptr).ok());
  EXPECT_EQ(device_->StartSelect(job, nullptr).code(), StatusCode::kDeviceBusy);
  eq_->RunUntilTrue([&] { return !device_->busy(); });
}

TEST_F(DeviceTest, ThroughputApproachesOneWordPerBusBurstSlot) {
  // Pipelined CAS every tCCD: 8 words per 4 bus cycles. For a large scan the
  // effective rate should be close to that bound (row switches and bitmap
  // write-backs cost a few percent).
  const size_t rows = 65536;
  auto values = RandomColumn(rows);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = rows;
  job.range_low = 0;
  job.range_high = 999999;
  job.out_base = kOut;
  sim::Tick dur = RunSelect(job);
  const auto& t = dram_->timing();
  sim::Tick ideal = rows / 8 * t.tccd * t.tck_ps;  // one burst per tCCD
  EXPECT_GE(dur, ideal);
  EXPECT_LE(dur, ideal * 13 / 10);  // <= 30% overhead
}

TEST_F(DeviceTest, WaitFractionMatchesPaperObservation) {
  // §2.2: JAFAR spends ~9 of 13 ns of each access waiting for data. Our
  // counters measure CAS-latency wait vs. datapath busy time; the ratio
  // should show the device is wait-dominated, not compute-dominated.
  auto values = RandomColumn(8192);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.out_base = kOut;
  RunSelect(job);
  double frac = device_->stats().WaitFraction();
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.85);
}

TEST_F(DeviceTest, SlowDatapathThrottlesScan) {
  // A one-ALU datapath (II = 2, half a word per cycle) must take ~2x longer.
  const size_t rows = 16384;
  auto values = RandomColumn(rows);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = rows;
  job.out_base = kOut;
  sim::Tick fast = RunSelect(job);

  accel::DatapathResources weak;
  weak.alus = 1;
  auto slow_cfg =
      DeviceConfig::Derive(dram::DramTiming::DDR3_1600(), weak).ValueOrDie();
  slow_cfg.output_buffer_bits = 512;
  Rebuild(slow_cfg);
  LoadColumn(kCol, values);
  sim::Tick slow = RunSelect(job);
  EXPECT_GT(slow, fast * 15 / 10);
  EXPECT_LT(slow, fast * 25 / 10);
}

TEST_F(DeviceTest, MaskedWritebackPreservesForeignBits) {
  // §2.2 "Handling Data Interleaving": with word-granularity interleaving
  // JAFAR must only overwrite bitmap bits for rows it operated on.
  const size_t rows = 512;
  std::vector<int64_t> values(rows, 1000);  // all pass [0, 2000]
  LoadColumn(kCol, values);
  // Pre-existing bitmap content that belongs to the *other* DIMM's rows.
  for (size_t w = 0; w < rows / 64; ++w) {
    dram_->backing_store().Write64(kOut + w * 8, 0xAAAAAAAAAAAAAAAAull);
  }
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = rows;
  job.range_low = 0;
  job.range_high = 2000;
  job.out_base = kOut;
  job.masked_writeback = true;
  job.writeback_mask = 0x5555555555555555ull;  // we own the even bits
  RunSelect(job);
  for (size_t w = 0; w < rows / 64; ++w) {
    // Even bits set by us (all rows pass), odd bits preserved as 1 (0xAAAA..).
    EXPECT_EQ(dram_->backing_store().Read64(kOut + w * 8),
              0xFFFFFFFFFFFFFFFFull);
  }
}

TEST_F(DeviceTest, StatsAccumulateAcrossJobs) {
  auto values = RandomColumn(1024);
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.out_base = kOut;
  RunSelect(job);
  RunSelect(job);
  const DeviceStats& s = device_->stats();
  EXPECT_EQ(s.jobs_completed, 2u);
  EXPECT_EQ(s.rows_processed, 2048u);
  EXPECT_EQ(s.bursts_read, 2 * 1024 / 8u);
  EXPECT_GT(s.bursts_written, 0u);
  EXPECT_GT(s.energy_fj, 0.0);
  EXPECT_GT(s.total_busy_ps, 0u);
}

TEST_F(DeviceTest, UnalignedBaseRejected) {
  SelectJob job;
  job.col_base = 8;  // not 64 B aligned
  job.num_rows = 64;
  job.out_base = kOut;
  EXPECT_EQ(device_->StartSelect(job, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DeviceTest, PartialFinalBufferIsFlushed) {
  // 100 rows: far less than the 512-bit output buffer; the final partial
  // flush must still land in memory.
  std::vector<int64_t> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);
  }
  LoadColumn(kCol, values);
  SelectJob job;
  job.col_base = kCol;
  job.num_rows = values.size();
  job.range_low = 50;
  job.range_high = 999;
  job.out_base = kOut;
  RunSelect(job);
  BitVector bm = ReadBitmap(kOut, 100);
  EXPECT_EQ(bm.CountOnes(), 50u);
  EXPECT_FALSE(bm.Get(49));
  EXPECT_TRUE(bm.Get(50));
}

}  // namespace
}  // namespace ndp::jafar
