#include "jafar/driver.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace ndp::jafar {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg);
    driver_ = std::make_unique<Driver>(device_.get(), &dram_->controller(0));
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<Driver> driver_;
};

constexpr uint64_t kCol = 0;
constexpr uint64_t kOut = 8 << 20;
constexpr uint64_t kFlag = 12 << 20;

TEST_F(DriverTest, OwnershipRoundTripThroughMr3) {
  EXPECT_EQ(dram_->channel(0).rank(0).owner(), dram::RankOwner::kHost);
  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));
  EXPECT_EQ(dram_->channel(0).rank(0).owner(), dram::RankOwner::kAccelerator);
  bool released = false;
  driver_->ReleaseOwnership([&](sim::Tick) { released = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return released; }));
  EXPECT_EQ(dram_->channel(0).rank(0).owner(), dram::RankOwner::kHost);
}

TEST_F(DriverTest, PagedSelectCoversMultiplePages) {
  // 1500 rows x 8 B = 11.7 KB = 3 pages at 4 KB.
  const uint64_t rows = 1500;
  Rng rng(8);
  std::vector<int64_t> values(rows);
  for (auto& v : values) v = rng.NextInRange(0, 999);
  dram_->backing_store().Write(kCol, values.data(), rows * 8);

  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));

  SelectResult result;
  bool done = false;
  Status st = driver_->SelectJafar(kCol, 100, 499, kOut, rows, kFlag,
                                   [&](const SelectResult& r) {
                                     result = r;
                                     done = true;
                                   });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));

  EXPECT_EQ(result.pages, 3u);
  uint64_t expected = 0;
  for (int64_t v : values) expected += (v >= 100 && v <= 499);
  EXPECT_EQ(result.num_output_rows, expected);
  // Completion flag observable by a polling CPU.
  EXPECT_EQ(dram_->backing_store().Read64(kFlag), 1u);
  // Status register reads DONE.
  EXPECT_EQ(driver_->registers().Read(Reg::kStatus),
            static_cast<uint64_t>(DeviceStatus::kDone));
}

TEST_F(DriverTest, BitmapBytesContiguousAcrossPageBoundaries) {
  const uint64_t rows = 1024;  // exactly 2 pages
  std::vector<int64_t> values(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    values[i] = static_cast<int64_t>(i % 2);  // alternating 0,1
  }
  dram_->backing_store().Write(kCol, values.data(), rows * 8);
  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));
  bool done = false;
  ASSERT_TRUE(driver_
                  ->SelectJafar(kCol, 1, 1, kOut, rows, 0,
                                [&](const SelectResult&) { done = true; })
                  .ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  for (uint64_t w = 0; w < rows / 64; ++w) {
    EXPECT_EQ(dram_->backing_store().Read64(kOut + w * 8),
              0xAAAAAAAAAAAAAAAAull)
        << "bitmap word " << w;
  }
}

TEST_F(DriverTest, SelectWithoutOwnershipFailsCleanly) {
  bool done = false;
  SelectResult result;
  result.num_output_rows = 123;
  Status st = driver_->SelectJafar(kCol, 0, 10, kOut, 64, 0,
                                   [&](const SelectResult& r) {
                                     result = r;
                                     done = true;
                                   });
  // The driver surfaces the device failure through the callback + register.
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(result.num_output_rows, 0u);
  EXPECT_EQ(driver_->registers().Read(Reg::kStatus),
            static_cast<uint64_t>(DeviceStatus::kError));
}

TEST_F(DriverTest, RejectsUnalignedAndConcurrentCalls) {
  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));
  EXPECT_EQ(driver_->SelectJafar(64, 0, 10, kOut, 64, 0, nullptr).code(),
            StatusCode::kInvalidArgument);  // not page aligned
  EXPECT_EQ(driver_->SelectJafar(kCol, 0, 10, kOut, 0, 0, nullptr).code(),
            StatusCode::kInvalidArgument);  // zero rows
  std::vector<int64_t> values(512, 5);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  bool done = false;
  ASSERT_TRUE(driver_
                  ->SelectJafar(kCol, 0, 10, kOut, 512, 0,
                                [&](const SelectResult&) { done = true; })
                  .ok());
  EXPECT_EQ(driver_->SelectJafar(kCol, 0, 10, kOut, 512, 0, nullptr).code(),
            StatusCode::kDeviceBusy);
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
}

TEST_F(DriverTest, InvocationOverheadScalesWithPages) {
  // More pages -> more per-invocation overhead: a 2-page call over N rows is
  // slower than a 1-page-sized device job over the same rows would be, and a
  // small-page driver is slower than a large-page one.
  const uint64_t rows = 4096;  // 32 KB of column data
  std::vector<int64_t> values(rows, 7);
  dram_->backing_store().Write(kCol, values.data(), rows * 8);
  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));

  auto timed_select = [&](Driver* d) {
    bool done = false;
    sim::Tick start = eq_->Now(), end = 0;
    SelectResult res;
    EXPECT_TRUE(d->SelectJafar(kCol, 0, 10, kOut, rows, 0,
                               [&](const SelectResult& r) {
                                 res = r;
                                 done = true;
                                 end = r.completed_at;
                               })
                    .ok());
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  };

  sim::Tick small_pages = timed_select(driver_.get());
  DriverConfig big;
  big.page_bytes = 32768;
  Driver big_driver(device_.get(), &dram_->controller(0), big);
  sim::Tick one_page = timed_select(&big_driver);
  EXPECT_GT(small_pages, one_page);
}

}  // namespace
}  // namespace ndp::jafar
