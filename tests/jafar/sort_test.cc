// Tests for the §4 bitonic block-sort engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "jafar/device.h"
#include "util/rng.h"

namespace ndp::jafar {
namespace {

class SortEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    cfg_ = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                accel::DatapathResources{})
               .ValueOrDie();
    Rebuild();
  }

  void Rebuild() {
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg_);
    bool granted = false;
    dram_->controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  }

  sim::Tick RunSort(const SortJob& job) {
    bool done = false;
    sim::Tick start = eq_->Now(), end = 0;
    Status st = device_->StartSort(job, [&](sim::Tick t) {
      done = true;
      end = t;
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  DeviceConfig cfg_;
  std::unique_ptr<Device> device_;
};

TEST_F(SortEngineTest, ProducesSortedRunsOfBlockSize) {
  Rng rng(4);
  const uint64_t rows = 4096;  // 4 blocks of 1024
  std::vector<int64_t> values(rows);
  for (auto& v : values) v = rng.NextInRange(-10000, 10000);
  dram_->backing_store().Write(0, values.data(), rows * 8);

  SortJob job;
  job.col_base = 0;
  job.num_rows = rows;
  job.out_base = 1 << 20;
  RunSort(job);

  uint32_t block = cfg_.sort_block_elems;
  for (uint64_t r = 0; r < rows; r += block) {
    std::vector<int64_t> run(block);
    dram_->backing_store().Read(job.out_base + r * 8, run.data(), block * 8);
    EXPECT_TRUE(std::is_sorted(run.begin(), run.end())) << "run at " << r;
    // Each run is a permutation of its input block.
    std::vector<int64_t> expected(values.begin() + r,
                                  values.begin() + r + block);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(run, expected);
  }
}

TEST_F(SortEngineTest, DescendingOrder) {
  std::vector<int64_t> values = {3, 1, 4, 1, 5, 9, 2, 6};
  dram_->backing_store().Write(0, values.data(), values.size() * 8);
  SortJob job;
  job.col_base = 0;
  job.num_rows = values.size();
  job.out_base = 1 << 20;
  job.descending = true;
  RunSort(job);
  std::vector<int64_t> out(values.size());
  dram_->backing_store().Read(job.out_base, out.data(), out.size() * 8);
  EXPECT_EQ(out, (std::vector<int64_t>{9, 6, 5, 4, 3, 2, 1, 1}));
}

TEST_F(SortEngineTest, PartialFinalBlock) {
  Rng rng(9);
  const uint64_t rows = 1024 + 100;
  std::vector<int64_t> values(rows);
  for (auto& v : values) v = rng.NextInRange(0, 999);
  dram_->backing_store().Write(0, values.data(), rows * 8);
  SortJob job;
  job.col_base = 0;
  job.num_rows = rows;
  job.out_base = 1 << 20;
  RunSort(job);
  std::vector<int64_t> tail(100);
  dram_->backing_store().Read(job.out_base + 1024 * 8, tail.data(), 100 * 8);
  EXPECT_TRUE(std::is_sorted(tail.begin(), tail.end()));
}

TEST_F(SortEngineTest, MoreComparatorsSortFaster) {
  Rng rng(2);
  const uint64_t rows = 16384;
  std::vector<int64_t> values(rows);
  for (auto& v : values) v = rng.NextInRange(0, 999999);
  dram_->backing_store().Write(0, values.data(), rows * 8);
  SortJob job;
  job.col_base = 0;
  job.num_rows = rows;
  job.out_base = 1 << 22;

  cfg_.sort_comparators = 4;
  Rebuild();
  sim::Tick slow = RunSort(job);
  cfg_.sort_comparators = 64;
  Rebuild();
  sim::Tick fast = RunSort(job);
  EXPECT_GT(slow, fast * 2);
}

TEST_F(SortEngineTest, SortBlockCyclesFormula) {
  DeviceConfig cfg;
  cfg.sort_comparators = 16;
  // 1024 elements: log2 = 10, stages = 55, 512/16 = 32 cycles per stage.
  EXPECT_EQ(cfg.SortBlockCycles(1024), 55u * 32u);
  // Non-power-of-two rounds up to the next network size.
  EXPECT_EQ(cfg.SortBlockCycles(1000), 55u * 32u);
  EXPECT_EQ(cfg.SortBlockCycles(1), 1u);
  // 2 elements: 1 stage, 1 exchange.
  EXPECT_EQ(cfg.SortBlockCycles(2), 1u);
}

TEST_F(SortEngineTest, RejectsBadJobs) {
  SortJob job;
  job.col_base = 8;  // unaligned
  job.num_rows = 64;
  job.out_base = 1 << 20;
  EXPECT_EQ(device_->StartSort(job, nullptr).code(),
            StatusCode::kInvalidArgument);
  job.col_base = 0;
  job.num_rows = 0;
  EXPECT_FALSE(device_->StartSort(job, nullptr).ok());
}

}  // namespace
}  // namespace ndp::jafar
