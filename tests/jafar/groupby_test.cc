// Tests for the §4 grouped-aggregation engine, including the hierarchical
// multi-pass scheme for key domains beyond the bucket SRAM.
#include <gtest/gtest.h>

#include <map>

#include "jafar/driver.h"
#include "util/rng.h"

namespace ndp::jafar {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    cfg.groupby_buckets = 64;  // small SRAM to exercise hierarchy
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg);
    driver_ = std::make_unique<Driver>(device_.get(), &dram_->controller(0));
    bool granted = false;
    dram_->controller(0).TransferOwnership(
        0, dram::RankOwner::kAccelerator, [&](sim::Tick) { granted = true; });
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  }

  void LoadColumns(const std::vector<int64_t>& keys,
                   const std::vector<int64_t>& vals) {
    dram_->backing_store().Write(kKeys, keys.data(), keys.size() * 8);
    dram_->backing_store().Write(kVals, vals.data(), vals.size() * 8);
  }

  static constexpr uint64_t kKeys = 0;
  static constexpr uint64_t kVals = 1 << 22;
  static constexpr uint64_t kOut = 2 << 22;

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<Driver> driver_;
};

TEST_F(GroupByTest, SumPerGroupMatchesOracle) {
  Rng rng(2);
  const uint64_t rows = 4096;
  std::vector<int64_t> keys(rows), vals(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    keys[i] = rng.NextInRange(0, 63);  // within one bucket window
    vals[i] = rng.NextInRange(-100, 100);
  }
  LoadColumns(keys, vals);
  GroupByJob job;
  job.key_base = kKeys;
  job.val_base = kVals;
  job.num_rows = rows;
  job.kind = AggKind::kSum;
  job.out_base = kOut;
  bool done = false;
  ASSERT_TRUE(device_->StartGroupBy(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));

  std::map<int64_t, std::pair<int64_t, int64_t>> oracle;  // key -> (sum, n)
  for (uint64_t i = 0; i < rows; ++i) {
    oracle[keys[i]].first += vals[i];
    oracle[keys[i]].second += 1;
  }
  for (int64_t k = 0; k < 64; ++k) {
    int64_t sum = static_cast<int64_t>(
        dram_->backing_store().Read64(kOut + static_cast<uint64_t>(k) * 16));
    int64_t n = static_cast<int64_t>(dram_->backing_store().Read64(
        kOut + static_cast<uint64_t>(k) * 16 + 8));
    EXPECT_EQ(sum, oracle[k].first) << "key " << k;
    EXPECT_EQ(n, oracle[k].second) << "key " << k;
  }
}

TEST_F(GroupByTest, MinMaxKinds) {
  std::vector<int64_t> keys = {0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<int64_t> vals = {5, -3, 9, 7, -2, 0, 4, 4};
  LoadColumns(keys, vals);
  for (auto [kind, g0, g1] :
       std::vector<std::tuple<AggKind, int64_t, int64_t>>{
           {AggKind::kMin, -2, -3}, {AggKind::kMax, 9, 7}}) {
    GroupByJob job;
    job.key_base = kKeys;
    job.val_base = kVals;
    job.num_rows = keys.size();
    job.kind = kind;
    job.out_base = kOut;
    bool done = false;
    ASSERT_TRUE(
        device_->StartGroupBy(job, [&](sim::Tick) { done = true; }).ok());
    ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(kOut)), g0);
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(kOut + 16)),
              g1);
  }
}

TEST_F(GroupByTest, KeysOutsideWindowAreSkipped) {
  std::vector<int64_t> keys = {10, 100, 10, 200};  // 100, 200 out of window
  std::vector<int64_t> vals = {1, 1, 1, 1};
  LoadColumns(keys, vals);
  GroupByJob job;
  job.key_base = kKeys;
  job.val_base = kVals;
  job.num_rows = keys.size();
  job.kind = AggKind::kSum;
  job.out_base = kOut;
  bool done = false;
  ASSERT_TRUE(device_->StartGroupBy(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_EQ(dram_->backing_store().Read64(kOut + 10 * 16), 2u);
  EXPECT_EQ(device_->stats().matches, 2u);
}

TEST_F(GroupByTest, HierarchicalPassesCoverLargeKeyDomain) {
  // 200 groups over 64-bucket SRAM -> 4 passes.
  Rng rng(6);
  const uint64_t rows = 8192;
  const uint32_t num_groups = 200;
  std::vector<int64_t> keys(rows), vals(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    keys[i] = rng.NextInRange(0, num_groups - 1);
    vals[i] = rng.NextInRange(0, 999);
  }
  LoadColumns(keys, vals);
  GroupByJob job;
  job.key_base = kKeys;
  job.val_base = kVals;
  job.num_rows = rows;
  job.kind = AggKind::kSum;
  job.out_base = kOut;
  bool done = false;
  uint64_t jobs_before = device_->stats().jobs_completed;
  ASSERT_TRUE(driver_
                  ->HierarchicalGroupBy(job, num_groups,
                                        [&](sim::Tick) { done = true; })
                  .ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_EQ(device_->stats().jobs_completed - jobs_before, 4u);

  std::map<int64_t, int64_t> oracle;
  for (uint64_t i = 0; i < rows; ++i) oracle[keys[i]] += vals[i];
  for (uint32_t k = 0; k < num_groups; ++k) {
    EXPECT_EQ(static_cast<int64_t>(
                  dram_->backing_store().Read64(kOut + k * 16)),
              oracle[k])
        << "key " << k;
  }
}

TEST_F(GroupByTest, BitmapFilteredGroupByMatchesOracle) {
  Rng rng(11);
  const uint64_t rows = 4096;
  std::vector<int64_t> keys(rows), vals(rows);
  BitVector bm(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    keys[i] = rng.NextInRange(0, 31);
    vals[i] = rng.NextInRange(0, 99);
    if (rng.NextBool(0.4)) bm.Set(i);
  }
  LoadColumns(keys, vals);
  const uint64_t bitmap_addr = 3 << 22;
  dram_->backing_store().Write(bitmap_addr, bm.bytes(), bm.num_bytes());

  GroupByJob job;
  job.key_base = kKeys;
  job.val_base = kVals;
  job.num_rows = rows;
  job.kind = AggKind::kSum;
  job.bitmap_base = bitmap_addr;
  job.out_base = kOut;
  bool done = false;
  ASSERT_TRUE(device_->StartGroupBy(job, [&](sim::Tick) { done = true; }).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));

  std::map<int64_t, std::pair<int64_t, int64_t>> oracle;
  for (uint64_t i = 0; i < rows; ++i) {
    if (!bm.Get(i)) continue;
    oracle[keys[i]].first += vals[i];
    oracle[keys[i]].second += 1;
  }
  for (int64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(
                  kOut + static_cast<uint64_t>(k) * 16)),
              oracle[k].first)
        << "key " << k;
    EXPECT_EQ(static_cast<int64_t>(dram_->backing_store().Read64(
                  kOut + static_cast<uint64_t>(k) * 16 + 8)),
              oracle[k].second)
        << "key " << k;
  }
  // The bitmap read adds traffic: one extra burst per 512 rows.
  EXPECT_GE(device_->stats().bursts_read, 2 * rows / 8 + rows / 512);
}

TEST_F(GroupByTest, RejectsBadJobs) {
  GroupByJob job;
  job.key_base = 8;  // unaligned
  job.val_base = kVals;
  job.num_rows = 64;
  job.out_base = kOut;
  EXPECT_EQ(device_->StartGroupBy(job, nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ndp::jafar
