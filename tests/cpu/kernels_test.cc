#include "cpu/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace ndp::cpu {
namespace {

std::vector<Uop> Drain(UopStream* s) {
  std::vector<Uop> out;
  Uop u;
  while (s->Next(&u)) out.push_back(u);
  return out;
}

std::vector<int64_t> MakeValues(size_t n, uint64_t seed = 1) {
  ndp::Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, 999999);
  return v;
}

TEST(SelectScanStreamTest, BranchingUopCountScalesWithMatches) {
  auto values = MakeValues(1000);
  SelectScanStream all(values.data(), values.size(), 0, 999999, 0x1000000,
                       0x2000000, /*predicated=*/false);
  SelectScanStream none(values.data(), values.size(), -10, -1, 0x1000000,
                        0x2000000, /*predicated=*/false);
  auto uops_all = Drain(&all);
  auto uops_none = Drain(&none);
  EXPECT_EQ(all.matches(), 1000u);
  EXPECT_EQ(none.matches(), 0u);
  // The 100%-selectivity stream carries 4 extra bookkeeping µops per row.
  EXPECT_EQ(uops_all.size(), uops_none.size() + 4 * 1000);
}

TEST(SelectScanStreamTest, PredicatedUopCountIsSelectivityIndependent) {
  auto values = MakeValues(1000);
  SelectScanStream all(values.data(), values.size(), 0, 999999, 0x1000000,
                       0x2000000, /*predicated=*/true);
  SelectScanStream none(values.data(), values.size(), -10, -1, 0x1000000,
                        0x2000000, /*predicated=*/true);
  EXPECT_EQ(Drain(&all).size(), Drain(&none).size());
}

TEST(SelectScanStreamTest, MatchCountAgreesWithScalarOracle) {
  auto values = MakeValues(5000, 42);
  int64_t lo = 200000, hi = 700000;
  size_t expected = 0;
  for (int64_t v : values) {
    if (v >= lo && v <= hi) ++expected;
  }
  SelectScanStream s(values.data(), values.size(), lo, hi, 0x1000000,
                     0x2000000, /*predicated=*/false);
  Drain(&s);
  EXPECT_EQ(s.matches(), expected);
}

TEST(SelectScanStreamTest, LoadAddressesAreSequential) {
  auto values = MakeValues(16);
  SelectScanStream s(values.data(), values.size(), 0, 999999, 0x1000000,
                     0x2000000, /*predicated=*/false);
  auto uops = Drain(&s);
  uint64_t expected_addr = 0x1000000;
  for (const Uop& u : uops) {
    if (u.type == UopType::kLoad) {
      EXPECT_EQ(u.addr, expected_addr);
      expected_addr += 8;
    }
  }
  EXPECT_EQ(expected_addr, 0x1000000 + 16 * 8);
}

TEST(SelectScanStreamTest, PredicateBranchOutcomeMatchesData) {
  std::vector<int64_t> values = {5, 15, 25, 10};
  SelectScanStream s(values.data(), values.size(), 10, 20, 0x1000, 0x2000,
                     /*predicated=*/false);
  std::vector<bool> outcomes;
  for (const Uop& u : Drain(&s)) {
    if (u.type == UopType::kBranch && u.pc == kPredicateBranchPc) {
      outcomes.push_back(u.taken);
    }
  }
  EXPECT_EQ(outcomes, (std::vector<bool>{false, true, false, true}));
}

TEST(SelectScanStreamTest, LoopBranchTakenUntilLastRow) {
  std::vector<int64_t> values = {1, 2, 3};
  SelectScanStream s(values.data(), values.size(), 0, 10, 0x1000, 0x2000,
                     /*predicated=*/false);
  std::vector<bool> loop_outcomes;
  for (const Uop& u : Drain(&s)) {
    if (u.type == UopType::kBranch && u.pc == kLoopBranchPc) {
      loop_outcomes.push_back(u.taken);
    }
  }
  EXPECT_EQ(loop_outcomes, (std::vector<bool>{true, true, false}));
}

TEST(AggregateScanStreamTest, FourUopsPerRow) {
  AggregateScanStream s(100, 0x1000);
  EXPECT_EQ(Drain(&s).size(), 400u);
}

TEST(AggregateScanStreamTest, AccumulatorHasLoadDependence) {
  AggregateScanStream s(2, 0x1000);
  auto uops = Drain(&s);
  ASSERT_EQ(uops[0].type, UopType::kLoad);
  EXPECT_EQ(uops[1].type, UopType::kAlu);
  EXPECT_EQ(uops[1].dep_distance, 1);
}

TEST(ProjectGatherStreamTest, GatherAddressesFollowPositions) {
  std::vector<uint32_t> positions = {7, 0, 1023};
  ProjectGatherStream s(positions.data(), positions.size(), 0x1000, 0x100000,
                        0x200000);
  std::vector<uint64_t> gather_addrs;
  auto uops = Drain(&s);
  for (size_t i = 0; i + 1 < uops.size(); ++i) {
    if (uops[i].type == UopType::kLoad && uops[i + 1].type == UopType::kLoad) {
      // The second load of each pair is the dependent gather.
      EXPECT_EQ(uops[i + 1].dep_distance, 1);
      gather_addrs.push_back(uops[i + 1].addr);
    }
  }
  EXPECT_EQ(gather_addrs,
            (std::vector<uint64_t>{0x100000 + 7 * 8, 0x100000 + 0 * 8,
                                   0x100000 + 1023 * 8}));
}

TEST(ReplayStreamTest, ExpandsComputeAndMemoryEvents) {
  std::vector<TraceEvent> events = {
      {TraceEvent::Kind::kCompute, 3},
      {TraceEvent::Kind::kLoad, 0x1000},
      {TraceEvent::Kind::kStore, 0x2000},
      {TraceEvent::Kind::kCompute, 1},
  };
  ReplayStream s(&events);
  auto uops = Drain(&s);
  ASSERT_EQ(uops.size(), 6u);
  EXPECT_EQ(uops[0].type, UopType::kAlu);
  EXPECT_EQ(uops[3].type, UopType::kLoad);
  EXPECT_EQ(uops[3].addr, 0x1000u);
  EXPECT_EQ(uops[4].type, UopType::kStore);
  EXPECT_EQ(uops[4].addr, 0x2000u);
  EXPECT_EQ(uops[5].type, UopType::kAlu);
}

TEST(ReplayStreamTest, EmptyTrace) {
  std::vector<TraceEvent> events;
  ReplayStream s(&events);
  Uop u;
  EXPECT_FALSE(s.Next(&u));
}

}  // namespace
}  // namespace ndp::cpu
