#include "cpu/core.h"

#include <gtest/gtest.h>

#include <vector>

#include "cpu/cache.h"
#include "cpu/hierarchy.h"
#include "dram/dram_system.h"
#include "util/rng.h"

namespace ndp::cpu {
namespace {

/// Serves every access after a fixed delay; never rejects.
class PerfectMemory : public MemSink {
 public:
  PerfectMemory(sim::EventQueue* eq, sim::Tick latency)
      : eq_(eq), latency_(latency) {}
  bool TryAccess(uint64_t, bool, std::function<void(sim::Tick)> cb) override {
    if (cb) eq_->ScheduleAfter(latency_, [cb, this] { cb(eq_->Now()); });
    return true;
  }

 private:
  sim::EventQueue* eq_;
  sim::Tick latency_;
};

/// Emits a fixed vector of µops.
class VectorStream : public UopStream {
 public:
  explicit VectorStream(std::vector<Uop> uops) : uops_(std::move(uops)) {}
  bool Next(Uop* u) override {
    if (i_ >= uops_.size()) return false;
    *u = uops_[i_++];
    return true;
  }

 private:
  std::vector<Uop> uops_;
  size_t i_ = 0;
};

Uop Alu(uint8_t dep = 0, uint8_t latency = 1) {
  Uop u;
  u.type = UopType::kAlu;
  u.dep_distance = dep;
  u.latency = latency;
  return u;
}
Uop Load(uint64_t addr) {
  Uop u;
  u.type = UopType::kLoad;
  u.addr = addr;
  return u;
}
Uop Branch(bool taken, uint64_t pc = 0x500) {
  Uop u;
  u.type = UopType::kBranch;
  u.taken = taken;
  u.pc = pc;
  return u;
}

sim::Tick RunKernel(Core* core, sim::EventQueue* eq, UopStream* stream) {
  bool done = false;
  sim::Tick end = 0;
  sim::Tick start = eq->Now();
  EXPECT_TRUE(core->Run(stream, [&](sim::Tick t) {
                done = true;
                end = t;
              }).ok());
  EXPECT_TRUE(eq->RunUntilTrue([&] { return done; }));
  return end - start;
}

class CoreTest : public ::testing::Test {
 protected:
  void Build(CoreConfig cfg, sim::Tick mem_latency = 0) {
    core_.reset();  // components cancel their event nodes; queue must outlive them
    mem_.reset();
    eq_ = std::make_unique<sim::EventQueue>();
    mem_ = std::make_unique<PerfectMemory>(eq_.get(), mem_latency);
    core_ = std::make_unique<Core>(eq_.get(), cfg, mem_.get());
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<PerfectMemory> mem_;
  std::unique_ptr<Core> core_;
};

TEST_F(CoreTest, IndependentAluThroughputMatchesIssueWidth) {
  CoreConfig cfg;
  cfg.issue_width = 4;
  cfg.retire_width = 4;
  Build(cfg);
  std::vector<Uop> uops(400, Alu());
  VectorStream s(uops);
  sim::Tick dur = RunKernel(core_.get(), eq_.get(), &s);
  // 400 independent 1-cycle µops at 4-wide: ~100 cycles + pipeline slack.
  uint64_t cycles = dur / cfg.clock.period_ps();
  EXPECT_GE(cycles, 100u);
  EXPECT_LE(cycles, 110u);
  EXPECT_NEAR(core_->stats().Ipc(), 4.0, 0.5);
}

TEST_F(CoreTest, DependenceChainSerializes) {
  CoreConfig cfg;
  cfg.issue_width = 4;
  Build(cfg);
  std::vector<Uop> uops(200, Alu(/*dep=*/1));
  VectorStream s(uops);
  sim::Tick dur = RunKernel(core_.get(), eq_.get(), &s);
  uint64_t cycles = dur / cfg.clock.period_ps();
  // A chain of 200 dependent 1-cycle ops needs >= 200 cycles.
  EXPECT_GE(cycles, 200u);
  EXPECT_LE(core_->stats().Ipc(), 1.2);
}

TEST_F(CoreTest, LoadLatencyIsHiddenByMlp) {
  CoreConfig cfg;
  cfg.rob_entries = 64;
  Build(cfg, /*mem_latency=*/100000);  // 100 cycles
  // 16 independent loads: with a 64-entry window all overlap; total time
  // should be ~1 latency, not 16.
  std::vector<Uop> uops;
  for (int i = 0; i < 16; ++i) uops.push_back(Load(static_cast<uint64_t>(i) * 64));
  VectorStream s(uops);
  sim::Tick dur = RunKernel(core_.get(), eq_.get(), &s);
  EXPECT_LT(dur, 2 * 100000u);
}

TEST_F(CoreTest, SmallRobLimitsMlp) {
  CoreConfig cfg;
  cfg.rob_entries = 4;
  cfg.issue_width = 1;
  Build(cfg, /*mem_latency=*/100000);
  std::vector<Uop> uops;
  for (int i = 0; i < 16; ++i) uops.push_back(Load(static_cast<uint64_t>(i) * 64));
  VectorStream s(uops);
  sim::Tick dur = RunKernel(core_.get(), eq_.get(), &s);
  // At most 4 in flight: at least 4 serialized memory latencies.
  EXPECT_GE(dur, 4 * 100000u);
}

TEST_F(CoreTest, MispredictsAddStallCycles) {
  CoreConfig cfg;
  cfg.branch.mispredict_penalty_cycles = 20;
  Build(cfg);
  // Random branch outcomes defeat any predictor (gshare would learn a simple
  // alternating pattern perfectly, so use genuine coin flips).
  ndp::Rng rng(11);
  std::vector<Uop> random_branches;
  for (int i = 0; i < 100; ++i) random_branches.push_back(Branch(rng.NextBool(0.5)));
  // Constant outcomes are learned immediately.
  std::vector<Uop> constant(100, Branch(true));

  VectorStream s1(random_branches);
  sim::Tick dur_alt = RunKernel(core_.get(), eq_.get(), &s1);
  uint64_t mispredicts = core_->stats().mispredicts;
  EXPECT_GT(mispredicts, 30u);

  core_->ResetStats();
  core_->predictor().Reset();
  VectorStream s2(constant);
  sim::Tick dur_const = RunKernel(core_.get(), eq_.get(), &s2);
  EXPECT_LT(core_->stats().mispredicts, 15u);  // gshare warm-up only
  EXPECT_GT(dur_alt, dur_const + 30 * 20 * cfg.clock.period_ps());
}

TEST_F(CoreTest, RejectsConcurrentKernels) {
  Build(CoreConfig{});
  std::vector<Uop> uops(10, Alu());
  VectorStream s1(uops), s2(uops);
  ASSERT_TRUE(core_->Run(&s1, nullptr).ok());
  EXPECT_EQ(core_->Run(&s2, nullptr).code(), StatusCode::kFailedPrecondition);
  eq_->RunUntilEmpty();
  EXPECT_FALSE(core_->busy());
}

TEST_F(CoreTest, BackToBackKernelsOnSameCore) {
  Build(CoreConfig{});
  std::vector<Uop> uops(50, Alu());
  VectorStream s1(uops);
  (void)RunKernel(core_.get(), eq_.get(), &s1);
  VectorStream s2(uops);
  (void)RunKernel(core_.get(), eq_.get(), &s2);
  EXPECT_EQ(core_->stats().uops_retired, 100u);
}

TEST_F(CoreTest, StoresDrainBeforeCompletion) {
  Build(CoreConfig{});
  std::vector<Uop> uops;
  for (int i = 0; i < 20; ++i) {
    Uop u;
    u.type = UopType::kStore;
    u.addr = static_cast<uint64_t>(i) * 64;
    uops.push_back(u);
  }
  VectorStream s(uops);
  (void)RunKernel(core_.get(), eq_.get(), &s);
  EXPECT_EQ(core_->stats().stores, 20u);
  EXPECT_FALSE(core_->busy());
}

TEST_F(CoreTest, EndToEndWithCachesAndDram) {
  // Integration: a small select-like loop through a real L1 + DRAM stack.
  sim::EventQueue eq;
  dram::DramOrganization org;
  org.rows_per_bank = 256;
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous,
                        dram::ControllerConfig{});
  CacheConfig l1;
  l1.size_bytes = 4096;
  l1.ways = 4;
  CacheHierarchy hier(&eq, sim::ClockDomain(1000), {l1}, &dram, 5000);
  Core core(&eq, CoreConfig{}, hier.top());

  std::vector<Uop> uops;
  for (int i = 0; i < 64; ++i) {
    uops.push_back(Load(static_cast<uint64_t>(i) * 8));
    uops.push_back(Alu(1));
  }
  VectorStream s(uops);
  sim::Tick dur = RunKernel(&core, &eq, &s);
  EXPECT_GT(dur, 0u);
  // 64 loads over 8 lines: 8 DRAM fills. The OoO window issues loads to a
  // line while its fill is still in flight, so the non-miss accesses split
  // between plain hits and MSHR merges.
  const auto& cs = hier.level(0).stats();
  EXPECT_EQ(cs.misses, 8u);
  EXPECT_EQ(cs.hits + cs.mshr_merges, 56u);
  EXPECT_EQ(dram.TotalCounters().reads_served, 8u);
}

}  // namespace
}  // namespace ndp::cpu
