#include "cpu/branch_predictor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::cpu {
namespace {

TEST(BranchPredictorTest, LearnsAlwaysTaken) {
  BranchPredictor bp(BranchPredictorConfig{});
  for (int i = 0; i < 100; ++i) bp.PredictAndUpdate(0x400, true);
  // gshare warm-up touches one table entry per distinct history pattern (~9
  // for an all-taken stream with 8 history bits); after that it is perfect.
  EXPECT_LE(bp.mispredicts(), 12u);
  uint64_t after_warmup = bp.mispredicts();
  for (int i = 0; i < 1000; ++i) bp.PredictAndUpdate(0x400, true);
  EXPECT_EQ(bp.mispredicts(), after_warmup);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken) {
  BranchPredictor bp(BranchPredictorConfig{});
  for (int i = 0; i < 100; ++i) bp.PredictAndUpdate(0x400, false);
  EXPECT_LE(bp.mispredicts(), 1u);
}

TEST(BranchPredictorTest, RandomBranchMispredictsHeavily) {
  BranchPredictorConfig cfg;
  cfg.history_bits = 0;  // bimodal: no history to (uselessly) exploit
  BranchPredictor bp(cfg);
  Rng rng(3);
  const int n = 20000;
  for (int i = 0; i < n; ++i) bp.PredictAndUpdate(0x400, rng.NextBool(0.5));
  double rate = static_cast<double>(bp.mispredicts()) / n;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

// The mispredict-vs-selectivity shape that drives the paper's §3.2 argument:
// rate must be low at the extremes and peak mid-range.
class SelectivityMispredictTest : public ::testing::TestWithParam<double> {};

TEST_P(SelectivityMispredictTest, RateBoundedByTwiceP1MinusP) {
  double p = GetParam();
  BranchPredictorConfig cfg;
  cfg.history_bits = 0;
  BranchPredictor bp(cfg);
  Rng rng(17);
  const int n = 50000;
  for (int i = 0; i < n; ++i) bp.PredictAndUpdate(0x400, rng.NextBool(p));
  double rate = static_cast<double>(bp.mispredicts()) / n;
  double q = std::min(p, 1 - p);
  // A 2-bit counter on a Bernoulli stream mispredicts at most ~2q(1-q)+eps
  // and at least ~q - eps.
  EXPECT_LE(rate, 2 * q * (1 - q) + 0.05);
  if (q > 0.01) {
    EXPECT_GE(rate, q * 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelectivityMispredictTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

TEST(BranchPredictorTest, DistinctPcsDoNotAlias) {
  BranchPredictor bp(BranchPredictorConfig{});
  // Loop branch always taken; predicate branch always not-taken. With
  // separate table entries both should be learned.
  for (int i = 0; i < 200; ++i) {
    bp.PredictAndUpdate(0x400100, false);
    bp.PredictAndUpdate(0x400180, true);
  }
  EXPECT_LE(bp.mispredicts(), 10u);
}

TEST(BranchPredictorTest, ResetRestoresInitialState) {
  BranchPredictor bp(BranchPredictorConfig{});
  for (int i = 0; i < 50; ++i) bp.PredictAndUpdate(0x400, true);
  bp.Reset();
  EXPECT_EQ(bp.mispredicts(), 0u);
  EXPECT_EQ(bp.correct(), 0u);
  // First prediction after reset is weakly-not-taken.
  EXPECT_FALSE(bp.PredictAndUpdate(0x400, true));
}

}  // namespace
}  // namespace ndp::cpu
