#include "cpu/cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "cpu/hierarchy.h"
#include "dram/dram_system.h"

namespace ndp::cpu {
namespace {

/// A MemSink with a fixed latency, for testing a cache in isolation.
class FixedLatencySink : public MemSink {
 public:
  FixedLatencySink(sim::EventQueue* eq, sim::Tick latency)
      : eq_(eq), latency_(latency) {}

  bool TryAccess(uint64_t addr, bool is_write,
                 std::function<void(sim::Tick)> cb) override {
    ++accesses_;
    if (is_write) ++writes_;
    if (reject_next_ > 0) {
      --reject_next_;
      --accesses_;
      if (is_write) --writes_;
      return false;
    }
    if (cb) {
      eq_->ScheduleAfter(latency_, [cb = std::move(cb), this] { cb(eq_->Now()); });
    }
    addrs_.push_back(addr);
    return true;
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t writes() const { return writes_; }
  const std::vector<uint64_t>& addrs() const { return addrs_; }
  void RejectNext(int n) { reject_next_ = n; }

 private:
  sim::EventQueue* eq_;
  sim::Tick latency_;
  uint64_t accesses_ = 0;
  uint64_t writes_ = 0;
  int reject_next_ = 0;
  std::vector<uint64_t> addrs_;
};

class CacheTest : public ::testing::Test {
 protected:
  void Build(CacheConfig cfg, sim::Tick mem_latency = 50000) {
    cache_.reset();  // components cancel their event nodes; queue must outlive them
    sink_.reset();
    eq_ = std::make_unique<sim::EventQueue>();
    sink_ = std::make_unique<FixedLatencySink>(eq_.get(), mem_latency);
    cache_ = std::make_unique<Cache>(eq_.get(), sim::ClockDomain(1000), cfg,
                                     sink_.get());
  }

  sim::Tick TimedAccess(uint64_t addr, bool is_write = false) {
    bool done = false;
    sim::Tick start = eq_->Now(), end = 0;
    while (!cache_->TryAccess(addr, is_write, [&](sim::Tick t) {
      done = true;
      end = t;
    })) {
      eq_->RunUntil(eq_->Now() + 1000);
    }
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<FixedLatencySink> sink_;
  std::unique_ptr<Cache> cache_;
};

TEST_F(CacheTest, MissThenHit) {
  CacheConfig cfg;
  cfg.size_bytes = 4096;
  cfg.ways = 4;
  cfg.hit_latency_cycles = 2;
  Build(cfg);
  sim::Tick miss = TimedAccess(0);
  EXPECT_GE(miss, 50000u);
  sim::Tick hit = TimedAccess(8);  // same line
  EXPECT_EQ(hit, 2000u);
  EXPECT_EQ(cache_->stats().hits, 1u);
  EXPECT_EQ(cache_->stats().misses, 1u);
}

TEST_F(CacheTest, LruEviction) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 64;  // one set, two ways
  cfg.ways = 2;
  Build(cfg);
  (void)TimedAccess(0);
  (void)TimedAccess(64);
  (void)TimedAccess(0);    // touch line 0: line 64 becomes LRU
  (void)TimedAccess(128);  // evicts line 64
  EXPECT_TRUE(cache_->Contains(0));
  EXPECT_FALSE(cache_->Contains(64));
  EXPECT_TRUE(cache_->Contains(128));
}

TEST_F(CacheTest, DirtyEvictionWritesBack) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 64;
  cfg.ways = 2;
  Build(cfg);
  (void)TimedAccess(0, /*is_write=*/true);
  (void)TimedAccess(64);
  (void)TimedAccess(128);  // evicts dirty line 0
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return cache_->Quiescent(); }));
  EXPECT_EQ(cache_->stats().writebacks, 1u);
  EXPECT_EQ(sink_->writes(), 1u);
}

TEST_F(CacheTest, CleanEvictionDoesNotWriteBack) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 64;
  cfg.ways = 2;
  Build(cfg);
  (void)TimedAccess(0);
  (void)TimedAccess(64);
  (void)TimedAccess(128);
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return cache_->Quiescent(); }));
  EXPECT_EQ(cache_->stats().writebacks, 0u);
  EXPECT_EQ(sink_->writes(), 0u);
}

TEST_F(CacheTest, MshrMergesConcurrentMissesToSameLine) {
  CacheConfig cfg;
  Build(cfg);
  int done = 0;
  ASSERT_TRUE(cache_->TryAccess(0, false, [&](sim::Tick) { ++done; }));
  ASSERT_TRUE(cache_->TryAccess(8, false, [&](sim::Tick) { ++done; }));
  ASSERT_TRUE(cache_->TryAccess(16, false, [&](sim::Tick) { ++done; }));
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done == 3; }));
  EXPECT_EQ(sink_->accesses(), 1u);  // one fill serves all three
  EXPECT_EQ(cache_->stats().mshr_merges, 2u);
}

TEST_F(CacheTest, MshrLimitCausesRejection) {
  CacheConfig cfg;
  cfg.mshrs = 2;
  Build(cfg);
  ASSERT_TRUE(cache_->TryAccess(0, false, nullptr));
  ASSERT_TRUE(cache_->TryAccess(64, false, nullptr));
  EXPECT_FALSE(cache_->TryAccess(128, false, nullptr));
  EXPECT_EQ(cache_->stats().rejections, 1u);
}

TEST_F(CacheTest, PrefetcherFetchesNextLines) {
  CacheConfig cfg;
  cfg.prefetch_degree = 2;
  cfg.mshrs = 8;
  Build(cfg);
  (void)TimedAccess(0);
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return cache_->Quiescent(); }));
  EXPECT_TRUE(cache_->Contains(64));
  EXPECT_TRUE(cache_->Contains(128));
  EXPECT_EQ(cache_->stats().prefetches_issued, 2u);
  // A demand hit on a prefetched line is counted.
  (void)TimedAccess(64);
  EXPECT_EQ(cache_->stats().prefetch_hits, 1u);
}

TEST_F(CacheTest, DownstreamRejectionIsRetried) {
  CacheConfig cfg;
  Build(cfg);
  sink_->RejectNext(3);
  sim::Tick lat = TimedAccess(0);
  // Three rejected attempts at 1-cycle retry intervals, then the fill.
  EXPECT_GE(lat, 50000u + 3000u);
  EXPECT_TRUE(cache_->Contains(0));
}

TEST_F(CacheTest, HierarchyL1MissL2HitFasterThanMemory) {
  sim::EventQueue eq;
  dram::ControllerConfig mc_cfg;
  dram::DramOrganization org;
  org.rows_per_bank = 256;
  dram::DramSystem dram(&eq, dram::DramTiming::DDR3_1600(), org,
                        dram::InterleaveScheme::kContiguous, mc_cfg);
  CacheConfig l1;
  l1.name = "L1";
  l1.size_bytes = 1024;
  l1.ways = 2;
  l1.hit_latency_cycles = 2;
  CacheConfig l2;
  l2.name = "L2";
  l2.size_bytes = 64 * 1024;
  l2.ways = 8;
  l2.hit_latency_cycles = 10;
  CacheHierarchy hier(&eq, sim::ClockDomain(1000), {l1, l2}, &dram, 10000);
  ASSERT_EQ(hier.num_levels(), 2u);

  auto timed = [&](uint64_t addr) {
    bool done = false;
    sim::Tick start = eq.Now(), end = 0;
    EXPECT_TRUE(hier.top()->TryAccess(addr, false, [&](sim::Tick t) {
      done = true;
      end = t;
    }));
    EXPECT_TRUE(eq.RunUntilTrue([&] { return done; }));
    return end - start;
  };

  sim::Tick cold = timed(0);       // miss everywhere -> DRAM
  // Evict line 0 from tiny L1 but keep it in L2.
  (void)timed(1024);
  (void)timed(2048);
  ASSERT_FALSE(hier.level(0).Contains(0));
  ASSERT_TRUE(hier.level(1).Contains(0));
  sim::Tick l2_hit = timed(0);
  sim::Tick l1_hit = timed(8);
  EXPECT_LT(l2_hit, cold);
  EXPECT_LT(l1_hit, l2_hit);
}

}  // namespace
}  // namespace ndp::cpu
