// Overflow-heap -> wheel cascade stress tests. The two-level wheel promotes
// overflow events into L0/L1 when the cursor enters a new span (EnterSpan);
// these tests aim specifically at that cascade: events far past the horizon
// that must survive several promotions, and intrusive ticking nodes that
// re-arm across a cascade boundary — all cross-checked event-for-event
// against the seed heap kernel (sim/reference_queue.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/reference_queue.h"
#include "util/rng.h"

namespace ndp::sim {
namespace {

using ExecLog = std::vector<std::pair<uint64_t, Tick>>;  // (event id, time)

constexpr Tick kHorizonTicks = EventQueue::kSpanTicks * EventQueue::kL1Slots;

/// Schedules `count` events spread far beyond the wheel horizon (several
/// multiples, with deliberate ties and horizon-boundary times) plus a handful
/// of near-term events, then drains. Shape depends only on `seed`.
template <typename Queue>
ExecLog RunFarHorizonSchedule(uint64_t seed, int count) {
  Queue q;
  ExecLog log;
  Rng rng(seed);
  Tick prev = 0;
  for (int i = 0; i < count; ++i) {
    uint64_t id = static_cast<uint64_t>(i);
    Tick when;
    switch (rng.NextBounded(6)) {
      case 0:  // near term: lands in the wheel directly
        when = rng.NextBounded(4096);
        break;
      case 1:  // 1-8 horizons out: needs at least one promotion
        when = (1 + rng.NextBounded(8)) * kHorizonTicks + rng.NextBounded(512);
        break;
      case 2:  // exactly on / one tick around a horizon boundary
        when = (1 + rng.NextBounded(8)) * kHorizonTicks - 1 +
               rng.NextBounded(3);
        break;
      case 3:  // deep overflow: ~64 horizons out
        when = rng.NextBounded(64) * kHorizonTicks + rng.NextBounded(1 << 20);
        break;
      case 4:  // exact-time tie with the previous event
        when = prev;
        break;
      default:  // span boundary within the first horizon
        when = (1 + rng.NextBounded(250)) * EventQueue::kSpanTicks -
               rng.NextBounded(2);
        break;
    }
    prev = when;
    q.ScheduleAt(when, [&log, &q, id] { log.emplace_back(id, q.Now()); });
  }
  q.RunUntilEmpty();
  return log;
}

TEST(CascadeTest, FarPastHorizonEventsMatchReferenceOrder) {
  for (uint64_t seed : {1u, 7u, 1234u, 99991u}) {
    ExecLog wheel = RunFarHorizonSchedule<EventQueue>(seed, 500);
    ExecLog ref = RunFarHorizonSchedule<ReferenceEventQueue>(seed, 500);
    ASSERT_EQ(wheel.size(), ref.size()) << "seed " << seed;
    EXPECT_EQ(wheel, ref) << "seed " << seed;
  }
}

TEST(CascadeTest, ChainedReschedulesAcrossCascades) {
  // Each fired event reschedules itself one near-horizon stride ahead, so a
  // single logical event crosses many EnterSpan cascades; interleave several
  // chains at co-prime strides to force ties and slot collisions.
  auto run = [](auto* q) {
    ExecLog log;
    constexpr int kChains = 5;
    constexpr int kHops = 40;
    const Tick strides[kChains] = {
        kHorizonTicks - 1, kHorizonTicks + 1, kHorizonTicks / 2 + 3,
        2 * kHorizonTicks + EventQueue::kSpanTicks, EventQueue::kSpanTicks};
    std::function<void(uint64_t, int)> arm = [&](uint64_t chain, int hop) {
      log.emplace_back(chain * 1000 + static_cast<uint64_t>(hop), q->Now());
      if (hop + 1 < kHops) {
        q->ScheduleAt(q->Now() + strides[chain],
                      [&arm, chain, hop] { arm(chain, hop + 1); });
      }
    };
    for (uint64_t c = 0; c < kChains; ++c) {
      q->ScheduleAt(c * 7, [&arm, c] { arm(c, 0); });
    }
    q->RunUntilEmpty();
    return log;
  };
  EventQueue wheel;
  ReferenceEventQueue ref;
  ExecLog wheel_log = run(&wheel);
  ExecLog ref_log = run(&ref);
  ASSERT_EQ(wheel_log.size(), ref_log.size());
  EXPECT_EQ(wheel_log, ref_log);
}

/// Intrusive periodic ticker that logs and re-arms itself `hops` times.
class TestTicker : public EventNode {
 public:
  TestTicker(EventQueue* q, ExecLog* log, uint64_t id, Tick period, int hops)
      : q_(q), log_(log), id_(id), period_(period), hops_(hops) {}

 protected:
  void Fire() override {
    log_->emplace_back(id_, q_->Now());
    if (--hops_ > 0) q_->Schedule(q_->Now() + period_, this);
  }

 private:
  EventQueue* q_;
  ExecLog* log_;
  uint64_t id_;
  Tick period_;
  int hops_;
};

TEST(CascadeTest, RearmedTickingNodesStraddlingCascadesMatchReference) {
  // Intrusive nodes whose periods straddle span and horizon boundaries, plus
  // pooled-closure background noise that forces cursor movement between
  // ticks. The reference runs the same schedule with closures (its events
  // are always closures); the (id, time) logs must be identical.
  ExecLog wheel_log;
  {
    EventQueue q;
    TestTicker t0(&q, &wheel_log, 0, EventQueue::kSpanTicks - 1, 600);
    TestTicker t1(&q, &wheel_log, 1, EventQueue::kSpanTicks + 1, 600);
    TestTicker t2(&q, &wheel_log, 2, kHorizonTicks / 3 + 11, 12);
    q.Schedule(1, &t0);
    q.Schedule(1, &t1);  // exact-time tie with t0 at t=1
    q.Schedule(2, &t2);
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
      uint64_t id = 100 + static_cast<uint64_t>(i);
      q.ScheduleAt(rng.NextBounded(2 * kHorizonTicks),
                   [&wheel_log, &q, id] { wheel_log.emplace_back(id, q.Now()); });
    }
    q.RunUntilEmpty();
  }
  ExecLog ref_log;
  {
    ReferenceEventQueue q;
    std::function<void(uint64_t, Tick, int)> tick = [&](uint64_t id,
                                                        Tick period, int hops) {
      ref_log.emplace_back(id, q.Now());
      if (hops - 1 > 0) {
        q.ScheduleAt(q.Now() + period,
                     [&tick, id, period, hops] { tick(id, period, hops - 1); });
      }
    };
    q.ScheduleAt(1, [&tick] { tick(0, EventQueue::kSpanTicks - 1, 600); });
    q.ScheduleAt(1, [&tick] { tick(1, EventQueue::kSpanTicks + 1, 600); });
    q.ScheduleAt(2, [&tick] { tick(2, kHorizonTicks / 3 + 11, 12); });
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
      uint64_t id = 100 + static_cast<uint64_t>(i);
      q.ScheduleAt(rng.NextBounded(2 * kHorizonTicks),
                   [&ref_log, &q, id] { ref_log.emplace_back(id, q.Now()); });
    }
    q.RunUntilEmpty();
  }
  ASSERT_EQ(wheel_log.size(), ref_log.size());
  EXPECT_EQ(wheel_log, ref_log);
}

TEST(CascadeTest, ChunkedRunUntilThroughCascadesMatchesReference) {
  // RunUntil leaves the cursor mid-wheel with Now() ahead of it; re-entering
  // the cascade from that state must not reorder anything.
  auto run = [](auto* q) {
    ExecLog log;
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      uint64_t id = static_cast<uint64_t>(i);
      q->ScheduleAt(rng.NextBounded(5 * kHorizonTicks),
                    [&log, q, id] { log.emplace_back(id, q->Now()); });
    }
    Rng chunks(13);
    Tick t = 0;
    while (!q->empty()) {
      t += 1 + chunks.NextBounded(kHorizonTicks);
      q->RunUntil(t);
    }
    return log;
  };
  EventQueue wheel;
  ReferenceEventQueue ref;
  EXPECT_EQ(run(&wheel), run(&ref));
}

}  // namespace
}  // namespace ndp::sim
