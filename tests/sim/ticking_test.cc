#include "sim/ticking.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndp::sim {
namespace {

// Ticks for a fixed number of edges, recording the tick of each.
class CountingComponent : public TickingComponent {
 public:
  CountingComponent(EventQueue* eq, ClockDomain clock, int budget)
      : TickingComponent(eq, clock), budget_(budget) {}

  void AddBudget(int n) { budget_ += n; }

  std::vector<uint64_t> edges;

 protected:
  bool Tick() override {
    edges.push_back(event_queue()->Now());
    return static_cast<int>(edges.size()) < budget_;
  }

 private:
  int budget_;
};

TEST(TickingTest, TicksOnConsecutiveClockEdges) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 4);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200, 300}));
}

TEST(TickingTest, GoesIdleAndCanBeRewoken) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 2);
  c.Wake();
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 2u);
  // Re-wake later: resumes at the next edge at or after the wake time.
  c.AddBudget(2);
  eq.ScheduleAt(1050, [&] { c.Wake(); });
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 4u);
  EXPECT_EQ(c.edges[2], 1100u);
  EXPECT_EQ(c.edges[3], 1200u);
}

TEST(TickingTest, DoubleWakeDoesNotDoubleTick) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 3);
  c.Wake();
  c.Wake();
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200}));
}

TEST(TickingTest, WakeOffEdgeAlignsToNextEdge) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 1);
  eq.ScheduleAt(250, [&] { c.Wake(); });
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 1u);
  EXPECT_EQ(c.edges[0], 300u);
}

TEST(TickingTest, CurrentCycleTracksClock) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(250), 3);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.CurrentCycle(), 2u);  // now == 500, period 250
}

}  // namespace
}  // namespace ndp::sim
