#include "sim/ticking.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndp::sim {
namespace {

// Ticks for a fixed number of edges, recording the tick of each.
class CountingComponent : public TickingComponent {
 public:
  CountingComponent(EventQueue* eq, ClockDomain clock, int budget)
      : TickingComponent(eq, clock), budget_(budget) {}

  void AddBudget(int n) { budget_ += n; }

  std::vector<uint64_t> edges;

 protected:
  bool Tick() override {
    edges.push_back(event_queue()->Now());
    return static_cast<int>(edges.size()) < budget_;
  }

 private:
  int budget_;
};

TEST(TickingTest, TicksOnConsecutiveClockEdges) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 4);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200, 300}));
}

TEST(TickingTest, GoesIdleAndCanBeRewoken) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 2);
  c.Wake();
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 2u);
  // Re-wake later: resumes at the next edge at or after the wake time.
  c.AddBudget(2);
  eq.ScheduleAt(1050, [&] { c.Wake(); });
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 4u);
  EXPECT_EQ(c.edges[2], 1100u);
  EXPECT_EQ(c.edges[3], 1200u);
}

TEST(TickingTest, DoubleWakeDoesNotDoubleTick) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 3);
  c.Wake();
  c.Wake();
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200}));
}

TEST(TickingTest, WakeOffEdgeAlignsToNextEdge) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 1);
  eq.ScheduleAt(250, [&] { c.Wake(); });
  eq.RunUntilEmpty();
  ASSERT_EQ(c.edges.size(), 1u);
  EXPECT_EQ(c.edges[0], 300u);
}

TEST(TickingTest, CurrentCycleTracksClock) {
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(250), 3);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.CurrentCycle(), 2u);  // now == 500, period 250
}

// Calls Wake() from inside Tick(), then returns `tick_result`: the re-arm
// must land on the NEXT edge (never the current one) and never double-book.
class SelfWakingComponent : public TickingComponent {
 public:
  SelfWakingComponent(EventQueue* eq, ClockDomain clock, int budget,
                      bool tick_result)
      : TickingComponent(eq, clock),
        budget_(budget),
        tick_result_(tick_result) {}

  std::vector<uint64_t> edges;

 protected:
  bool Tick() override {
    edges.push_back(event_queue()->Now());
    if (static_cast<int>(edges.size()) >= budget_) return false;
    Wake();  // re-arm from inside the edge being processed
    return tick_result_;
  }

 private:
  int budget_;
  bool tick_result_;
};

TEST(TickingTest, WakeInsideTickWithFalseReturnStillTicksNextEdge) {
  // Tick() arms itself and returns false ("idle"): the explicit Wake() wins,
  // and it must target the next edge, not re-fire the current one.
  EventQueue eq;
  SelfWakingComponent c(&eq, ClockDomain(100), 3, /*tick_result=*/false);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200}));
}

TEST(TickingTest, WakeInsideTickWithTrueReturnTicksOncePerEdge) {
  // Tick() arms itself AND returns true: the two re-arm paths must collapse
  // into a single next-edge event (one tick per edge, no double fire).
  EventQueue eq;
  SelfWakingComponent c(&eq, ClockDomain(100), 3, /*tick_result=*/true);
  c.Wake();
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100, 200}));
}

TEST(TickingTest, SameTickWakeAfterIdleDoesNotRefireEdge) {
  // The component goes idle on an edge; another event at that same tick
  // wakes it. The wake must schedule the NEXT edge — the current edge was
  // already processed (the node's when() remembers it).
  EventQueue eq;
  CountingComponent c(&eq, ClockDomain(100), 1);
  c.Wake();
  eq.ScheduleAt(0, [&] {
    c.AddBudget(1);
    c.Wake();  // runs at tick 0, after (or before) c's edge at 0
  });
  eq.RunUntilEmpty();
  EXPECT_EQ(c.edges, (std::vector<uint64_t>{0, 100}));
}

TEST(TickingTest, DestructorCancelsPendingTick) {
  EventQueue eq;
  {
    CountingComponent c(&eq, ClockDomain(100), 4);
    c.Wake();
    ASSERT_EQ(eq.size(), 1u);
  }
  EXPECT_TRUE(eq.empty());  // node cancelled; no dangling event fires
  eq.RunUntilEmpty();
}

TEST(TickingTest, MemberEventNodeReschedulesWithoutAllocation) {
  struct Widget {
    explicit Widget(EventQueue* q) : eq(q) {}
    void Poke() {
      fired.push_back(eq->Now());
      if (fired.size() < 3) eq->Schedule(eq->Now() + 50, &node);
    }
    EventQueue* eq;
    std::vector<uint64_t> fired;
    MemberEventNode<Widget, &Widget::Poke> node{this};
  };
  EventQueue eq;
  Widget w(&eq);
  eq.Schedule(10, &w.node);
  eq.RunUntilEmpty();
  EXPECT_EQ(w.fired, (std::vector<uint64_t>{10, 60, 110}));
  EXPECT_FALSE(w.node.scheduled());
}

}  // namespace
}  // namespace ndp::sim
