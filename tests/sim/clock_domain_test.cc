#include <gtest/gtest.h>

#include "sim/time.h"

namespace ndp::sim {
namespace {

TEST(ClockDomainTest, CycleTickRoundTrip) {
  ClockDomain c(1250);  // 800 MHz DDR3 bus
  EXPECT_EQ(c.CycleToTick(0), 0u);
  EXPECT_EQ(c.CycleToTick(4), 5000u);
  EXPECT_EQ(c.TickToCycle(5000), 4u);
  EXPECT_EQ(c.TickToCycle(6249), 4u);
  EXPECT_EQ(c.TickToCycle(6250), 5u);
}

TEST(ClockDomainTest, NextEdgeAtOrAfter) {
  ClockDomain c(1000);  // 1 GHz
  EXPECT_EQ(c.NextEdgeAtOrAfter(0), 0u);
  EXPECT_EQ(c.NextEdgeAtOrAfter(1), 1000u);
  EXPECT_EQ(c.NextEdgeAtOrAfter(1000), 1000u);
  EXPECT_EQ(c.NextEdgeAtOrAfter(1001), 2000u);
}

TEST(ClockDomainTest, NextEdgeAfterIsStrict) {
  ClockDomain c(1000);
  EXPECT_EQ(c.NextEdgeAfter(0), 1000u);
  EXPECT_EQ(c.NextEdgeAfter(999), 1000u);
  EXPECT_EQ(c.NextEdgeAfter(1000), 2000u);
}

TEST(ClockDomainTest, FromMHz) {
  EXPECT_EQ(ClockDomain::FromMHz(1000).period_ps(), 1000u);
  EXPECT_EQ(ClockDomain::FromMHz(2000).period_ps(), 500u);
  EXPECT_EQ(ClockDomain::FromMHz(800).period_ps(), 1250u);
  EXPECT_EQ(ClockDomain::FromMHz(200).period_ps(), 5000u);
}

TEST(ClockDomainTest, FrequencyGhz) {
  EXPECT_DOUBLE_EQ(ClockDomain(500).frequency_ghz(), 2.0);
  EXPECT_DOUBLE_EQ(ClockDomain(1250).frequency_ghz(), 0.8);
}

TEST(ClockDomainTest, PaperClockRelationshipsHold) {
  // §2.2: JAFAR's clock is twice the data bus clock; the internal array clock
  // is a quarter of the bus clock.
  ClockDomain bus(1250);
  ClockDomain jafar(bus.period_ps() / 2);
  ClockDomain array(bus.period_ps() * 4);
  EXPECT_DOUBLE_EQ(jafar.frequency_ghz(), 1.6);
  EXPECT_DOUBLE_EQ(array.frequency_ghz(), 0.2);
  // One 8-word burst occupies 4 bus cycles = 8 JAFAR cycles: one word/cycle.
  EXPECT_EQ(bus.CycleToTick(4), jafar.CycleToTick(8));
}

}  // namespace
}  // namespace ndp::sim
