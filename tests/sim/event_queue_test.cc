#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndp::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(30, [&] { order.push_back(3); });
  eq.ScheduleAt(10, [&] { order.push_back(1); });
  eq.ScheduleAt(20, [&] { order.push_back(2); });
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.Now(), 30u);
}

TEST(EventQueueTest, FifoTieBreakAtSameTick) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eq.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue eq;
  Tick fired_at = 0;
  eq.ScheduleAt(50, [&] {
    eq.ScheduleAfter(25, [&] { fired_at = eq.Now(); });
  });
  eq.RunUntilEmpty();
  EXPECT_EQ(fired_at, 75u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) eq.ScheduleAfter(5, chain);
  };
  eq.ScheduleAt(0, chain);
  uint64_t executed = eq.RunUntilEmpty();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(eq.Now(), 45u);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue eq;
  int fired = 0;
  eq.ScheduleAt(10, [&] { ++fired; });
  eq.ScheduleAt(20, [&] { ++fired; });
  eq.ScheduleAt(30, [&] { ++fired; });
  eq.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.Now(), 20u);
  eq.RunUntilEmpty();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, RunUntilTrueStopsOnPredicate) {
  EventQueue eq;
  int x = 0;
  for (int i = 1; i <= 10; ++i) {
    eq.ScheduleAt(static_cast<Tick>(i * 10), [&x] { ++x; });
  }
  bool satisfied = eq.RunUntilTrue([&] { return x >= 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(x, 4);
  EXPECT_EQ(eq.Now(), 40u);
}

TEST(EventQueueTest, RunUntilTrueReportsFailureOnDrain) {
  EventQueue eq;
  eq.ScheduleAt(5, [] {});
  bool satisfied = eq.RunUntilTrue([] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue eq;
  eq.ScheduleAt(100, [] {});
  eq.RunUntilEmpty();
  EXPECT_DEATH(eq.ScheduleAt(50, [] {}), "cannot schedule into the past");
}

}  // namespace
}  // namespace ndp::sim
