// PartitionSet unit tests: the conservative epoch protocol (lookahead
// delivery, fixed drain order, no-past delivery), thread-count invariance of
// the execution schedule, the SPSC port queues, and the per-partition stats
// mounts. Every test that sweeps NDP_SIM_THREADS builds a fresh PartitionSet
// per setting — the env var is read once, at construction.
#include "sim/partition.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/spsc.h"
#include "util/stats_registry.h"

namespace ndp::sim {
namespace {

/// RAII env override; restores the previous value (or unset state) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

TEST(SpscQueueTest, FifoThroughRingWraparound) {
  SpscQueue<int> q(/*capacity_pow2=*/4);
  int out = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) q.Push(round * 10 + i);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.Pop(&out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_FALSE(q.Pop(&out));
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, SpillPreservesFifoPastCapacity) {
  SpscQueue<int> q(/*capacity_pow2=*/4);
  // Push far beyond the ring: the tail spills, and once spilling starts all
  // later pushes must spill too, or FIFO order would interleave.
  for (int i = 0; i < 100; ++i) q.Push(i);
  int out = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(q.Empty());
  // After a full drain, the ring path is active again.
  q.Push(777);
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 777);
}

TEST(SpscQueueTest, TryPushShedsAtCapacityWithoutSpilling) {
  SpscQueue<int> q(/*capacity_pow2=*/4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  // Full ring: TryPush refuses instead of growing the spill deque.
  EXPECT_FALSE(q.TryPush(99));
  EXPECT_FALSE(q.TryPush(100));
  int out = 0;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 0);
  // One slot freed, one accepted — still bounded, still FIFO.
  EXPECT_TRUE(q.TryPush(4));
  EXPECT_FALSE(q.TryPush(5));
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, TryPushRefusesWhileSpillInProgress) {
  SpscQueue<int> q(/*capacity_pow2=*/4);
  for (int i = 0; i < 6; ++i) q.Push(i);  // 2 past capacity -> spilling
  // A spill is in progress: TryPush must refuse even after ring pops, or
  // accepted entries would overtake the spilled tail and break FIFO.
  int out = 0;
  ASSERT_TRUE(q.Pop(&out));
  EXPECT_FALSE(q.TryPush(99));
  for (int i = 1; i < 6; ++i) ASSERT_TRUE(q.Pop(&out));
  EXPECT_TRUE(q.Empty());
  // Spill drained: the bounded path is live again.
  EXPECT_TRUE(q.TryPush(7));
}

TEST(PartitionSetTest, SendDeliversAfterLookahead) {
  PartitionSet set(2, /*lookahead_ps=*/100, /*cycle_ps=*/100);
  std::vector<Tick> deliveries;
  set.queue(0).ScheduleAt(50, [&] {
    set.Send(0, 1, /*extra_delay_ps=*/0,
             [&] { deliveries.push_back(set.queue(1).Now()); });
    set.Send(0, 1, /*extra_delay_ps=*/25,
             [&] { deliveries.push_back(set.queue(1).Now()); });
  });
  set.RunUntil(1000);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 150u);  // send time + lookahead
  EXPECT_EQ(deliveries[1], 175u);  // + extra delay
  EXPECT_GE(set.epochs(), 1u);
}

TEST(PartitionSetTest, RunUntilAdvancesEveryPartition) {
  PartitionSet set(3, 10, 10);
  bool ran = false;
  set.queue(2).ScheduleAt(500, [&] { ran = true; });
  set.RunUntil(2000);
  EXPECT_TRUE(ran);
  for (uint32_t p = 0; p < 3; ++p) EXPECT_EQ(set.queue(p).Now(), 2000u);
}

TEST(PartitionSetTest, RunUntilTruePredicateSeenAtBarrier) {
  PartitionSet set(2, 10, 10);
  int pings = 0;
  // Ping-pong: each delivery re-sends to the other partition.
  std::function<void(uint32_t, uint32_t)> volley = [&](uint32_t src,
                                                       uint32_t dst) {
    ++pings;
    if (pings < 7) set.Send(src, dst, 0, [&, dst, src] { volley(dst, src); });
  };
  set.queue(0).ScheduleAt(1, [&] { volley(0, 1); });
  EXPECT_TRUE(set.RunUntilTrue([&] { return pings >= 7; }));
  EXPECT_EQ(pings, 7);
  // An unsatisfiable predicate drains everything and reports false.
  EXPECT_FALSE(set.RunUntilTrue([&] { return pings >= 100; }));
}

TEST(PartitionSetTest, StatsMountEpochsAndPerPartitionCounters) {
  StatsRegistry registry;
  PartitionSet set(2, 10, 10);
  set.RegisterStats(StatsScope(&registry, "sim"));
  set.queue(0).ScheduleAt(5, [] {});
  set.queue(1).ScheduleAt(15, [] {});
  set.RunUntil(100);
  EXPECT_GT(registry.ReadValue("sim.epochs"), 0.0);
  EXPECT_EQ(registry.ReadValue("sim.part0.events"), 1.0);
  EXPECT_EQ(registry.ReadValue("sim.part1.events"), 1.0);
  // Partition 1 idled while partition 0's window ran (and vice versa), so at
  // least one of them accumulated barrier stall.
  double stall = registry.ReadValue("sim.part0.barrier_stall_cycles") +
                 registry.ReadValue("sim.part1.barrier_stall_cycles");
  EXPECT_GT(stall, 0.0);
}

/// Runs a deterministic cross-partition workload and returns its execution
/// log: per-partition sequences (what ran where, at what time, in what
/// order), concatenated in partition order after the run. Logging is
/// partition-local — events append only to their own partition's vector — so
/// the workload itself is epoch-parallel-safe.
std::vector<std::string> RunPingPongWorkload() {
  PartitionSet set(4, /*lookahead_ps=*/1250, /*cycle_ps=*/1250);
  std::vector<std::vector<std::string>> plogs(4);
  // Fan-out tree keyed purely by hop id (children 2id+1 / 2id+2, pruned by
  // id arithmetic): termination and shape are functions of the ids alone,
  // never of cross-thread execution order.
  std::function<void(uint32_t, int64_t)> hop = [&](uint32_t at, int64_t id) {
    plogs[at].push_back("@" + std::to_string(set.queue(at).Now()) + "#" +
                        std::to_string(id));
    if (id > 2000) return;
    uint32_t a = (at + 1 + static_cast<uint32_t>(id % 3)) % 4;
    uint32_t b = (at + 2) % 4;
    set.Send(at, a, (id % 7) * 100, [&, a, id] { hop(a, id * 2 + 1); });
    if (id % 3 == 0) {
      set.Send(at, b, 0, [&, b, id] { hop(b, id * 2 + 2); });
    }
  };
  for (uint32_t p = 0; p < 4; ++p) {
    set.queue(p).ScheduleAt(p * 17 + 1,
                            [&, p] { hop(p, static_cast<int64_t>(p)); });
  }
  EXPECT_FALSE(set.RunUntilTrue([] { return false; }));  // drain everything
  std::vector<std::string> log;
  for (uint32_t p = 0; p < 4; ++p) {
    for (std::string& s : plogs[p]) {
      log.push_back("p" + std::to_string(p) + s);
    }
  }
  return log;
}

TEST(PartitionSetTest, ScheduleIsIdenticalAcrossThreadCounts) {
  std::vector<std::vector<std::string>> logs;
  for (const char* threads : {"1", "2", "3", "4"}) {
    ScopedEnv env("NDP_SIM_THREADS", threads);
    logs.push_back(RunPingPongWorkload());
  }
  for (size_t i = 1; i < logs.size(); ++i) {
    EXPECT_EQ(logs[0], logs[i]) << "thread count " << i + 1
                                << " diverged from serial";
  }
  EXPECT_GT(logs[0].size(), 100u);
}

TEST(PartitionSetTest, ThreadCountIsCappedAtPartitionCount) {
  ScopedEnv env("NDP_SIM_THREADS", "64");
  PartitionSet set(3, 10, 10);
  EXPECT_EQ(set.num_threads(), 3u);
}

}  // namespace
}  // namespace ndp::sim
