// Property tests for the timing-wheel EventQueue against the seed heap
// kernel (sim/reference_queue.h), which is kept as the ordering oracle: both
// kernels must execute any schedule in exactly the same order, including FIFO
// ties at equal times — plus unit tests for the wheel's level transitions
// (span rollover, overflow promotion) and intrusive-node edge cases.
#include <cstdint>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"
#include "util/rng.h"

namespace ndp::sim {
namespace {

using ExecLog = std::vector<std::pair<uint64_t, Tick>>;  // (event id, time)

/// Drives `queue` through a randomized schedule derived purely from `seed`:
/// an initial batch of events at times spread across the bucket/L0/L1/
/// overflow ranges (with deliberate exact-time ties), where each event may
/// re-entrantly schedule children as a pure function of its id. Works on any
/// queue type with ScheduleAt/RunUntil/RunUntilEmpty/Now — i.e. both kernels
/// — so their logs must match event for event.
template <typename Queue>
ExecLog RunRandomSchedule(uint64_t seed, bool chunked_run) {
  Queue q;
  ExecLog log;
  uint64_t next_id = 0;

  // Re-entrant child scheduling: a fired event spawns 0..2 children with
  // id-derived delays, so the schedule's shape depends only on `seed`.
  std::function<void(uint64_t, int)> fire = [&](uint64_t id, int depth) {
    log.emplace_back(id, q.Now());
    if (depth >= 3) return;
    Rng rng(id * 0x9E3779B97F4A7C15ull + seed);
    uint32_t children = rng.NextBounded(3);
    for (uint32_t c = 0; c < children; ++c) {
      uint64_t child = next_id++;
      // Mix delays across slot/span/horizon scales, incl. same-tick (0).
      Tick delay;
      switch (rng.NextBounded(4)) {
        case 0: delay = 0; break;
        case 1: delay = rng.NextBounded(4096); break;
        case 2: delay = rng.NextBounded(4 * EventQueue::kSpanTicks); break;
        default: delay = rng.NextBounded(80u * 1024 * 1024); break;
      }
      q.ScheduleAt(q.Now() + delay, [&fire, child, depth] {
        fire(child, depth + 1);
      });
    }
  };

  Rng rng(seed);
  Tick prev = 0;
  for (int i = 0; i < 200; ++i) {
    uint64_t id = next_id++;
    Tick when;
    switch (rng.NextBounded(5)) {
      case 0: when = rng.NextBounded(4096); break;                  // bucket/L0
      case 1: when = rng.NextBounded(4 * EventQueue::kSpanTicks); break;  // L1
      case 2: when = rng.NextBounded(100u * 1024 * 1024); break;  // overflow
      case 3: when = prev; break;                                 // exact tie
      default:
        // Span/horizon boundaries, exercising rollover arithmetic.
        when = (1 + rng.NextBounded(300)) * EventQueue::kSpanTicks -
               rng.NextBounded(2);
        break;
    }
    prev = when;
    q.ScheduleAt(when, [&fire, id] { fire(id, 0); });
  }

  if (chunked_run) {
    // Interleave bounded runs (which leave the cursor mid-wheel and Now()
    // ahead of it) with more draining; must not disturb ordering.
    Tick t = 0;
    while (!q.empty()) {
      t += 1 + rng.NextBounded(3 * EventQueue::kSpanTicks);
      q.RunUntil(t);
    }
  } else {
    q.RunUntilEmpty();
  }
  return log;
}

class WheelVsReferenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WheelVsReferenceProperty, ExecutionOrderMatchesHeapOracle) {
  ExecLog wheel = RunRandomSchedule<EventQueue>(GetParam(), false);
  ExecLog heap = RunRandomSchedule<ReferenceEventQueue>(GetParam(), false);
  ASSERT_EQ(wheel.size(), heap.size());
  ASSERT_EQ(wheel, heap);
}

TEST_P(WheelVsReferenceProperty, ChunkedRunUntilMatchesHeapOracle) {
  ExecLog wheel = RunRandomSchedule<EventQueue>(GetParam(), true);
  ExecLog heap = RunRandomSchedule<ReferenceEventQueue>(GetParam(), true);
  ASSERT_EQ(wheel, heap);
}

TEST_P(WheelVsReferenceProperty, ChunkedAndFullRunsAreEquivalent) {
  ExecLog full = RunRandomSchedule<EventQueue>(GetParam(), false);
  ExecLog chunked = RunRandomSchedule<EventQueue>(GetParam(), true);
  ASSERT_EQ(full, chunked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelVsReferenceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// Wheel-internals unit tests (intrusive nodes).
// ---------------------------------------------------------------------------

class RecordingNode final : public EventNode {
 public:
  RecordingNode(uint64_t id, ExecLog* log, EventQueue* eq)
      : id_(id), log_(log), eq_(eq) {}

 protected:
  void Fire() override { log_->emplace_back(id_, eq_->Now()); }

 private:
  uint64_t id_;
  ExecLog* log_;
  EventQueue* eq_;
};

TEST(TimingWheelTest, FifoTieBreakAcrossSoloDemotion) {
  // First node parks in the solo slot; the second demotes it into the wheel.
  // Equal times must still fire in schedule order.
  EventQueue eq;
  ExecLog log;
  RecordingNode a(1, &log, &eq), b(2, &log, &eq), c(3, &log, &eq);
  eq.Schedule(500, &a);
  eq.Schedule(500, &b);
  eq.Schedule(500, &c);
  eq.RunUntilEmpty();
  ExecLog expected = {{1, 500}, {2, 500}, {3, 500}};
  EXPECT_EQ(log, expected);
}

TEST(TimingWheelTest, SpanRolloverPreservesOrder) {
  // Nodes straddling an L0 span boundary (kSpanTicks) fire in time order
  // even though the later one is filed into L1 first.
  EventQueue eq;
  ExecLog log;
  RecordingNode far(1, &log, &eq), near(2, &log, &eq);
  eq.Schedule(EventQueue::kSpanTicks + 10, &far);  // next span -> L1
  eq.Schedule(EventQueue::kSpanTicks - 10, &near);  // current span -> L0
  eq.RunUntilEmpty();
  ExecLog expected = {{2, EventQueue::kSpanTicks - 10},
                      {1, EventQueue::kSpanTicks + 10}};
  EXPECT_EQ(log, expected);
}

TEST(TimingWheelTest, OverflowPromotionBeyondHorizon) {
  // An event beyond the L1 horizon (kL1Slots spans) starts in the overflow
  // heap and must be promoted into the wheel as the cursor approaches.
  EventQueue eq;
  ExecLog log;
  const Tick horizon = EventQueue::kL1Slots * EventQueue::kSpanTicks;
  RecordingNode beyond(1, &log, &eq), near(2, &log, &eq);
  eq.Schedule(3 * horizon + 7, &beyond);
  eq.Schedule(100, &near);
  eq.RunUntilEmpty();
  ExecLog expected = {{2, 100}, {1, 3 * horizon + 7}};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(eq.Now(), 3 * horizon + 7);
}

TEST(TimingWheelTest, OverflowTiesPreserveScheduleOrder) {
  EventQueue eq;
  ExecLog log;
  const Tick far = 5 * EventQueue::kL1Slots * EventQueue::kSpanTicks + 3;
  RecordingNode a(1, &log, &eq), b(2, &log, &eq), c(3, &log, &eq);
  eq.Schedule(far, &a);
  eq.Schedule(far, &b);
  eq.Schedule(far, &c);
  eq.RunUntilEmpty();
  ExecLog expected = {{1, far}, {2, far}, {3, far}};
  EXPECT_EQ(log, expected);
}

TEST(TimingWheelTest, CancelFromEveryLevel) {
  EventQueue eq;
  ExecLog log;
  RecordingNode solo(1, &log, &eq);
  eq.Schedule(10, &solo);
  eq.Cancel(&solo);  // solo slot
  EXPECT_TRUE(eq.empty());
  EXPECT_FALSE(solo.scheduled());

  RecordingNode l0(2, &log, &eq), l1(3, &log, &eq), over(4, &log, &eq),
      keep(5, &log, &eq);
  eq.Schedule(2000, &l0);                                      // L0
  eq.Schedule(2 * EventQueue::kSpanTicks, &l1);                // L1
  eq.Schedule(400 * EventQueue::kSpanTicks, &over);            // overflow
  eq.Schedule(3000, &keep);
  eq.Cancel(&l0);
  eq.Cancel(&l1);
  eq.Cancel(&over);
  EXPECT_EQ(eq.size(), 1u);
  eq.RunUntilEmpty();
  ExecLog expected = {{5, 3000}};
  EXPECT_EQ(log, expected);
}

TEST(TimingWheelTest, CancelFromBucketAfterPartialDrain) {
  // Two nodes share a quantum; popping the first drains the second into the
  // bucket heap, from which it must still be cancellable.
  EventQueue eq;
  ExecLog log;
  RecordingNode a(1, &log, &eq), b(2, &log, &eq);
  eq.Schedule(2048, &a);
  eq.Schedule(2050, &b);
  ASSERT_TRUE(eq.Step());
  eq.Cancel(&b);
  EXPECT_TRUE(eq.empty());
  ExecLog expected = {{1, 2048}};
  EXPECT_EQ(log, expected);
}

TEST(TimingWheelTest, NodeCanRescheduleItselfFromFire) {
  // A self-rescheduling chain across span boundaries — the TickingComponent
  // pattern — with when() visible as the last-fired time after each hop.
  class ChainNode final : public EventNode {
   public:
    ChainNode(EventQueue* eq, ExecLog* log) : eq_(eq), log_(log) {}

   protected:
    void Fire() override {
      log_->emplace_back(log_->size(), eq_->Now());
      if (log_->size() < 5) {
        eq_->Schedule(eq_->Now() + EventQueue::kSpanTicks / 2, this);
      }
    }

   private:
    EventQueue* eq_;
    ExecLog* log_;
  };
  EventQueue eq;
  ExecLog log;
  ChainNode n(&eq, &log);
  eq.Schedule(0, &n);
  eq.RunUntilEmpty();
  ASSERT_EQ(log.size(), 5u);
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].second, i * (EventQueue::kSpanTicks / 2));
  }
  EXPECT_EQ(n.when(), 4 * (EventQueue::kSpanTicks / 2));  // last-fired time
  EXPECT_FALSE(n.scheduled());
}

}  // namespace
}  // namespace ndp::sim
