#include "accel/ir.h"

#include <gtest/gtest.h>

#include "accel/schedule.h"

namespace ndp::accel {
namespace {

TEST(IrTest, OpCodeNames) {
  EXPECT_STREQ(OpCodeToString(OpCode::kLoad), "load");
  EXPECT_STREQ(OpCodeToString(OpCode::kStore), "store");
  EXPECT_STREQ(OpCodeToString(OpCode::kCmp), "cmp");
  EXPECT_STREQ(OpCodeToString(OpCode::kAdd), "add");
  EXPECT_STREQ(OpCodeToString(OpCode::kMul), "mul");
  EXPECT_STREQ(OpCodeToString(OpCode::kBitOp), "bit");
  EXPECT_STREQ(OpCodeToString(OpCode::kMux), "mux");
}

TEST(IrTest, ResourceClasses) {
  EXPECT_EQ(ResourceFor(OpCode::kLoad), Resource::kMemRead);
  EXPECT_EQ(ResourceFor(OpCode::kStore), Resource::kMemWrite);
  EXPECT_EQ(ResourceFor(OpCode::kCmp), Resource::kAlu);
  EXPECT_EQ(ResourceFor(OpCode::kAdd), Resource::kAlu);
  EXPECT_EQ(ResourceFor(OpCode::kMul), Resource::kMultiplier);
  EXPECT_EQ(ResourceFor(OpCode::kBitOp), Resource::kBitLogic);
  EXPECT_EQ(ResourceFor(OpCode::kMux), Resource::kBitLogic);
}

TEST(IrTest, LatenciesAndEnergies) {
  // Multiplies are the only multi-cycle op; everything has positive energy.
  EXPECT_GT(LatencyFor(OpCode::kMul), LatencyFor(OpCode::kAdd));
  for (OpCode op : {OpCode::kLoad, OpCode::kStore, OpCode::kCmp, OpCode::kAdd,
                    OpCode::kMul, OpCode::kBitOp, OpCode::kMux}) {
    EXPECT_GE(LatencyFor(op), 1u);
    EXPECT_GT(EnergyFemtojoulesFor(op), 0.0);
  }
  // Memory ports dominate the energy budget, as in any pre-RTL model.
  EXPECT_GT(EnergyFemtojoulesFor(OpCode::kLoad),
            EnergyFemtojoulesFor(OpCode::kCmp));
}

TEST(IrTest, DatapathResourceCounts) {
  DatapathResources res;
  res.alus = 3;
  res.multipliers = 1;
  EXPECT_EQ(res.CountFor(Resource::kAlu), 3u);
  EXPECT_EQ(res.CountFor(Resource::kMultiplier), 1u);
  EXPECT_EQ(res.CountFor(Resource::kMemRead), res.mem_read_ports);
}

TEST(IrTest, ScheduleResultToStringMentionsKeyFields) {
  auto r = ScheduleKernel(MakeSelectKernel(), DatapathResources{}, 32)
               .ValueOrDie();
  std::string s = r.ToString();
  EXPECT_NE(s.find("cycles="), std::string::npos);
  EXPECT_NE(s.find("ii="), std::string::npos);
  EXPECT_NE(s.find("words/cycle="), std::string::npos);
}

}  // namespace
}  // namespace ndp::accel
