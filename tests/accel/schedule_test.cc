#include "accel/schedule.h"

#include <gtest/gtest.h>

namespace ndp::accel {
namespace {

constexpr uint32_t kIters = 64;

TEST(ScheduleTest, SelectKernelAchievesOneWordPerCycleWithTwoAlus) {
  // The paper's headline datapath claim (§2.2): with two parallel ALUs, JAFAR
  // processes one 64-bit word per accelerator cycle.
  DatapathResources res;  // defaults: 2 ALUs, 2 bit units, 1 read port
  auto r = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  EXPECT_NEAR(r.steady_state_ii, 1.0, 0.05);
  EXPECT_NEAR(r.words_per_cycle, 1.0, 0.05);
}

TEST(ScheduleTest, SingleAluHalvesRangeFilterThroughput) {
  // Ablation: the range filter needs both compares per word; one ALU makes
  // the ALU the bottleneck with II = 2.
  DatapathResources res;
  res.alus = 1;
  auto r = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  EXPECT_NEAR(r.steady_state_ii, 2.0, 0.1);
  EXPECT_NEAR(r.words_per_cycle, 0.5, 0.05);
}

TEST(ScheduleTest, SinglePredicateKernelNeedsOnlyOneAlu) {
  // Equality/inequality predicates use one comparison per word, so a single
  // ALU already sustains one word per cycle — the second ALU exists for range
  // filters (§2.2, Figure 1(b)).
  DatapathResources res;
  res.alus = 1;
  auto r = ScheduleKernel(MakeSelectSinglePredicateKernel(), res, kIters)
               .ValueOrDie();
  EXPECT_NEAR(r.steady_state_ii, 1.0, 0.05);
}

TEST(ScheduleTest, MemoryPortBoundsThroughput) {
  // With abundant compute, the single IO-buffer read port is the limit.
  DatapathResources res;
  res.alus = 8;
  res.bit_units = 8;
  auto r = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  EXPECT_NEAR(r.words_per_cycle, 1.0, 0.05);
  // Doubling read ports cannot help: the carried bit-insert chain and the
  // one-load-per-iteration structure keep II at 1 (one result per cycle).
  res.mem_read_ports = 2;
  auto r2 = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  EXPECT_LE(r2.steady_state_ii, 1.05);
}

TEST(ScheduleTest, AggregateIsCarriedChainBound) {
  // acc += word serializes on the carried add: II = 1 (latency of the add).
  DatapathResources res;
  auto r = ScheduleKernel(MakeAggregateKernel(), res, kIters).ValueOrDie();
  EXPECT_NEAR(r.steady_state_ii, 1.0, 0.05);
}

TEST(ScheduleTest, NonPipelinedSerializesIterations) {
  DatapathResources res;
  res.pipelined = false;
  auto r = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  // Whole-iteration latency (load -> cmp -> and -> insert = 4 levels) bounds
  // each iteration; II must be ~4, far worse than the pipelined 1.
  EXPECT_GE(r.steady_state_ii, 3.5);
  auto piped = ScheduleKernel(MakeSelectKernel(), DatapathResources{}, kIters)
                   .ValueOrDie();
  EXPECT_GT(r.total_cycles, 3 * piped.total_cycles);
}

TEST(ScheduleTest, RowStoreKernelScalesWithPredicates) {
  // k predicates need k loads through one read port: II >= k.
  DatapathResources res;
  res.alus = 8;
  res.bit_units = 8;
  for (uint32_t k : {1u, 2u, 4u}) {
    auto r = ScheduleKernel(MakeRowStoreKernel(k), res, kIters).ValueOrDie();
    EXPECT_NEAR(r.steady_state_ii, static_cast<double>(k), 0.25) << "k=" << k;
  }
}

TEST(ScheduleTest, MissingFunctionalUnitIsRejected) {
  LoopKernel k;
  k.name = "needs_mul";
  k.body.push_back({OpCode::kMul, "m", {}, {}});
  DatapathResources res;  // multipliers = 0
  auto r = ScheduleKernel(k, res, kIters);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ScheduleTest, EnergyScalesLinearlyWithIterations) {
  DatapathResources res;
  auto r1 = ScheduleKernel(MakeSelectKernel(), res, 32).ValueOrDie();
  auto r2 = ScheduleKernel(MakeSelectKernel(), res, 64).ValueOrDie();
  EXPECT_NEAR(r2.dynamic_energy_fj / r1.dynamic_energy_fj, 2.0, 0.01);
}

TEST(ScheduleTest, UtilizationIsSane) {
  DatapathResources res;
  auto r = ScheduleKernel(MakeSelectKernel(), res, kIters).ValueOrDie();
  for (const auto& [resrc, u] : r.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0) << static_cast<int>(resrc);
  }
  // At II=1 with one read port, the read port is ~fully utilized.
  EXPECT_GT(r.utilization.at(Resource::kMemRead), 0.9);
}

TEST(DatapathSummaryTest, DerivedFromSchedule) {
  DatapathResources res;
  LoopKernel k = MakeSelectKernel();
  auto r = ScheduleKernel(k, res, kIters).ValueOrDie();
  DatapathSummary s = DatapathSummary::FromSchedule(k, r);
  EXPECT_EQ(s.kernel_name, "jafar_select_range");
  EXPECT_NEAR(s.words_per_cycle, 1.0, 0.05);
  EXPECT_GT(s.energy_per_word_fj, 0.0);
  // Energy per word = sum of the kernel's per-op energies (one of each/word):
  // load + 2 compares + and + bit-insert + offset counter.
  double expected = EnergyFemtojoulesFor(OpCode::kLoad) +
                    2 * EnergyFemtojoulesFor(OpCode::kCmp) +
                    3 * EnergyFemtojoulesFor(OpCode::kBitOp);
  EXPECT_NEAR(s.energy_per_word_fj, expected, 1.0);
}

TEST(ScheduleTest, TooFewIterationsRejected) {
  EXPECT_FALSE(ScheduleKernel(MakeSelectKernel(), DatapathResources{}, 1).ok());
}

}  // namespace
}  // namespace ndp::accel
