#include "accel/dddg.h"

#include <gtest/gtest.h>

namespace ndp::accel {
namespace {

TEST(LoopKernelTest, LibraryKernelsValidate) {
  std::string err;
  EXPECT_TRUE(MakeSelectKernel().Validate(&err)) << err;
  EXPECT_TRUE(MakeSelectSinglePredicateKernel().Validate(&err)) << err;
  EXPECT_TRUE(MakeAggregateKernel().Validate(&err)) << err;
  EXPECT_TRUE(MakeProjectKernel().Validate(&err)) << err;
  for (uint32_t p : {1u, 2u, 3u, 4u, 7u}) {
    EXPECT_TRUE(MakeRowStoreKernel(p).Validate(&err)) << "p=" << p << ": " << err;
  }
}

TEST(LoopKernelTest, ForwardDependenceIsInvalid) {
  LoopKernel k;
  k.name = "bad";
  k.body.push_back({OpCode::kAdd, "a", {1}, {}});  // depends on later op
  k.body.push_back({OpCode::kAdd, "b", {}, {}});
  std::string err;
  EXPECT_FALSE(k.Validate(&err));
  EXPECT_NE(err.find("forward"), std::string::npos);
}

TEST(DddgTest, NodeCountAndIds) {
  LoopKernel k = MakeSelectKernel();
  auto g = Dddg::Build(k, 10).ValueOrDie();
  EXPECT_EQ(g.nodes().size(), 10 * k.body.size());
  EXPECT_EQ(g.body_size(), k.body.size());
  EXPECT_EQ(g.NodeId(3, 2), 3 * k.body.size() + 2);
}

TEST(DddgTest, SameIterationDependencesWired) {
  LoopKernel k = MakeSelectKernel();
  auto g = Dddg::Build(k, 2).ValueOrDie();
  // Op 3 ("and") depends on ops 1 and 2 of the same iteration.
  const DddgNode& andop = g.nodes()[g.NodeId(1, 3)];
  EXPECT_EQ(andop.preds.size(), 2u);
  EXPECT_EQ(andop.preds[0], g.NodeId(1, 1));
  EXPECT_EQ(andop.preds[1], g.NodeId(1, 2));
}

TEST(DddgTest, CarriedDependencesCrossIterations) {
  LoopKernel k = MakeAggregateKernel();
  auto g = Dddg::Build(k, 3).ValueOrDie();
  // Accumulator of iteration 2 depends on load(iter 2) and acc(iter 1).
  const DddgNode& acc2 = g.nodes()[g.NodeId(2, 1)];
  ASSERT_EQ(acc2.preds.size(), 2u);
  EXPECT_EQ(acc2.preds[0], g.NodeId(2, 0));
  EXPECT_EQ(acc2.preds[1], g.NodeId(1, 1));
  // Iteration 0 has no carried predecessor.
  EXPECT_EQ(g.nodes()[g.NodeId(0, 1)].preds.size(), 1u);
}

TEST(DddgTest, ZeroIterationsRejected) {
  EXPECT_FALSE(Dddg::Build(MakeSelectKernel(), 0).ok());
}

TEST(DddgTest, EdgeCountMatchesStructure) {
  LoopKernel k = MakeAggregateKernel();  // per iter: 1 dep + 1 carried
  auto g = Dddg::Build(k, 5).ValueOrDie();
  // 5 same-iteration edges + 4 carried edges.
  EXPECT_EQ(g.num_edges(), 9u);
}

}  // namespace
}  // namespace ndp::accel
