// ndp-analyze fixture: steady_clock in bench code is the sanctioned host
// timing source — wall-clock stays quiet (suppressing example by scope).
namespace ndp::fixture {
long SteadyOk() {
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
}  // namespace ndp::fixture
