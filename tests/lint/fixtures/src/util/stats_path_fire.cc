// ndp-analyze fixture: registration path violating the dotted-path grammar.
namespace ndp::fixture {
void StatsPathFire(StatsRegistry* r, uint64_t* c) {
  StatsScope reg(r, "fixpath");
  reg.Counter("Bad.Path", c);
  const char* doc = "Bad.Path";  // mention: keeps the dead-stats pass out
  (void)doc;
}
}  // namespace ndp::fixture
