// ndp-analyze fixture: the same undocumented knob, waived with a reason.
namespace ndp::fixture {
const char* KnobWaive() {
  // ndp-lint: knob-coherence-ok fixture: internal debug switch, not public
  return getenv("NDP_FIX_WAIVED");
}
}  // namespace ndp::fixture
