// ndp-analyze fixture: counter kept alive by the mention in
// tests/mention_test.cc (suppressing example for stats-dead).
namespace ndp::fixture {
void StatsKept(StatsRegistry* r, uint64_t* c) {
  StatsScope root(r, "fixdead");
  root.Counter("kept_leaf", c);
}
}  // namespace ndp::fixture
