// ndp-analyze fixture: a waiver with no reason — waiver-reason fires (the
// suppressed rule stays suppressed; the naked waiver itself is the finding).
namespace ndp::fixture {
int WaiverReasonFire() {
  // ndp-lint: banned-random-ok
  return std::rand();
}
}  // namespace ndp::fixture
