// ndp-analyze fixture: documented knob whose call-site default matches the
// README row — knob-coherence stays quiet (suppressing example).
namespace ndp::fixture {
uint64_t KnobGood() { return EnvU64("NDP_FIX_GOOD", 7); }
}  // namespace ndp::fixture
