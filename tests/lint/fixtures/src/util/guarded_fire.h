#pragma once
// ndp-analyze fixture: guarded field touched without its mutex — guarded-by
// fires on Bump(); Locked() and Required() show the two suppressing forms.
namespace ndp::fixture {
class GuardedFire {
 public:
  void Bump() { v_ += 1; }
  void Locked() {
    std::lock_guard<std::mutex> lock(mu_);
    v_ += 1;
  }
  // ndp: requires(mu_)
  void Required() { v_ += 1; }

 private:
  std::mutex mu_;
  int v_ = 0;  // ndp: guarded-by(mu_)
};
}  // namespace ndp::fixture
