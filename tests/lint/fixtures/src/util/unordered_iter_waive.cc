// ndp-analyze fixture: the same iteration, waived with a reason.
namespace ndp::fixture {
int UnorderedIterWaive() {
  std::unordered_map<int, int> m;
  int sum = 0;
  // ndp-lint: unordered-iter-ok fixture: commutative sum, order cannot escape
  for (const auto& kv : m) {
    sum += kv.second;
  }
  return sum;
}
}  // namespace ndp::fixture
