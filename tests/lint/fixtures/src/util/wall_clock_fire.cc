// ndp-analyze fixture: std::chrono in sim code — wall-clock fires.
namespace ndp::fixture {
long WallClockFire() {
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
}  // namespace ndp::fixture
