// ndp-analyze fixture: the same discard, waived with a reason.
namespace ndp::fixture {
void StatusWaive(Api* dev, Query q) {
  // ndp-lint: status-ok fixture: probe call, failure handled by the drain
  dev->SelectJafar(q);
}
}  // namespace ndp::fixture
