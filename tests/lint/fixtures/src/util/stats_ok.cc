// ndp-analyze fixture: registration, read, and mention all line up — the
// stats passes stay quiet (suppressing example for both).
namespace ndp::fixture {
double StatsOk(StatsRegistry* r, uint64_t* c) {
  StatsScope root(r, "fix");
  root.Counter("good_leaf", c);
  StatsSnapshot snap = r->Snapshot();
  return snap.Value("fix.good_leaf");
}
}  // namespace ndp::fixture
