// ndp-analyze fixture: device dispatch with no watchdog — watchdog-arm fires.
namespace ndp::fixture {
Status WatchdogFire(Device* dev, Job job) {
  Status s = dev->StartSelect(job, nullptr);
  return s;
}
}  // namespace ndp::fixture
