// ndp-analyze fixture: range-for over an unordered map — unordered-iter fires.
namespace ndp::fixture {
int UnorderedIterFire() {
  std::unordered_map<int, int> m;
  int sum = 0;
  for (const auto& kv : m) {
    sum += kv.second;
  }
  return sum;
}
}  // namespace ndp::fixture
