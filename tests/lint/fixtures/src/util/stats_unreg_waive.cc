// ndp-analyze fixture: the same unresolved read, waived with a reason.
namespace ndp::fixture {
double StatsUnregWaive(const StatsSnapshot& snap) {
  // ndp-lint: stats-unregistered-ok fixture: path exists only in prod dumps
  return snap.Value("nope_scope.other_leaf");
}
}  // namespace ndp::fixture
