// ndp-analyze fixture: the same read, waived with a reason.
namespace ndp::fixture {
long WallClockWaive() {
  // ndp-lint: wall-clock-ok fixture: diagnostic print only, never a result
  auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
}  // namespace ndp::fixture
