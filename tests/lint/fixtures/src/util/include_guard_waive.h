// ndp-lint: include-guard-ok fixture: generated single-include header
namespace ndp::fixture {
inline int WaivedGuardlessHeader() { return 2; }
}  // namespace ndp::fixture
