// ndp-analyze fixture: counter nothing ever reads by name — stats-dead fires.
namespace ndp::fixture {
void StatsDeadFire(StatsRegistry* r, uint64_t* c) {
  StatsScope root(r, "fixdead");
  root.Counter("dead_leaf", c);
}
}  // namespace ndp::fixture
