// ndp-analyze fixture: two call sites disagree on a knob default —
// knob-coherence fires at the second site.
namespace ndp::fixture {
uint64_t KnobConflictA() { return EnvU64("NDP_FIX_CONFLICT", 1); }
uint64_t KnobConflictB() { return EnvU64("NDP_FIX_CONFLICT", 2); }
}  // namespace ndp::fixture
