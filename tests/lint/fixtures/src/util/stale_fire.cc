// ndp-analyze fixture: a reasoned waiver that suppresses nothing —
// stale-waiver fires.
namespace ndp::fixture {
int StaleFire() {
  // ndp-lint: banned-random-ok fixture: this line draws no randomness at all
  return 4;
}
}  // namespace ndp::fixture
