#pragma once
// ndp-analyze fixture: the same unguarded touch, waived with a reason.
namespace ndp::fixture {
class GuardedWaive {
 public:
  void Bump() {
    // ndp-lint: guarded-by-ok fixture: construction-time init, no readers yet
    w_ += 1;
  }

 private:
  std::mutex mu_;
  int w_ = 0;  // ndp: guarded-by(mu_)
};
}  // namespace ndp::fixture
