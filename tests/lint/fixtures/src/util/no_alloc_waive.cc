// ndp-analyze fixture: the same allocation, waived with a reason.
namespace ndp::fixture {
void NoAllocWaive(std::vector<int>* out) {
  // ndp-lint: no-alloc-begin
  // ndp-lint: no-alloc-ok fixture: one-time warmup fill before the hot loop
  out->push_back(1);
  // ndp-lint: no-alloc-end
}
}  // namespace ndp::fixture
