// ndp-analyze fixture: the same schedule, waived with a reason.
namespace ndp::fixture {
void XpartWaive(PartitionSet* parts, Event* ev) {
  // ndp-lint: cross-partition-schedule-ok fixture: barrier-time setup only
  parts->queue(3)->ScheduleAt(ev, 100);
}
}  // namespace ndp::fixture
