// ndp-analyze fixture: discarded dispatch Status — status fires.
namespace ndp::fixture {
void StatusFire(Api* dev, Query q) {
  dev->SelectJafar(q);
}
}  // namespace ndp::fixture
