// ndp-analyze fixture: read of a never-registered path — stats-unregistered.
namespace ndp::fixture {
double StatsUnregFire(const StatsSnapshot& snap) {
  return snap.Value("nope_scope.nope_leaf");
}
}  // namespace ndp::fixture
