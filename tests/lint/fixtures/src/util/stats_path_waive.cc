// ndp-analyze fixture: the same grammar violation, waived with a reason.
namespace ndp::fixture {
void StatsPathWaive(StatsRegistry* r, uint64_t* c) {
  StatsScope reg(r, "fixpath2");
  // ndp-lint: stats-path-ok fixture: legacy dump name kept for tooling
  reg.Counter("Also.Bad", c);
  const char* doc = "Also.Bad";  // mention: keeps the dead-stats pass out
  (void)doc;
}
}  // namespace ndp::fixture
