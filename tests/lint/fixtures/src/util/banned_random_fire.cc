// ndp-analyze fixture: unseeded library randomness — banned-random fires.
namespace ndp::fixture {
int BannedRandomFire() { return std::rand(); }
}  // namespace ndp::fixture
