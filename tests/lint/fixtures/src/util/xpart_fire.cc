// ndp-analyze fixture: direct wheel schedule — cross-partition-schedule fires.
namespace ndp::fixture {
void XpartFire(PartitionSet* parts, Event* ev) {
  parts->queue(3)->ScheduleAt(ev, 100);
}
}  // namespace ndp::fixture
