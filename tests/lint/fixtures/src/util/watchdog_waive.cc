// ndp-analyze fixture: the same dispatch, waived with a reason.
namespace ndp::fixture {
Status WatchdogWaive(Device* dev, Job job) {
  // ndp-lint: watchdog-arm-ok fixture: caller pumps the queue and drains
  Status s = dev->StartSelect(job, nullptr);
  return s;
}
}  // namespace ndp::fixture
