// ndp-analyze fixture: the same draw, waived with a reason.
namespace ndp::fixture {
int BannedRandomWaive() {
  // ndp-lint: banned-random-ok fixture: stress-only jitter, not in results
  return std::rand();
}
}  // namespace ndp::fixture
