// ndp-analyze fixture: the same dead counter, waived with a reason.
namespace ndp::fixture {
void StatsDeadWaive(StatsRegistry* r, uint64_t* c) {
  StatsScope root(r, "fixdead2");
  // ndp-lint: stats-dead-ok fixture: reserved for the next estimator rev
  root.Counter("dead_leaf_two", c);
}
}  // namespace ndp::fixture
