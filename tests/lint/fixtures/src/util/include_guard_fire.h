// ndp-analyze fixture: header with no include guard — include-guard fires.
namespace ndp::fixture {
inline int GuardlessHeader() { return 1; }
}  // namespace ndp::fixture
