// ndp-analyze fixture: allocation inside a marked region — no-alloc fires.
namespace ndp::fixture {
void NoAllocFire(std::vector<int>* out) {
  // ndp-lint: no-alloc-begin
  out->push_back(1);
  // ndp-lint: no-alloc-end
}
}  // namespace ndp::fixture
