// ndp-analyze fixture: env knob with no README row — knob-coherence fires.
namespace ndp::fixture {
const char* KnobFire() { return getenv("NDP_FIX_MISSING"); }
}  // namespace ndp::fixture
