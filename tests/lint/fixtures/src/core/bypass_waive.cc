// ndp-analyze fixture: the same dispatch, waived with a reason.
namespace ndp::fixture {
Status BypassWaive(Driver* drv, Query q) {
  // ndp-lint: runtime-bypass-ok fixture: single-query calibration path
  return drv->SelectJafar(q);
}
}  // namespace ndp::fixture
