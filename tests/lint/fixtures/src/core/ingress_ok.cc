// bounded-queue fixture: the annotated example — the pool's capacity knob is
// read by real code, so the claimed bound cross-checks against the knob
// index and nothing fires.
#include <cstdlib>
#include <vector>

struct IngressPool {
  std::vector<int> pool_;  // ndp: bounded-by(NDP_FIX_CAP)
};

inline const char* FixCapRaw() { return std::getenv("NDP_FIX_CAP"); }
