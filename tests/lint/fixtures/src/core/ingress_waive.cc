// bounded-queue fixture: the suppressing waiver — setup-time metadata that
// never grows on the per-request path is exempt, with the reason recorded.
#include <vector>

struct IngressTables {
  std::vector<int> tables_;  // ndp-lint: bounded-queue-ok registered once at setup, before serving starts
};
