// ndp-analyze fixture: core-layer device dispatch — runtime-bypass fires.
namespace ndp::fixture {
Status BypassFire(Driver* drv, Query q) {
  return drv->SelectJafar(q);
}
}  // namespace ndp::fixture
