// bounded-queue fixture: a growable container on the ingress/admission path
// with no bounded-by annotation (and no waiver) must fire.
#include <vector>

struct IngressBacklog {
  std::vector<int> backlog_;
};
