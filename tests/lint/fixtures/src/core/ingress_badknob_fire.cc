// bounded-queue fixture: an annotation naming a knob nothing reads claims an
// unverifiable bound and must fire the cross-check.
#include <vector>

struct IngressOverflow {
  std::vector<int> overflow_;  // ndp: bounded-by(NDP_FIX_NOPE)
};
