#pragma once
// ndp-analyze fixture: dram (rank 2) including core (rank 5) — layer-dag.
#include "core/system.h"
namespace ndp::fixture {
inline int LayerFire() { return 5; }
}  // namespace ndp::fixture
