#pragma once
// ndp-analyze fixture: the same back-edge, waived with a reason.
// ndp-lint: layer-dag-ok fixture: sanctioned back-edge pending inversion
#include "core/api.h"
namespace ndp::fixture {
inline int LayerWaive() { return 6; }
}  // namespace ndp::fixture
