// ndp-analyze fixture: generation branch outside the datapath factory —
// generation-dispatch fires.
namespace ndp::fixture {
bool GenFire(DeviceGeneration gen) {
  return gen == DeviceGeneration::kV2BankLevel;
}
}  // namespace ndp::fixture
