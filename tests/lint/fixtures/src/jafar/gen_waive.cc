// ndp-analyze fixture: the same branch, waived with a reason.
namespace ndp::fixture {
bool GenWaive(DeviceGeneration gen) {
  // ndp-lint: generation-dispatch-ok fixture: error-message formatting only
  return gen == DeviceGeneration::kV2BankLevel;
}
}  // namespace ndp::fixture
