// ndp-analyze fixture: a test naming a registered path keeps its counter out
// of stats-dead — this is the real-tree convention the pass points at.
namespace ndp::fixture {
bool MentionTest(const StatsRegistry& reg) {
  return reg.Contains("fixdead.kept_leaf");
}
}  // namespace ndp::fixture
