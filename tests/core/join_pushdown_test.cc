// Join & group-by pushdown tests (DESIGN.md §12):
//   * Probe exactness: the device candidate bitmap is bit-identical to a host
//     evaluation of the same Bloom image — and in particular has no false
//     negatives for keys that are actually in the build set.
//   * Hook oracles: MakeSemiJoinHook / MakeGroupByHook produce bit-identical
//     results to the CPU HashSemiJoin / group-by loop.
//   * Transplant integrity: under skewed placement with stealing enabled,
//     heavy-hitter transplants lose no row and double-count none — the probe
//     bitmap stays exact and group counts still cover the column.
//   * Skew property: at Zipf-2 placement skew, ETA-driven stealing cuts the
//     probe makespan versus stealing disabled, and the heavy-hitter detector
//     actually fires.
//   * Knobs: NDP_JOIN_* strict parsing and Validate rejection.
#include <cstdlib>
#include <map>
#include <numeric>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "db/operators.h"
#include "jafar/jobs.h"
#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed, int64_t hi = 999'999) {
  db::Column col = db::Column::Int64("k");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, hi));
  return col;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// Host-side mirror of the runtime's filter builder: same BloomBitIndex,
/// same image layout. `words` must be a power of two.
std::vector<uint64_t> BloomImage(const std::vector<int64_t>& keys,
                                 uint64_t words, uint64_t hashes) {
  std::vector<uint64_t> image(words, 0);
  for (int64_t key : keys) {
    for (uint32_t h = 0; h < hashes; ++h) {
      uint64_t bit =
          jafar::BloomBitIndex(static_cast<uint64_t>(key), h, words);
      image[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
  return image;
}

bool BloomHit(int64_t key, const std::vector<uint64_t>& image,
              uint64_t hashes) {
  for (uint32_t h = 0; h < hashes; ++h) {
    uint64_t bit = jafar::BloomBitIndex(static_cast<uint64_t>(key), h,
                                        image.size());
    if ((image[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

db::PositionList AllPositions(size_t n) {
  db::PositionList all(n);
  std::iota(all.begin(), all.end(), 0u);
  return all;
}

std::map<int64_t, std::pair<int64_t, int64_t>> GroupOracle(
    const db::Column& keys, const db::Column& vals) {
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto& slot = groups[keys[i]];
    slot.first += vals[i];
    slot.second += 1;
  }
  return groups;
}

// -- Probe exactness ----------------------------------------------------------

TEST(JoinPushdownTest, ProbeBitmapMatchesHostBloomEvaluation) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  RuntimeConfig cfg;
  NdpRuntime runtime(&array, cfg);
  db::Column col = RandomColumn(40'000, 101);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  // Build side: every multiple of 97 in the key domain.
  std::vector<int64_t> build_keys;
  for (int64_t k = 0; k < 1'000'000; k += 97) build_keys.push_back(k);
  const uint64_t words = cfg.join_filter_kb * 1024 / 8;
  std::vector<uint64_t> image = BloomImage(build_keys, words, cfg.join_hashes);
  std::unordered_set<int64_t> build_set(build_keys.begin(), build_keys.end());

  auto id = runtime.SubmitProbe(placed, image).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());
  const JobResult* r = runtime.result(id);
  ASSERT_TRUE(r != nullptr && r->status.ok());

  uint64_t expected_matches = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    bool expected = BloomHit(col[i], image, cfg.join_hashes);
    expected_matches += expected;
    ASSERT_EQ(r->bitmap.Get(i), expected) << "row " << i;
    if (build_set.count(col[i]) != 0) {
      // No false negatives: a key that is in the build set must be flagged.
      ASSERT_TRUE(r->bitmap.Get(i)) << "false negative at row " << i;
    }
  }
  EXPECT_EQ(r->matches, expected_matches);
  EXPECT_GT(r->leases, 0u);
}

TEST(JoinPushdownTest, ProbeRejectsMalformedSubmissions) {
  db::Column col = RandomColumn(4'096, 102);
  {
    DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
    NdpRuntime runtime(&array, RuntimeConfig{});
    PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
    // Image whose word count is not a power of two.
    std::vector<uint64_t> lopsided(100, 0);
    EXPECT_FALSE(runtime.SubmitProbe(placed, lopsided).ok());
    // Empty image.
    EXPECT_FALSE(runtime.SubmitProbe(placed, {}).ok());
  }
  {
    // Hash-lane count that disagrees with the device's accel-derived
    // probe_hashes: the modeled schedule would no longer match the
    // functional filter, so the submission is rejected up front.
    DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
    RuntimeConfig cfg;
    cfg.join_hashes = Config().probe_hashes + 1;
    NdpRuntime runtime(&array, cfg);
    PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
    std::vector<uint64_t> image(1024, 0);
    EXPECT_FALSE(runtime.SubmitProbe(placed, image).ok());
  }
}

// -- Hook oracles -------------------------------------------------------------

TEST(JoinPushdownTest, SemiJoinHookBitIdenticalToCpuJoin) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  // Narrow key domain so real overlap exists (plus Bloom collisions to
  // exercise the refinement path).
  db::Column build = RandomColumn(6'000, 111, 49'999);
  db::Column probe = RandomColumn(30'000, 112, 49'999);
  db::PositionList build_pos = AllPositions(build.size());
  db::PositionList probe_pos = AllPositions(probe.size());

  db::QueryContext ndp_ctx;
  ndp_ctx.ndp_semi_join = runtime.MakeSemiJoinHook();
  db::PositionList ndp =
      db::HashSemiJoin(&ndp_ctx, build, build_pos, probe, probe_pos);
  db::QueryContext cpu_ctx;
  db::PositionList cpu =
      db::HashSemiJoin(&cpu_ctx, build, build_pos, probe, probe_pos);
  EXPECT_EQ(ndp, cpu);
  ASSERT_FALSE(cpu.empty());
  // The pushdown actually ran (the accounting records the jafar-tagged op).
  bool pushed = false;
  for (const auto& s : ndp_ctx.stats) pushed |= s.op == "semi_join[jafar]";
  EXPECT_TRUE(pushed);
}

TEST(JoinPushdownTest, GroupByHookMatchesCpuOracle) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  // Striding key pattern spanning many device bucket windows, so the
  // per-window lease shaping (and the host-folded seams) is exercised.
  db::Column keys = db::Column::Int64("k");
  db::Column vals = db::Column::Int64("v");
  Rng rng(113);
  for (size_t i = 0; i < 30'000; ++i) {
    keys.Append(static_cast<int64_t>((i * 37) % 5'000));
    vals.Append(rng.NextInRange(-100, 100));
  }
  auto hook = runtime.MakeGroupByHook();
  auto groups = hook(keys, vals);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value(), GroupOracle(keys, vals));
}

// -- Transplant integrity under skew ------------------------------------------

TEST(JoinPushdownTest, TransplantsLoseNoRowAndDoubleCountNone) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, Config());
  RuntimeConfig cfg;
  cfg.steal_enabled = true;
  NdpRuntime runtime(&array, cfg);
  const size_t n = 1u << 17;
  db::Column keys = RandomColumn(n, 121, 99'999);
  db::Column vals = RandomColumn(n, 122, 1'000);
  // 4x skew on device 0: the lane must shed rows to its siblings mid-job.
  std::vector<double> weights = {4.0, 1.0, 1.0, 1.0};
  PlacedColumn pk = array.PlaceColumn(keys, weights).ValueOrDie();
  PlacedColumn pv = array.PlaceColumn(vals, weights).ValueOrDie();

  std::vector<int64_t> build_keys;
  for (int64_t k = 0; k < 100'000; k += 64) build_keys.push_back(k);
  std::vector<uint64_t> image =
      BloomImage(build_keys, cfg.join_filter_kb * 1024 / 8, cfg.join_hashes);

  array.eq().RunUntil(array.eq().Now() + 20'000'000);
  auto probe_id = runtime.SubmitProbe(pk, image).ValueOrDie();
  auto group_id =
      runtime.SubmitGroupBy(pk, pv, jafar::AggKind::kSum).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());

  // Probe: transplanted rows are probed exactly once, wherever they landed.
  const JobResult* pr = runtime.result(probe_id);
  ASSERT_TRUE(pr != nullptr && pr->status.ok());
  uint64_t expected_matches = 0;
  for (size_t i = 0; i < n; ++i) {
    bool expected = BloomHit(keys[i], image, cfg.join_hashes);
    expected_matches += expected;
    ASSERT_EQ(pr->bitmap.Get(i), expected) << "row " << i;
  }
  EXPECT_EQ(pr->matches, expected_matches);

  // Group-by: counts must cover the column exactly — a lost transplant would
  // undercount, a double-processed one would overcount.
  const JobResult* gr = runtime.result(group_id);
  ASSERT_TRUE(gr != nullptr && gr->status.ok());
  int64_t covered = 0;
  for (const auto& [key, agg] : gr->groups) covered += agg.second;
  EXPECT_EQ(covered, static_cast<int64_t>(n));
  EXPECT_EQ(gr->groups, GroupOracle(keys, vals));

  // The skew actually forced transplants (otherwise this test proves nothing).
  EXPECT_GT(array.stats().ReadValue("array.runtime.steals"), 0.0);
}

TEST(JoinPushdownTest, EtaStealingCutsZipf2ProbeMakespan) {
  db::Column col = RandomColumn(1u << 18, 131);
  // Zipf-2 placement over 4 devices: weights (d+1)^-2, so device 0 holds
  // ~70% of the rows.
  std::vector<double> weights;
  for (int d = 0; d < 4; ++d) weights.push_back(1.0 / ((d + 1.0) * (d + 1.0)));
  std::vector<int64_t> build_keys;
  for (int64_t k = 0; k < 1'000'000; k += 256) build_keys.push_back(k);

  double hh_flags_on = 0.0;
  auto run = [&](bool steal, double* hh_flags) {
    DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, Config());
    RuntimeConfig cfg;
    cfg.steal_enabled = steal;
    // Short lease windows so the probe spans many leases per lane: the
    // heavy-hitter detector needs `join_hh_min_leases` completed leases on
    // the hot lane while the imbalance is still live (DESIGN.md §12).
    cfg.lease_init_bus_cycles = 4'000;
    cfg.lease_max_bus_cycles = 8'000;
    NdpRuntime runtime(&array, cfg);
    PlacedColumn placed = array.PlaceColumn(col, weights).ValueOrDie();
    std::vector<uint64_t> image =
        BloomImage(build_keys, cfg.join_filter_kb * 1024 / 8, cfg.join_hashes);
    array.eq().RunUntil(array.eq().Now() + 20'000'000);
    auto id = runtime.SubmitProbe(placed, image).ValueOrDie();
    EXPECT_TRUE(runtime.Drain().ok());
    const JobResult* r = runtime.result(id);
    EXPECT_TRUE(r->status.ok());
    uint64_t expected = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      expected += BloomHit(col[i], image, cfg.join_hashes);
    }
    EXPECT_EQ(r->matches, expected);
    if (hh_flags != nullptr) {
      *hh_flags = array.stats().ReadValue("array.runtime.hh_flags");
    }
    return r->completed_ps - r->submitted_ps;
  };
  sim::Tick with_steal = run(true, &hh_flags_on);
  sim::Tick without = run(false, nullptr);
  EXPECT_GE(static_cast<double>(without),
            1.3 * static_cast<double>(with_steal))
      << "ETA stealing should cut the Zipf-2 probe makespan (got "
      << static_cast<double>(without) / static_cast<double>(with_steal)
      << "x)";
  // The heavy-hitter detector flagged the overloaded lane at least once.
  EXPECT_GE(hh_flags_on, 1.0);
}

// -- Knobs --------------------------------------------------------------------

TEST(JoinPushdownTest, ValidateRejectsBadJoinKnobs) {
  RuntimeConfig cfg;
  cfg.join_hashes = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.join_hashes = 9;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.join_filter_kb = 12;  // not a power of two
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.join_hh_threshold = 0.5;  // a sub-mean "heavy hitter" is meaningless
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.join_hh_min_leases = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_TRUE(RuntimeConfig{}.Validate().ok());
}

TEST(JoinPushdownTest, FromEnvStrictParsesJoinKnobs) {
  setenv("NDP_JOIN_HASHES", "4", 1);
  setenv("NDP_JOIN_FILTER_KB", "32", 1);
  setenv("NDP_JOIN_ETA_STEAL", "0", 1);
  setenv("NDP_JOIN_HH_THRESHOLD", "2.5", 1);
  setenv("NDP_JOIN_HH_MIN_LEASES", "3", 1);
  auto ok = RuntimeConfig::FromEnv();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().join_hashes, 4u);
  EXPECT_EQ(ok.value().join_filter_kb, 32u);
  EXPECT_FALSE(ok.value().join_eta_steal);
  EXPECT_DOUBLE_EQ(ok.value().join_hh_threshold, 2.5);
  EXPECT_EQ(ok.value().join_hh_min_leases, 3u);
  // Malformed values are errors, never silently ignored.
  setenv("NDP_JOIN_FILTER_KB", "16kb", 1);
  EXPECT_FALSE(RuntimeConfig::FromEnv().ok());
  unsetenv("NDP_JOIN_FILTER_KB");
  setenv("NDP_JOIN_HH_THRESHOLD", "hot", 1);
  EXPECT_FALSE(RuntimeConfig::FromEnv().ok());
  unsetenv("NDP_JOIN_HASHES");
  unsetenv("NDP_JOIN_ETA_STEAL");
  unsetenv("NDP_JOIN_HH_THRESHOLD");
  unsetenv("NDP_JOIN_HH_MIN_LEASES");
}

}  // namespace
}  // namespace ndp::core
