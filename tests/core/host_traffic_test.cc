// ClientFleet tests: seeded-stream reproducibility (the digests), deadline
// propagation vs the naive control mode, open-loop weight splitting,
// closed-loop accounting, and oracle mismatch detection.
#include "core/host_traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ingress.h"
#include "core/runtime.h"
#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

/// One serving stack (array + runtime + ingress + fleet) driven for
/// `window_ps`, returning the fleet for inspection via the runner.
struct Stack {
  explicit Stack(const db::Column& col, FleetConfig fcfg,
                 std::vector<TenantSpec> tenants,
                 IngressConfig icfg = IngressConfig{})
      : array(dram::DramTiming::DDR3_1600(), 2, 1, Config()),
        runtime(&array, RuntimeConfig{}),
        placed(array.PlaceColumn(col).ValueOrDie()),
        ingress(&runtime, &array, icfg, std::move(tenants)),
        fleet(&array.eq(), &ingress, fcfg,
              StatsScope(array.mutable_stats(), "fleet")) {
    ingress.AddTable(&col, &placed);
  }

  void Run(sim::Tick window_ps) {
    ingress.Start();
    fleet.Start();
    array.eq().RunUntil(array.eq().Now() + window_ps);
    fleet.Stop();
    ingress.Stop();
    ASSERT_TRUE(ingress.Drain().ok());
    ASSERT_TRUE(runtime.Drain().ok());
  }

  DimmArray array;
  NdpRuntime runtime;
  PlacedColumn placed;
  ServingIngress ingress;
  ClientFleet fleet;
};

std::vector<TenantSpec> OneOpenTenant(sim::Tick deadline_ps) {
  TenantSpec t;
  t.name = "interactive";
  t.priority = JobPriority::kInteractive;
  t.deadline_ps = deadline_ps;
  return {t};
}

TEST(ClientFleetTest, SameSeedSameDigestsDifferentSeedDiffers) {
  db::Column col = RandomColumn(4096);
  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.05;
  fcfg.seed = 7;
  uint64_t issue[3], outcome[3];
  for (int run = 0; run < 3; ++run) {
    fcfg.seed = run < 2 ? 7 : 8;
    Stack s(col, fcfg, OneOpenTenant(500'000'000));
    s.Run(200'000'000);  // 200 us
    ASSERT_GT(s.fleet.issued(), 0u);
    issue[run] = s.fleet.issue_digest();
    outcome[run] = s.fleet.outcome_digest();
  }
  // The issued stream and the terminal outcomes are pure functions of the
  // seed: equal seeds agree byte for byte, a different seed diverges.
  EXPECT_EQ(issue[0], issue[1]);
  EXPECT_EQ(outcome[0], outcome[1]);
  EXPECT_NE(issue[0], issue[2]);
}

TEST(ClientFleetTest, DeadlinePropagationOnCancelsOffCompletesLate) {
  db::Column col = RandomColumn(4096);
  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.02;
  fcfg.seed = 11;
  // An impossible 1 ns SLO: with propagation ON nothing survives admission;
  // with it OFF (the naive control) the ingress happily completes everything
  // — and the fleet's client-side judgment still refuses to call it goodput.
  const sim::Tick slo_ps = 1'000;

  fcfg.propagate_deadlines = true;
  {
    Stack s(col, fcfg, OneOpenTenant(slo_ps));
    s.Run(200'000'000);
    const ClientFleet::TenantStats& ts = s.fleet.tenant_stats(0);
    ASSERT_GT(ts.issued, 0u);
    EXPECT_EQ(ts.goodput, 0u);
    EXPECT_EQ(ts.late, ts.issued);
    EXPECT_EQ(s.array.stats().ReadValue("array.ingress.completed_ndp"), 0.0);
    EXPECT_GT(s.array.stats().ReadValue("array.ingress.expired_at_admission"),
              0.0);
    EXPECT_EQ(s.array.stats().ReadValue("fleet.tenant0.goodput"), 0.0);
    EXPECT_EQ(s.array.stats().ReadValue("fleet.tenant0.late"),
              static_cast<double>(ts.late));
  }

  fcfg.propagate_deadlines = false;
  {
    Stack s(col, fcfg, OneOpenTenant(slo_ps));
    s.Run(200'000'000);
    const ClientFleet::TenantStats& ts = s.fleet.tenant_stats(0);
    ASSERT_GT(ts.issued, 0u);
    // The work was done — just uselessly late.
    EXPECT_GT(s.array.stats().ReadValue("array.ingress.completed_ndp"), 0.0);
    EXPECT_EQ(ts.goodput, 0u);
    EXPECT_GT(ts.late, 0u);
  }
}

TEST(ClientFleetTest, OpenLoopWeightSplitsArrivals) {
  db::Column col = RandomColumn(4096);
  TenantSpec heavy;
  heavy.name = "heavy";
  heavy.priority = JobPriority::kInteractive;
  heavy.weight = 3.0;
  heavy.deadline_ps = 0;
  TenantSpec light = heavy;
  light.name = "light";
  light.weight = 1.0;
  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.2;
  fcfg.seed = 13;
  Stack s(col, fcfg, {heavy, light});
  s.Run(500'000'000);  // ~100 arrivals
  uint64_t h = s.fleet.tenant_stats(0).issued;
  uint64_t l = s.fleet.tenant_stats(1).issued;
  ASSERT_GT(l, 0u);
  // 3:1 expected split; Poisson noise leaves plenty of room around 2:1.
  EXPECT_GT(h, 2 * l);
}

TEST(ClientFleetTest, ClosedLoopAccountsEveryRequestExactlyOnce) {
  db::Column col = RandomColumn(4096);
  TenantSpec closed;
  closed.name = "closed";
  closed.priority = JobPriority::kInteractive;
  closed.closed_loop_windows = 3;
  closed.deadline_ps = 0;
  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.01;  // unused by closed-loop tenants, must be > 0
  fcfg.think_ps = 1'000'000;
  fcfg.seed = 17;
  Stack s(col, fcfg, {closed});
  s.Run(300'000'000);
  const ClientFleet::TenantStats& ts = s.fleet.tenant_stats(0);
  // The window refills after each completion, so the loop keeps going...
  EXPECT_GT(ts.issued, 3u);
  // ...and after the drain every issued request has exactly one terminal
  // outcome: the self-throttling client never loses or double-counts one.
  EXPECT_EQ(ts.issued, ts.goodput + ts.shed + ts.late + ts.failed);
  EXPECT_GT(ts.goodput, 0u);
}

TEST(ClientFleetTest, OracleDisagreementCountsMismatches) {
  db::Column col = RandomColumn(4096);
  FleetConfig fcfg;
  fcfg.reqs_per_us = 0.02;
  fcfg.seed = 19;
  Stack s(col, fcfg, OneOpenTenant(0));
  // A deliberately wrong oracle: every completion must be flagged.
  s.fleet.set_oracle([](const ServingRequest&) { return ~uint64_t{0}; });
  s.Run(200'000'000);
  ASSERT_GT(s.fleet.goodput(), 0u);
  EXPECT_EQ(s.fleet.mismatches(), s.fleet.goodput());
  EXPECT_EQ(s.array.stats().ReadValue("fleet.tenant0.mismatches"),
            static_cast<double>(s.fleet.mismatches()));
  EXPECT_EQ(s.array.stats().ReadValue("fleet.tenant0.issued"),
            static_cast<double>(s.fleet.issued()));
}

}  // namespace
}  // namespace ndp::core
