// Multi-query runtime tests: lease-controller properties (QoS monotonicity,
// starvation freedom), oracle-matched concurrent jobs, work-stealing
// makespan, and byte-identical determinism.
#include "core/runtime.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/host_traffic.h"
#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

// -- LeaseController ----------------------------------------------------------

TEST(LeaseControllerTest, GrowsTowardCapWhenChannelIdle) {
  RuntimeConfig cfg;
  LeaseController lc(cfg);
  uint64_t initial = lc.NextLeaseBusCycles();
  for (int i = 0; i < 32; ++i) lc.Observe(10'000, 0, 0);
  EXPECT_TRUE(lc.ChannelIdle());
  EXPECT_GT(lc.NextLeaseBusCycles(), initial);
  EXPECT_EQ(lc.NextLeaseBusCycles(),
            std::min(cfg.lease_max_bus_cycles, cfg.qos_max_stall_bus_cycles));
  EXPECT_GT(lc.qos_grows(), 0u);
  // Idle channel collapses the host window to its floor.
  EXPECT_EQ(lc.HostWindowBusCycles(lc.NextLeaseBusCycles()),
            cfg.host_window_min_bus_cycles);
}

TEST(LeaseControllerTest, ShrinksToFloorWhenOverBudget) {
  RuntimeConfig cfg;
  LeaseController lc(cfg);
  for (int i = 0; i < 32; ++i) lc.Observe(10'000, 9'000, 100);
  EXPECT_TRUE(lc.OverBudget());
  EXPECT_EQ(lc.NextLeaseBusCycles(), cfg.lease_min_bus_cycles);
  EXPECT_GT(lc.qos_shrinks(), 0u);
  // Busy channel gets a window sized to keep the duty cycle within budget:
  // W >= L * (1 - beta) / beta.
  uint64_t lease = lc.NextLeaseBusCycles();
  double beta = cfg.qos_budget_fraction();
  EXPECT_GE(static_cast<double>(lc.HostWindowBusCycles(lease)),
            static_cast<double>(lease) * (1.0 - beta) / beta - 1.0);
}

TEST(LeaseControllerTest, HoldsInTheMiddleBand) {
  RuntimeConfig cfg;
  LeaseController lc(cfg);
  uint64_t initial = lc.NextLeaseBusCycles();
  // Busy fraction between idle threshold and budget: no adaptation.
  for (int i = 0; i < 16; ++i) lc.Observe(10'000, 1'500, 20);
  EXPECT_EQ(lc.NextLeaseBusCycles(), initial);
  EXPECT_EQ(lc.qos_shrinks() + lc.qos_grows(), 0u);
}

// Property: for the same observation sequence, a tighter QoS budget (smaller
// slowdown fraction and/or smaller stall cap) never yields a larger lease,
// and never a smaller host window.
TEST(LeaseControllerTest, TighterBudgetIsMonotone) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    RuntimeConfig loose;
    loose.qos_max_cpu_slowdown_pct = 10.0 + 40.0 * rng.NextDouble();
    loose.qos_max_stall_bus_cycles =
        20'000 + rng.NextBounded(100'000);
    RuntimeConfig tight = loose;
    // Stay above the 5% idle threshold (Validate requires threshold < budget).
    tight.qos_max_cpu_slowdown_pct =
        loose.qos_max_cpu_slowdown_pct * (0.6 + 0.3 * rng.NextDouble());
    tight.qos_max_stall_bus_cycles =
        loose.lease_min_bus_cycles +
        rng.NextBounded(static_cast<uint32_t>(loose.qos_max_stall_bus_cycles -
                                              loose.lease_min_bus_cycles + 1));
    ASSERT_TRUE(loose.Validate().ok());
    ASSERT_TRUE(tight.Validate().ok());

    LeaseController lc_loose(loose), lc_tight(tight);
    EXPECT_LE(lc_tight.NextLeaseBusCycles(), lc_loose.NextLeaseBusCycles());
    for (int step = 0; step < 200; ++step) {
      uint64_t window = 1'000 + rng.NextBounded(20'000);
      uint64_t busy = rng.NextBounded(static_cast<uint32_t>(window + 1));
      uint64_t requests = rng.NextBounded(200);
      lc_loose.Observe(window, busy, requests);
      lc_tight.Observe(window, busy, requests);
      uint64_t lease_loose = lc_loose.NextLeaseBusCycles();
      uint64_t lease_tight = lc_tight.NextLeaseBusCycles();
      ASSERT_LE(lease_tight, lease_loose)
          << "trial " << trial << " step " << step;
      // Both controllers see identical EWMAs, so ChannelIdle agrees; at the
      // same lease, the tighter budget demands at least as long a window.
      ASSERT_EQ(lc_tight.ChannelIdle(), lc_loose.ChannelIdle());
      ASSERT_GE(lc_tight.HostWindowBusCycles(lease_tight),
                lc_loose.HostWindowBusCycles(lease_tight))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(RuntimeConfigTest, ValidateRejectsBadKnobs) {
  RuntimeConfig cfg;
  cfg.lease_min_bus_cycles = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.lease_shrink = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.idle_busy_threshold = 0.5;  // above the 25% budget fraction
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RuntimeConfig{};
  cfg.qos_max_stall_bus_cycles = 100;  // below lease_min
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(RuntimeConfigTest, FromEnvStrictParse) {
  setenv("NDP_RUNTIME_LEASE_INIT", "30000", 1);
  auto ok = RuntimeConfig::FromEnv();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().lease_init_bus_cycles, 30'000u);
  setenv("NDP_RUNTIME_LEASE_INIT", "3zz", 1);
  EXPECT_FALSE(RuntimeConfig::FromEnv().ok());
  unsetenv("NDP_RUNTIME_LEASE_INIT");
}

// -- NdpRuntime ---------------------------------------------------------------

TEST(NdpRuntimeTest, ConcurrentJobsMatchOracle) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  RuntimeConfig cfg;
  NdpRuntime runtime(&array, cfg);
  db::Column a = RandomColumn(40'000, 21);
  db::Column b = RandomColumn(25'000, 22);
  PlacedColumn pa = array.PlaceColumn(a).ValueOrDie();
  PlacedColumn pb = array.PlaceColumn(b).ValueOrDie();

  auto s1 = runtime.SubmitSelect(pa, 0, 249'999).ValueOrDie();
  auto s2 = runtime.SubmitSelect(pa, 500'000, 999'999,
                                 JobPriority::kInteractive).ValueOrDie();
  auto s3 = runtime.SubmitSelect(pb, 100'000, 200'000).ValueOrDie();
  auto g1 = runtime.SubmitAggregate(pb, jafar::AggKind::kSum).ValueOrDie();
  ASSERT_TRUE(runtime.Drain().ok());

  const JobResult* r1 = runtime.result(s1);
  const JobResult* r2 = runtime.result(s2);
  const JobResult* r3 = runtime.result(s3);
  const JobResult* r4 = runtime.result(g1);
  ASSERT_TRUE(r1 && r2 && r3 && r4);
  EXPECT_EQ(r1->matches, Oracle(a, 0, 249'999));
  EXPECT_EQ(r2->matches, Oracle(a, 500'000, 999'999));
  EXPECT_EQ(r3->matches, Oracle(b, 100'000, 200'000));
  int64_t sum = 0;
  for (size_t i = 0; i < b.size(); ++i) sum += b[i];
  EXPECT_EQ(r4->agg_value, sum);
  // Bitmaps are exact, not just popcount-equal.
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(r1->bitmap.Get(i), a[i] >= 0 && a[i] <= 249'999) << "row " << i;
  }
  EXPECT_GT(r1->leases, 0u);
}

TEST(NdpRuntimeTest, StealingCutsSkewedMakespan) {
  db::Column col = RandomColumn(1u << 18, 31);
  auto run = [&](bool steal) {
    DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, Config());
    RuntimeConfig cfg;
    cfg.steal_enabled = steal;
    NdpRuntime runtime(&array, cfg);
    // 4x skew: device 0 holds ~4/7 of the column.
    PlacedColumn placed =
        array.PlaceColumn(col, {4.0, 1.0, 1.0, 1.0}).ValueOrDie();
    // Idle warm-up: give the lease controllers an observable stretch of
    // channel silence, as on any real system that has been up a while. A
    // t=0 submission would pay the conservative no-observation first window
    // in both runs, drowning the steal/no-steal contrast in a constant.
    array.eq().RunUntil(array.eq().Now() + 20'000'000);
    auto id = runtime.SubmitSelect(placed, 0, 499'999).ValueOrDie();
    EXPECT_TRUE(runtime.Drain().ok());
    const JobResult* r = runtime.result(id);
    EXPECT_EQ(r->matches, Oracle(col, 0, 499'999));
    return r->completed_ps - r->submitted_ps;
  };
  sim::Tick with_steal = run(true);
  sim::Tick without = run(false);
  EXPECT_GE(static_cast<double>(without),
            1.5 * static_cast<double>(with_steal))
      << "stealing should cut the 4x-skew makespan by >= 1.5x (got "
      << static_cast<double>(without) / static_cast<double>(with_steal)
      << "x)";
}

TEST(NdpRuntimeTest, BatchJobsCompleteUnderSaturatingHostTraffic) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  RuntimeConfig cfg;
  NdpRuntime runtime(&array, cfg);
  db::Column col = RandomColumn(16'384, 41);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  // CPU traffic saturating the one channel, over its own region. The rate
  // sits just above the channel's service rate: utilization pins at ~1.0
  // while the backlog (and thus retry-event volume) grows only slowly.
  uint64_t region = array.AllocOnDevice(0, 1u << 20).ValueOrDie();
  HostTrafficConfig tc;
  tc.reqs_per_us = 280.0;
  tc.seed = 7;
  tc.retry_backoff_ps = 500'000;  // 500 ns between backpressure retries
  HostTrafficGen traffic(&array.eq(), &array.dram().controller(0), tc);
  traffic.AddRegion(region, 1u << 20);
  traffic.Start();
  // Let the generator run alone so the controller EWMA starts saturated.
  array.eq().RunUntil(array.eq().Now() + 20'000'000);

  auto id = runtime.SubmitSelect(placed, 0, 499'999).ValueOrDie();
  ASSERT_TRUE(runtime.WaitFor(id).ok());  // starvation freedom: completes
  traffic.Stop();
  const JobResult* r = runtime.result(id);
  ASSERT_TRUE(r->status.ok());
  EXPECT_EQ(r->matches, Oracle(col, 0, 499'999));
  // The run was admission-gated and QoS-shrunk along the way.
  EXPECT_GT(array.stats().ReadValue("array.runtime.admission_defers"), 0.0);
  EXPECT_GT(runtime.controller(0).qos_shrinks(), 0u);
  EXPECT_GT(traffic.completed(), 0u);
}

TEST(NdpRuntimeTest, DeterministicAcrossRuns) {
  auto run = [] {
    DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
    RuntimeConfig cfg;
    NdpRuntime runtime(&array, cfg);
    db::Column col = RandomColumn(50'000, 51);
    PlacedColumn placed = array.PlaceColumn(col, {3.0, 1.0}).ValueOrDie();
    uint64_t region = array.AllocOnDevice(1, 1u << 18).ValueOrDie();
    HostTrafficConfig tc;
    tc.reqs_per_us = 40.0;
    tc.seed = 9;
    HostTrafficGen traffic(&array.eq(), &array.dram().controller(0), tc);
    traffic.AddRegion(region, 1u << 18);
    traffic.Start();
    auto s1 = runtime.SubmitSelect(placed, 0, 333'333).ValueOrDie();
    auto s2 = runtime.SubmitAggregate(placed, jafar::AggKind::kMax).ValueOrDie();
    EXPECT_TRUE(runtime.WaitFor(s1).ok());
    EXPECT_TRUE(runtime.WaitFor(s2).ok());
    traffic.Stop();
    return array.stats().Snapshot().ToText() +
           std::to_string(array.eq().Now());
  };
  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second) << "same seed must give byte-identical stats";
}

TEST(NdpRuntimeTest, PushdownHookFeedsPlanExecution) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column col = RandomColumn(20'000, 61);
  db::QueryContext ctx;
  ctx.ndp_select = runtime.MakePushdownHook();
  db::PositionList ndp = ScanSelect(&ctx, col, db::Pred::Between(0, 99'999));
  db::QueryContext cpu_ctx;
  db::PositionList cpu =
      ScanSelect(&cpu_ctx, col, db::Pred::Between(0, 99'999));
  EXPECT_EQ(ndp, cpu);
}

TEST(NdpRuntimeTest, BatchHookRunsConjunctsConcurrently) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column a = RandomColumn(20'000, 71);
  db::Column b = RandomColumn(20'000, 72);
  auto hook = runtime.MakePushdownBatchHook();
  auto lists = hook({{&a, db::Pred::Le(500'000)}, {&b, db::Pred::Ge(400'000)}});
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists.value().size(), 2u);
  db::QueryContext cpu_ctx;
  EXPECT_EQ(lists.value()[0],
            ScanSelect(&cpu_ctx, a, db::Pred::Le(500'000)));
  EXPECT_EQ(lists.value()[1],
            ScanSelect(&cpu_ctx, b, db::Pred::Ge(400'000)));
}

}  // namespace
}  // namespace ndp::core
