#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

TEST(NdpSchedulerTest, SlicedSelectMatchesExclusiveResult) {
  db::Column col = RandomColumn(100000, 3);
  core::SystemModel sys(PlatformConfig::Gem5());
  NdpScheduler scheduler(&sys, SchedulerConfig{});
  auto sliced = scheduler.RunSlicedSelect(col, 100000, 500000).ValueOrDie();
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 100000 && col[i] <= 500000;
  }
  EXPECT_EQ(sliced.matches, oracle);
  EXPECT_GT(sliced.slices, 1u);
  EXPECT_EQ(sliced.ownership_transfers, sliced.slices * 2);
  // Ownership is back with the host at the end.
  EXPECT_EQ(sys.dram().channel(0).rank(0).owner(), dram::RankOwner::kHost);
}

TEST(NdpSchedulerTest, RowsPerLeaseScalesWithLease) {
  core::SystemModel sys(PlatformConfig::Gem5());
  SchedulerConfig small;
  small.lease_bus_cycles = 5000;
  SchedulerConfig big;
  big.lease_bus_cycles = 50000;
  NdpScheduler s_small(&sys, small), s_big(&sys, big);
  EXPECT_GT(s_big.RowsPerLease(), 5 * s_small.RowsPerLease());
  // Lease rows are whole 4 kB pages.
  EXPECT_EQ(s_small.RowsPerLease() % 512, 0u);
}

TEST(NdpSchedulerTest, SlicingCostsThroughputButBoundsStall) {
  db::Column col = RandomColumn(262144, 5);
  // Exclusive baseline.
  core::SystemModel sys_ex(PlatformConfig::Gem5());
  auto exclusive = sys_ex.RunJafarSelect(col, 0, 499999).ValueOrDie();
  // Sliced run.
  core::SystemModel sys_sl(PlatformConfig::Gem5());
  SchedulerConfig cfg;
  cfg.lease_bus_cycles = 20000;
  cfg.host_window_bus_cycles = 2000;
  NdpScheduler scheduler(&sys_sl, cfg);
  auto sliced = scheduler.RunSlicedSelect(col, 0, 499999).ValueOrDie();
  EXPECT_EQ(sliced.matches, exclusive.matches);
  // Slicing costs something (hand-offs + host windows) but not too much.
  EXPECT_GT(sliced.duration_ps, exclusive.duration_ps);
  EXPECT_LT(sliced.duration_ps, exclusive.duration_ps * 2);
}

TEST(NdpSchedulerTest, HostWindowLetsCoRunningCpuProgress) {
  db::Column col = RandomColumn(262144, 7);
  core::SystemModel sys(PlatformConfig::Gem5());
  (void)sys.PinColumn(col);
  uint64_t cpu_base = sys.Allocate(100000 * 8, 4096);
  cpu::AggregateScanStream stream(100000, cpu_base);
  bool cpu_done = false;
  ASSERT_TRUE(sys.cpu().Run(&stream, [&](sim::Tick) { cpu_done = true; }).ok());

  SchedulerConfig cfg;
  cfg.lease_bus_cycles = 10000;
  cfg.host_window_bus_cycles = 10000;
  NdpScheduler scheduler(&sys, cfg);
  auto sliced = scheduler.RunSlicedSelect(col, 0, 499999).ValueOrDie();
  sys.eq().RunUntilTrue([&] { return cpu_done; });
  // The longest CPU stall is bounded by roughly one lease (plus hand-off).
  sim::Tick lease_ps = cfg.lease_bus_cycles *
                       sys.config().dram_timing.tck_ps;
  EXPECT_LT(sys.cpu().stats().max_retire_gap_ps, 3 * lease_ps);
  EXPECT_GT(sliced.slices, 2u);
}

}  // namespace
}  // namespace ndp::core
