#include "core/system.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

TEST(PlatformTest, PresetsMatchTable1Headlines) {
  PlatformConfig gem5 = PlatformConfig::Gem5();
  EXPECT_DOUBLE_EQ(gem5.core.clock.frequency_ghz(), 1.0);
  ASSERT_EQ(gem5.caches.size(), 2u);
  EXPECT_EQ(gem5.caches[0].size_bytes, 64u * 1024);
  EXPECT_EQ(gem5.caches[1].size_bytes, 128u * 1024);
  EXPECT_EQ(gem5.dram_org.TotalBytes(), 2ull << 30);
  EXPECT_EQ(gem5.caches[0].prefetch_degree, 0u);
  EXPECT_EQ(gem5.caches[1].prefetch_degree, 0u);

  PlatformConfig xeon = PlatformConfig::Xeon();
  EXPECT_DOUBLE_EQ(xeon.core.clock.frequency_ghz(), 2.0);
  ASSERT_EQ(xeon.caches.size(), 3u);
  EXPECT_EQ(xeon.caches[0].size_bytes, 256u * 1024);
  EXPECT_EQ(xeon.caches[1].size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(xeon.caches[2].size_bytes, 16u * 1024 * 1024);
  EXPECT_GT(xeon.dram_org.channels, 1u);

  EXPECT_NE(gem5.ToString().find("1.0 GHz"), std::string::npos);
  EXPECT_NE(xeon.ToString().find("2.0 GHz"), std::string::npos);
}

TEST(SystemModelTest, AllocatorIsAlignedAndMonotonic) {
  SystemModel sys(PlatformConfig::Gem5());
  uint64_t a = sys.Allocate(100);
  uint64_t b = sys.Allocate(100);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GT(b, a);
}

TEST(SystemModelTest, PinColumnIsIdempotentAndLoadsData) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(1000);
  uint64_t base1 = sys.PinColumn(col);
  uint64_t base2 = sys.PinColumn(col);
  EXPECT_EQ(base1, base2);
  for (size_t i = 0; i < col.size(); i += 111) {
    EXPECT_EQ(static_cast<int64_t>(sys.dram().backing_store().Read64(
                  base1 + i * 8)),
              col[i]);
  }
}

TEST(SystemModelTest, CpuAndJafarSelectAgreeFunctionally) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(20000, 3);
  auto cpu = sys.RunCpuSelect(col, 200000, 600000, db::SelectMode::kBranching);
  ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();
  auto jaf = sys.RunJafarSelect(col, 200000, 600000);
  ASSERT_TRUE(jaf.ok()) << jaf.status().ToString();
  EXPECT_EQ(cpu.value().matches, jaf.value().matches);
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 200000 && col[i] <= 600000;
  }
  EXPECT_EQ(cpu.value().matches, oracle);
}

TEST(SystemModelTest, JafarBeatsCpuOnLargeScan) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(65536, 4);
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  EXPECT_GT(cpu.duration_ps, 3 * jaf.duration_ps);
  EXPECT_LT(cpu.duration_ps, 15 * jaf.duration_ps);
}

TEST(SystemModelTest, OwnershipHandoffIsSmallFractionOfRun) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(65536, 5);
  auto jaf = sys.RunJafarSelect(col, 0, 999999).ValueOrDie();
  EXPECT_GT(jaf.ownership_ps, 0u);
  EXPECT_LT(jaf.ownership_ps * 100, jaf.duration_ps);
  // Ownership is returned to the host at the end.
  EXPECT_EQ(sys.dram().channel(0).rank(0).owner(), dram::RankOwner::kHost);
}

TEST(SystemModelTest, JafarTimeIndependentOfSelectivityCpuTimeIsNot) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(32768, 6);
  (void)sys.RunJafarSelect(col, 0, 1).ValueOrDie();  // warm up bank state
  auto j0 = sys.RunJafarSelect(col, -2, -1).ValueOrDie();
  auto j1 = sys.RunJafarSelect(col, 0, 999999).ValueOrDie();
  double jratio = static_cast<double>(j1.duration_ps) /
                  static_cast<double>(j0.duration_ps);
  EXPECT_NEAR(jratio, 1.0, 0.02);

  auto c0 = sys.RunCpuSelect(col, -2, -1, db::SelectMode::kBranching)
                .ValueOrDie();
  auto c1 = sys.RunCpuSelect(col, 0, 999999, db::SelectMode::kBranching)
                .ValueOrDie();
  EXPECT_GT(c1.duration_ps, c0.duration_ps * 13 / 10);
}

TEST(SystemModelTest, ReplayTraceDrivesMemorySystem) {
  SystemModel sys(PlatformConfig::Xeon());
  std::vector<cpu::TraceEvent> events;
  for (int i = 0; i < 2000; ++i) {
    events.push_back({cpu::TraceEvent::Kind::kCompute, 4});
    events.push_back(
        {cpu::TraceEvent::Kind::kLoad, static_cast<uint64_t>(i) * 64});
  }
  auto run = sys.ReplayTrace(events).ValueOrDie();
  EXPECT_GT(run.duration_ps, 0u);
  EXPECT_EQ(run.stats.loads, 2000u);
  EXPECT_GT(sys.dram().TotalCounters().reads_served, 100u);
}

TEST(SystemModelTest, PushdownHookMatchesCpuOperators) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(8192, 8);
  db::QueryContext plain;
  db::QueryContext pushed;
  pushed.ndp_select = sys.MakePushdownHook();
  for (const db::Pred& pred :
       {db::Pred::Between(100000, 300000), db::Pred::Eq(col[5]),
        db::Pred::Le(500000), db::Pred::Ge(500000), db::Pred::Lt(500000),
        db::Pred::Gt(500000)}) {
    auto cpu_pos = db::ScanSelect(&plain, col, pred);
    auto ndp_pos = db::ScanSelect(&pushed, col, pred);
    EXPECT_EQ(cpu_pos, ndp_pos);
  }
  // Unsupported predicate falls back to the CPU path.
  auto ne_cpu = db::ScanSelect(&plain, col, db::Pred::Ne(col[0]));
  auto ne_ndp = db::ScanSelect(&pushed, col, db::Pred::Ne(col[0]));
  EXPECT_EQ(ne_cpu, ne_ndp);
}

TEST(SystemModelTest, DumpStatsCoversAllComponents) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(4096, 12);
  (void)sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
      .ValueOrDie();
  (void)sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  std::string stats = sys.DumpStats();
  for (const char* key :
       {"system.ticks_ps", "system.cpu.core.uops_retired",
        "system.cpu.l1.misses", "system.cpu.l2.hits",
        "system.dram.ctrl0.reads_served", "system.dram.ctrl0.row_hits",
        "system.dram.ctrl0.idle_cycles.p90",
        "system.jafar.dev0.jobs_completed",
        "system.jafar.dev0.bursts_read", "system.jafar.dev0.energy_fj"}) {
    EXPECT_NE(stats.find(key), std::string::npos) << key;
  }
  // The registry walk matches the live counters, and reflects activity.
  const StatsRegistry& reg = sys.stats();
  EXPECT_GT(reg.Snapshot().Count("system.cpu.core.uops_retired"), 0u);
  EXPECT_EQ(reg.Snapshot().Count("system.cpu.core.uops_retired"),
            sys.cpu().stats().uops_retired);
  // Runs accumulate: nothing reset the counters behind our back.
  EXPECT_GT(sys.jafar().stats().jobs_completed, 0u);
}

TEST(SystemModelTest, PredicatedCpuSelectIsSelectivityStable) {
  SystemModel sys(PlatformConfig::Gem5());
  db::Column col = RandomColumn(32768, 9);
  auto p0 = sys.RunCpuSelect(col, -2, -1, db::SelectMode::kPredicated)
                .ValueOrDie();
  auto p1 = sys.RunCpuSelect(col, 0, 999999, db::SelectMode::kPredicated)
                .ValueOrDie();
  double ratio = static_cast<double>(p1.duration_ps) /
                 static_cast<double>(p0.duration_ps);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

}  // namespace
}  // namespace ndp::core
