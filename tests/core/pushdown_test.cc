#include "core/pushdown.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

TEST(CostModelTest, CpuCostGrowsWithSelectivity) {
  PlatformConfig p = PlatformConfig::Gem5();
  double lo = CostModel::CpuSelectPs(p, 1 << 20, 0.0);
  double mid = CostModel::CpuSelectPs(p, 1 << 20, 0.5);
  double hi = CostModel::CpuSelectPs(p, 1 << 20, 1.0);
  EXPECT_LT(lo, mid);
  EXPECT_LT(lo, hi);
}

TEST(CostModelTest, CostsScaleLinearlyWithRows) {
  PlatformConfig p = PlatformConfig::Gem5();
  double c1 = CostModel::CpuSelectPs(p, 1 << 18, 0.5);
  double c4 = CostModel::CpuSelectPs(p, 1 << 20, 0.5);
  EXPECT_NEAR(c4 / c1, 4.0, 0.2);
  double j1 = CostModel::JafarSelectPs(p, 1 << 18);
  double j4 = CostModel::JafarSelectPs(p, 1 << 20);
  EXPECT_NEAR(j4 / j1, 4.0, 0.3);
}

TEST(CostModelTest, EstimatesTrackSimulatedTimesWithinFactorTwo) {
  PlatformConfig p = PlatformConfig::Gem5();
  SystemModel sys(p);
  db::Column col = RandomColumn(65536, 2);
  auto cpu = sys.RunCpuSelect(col, 0, 499999, db::SelectMode::kBranching)
                 .ValueOrDie();
  auto jaf = sys.RunJafarSelect(col, 0, 499999).ValueOrDie();
  double cpu_est = CostModel::CpuSelectPs(p, col.size(), 0.5);
  double jaf_est = CostModel::JafarSelectPs(p, col.size());
  EXPECT_GT(cpu_est, 0.5 * static_cast<double>(cpu.duration_ps));
  EXPECT_LT(cpu_est, 2.0 * static_cast<double>(cpu.duration_ps));
  EXPECT_GT(jaf_est, 0.5 * static_cast<double>(jaf.duration_ps));
  EXPECT_LT(jaf_est, 2.0 * static_cast<double>(jaf.duration_ps));
}

TEST(PushdownPlannerTest, LargeScansGoToJafarTinyOnesStayOnCpu) {
  SystemModel sys(PlatformConfig::Gem5());
  PushdownPlanner planner(&sys);
  PushdownDecision big = planner.Decide(1 << 20, 0.5);
  EXPECT_TRUE(big.use_jafar) << big.reason;
  PushdownDecision tiny = planner.Decide(256, 0.5);
  EXPECT_FALSE(tiny.use_jafar) << tiny.reason;
}

TEST(PushdownPlannerTest, InstalledHookRoutesByDecision) {
  SystemModel sys(PlatformConfig::Gem5());
  PushdownPlanner planner(&sys);
  db::QueryContext ctx;
  planner.Install(&ctx);

  // Large column: pushed down (operator label says jafar).
  db::Column big = RandomColumn(32768, 7);
  auto pos_big = db::ScanSelect(&ctx, big, db::Pred::Between(0, 499999));
  ASSERT_FALSE(ctx.stats.empty());
  EXPECT_EQ(ctx.stats.back().op, "scan_select[jafar]");

  // Tiny column: planner declines, CPU path used, result still correct.
  db::Column tiny = RandomColumn(128, 8);
  auto pos_tiny = db::ScanSelect(&ctx, tiny, db::Pred::Between(0, 499999));
  EXPECT_EQ(ctx.stats.back().op, "scan_select");
  db::QueryContext plain;
  EXPECT_EQ(pos_tiny,
            db::ScanSelect(&plain, tiny, db::Pred::Between(0, 499999)));
  EXPECT_EQ(pos_big, db::ScanSelect(&plain, big, db::Pred::Between(0, 499999)));
}

}  // namespace
}  // namespace ndp::core
