#include "core/profiling.h"

#include <gtest/gtest.h>

#include "db/tpch.h"
#include "db/tpch_queries.h"

namespace ndp::core {
namespace {

TEST(IdleProfileTest, EstimatorMatchesPaperFormula) {
  IdleProfile p;
  p.total_bus_cycles = 10000;
  p.rc_busy_cycles = 3000;
  p.wc_busy_cycles = 1000;
  p.reads = 10;
  p.writes = 2;
  // MC_empty = 10000 - 3000 - 1000 = 6000; mean = 6000 / 12 = 500.
  EXPECT_DOUBLE_EQ(p.EstimatedMeanIdleCycles(), 500.0);
  // §3.3 corollary: 500 cycles / 4 per block * 32 B = 4000 B ≈ 4 KB.
  EXPECT_DOUBLE_EQ(p.BytesPerIdlePeriodPaperAccounting(), 4000.0);
}

TEST(IdleProfileTest, EdgeCases) {
  IdleProfile p;
  EXPECT_DOUBLE_EQ(p.EstimatedMeanIdleCycles(), 0.0);  // no requests
  p.reads = 5;
  p.total_bus_cycles = 10;
  p.rc_busy_cycles = 50;  // busy exceeds total (overlap): clamps to 0
  EXPECT_DOUBLE_EQ(p.EstimatedMeanIdleCycles(), 0.0);
}

TEST(IdlePeriodProfilerTest, ComputeHeavyTraceHasLongerIdlePeriods) {
  auto profile_with_gap = [](uint64_t compute) {
    SystemModel sys(PlatformConfig::Xeon());
    IdlePeriodProfiler profiler(&sys);
    std::vector<cpu::TraceEvent> events;
    for (int i = 0; i < 3000; ++i) {
      events.push_back({cpu::TraceEvent::Kind::kCompute, compute});
      events.push_back(
          {cpu::TraceEvent::Kind::kLoad, static_cast<uint64_t>(i) * 64});
    }
    return profiler.Profile("synthetic", events).ValueOrDie();
  };
  IdleProfile light = profile_with_gap(2);
  IdleProfile heavy = profile_with_gap(200);
  EXPECT_GT(heavy.EstimatedMeanIdleCycles(), light.EstimatedMeanIdleCycles());
  EXPECT_GT(heavy.EstimatedMeanIdleCycles(), 10.0);
}

TEST(IdlePeriodProfilerTest, EstimatorIsPessimisticVsMeasured) {
  // The paper calls its estimator a lower bound; the measured mean idle gap
  // (both queues simultaneously empty) should be >= the estimate, up to
  // sampling noise on short traces.
  SystemModel sys(PlatformConfig::Xeon());
  IdlePeriodProfiler profiler(&sys);
  std::vector<cpu::TraceEvent> events;
  for (int i = 0; i < 5000; ++i) {
    events.push_back({cpu::TraceEvent::Kind::kCompute, 50});
    events.push_back(
        {cpu::TraceEvent::Kind::kLoad, static_cast<uint64_t>(i) * 64});
    if (i % 4 == 0) {
      events.push_back(
          {cpu::TraceEvent::Kind::kStore, 1 << 26 | (static_cast<uint64_t>(i) * 64)});
    }
  }
  IdleProfile p = profiler.Profile("mixed", events).ValueOrDie();
  EXPECT_GT(p.reads, 0u);
  EXPECT_GT(p.MeasuredMeanIdleCycles(), 0.6 * p.EstimatedMeanIdleCycles());
}

TEST(IdlePeriodProfilerTest, TpchQ6TraceProfilesEndToEnd) {
  db::Catalog catalog;
  db::tpch::TpchConfig cfg;
  cfg.scale = 0.001;
  db::tpch::Generate(cfg, &catalog);
  db::TraceRecorder trace;
  db::QueryContext ctx;
  ctx.trace = &trace;
  int64_t revenue = db::tpch::RunQ6(&ctx, &catalog);
  EXPECT_GT(revenue, 0);

  SystemModel sys(PlatformConfig::Xeon());
  IdlePeriodProfiler profiler(&sys);
  IdleProfile p = profiler.Profile("Q6", trace.events()).ValueOrDie();
  EXPECT_GT(p.total_bus_cycles, 0u);
  EXPECT_GT(p.reads + p.writes, 100u);
  EXPECT_GT(p.EstimatedMeanIdleCycles(), 0.0);
}

}  // namespace
}  // namespace ndp::core
