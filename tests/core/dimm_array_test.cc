#include "core/dimm_array.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::core {
namespace {

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

TEST(DimmArrayTest, BuildsOneDevicePerRank) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  EXPECT_EQ(array.num_devices(), 4u);
  array.AcquireAllOwnership();
  for (uint32_t ch = 0; ch < 2; ++ch) {
    for (uint32_t rk = 0; rk < 2; ++rk) {
      EXPECT_EQ(array.dram().channel(ch).rank(rk).owner(),
                dram::RankOwner::kAccelerator);
    }
  }
}

TEST(DimmArrayTest, PartitionsCoverAllRows) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, Config());
  db::Column col = RandomColumn(100000);
  auto counts = array.LoadPartitioned(col);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, col.size());
  // Partition boundaries are bitmap-word aligned.
  uint64_t row = 0;
  for (size_t i = 0; i + 1 < counts.size(); ++i) {
    row += counts[i];
    EXPECT_EQ(row % 64, 0u) << "partition " << i;
  }
}

TEST(DimmArrayTest, ParallelSelectMatchesOracle) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  array.AcquireAllOwnership();
  db::Column col = RandomColumn(50000, 5);
  array.LoadPartitioned(col);
  auto result = array.RunParallelSelect(100000, 600000).ValueOrDie();
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    bool pass = col[i] >= 100000 && col[i] <= 600000;
    oracle += pass;
    EXPECT_EQ(result.bitmap.Get(i), pass) << "row " << i;
  }
  EXPECT_EQ(result.matches, oracle);
}

TEST(DimmArrayTest, ParallelismShortensMakespan) {
  db::Column col = RandomColumn(262144, 6);
  auto run = [&](uint32_t channels) {
    DimmArray array(dram::DramTiming::DDR3_1600(), channels, 1, Config());
    array.AcquireAllOwnership();
    array.LoadPartitioned(col);
    return array.RunParallelSelect(0, 499999).ValueOrDie().duration_ps;
  };
  sim::Tick one = run(1);
  sim::Tick four = run(4);
  EXPECT_GT(one, 3 * four);
  EXPECT_LT(one, 5 * four);
}

TEST(DimmArrayTest, SplitRowsRaggedKeepsWordAlignedBoundaries) {
  // 100 rows over 3 devices used to round every partition to 64 rows and
  // lose the remainder; now the whole count lands, word-aligned.
  auto counts = DimmArray::SplitRows(100, 3, {});
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, 100u);
  // Boundaries before every later non-empty partition stay 64-aligned.
  uint64_t row = 0;
  for (size_t i = 0; i + 1 < counts.size(); ++i) {
    row += counts[i];
    bool later_nonempty = false;
    for (size_t j = i + 1; j < counts.size(); ++j) {
      later_nonempty |= counts[j] > 0;
    }
    if (later_nonempty) {
      EXPECT_EQ(row % 64, 0u) << "boundary " << i;
    }
  }
}

TEST(DimmArrayTest, SplitRowsDegenerateFewerRowsThanDevices) {
  // 10 rows over 16 devices crashed the old rounding (zero-row partitions
  // tripped the coverage check). The tail lands on one device now.
  auto counts = DimmArray::SplitRows(10, 16, {});
  ASSERT_EQ(counts.size(), 16u);
  uint64_t total = 0, nonempty = 0;
  for (uint64_t c : counts) {
    total += c;
    nonempty += c > 0;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(nonempty, 1u);
}

TEST(DimmArrayTest, SplitRowsWeightedSkew) {
  auto counts = DimmArray::SplitRows(1u << 18, 4, {4.0, 1.0, 1.0, 1.0});
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, uint64_t{1} << 18);
  // Device 0 gets ~4x each of the others (within a 64-row block of skew).
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[0]),
                4.0 * static_cast<double>(counts[i]), 4 * 64.0);
  }
}

TEST(DimmArrayTest, LoadPartitionedRaggedMatchesOracle) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 4, 1, Config());
  array.AcquireAllOwnership();
  db::Column col = RandomColumn(100037, 11);  // ragged on purpose
  auto counts = array.LoadPartitioned(col);
  ASSERT_EQ(counts.size(), 4u);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, col.size());
  auto result = array.RunParallelSelect(250000, 750000).ValueOrDie();
  uint64_t oracle = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    oracle += col[i] >= 250000 && col[i] <= 750000;
  }
  EXPECT_EQ(result.matches, oracle);
}

TEST(DimmArrayTest, LoadPartitionedMoreDevicesThanRows) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 2, Config());
  array.AcquireAllOwnership();
  db::Column col = RandomColumn(10, 12);
  auto counts = array.LoadPartitioned(col);
  ASSERT_EQ(counts.size(), 4u);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, 10u);
  auto result = array.RunParallelSelect(0, 999999).ValueOrDie();
  EXPECT_EQ(result.matches, 10u);
}

TEST(DimmArrayTest, SelectBeforeLoadFails) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  array.AcquireAllOwnership();
  EXPECT_EQ(array.RunParallelSelect(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ndp::core
