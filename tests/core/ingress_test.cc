// Serving-ingress unit tests: strict config parsing, every shed point at the
// door (ring full, slot pool empty, expired, governor), deadline propagation
// through admission and retire, the brownout CPU-fallback route, and the
// registered stats surface the governor itself reads.
#include "core/ingress.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/host_traffic.h"
#include "core/runtime.h"
#include "util/rng.h"

namespace ndp::core {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const std::string& name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name.c_str());
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

db::Column RandomColumn(size_t n, uint64_t seed = 1) {
  db::Column col = db::Column::Int64("v");
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) col.Append(rng.NextInRange(0, 999999));
  return col;
}

uint64_t Oracle(const db::Column& col, int64_t lo, int64_t hi) {
  uint64_t n = 0;
  for (size_t i = 0; i < col.size(); ++i) n += col[i] >= lo && col[i] <= hi;
  return n;
}

jafar::DeviceConfig Config() {
  return jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                     accel::DatapathResources{})
      .ValueOrDie();
}

std::vector<TenantSpec> TwoTenants(sim::Tick interactive_deadline_ps = 0,
                                   sim::Tick batch_deadline_ps = 0) {
  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.priority = JobPriority::kInteractive;
  interactive.deadline_ps = interactive_deadline_ps;
  TenantSpec batch;
  batch.name = "batch";
  batch.priority = JobPriority::kBatch;
  batch.deadline_ps = batch_deadline_ps;
  return {interactive, batch};
}

ServingRequest Req(uint32_t tenant, int64_t lo, int64_t hi,
                   sim::Tick deadline_ps = 0) {
  ServingRequest req;
  req.tenant = tenant;
  req.table = 0;
  req.lo = lo;
  req.hi = hi;
  req.deadline_ps = deadline_ps;
  return req;
}

// -- IngressConfig ------------------------------------------------------------

TEST(IngressConfigTest, ValidateRejectsBadShapes) {
  EXPECT_TRUE(IngressConfig{}.Validate().ok());
  IngressConfig cfg;
  cfg.ring_capacity = 100;  // not a power of two
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = IngressConfig{};
  cfg.rings = 8;
  cfg.slots = 4;  // fewer slots than rings
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = IngressConfig{};
  cfg.shed_threshold = 0.9;  // shed above brownout
  cfg.brownout_threshold = 0.8;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = IngressConfig{};
  cfg.governor_hysteresis = cfg.shed_threshold;  // must be strictly below
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = IngressConfig{};
  cfg.governor_alpha = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(IngressConfigTest, FromEnvOverlaysAndParsesStrictly) {
  {
    ScopedEnv slots("NDP_INGRESS_SLOTS", "96");
    ScopedEnv alpha("NDP_INGRESS_GOVERNOR_ALPHA", "0.5");
    ScopedEnv governor("NDP_INGRESS_GOVERNOR", "0");
    Result<IngressConfig> cfg = IngressConfig::FromEnv();
    ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
    EXPECT_EQ(cfg.ValueOrDie().slots, 96u);
    EXPECT_DOUBLE_EQ(cfg.ValueOrDie().governor_alpha, 0.5);
    EXPECT_FALSE(cfg.ValueOrDie().governor_enabled);
  }
  {
    // A typo must fail loudly, not silently configure another experiment.
    ScopedEnv slots("NDP_INGRESS_SLOTS", "lots");
    EXPECT_FALSE(IngressConfig::FromEnv().ok());
  }
  {
    // Strict parse succeeds but the shape is invalid: still an error.
    ScopedEnv cap("NDP_INGRESS_RING_CAPACITY", "100");
    EXPECT_FALSE(IngressConfig::FromEnv().ok());
  }
}

// -- Door sheds ---------------------------------------------------------------

TEST(ServingIngressTest, ShedsAtRingCapacityAndSlotExhaustion) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column col = RandomColumn(1024);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  IngressConfig cfg;
  cfg.rings = 1;
  cfg.ring_capacity = 2;
  cfg.slots = 8;
  ServingIngress ingress(&runtime, &array, cfg, TwoTenants());
  ASSERT_EQ(ingress.AddTable(&col, &placed), 0u);

  // Without pumping, the third request finds the ring full; the refused
  // request must release its slot back to the pool.
  std::vector<ServeOutcome> outcomes;
  auto record = [&outcomes](const ServingResult& r) {
    outcomes.push_back(r.outcome);
  };
  EXPECT_TRUE(ingress.Enqueue(0, Req(0, 0, 10), record));
  EXPECT_TRUE(ingress.Enqueue(0, Req(0, 0, 10), record));
  EXPECT_FALSE(ingress.Enqueue(0, Req(0, 0, 10), record));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], ServeOutcome::kShedRingFull);
  EXPECT_EQ(ingress.slots_in_use(), 2u);
  EXPECT_GT(array.stats().ReadValue("array.ingress.shed_ring_full"), 0.0);

  // Exhaust the pool through a second ring: with 8 slots and 2 held, a
  // too-small pool sheds before the ring does.
  IngressConfig tiny;
  tiny.rings = 1;
  tiny.ring_capacity = 8;
  tiny.slots = 2;
  DimmArray array2(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime2(&array2, RuntimeConfig{});
  PlacedColumn placed2 = array2.PlaceColumn(col).ValueOrDie();
  ServingIngress ingress2(&runtime2, &array2, tiny, TwoTenants());
  ingress2.AddTable(&col, &placed2);
  outcomes.clear();
  EXPECT_TRUE(ingress2.Enqueue(0, Req(0, 0, 10), record));
  EXPECT_TRUE(ingress2.Enqueue(0, Req(0, 0, 10), record));
  EXPECT_FALSE(ingress2.Enqueue(0, Req(0, 0, 10), record));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], ServeOutcome::kShedSlotsExhausted);
  EXPECT_GT(array2.stats().ReadValue("array.ingress.shed_slots_exhausted"),
            0.0);
}

TEST(ServingIngressTest, ExpiredDeadlineIsRefusedAtTheDoor) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column col = RandomColumn(1024);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  ServingIngress ingress(&runtime, &array, IngressConfig{}, TwoTenants());
  ingress.AddTable(&col, &placed);

  array.eq().RunUntil(1'000'000);  // now = 1 us; deadline below is in the past
  std::vector<ServeOutcome> outcomes;
  EXPECT_FALSE(ingress.Enqueue(0, Req(0, 0, 10, /*deadline_ps=*/500'000),
                               [&outcomes](const ServingResult& r) {
                                 outcomes.push_back(r.outcome);
                               }));
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], ServeOutcome::kExpiredAtAdmission);
  EXPECT_EQ(ingress.slots_in_use(), 0u);
  EXPECT_GT(array.stats().ReadValue("array.ingress.expired_at_admission"),
            0.0);
}

// -- The served path ----------------------------------------------------------

TEST(ServingIngressTest, ServesBothPrioritiesAndMatchesOracle) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 2, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column col = RandomColumn(8192);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  ServingIngress ingress(&runtime, &array, IngressConfig{}, TwoTenants());
  ingress.AddTable(&col, &placed);

  std::vector<ServingResult> results;
  auto record = [&results](const ServingResult& r) { results.push_back(r); };
  ingress.Start();
  EXPECT_TRUE(ingress.Enqueue(0, Req(0, 100'000, 600'000), record));
  EXPECT_TRUE(ingress.Enqueue(1, Req(1, 0, 300'000), record));
  ingress.Stop();
  ASSERT_TRUE(ingress.Drain().ok());
  ASSERT_TRUE(runtime.Drain().ok());

  ASSERT_EQ(results.size(), 2u);
  for (const ServingResult& r : results) {
    EXPECT_EQ(r.outcome, ServeOutcome::kOk);
    EXPECT_GT(r.completed_ps, r.accepted_ps);
  }
  EXPECT_EQ(results[0].matches, Oracle(col, 100'000, 600'000));
  EXPECT_EQ(results[1].matches, Oracle(col, 0, 300'000));
  // The counter surface the bench and the governor read, by registered name.
  const StatsRegistry& reg = array.stats();
  EXPECT_EQ(reg.ReadValue("array.ingress.accepted"), 2.0);
  EXPECT_GE(reg.ReadValue("array.ingress.bursts"), 1.0);
  EXPECT_EQ(reg.ReadValue("array.ingress.admitted_interactive"), 1.0);
  EXPECT_EQ(reg.ReadValue("array.ingress.admitted_batch"), 1.0);
  EXPECT_EQ(reg.ReadValue("array.ingress.completed_ndp"), 2.0);
  EXPECT_EQ(reg.ReadValue("array.ingress.slots_in_use"), 0.0);
}

TEST(ServingIngressTest, DeadlinePropagatesIntoTheRuntimeAndCancels) {
  // Control run: measure the undisturbed accepted-to-completed latency.
  db::Column col = RandomColumn(8192);
  sim::Tick control_latency = 0;
  {
    DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
    NdpRuntime runtime(&array, RuntimeConfig{});
    PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
    ServingIngress ingress(&runtime, &array, IngressConfig{}, TwoTenants());
    ingress.AddTable(&col, &placed);
    ServingResult out;
    ingress.Start();
    ingress.Enqueue(0, Req(0, 0, 500'000),
                    [&out](const ServingResult& r) { out = r; });
    ingress.Stop();
    ASSERT_TRUE(ingress.Drain().ok());
    ASSERT_TRUE(runtime.Drain().ok());
    ASSERT_EQ(out.outcome, ServeOutcome::kOk);
    control_latency = out.completed_ps - out.accepted_ps;
    ASSERT_GT(control_latency, 0);
  }

  // Same request with a deadline at half that latency: it survives admission
  // (the pump runs well before the midpoint) but must be cancelled at a chunk
  // boundary instead of completing late.
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();
  ServingIngress ingress(&runtime, &array, IngressConfig{}, TwoTenants());
  ingress.AddTable(&col, &placed);
  ServingResult out;
  ingress.Start();
  ingress.Enqueue(
      0, Req(0, 0, 500'000, array.eq().Now() + control_latency / 2),
      [&out](const ServingResult& r) { out = r; });
  ingress.Stop();
  ASSERT_TRUE(ingress.Drain().ok());
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_EQ(out.outcome, ServeOutcome::kDeadlineExceeded);
  EXPECT_GT(array.stats().ReadValue("array.ingress.deadline_exceeded"), 0.0);
  EXPECT_GE(array.stats().ReadValue("array.runtime.deadline_cancellations"),
            1.0);
}

// -- Overload governor --------------------------------------------------------

TEST(ServingIngressTest, GovernorEscalatesShedsBatchAndRoutesToCpu) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  db::Column col = RandomColumn(32 * 1024);
  PlacedColumn placed = array.PlaceColumn(col).ValueOrDie();

  IngressConfig cfg;
  cfg.rings = 1;
  cfg.ring_capacity = 8;
  // Four slow jobs put occupancy exactly at the brownout threshold (4/5 =
  // 0.8) while leaving one slot free for the post-brownout arrival below.
  cfg.slots = 5;
  cfg.governor_alpha = 1.0;  // react on the first occupancy sample
  cfg.governor_poll_bus_cycles = 1'600;
  cfg.brownout_ndp_inflight = 1;
  cfg.cpu_scan_bus_cycles_per_row = 1;
  ServingIngress ingress(&runtime, &array, cfg, TwoTenants());
  ingress.AddTable(&col, &placed);

  std::vector<ServeOutcome> outcomes;
  auto record = [&outcomes](const ServingResult& r) {
    outcomes.push_back(r.outcome);
  };
  ingress.Start();
  EXPECT_EQ(ingress.state(), OverloadState::kHealthy);
  // Fill the pool with slow interactive work; the first governor sample sees
  // occupancy 1.0 and jumps straight to brownout.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ingress.Enqueue(0, Req(0, 0, 500'000), record));
  }
  ASSERT_TRUE(array.RunUntilTrue(
      [&ingress] { return ingress.state() == OverloadState::kBrownout; }));
  EXPECT_GE(ingress.occupancy_ewma(), cfg.brownout_threshold);
  EXPECT_GT(array.stats().ReadValue("array.ingress.governor_transitions"),
            0.0);
  EXPECT_GT(array.stats().ReadValue("array.ingress.overload_state"), 0.0);
  EXPECT_GT(array.stats().ReadValue("array.ingress.occupancy_ewma"), 0.0);

  // Under brownout a batch tenant is refused at the door...
  size_t before = outcomes.size();
  EXPECT_FALSE(ingress.Enqueue(0, Req(1, 0, 500'000), record));
  ASSERT_EQ(outcomes.size(), before + 1);
  EXPECT_EQ(outcomes.back(), ServeOutcome::kShedLowPriority);
  EXPECT_GT(array.stats().ReadValue("array.ingress.shed_low_priority"), 0.0);

  // ...while interactive overflow past the NDP bound routes to the
  // bit-identical CPU fallback.
  ASSERT_TRUE(ingress.Enqueue(0, Req(0, 0, 500'000), record));
  ingress.Stop();
  ASSERT_TRUE(ingress.Drain().ok());
  ASSERT_TRUE(runtime.Drain().ok());
  EXPECT_GT(array.stats().ReadValue("array.ingress.completed_cpu"), 0.0);
  uint64_t served = 0;
  for (ServeOutcome o : outcomes) served += IsGoodput(o);
  EXPECT_EQ(served, 5u);
}

TEST(ServingIngressTest, RetryTokensRefillTowardCapacity) {
  DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, Config());
  NdpRuntime runtime(&array, RuntimeConfig{});
  IngressConfig cfg;
  cfg.retry_tokens = 4.0;
  cfg.retry_refill_per_ms = 2.0;
  ServingIngress ingress(&runtime, &array, cfg, TwoTenants());
  // The bucket starts full and refill never overshoots the cap.
  EXPECT_DOUBLE_EQ(ingress.retry_tokens(0), 4.0);
  array.eq().RunUntil(10'000'000'000);  // 10 simulated ms
  EXPECT_DOUBLE_EQ(ingress.retry_tokens(0), 4.0);
}

}  // namespace
}  // namespace ndp::core
