// Graceful-degradation tests: a faulted JAFAR must never produce a wrong
// query answer — failed pushdowns transparently re-execute on the CPU scalar
// path (bit-identical to a CPU-only run and to the zone-map path), repeated
// failures open the circuit breaker, and partial device results can never
// double-count rows.
#include <gtest/gtest.h>

#include <string>

#include "core/pushdown.h"
#include "core/system.h"
#include "db/zonemap.h"
#include "util/rng.h"

namespace ndp::core {
namespace {

/// StatsSnapshot::ToText pads the path to a fixed column, so a substring
/// match on "path value" never hits; find the line and compare its value.
bool DumpHas(const std::string& dump, const std::string& path, long long v) {
  size_t pos = dump.find(path + " ");
  if (pos == std::string::npos) return false;
  size_t eol = dump.find('\n', pos);
  std::string line = dump.substr(pos, eol - pos);
  return std::stoll(line.substr(line.find_last_of(' ') + 1)) == v;
}

db::Column MakeColumn(uint64_t rows, uint64_t seed) {
  db::Column col = db::Column::Int64("col");
  col.Reserve(rows);
  Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) col.Append(rng.NextInRange(0, 999));
  return col;
}

TEST(PushdownHygieneTest, AcceptsStrictlyIncreasingInRange) {
  EXPECT_TRUE(ValidatePushdownResult({}, 10).ok());
  EXPECT_TRUE(ValidatePushdownResult({0, 1, 5, 9}, 10).ok());
}

TEST(PushdownHygieneTest, RejectsDuplicatesOutOfOrderAndOutOfRange) {
  // A duplicated position is exactly the double-count a leaked partial
  // device result would produce.
  EXPECT_EQ(ValidatePushdownResult({3, 3}, 10).code(), StatusCode::kInternal);
  EXPECT_EQ(ValidatePushdownResult({5, 2}, 10).code(), StatusCode::kInternal);
  EXPECT_EQ(ValidatePushdownResult({2, 10}, 10).code(),
            StatusCode::kInternal);
}

#ifdef NDP_FAULT_INJECT

TEST(FallbackTest, PermanentDeviceFailureFallsBackBitIdentically) {
  db::Column col = MakeColumn(2048, 41);
  db::Pred pred = db::Pred::Between(100, 499);

  // CPU-only oracle.
  db::QueryContext plain;
  db::PositionList expected = db::ScanSelect(&plain, col, pred);

  PlatformConfig config = PlatformConfig::Gem5();
  config.fault_plan.seed = 51;
  config.fault_plan.hang_per_job = 1.0;  // every dispatch wedges
  config.driver.retry.max_attempts = 2;
  SystemModel sys(config);
  db::QueryContext ctx;
  ctx.ndp_select = sys.MakePushdownHook();

  db::PositionList got = db::ScanSelect(&ctx, col, pred);
  EXPECT_EQ(got, expected);
  // The operator layer recorded the degradation, not a plain CPU scan.
  ASSERT_EQ(ctx.stats.size(), 1u);
  EXPECT_EQ(ctx.stats[0].op, "scan_select[cpu_fallback]");
  EXPECT_EQ(ctx.stats[0].rows_out, expected.size());

  const jafar::DriverStats& ds = sys.driver().stats();
  EXPECT_GT(ds.watchdog_fires, 0u);
  EXPECT_EQ(ds.permanent_failures, 1u);
  std::string dump = sys.DumpStats();
  EXPECT_TRUE(DumpHas(dump, "system.core.pushdown_fallbacks", 1)) << dump;
  EXPECT_NE(dump.find("system.jafar.watchdog_fires"), std::string::npos);
  EXPECT_NE(dump.find("system.fault.hangs_injected"), std::string::npos);
}

TEST(FallbackTest, RepeatedFailuresOpenTheCircuitBreaker) {
  db::Column col = MakeColumn(2048, 42);
  db::Pred pred = db::Pred::Between(0, 499);
  db::QueryContext plain;
  db::PositionList expected = db::ScanSelect(&plain, col, pred);

  PlatformConfig config = PlatformConfig::Gem5();
  config.fault_plan.seed = 52;
  config.fault_plan.hang_per_job = 1.0;
  config.driver.retry.max_attempts = 1;
  SystemModel sys(config);
  db::QueryContext ctx;
  ctx.ndp_select = sys.MakePushdownHook();

  EXPECT_FALSE(sys.degraded_mode());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(db::ScanSelect(&ctx, col, pred), expected) << "select " << i;
  }
  // Three consecutive device failures: breaker open.
  EXPECT_TRUE(sys.degraded_mode());
  sim::Tick wedged_at = sys.eq().Now();

  // While degraded, selects are still answered (CPU path) but most calls
  // decline without touching the device at all.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(db::ScanSelect(&ctx, col, pred), expected);
  }
  EXPECT_TRUE(sys.degraded_mode());
  EXPECT_EQ(sys.eq().Now(), wedged_at);  // non-probe declines cost no sim time
  std::string dump = sys.DumpStats();
  EXPECT_TRUE(DumpHas(dump, "system.core.degraded_mode", 1)) << dump;
  EXPECT_NE(dump.find("system.core.pushdown_probes"), std::string::npos);
}

TEST(FallbackTest, MidScanFailureAgreesWithZoneMapNoDoubleCounting) {
  // A multi-page select where some pages succeed before one fails past its
  // retry budget: the accumulated partial matches must be discarded, and the
  // CPU fallback must agree exactly with the zone-map scan of the same
  // predicate (the partial-result double-count would show up here).
  db::Column col = MakeColumn(8192, 43);
  db::Pred pred = db::Pred::Between(100, 499);
  db::ZoneMap zones(col, /*block_rows=*/1024);
  db::QueryContext zctx;
  db::PositionList zone_result = zones.Select(&zctx, col, pred);

  PlatformConfig config = PlatformConfig::Gem5();
  // Seed chosen so the device stream's first hang lands on the fifth page
  // dispatch: four pages complete, then the budget-of-one attempt fails.
  config.fault_plan.seed = 57;
  config.fault_plan.hang_per_job = 0.25;
  config.driver.retry.max_attempts = 1;  // any hang is a permanent failure
  SystemModel sys(config);
  db::QueryContext ctx;
  ctx.ndp_select = sys.MakePushdownHook();

  db::PositionList got = db::ScanSelect(&ctx, col, pred);
  EXPECT_EQ(got, zone_result);
  EXPECT_EQ(ctx.stats.back().rows_out, zone_result.size());

  // The failure really was mid-scan: some pages completed before the fatal
  // one (partial accumulation happened and was then discarded).
  EXPECT_EQ(ctx.stats.back().op, "scan_select[cpu_fallback]");
  EXPECT_GT(sys.jafar().stats().jobs_completed, 0u);
  EXPECT_GE(sys.driver().stats().permanent_failures, 1u);
}

TEST(FallbackTest, RecoveredFaultsKeepPushdownOnDevice) {
  // Faults inside the retry budget are invisible to the operator layer: the
  // select still reports scan_select[jafar] and matches the oracle.
  db::Column col = MakeColumn(4096, 44);
  db::Pred pred = db::Pred::Between(100, 499);
  db::QueryContext plain;
  db::PositionList expected = db::ScanSelect(&plain, col, pred);

  PlatformConfig config = PlatformConfig::Gem5();
  config.fault_plan.seed = 54;
  config.fault_plan.hang_per_job = 0.3;
  SystemModel sys(config);
  db::QueryContext ctx;
  ctx.ndp_select = sys.MakePushdownHook();

  EXPECT_EQ(db::ScanSelect(&ctx, col, pred), expected);
  EXPECT_EQ(ctx.stats.back().op, "scan_select[jafar]");
  EXPECT_FALSE(sys.degraded_mode());
  EXPECT_GT(sys.driver().stats().retries, 0u);
  EXPECT_EQ(sys.driver().stats().permanent_failures, 0u);
}

#endif  // NDP_FAULT_INJECT

}  // namespace
}  // namespace ndp::core
