#include "fault/ecc.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.h"

namespace ndp::fault {
namespace {

TEST(EccTest, CleanWordDecodesClean) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t data = rng.NextU64();
    uint8_t check = EccEncode(data);
    EccDecoded d = EccDecode(data, check);
    EXPECT_EQ(d.result, EccResult::kClean);
    EXPECT_EQ(d.data, data);
  }
}

TEST(EccTest, EverySingleBitFlipIsCorrected) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t data = rng.NextU64();
    uint8_t check = EccEncode(data);
    // Position 0 is the overall parity bit; 1..71 are data/check positions.
    for (uint32_t pos = 1; pos < kEccCodewordBits; ++pos) {
      EccCodeword cw = EccFlipBit(data, check, pos);
      EccDecoded d = EccDecode(cw.data, cw.check);
      EXPECT_EQ(d.result, EccResult::kCorrected) << "position " << pos;
      EXPECT_EQ(d.data, data) << "position " << pos;
      EXPECT_EQ(d.error_position, pos);
    }
  }
}

TEST(EccTest, EveryDoubleBitFlipIsDetectedUncorrectable) {
  Rng rng(3);
  uint64_t data = rng.NextU64();
  uint8_t check = EccEncode(data);
  for (uint32_t a = 1; a < kEccCodewordBits; ++a) {
    for (uint32_t b = a + 1; b < kEccCodewordBits; ++b) {
      EccCodeword cw = EccFlipBit(data, check, a);
      cw = EccFlipBit(cw.data, cw.check, b);
      EccDecoded d = EccDecode(cw.data, cw.check);
      EXPECT_EQ(d.result, EccResult::kUncorrectable)
          << "positions " << a << "," << b;
    }
  }
}

TEST(EccTest, FlipIsAnInvolution) {
  uint64_t data = 0xDEADBEEFCAFEF00Dull;
  uint8_t check = EccEncode(data);
  for (uint32_t pos = 1; pos < kEccCodewordBits; ++pos) {
    EccCodeword once = EccFlipBit(data, check, pos);
    EccCodeword twice = EccFlipBit(once.data, once.check, pos);
    EXPECT_EQ(twice.data, data);
    EXPECT_EQ(twice.check, check);
  }
}

}  // namespace
}  // namespace ndp::fault
