#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

namespace ndp::fault {
namespace {

// Scoped setenv: restores (unsets) the variable on destruction so plan tests
// cannot leak campaign configuration into each other or later suites.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(FaultPlanTest, AnyNonzeroRateActivates) {
  FaultPlan plan;
  plan.corrupt_per_flush = 0.01;
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.hang_per_job = 1.5;
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
  plan.hang_per_job = -0.1;
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, FromJsonParsesAllFields) {
  auto doc = json::Value::Parse(
                 R"({"seed": 42, "ecc_ce_per_burst": 0.125,
                     "ecc_ue_per_burst": 0.25, "hang_per_job": 0.5,
                     "stall_per_burst": 0.0625, "corrupt_per_flush": 1.0,
                     "drop_per_completion": 0.75})")
                 .ValueOrDie();
  FaultPlan plan = FaultPlan::FromJson(doc).ValueOrDie();
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.ecc_ce_per_burst, 0.125);
  EXPECT_DOUBLE_EQ(plan.ecc_ue_per_burst, 0.25);
  EXPECT_DOUBLE_EQ(plan.hang_per_job, 0.5);
  EXPECT_DOUBLE_EQ(plan.stall_per_burst, 0.0625);
  EXPECT_DOUBLE_EQ(plan.corrupt_per_flush, 1.0);
  EXPECT_DOUBLE_EQ(plan.drop_per_completion, 0.75);
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, FromJsonRejectsUnknownFieldsAndBadRates) {
  auto unknown = json::Value::Parse(R"({"hang_rate": 0.5})").ValueOrDie();
  EXPECT_EQ(FaultPlan::FromJson(unknown).status().code(),
            StatusCode::kInvalidArgument);
  auto bad = json::Value::Parse(R"({"hang_per_job": 2.0})").ValueOrDie();
  EXPECT_EQ(FaultPlan::FromJson(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, FromEnvReturnsBaseWhenNothingSet) {
  FaultPlan base;
  base.seed = 7;
  base.stall_per_burst = 0.5;
  FaultPlan got = FaultPlan::FromEnv(base).ValueOrDie();
  EXPECT_EQ(got.seed, 7u);
  EXPECT_DOUBLE_EQ(got.stall_per_burst, 0.5);
}

TEST(FaultPlanTest, EnvVariablesOverlayProgrammaticPlan) {
  FaultPlan base;
  base.seed = 7;
  base.hang_per_job = 0.25;
  ScopedEnv seed("NDP_FAULT_SEED", "99");
  ScopedEnv corrupt("NDP_FAULT_CORRUPT", "0.5");
  FaultPlan got = FaultPlan::FromEnv(base).ValueOrDie();
  EXPECT_EQ(got.seed, 99u);
  EXPECT_DOUBLE_EQ(got.corrupt_per_flush, 0.5);
  // Untouched fields keep the programmatic values.
  EXPECT_DOUBLE_EQ(got.hang_per_job, 0.25);
}

TEST(FaultPlanTest, MalformedEnvIsALoudError) {
  ScopedEnv bad("NDP_FAULT_HANG", "often");
  EXPECT_EQ(FaultPlan::FromEnv().status().code(),
            StatusCode::kInvalidArgument);
  ScopedEnv range("NDP_FAULT_DROP", "1.5");
  EXPECT_EQ(FaultPlan::FromEnv().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, PlanFileLoadsThenEnvOverrides) {
  std::string path = ::testing::TempDir() + "/fault_plan_test.json";
  {
    std::ofstream out(path);
    out << R"({"seed": 11, "stall_per_burst": 0.125})";
  }
  ScopedEnv plan_file("NDP_FAULT_PLAN", path);
  ScopedEnv stall("NDP_FAULT_STALL", "0.75");
  FaultPlan got = FaultPlan::FromEnv().ValueOrDie();
  EXPECT_EQ(got.seed, 11u);
  EXPECT_DOUBLE_EQ(got.stall_per_burst, 0.75);
}

TEST(FaultPlanTest, MissingPlanFileIsNotFound) {
  ScopedEnv plan_file("NDP_FAULT_PLAN", "/nonexistent/fault_plan.json");
  EXPECT_EQ(FaultPlan::FromEnv().status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ndp::fault
