// End-to-end recovery tests: inject each fault layer into a real device +
// driver pair and check that the watchdog/retry/checksum machinery turns
// device faults into correct results (or clean permanent failures), with the
// recovery visible in the driver's counters.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/injector.h"
#include "jafar/driver.h"
#include "util/rng.h"
#include "util/stats_registry.h"

#ifdef NDP_FAULT_INJECT

namespace ndp::jafar {
namespace {

/// StatsSnapshot::ToText pads the path to a fixed column, so a substring
/// match on "path value" never hits; find the line and compare its value.
bool DumpHas(const std::string& dump, const std::string& path, long long v) {
  size_t pos = dump.find(path + " ");
  if (pos == std::string::npos) return false;
  size_t eol = dump.find('\n', pos);
  std::string line = dump.substr(pos, eol - pos);
  return std::stoll(line.substr(line.find_last_of(' ') + 1)) == v;
}

// Plain struct (not a gtest fixture) so tests can also drive a second,
// locally-constructed instance (see FaultSequenceIsDeterministicAcrossRuns);
// the abstract ::testing::Test base would forbid that.
struct RecoveryHarness {
  void BuildSystem(const fault::FaultPlan& plan,
                   DriverConfig config = DriverConfig{}) {
    eq_ = std::make_unique<sim::EventQueue>();
    dram::DramOrganization org;
    org.rows_per_bank = 4096;
    dram::ControllerConfig mc;
    mc.refresh_enabled = false;
    dram_ = std::make_unique<dram::DramSystem>(
        eq_.get(), dram::DramTiming::DDR3_1600(), org,
        dram::InterleaveScheme::kContiguous, mc);
    auto cfg = DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                    accel::DatapathResources{})
                   .ValueOrDie();
    StatsScope root(&registry_, "system");
    device_ = std::make_unique<Device>(dram_.get(), 0, 0, cfg,
                                       root.Sub("jafar").Sub("dev0"));
    driver_ = std::make_unique<Driver>(device_.get(), &dram_->controller(0),
                                       config, root.Sub("jafar"));
    injector_ =
        std::make_unique<fault::FaultInjector>(plan, root.Sub("fault"));
    device_->set_fault_injector(injector_.get());
  }

  /// Loads `rows` uniform values, acquires ownership, and runs one select
  /// over [100, 499]; returns the driver-level result.
  SelectResult RunSelect(uint64_t rows) {
    Rng rng(77);
    values_.resize(rows);
    for (auto& v : values_) v = rng.NextInRange(0, 999);
    dram_->backing_store().Write(kCol, values_.data(), rows * 8);
    bool acquired = false;
    driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));
    SelectResult result;
    bool done = false;
    Status st = driver_->SelectJafar(kCol, 100, 499, kOut, rows, kFlag,
                                     [&](const SelectResult& r) {
                                       result = r;
                                       done = true;
                                     });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return result;
  }

  uint64_t Oracle() const {
    uint64_t n = 0;
    for (int64_t v : values_) n += (v >= 100 && v <= 499);
    return n;
  }

  static constexpr uint64_t kCol = 0;
  static constexpr uint64_t kOut = 8 << 20;
  static constexpr uint64_t kFlag = 12 << 20;

  StatsRegistry registry_;
  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<Driver> driver_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<int64_t> values_;
};

class RecoveryTest : public RecoveryHarness, public ::testing::Test {};

TEST_F(RecoveryTest, HangsAreReclaimedByWatchdogAndRetried) {
  fault::FaultPlan plan;
  plan.seed = 21;
  plan.hang_per_job = 0.5;  // every other dispatch wedges the sequencer
  BuildSystem(plan);
  SelectResult r = RunSelect(4096);  // 8 pages
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.num_output_rows, Oracle());
  EXPECT_GT(driver_->stats().watchdog_fires, 0u);
  EXPECT_GT(driver_->stats().retries, 0u);
  EXPECT_EQ(driver_->stats().permanent_failures, 0u);
  EXPECT_EQ(driver_->registers().Read(Reg::kStatus),
            static_cast<uint64_t>(DeviceStatus::kDone));
  EXPECT_GT(injector_->counters().hangs_injected, 0u);
  // Aborted jobs count as failed on the device side.
  EXPECT_GT(device_->stats().jobs_failed, 0u);
}

TEST_F(RecoveryTest, PermanentHangExhaustsBudgetAndFailsCleanly) {
  fault::FaultPlan plan;
  plan.seed = 22;
  plan.hang_per_job = 1.0;
  DriverConfig config;
  config.retry.max_attempts = 3;
  BuildSystem(plan, config);
  SelectResult r = RunSelect(512);  // one page
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.num_output_rows, 0u);
  EXPECT_EQ(driver_->registers().Read(Reg::kStatus),
            static_cast<uint64_t>(DeviceStatus::kError));
  EXPECT_EQ(driver_->stats().watchdog_fires, 3u);
  EXPECT_EQ(driver_->stats().retries, 2u);
  EXPECT_EQ(driver_->stats().permanent_failures, 1u);
  // The device is not wedged: a fault-free plan would now succeed, and the
  // registry records the whole episode.
  std::string dump = registry_.DumpText();
  EXPECT_TRUE(DumpHas(dump, "system.jafar.watchdog_fires", 3)) << dump;
  EXPECT_TRUE(DumpHas(dump, "system.fault.hangs_injected", 3)) << dump;
}

TEST_F(RecoveryTest, MidJobStallLeavesNoPartialDoubleCounting) {
  fault::FaultPlan plan;
  plan.seed = 23;
  plan.stall_per_burst = 0.004;  // a few stalls across ~1k bursts
  BuildSystem(plan);
  SelectResult r = RunSelect(8192);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  // A stalled attempt has already written part of its page bitmap; the retry
  // rewrites the page from scratch, so the match count stays exact.
  EXPECT_EQ(r.num_output_rows, Oracle());
  EXPECT_GT(injector_->counters().stalls_injected, 0u);
  EXPECT_GT(driver_->stats().watchdog_fires, 0u);
}

TEST_F(RecoveryTest, DroppedCompletionsAreRecoveredByWatchdog) {
  fault::FaultPlan plan;
  plan.seed = 24;
  plan.drop_per_completion = 0.5;
  BuildSystem(plan);
  SelectResult r = RunSelect(4096);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.num_output_rows, Oracle());
  EXPECT_GT(injector_->counters().drops_injected, 0u);
  EXPECT_GT(driver_->stats().watchdog_fires, 0u);
}

TEST_F(RecoveryTest, CorrectableEccIsTransparentToTheJob) {
  fault::FaultPlan plan;
  plan.seed = 25;
  plan.ecc_ce_per_burst = 1.0;  // every read burst takes a single-bit flip
  BuildSystem(plan);
  SelectResult r = RunSelect(4096);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.num_output_rows, Oracle());
  // Corrected in-line: no retries, but the rank's scrub counter advanced.
  EXPECT_EQ(driver_->stats().retries, 0u);
  EXPECT_GT(dram_->channel(0).rank(0).ecc_corrected(), 0u);
  EXPECT_EQ(dram_->channel(0).rank(0).ecc_uncorrectable(), 0u);
}

TEST_F(RecoveryTest, UncorrectableEccFailsTheJobThenRetrySucceeds) {
  fault::FaultPlan plan;
  plan.seed = 26;
  plan.ecc_ue_per_burst = 0.005;
  BuildSystem(plan);
  SelectResult r = RunSelect(8192);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.num_output_rows, Oracle());
  EXPECT_GT(injector_->counters().ecc_ue_injected, 0u);
  EXPECT_GT(dram_->channel(0).rank(0).ecc_uncorrectable(), 0u);
  EXPECT_GT(driver_->stats().device_errors, 0u);
  EXPECT_GT(driver_->stats().retries, 0u);
}

TEST_F(RecoveryTest, CorruptedBitmapIsCaughtByWritebackChecksum) {
  fault::FaultPlan plan;
  plan.seed = 27;
  plan.corrupt_per_flush = 0.25;
  BuildSystem(plan);
  SelectResult r = RunSelect(8192);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.num_output_rows, Oracle());
  EXPECT_GT(injector_->counters().corruptions_injected, 0u);
  EXPECT_GT(driver_->stats().checksum_errors, 0u);
  EXPECT_GT(driver_->stats().retries, 0u);
  // The recovered bitmap itself is clean: recount it from DRAM.
  uint64_t popcount = 0;
  for (uint64_t w = 0; w * 64 < values_.size(); ++w) {
    popcount += static_cast<uint64_t>(
        __builtin_popcountll(dram_->backing_store().Read64(kOut + w * 8)));
  }
  EXPECT_EQ(popcount, Oracle());
}

TEST_F(RecoveryTest, EngineJobsAreWatchdogGuardedToo) {
  fault::FaultPlan plan;
  plan.seed = 28;
  plan.hang_per_job = 1.0;
  DriverConfig config;
  config.retry.max_attempts = 2;
  BuildSystem(plan, config);
  bool acquired = false;
  driver_->AcquireOwnership([&](sim::Tick) { acquired = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return acquired; }));
  std::vector<int64_t> values(512, 5);
  dram_->backing_store().Write(kCol, values.data(), values.size() * 8);
  AggregateJob job;
  job.col_base = kCol;
  job.num_rows = 512;
  job.out_addr = kOut;
  bool done = false;
  Status st = driver_->AggregateJafar(job, [&](sim::Tick) { done = true; });
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Permanent failure still fires the callback; the register reads kError.
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_EQ(driver_->registers().Read(Reg::kStatus),
            static_cast<uint64_t>(DeviceStatus::kError));
  EXPECT_EQ(driver_->stats().watchdog_fires, 2u);
  EXPECT_EQ(driver_->stats().permanent_failures, 1u);
}

TEST_F(RecoveryTest, FaultSequenceIsDeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    RecoveryHarness t;
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.hang_per_job = 0.25;
    plan.corrupt_per_flush = 0.25;
    t.BuildSystem(plan);
    SelectResult r = t.RunSelect(4096);
    EXPECT_EQ(r.num_output_rows, t.Oracle());
    return t.registry_.DumpText();
  };
  EXPECT_EQ(run(31), run(31));
  EXPECT_NE(run(31), run(32));  // different seed, different fault sequence
}

}  // namespace
}  // namespace ndp::jafar

#endif  // NDP_FAULT_INJECT
