#include "fault/injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats_registry.h"

namespace ndp::fault {
namespace {

FaultPlan AllLayersPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.ecc_ce_per_burst = 0.25;
  plan.ecc_ue_per_burst = 0.125;
  plan.hang_per_job = 0.25;
  plan.stall_per_burst = 0.25;
  plan.corrupt_per_flush = 0.25;
  plan.drop_per_completion = 0.25;
  return plan;
}

TEST(FaultInjectorTest, SamePlanSameDrawSequence) {
  StatsRegistry reg_a, reg_b;
  FaultInjector a(AllLayersPlan(5), StatsScope(&reg_a, "fault"));
  FaultInjector b(AllLayersPlan(5), StatsScope(&reg_b, "fault"));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.DrawReadBurst(), b.DrawReadBurst());
    EXPECT_EQ(a.DrawHangAtDispatch(), b.DrawHangAtDispatch());
    EXPECT_EQ(a.DrawStallAtBurst(), b.DrawStallAtBurst());
    EXPECT_EQ(a.DrawCorruptAtFlush(), b.DrawCorruptAtFlush());
    EXPECT_EQ(a.DrawDropCompletion(), b.DrawDropCompletion());
    EXPECT_EQ(a.DrawCorruptBit(4096), b.DrawCorruptBit(4096));
  }
  EXPECT_EQ(a.counters().ecc_ce_injected, b.counters().ecc_ce_injected);
  EXPECT_EQ(a.counters().drops_injected, b.counters().drops_injected);
}

TEST(FaultInjectorTest, LayersDrawFromIndependentStreams) {
  // Device-layer draws must be identical whether or not the ECC layer is
  // enabled (and drawing) — each layer owns a PCG32 stream.
  FaultPlan device_only;
  device_only.seed = 9;
  device_only.hang_per_job = 0.5;
  FaultPlan with_ecc = device_only;
  with_ecc.ecc_ce_per_burst = 0.5;

  StatsRegistry reg_a, reg_b;
  FaultInjector a(device_only, StatsScope(&reg_a, "fault"));
  FaultInjector b(with_ecc, StatsScope(&reg_b, "fault"));
  for (int i = 0; i < 500; ++i) {
    (void)b.DrawReadBurst();  // burn ECC-layer draws on b only
    EXPECT_EQ(a.DrawHangAtDispatch(), b.DrawHangAtDispatch()) << "draw " << i;
  }
}

TEST(FaultInjectorTest, ZeroRateNeverFiresAndTakesNoDraws) {
  FaultPlan plan;
  plan.seed = 3;
  plan.hang_per_job = 1.0;  // active plan, but ECC / completion stay zero
  StatsRegistry reg;
  FaultInjector inj(plan, StatsScope(&reg, "fault"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.DrawReadBurst(), ReadFault::kNone);
    EXPECT_FALSE(inj.DrawStallAtBurst());
    EXPECT_FALSE(inj.DrawCorruptAtFlush());
    EXPECT_FALSE(inj.DrawDropCompletion());
  }
  EXPECT_EQ(inj.counters().ecc_ce_injected, 0u);
  EXPECT_EQ(inj.counters().ecc_ue_injected, 0u);
  EXPECT_EQ(inj.counters().stalls_injected, 0u);
  EXPECT_EQ(inj.counters().corruptions_injected, 0u);
  EXPECT_EQ(inj.counters().drops_injected, 0u);
}

TEST(FaultInjectorTest, RateOneAlwaysFires) {
  FaultPlan plan;
  plan.seed = 4;
  plan.hang_per_job = 1.0;
  plan.drop_per_completion = 1.0;
  StatsRegistry reg;
  FaultInjector inj(plan, StatsScope(&reg, "fault"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.DrawHangAtDispatch());
    EXPECT_TRUE(inj.DrawDropCompletion());
  }
  EXPECT_EQ(inj.counters().hangs_injected, 100u);
  EXPECT_EQ(inj.counters().drops_injected, 100u);
}

TEST(FaultInjectorTest, ObservedRateTracksPlanRate) {
  FaultPlan plan;
  plan.seed = 6;
  plan.corrupt_per_flush = 0.2;
  StatsRegistry reg;
  FaultInjector inj(plan, StatsScope(&reg, "fault"));
  const int n = 20000;
  int fired = 0;
  for (int i = 0; i < n; ++i) fired += inj.DrawCorruptAtFlush();
  double rate = static_cast<double>(fired) / n;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjectorTest, DoubleFlipPositionsAreDistinctAndInRange) {
  FaultPlan plan;
  plan.seed = 8;
  plan.ecc_ue_per_burst = 1.0;
  StatsRegistry reg;
  FaultInjector inj(plan, StatsScope(&reg, "fault"));
  for (int i = 0; i < 1000; ++i) {
    uint32_t a = 0, b = 0;
    inj.DrawEccDoubleFlip(&a, &b);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 72u);
    EXPECT_LT(b, 72u);
    uint32_t pos = inj.DrawEccBitPosition();
    EXPECT_LT(pos, 72u);
  }
}

TEST(FaultInjectorTest, CorruptBitStaysInRegion) {
  FaultPlan plan;
  plan.seed = 10;
  plan.corrupt_per_flush = 1.0;
  StatsRegistry reg;
  FaultInjector inj(plan, StatsScope(&reg, "fault"));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(inj.DrawCorruptBit(513), 513u);
    EXPECT_EQ(inj.DrawCorruptBit(1), 0u);
  }
}

TEST(FaultInjectorTest, CountersAreRegisteredInTheScope) {
  StatsRegistry reg;
  StatsScope root(&reg, "system");
  FaultInjector inj(AllLayersPlan(12), root.Sub("fault"));
  for (int i = 0; i < 64; ++i) (void)inj.DrawReadBurst();
  std::string dump = reg.DumpText();
  EXPECT_NE(dump.find("system.fault.ecc_ce_injected"), std::string::npos);
  EXPECT_NE(dump.find("system.fault.hangs_injected"), std::string::npos);
  EXPECT_NE(dump.find("system.fault.drops_injected"), std::string::npos);
}

}  // namespace
}  // namespace ndp::fault
