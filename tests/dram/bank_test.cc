#include "dram/bank.h"

#include <gtest/gtest.h>

namespace ndp::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    timing_ = DramTiming::DDR3_1600();
    bank_.Configure(&timing_);
  }
  sim::Tick Cyc(uint32_t n) const { return n * timing_.tck_ps; }

  DramTiming timing_;
  Bank bank_;
};

TEST_F(BankTest, ActivateOpensRow) {
  EXPECT_FALSE(bank_.has_open_row());
  ASSERT_TRUE(bank_.Activate(0, 42).ok());
  EXPECT_TRUE(bank_.has_open_row());
  EXPECT_EQ(bank_.open_row(), 42u);
  EXPECT_EQ(bank_.activate_count(), 1u);
}

TEST_F(BankTest, ReadBeforeTrcdIsViolation) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  auto r = bank_.Read(Cyc(timing_.trcd) - 1);
  EXPECT_EQ(r.status().code(), StatusCode::kTimingViolation);
  auto ok = bank_.Read(Cyc(timing_.trcd));
  EXPECT_TRUE(ok.ok());
}

TEST_F(BankTest, ReadDataArrivesAfterClPlusBurst) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  sim::Tick issue = Cyc(timing_.trcd);
  auto done = bank_.Read(issue);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value(), issue + Cyc(timing_.cl + timing_.tburst));
}

TEST_F(BankTest, ReadWithNoOpenRowIsViolation) {
  auto r = bank_.Read(Cyc(100));
  EXPECT_EQ(r.status().code(), StatusCode::kTimingViolation);
}

TEST_F(BankTest, PrechargeBeforeTrasIsViolation) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  EXPECT_EQ(bank_.Precharge(Cyc(timing_.tras) - 1).code(),
            StatusCode::kTimingViolation);
  EXPECT_TRUE(bank_.Precharge(Cyc(timing_.tras)).ok());
  EXPECT_FALSE(bank_.has_open_row());
}

TEST_F(BankTest, ActivateAfterPrechargeWaitsTrp) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  sim::Tick pre_at = Cyc(timing_.tras);
  ASSERT_TRUE(bank_.Precharge(pre_at).ok());
  EXPECT_EQ(bank_.Activate(pre_at + Cyc(timing_.trp) - 1, 2).code(),
            StatusCode::kTimingViolation);
  EXPECT_TRUE(bank_.Activate(pre_at + Cyc(timing_.trp), 2).ok());
  EXPECT_EQ(bank_.open_row(), 2u);
}

TEST_F(BankTest, BackToBackActivateRespectsTrc) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  ASSERT_TRUE(bank_.Precharge(Cyc(timing_.tras)).ok());
  // Even though tRAS+tRP has passed, ACT-to-ACT must also respect tRC.
  EXPECT_GE(bank_.CanActivateAt(), Cyc(timing_.trc));
}

TEST_F(BankTest, DoubleActivateIsViolation) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  EXPECT_EQ(bank_.Activate(Cyc(timing_.trc), 2).code(),
            StatusCode::kTimingViolation);
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  sim::Tick wr_at = Cyc(timing_.trcd);
  auto done = bank_.Write(wr_at);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value(), wr_at + Cyc(timing_.cwl + timing_.tburst));
  sim::Tick min_pre = done.value() + Cyc(timing_.twr);
  EXPECT_GE(bank_.CanPrechargeAt(), min_pre);
  EXPECT_EQ(bank_.Precharge(min_pre - 1).code(), StatusCode::kTimingViolation);
  EXPECT_TRUE(bank_.Precharge(min_pre).ok());
}

TEST_F(BankTest, ReadToPrechargeRespectsTrtp) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  // Read late enough that tRTP (not tRAS) is the binding constraint.
  sim::Tick rd_at = Cyc(timing_.tras);
  ASSERT_TRUE(bank_.Read(rd_at).ok());
  EXPECT_GE(bank_.CanPrechargeAt(), rd_at + Cyc(timing_.trtp));
}

TEST_F(BankTest, RefreshRequiresPrechargedBank) {
  ASSERT_TRUE(bank_.Activate(0, 1).ok());
  EXPECT_EQ(bank_.Refresh(Cyc(timing_.tras)).code(),
            StatusCode::kTimingViolation);
  ASSERT_TRUE(bank_.Precharge(Cyc(timing_.tras)).ok());
  sim::Tick ref_at = bank_.CanActivateAt();
  EXPECT_TRUE(bank_.Refresh(ref_at).ok());
  // No ACT until tRFC elapses.
  EXPECT_GE(bank_.CanActivateAt(), ref_at + Cyc(timing_.trfc));
}

TEST_F(BankTest, PrechargeIdleBankIsNop) {
  EXPECT_TRUE(bank_.Precharge(0).ok());
  EXPECT_FALSE(bank_.has_open_row());
}

}  // namespace
}  // namespace ndp::dram
