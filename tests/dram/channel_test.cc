#include "dram/channel.h"

#include <gtest/gtest.h>

namespace ndp::dram {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    timing_ = DramTiming::DDR3_1600();
    org_ = DramOrganization{};
    org_.ranks_per_channel = 2;
    channel_.Configure(&timing_, &org_);
  }
  sim::Tick Cyc(uint32_t n) const { return n * timing_.tck_ps; }

  DramTiming timing_;
  DramOrganization org_;
  Channel channel_;
};

TEST_F(ChannelTest, CommandBusAllowsOneCommandPerCycle) {
  Command act0{CommandType::kActivate, 0, 0, 0};
  Command act1{CommandType::kActivate, 1, 0, 0};  // different rank: no tRRD
  ASSERT_TRUE(channel_.Issue(act0, 0).ok());
  // Same tick is occupied by the first command.
  EXPECT_EQ(channel_.Issue(act1, 0).status().code(),
            StatusCode::kTimingViolation);
  EXPECT_TRUE(channel_.Issue(act1, Cyc(1)).ok());
}

TEST_F(ChannelTest, DataBusSerializesBurstsAcrossRanks) {
  // Open a row in each rank, then issue reads back-to-back: the second read's
  // data must not overlap the first burst on the shared data bus.
  ASSERT_TRUE(channel_.Issue(Command{CommandType::kActivate, 0, 0, 0}, 0).ok());
  ASSERT_TRUE(channel_.Issue(Command{CommandType::kActivate, 1, 0, 0}, Cyc(1)).ok());
  sim::Tick rd0_at = Cyc(timing_.trcd);
  auto d0 = channel_.Issue(Command{CommandType::kRead, 0, 0, 0, 0}, rd0_at);
  ASSERT_TRUE(d0.ok());
  Command rd1{CommandType::kRead, 1, 0, 0, 0};
  sim::Tick rd1_at = channel_.EarliestIssue(rd1);
  auto d1 = channel_.Issue(rd1, rd1_at);
  ASSERT_TRUE(d1.ok());
  // Data windows: [done - tBURST, done). They must not overlap.
  EXPECT_GE(d1.value() - Cyc(timing_.tburst), d0.value());
}

TEST_F(ChannelTest, EarliestIssueIsEdgeAligned) {
  Command act{CommandType::kActivate, 0, 0, 0};
  sim::Tick t = channel_.EarliestIssue(act);
  EXPECT_EQ(t % timing_.tck_ps, 0u);
}

TEST_F(ChannelTest, SameRankTimingStillEnforcedThroughChannel) {
  ASSERT_TRUE(channel_.Issue(Command{CommandType::kActivate, 0, 0, 0}, 0).ok());
  Command rd{CommandType::kRead, 0, 0, 0, 0};
  EXPECT_GE(channel_.EarliestIssue(rd), Cyc(timing_.trcd));
}

TEST_F(ChannelTest, DataBusBusyTicksAccumulate) {
  ASSERT_TRUE(channel_.Issue(Command{CommandType::kActivate, 0, 0, 0}, 0).ok());
  ASSERT_TRUE(
      channel_.Issue(Command{CommandType::kRead, 0, 0, 0, 0}, Cyc(timing_.trcd))
          .ok());
  ASSERT_TRUE(channel_
                  .Issue(Command{CommandType::kRead, 0, 0, 0, 1},
                         Cyc(timing_.trcd + timing_.tccd))
                  .ok());
  EXPECT_EQ(channel_.data_bus_busy_ticks(), 2 * Cyc(timing_.tburst));
}

}  // namespace
}  // namespace ndp::dram
