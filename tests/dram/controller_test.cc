#include "dram/controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "dram/dram_system.h"

namespace ndp::dram {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(ControllerConfig{}); }

  void Rebuild(ControllerConfig cfg) {
    dram_.reset();  // components cancel their event nodes; queue must outlive them
    eq_ = std::make_unique<sim::EventQueue>();
    DramOrganization org;
    org.ranks_per_channel = 2;
    org.rows_per_bank = 1024;
    dram_ = std::make_unique<DramSystem>(eq_.get(), DramTiming::DDR3_1600(),
                                         org, InterleaveScheme::kContiguous,
                                         cfg);
  }

  sim::Tick Cyc(uint32_t n) const { return n * dram_->timing().tck_ps; }

  /// Issues a read and runs the sim until it completes; returns latency.
  sim::Tick TimedRead(uint64_t addr) {
    bool done = false;
    sim::Tick start = eq_->Now();
    sim::Tick end = 0;
    Request req;
    req.addr = addr;
    req.on_complete = [&](sim::Tick t) {
      done = true;
      end = t;
    };
    EXPECT_TRUE(dram_->EnqueueRequest(req).ok());
    EXPECT_TRUE(eq_->RunUntilTrue([&] { return done; }));
    return end - start;
  }

  std::unique_ptr<sim::EventQueue> eq_;
  std::unique_ptr<DramSystem> dram_;
};

TEST_F(ControllerTest, ColdReadLatencyIsActPlusCasPlusBurst) {
  const DramTiming& t = dram_->timing();
  sim::Tick lat = TimedRead(0);
  // ACT at cycle 0 is not possible before the controller's first tick; allow
  // a one-cycle scheduling quantum.
  sim::Tick ideal = Cyc(t.trcd + t.cl + t.tburst);
  EXPECT_GE(lat, ideal);
  EXPECT_LE(lat, ideal + Cyc(2));
}

TEST_F(ControllerTest, RowHitIsFasterThanRowMiss) {
  sim::Tick miss = TimedRead(0);
  sim::Tick hit = TimedRead(64);  // same row, next burst
  const DramTiming& t = dram_->timing();
  EXPECT_LT(hit, miss);
  EXPECT_LE(hit, Cyc(t.cl + t.tburst) + Cyc(2));
  auto c = dram_->TotalCounters();
  EXPECT_EQ(c.reads_served, 2u);
  EXPECT_EQ(c.row_hits, 1u);
}

TEST_F(ControllerTest, RowConflictRequiresPrechargeActivate) {
  (void)TimedRead(0);
  // Same bank, different row: conflict path PRE + ACT + RD.
  uint64_t other_row = 8192ull * 16;  // 16 banks ahead = same bank, row+2
  auto loc0 = dram_->mapper().Decode(0).ValueOrDie();
  auto loc1 = dram_->mapper().Decode(other_row).ValueOrDie();
  ASSERT_EQ(loc0.bank, loc1.bank);
  ASSERT_EQ(loc0.rank, loc1.rank);
  ASSERT_NE(loc0.row, loc1.row);
  sim::Tick conflict = TimedRead(other_row);
  const DramTiming& t = dram_->timing();
  EXPECT_GE(conflict, Cyc(t.trp + t.trcd + t.cl + t.tburst));
  EXPECT_EQ(dram_->TotalCounters().row_conflicts, 1u);
}

TEST_F(ControllerTest, FrFcfsPrefersRowHits) {
  // Queue: conflict-row request first, then a row-hit request. FR-FCFS should
  // complete the row hit before the conflicting one.
  (void)TimedRead(0);  // open row 0 of bank 0
  std::vector<int> completion_order;
  bool both = false;
  int completed = 0;
  Request conflict;
  conflict.addr = 8192ull * 16;  // same bank, different row
  conflict.on_complete = [&](sim::Tick) {
    completion_order.push_back(1);
    both = ++completed == 2;
  };
  Request hit;
  hit.addr = 128;  // open row
  hit.on_complete = [&](sim::Tick) {
    completion_order.push_back(2);
    both = ++completed == 2;
  };
  ASSERT_TRUE(dram_->EnqueueRequest(conflict).ok());
  ASSERT_TRUE(dram_->EnqueueRequest(hit).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return both; }));
  EXPECT_EQ(completion_order, (std::vector<int>{2, 1}));
}

TEST_F(ControllerTest, WritesAreDrainedWhenReadsIdle) {
  Request wr;
  wr.addr = 4096;
  wr.is_write = true;
  bool done = false;
  wr.on_complete = [&](sim::Tick) { done = true; };
  ASSERT_TRUE(dram_->EnqueueRequest(wr).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
  EXPECT_EQ(dram_->TotalCounters().writes_served, 1u);
}

TEST_F(ControllerTest, BusyCountersMatchPaperDefinition) {
  // One isolated read: RC_busy should cover queue-entry to issue; afterwards
  // both queues empty -> no further busy time accrues.
  (void)TimedRead(0);
  auto c1 = dram_->TotalCounters();
  EXPECT_GT(c1.read_queue_busy_ticks, 0u);
  EXPECT_EQ(c1.write_queue_busy_ticks, 0u);
  sim::Tick busy_after_read = c1.read_queue_busy_ticks;
  // Let simulated time pass with no traffic: busy time must not grow.
  eq_->RunUntil(eq_->Now() + Cyc(1000));
  auto c2 = dram_->TotalCounters();
  EXPECT_EQ(c2.read_queue_busy_ticks, busy_after_read);
}

TEST_F(ControllerTest, QueueCapacityBackpressure) {
  ControllerConfig cfg;
  cfg.read_queue_capacity = 2;
  Rebuild(cfg);
  Request r;
  r.addr = 0;
  ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
  r.addr = 64;
  ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
  r.addr = 128;
  EXPECT_EQ(dram_->EnqueueRequest(r).code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(dram_->CanAccept(r));
}

TEST_F(ControllerTest, RefreshEventuallyIssues) {
  // Run past several tREFI intervals with no traffic; refresh must fire.
  const DramTiming& t = dram_->timing();
  eq_->RunUntil(Cyc(t.trefi * 3));
  uint64_t refreshes = 0;
  for (uint32_t r = 0; r < dram_->channel(0).num_ranks(); ++r) {
    refreshes += dram_->channel(0).rank(r).refreshes_issued();
  }
  EXPECT_GE(refreshes, 2u);
}

TEST_F(ControllerTest, RefreshDisabledMeansNoRefreshCommands) {
  ControllerConfig cfg;
  cfg.refresh_enabled = false;
  Rebuild(cfg);
  eq_->RunUntil(Cyc(dram_->timing().trefi * 3));
  EXPECT_EQ(dram_->channel(0).rank(0).refreshes_issued(), 0u);
}

TEST_F(ControllerTest, OwnershipTransferBlocksAndResumesRequests) {
  // Hand rank 0 to the accelerator, enqueue a read to it, verify it does not
  // complete, return ownership, verify it completes.
  MemoryController& mc = dram_->controller(0);
  bool granted = false;
  mc.TransferOwnership(0, RankOwner::kAccelerator,
                       [&](sim::Tick) { granted = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  EXPECT_EQ(dram_->channel(0).rank(0).owner(), RankOwner::kAccelerator);

  bool read_done = false;
  Request r;
  r.addr = 0;  // rank 0
  r.on_complete = [&](sim::Tick) { read_done = true; };
  ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
  eq_->RunUntil(eq_->Now() + Cyc(500));
  EXPECT_FALSE(read_done);  // held while JAFAR owns the rank

  bool returned = false;
  mc.TransferOwnership(0, RankOwner::kHost, [&](sim::Tick) { returned = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return read_done; }));
  EXPECT_TRUE(returned);
}

TEST_F(ControllerTest, RequestsToOtherRankProceedDuringOwnership) {
  MemoryController& mc = dram_->controller(0);
  bool granted = false;
  mc.TransferOwnership(0, RankOwner::kAccelerator,
                       [&](sim::Tick) { granted = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return granted; }));
  // Rank 1 is still host-owned; a read to it must complete normally. Ranks
  // are contiguous regions in the rank:row:bank:col layout.
  uint64_t rank1_addr = dram_->organization().BytesPerRank();
  ASSERT_EQ(dram_->mapper().Decode(rank1_addr).ValueOrDie().rank, 1u);
  bool done = false;
  Request r;
  r.addr = rank1_addr;
  r.on_complete = [&](sim::Tick) { done = true; };
  ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return done; }));
}

TEST_F(ControllerTest, IdleHistogramRecordsGapsBetweenBursts) {
  (void)TimedRead(0);
  // Leave a deliberate gap, then another request: the gap should land in the
  // idle-period histogram.
  eq_->RunUntil(eq_->Now() + Cyc(600));
  (void)TimedRead(64);
  const Histogram& h = dram_->controller(0).idle_period_histogram();
  EXPECT_GE(h.stats().count(), 1u);
  EXPECT_GT(h.stats().max(), 500.0);  // cycles
}

TEST_F(ControllerTest, SequentialStreamIsRowHitDominated) {
  // 64 sequential bursts: expect 1 activate and 63 row hits per row span.
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    Request r;
    r.addr = static_cast<uint64_t>(i) * 64;
    r.on_complete = [&](sim::Tick) { ++completed; };
    ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
    // Run a little to avoid overflowing the queue.
    eq_->RunUntil(eq_->Now() + Cyc(8));
  }
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return completed == 64; }));
  auto c = dram_->TotalCounters();
  EXPECT_EQ(c.reads_served, 64u);
  EXPECT_GE(c.row_hits, 60u);
  EXPECT_LE(c.row_misses, 2u);
}

TEST_F(ControllerTest, ClosedPagePolicyPrechargesIdleRows) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kClosed;
  cfg.refresh_enabled = false;
  Rebuild(cfg);
  (void)TimedRead(0);
  // With no queued request wanting the row, the controller closes it.
  eq_->RunUntil(eq_->Now() + Cyc(200));
  EXPECT_FALSE(dram_->channel(0).rank(0).bank(0).has_open_row());
  // A second read to the same row is now a plain row miss (ACT+RD), slower
  // than an open-page row hit but with no precharge on its critical path.
  const DramTiming& t = dram_->timing();
  sim::Tick lat = TimedRead(64);
  EXPECT_GE(lat, Cyc(t.trcd + t.cl + t.tburst));
  EXPECT_LE(lat, Cyc(t.trcd + t.cl + t.tburst) + Cyc(3));
}

TEST_F(ControllerTest, ClosedPageKeepsRowsWantedByQueuedRequests) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kClosed;
  cfg.refresh_enabled = false;
  Rebuild(cfg);
  // Back-to-back requests to one row: the row must not be closed between
  // them (the policy checks the queues), so the second is a row hit.
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.addr = static_cast<uint64_t>(i) * 64;
    r.on_complete = [&](sim::Tick) { ++completed; };
    ASSERT_TRUE(dram_->EnqueueRequest(r).ok());
  }
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return completed == 8; }));
  auto c = dram_->TotalCounters();
  EXPECT_EQ(c.row_hits, 7u);
  EXPECT_EQ(c.row_misses, 1u);
}

TEST_F(ControllerTest, RefreshStealsBackAcceleratorOwnedRank) {
  // Hand rank 0 to the accelerator, then let the simulation idle. Refresh of
  // the owned rank is postponed — but only up to the JEDEC budget: with one
  // tREFI of the 8 x tREFI postponement allowance left, the controller must
  // steal the rank back and refresh anyway (DESIGN.md §7). Rank 1 stays
  // host-owned and refreshes on its normal cadence throughout.
  bool transferred = false;
  dram_->controller(0).TransferOwnership(0, RankOwner::kAccelerator,
                                         [&](sim::Tick) { transferred = true; });
  ASSERT_TRUE(eq_->RunUntilTrue([&] { return transferred; }));
  ASSERT_EQ(dram_->channel(0).rank(0).owner(), RankOwner::kAccelerator);

  const uint32_t trefi = dram_->timing().trefi;
  // Rank 0 is due at 1 x tREFI; its emergency deadline is 8 x tREFI. Just
  // before it, the postponement must still be in effect.
  eq_->RunUntil(Cyc(8 * trefi) - Cyc(10));
  EXPECT_EQ(dram_->channel(0).rank(0).refreshes_issued(), 0u);
  EXPECT_GE(dram_->channel(0).rank(1).refreshes_issued(), 5u);

  // Past the deadline the steal-back REF must have landed despite the rank
  // still being accelerator-owned.
  eq_->RunUntil(Cyc(8 * trefi) + Cyc(dram_->timing().trfc + 20));
  EXPECT_GE(dram_->channel(0).rank(0).refreshes_issued(), 1u);
  EXPECT_EQ(dram_->channel(0).rank(0).owner(), RankOwner::kAccelerator);
}

}  // namespace
}  // namespace ndp::dram
