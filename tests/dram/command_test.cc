#include "dram/command.h"

#include <gtest/gtest.h>

#include "dram/address.h"

namespace ndp::dram {
namespace {

TEST(CommandTest, TypeNames) {
  EXPECT_STREQ(CommandTypeToString(CommandType::kActivate), "ACT");
  EXPECT_STREQ(CommandTypeToString(CommandType::kRead), "RD");
  EXPECT_STREQ(CommandTypeToString(CommandType::kWrite), "WR");
  EXPECT_STREQ(CommandTypeToString(CommandType::kPrecharge), "PRE");
  EXPECT_STREQ(CommandTypeToString(CommandType::kRefresh), "REF");
  EXPECT_STREQ(CommandTypeToString(CommandType::kModeRegSet), "MRS");
}

TEST(CommandTest, ToStringForBankCommands) {
  Command rd{CommandType::kRead, 1, 3, 42, 7};
  EXPECT_EQ(rd.ToString(), "RD r1 b3 row42 col7");
}

TEST(CommandTest, ToStringForModeRegisterSet) {
  Command mrs{CommandType::kModeRegSet, 0};
  mrs.mode_register = 3;
  mrs.mode_value = 0x4;
  EXPECT_EQ(mrs.ToString(), "MRS r0 MR3=0x4");
}

TEST(InterleaveSchemeTest, Names) {
  EXPECT_STREQ(InterleaveSchemeToString(InterleaveScheme::kContiguous),
               "contiguous");
  EXPECT_STREQ(InterleaveSchemeToString(InterleaveScheme::kChannelBurst),
               "channel-interleaved-64B");
  EXPECT_STREQ(InterleaveSchemeToString(InterleaveScheme::kChannelWord),
               "channel-interleaved-8B");
}

TEST(DramTimingTest, SpeedGradePresetsAreConsistent) {
  for (const DramTiming& t :
       {DramTiming::DDR3_1066(), DramTiming::DDR3_1600(),
        DramTiming::DDR3_1866()}) {
    EXPECT_EQ(t.trc, t.tras + t.trp) << t.name;
    EXPECT_EQ(t.tburst, 4u) << t.name;  // BL8 on a dual-pumped bus
    EXPECT_GT(t.trefi, t.trfc) << t.name;
    // The paper's ~13 ns CAS observation holds across grades.
    EXPECT_NEAR(t.CasLatencyNs(), 13.5, 1.0) << t.name;
  }
}

}  // namespace
}  // namespace ndp::dram
