#include "dram/address.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::dram {
namespace {

DramOrganization SmallOrg(uint32_t channels = 1) {
  DramOrganization org;
  org.channels = channels;
  org.ranks_per_channel = 2;
  org.banks_per_rank = 8;
  org.rows_per_bank = 64;
  org.row_size_bytes = 8192;
  return org;
}

class AddressRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, InterleaveScheme>> {};

TEST_P(AddressRoundTripTest, EncodeDecodeRoundTrip) {
  auto [channels, scheme] = GetParam();
  DramOrganization org = SmallOrg(channels);
  AddressMapper mapper(org, scheme);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    uint64_t addr = rng.NextU64() % org.TotalBytes();
    auto loc = mapper.Decode(addr);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    EXPECT_EQ(mapper.Encode(loc.value()), addr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AddressRoundTripTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(InterleaveScheme::kContiguous,
                                         InterleaveScheme::kChannelBurst,
                                         InterleaveScheme::kChannelWord)));

TEST(AddressMapperTest, SequentialAddressesWalkARowThenSwitchBank) {
  DramOrganization org = SmallOrg();
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  auto first = mapper.Decode(0).ValueOrDie();
  EXPECT_EQ(first.bank, 0u);
  EXPECT_EQ(first.row, 0u);
  // The whole first row (8 KB) stays in bank 0, row 0.
  auto mid = mapper.Decode(org.row_size_bytes - 1).ValueOrDie();
  EXPECT_TRUE(first.SameRowBuffer(mid));
  // The next byte moves to bank 1 (same row index) — bank-interleaved rows
  // let a streaming agent overlap activation with data transfer.
  auto next = mapper.Decode(org.row_size_bytes).ValueOrDie();
  EXPECT_EQ(next.bank, 1u);
  EXPECT_EQ(next.row, 0u);
}

TEST(AddressMapperTest, ContiguousFillsWholeChannelFirst) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  uint64_t half = org.TotalBytes() / 2;
  EXPECT_EQ(mapper.Decode(half - 1).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(half).ValueOrDie().channel, 1u);
}

TEST(AddressMapperTest, WordInterleaveAlternatesEvery8Bytes) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kChannelWord);
  EXPECT_EQ(mapper.Decode(0).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(8).ValueOrDie().channel, 1u);
  EXPECT_EQ(mapper.Decode(16).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(7).ValueOrDie().channel, 0u);
}

TEST(AddressMapperTest, BurstInterleaveAlternatesEvery64Bytes) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kChannelBurst);
  EXPECT_EQ(mapper.Decode(0).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(63).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(64).ValueOrDie().channel, 1u);
  EXPECT_EQ(mapper.Decode(128).ValueOrDie().channel, 0u);
}

TEST(AddressMapperTest, OutOfRangeRejected) {
  DramOrganization org = SmallOrg();
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  EXPECT_FALSE(mapper.Decode(org.TotalBytes()).ok());
  EXPECT_TRUE(mapper.Decode(org.TotalBytes() - 1).ok());
}

TEST(AddressMapperTest, OrganizationArithmetic) {
  DramOrganization org = SmallOrg();
  EXPECT_EQ(org.BytesPerBurst(), 64u);
  EXPECT_EQ(org.BurstsPerRow(), 128u);
  EXPECT_EQ(org.BytesPerRank(), 8ull * 64 * 8192);
  EXPECT_EQ(org.TotalBytes(), 2 * org.BytesPerRank());
}

}  // namespace
}  // namespace ndp::dram
