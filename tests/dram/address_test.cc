#include "dram/address.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp::dram {
namespace {

DramOrganization SmallOrg(uint32_t channels = 1) {
  DramOrganization org;
  org.channels = channels;
  org.ranks_per_channel = 2;
  org.banks_per_rank = 8;
  org.rows_per_bank = 64;
  org.row_size_bytes = 8192;
  return org;
}

class AddressRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, InterleaveScheme>> {};

TEST_P(AddressRoundTripTest, EncodeDecodeRoundTrip) {
  auto [channels, scheme] = GetParam();
  DramOrganization org = SmallOrg(channels);
  AddressMapper mapper(org, scheme);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    uint64_t addr = rng.NextU64() % org.TotalBytes();
    auto loc = mapper.Decode(addr);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    EXPECT_EQ(mapper.Encode(loc.value()), addr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AddressRoundTripTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(InterleaveScheme::kContiguous,
                                         InterleaveScheme::kChannelBurst,
                                         InterleaveScheme::kChannelWord)));

TEST(AddressMapperTest, SequentialAddressesWalkARowThenSwitchBank) {
  DramOrganization org = SmallOrg();
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  auto first = mapper.Decode(0).ValueOrDie();
  EXPECT_EQ(first.bank, 0u);
  EXPECT_EQ(first.row, 0u);
  // The whole first row (8 KB) stays in bank 0, row 0.
  auto mid = mapper.Decode(org.row_size_bytes - 1).ValueOrDie();
  EXPECT_TRUE(first.SameRowBuffer(mid));
  // The next byte moves to bank 1 (same row index) — bank-interleaved rows
  // let a streaming agent overlap activation with data transfer.
  auto next = mapper.Decode(org.row_size_bytes).ValueOrDie();
  EXPECT_EQ(next.bank, 1u);
  EXPECT_EQ(next.row, 0u);
}

TEST(AddressMapperTest, ContiguousFillsWholeChannelFirst) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  uint64_t half = org.TotalBytes() / 2;
  EXPECT_EQ(mapper.Decode(half - 1).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(half).ValueOrDie().channel, 1u);
}

TEST(AddressMapperTest, WordInterleaveAlternatesEvery8Bytes) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kChannelWord);
  EXPECT_EQ(mapper.Decode(0).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(8).ValueOrDie().channel, 1u);
  EXPECT_EQ(mapper.Decode(16).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(7).ValueOrDie().channel, 0u);
}

TEST(AddressMapperTest, BurstInterleaveAlternatesEvery64Bytes) {
  DramOrganization org = SmallOrg(2);
  AddressMapper mapper(org, InterleaveScheme::kChannelBurst);
  EXPECT_EQ(mapper.Decode(0).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(63).ValueOrDie().channel, 0u);
  EXPECT_EQ(mapper.Decode(64).ValueOrDie().channel, 1u);
  EXPECT_EQ(mapper.Decode(128).ValueOrDie().channel, 0u);
}

TEST(AddressMapperTest, OutOfRangeRejected) {
  DramOrganization org = SmallOrg();
  AddressMapper mapper(org, InterleaveScheme::kContiguous);
  EXPECT_FALSE(mapper.Decode(org.TotalBytes()).ok());
  EXPECT_TRUE(mapper.Decode(org.TotalBytes() - 1).ok());
}

// Property sweep over varied geometries: for every (organization, scheme)
// pair the mapping must be a bijection on [0, TotalBytes) — Decode o Encode
// is the identity from both sides, every decoded field is inside its range —
// and under kContiguous the layout must stay open-page friendly: any two
// addresses inside one aligned row span land in the same row buffer, and the
// next byte after a row boundary switches bank, not row (the invariant the
// v2 bank-level wave scheduling arms whole rows against).
TEST(AddressPropertyTest, RoundTripAndOpenPageLayoutAcrossGeometries) {
  struct Geometry {
    uint32_t channels, ranks, banks, rows;
    uint32_t row_bytes;
  };
  const Geometry geometries[] = {
      {1, 1, 4, 32, 2048},   // small device, narrow rows
      {1, 2, 8, 64, 8192},   // the paper's organization, shrunk rows
      {2, 1, 16, 64, 8192},  // v2 sweep shape: wide bank parallelism
      {3, 2, 8, 16, 4096},   // non-power-of-two channel count
  };
  const InterleaveScheme schemes[] = {InterleaveScheme::kContiguous,
                                      InterleaveScheme::kChannelBurst,
                                      InterleaveScheme::kChannelWord};
  Rng rng(4242);
  for (const Geometry& g : geometries) {
    DramOrganization org;
    org.channels = g.channels;
    org.ranks_per_channel = g.ranks;
    org.banks_per_rank = g.banks;
    org.rows_per_bank = g.rows;
    org.row_size_bytes = g.row_bytes;
    for (InterleaveScheme scheme : schemes) {
      AddressMapper mapper(org, scheme);
      SCOPED_TRACE(std::string(InterleaveSchemeToString(scheme)) + " " +
                   std::to_string(g.channels) + "ch/" +
                   std::to_string(g.ranks) + "rk/" + std::to_string(g.banks) +
                   "ba/" + std::to_string(g.row_bytes) + "B");
      // Decode(addr) is in range and Encode inverts it exactly.
      for (int i = 0; i < 2000; ++i) {
        uint64_t addr = rng.NextU64() % org.TotalBytes();
        auto loc = mapper.Decode(addr);
        ASSERT_TRUE(loc.ok()) << loc.status().ToString();
        EXPECT_LT(loc.value().channel, org.channels);
        EXPECT_LT(loc.value().rank, org.ranks_per_channel);
        EXPECT_LT(loc.value().bank, org.banks_per_rank);
        EXPECT_LT(loc.value().row, org.rows_per_bank);
        EXPECT_LT(loc.value().burst_col, org.BurstsPerRow());
        EXPECT_LT(loc.value().offset, org.BytesPerBurst());
        EXPECT_EQ(mapper.Encode(loc.value()), addr);
      }
      // Encode(loc) of a random valid location decodes back to it.
      for (int i = 0; i < 2000; ++i) {
        DramLocation loc;
        loc.channel = static_cast<uint32_t>(rng.NextInRange(0, org.channels - 1));
        loc.rank =
            static_cast<uint32_t>(rng.NextInRange(0, org.ranks_per_channel - 1));
        loc.bank =
            static_cast<uint32_t>(rng.NextInRange(0, org.banks_per_rank - 1));
        loc.row =
            static_cast<uint32_t>(rng.NextInRange(0, org.rows_per_bank - 1));
        loc.burst_col =
            static_cast<uint32_t>(rng.NextInRange(0, org.BurstsPerRow() - 1));
        loc.offset =
            static_cast<uint32_t>(rng.NextInRange(0, org.BytesPerBurst() - 1));
        uint64_t addr = mapper.Encode(loc);
        ASSERT_LT(addr, org.TotalBytes());
        auto back = mapper.Decode(addr);
        ASSERT_TRUE(back.ok()) << back.status().ToString();
        EXPECT_TRUE(back.value().SameRowBuffer(loc));
        EXPECT_EQ(back.value().burst_col, loc.burst_col);
        EXPECT_EQ(back.value().offset, loc.offset);
      }
      if (scheme != InterleaveScheme::kContiguous) continue;
      // Open-page invariant (contiguous layout only): a whole aligned row
      // span shares one row buffer, and the byte after it changes bank.
      for (int i = 0; i < 64; ++i) {
        uint64_t row_base = (rng.NextU64() % org.TotalBytes()) /
                            org.row_size_bytes * org.row_size_bytes;
        auto first = mapper.Decode(row_base).ValueOrDie();
        uint64_t inside =
            row_base + rng.NextU64() % org.row_size_bytes;
        EXPECT_TRUE(mapper.Decode(inside).ValueOrDie().SameRowBuffer(first));
        uint64_t after = row_base + org.row_size_bytes;
        if (after >= org.TotalBytes()) continue;
        auto next = mapper.Decode(after).ValueOrDie();
        EXPECT_FALSE(next.SameRowBuffer(first));
        if (first.bank + 1 < org.banks_per_rank) {
          EXPECT_EQ(next.bank, first.bank + 1);
          EXPECT_EQ(next.row, first.row);
        }
      }
    }
  }
}

TEST(AddressMapperTest, OrganizationArithmetic) {
  DramOrganization org = SmallOrg();
  EXPECT_EQ(org.BytesPerBurst(), 64u);
  EXPECT_EQ(org.BurstsPerRow(), 128u);
  EXPECT_EQ(org.BytesPerRank(), 8ull * 64 * 8192);
  EXPECT_EQ(org.TotalBytes(), 2 * org.BytesPerRank());
}

}  // namespace
}  // namespace ndp::dram
