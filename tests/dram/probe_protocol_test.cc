// Violation injection for the semijoin probe command-flow rules (DESIGN.md
// §12): the filter-image load window mirrored by NoteProbeFilterLoadStart /
// Done must exclude rank writes (a WR could tear the image mid-latch) and
// bank ARMs (the comparator SRAM port is busy latching), and may not be
// re-entered. One deliberate error per rule, each asserting the checker
// flags exactly that rule, plus a legal load window asserting silence.
#include <cstdint>

#include <gtest/gtest.h>

#include "dram/command.h"
#include "dram/protocol_checker.h"
#include "dram/timing.h"

namespace ndp::dram {
namespace {

class ProbeCheckerTest : public ::testing::Test {
 protected:
  void Init() { checker_.Configure(&timing_, &org_); }

  sim::Tick C(uint64_t cycles) const { return cycles * timing_.tck_ps; }

  void Act(uint64_t cycle, uint32_t bank, uint32_t row = 0) {
    checker_.Observe(Command{CommandType::kActivate, 0, bank, row}, C(cycle));
  }
  void Rd(uint64_t cycle, uint32_t bank, uint32_t row = 0) {
    checker_.Observe(Command{CommandType::kRead, 0, bank, row}, C(cycle));
  }
  void Wr(uint64_t cycle, uint32_t bank, uint32_t row = 0) {
    checker_.Observe(Command{CommandType::kWrite, 0, bank, row}, C(cycle));
  }
  void Arm(uint64_t cycle, uint32_t bank) {
    checker_.Observe(Command{CommandType::kBankArm, 0, bank}, C(cycle));
  }
  void LoadStart(uint64_t cycle) {
    checker_.NoteProbeFilterLoadStart(0, C(cycle));
  }
  void LoadDone() { checker_.NoteProbeFilterLoadDone(0); }

  void ExpectOnly(TimingRule rule) {
    ASSERT_EQ(checker_.violations().size(), 1u) << checker_.Report();
    EXPECT_EQ(checker_.violations()[0].rule, rule) << checker_.Report();
  }

  DramTiming timing_ = DramTiming::DDR3_1600();
  DramOrganization org_;
  BankFilterTiming filter_;
  ProtocolChecker checker_;
};

TEST_F(ProbeCheckerTest, LegalLoadWindowStaysSilent) {
  Init();
  LoadStart(0);
  Act(2, 0);
  Rd(13, 0);   // reads during the load are fine (the engine streams the image)
  LoadDone();
  Wr(20, 0);   // tCCD honoured; write is legal once the window closed
  EXPECT_TRUE(checker_.violations().empty()) << checker_.Report();
}

TEST_F(ProbeCheckerTest, FlagsWriteDuringFilterLoad) {
  Init();
  Act(0, 0);
  LoadStart(2);
  Wr(11, 0);   // tRCD honoured, but the rank is mid filter-image latch
  ExpectOnly(TimingRule::kProbeWrDuringLoad);
}

TEST_F(ProbeCheckerTest, FlagsArmDuringFilterLoad) {
  Init();
  checker_.set_bank_filter_timing(0, &filter_);  // ARM is otherwise legal
  LoadStart(0);
  Arm(4, 0);
  ExpectOnly(TimingRule::kProbeArmDuringLoad);
}

TEST_F(ProbeCheckerTest, FlagsReentrantFilterLoad) {
  Init();
  LoadStart(0);
  LoadStart(10);
  ExpectOnly(TimingRule::kProbeReentrantLoad);
}

TEST_F(ProbeCheckerTest, LoadDoneReopensTheRankForWrites) {
  Init();
  Act(0, 0);
  LoadStart(2);
  LoadDone();
  Wr(11, 0);
  EXPECT_TRUE(checker_.violations().empty()) << checker_.Report();
}

}  // namespace
}  // namespace ndp::dram
