// Violation-injection tests for the DDR3 protocol checker: one deliberate
// protocol error per JEDEC constraint, each asserting the checker flags
// exactly that rule (and a legal reference sequence asserting it stays
// silent). Command times are chosen so only the rule under test trips —
// where DDR3-1600's own numbers make two windows coincide (tRC = tRAS + tRP,
// tCCD vs. burst overlap), the test uses a custom speed grade that separates
// them.
#include <cstdint>

#include "dram/command.h"
#include "dram/protocol_checker.h"
#include "dram/timing.h"
#include "gtest/gtest.h"

namespace ndp::dram {
namespace {

class ProtocolCheckerTest : public ::testing::Test {
 protected:
  void Init() {
    checker_.Configure(&timing_, &org_);
  }

  /// Bus cycles -> ticks.
  sim::Tick C(uint64_t cycles) const { return cycles * timing_.tck_ps; }

  void Act(uint64_t cycle, uint32_t bank, uint32_t row = 0, uint32_t rank = 0) {
    checker_.Observe(Command{CommandType::kActivate, rank, bank, row}, C(cycle));
  }
  void Rd(uint64_t cycle, uint32_t bank, uint32_t row = 0, uint32_t rank = 0) {
    checker_.Observe(Command{CommandType::kRead, rank, bank, row}, C(cycle));
  }
  void Wr(uint64_t cycle, uint32_t bank, uint32_t row = 0, uint32_t rank = 0) {
    checker_.Observe(Command{CommandType::kWrite, rank, bank, row}, C(cycle));
  }
  void Pre(uint64_t cycle, uint32_t bank, uint32_t rank = 0) {
    checker_.Observe(Command{CommandType::kPrecharge, rank, bank}, C(cycle));
  }
  void Ref(uint64_t cycle, uint32_t rank = 0) {
    checker_.Observe(Command{CommandType::kRefresh, rank}, C(cycle));
  }
  void Mrs(uint64_t cycle, uint32_t rank = 0) {
    Command mrs{CommandType::kModeRegSet, rank};
    mrs.mode_register = 3;
    checker_.Observe(mrs, C(cycle));
  }

  /// Asserts exactly one violation was recorded and it broke `rule`.
  void ExpectOnly(TimingRule rule) {
    ASSERT_EQ(checker_.violations().size(), 1u) << checker_.Report();
    EXPECT_EQ(checker_.violations()[0].rule, rule) << checker_.Report();
  }

  DramTiming timing_ = DramTiming::DDR3_1600();
  DramOrganization org_;
  ProtocolChecker checker_;
};

// -- Legal sequences stay silent ---------------------------------------------

TEST_F(ProtocolCheckerTest, LegalOpenReadWritePrechargeCycleIsClean) {
  Init();
  Act(0, /*bank=*/0, /*row=*/7);
  Rd(11, 0, 7);              // tRCD honoured
  Rd(15, 0, 7);              // tCCD honoured
  Wr(26, 0, 7);              // tCCD; write data ends at 26+8+4 = 38
  Pre(50, 0);                // tRAS (28), tRTP (15+6), tWR (38+12) honoured
  Act(61, 0, /*row=*/9);     // tRP (50+11) and tRC (0+39) honoured
  EXPECT_TRUE(checker_.violations().empty()) << checker_.Report();
  EXPECT_EQ(checker_.commands_observed(), 6u);
}

TEST_F(ProtocolCheckerTest, LegalRefreshCycleIsClean) {
  Init();
  Act(0, 0);
  Pre(28, 0);
  Ref(39);              // tRP honoured, all banks idle
  Act(39 + 208, 0);     // tRFC honoured
  EXPECT_TRUE(checker_.violations().empty()) << checker_.Report();
}

// -- One injected violation per constraint -----------------------------------

TEST_F(ProtocolCheckerTest, FlagsReadBeforeTrcd) {
  Init();
  Act(0, 0);
  Rd(timing_.trcd - 1, 0);  // one cycle early
  ExpectOnly(TimingRule::kTrcd);
}

TEST_F(ProtocolCheckerTest, FlagsActivateBeforeTrp) {
  Init();
  Act(0, 0);
  Pre(30, 0);   // legal (tRAS = 28)
  Act(40, 0);   // tRC (39) satisfied, but tRP wants 30 + 11 = 41
  ExpectOnly(TimingRule::kTrp);
}

TEST_F(ProtocolCheckerTest, FlagsActivateBeforeTrc) {
  // DDR3's tRC = tRAS + tRP makes tRC and tRP trip together; stretch tRC so
  // the activate-to-activate window is the only one violated.
  timing_.trc = 50;
  Init();
  Act(0, 0);
  Pre(30, 0);
  Act(45, 0);  // tRP satisfied (41), tRC wants 50
  ExpectOnly(TimingRule::kTrc);
}

TEST_F(ProtocolCheckerTest, FlagsPrechargeBeforeTras) {
  Init();
  Act(0, 0);
  Pre(timing_.tras - 1, 0);
  ExpectOnly(TimingRule::kTras);
}

TEST_F(ProtocolCheckerTest, FlagsPrechargeBeforeTrtp) {
  Init();
  Act(0, 0);
  Rd(25, 0);   // legal
  Pre(28, 0);  // tRAS satisfied, but tRTP wants 25 + 6 = 31
  ExpectOnly(TimingRule::kTrtp);
}

TEST_F(ProtocolCheckerTest, FlagsPrechargeBeforeTwr) {
  Init();
  Act(0, 0);
  Wr(11, 0);   // data ends at 11 + 8 + 4 = 23
  Pre(30, 0);  // tRAS satisfied, but tWR wants 23 + 12 = 35
  ExpectOnly(TimingRule::kTwr);
}

TEST_F(ProtocolCheckerTest, FlagsReadBeforeTwtr) {
  Init();
  Act(0, 0);
  Wr(11, 0);   // data ends at cycle 23
  Rd(28, 0);   // tCCD satisfied, but tWTR wants 23 + 6 = 29
  ExpectOnly(TimingRule::kTwtr);
}

TEST_F(ProtocolCheckerTest, FlagsColumnCommandBeforeTccd) {
  // With BL8's tBURST = 4 a tCCD violation also overlaps data bursts; shrink
  // the burst so the command-spacing rule is the only one broken.
  timing_.tburst = 2;
  Init();
  Act(0, 0);
  Rd(11, 0);
  Rd(13, 0);  // tCCD wants 11 + 4 = 15
  ExpectOnly(TimingRule::kTccd);
}

TEST_F(ProtocolCheckerTest, FlagsActivateBeforeTrrd) {
  Init();
  Act(0, 0);
  Act(timing_.trrd - 1, /*bank=*/1);
  ExpectOnly(TimingRule::kTrrd);
}

TEST_F(ProtocolCheckerTest, FlagsFifthActivateInsideTfaw) {
  Init();
  Act(0, 0);
  Act(5, 1);
  Act(10, 2);
  Act(15, 3);
  Act(20, 4);  // tFAW wants 0 + 24 = 24
  ExpectOnly(TimingRule::kTfaw);
}

TEST_F(ProtocolCheckerTest, FlagsActivateDuringRefresh) {
  Init();
  Ref(0);
  Act(timing_.trfc - 1, 0);
  ExpectOnly(TimingRule::kTrfc);
}

TEST_F(ProtocolCheckerTest, FlagsBackToBackRefreshInsideTrfc) {
  Init();
  Ref(0);
  Ref(100);
  ExpectOnly(TimingRule::kTrfc);
}

TEST_F(ProtocolCheckerTest, FlagsOverdueRefreshOnceAgainstTrefi) {
  checker_.set_expect_refresh(true);
  Init();
  const uint64_t overdue = 9 * timing_.trefi + 1;
  Act(overdue, 0);
  ExpectOnly(TimingRule::kTrefi);
  // The lapse is reported once, not per command.
  Rd(overdue + timing_.trcd, 0);
  EXPECT_EQ(checker_.violations().size(), 1u) << checker_.Report();
}

TEST_F(ProtocolCheckerTest, RefreshResetsTheTrefiClock) {
  checker_.set_expect_refresh(true);
  Init();
  Ref(6240);                    // on schedule
  Act(6240 + 300, 0);           // well inside the next window
  EXPECT_TRUE(checker_.violations().empty()) << checker_.Report();
}

TEST_F(ProtocolCheckerTest, FlagsCommandBeforeTmrd) {
  Init();
  Mrs(0);
  Act(timing_.tmrd - 2, 0);
  ExpectOnly(TimingRule::kTmrd);
}

TEST_F(ProtocolCheckerTest, FlagsMrsDuringRefresh) {
  Init();
  Ref(0);
  Mrs(100);
  ExpectOnly(TimingRule::kTrfc);
}

// -- Bank-state and bus-structure rules --------------------------------------

TEST_F(ProtocolCheckerTest, FlagsReadWithNoOpenRow) {
  Init();
  Rd(0, 0);
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsWriteWithNoOpenRow) {
  Init();
  Wr(0, 0);
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsColumnCommandToWrongRow) {
  Init();
  Act(0, 0, /*row=*/5);
  Rd(20, 0, /*row=*/6);
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsActivateToOpenBank) {
  Init();
  Act(0, 0);
  Act(50, 0);  // tRC/tRRD satisfied, but no PRE closed the row
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsRefreshWithOpenRow) {
  Init();
  Act(0, 0);
  Ref(50);
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsMrsWithOpenRow) {
  Init();
  Act(0, 0);
  Mrs(50);
  ExpectOnly(TimingRule::kBankState);
}

TEST_F(ProtocolCheckerTest, FlagsTwoCommandsInOneBusCycle) {
  Init();
  Act(0, 0);
  Pre(0, /*bank=*/3);  // PRE to an idle bank is a NOP, but the bus is taken
  ExpectOnly(TimingRule::kCmdBus);
}

TEST_F(ProtocolCheckerTest, FlagsOffEdgeIssueTick) {
  Init();
  checker_.Observe(Command{CommandType::kActivate, 0, 0, 0},
                   timing_.tck_ps / 2);
  ExpectOnly(TimingRule::kCmdBus);
}

TEST_F(ProtocolCheckerTest, FlagsDataBusBurstOverlapAcrossRanks) {
  org_.ranks_per_channel = 2;
  Init();
  Act(0, 0, 0, /*rank=*/0);
  Act(1, 0, 0, /*rank=*/1);
  Rd(11, 0, 0, /*rank=*/0);  // data on the bus cycles [22, 26)
  Rd(13, 0, 0, /*rank=*/1);  // CL projects its burst to start at 24
  ExpectOnly(TimingRule::kDataBus);
}

// -- Reporting ----------------------------------------------------------------

TEST_F(ProtocolCheckerTest, ViolationCarriesCycleBankAndCommandPair) {
  Init();
  Act(0, /*bank=*/2);
  Rd(5, 2);
  ASSERT_EQ(checker_.violations().size(), 1u);
  const ProtocolViolation& v = checker_.violations()[0];
  EXPECT_EQ(v.bus_cycle, 5u);
  EXPECT_EQ(v.rank, 0u);
  EXPECT_EQ(v.bank, 2u);
  EXPECT_EQ(v.tick, C(5));
  // The message names both commands of the offending pair.
  EXPECT_NE(v.message.find("RD"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("ACT"), std::string::npos) << v.message;
  EXPECT_NE(v.ToString().find("tRCD"), std::string::npos) << v.ToString();
}

}  // namespace
}  // namespace ndp::dram
