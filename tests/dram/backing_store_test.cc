#include "dram/backing_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndp::dram {
namespace {

TEST(BackingStoreTest, UntouchedBytesReadZero) {
  BackingStore mem(1 << 20);
  std::vector<uint8_t> buf(100, 0xFF);
  mem.Read(12345, buf.data(), buf.size());
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip) {
  BackingStore mem(1 << 20);
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  mem.Write(5000, data.data(), data.size());
  std::vector<uint8_t> out(1000);
  mem.Read(5000, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(BackingStoreTest, CrossPageBoundary) {
  BackingStore mem(1 << 20);
  uint64_t addr = BackingStore::kPageSize - 4;
  uint64_t v = 0x1122334455667788ull;
  mem.Write64(addr, v);
  EXPECT_EQ(mem.Read64(addr), v);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(BackingStoreTest, SparseAllocationOnlyTouchedPages) {
  BackingStore mem(1ull << 40);  // 1 TB address space costs nothing up front
  mem.Write64(0, 1);
  mem.Write64(1ull << 39, 2);
  EXPECT_EQ(mem.resident_pages(), 2u);
  EXPECT_EQ(mem.Read64(0), 1u);
  EXPECT_EQ(mem.Read64(1ull << 39), 2u);
}

TEST(BackingStoreTest, PartialOverwrite) {
  BackingStore mem(1 << 20);
  mem.Write64(64, 0xAAAAAAAAAAAAAAAAull);
  uint32_t half = 0xBBBBBBBB;
  mem.Write(64, &half, 4);
  EXPECT_EQ(mem.Read64(64), 0xAAAAAAAABBBBBBBBull);
}

TEST(BackingStoreDeathTest, OutOfRangeAborts) {
  BackingStore mem(1024);
  uint64_t v = 0;
  EXPECT_DEATH(mem.Write64(1020, v), "out of range");
  EXPECT_DEATH(mem.Read64(1020), "out of range");
}

}  // namespace
}  // namespace ndp::dram
