#include "dram/rank.h"

#include <gtest/gtest.h>

namespace ndp::dram {
namespace {

class RankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    timing_ = DramTiming::DDR3_1600();
    org_ = DramOrganization{};
    rank_.Configure(&timing_, &org_);
  }
  sim::Tick Cyc(uint32_t n) const { return n * timing_.tck_ps; }
  Command Act(uint32_t bank, uint32_t row = 0) {
    return Command{CommandType::kActivate, 0, bank, row};
  }
  Command Rd(uint32_t bank, uint32_t col = 0) {
    return Command{CommandType::kRead, 0, bank, 0, col};
  }
  Command Wr(uint32_t bank, uint32_t col = 0) {
    return Command{CommandType::kWrite, 0, bank, 0, col};
  }

  DramTiming timing_;
  DramOrganization org_;
  Rank rank_;
};

TEST_F(RankTest, TrrdSeparatesActivatesToDifferentBanks) {
  ASSERT_TRUE(rank_.Issue(Act(0), 0).ok());
  EXPECT_EQ(rank_.EarliestIssue(Act(1)), Cyc(timing_.trrd));
  EXPECT_EQ(rank_.Issue(Act(1), Cyc(timing_.trrd) - timing_.tck_ps)
                .status()
                .code(),
            StatusCode::kTimingViolation);
  EXPECT_TRUE(rank_.Issue(Act(1), Cyc(timing_.trrd)).ok());
}

TEST_F(RankTest, TfawLimitsFourActivatesPerWindow) {
  // Issue four ACTs at the tRRD rate; the fifth must wait for the tFAW window
  // measured from the first.
  sim::Tick t = 0;
  for (uint32_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(rank_.Issue(Act(b), t).ok());
    t += Cyc(timing_.trrd);
  }
  sim::Tick fifth = rank_.EarliestIssue(Act(4));
  EXPECT_EQ(fifth, Cyc(timing_.tfaw));
  EXPECT_GT(fifth, t);  // tFAW binds harder than tRRD here (24 > 4*5 = 20)
  EXPECT_TRUE(rank_.Issue(Act(4), fifth).ok());
}

TEST_F(RankTest, TccdSeparatesColumnCommandsAcrossBanks) {
  ASSERT_TRUE(rank_.Issue(Act(0), 0).ok());
  ASSERT_TRUE(rank_.Issue(Act(1), Cyc(timing_.trrd)).ok());
  sim::Tick rd0 = Cyc(timing_.trcd);
  ASSERT_TRUE(rank_.Issue(Rd(0), rd0).ok());
  // A read to ANOTHER bank still waits tCCD.
  EXPECT_GE(rank_.EarliestIssue(Rd(1)), rd0 + Cyc(timing_.tccd));
}

TEST_F(RankTest, TwtrSeparatesWriteThenRead) {
  ASSERT_TRUE(rank_.Issue(Act(0), 0).ok());
  sim::Tick wr_at = Cyc(timing_.trcd);
  auto done = rank_.Issue(Wr(0), wr_at);
  ASSERT_TRUE(done.ok());
  sim::Tick min_rd = done.value() + Cyc(timing_.twtr);
  EXPECT_GE(rank_.EarliestIssue(Rd(0)), min_rd);
  // Write-to-write needs only tCCD, much sooner than tWTR.
  EXPECT_LE(rank_.EarliestIssue(Wr(0)), wr_at + Cyc(timing_.tccd));
}

TEST_F(RankTest, RefreshIsRankWide) {
  ASSERT_TRUE(rank_.Issue(Act(3), 0).ok());
  // Cannot refresh with an open row anywhere in the rank.
  Command ref{CommandType::kRefresh, 0};
  sim::Tick t = Cyc(timing_.tras);
  EXPECT_FALSE(rank_.Issue(ref, rank_.EarliestIssue(ref)).ok());
  ASSERT_TRUE(rank_.Issue(Command{CommandType::kPrecharge, 0, 3}, t).ok());
  sim::Tick ref_at = rank_.EarliestIssue(ref);
  auto done = rank_.Issue(ref, ref_at);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value(), ref_at + Cyc(timing_.trfc));
  // Every bank is blocked until tRFC passes.
  for (uint32_t b = 0; b < rank_.num_banks(); ++b) {
    EXPECT_GE(rank_.bank(b).CanActivateAt(), ref_at + Cyc(timing_.trfc));
  }
}

TEST_F(RankTest, ModeRegisterSetTogglesOwnership) {
  EXPECT_EQ(rank_.owner(), RankOwner::kHost);
  Command mrs{CommandType::kModeRegSet, 0};
  mrs.mode_register = 3;
  mrs.mode_value = kMr3MprEnableBit;
  ASSERT_TRUE(rank_.Issue(mrs, 0).ok());
  EXPECT_EQ(rank_.owner(), RankOwner::kAccelerator);
  EXPECT_EQ(rank_.mode_register(3), kMr3MprEnableBit);

  mrs.mode_value = 0;
  sim::Tick t = rank_.EarliestIssue(mrs);
  EXPECT_GE(t, Cyc(timing_.tmrd));  // tMRD after the previous MRS
  ASSERT_TRUE(rank_.Issue(mrs, t).ok());
  EXPECT_EQ(rank_.owner(), RankOwner::kHost);
}

TEST_F(RankTest, MrsRequiresAllBanksPrecharged) {
  ASSERT_TRUE(rank_.Issue(Act(0), 0).ok());
  Command mrs{CommandType::kModeRegSet, 0};
  mrs.mode_register = 3;
  mrs.mode_value = kMr3MprEnableBit;
  EXPECT_FALSE(rank_.Issue(mrs, Cyc(2)).ok());
}

TEST_F(RankTest, CountersTrackIssuedCommands) {
  ASSERT_TRUE(rank_.Issue(Act(0), 0).ok());
  ASSERT_TRUE(rank_.Issue(Rd(0), Cyc(timing_.trcd)).ok());
  ASSERT_TRUE(rank_.Issue(Wr(0), Cyc(timing_.trcd + timing_.tccd)).ok());
  EXPECT_EQ(rank_.activates_issued(), 1u);
  EXPECT_EQ(rank_.reads_issued(), 1u);
  EXPECT_EQ(rank_.writes_issued(), 1u);
}

TEST_F(RankTest, AllBanksIdleReflectsOpenRows) {
  EXPECT_TRUE(rank_.AllBanksIdle());
  ASSERT_TRUE(rank_.Issue(Act(5), 0).ok());
  EXPECT_FALSE(rank_.AllBanksIdle());
}

}  // namespace
}  // namespace ndp::dram
