#include "util/stats.h"

#include <gtest/gtest.h>

namespace ndp {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanMinMaxSum) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStatsTest, SampleVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(3.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0, 100, 10);
  h.Add(-5);    // underflow
  h.Add(5);     // bucket 1
  h.Add(95);    // bucket 10
  h.Add(150);   // overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.stats().count(), 4u);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, AsciiRenderNonEmpty) {
  Histogram h(0, 10, 5);
  h.Add(1);
  h.Add(1);
  h.Add(7);
  std::string art = h.ToAscii();
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, EmptyAsciiRender) {
  Histogram h(0, 10, 5);
  EXPECT_EQ(h.ToAscii(), "(empty histogram)\n");
}

}  // namespace
}  // namespace ndp
