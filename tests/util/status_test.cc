#include "util/status.h"

#include <gtest/gtest.h>

namespace ndp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad bank index");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad bank index");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad bank index");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeviceBusy("x").code(), StatusCode::kDeviceBusy);
  EXPECT_EQ(Status::TimingViolation("x").code(), StatusCode::kTimingViolation);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingOp() { return Status::Internal("boom"); }
Status PropagatingOp() {
  NDP_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingOp().code(), StatusCode::kInternal);
}

Result<int> ProduceInt(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}
Result<int> ConsumeInt(bool fail) {
  NDP_ASSIGN_OR_RETURN(int v, ProduceInt(fail));
  return v * 2;
}

TEST(StatusMacroTest, AssignOrReturnHappyPath) {
  auto r = ConsumeInt(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

TEST(StatusMacroTest, AssignOrReturnErrorPath) {
  auto r = ConsumeInt(true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ndp
