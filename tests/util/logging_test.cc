#include "util/logging.h"

#include <gtest/gtest.h>

namespace ndp {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelFiltering) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  NDP_LOG_DEBUG("hidden %d", 1);
  NDP_LOG_INFO("also hidden");
  NDP_LOG_ERROR("visible %s", "error");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] visible error"), std::string::npos);
}

TEST_F(LoggingTest, TraceLevelShowsEverything) {
  SetLogLevel(LogLevel::kTrace);
  ::testing::internal::CaptureStderr();
  NDP_LOG_TRACE("t");
  NDP_LOG_WARN("w");
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[TRACE] t"), std::string::npos);
  EXPECT_NE(out.find("[WARN] w"), std::string::npos);
}

TEST_F(LoggingTest, GetSetRoundTrip) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace ndp
