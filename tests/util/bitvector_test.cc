#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ndp {
namespace {

TEST(BitVectorTest, StartsCleared) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.num_words(), 3u);
  EXPECT_EQ(bv.CountOnes(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetClearGet) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_EQ(bv.CountOnes(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountOnes(), 3u);
}

TEST(BitVectorTest, SetToMirrorsBool) {
  BitVector bv(8);
  bv.SetTo(3, true);
  EXPECT_TRUE(bv.Get(3));
  bv.SetTo(3, false);
  EXPECT_FALSE(bv.Get(3));
}

TEST(BitVectorTest, WordAccess) {
  BitVector bv(128);
  bv.SetWord(1, 0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(bv.Word(1), 0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(bv.CountOnes(), 32u);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_TRUE(bv.Get(68));
}

TEST(BitVectorTest, MergeWordOnlyTouchesMaskedBits) {
  // The masked write-back JAFAR uses under word-interleaved layouts (§2.2).
  BitVector bv(64);
  bv.SetWord(0, 0x00000000FFFFFFFFull);
  bv.MergeWord(0, 0xAAAAAAAA00000000ull, 0xFFFFFFFF00000000ull);
  EXPECT_EQ(bv.Word(0), 0xAAAAAAAAFFFFFFFFull);
  // Bits outside the mask must be preserved even if the value disagrees.
  bv.MergeWord(0, 0x0000000000000000ull, 0x00000000000000FFull);
  EXPECT_EQ(bv.Word(0), 0xAAAAAAAAFFFFFF00ull);
}

TEST(BitVectorTest, AppendSetPositionsMatchesGet) {
  Rng rng(7);
  BitVector bv(1000);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < 1000; ++i) {
    if (rng.NextBool(0.3)) {
      bv.Set(i);
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<uint32_t> got;
  bv.AppendSetPositions(&got);
  EXPECT_EQ(got, expected);
}

TEST(BitVectorTest, EqualityAndResize) {
  BitVector a(10), b(10);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_TRUE(a == b);
  a.Resize(20);
  EXPECT_EQ(a.CountOnes(), 0u);
  EXPECT_FALSE(a == b);
}

TEST(BitVectorTest, BytesViewLittleEndianLayout) {
  BitVector bv(16);
  bv.Set(0);
  bv.Set(9);
  EXPECT_EQ(bv.bytes()[0], 0x01);
  EXPECT_EQ(bv.bytes()[1], 0x02);
}

}  // namespace
}  // namespace ndp
