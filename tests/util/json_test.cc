#include "util/json.h"

#include <string>

#include "gtest/gtest.h"

namespace ndp::json {
namespace {

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(Value::Null().Dump(), "null");
  EXPECT_EQ(Value::Bool(true).Dump(), "true");
  EXPECT_EQ(Value::Bool(false).Dump(), "false");
  EXPECT_EQ(Value::Number(42).Dump(), "42");
  EXPECT_EQ(Value::Number(-3).Dump(), "-3");
  EXPECT_EQ(Value::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, IntegralNumbersHaveNoExponent) {
  // Counter values are doubles internally but must print as integers.
  EXPECT_EQ(Value::Number(4194304).Dump(), "4194304");
  EXPECT_EQ(Value::Number(1e15).Dump(), "1000000000000000");
}

TEST(JsonDumpTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(Escape("tab\there"), "tab\\there");
  EXPECT_EQ(Escape("nl\n"), "nl\\n");
  EXPECT_EQ(Escape(std::string("nul\x01", 4)), "nul\\u0001");
}

TEST(JsonDumpTest, ObjectPreservesInsertionOrder) {
  Value obj = Value::Object();
  obj.Set("zebra", Value::Number(1));
  obj.Set("alpha", Value::Number(2));
  obj.Set("mid", Value::Number(3));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Replacing a key keeps its original position — emission stays stable.
  obj.Set("alpha", Value::Number(9));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonDumpTest, PrettyPrinting) {
  Value obj = Value::Object();
  obj.Set("a", Value::Number(1));
  Value arr = Value::Array();
  arr.Append(Value::Number(2));
  obj.Set("b", std::move(arr));
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonParseTest, RoundTripsComplexDocument) {
  Value root = Value::Object();
  root.Set("name", Value::Str("fig3 \"quoted\" \\ path\n"));
  root.Set("count", Value::Number(123456789));
  root.Set("frac", Value::Number(0.25));
  root.Set("flag", Value::Bool(true));
  root.Set("nothing", Value::Null());
  Value pts = Value::Array();
  Value p = Value::Object();
  p.Set("label", Value::Str("50%"));
  pts.Append(std::move(p));
  root.Set("points", std::move(pts));

  std::string text = root.Dump(2);
  auto parsed = Value::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Byte-identical re-emission: stable key order survives the round trip.
  EXPECT_EQ(parsed.value().Dump(2), text);
  EXPECT_EQ(parsed.value().Find("name")->AsString(),
            "fig3 \"quoted\" \\ path\n");
  EXPECT_DOUBLE_EQ(parsed.value().Find("count")->AsNumber(), 123456789.0);
}

TEST(JsonParseTest, ParsesEscapesAndUnicode) {
  auto v = Value::Parse("\"a\\u0041\\n\\t\\\\\\\"\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsString(), "aA\n\t\\\"");
  // Surrogate pair: U+1D11E (musical G clef) -> 4-byte UTF-8.
  auto clef = Value::Parse("\"\\uD834\\uDD1E\"");
  ASSERT_TRUE(clef.ok());
  EXPECT_EQ(clef.value().AsString(), "\xF0\x9D\x84\x9E");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "01", "1 2", "nulls", "\"unterminated",
        "{\"a\" 1}", "[1 2]", "+1", "\"\\uD834\"" /* lone surrogate */}) {
    EXPECT_FALSE(Value::Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Value::Parse(deep).ok());
}

TEST(JsonParseTest, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(Value::Parse("-0.5").value().AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(Value::Parse("1e3").value().AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(Value::Parse("2.5E-1").value().AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(Value::Parse("0").value().AsNumber(), 0.0);
}

}  // namespace
}  // namespace ndp::json
