#include "util/stats_registry.h"

#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "util/stats.h"

namespace ndp {
namespace {

TEST(StatsRegistryTest, CounterReadsThroughPointer) {
  StatsRegistry reg;
  uint64_t cell = 0;
  ASSERT_TRUE(reg.RegisterCounter("a.b.c", &cell).ok());
  EXPECT_EQ(reg.Snapshot().Count("a.b.c"), 0u);
  cell = 41;
  ++cell;
  EXPECT_EQ(reg.Snapshot().Count("a.b.c"), 42u);
}

TEST(StatsRegistryTest, RejectsDuplicatePaths) {
  StatsRegistry reg;
  uint64_t a = 0, b = 0;
  // ndp-lint: stats-dead-ok throwaway path probing duplicate rejection
  ASSERT_TRUE(reg.RegisterCounter("dup", &a).ok());
  // ndp-lint: stats-dead-ok throwaway path probing duplicate rejection
  Status again = reg.RegisterCounter("dup", &b);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  // Across kinds too: the path namespace is global.
  // ndp-lint: stats-dead-ok throwaway path probing duplicate rejection
  EXPECT_EQ(reg.RegisterGauge("dup", &b).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(StatsRegistryTest, RejectsEmptyPath) {
  StatsRegistry reg;
  uint64_t cell = 0;
  // ndp-lint: stats-path-ok (negative test: the empty path must be rejected)
  EXPECT_EQ(reg.RegisterCounter("", &cell).code(),
            StatusCode::kInvalidArgument);
}

TEST(StatsRegistryTest, FnBackedCounterIsEvaluatedAtSnapshotTime) {
  StatsRegistry reg;
  uint64_t now = 100;
  ASSERT_TRUE(
      reg.RegisterCounter("ticks", std::function<uint64_t()>([&] { return now; }))
          .ok());
  EXPECT_EQ(reg.Snapshot().Count("ticks"), 100u);
  now = 250;
  EXPECT_EQ(reg.Snapshot().Count("ticks"), 250u);
}

TEST(StatsRegistryTest, SnapshotDeltaSubtractsCountersKeepsGauges) {
  StatsRegistry reg;
  uint64_t counter = 10;
  uint64_t gauge = 7;
  double energy = 1.5;
  ASSERT_TRUE(reg.RegisterCounter("c", &counter).ok());
  ASSERT_TRUE(reg.RegisterGauge("g", &gauge).ok());
  ASSERT_TRUE(reg.RegisterCounter("e", &energy).ok());

  StatsSnapshot before = reg.Snapshot();
  counter = 25;
  gauge = 3;  // gauges can go down (it's a level, not an accumulator)
  energy = 4.0;
  StatsSnapshot delta = reg.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.Count("c"), 15u);
  EXPECT_EQ(delta.Count("g"), 3u);  // after-value, not 3 - 7
  EXPECT_DOUBLE_EQ(delta.Value("e"), 2.5);
}

TEST(StatsRegistryTest, DeltaTreatsMissingBeforeEntryAsZero) {
  StatsSnapshot before;  // empty
  StatsRegistry reg;
  uint64_t c = 9;
  ASSERT_TRUE(reg.RegisterCounter("fresh", &c).ok());
  StatsSnapshot delta = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.Count("fresh"), 9u);
}

TEST(StatsRegistryTest, HistogramExpandsToPercentilesAndWindowedSums) {
  StatsRegistry reg;
  Histogram hist(0, 100, 100);
  ASSERT_TRUE(reg.RegisterHistogram("h", &hist).ok());
  for (int i = 1; i <= 100; ++i) hist.Add(i - 0.5);

  StatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Count("h.count"), 100u);
  EXPECT_DOUBLE_EQ(snap.Value("h.sum"), 5000.0);
  EXPECT_DOUBLE_EQ(snap.Value("h.mean"), 50.0);
  EXPECT_NEAR(snap.Value("h.p50"), 50.0, 1.5);
  EXPECT_NEAR(snap.Value("h.p90"), 90.0, 1.5);
  EXPECT_NEAR(snap.Value("h.p99"), 99.0, 1.5);

  // .count/.sum are monotonic (windowable); percentiles are gauges.
  StatsSnapshot before = snap;
  hist.Add(1000.5);  // overflow bucket still counts toward sum/count
  StatsSnapshot delta = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.Count("h.count"), 1u);
  EXPECT_DOUBLE_EQ(delta.Value("h.sum"), 1000.5);
}

TEST(StatsRegistryTest, OwnedCounterIsStableAcrossLookups) {
  StatsRegistry reg;
  uint64_t* a = reg.OwnedCounter("db.scan.rows");
  *a += 5;
  uint64_t* b = reg.OwnedCounter("db.scan.rows");
  EXPECT_EQ(a, b);
  *b += 2;
  EXPECT_EQ(reg.Snapshot().Count("db.scan.rows"), 7u);
}

TEST(StatsRegistryTest, ReadValueResolvesScalarsAndHistogramSubpaths) {
  StatsRegistry reg;
  uint64_t counter = 7;
  double gauge = 2.5;
  uint64_t fn_val = 11;
  Histogram hist(0.0, 100.0, 10);
  ASSERT_TRUE(reg.RegisterCounter("c", &counter).ok());
  ASSERT_TRUE(
      reg.RegisterGauge("g", std::function<double()>([&] { return gauge; }))
          .ok());
  ASSERT_TRUE(
      reg.RegisterCounter("f", std::function<uint64_t()>([&] { return fn_val; }))
          .ok());
  ASSERT_TRUE(reg.RegisterHistogram("h", &hist).ok());
  for (int i = 0; i < 100; ++i) hist.Add(static_cast<double>(i));

  EXPECT_DOUBLE_EQ(reg.ReadValue("c"), 7.0);
  counter = 8;
  EXPECT_DOUBLE_EQ(reg.ReadValue("c"), 8.0);  // live, not a snapshot
  EXPECT_DOUBLE_EQ(reg.ReadValue("g"), 2.5);
  EXPECT_DOUBLE_EQ(reg.ReadValue("f"), 11.0);
  EXPECT_DOUBLE_EQ(reg.ReadValue("h.count"), 100.0);
  EXPECT_DOUBLE_EQ(reg.ReadValue("h.sum"), 4950.0);
  EXPECT_DOUBLE_EQ(reg.ReadValue("h.mean"), 49.5);
  EXPECT_GT(reg.ReadValue("h.p99"), reg.ReadValue("h.p50"));
  // Unknown paths and a bare histogram path fall back.
  EXPECT_DOUBLE_EQ(reg.ReadValue("nope", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.ReadValue("h", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.ReadValue("h.p33", -1.0), -1.0);
}

TEST(StatsScopeTest, InertScopeIsSafeAndRegistersNothing) {
  StatsScope scope;  // default-constructed: no registry attached
  uint64_t cell = 0;
  scope.Counter("x", &cell);  // must not crash
  EXPECT_FALSE(scope.active());
  EXPECT_FALSE(scope.Sub("child").active());
}

TEST(StatsScopeTest, SubBuildsDottedPaths) {
  StatsRegistry reg;
  StatsScope root(&reg, "system");
  StatsScope ctrl = root.Sub("dram").Sub("ctrl0");
  EXPECT_EQ(ctrl.prefix(), "system.dram.ctrl0");
  uint64_t cell = 3;
  ctrl.Counter("reads", &cell);
  EXPECT_TRUE(reg.Contains("system.dram.ctrl0.reads"));
  EXPECT_EQ(reg.Snapshot().Count("system.dram.ctrl0.reads"), 3u);
}

TEST(StatsSnapshotTest, TextDumpIsSortedAndDeterministic) {
  StatsRegistry reg;
  uint64_t z = 1, a = 2;
  ASSERT_TRUE(reg.RegisterCounter("zebra", &z).ok());
  ASSERT_TRUE(reg.RegisterCounter("alpha", &a).ok());
  std::string text = reg.DumpText();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
  EXPECT_EQ(text, reg.DumpText());
}

TEST(StatsSnapshotTest, JsonDumpRoundTrips) {
  StatsRegistry reg;
  uint64_t c = 12345;
  double e = 0.125;
  ASSERT_TRUE(reg.RegisterCounter("sys.count", &c).ok());
  ASSERT_TRUE(reg.RegisterCounter("sys.energy", &e).ok());
  std::string text = reg.DumpJson().Dump();
  auto parsed = json::Value::Parse(text);
  ASSERT_TRUE(parsed.ok());
  const json::Value* count = parsed.value().Find("sys.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->AsNumber(), 12345.0);
  const json::Value* energy = parsed.value().Find("sys.energy");
  ASSERT_NE(energy, nullptr);
  EXPECT_DOUBLE_EQ(energy->AsNumber(), 0.125);
}

}  // namespace
}  // namespace ndp
