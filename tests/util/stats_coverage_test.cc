// Pins the registered stats surface by name. Every counter, gauge, and
// histogram a component registers must be listed here (or read by some
// estimator/bench); the ndp-analyze stats-dead pass points offenders at this
// file. If you add a counter, add its path here; if a path below starts
// failing, a registration was renamed or dropped — update both sides.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/ir.h"
#include "core/dimm_array.h"
#include "core/host_traffic.h"
#include "core/platform.h"
#include "core/runtime.h"
#include "core/system.h"
#include "dram/timing.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "jafar/config.h"
#include "jafar/generation.h"
#include "util/stats_registry.h"

namespace ndp {
namespace {

void ExpectAll(const StatsRegistry& reg,
               const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    EXPECT_TRUE(reg.Contains(path)) << "missing stats path: " << path;
  }
}

TEST(StatsCoverageTest, SystemModelSurface) {
  core::SystemModel sys(core::PlatformConfig::Gem5());
  ExpectAll(sys.stats(), {
      "system.ticks_ps",
      // memory controller (per channel)
      "system.dram.ctrl0.reads_served",
      "system.dram.ctrl0.writes_served",
      "system.dram.ctrl0.row_hits",
      "system.dram.ctrl0.row_misses",
      "system.dram.ctrl0.row_conflicts",
      "system.dram.ctrl0.rc_busy_cycles",
      "system.dram.ctrl0.wc_busy_cycles",
      "system.dram.ctrl0.idle_cycles",
      // per-rank ECC scrub counters
      "system.dram.ch0.rank0.ecc_corrected",
      "system.dram.ch0.rank0.ecc_uncorrectable",
      // cache hierarchy (gem5-like platform: L1 + L2)
      "system.cpu.l1.hits",
      "system.cpu.l1.misses",
      "system.cpu.l1.mshr_merges",
      "system.cpu.l1.writebacks",
      "system.cpu.l1.prefetches_issued",
      "system.cpu.l1.prefetch_hits",
      "system.cpu.l1.rejections",
      "system.cpu.l2.hits",
      "system.cpu.l2.misses",
      // out-of-order core
      "system.cpu.core.cycles",
      "system.cpu.core.uops_retired",
      "system.cpu.core.loads",
      "system.cpu.core.stores",
      "system.cpu.core.branches",
      "system.cpu.core.mispredicts",
      "system.cpu.core.load_reject_cycles",
      "system.cpu.core.rob_full_cycles",
      "system.cpu.core.fetch_stall_cycles",
      "system.cpu.core.max_retire_gap_ps",
      // JAFAR device
      "system.jafar.dev0.jobs_completed",
      "system.jafar.dev0.jobs_failed",
      "system.jafar.dev0.rows_processed",
      "system.jafar.dev0.matches",
      "system.jafar.dev0.bursts_read",
      "system.jafar.dev0.bursts_written",
      "system.jafar.dev0.activates",
      "system.jafar.dev0.data_wait_ps",
      "system.jafar.dev0.engine_busy_ps",
      "system.jafar.dev0.total_busy_ps",
      "system.jafar.dev0.energy_fj",
      "system.jafar.dev0.polite_backoffs",
      "system.jafar.dev0.refresh_backoffs",
      // JAFAR driver
      "system.jafar.watchdog_fires",
      "system.jafar.retries",
      "system.jafar.checksum_errors",
      "system.jafar.device_errors",
      "system.jafar.permanent_failures",
      "system.jafar.recovery_latency_ps",
      // system-level pushdown accounting
      "system.core.pushdown_fallbacks",
      "system.core.degraded_mode",
      "system.core.pushdown_probes",
  });
}

TEST(StatsCoverageTest, XeonPlatformHasThreeCacheLevels) {
  core::SystemModel sys(core::PlatformConfig::Xeon());
  ExpectAll(sys.stats(), {
      "system.cpu.l3.hits",
      "system.cpu.l3.misses",
  });
}

TEST(StatsCoverageTest, V2DatapathSurface) {
  core::PlatformConfig p = core::PlatformConfig::Gem5();
  p.device_gen = jafar::DeviceGeneration::kV2BankLevel;
  core::SystemModel sys(p);
  ExpectAll(sys.stats(), {
      "system.jafar.dev0.filter_bursts",
      "system.jafar.dev0.filter_segments",
      "system.jafar.dev0.bank_waves",
  });
}

TEST(StatsCoverageTest, RuntimeAndHostTrafficSurface) {
  jafar::DeviceConfig dc =
      jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                  accel::DatapathResources{})
          .ValueOrDie();
  core::DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, dc);
  core::RuntimeConfig cfg;
  core::NdpRuntime runtime(&array, cfg);
  core::HostTrafficConfig tc;
  core::HostTrafficGen traffic(&array.eq(), &array.dram().controller(0), tc,
                               StatsScope(array.mutable_stats(), "host"));
  ExpectAll(array.stats(), {
      // array-level memory controller + device
      "array.dram.ctrl0.reads_served",
      "array.dram.ctrl0.writes_served",
      "array.dram.ctrl0.rc_busy_cycles",
      "array.dram.ctrl0.wc_busy_cycles",
      "array.dev0.jobs_completed",
      // multi-query runtime
      "array.runtime.jobs_submitted",
      "array.runtime.jobs_completed",
      "array.runtime.jobs_failed",
      "array.runtime.leases",
      "array.runtime.admission_defers",
      "array.runtime.steals",
      "array.runtime.stolen_pages",
      "array.runtime.lane_failures",
      "array.runtime.chunks_reassigned",
      // skew-aware join pushdown: heavy-hitter flags + ETA-victim steals
      "array.runtime.hh_flags",
      "array.runtime.eta_steals",
      // per-channel lease controller
      "array.runtime.ctrl0.ewma_busy_fraction",
      "array.runtime.ctrl0.ewma_idle_cycles",
      "array.runtime.ctrl0.lease_bus_cycles",
      "array.runtime.ctrl0.qos_shrinks",
      "array.runtime.ctrl0.qos_grows",
      // host traffic generator
      "host.issued",
      "host.completed",
      "host.backpressure_retries",
      "host.latency_ps",
  });
}

TEST(StatsCoverageTest, ServingIngressAndFleetSurface) {
  jafar::DeviceConfig dc =
      jafar::DeviceConfig::Derive(dram::DramTiming::DDR3_1600(),
                                  accel::DatapathResources{})
          .ValueOrDie();
  core::DimmArray array(dram::DramTiming::DDR3_1600(), 1, 1, dc);
  core::RuntimeConfig rcfg;
  core::NdpRuntime runtime(&array, rcfg);
  core::TenantSpec tenant;
  tenant.name = "interactive";
  core::ServingIngress ingress(&runtime, &array, core::IngressConfig{},
                               {tenant});
  core::FleetConfig fcfg;
  core::ClientFleet fleet(&array.eq(), &ingress, fcfg,
                          StatsScope(array.mutable_stats(), "fleet"));
  ExpectAll(array.stats(), {
      // deadline propagation into the runtime's chunk queues
      "array.runtime.deadline_cancellations",
      // serving ingress: door accounting
      "array.ingress.accepted",
      "array.ingress.bursts",
      "array.ingress.admitted_interactive",
      "array.ingress.admitted_batch",
      "array.ingress.completed_ndp",
      "array.ingress.completed_cpu",
      "array.ingress.shed_ring_full",
      "array.ingress.shed_slots_exhausted",
      "array.ingress.shed_low_priority",
      "array.ingress.shed_retry_budget",
      "array.ingress.expired_at_admission",
      "array.ingress.deadline_exceeded",
      "array.ingress.failed",
      "array.ingress.retries",
      // overload governor (the occupancy gauge is also its own input)
      "array.ingress.governor_transitions",
      "array.ingress.slots_in_use",
      "array.ingress.overload_state",
      "array.ingress.occupancy_ewma",
      // client fleet, per tenant
      "fleet.tenant0.issued",
      "fleet.tenant0.goodput",
      "fleet.tenant0.shed",
      "fleet.tenant0.late",
      "fleet.tenant0.failed",
      "fleet.tenant0.mismatches",
      "fleet.tenant0.latency_ps",
  });
}

TEST(StatsCoverageTest, FaultInjectorSurface) {
  StatsRegistry reg;
  fault::FaultPlan plan;
  fault::FaultInjector injector(plan, StatsScope(&reg, "fault"));
  ExpectAll(reg, {
      "fault.ecc_ce_injected",
      "fault.ecc_ue_injected",
      "fault.hangs_injected",
      "fault.stalls_injected",
      "fault.corruptions_injected",
      "fault.drops_injected",
  });
}

}  // namespace
}  // namespace ndp
