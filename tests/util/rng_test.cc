#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace ndp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(42);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformityRoughChiSquare) {
  // 16 buckets, 160k draws: each bucket should be within 5% of 10k.
  Rng rng(1234);
  std::vector<int> buckets(16, 0);
  for (int i = 0; i < 160000; ++i) ++buckets[rng.NextBounded(16)];
  for (int b : buckets) {
    EXPECT_GT(b, 9500);
    EXPECT_LT(b, 10500);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

}  // namespace
}  // namespace ndp
