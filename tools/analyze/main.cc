// ndp-analyze: whole-program static analysis for the JAFAR tree.
//
// Successor to the single-file ndp_lint regex scanner (DESIGN.md §7). The
// pipeline is lexer → per-file IR → cross-TU index → passes:
//
//   * the eleven seed rules run per file over lexed (comment/string-clean)
//     lines — see rules_file.cc;
//   * four whole-program passes (stats coherence, guarded-by, layer DAG,
//     knob coherence) run over the cross-TU index — see passes.cc;
//   * two meta rules make the waiver ledger itself honest: every waiver
//     needs a reason, and a waiver that suppresses nothing is a finding.
//
// Waiver syntax is unchanged from ndp_lint: "// ndp-lint: <rule>-ok" on the
// flagged line or the line above, plus reason text.
//
// Usage: ndp_analyze [--expect golden.txt] [repo_root]
//   --expect: compare the report against a golden file (the fixture ctest);
//             exit 0 iff the output matches byte-for-byte, findings or not.
// Exit status: 0 clean (or golden match), 1 findings (or mismatch), 2 IO.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index.h"
#include "passes.h"
#include "rules_file.h"
#include "source.h"

namespace {

namespace fs = std::filesystem;
using namespace ndp::analyze;

/// The fixture corpus exercises every rule on purpose; a real-tree scan must
/// not trip over it.
bool SkippedPath(const std::string& rel) {
  return rel.rfind("tests/lint/fixtures", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string expect_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--expect golden.txt] [repo_root]\n",
                     argv[0]);
        return 2;
      }
      expect_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 1) {
    std::fprintf(stderr, "usage: %s [--expect golden.txt] [repo_root]\n",
                 argv[0]);
    return 2;
  }
  const fs::path root =
      positional.empty() ? fs::current_path() : fs::path(positional[0]);

  std::vector<fs::path> paths;
  for (const char* dir : {"src", "bench", "tests"}) {
    const fs::path sub = root / dir;
    if (!fs::exists(sub)) {
      std::fprintf(stderr, "ndp_analyze: missing directory %s\n",
                   sub.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const fs::path ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile f;
    if (!LoadSourceFile(root, path, &f)) {
      std::fprintf(stderr, "ndp_analyze: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    if (SkippedPath(f.rel)) continue;
    files.push_back(std::move(f));
  }

  std::vector<Finding> findings;
  for (SourceFile& f : files) RunFileRules(f, &findings);
  const Index idx = BuildIndex(files, root);
  RunPasses(files, idx, &findings);
  RunMetaPasses(files, &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rel != b.rel) return a.rel < b.rel;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.rel == b.rel && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());

  std::ostringstream report;
  for (const Finding& fd : findings) {
    report << fd.rel << ':' << fd.line << ": [" << fd.rule << "] "
           << fd.message << '\n';
  }
  report << "ndp_analyze: " << files.size() << " files scanned, "
         << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
         << '\n';

  if (expect_path.empty()) {
    std::fputs(report.str().c_str(), stdout);
    return findings.empty() ? 0 : 1;
  }

  std::ifstream golden(expect_path);
  if (!golden) {
    std::fprintf(stderr, "ndp_analyze: cannot read golden file %s\n",
                 expect_path.c_str());
    return 2;
  }
  std::stringstream want;
  want << golden.rdbuf();
  if (want.str() == report.str()) {
    std::printf("ndp_analyze: output matches %s\n", expect_path.c_str());
    return 0;
  }
  std::printf("ndp_analyze: output differs from %s\n--- got ---\n%s--- want "
              "---\n%s",
              expect_path.c_str(), report.str().c_str(), want.str().c_str());
  return 1;
}
