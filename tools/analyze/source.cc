#include "source.h"

#include <fstream>
#include <regex>

namespace ndp::analyze {

namespace {

const std::regex kWaiver(R"(ndp-lint:\s*([a-z][a-z0-9-]*)-ok)");
const std::regex kAnnotation(
    R"(ndp:\s*(guarded-by|requires|stats-scope|bounded-by)\s*\(([^)]*)\))");
const std::regex kWord(R"([A-Za-z]{2,})");

/// Parses every waiver and annotation out of one comment.
void ParseComment(const Comment& c, SourceFile* out) {
  std::string rest = c.text;  // comment with waiver tokens cut out
  std::vector<std::string> rules;
  for (auto it = std::sregex_iterator(c.text.begin(), c.text.end(), kWaiver);
       it != std::sregex_iterator(); ++it) {
    rules.push_back((*it)[1].str());
  }
  if (!rules.empty()) {
    rest = std::regex_replace(rest, kWaiver, "");
    rest = std::regex_replace(rest, kAnnotation, "");
    // A reason is any leftover prose: at least one real word beyond the
    // waiver tokens themselves.
    const bool has_reason = std::regex_search(rest, kWord);
    for (std::string& rule : rules) {
      out->waivers.push_back(Waiver{c.line, std::move(rule), has_reason});
    }
  }
  for (auto it =
           std::sregex_iterator(c.text.begin(), c.text.end(), kAnnotation);
       it != std::sregex_iterator(); ++it) {
    out->annotations.push_back(
        Annotation{c.line, (*it)[1].str(), (*it)[2].str()});
  }
}

}  // namespace

bool LoadSourceFile(const std::filesystem::path& root,
                    const std::filesystem::path& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->rel = std::filesystem::relative(path, root).generic_string();
  out->top = out->rel.substr(0, out->rel.find('/'));
  if (out->top == "src") {
    const size_t a = out->rel.find('/') + 1;
    const size_t b = out->rel.find('/', a);
    if (b != std::string::npos) out->layer = out->rel.substr(a, b - a);
  }
  out->is_header = path.extension() == ".h";
  std::string line;
  while (std::getline(in, line)) out->raw.push_back(line);
  out->lex = Lex(out->raw);
  for (const Comment& c : out->lex.comments) ParseComment(c, out);
  return true;
}

bool Suppressed(SourceFile& f, size_t line, const std::string& rule) {
  bool hit = false;
  for (Waiver& w : f.waivers) {
    if (w.rule == rule && (w.line == line || w.line + 1 == line)) {
      w.used = true;
      hit = true;
    }
  }
  return hit;
}

void Emit(SourceFile& f, size_t line, const std::string& rule,
          std::string message, std::vector<Finding>* out) {
  if (Suppressed(f, line, rule)) return;
  out->push_back(Finding{f.rel, line, rule, std::move(message)});
}

std::string CommentTextOnLine(const SourceFile& f, size_t line) {
  std::string text;
  for (const Comment& c : f.lex.comments) {
    if (c.line == line) text += c.text;
  }
  return text;
}

}  // namespace ndp::analyze
