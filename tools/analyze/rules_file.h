// The eleven per-file rules ported from the seed ndp_lint scanner onto the
// lexed IR: each regex now runs over sanitized code lines (comments blanked,
// literal contents emptied), so a banned identifier inside a comment or a
// string can no longer fire, and the stats-path grammar check reads the
// actual string tokens instead of re-parsing quotes. Rule ids, messages,
// waiver behavior, and finding positions are unchanged from the seed.
#pragma once

#include <vector>

#include "source.h"

namespace ndp::analyze {

void RunFileRules(SourceFile& f, std::vector<Finding>* out);

}  // namespace ndp::analyze
