// The whole-program passes — what single-file regex fundamentally cannot do.
//
//   stats-unregistered  every dotted stats path read by string must resolve
//                       against the registered universe (exact segments,
//                       "prefix"+i dynamic scopes, histogram subleaves)
//   stats-dead          a registered leaf never named by any non-registration
//                       string literal anywhere in the corpus is dead weight
//   guarded-by          fields annotated "// ndp: guarded-by(m)" may only be
//                       touched while m is lexically held (lock_guard/
//                       unique_lock/scoped_lock scopes, .unlock()/.lock(),
//                       "// ndp: requires(m)" function annotations)
//   layer-dag           #include edges must respect util → sim →
//                       dram/accel/fault → jafar → cpu/db → core, with an
//                       explicit allowlist for sanctioned back-edges
//   knob-coherence      every env knob read in code appears exactly once in
//                       the README knob table and vice versa; NDP_* call
//                       sites may not disagree on defaults
//   bounded-queue       growable std:: containers on the serving ingress
//                       path (src/core/ingress*) must carry a
//                       "// ndp: bounded-by(<knob>)" annotation naming an
//                       env knob some code actually reads, or a reasoned
//                       waiver for setup-time state
//
// Meta rules (unwaivable, run last):
//   waiver-reason       a waiver must say why the line is exempt
//   stale-waiver        a waiver that suppressed nothing is itself a finding
#pragma once

#include <vector>

#include "index.h"
#include "source.h"

namespace ndp::analyze {

void RunPasses(std::vector<SourceFile>& files, const Index& idx,
               std::vector<Finding>* out);

/// waiver-reason + stale-waiver; call after every rule and pass has run.
void RunMetaPasses(std::vector<SourceFile>& files, std::vector<Finding>* out);

}  // namespace ndp::analyze
