#include "lexer.h"

#include <cctype>

namespace ndp::analyze {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Two-character punctuators worth fusing for the pattern matchers.
bool IsTwoCharPunct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '+': return b == '+' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
  }
}

/// True when the identifier is a string-literal encoding prefix; sets
/// `is_raw` when the prefix requests a raw string.
bool IsStringPrefix(const std::string& id, bool* is_raw) {
  *is_raw = !id.empty() && id.back() == 'R';
  const std::string base = *is_raw ? id.substr(0, id.size() - 1) : id;
  if (*is_raw && base.empty()) return true;  // plain R"..."
  return base == "L" || base == "u" || base == "U" || base == "u8";
}

}  // namespace

LexResult Lex(const std::vector<std::string>& lines) {
  LexResult out;
  out.code.resize(lines.size());

  enum class State { kNormal, kBlockComment, kRawString };
  State state = State::kNormal;
  std::string raw_delim;     // the )delim" that terminates the raw string
  std::string raw_text;      // accumulated raw-string contents
  size_t raw_line = 0;       // line the raw string opened on

  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    std::string& code = out.code[li];
    size_t i = 0;
    const size_t n = line.size();

    if (state == State::kBlockComment) {
      size_t close = line.find("*/");
      if (close == std::string::npos) {
        out.comments.push_back({li + 1, line});
        continue;
      }
      out.comments.push_back({li + 1, line.substr(0, close)});
      i = close + 2;
    } else if (state == State::kRawString) {
      size_t close = line.find(raw_delim);
      if (close == std::string::npos) {
        raw_text += line;
        raw_text += '\n';
        continue;
      }
      raw_text += line.substr(0, close);
      out.tokens.push_back({TokKind::kString, raw_text, raw_line});
      code += "\"\"";
      i = close + raw_delim.size();
      state = State::kNormal;
    }

    std::string pending_ident;  // flushed lazily so string prefixes can claim it
    size_t pending_line = li + 1;
    auto flush_ident = [&] {
      if (!pending_ident.empty()) {
        out.tokens.push_back({TokKind::kIdent, pending_ident, pending_line});
        code += pending_ident;
        pending_ident.clear();
      }
    };

    while (i < n) {
      char c = line[i];
      if (IsIdentStart(c) && pending_ident.empty()) {
        size_t j = i;
        while (j < n && IsIdentChar(line[j])) ++j;
        pending_ident = line.substr(i, j - i);
        pending_line = li + 1;
        i = j;
        continue;
      }
      if (c == '"') {
        bool is_raw = false;
        if (!pending_ident.empty() && IsStringPrefix(pending_ident, &is_raw)) {
          pending_ident.clear();  // the prefix is part of the literal
        } else {
          flush_ident();
          is_raw = false;
        }
        if (is_raw) {
          // R"delim( ... )delim"
          size_t paren = line.find('(', i + 1);
          if (paren == std::string::npos) { ++i; continue; }  // ill-formed
          raw_delim = ")" + line.substr(i + 1, paren - i - 1) + "\"";
          size_t close = line.find(raw_delim, paren + 1);
          if (close == std::string::npos) {
            raw_text = line.substr(paren + 1);
            raw_text += '\n';
            raw_line = li + 1;
            state = State::kRawString;
            i = n;
            break;
          }
          out.tokens.push_back(
              {TokKind::kString, line.substr(paren + 1, close - paren - 1),
               li + 1});
          code += "\"\"";
          i = close + raw_delim.size();
          continue;
        }
        // Ordinary string literal (single line).
        std::string text;
        size_t j = i + 1;
        while (j < n && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < n) {
            text += line[j];
            text += line[j + 1];
            j += 2;
          } else {
            text += line[j];
            ++j;
          }
        }
        out.tokens.push_back({TokKind::kString, text, li + 1});
        code += "\"\"";
        i = (j < n) ? j + 1 : n;
        continue;
      }
      if (c == '\'') {
        // Either a char literal or a digit separator; a separator only
        // follows a number/identifier character and precedes an alnum.
        bool separator = i > 0 && IsIdentChar(line[i - 1]) && i + 1 < n &&
                         std::isalnum(static_cast<unsigned char>(line[i + 1]));
        if (separator && !pending_ident.empty()) {
          // inside an identifier? not legal C++; treat as separator anyway
          pending_ident += '\'';
          ++i;
          continue;
        }
        if (separator) {
          code += '\'';
          ++i;
          continue;
        }
        flush_ident();
        std::string text;
        size_t j = i + 1;
        while (j < n && line[j] != '\'') {
          if (line[j] == '\\' && j + 1 < n) {
            text += line[j];
            text += line[j + 1];
            j += 2;
          } else {
            text += line[j];
            ++j;
          }
        }
        out.tokens.push_back({TokKind::kChar, text, li + 1});
        code += "''";
        i = (j < n) ? j + 1 : n;
        continue;
      }
      flush_ident();
      if (c == '/' && i + 1 < n && line[i + 1] == '/') {
        out.comments.push_back({li + 1, line.substr(i + 2)});
        i = n;
        break;
      }
      if (c == '/' && i + 1 < n && line[i + 1] == '*') {
        size_t close = line.find("*/", i + 2);
        if (close == std::string::npos) {
          out.comments.push_back({li + 1, line.substr(i + 2)});
          state = State::kBlockComment;
          i = n;
          break;
        }
        out.comments.push_back({li + 1, line.substr(i + 2, close - i - 2)});
        code += ' ';
        i = close + 2;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        std::string text;
        while (j < n && (IsIdentChar(line[j]) || line[j] == '.' ||
                         (line[j] == '\'' && j + 1 < n &&
                          std::isalnum(static_cast<unsigned char>(line[j + 1]))))) {
          if (line[j] != '\'') text += line[j];
          ++j;
        }
        out.tokens.push_back({TokKind::kNumber, text, li + 1});
        code += line.substr(i, j - i);
        i = j;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        code += c;
        ++i;
        continue;
      }
      // Punctuator.
      if (i + 1 < n && IsTwoCharPunct(c, line[i + 1])) {
        out.tokens.push_back({TokKind::kPunct, line.substr(i, 2), li + 1});
        code += line.substr(i, 2);
        i += 2;
        continue;
      }
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), li + 1});
      code += c;
      ++i;
    }
    flush_ident();
  }
  return out;
}

}  // namespace ndp::analyze
