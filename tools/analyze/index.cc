#include "index.h"

#include <fstream>
#include <regex>
#include <sstream>

namespace ndp::analyze {

namespace {

bool IsPunct(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsPlus(const Tok& t) { return IsPunct(t, "+"); }

template <typename Fn>
void ForEachPiece(const PathFrag& frag, Fn fn) {
  for (const auto& [piece, complete] : Pieces(frag)) fn(piece, complete);
}

/// Collects the string-literal fragments of one call argument: tokens from
/// `pos` (just past '(' or a top-level ',') up to the next top-level ',' or
/// the closing ')'. Returns the index of that delimiter. Marks consumed
/// string-token indices in `consumed`.
size_t CollectArgFrags(const std::vector<Tok>& toks, size_t pos,
                       std::vector<PathFrag>* frags,
                       std::vector<bool>* consumed) {
  int depth = 0;
  for (size_t i = pos; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        if (depth == 0) return i;
        --depth;
      }
      if (t.text == "," && depth == 0) return i;
    }
    if (t.kind == TokKind::kString && depth == 0) {
      PathFrag frag;
      frag.text = t.text;
      frag.open_left = i > 0 && IsPlus(toks[i - 1]);
      frag.open_right = i + 1 < toks.size() && IsPlus(toks[i + 1]);
      frags->push_back(std::move(frag));
      if (consumed) (*consumed)[i] = true;
    }
  }
  return toks.size();
}

/// Skips past the closing delimiter of the argument that starts at `pos`,
/// then past any further arguments to the call's ')'. Returns the index just
/// after ')' (or toks.size()).
size_t SkipCall(const std::vector<Tok>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// True if the file carries a stats-scope annotation on `line` or the line
/// above; appends its '|'-separated alternatives to `segments`.
bool StatsScopeAnnotation(const SourceFile& f, size_t line,
                          std::set<std::string>* segments) {
  bool found = false;
  for (const Annotation& a : f.annotations) {
    if (a.kind != "stats-scope" || (a.line != line && a.line + 1 != line)) {
      continue;
    }
    found = true;
    size_t start = 0;
    while (start <= a.arg.size()) {
      size_t bar = a.arg.find('|', start);
      if (bar == std::string::npos) bar = a.arg.size();
      std::string seg = a.arg.substr(start, bar - start);
      if (!seg.empty()) segments->insert(seg);
      start = bar + 1;
    }
  }
  return found;
}

void ScanStats(std::vector<SourceFile>& files, Index* idx) {
  for (size_t fi = 0; fi < files.size(); ++fi) {
    SourceFile& f = files[fi];
    // The registry header *defines* StatsScope/Sub/Counter; its forwarding
    // declarations are not call sites of the facility.
    if (f.rel == "src/util/stats_registry.h") continue;
    const auto& toks = f.lex.tokens;
    std::vector<bool> consumed(toks.size(), false);

    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& id = toks[i].text;
      const bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                                    IsPunct(toks[i - 1], "->"));

      const bool scope_call =
          (member && id == "Sub") || id == "StatsScope";
      const bool leaf_call =
          (member && (id == "Counter" || id == "Gauge" || id == "Histogram")) ||
          id == "RegisterCounter" || id == "RegisterGauge" ||
          id == "RegisterHistogram" || id == "OwnedCounter";
      const bool read_call =
          member && (id == "ReadValue" || id == "Value" || id == "Count" ||
                     id == "Contains" || id == "Has");
      if (!scope_call && !leaf_call && !read_call) continue;

      // Find the opening paren: directly next, or (StatsScope declarations)
      // one variable name later.
      size_t open = i + 1;
      if (open < toks.size() && id == "StatsScope" &&
          toks[open].kind == TokKind::kIdent) {
        ++open;
      }
      if (open >= toks.size() || !IsPunct(toks[open], "(")) continue;

      if (scope_call) {
        // Every literal in the call names scope segments (StatsScope's first
        // argument is the registry pointer and contributes none).
        std::vector<PathFrag> frags;
        size_t end = open + 1;
        while (end < toks.size()) {
          end = CollectArgFrags(toks, end, &frags, &consumed);
          if (end >= toks.size() || IsPunct(toks[end], ")")) break;
          ++end;  // past the ','
        }
        if (frags.empty()) {
          if (!StatsScopeAnnotation(f, toks[i].line, &idx->scope_segments)) {
            idx->dyn_scopes.push_back(DynScopeSite{fi, toks[i].line});
          }
        }
        for (const PathFrag& frag : frags) {
          ForEachPiece(frag, [&](const std::string& piece, bool complete) {
            if (complete) {
              idx->scope_segments.insert(piece);
            } else if (frag.open_right) {
              idx->scope_prefixes.insert(piece);
            }
          });
        }
        continue;
      }

      if (leaf_call) {
        std::vector<PathFrag> frags;
        CollectArgFrags(toks, open + 1, &frags, &consumed);
        if (frags.empty()) continue;  // dynamic leaf: nothing to index
        // Interior pieces are scopes; the final piece of the final fragment
        // (when closed) is the leaf.
        for (size_t k = 0; k < frags.size(); ++k) {
          const bool last_frag = k + 1 == frags.size();
          std::vector<std::pair<std::string, bool>> pieces;
          ForEachPiece(frags[k], [&](const std::string& p, bool complete) {
            pieces.emplace_back(p, complete);
          });
          for (size_t j = 0; j < pieces.size(); ++j) {
            const bool is_leaf_pos =
                last_frag && j + 1 == pieces.size() && !frags[k].open_right;
            if (!pieces[j].second) {
              if (frags[k].open_right) idx->scope_prefixes.insert(pieces[j].first);
              continue;
            }
            if (is_leaf_pos) {
              idx->leaves.insert(pieces[j].first);
              if (id == "Histogram" || id == "RegisterHistogram") {
                idx->hist_leaves.insert(pieces[j].first);
              }
              idx->regs.push_back(RegSite{fi, toks[i].line, pieces[j].first});
            } else {
              idx->scope_segments.insert(pieces[j].first);
            }
          }
        }
        continue;
      }

      // read_call
      ReadSite site;
      site.file = fi;
      site.line = toks[i].line;
      site.fn = id;
      size_t end = CollectArgFrags(toks, open + 1, &site.frags, nullptr);
      site.probing =
          id == "ReadValue" && end < toks.size() && IsPunct(toks[end], ",");
      if (!site.frags.empty()) idx->reads.push_back(std::move(site));
      i = SkipCall(toks, open) - 1;
    }

    // Every string literal that is not a registration argument mentions the
    // dot-segments it contains.
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kString || consumed[i]) continue;
      PathFrag frag{toks[i].text, false, false};
      ForEachPiece(frag, [&](const std::string& piece, bool /*complete*/) {
        idx->mentions.insert(piece);
      });
    }
  }
}

void ScanKnobs(std::vector<SourceFile>& files, Index* idx) {
  static const std::regex kKnobName(R"(^[A-Z][A-Z0-9]*(_[A-Z0-9]+)+$)");
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi].lex.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& id = toks[i].text;
      const bool reader = id == "getenv" || id == "EnvU64" ||
                          id == "EnvDouble" || id == "OverlayEnvU64" ||
                          id == "OverlayEnvDouble" || id == "OverlayEnvRate";
      if (!reader && id != "setenv") continue;
      if (!IsPunct(toks[i + 1], "(")) continue;
      if (toks[i + 2].kind != TokKind::kString) continue;
      // A definition like `uint64_t EnvU64(const char* name, ...)` has an
      // identifier, not a literal, after '(' — already excluded above.
      const std::string& name = toks[i + 2].text;
      if (!std::regex_match(name, kKnobName)) continue;
      KnobSite site;
      site.file = fi;
      site.line = toks[i + 2].line;
      site.fn = id;
      site.name = name;
      site.is_read = reader;
      // Serialize the second argument (the fallback) when present.
      if (i + 3 < toks.size() && IsPunct(toks[i + 3], ",") &&
          (id == "EnvU64" || id == "EnvDouble")) {
        int depth = 0;
        for (size_t j = i + 4; j < toks.size(); ++j) {
          const Tok& t = toks[j];
          if (t.kind == TokKind::kPunct) {
            if (t.text == "(") ++depth;
            if (t.text == ")" && depth-- == 0) break;
            if (t.text == "," && depth == 0) break;
          }
          if (!site.def.empty()) site.def += ' ';
          site.def += t.kind == TokKind::kString ? "\"" + t.text + "\"" : t.text;
        }
      }
      idx->knobs.push_back(std::move(site));
    }
  }
}

void ScanIncludes(std::vector<SourceFile>& files, Index* idx) {
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (size_t fi = 0; fi < files.size(); ++fi) {
    if (files[fi].top != "src") continue;
    for (size_t li = 0; li < files[fi].raw.size(); ++li) {
      std::smatch m;
      if (std::regex_search(files[fi].raw[li], m, kInclude)) {
        idx->includes.push_back(IncludeEdge{fi, li + 1, m[1].str()});
      }
    }
  }
}

std::string Trim(const std::string& s) {
  const size_t a = s.find_first_not_of(" \t`");
  if (a == std::string::npos) return "";
  const size_t b = s.find_last_not_of(" \t`");
  return s.substr(a, b - a + 1);
}

void ParseReadme(const std::filesystem::path& path, Index* idx) {
  std::ifstream in(path);
  if (!in) return;
  idx->have_readme = true;
  idx->readme_rel = "README.md";
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  bool in_table = false;
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& l = lines[li];
    if (!in_table) {
      if (l.find("| Knob") != std::string::npos &&
          l.find("Default") != std::string::npos) {
        in_table = true;
      }
      continue;
    }
    if (l.empty() || l[0] != '|') {
      in_table = false;
      continue;
    }
    // Split the row into cells.
    std::vector<std::string> cells;
    size_t start = 1;
    while (start < l.size()) {
      size_t bar = l.find('|', start);
      if (bar == std::string::npos) break;
      cells.push_back(l.substr(start, bar - start));
      start = bar + 1;
    }
    if (cells.size() < 3) continue;
    const std::string kind = Trim(cells[1]);
    if (kind != "env" && kind != "CMake") continue;  // separator / prose rows
    const std::string def = Trim(cells[2]);
    // The knob cell may list several related knobs, comma-separated.
    std::string cell = cells[0];
    size_t pos = 0;
    while (pos <= cell.size()) {
      size_t comma = cell.find(',', pos);
      if (comma == std::string::npos) comma = cell.size();
      const std::string name = Trim(cell.substr(pos, comma - pos));
      if (!name.empty()) {
        idx->readme.push_back(ReadmeKnob{name, kind, def, li + 1});
      }
      pos = comma + 1;
    }
  }
}

void ParseCmake(const std::filesystem::path& path, Index* idx) {
  std::ifstream in(path);
  if (!in) return;
  idx->have_cmake = true;
  static const std::regex kOption(
      R"(^\s*option\s*\(\s*([A-Za-z_][A-Za-z0-9_]*))");
  static const std::regex kCacheSet(
      R"(^\s*set\s*\(\s*([A-Z][A-Z0-9_]*)\s)");
  std::string line;
  size_t li = 0;
  std::set<std::string> seen;
  bool pending_cache = false;
  std::string pending_name;
  size_t pending_line = 0;
  while (std::getline(in, line)) {
    ++li;
    if (pending_cache) {
      // A cache set() may put CACHE on a continuation line.
      if (line.find("CACHE") != std::string::npos &&
          seen.insert(pending_name).second) {
        idx->cmake_opts.emplace_back(pending_name, pending_line);
      }
      pending_cache = false;
    }
    std::smatch m;
    if (std::regex_search(line, m, kOption)) {
      if (seen.insert(m[1].str()).second) {
        idx->cmake_opts.emplace_back(m[1].str(), li);
      }
      continue;
    }
    if (std::regex_search(line, m, kCacheSet)) {
      if (line.find("CACHE") != std::string::npos) {
        if (seen.insert(m[1].str()).second) {
          idx->cmake_opts.emplace_back(m[1].str(), li);
        }
      } else {
        pending_cache = true;
        pending_name = m[1].str();
        pending_line = li;
      }
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, bool>> Pieces(const PathFrag& frag) {
  std::vector<std::string> raw;
  size_t start = 0;
  while (start <= frag.text.size()) {
    size_t dot = frag.text.find('.', start);
    if (dot == std::string::npos) dot = frag.text.size();
    raw.push_back(frag.text.substr(start, dot - start));
    start = dot + 1;
  }
  std::vector<std::pair<std::string, bool>> out;
  for (size_t j = 0; j < raw.size(); ++j) {
    if (raw[j].empty()) continue;
    const bool complete = !(j == 0 && frag.open_left) &&
                          !(j + 1 == raw.size() && frag.open_right);
    out.emplace_back(raw[j], complete);
  }
  return out;
}

Index BuildIndex(std::vector<SourceFile>& files,
                 const std::filesystem::path& root) {
  Index idx;
  ScanStats(files, &idx);
  ScanKnobs(files, &idx);
  ScanIncludes(files, &idx);
  ParseReadme(root / "README.md", &idx);
  ParseCmake(root / "CMakeLists.txt", &idx);
  std::ifstream check(root / "tools" / "check.sh");
  if (check) {
    std::stringstream ss;
    ss << check.rdbuf();
    idx.check_sh = ss.str();
  }
  return idx;
}

}  // namespace ndp::analyze
