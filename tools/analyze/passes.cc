#include "passes.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>

namespace ndp::analyze {

namespace {

bool IsPunct(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// -- stats coherence ----------------------------------------------------------

const std::set<std::string> kHistSubleaves = {"count", "sum",  "mean",
                                              "p50",   "p90", "p99"};

bool PrefixMatch(const std::set<std::string>& prefixes,
                 const std::string& seg) {
  for (const std::string& p : prefixes) {
    if (seg.size() > p.size() && seg.rfind(p, 0) == 0 &&
        std::all_of(seg.begin() + static_cast<long>(p.size()), seg.end(),
                    [](char c) { return std::isdigit(static_cast<unsigned char>(c)); })) {
      return true;
    }
  }
  return false;
}

bool ValidSegment(const Index& idx, const std::string& seg) {
  return idx.scope_segments.count(seg) > 0 ||
         PrefixMatch(idx.scope_prefixes, seg);
}

bool ValidLeaf(const Index& idx, const std::string& leaf) {
  return idx.leaves.count(leaf) > 0;
}

/// Lenient validity for a piece cut mid-segment by '+': it only has to be
/// compatible with something registered.
bool PartialOk(const Index& idx, const std::string& piece) {
  if (ValidSegment(idx, piece) || ValidLeaf(idx, piece) ||
      idx.scope_prefixes.count(piece) > 0 || kHistSubleaves.count(piece) > 0) {
    return true;
  }
  for (const std::string& s : idx.scope_segments) {
    if (s.rfind(piece, 0) == 0) return true;
  }
  for (const std::string& s : idx.leaves) {
    if (s.rfind(piece, 0) == 0) return true;
  }
  for (const std::string& p : idx.scope_prefixes) {
    if (piece.rfind(p, 0) == 0) return true;
  }
  return false;
}

/// Validates a fully-literal dotted path.
bool ValidCompletePath(const Index& idx, const std::string& path) {
  PathFrag frag{path, false, false};
  std::vector<std::string> segs;
  for (const auto& [piece, complete] : Pieces(frag)) segs.push_back(piece);
  if (segs.empty()) return false;
  size_t leaf_at = segs.size() - 1;
  if (segs.size() >= 2 && kHistSubleaves.count(segs.back()) > 0 &&
      idx.hist_leaves.count(segs[segs.size() - 2]) > 0) {
    leaf_at = segs.size() - 2;
  }
  if (!ValidLeaf(idx, segs[leaf_at])) return false;
  for (size_t i = 0; i < leaf_at; ++i) {
    if (!ValidSegment(idx, segs[i])) return false;
  }
  return true;
}

std::string DisplayPath(const ReadSite& site) {
  std::string s;
  for (const PathFrag& frag : site.frags) {
    if (frag.open_left && (s.empty() || s.back() != '*')) s += '*';
    s += frag.text;
    if (frag.open_right) s += '*';
  }
  return s;
}

void PassStatsCoherence(std::vector<SourceFile>& files, const Index& idx,
                        std::vector<Finding>* out) {
  for (const ReadSite& site : idx.reads) {
    if (site.probing) continue;  // ReadValue with a fallback tolerates absence
    SourceFile& f = files[site.file];
    bool ok = true;
    if (site.frags.size() == 1 && !site.frags[0].open_left &&
        !site.frags[0].open_right) {
      const std::string& path = site.frags[0].text;
      // Value/Count on a dotless name is too generic to attribute to the
      // stats registry unless the name is a registered leaf.
      if (path.find('.') == std::string::npos &&
          (site.fn == "Value" || site.fn == "Count") &&
          !ValidLeaf(idx, path)) {
        continue;
      }
      ok = ValidCompletePath(idx, path);
    } else {
      for (const PathFrag& frag : site.frags) {
        for (const auto& [piece, complete] : Pieces(frag)) {
          const bool good =
              complete ? (ValidSegment(idx, piece) || ValidLeaf(idx, piece) ||
                          kHistSubleaves.count(piece) > 0)
                       : PartialOk(idx, piece);
          if (!good) ok = false;
        }
      }
    }
    if (!ok) {
      Emit(f, site.line, "stats-unregistered",
           "stats path \"" + DisplayPath(site) + "\" read via ." + site.fn +
               "() but no registration produces it; register the counter or "
               "fix the path (the read would silently yield the default)",
           out);
    }
  }
  for (const DynScopeSite& site : idx.dyn_scopes) {
    Emit(files[site.file], site.line, "stats-unregistered",
         "dynamic stats scope with no literal segment; annotate the possible "
         "names with // ndp: stats-scope(a|b|...) so reads against them can "
         "be checked",
         out);
  }
  // Dead leaves: registered, never named by any other literal in the corpus.
  std::set<std::pair<size_t, size_t>> seen;  // dedupe multi-literal lines
  for (const RegSite& reg : idx.regs) {
    if (idx.mentions.count(reg.leaf) > 0) continue;
    if (!seen.insert({reg.file, reg.line}).second) continue;
    Emit(files[reg.file], reg.line, "stats-dead",
         "counter \"" + reg.leaf +
             "\" is registered but no estimator, bench, or test ever reads "
             "or asserts it by name; wire it up (tests/util/"
             "stats_coverage_test.cc pins the documented surface) or drop it",
         out);
  }
}

// -- guarded-by ---------------------------------------------------------------

struct GuardedField {
  std::string name;
  std::string mutex;
  size_t file = 0;
  size_t decl_line = 0;  ///< the annotated declaration (exempt from checks)
};

/// The trailing identifier of a mutex expression: "p->mu_" → "mu_".
std::string TailName(const std::string& expr) {
  size_t cut = expr.find_last_of(".>:");
  return cut == std::string::npos ? expr : expr.substr(cut + 1);
}

/// Extracts the field name declared on the annotation's line (or the line
/// below, for an annotation written above the declaration).
bool FieldOnLine(const SourceFile& f, size_t line, std::string* name) {
  static const std::regex kDecl(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(?:=[^;]*|\{[^;]*\})?\s*;)");
  if (line == 0 || line > f.lex.code.size()) return false;
  std::smatch m;
  if (!std::regex_search(f.lex.code[line - 1], m, kDecl)) return false;
  *name = m[1].str();
  return true;
}

void CheckGuardedUses(std::vector<SourceFile>& files, size_t target,
                      const std::vector<GuardedField>& fields,
                      std::vector<Finding>* out) {
  SourceFile& f = files[target];
  const auto& toks = f.lex.tokens;

  std::vector<const Annotation*> reqs;
  for (const Annotation& a : f.annotations) {
    if (a.kind == "requires") reqs.push_back(&a);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const Annotation* a, const Annotation* b) {
              return a->line < b->line;
            });
  size_t next_req = 0;

  struct Lock {
    std::string mutex;
    std::string var;
    int depth;
  };
  int depth = 0;
  std::vector<Lock> active;
  std::map<std::string, std::string> lock_vars;  // var → mutex tail
  std::set<std::pair<size_t, std::string>> emitted;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
        while (next_req < reqs.size() && reqs[next_req]->line <= t.line) {
          active.push_back({TailName(reqs[next_req]->arg), "", depth});
          ++next_req;
        }
      } else if (t.text == "}") {
        --depth;
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const Lock& l) {
                                      return l.depth > depth;
                                    }),
                     active.end());
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock") {
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        int td = 1;
        ++j;
        while (j < toks.size() && td > 0) {
          if (IsPunct(toks[j], "<")) ++td;
          else if (IsPunct(toks[j], ">")) --td;
          else if (IsPunct(toks[j], ">>")) td -= 2;
          ++j;
        }
      }
      std::string var;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        var = toks[j].text;
        ++j;
      }
      if (j < toks.size() && (IsPunct(toks[j], "(") || IsPunct(toks[j], "{"))) {
        int d = 1;
        std::string tail;
        for (++j; j < toks.size() && d > 0; ++j) {
          const Tok& a = toks[j];
          if (a.kind == TokKind::kPunct) {
            if (a.text == "(" || a.text == "{") ++d;
            else if (a.text == ")" || a.text == "}") {
              if (--d == 0) break;
            } else if (a.text == "," && d == 1) {
              if (!tail.empty()) active.push_back({tail, var, depth});
              if (!var.empty() && !tail.empty()) lock_vars[var] = tail;
              tail.clear();
            }
          } else if (a.kind == TokKind::kIdent) {
            tail = a.text;
          }
        }
        if (!tail.empty()) {
          active.push_back({tail, var, depth});
          if (!var.empty()) lock_vars[var] = tail;
        }
        i = j;
      }
      continue;
    }

    if ((t.text == "unlock" || t.text == "lock") && i >= 2 &&
        IsPunct(toks[i - 1], ".") && toks[i - 2].kind == TokKind::kIdent &&
        lock_vars.count(toks[i - 2].text) > 0 && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      const std::string& var = toks[i - 2].text;
      if (t.text == "unlock") {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const Lock& l) { return l.var == var; }),
                     active.end());
      } else {
        active.push_back({lock_vars[var], var, depth});
      }
      continue;
    }

    for (const GuardedField& gf : fields) {
      if (t.text != gf.name) continue;
      if (target == gf.file && t.line == gf.decl_line) continue;
      const bool held = std::any_of(
          active.begin(), active.end(),
          [&](const Lock& l) { return l.mutex == gf.mutex; });
      if (held) continue;
      if (!emitted.insert({t.line, gf.name}).second) continue;
      Emit(f, t.line, "guarded-by",
           "field '" + gf.name + "' is guarded by '" + gf.mutex +
               "' (annotation in " + files[gf.file].rel +
               ") but accessed without it held; take the lock, annotate the "
               "function with // ndp: requires(" + gf.mutex +
               "), or waive with the synchronization argument",
           out);
    }
  }
}

void PassGuardedBy(std::vector<SourceFile>& files, std::vector<Finding>* out) {
  // Collect annotated fields per file, then check each declaring file and
  // its .h/.cc sibling (the lexical scope where a member can be touched).
  std::map<std::string, size_t> by_rel;
  for (size_t i = 0; i < files.size(); ++i) by_rel[files[i].rel] = i;

  std::map<size_t, std::vector<GuardedField>> per_file;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const Annotation& a : files[fi].annotations) {
      if (a.kind != "guarded-by") continue;
      GuardedField gf;
      gf.mutex = TailName(a.arg);
      gf.file = fi;
      if (FieldOnLine(files[fi], a.line, &gf.name)) {
        gf.decl_line = a.line;
      } else if (FieldOnLine(files[fi], a.line + 1, &gf.name)) {
        gf.decl_line = a.line + 1;
      } else {
        Emit(files[fi], a.line, "guarded-by",
             "guarded-by annotation does not sit on (or above) a parseable "
             "field declaration",
             out);
        continue;
      }
      per_file[fi].push_back(std::move(gf));
    }
  }

  for (auto& [fi, fields] : per_file) {
    std::set<size_t> targets = {fi};
    const std::string& rel = files[fi].rel;
    std::string sibling;
    if (rel.size() > 2 && rel.rfind(".h") == rel.size() - 2) {
      sibling = rel.substr(0, rel.size() - 2) + ".cc";
    } else if (rel.size() > 3 && rel.rfind(".cc") == rel.size() - 3) {
      sibling = rel.substr(0, rel.size() - 3) + ".h";
    }
    auto it = by_rel.find(sibling);
    if (it != by_rel.end()) targets.insert(it->second);
    for (size_t target : targets) {
      CheckGuardedUses(files, target, fields, out);
    }
  }
}

// -- layer DAG ----------------------------------------------------------------

const std::map<std::string, int> kLayerRank = {
    {"util", 0}, {"sim", 1},  {"dram", 2}, {"accel", 2}, {"fault", 2},
    {"jafar", 3}, {"cpu", 4}, {"db", 4},   {"core", 5},
};

/// Sanctioned back-edges: (including file, included path). db/trace.h
/// replays operator traces through the cpu kernels to price a pushdown
/// decision — reviewed and deliberate (DESIGN.md §7).
const std::set<std::pair<std::string, std::string>> kSanctionedEdges = {
    {"src/db/trace.h", "cpu/kernels.h"},
};

void PassLayerDag(std::vector<SourceFile>& files, const Index& idx,
                  std::vector<Finding>* out) {
  std::map<std::string, std::set<std::string>> graph;
  std::map<std::pair<std::string, std::string>, const IncludeEdge*> first_edge;

  for (const IncludeEdge& e : idx.includes) {
    SourceFile& f = files[e.file];
    if (f.layer.empty()) continue;
    const std::string target_layer = e.target.substr(0, e.target.find('/'));
    auto to = kLayerRank.find(target_layer);
    if (to == kLayerRank.end()) continue;  // not a layer-relative include
    auto from = kLayerRank.find(f.layer);
    if (from == kLayerRank.end()) continue;
    if (target_layer != f.layer) {
      graph[f.layer].insert(target_layer);
      first_edge.emplace(std::make_pair(f.layer, target_layer), &e);
    }
    if (kSanctionedEdges.count({f.rel, e.target}) > 0) continue;
    const bool bad = to->second > from->second ||
                     (to->second == from->second && target_layer != f.layer);
    if (bad) {
      Emit(f, e.line, "layer-dag",
           "include of " + e.target + " breaks the layer DAG: " + f.layer +
               " (rank " + std::to_string(from->second) + ") may only include "
               "layers of strictly lower rank (util < sim < dram/accel/fault "
               "< jafar < cpu/db < core); invert the dependency or add a "
               "sanctioned back-edge",
           out);
    }
  }

  // Cycle detection over the layer graph (sanctioned edges included: an
  // allowlisted edge must still not close a cycle).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::function<bool(const std::string&, std::vector<std::string>*)> dfs =
      [&](const std::string& n, std::vector<std::string>* cycle) {
        color[n] = 1;
        for (const std::string& m : graph[n]) {
          if (color[m] == 1) {
            cycle->push_back(m);
            cycle->push_back(n);
            return true;
          }
          if (color[m] == 0 && dfs(m, cycle)) {
            if (cycle->front() != cycle->back()) cycle->push_back(n);
            return true;
          }
        }
        color[n] = 2;
        return false;
      };
  for (const auto& [n, _] : graph) {
    if (color[n] != 0) continue;
    std::vector<std::string> cycle;
    if (dfs(n, &cycle)) {
      std::string desc;
      for (auto it = cycle.rbegin(); it != cycle.rend(); ++it) {
        desc += *it + " -> ";
      }
      desc += cycle.back();
      const auto* e = first_edge[{cycle[1], cycle[0]}];
      const size_t file = e ? e->file : 0;
      const size_t line = e ? e->line : 1;
      out->push_back(Finding{files[file].rel, line, "layer-dag",
                             "include cycle between layers: " + desc});
      break;
    }
  }
}

// -- knob coherence -----------------------------------------------------------

bool WordInText(const std::string& text, const std::string& word) {
  size_t pos = 0;
  auto word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !word_char(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !word_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool NumericEq(const std::string& a, const std::string& b) {
  char* end = nullptr;
  const double da = std::strtod(a.c_str(), &end);
  if (end != a.c_str() + a.size() || a.empty()) return true;  // not comparable
  const double db = std::strtod(b.c_str(), &end);
  if (end != b.c_str() + b.size() || b.empty()) return true;
  return da == db;
}

void PassKnobCoherence(std::vector<SourceFile>& files, const Index& idx,
                       std::vector<Finding>* out) {
  std::map<std::string, std::vector<const KnobSite*>> read_sites;
  for (const KnobSite& k : idx.knobs) {
    if (k.is_read) read_sites[k.name].push_back(&k);
  }
  std::map<std::string, std::vector<const ReadmeKnob*>> readme_env;
  std::map<std::string, const ReadmeKnob*> readme_cmake;
  for (const ReadmeKnob& r : idx.readme) {
    if (r.kind == "env") {
      readme_env[r.name].push_back(&r);
    } else {
      readme_cmake.emplace(r.name, &r);
    }
  }

  // code → README: every knob read in code appears exactly once.
  for (const auto& [name, sites] : read_sites) {
    if (!idx.have_readme) break;
    auto it = readme_env.find(name);
    if (it == readme_env.end()) {
      const KnobSite* s = sites.front();
      Emit(files[s->file], s->line, "knob-coherence",
           "env knob " + name +
               " is read here but has no row in the README knob table "
               "(README.md \"Configuration knobs\")",
           out);
    } else if (it->second.size() > 1) {
      out->push_back(Finding{
          idx.readme_rel, it->second[1]->line, "knob-coherence",
          "env knob " + name + " is listed " +
              std::to_string(it->second.size()) +
              " times in the README knob table; keep exactly one row"});
    }
  }

  // README → code.
  for (const auto& [name, rows] : readme_env) {
    if (read_sites.count(name) > 0) continue;
    if (WordInText(idx.check_sh, name)) continue;  // shell-only knob
    out->push_back(Finding{
        idx.readme_rel, rows.front()->line, "knob-coherence",
        "README lists env knob " + name +
            " but no code reads it (getenv/Env*/OverlayEnv*) and "
            "tools/check.sh does not reference it; delete the stale row"});
  }
  std::set<std::string> cmake_names;
  for (const auto& [name, line] : idx.cmake_opts) cmake_names.insert(name);
  for (const auto& [name, row] : readme_cmake) {
    if (cmake_names.count(name) > 0) continue;
    out->push_back(Finding{
        idx.readme_rel, row->line, "knob-coherence",
        "README lists CMake option " + name +
            " but the top-level CMakeLists.txt defines no such option"});
  }
  if (idx.have_readme && idx.have_cmake) {
    for (const auto& [name, line] : idx.cmake_opts) {
      if (name.rfind("NDP_", 0) != 0 && name.rfind("JAFAR_", 0) != 0) continue;
      if (readme_cmake.count(name) > 0) continue;
      out->push_back(Finding{
          "CMakeLists.txt", line, "knob-coherence",
          "CMake option " + name + " has no row in the README knob table"});
    }
  }

  // NDP_* default agreement across call sites, and against the README cell.
  for (const auto& [name, sites] : read_sites) {
    if (name.rfind("NDP_", 0) != 0) continue;
    const KnobSite* first_def = nullptr;
    for (const KnobSite* s : sites) {
      if (s->def.empty()) continue;
      if (!first_def) {
        first_def = s;
      } else if (s->def != first_def->def) {
        Emit(files[s->file], s->line, "knob-coherence",
             "default for " + name + " here (" + s->def +
                 ") disagrees with " + files[first_def->file].rel + ":" +
                 std::to_string(first_def->line) + " (" + first_def->def +
                 "); one site must own the default",
             out);
      }
    }
    auto it = readme_env.find(name);
    if (first_def && it != readme_env.end() &&
        !NumericEq(it->second.front()->def, first_def->def)) {
      out->push_back(Finding{
          idx.readme_rel, it->second.front()->line, "knob-coherence",
          "README default for " + name + " (" + it->second.front()->def +
              ") does not match the call-site default (" + first_def->def +
              ")"});
    }
  }
}

// -- bounded-queue ------------------------------------------------------------

/// Growable std:: containers declared on the serving ingress/admission path.
/// Overload robustness is a whole-path property: one unbounded queue between
/// the door and the runtime turns every shed point upstream of it into
/// theater. Every such declaration must either carry a
/// "// ndp: bounded-by(<knob>)" annotation naming the env knob that caps it
/// (cross-checked against the knob index, so the bound is verifiable) or a
/// reasoned waiver for setup-time state.
const std::regex kGrowableDecl(
    R"(std::(vector|deque|list|queue|priority_queue|map|multimap|set|multiset|unordered_map|unordered_set)\s*<)");

void PassBoundedQueue(std::vector<SourceFile>& files, const Index& idx,
                      std::vector<Finding>* out) {
  std::set<std::string> read_knobs;
  for (const KnobSite& k : idx.knobs) {
    if (k.is_read) read_knobs.insert(k.name);
  }
  for (SourceFile& f : files) {
    if (f.rel.rfind("src/core/ingress", 0) != 0) continue;
    for (size_t line = 1; line <= f.lex.code.size(); ++line) {
      const std::string& code = f.lex.code[line - 1];
      std::smatch m;
      if (!std::regex_search(code, m, kGrowableDecl)) continue;
      // Declaration statements only: parameter lists and call expressions
      // carry parentheses; a wrapped multi-line expression lacks the ';'.
      if (code.find_first_of("()") != std::string::npos) continue;
      const size_t end = code.find_last_not_of(" \t");
      if (end == std::string::npos || code[end] != ';') continue;
      const Annotation* bound = nullptr;
      for (const Annotation& a : f.annotations) {
        if (a.kind == "bounded-by" && (a.line == line || a.line + 1 == line)) {
          bound = &a;
          break;
        }
      }
      if (bound == nullptr) {
        Emit(f, line, "bounded-queue",
             "growable std::" + m[1].str() +
                 " on the ingress/admission path; every container here must "
                 "be fixed-capacity — annotate the sizing knob with // ndp: "
                 "bounded-by(<knob>) or waive setup-time state with a reason",
             out);
      } else if (read_knobs.count(bound->arg) == 0) {
        Emit(f, line, "bounded-queue",
             "bounded-by(" + bound->arg +
                 ") names a knob no code reads (getenv/Env*/OverlayEnv*), so "
                 "the claimed bound is unverifiable; name the real capacity "
                 "knob",
             out);
      }
    }
  }
}

}  // namespace

void RunPasses(std::vector<SourceFile>& files, const Index& idx,
               std::vector<Finding>* out) {
  PassStatsCoherence(files, idx, out);
  PassGuardedBy(files, out);
  PassLayerDag(files, idx, out);
  PassKnobCoherence(files, idx, out);
  PassBoundedQueue(files, idx, out);
}

void RunMetaPasses(std::vector<SourceFile>& files, std::vector<Finding>* out) {
  for (SourceFile& f : files) {
    for (const Waiver& w : f.waivers) {
      if (!w.has_reason) {
        out->push_back(Finding{
            f.rel, w.line, "waiver-reason",
            "waiver for '" + w.rule +
                "' carries no reason; say in the comment why this line is "
                "exempt (waiver-reason cannot itself be waived)"});
      }
      if (!w.used) {
        out->push_back(Finding{
            f.rel, w.line, "stale-waiver",
            "waiver for '" + w.rule +
                "' suppresses nothing — no such finding fires on this or the "
                "next line; delete it (stale-waiver cannot itself be waived)"});
      }
    }
  }
}

}  // namespace ndp::analyze
