// ndp-analyze cross-translation-unit index.
//
// Built once over every scanned file, plus the repo-level text surfaces the
// whole-program passes compare against (README knob table, top-level
// CMakeLists option()s, tools/check.sh). The index is data only — the
// judgments live in passes.cc.
//
// Stats universe. Registration calls are token-scanned; a string literal
// whose next token is '+' is a *dynamic* name and contributes its complete
// interior dot-segments plus a trailing prefix (Sub("ctrl" + c) yields scope
// prefix "ctrl", matched against segments "ctrl<digits>"). A Sub() with no
// literal at all must carry a "// ndp: stats-scope(a|b)" annotation naming
// the segments it can produce. Histogram leaves auto-register the derived
// subleaves count/sum/mean/p50/p90/p99.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "source.h"

namespace ndp::analyze {

/// One string-literal fragment of a read-path argument.
struct PathFrag {
  std::string text;
  bool open_left = false;   ///< preceded by '+' — starts mid-segment
  bool open_right = false;  ///< followed by '+' — ends mid-segment
};

/// A stats read by string path: snapshot/registry Value, Count, ReadValue,
/// Contains, Has with at least one literal in the path argument.
struct ReadSite {
  size_t file = 0;  ///< index into the scanned-file vector
  size_t line = 0;
  std::string fn;
  std::vector<PathFrag> frags;
  bool probing = false;  ///< ReadValue with an explicit fallback: tolerates absence
};

/// A complete-literal leaf registration (Counter/Gauge/Histogram/Owned...),
/// kept for the dead-stats check.
struct RegSite {
  size_t file = 0;
  size_t line = 0;
  std::string leaf;  ///< last dot-segment of the registered path
};

/// A Sub()/StatsScope() call whose name is dynamic and has no literal and no
/// stats-scope annotation — the stats pass flags it.
struct DynScopeSite {
  size_t file = 0;
  size_t line = 0;
};

/// An env-knob call site with a literal name: getenv/setenv, the strict
/// bench EnvU64/EnvDouble, and the runtime/fault Overlay* helpers.
struct KnobSite {
  size_t file = 0;
  size_t line = 0;
  std::string fn;
  std::string name;
  std::string def;  ///< serialized default-argument tokens ("" if none)
  bool is_read = false;
};

/// One `#include "..."` in a src/ file.
struct IncludeEdge {
  size_t file = 0;
  size_t line = 0;
  std::string target;  ///< the quoted path as written
};

/// One knob row of the README table (multi-knob cells are split).
struct ReadmeKnob {
  std::string name;
  std::string kind;  ///< env | CMake
  std::string def;
  size_t line = 0;
};

struct Index {
  // stats universe
  std::set<std::string> scope_segments;
  std::set<std::string> scope_prefixes;
  std::set<std::string> leaves;
  std::set<std::string> hist_leaves;
  std::vector<RegSite> regs;
  std::vector<ReadSite> reads;
  std::vector<DynScopeSite> dyn_scopes;
  /// Every dot-segment of every string literal that is NOT a registration
  /// argument: the "is this counter ever referred to" corpus.
  std::set<std::string> mentions;

  std::vector<KnobSite> knobs;
  std::vector<IncludeEdge> includes;

  std::vector<ReadmeKnob> readme;
  bool have_readme = false;
  std::string readme_rel;  ///< for finding anchors, e.g. "README.md"
  std::string check_sh;    ///< whole text, "" if absent
  std::vector<std::pair<std::string, size_t>> cmake_opts;  ///< name, line
  bool have_cmake = false;
};

Index BuildIndex(std::vector<SourceFile>& files,
                 const std::filesystem::path& root);

/// Dot-split of one fragment: (piece, complete) pairs with empty pieces
/// dropped; complete means the piece is bounded by dots or by a literal edge
/// that is not glued to a '+'.
std::vector<std::pair<std::string, bool>> Pieces(const PathFrag& frag);

}  // namespace ndp::analyze
