// ndp-analyze lexing layer: a real C++ token stream.
//
// The seed ndp_lint scanner matched regexes against raw lines, so a banned
// identifier inside a comment, a string literal, or a raw string produced a
// false positive that then needed a waiver. The lexer fixes that class for
// good: it walks the file once with a small state machine (line comments,
// block comments, ordinary/char literals with escapes, raw strings with
// custom delimiters, digit separators) and produces
//
//   * tokens   — identifiers, numbers, string/char literals (with their
//                decoded spelling), and punctuators (two-char operators like
//                "->", "::", "++" fused), each tagged with a 1-based line;
//   * comments — the text of every comment, per line (the waiver and
//                annotation grammars live in comments);
//   * code     — per-line "sanitized" text: comments blanked, literal
//                contents emptied ("\"...\"" becomes "\"\""), everything
//                else verbatim. The ported line-shaped rules run their
//                regexes over this, which is exactly as expressive as the
//                old scanner but cannot be fooled by comments or strings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ndp::analyze {

enum class TokKind {
  kIdent,
  kNumber,
  kString,  ///< text = literal contents without quotes or encoding prefix
  kChar,    ///< text = literal contents without quotes
  kPunct,
};

struct Tok {
  TokKind kind;
  std::string text;
  size_t line = 0;  ///< 1-based
};

struct Comment {
  size_t line = 0;    ///< 1-based; block comments yield one entry per line
  std::string text;   ///< comment body without the // or /* */ markers
};

struct LexResult {
  std::vector<Tok> tokens;
  std::vector<Comment> comments;
  std::vector<std::string> code;  ///< sanitized, same line count as input
};

LexResult Lex(const std::vector<std::string>& lines);

}  // namespace ndp::analyze
