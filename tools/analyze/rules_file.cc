#include "rules_file.h"

#include <algorithm>
#include <regex>
#include <string>

namespace ndp::analyze {

namespace {

// -- include-guard ------------------------------------------------------------

void CheckIncludeGuard(SourceFile& f, std::vector<Finding>* out) {
  if (!f.is_header) return;
  const size_t horizon = std::min<size_t>(f.lex.code.size(), 64);
  for (size_t i = 0; i < horizon; ++i) {
    const std::string& code = f.lex.code[i];
    if (code.find("#pragma once") != std::string::npos) return;
    if (code.rfind("#ifndef", 0) == 0) return;  // classic guard
  }
  Emit(f, 1, "include-guard",
       "header has no #pragma once (or #ifndef guard) in its first 64 lines",
       out);
}

// -- wall-clock ---------------------------------------------------------------

void CheckWallClock(SourceFile& f, std::vector<Finding>* out) {
  const bool chrono_banned = f.top != "bench";  // sim/test code: none at all
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    const std::string& code = f.lex.code[i];
    if (code.find("system_clock") != std::string::npos ||
        code.find("high_resolution_clock") != std::string::npos) {
      Emit(f, i + 1, "wall-clock",
           "wall-clock time source; simulated time is sim::Tick and host "
           "timing (bench/ only) uses steady_clock",
           out);
      continue;
    }
    if (chrono_banned && (code.find("std::chrono") != std::string::npos ||
                          code.find("#include <chrono>") != std::string::npos)) {
      Emit(f, i + 1, "wall-clock",
           "std::chrono in sim/test code; simulators and tests must be pure "
           "functions of their inputs (use sim::Tick)",
           out);
    }
  }
}

// -- banned-random ------------------------------------------------------------

void CheckBannedRandom(SourceFile& f, std::vector<Finding>* out) {
  static const std::regex kBanned(
      R"((\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937\b|\brand\s*\())");
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    if (std::regex_search(f.lex.code[i], kBanned)) {
      Emit(f, i + 1, "banned-random",
           "non-reproducible randomness source; draw from the seeded "
           "ndp::Rng (util/rng.h) instead",
           out);
    }
  }
}

// -- no-alloc -----------------------------------------------------------------

void CheckNoAlloc(SourceFile& f, std::vector<Finding>* out) {
  static const std::regex kAlloc(
      R"re(\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(|\bcalloc\s*\()re"
      R"re(|\brealloc\s*\(|(?:\.|->)(?:push_back|emplace_back|resize|reserve|insert|emplace)\s*\()re");
  bool in_region = false;
  size_t region_start = 0;
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    const std::string comment = CommentTextOnLine(f, i + 1);
    if (comment.find("ndp-lint: no-alloc-begin") != std::string::npos) {
      if (in_region) {
        Emit(f, i + 1, "no-alloc", "nested no-alloc-begin marker", out);
      }
      in_region = true;
      region_start = i;
      continue;
    }
    if (comment.find("ndp-lint: no-alloc-end") != std::string::npos) {
      if (!in_region) {
        Emit(f, i + 1, "no-alloc", "no-alloc-end marker without a begin", out);
      }
      in_region = false;
      continue;
    }
    if (in_region && std::regex_search(f.lex.code[i], kAlloc)) {
      Emit(f, i + 1, "no-alloc",
           "heap allocation inside a no-alloc region (opened at line " +
               std::to_string(region_start + 1) + ")",
           out);
    }
  }
  if (in_region) {
    Emit(f, region_start + 1, "no-alloc", "no-alloc-begin marker never closed",
         out);
  }
}

// -- stats-path ---------------------------------------------------------------

void CheckStatsPath(SourceFile& f, std::vector<Finding>* out) {
  // A registration call whose first argument is one complete string literal
  // (next token after it closes or continues the argument list). Literals
  // concatenated with '+' (dynamic names) are checked by the cross-TU stats
  // pass instead.
  static const std::regex kGrammar(R"([a-z0-9_]+(\.[a-z0-9_]+)*)");
  const auto& toks = f.lex.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& id = toks[i].text;
    const bool member = i > 0 && toks[i - 1].kind == TokKind::kPunct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool reg_call =
        (member && (id == "Counter" || id == "Gauge" || id == "Histogram" ||
                    id == "Sub")) ||
        id == "RegisterCounter" || id == "RegisterGauge" ||
        id == "RegisterHistogram" || id == "OwnedCounter";
    if (!reg_call) continue;
    if (toks[i + 1].text != "(" || toks[i + 2].kind != TokKind::kString) {
      continue;
    }
    if (i + 3 < toks.size() &&
        (toks[i + 3].text == "+" || toks[i + 3].text == "+=")) {
      continue;  // dynamic name
    }
    const std::string& path = toks[i + 2].text;
    if (!std::regex_match(path, kGrammar)) {
      Emit(f, toks[i + 2].line, "stats-path",
           "stat path \"" + path +
               "\" violates the dotted-path grammar [a-z0-9_]+(.[a-z0-9_]+)*"
               " (DESIGN.md §6)",
           out);
    }
  }
}

// -- unordered-iter -----------------------------------------------------------

void CheckUnorderedIteration(SourceFile& f, std::vector<Finding>* out) {
  // Names declared in this file as std::unordered_{map,set} (members, locals).
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*(?:;|=|\{|\())");
  std::vector<std::string> unordered_names;
  for (const std::string& code : f.lex.code) {
    auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.push_back((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  // Range-for whose sequence expression ends in one of those names.
  static const std::regex kRangeFor(R"(for\s*\(.*:\s*\*?([\w.>\-]+)\s*\))");
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    const std::string& code = f.lex.code[i];
    std::smatch m;
    if (!std::regex_search(code, m, kRangeFor)) continue;
    std::string seq = m[1].str();
    const size_t cut = seq.find_last_of(".>");  // obj.member_ / ptr->member_
    if (cut != std::string::npos) seq = seq.substr(cut + 1);
    if (std::find(unordered_names.begin(), unordered_names.end(), seq) ==
        unordered_names.end()) {
      continue;
    }
    Emit(f, i + 1, "unordered-iter",
         "range-for over unordered container '" + seq +
             "': iteration order is unspecified and must not feed reported "
             "output; sort first or annotate why order cannot escape",
         out);
  }
}

// -- status -------------------------------------------------------------------

void CheckStatusIgnored(SourceFile& f, std::vector<Finding>* out) {
  // A JAFAR dispatch call at statement position (optionally behind an
  // explicit (void) cast): the returned Status vanishes, so a rejected or
  // failed dispatch is indistinguishable from a started job.
  static const std::regex kIgnored(
      R"re(^\s*(?:\(void\)\s*)?(?:[\w]+(?:\.|->))?)re"
      R"re((?:Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy))re"
      R"re(|(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)Jafar)re"
      R"re(|HierarchicalGroupBy)\s*\()re");
  // A dispatch that begins a continuation line (the previous code line ends
  // mid-expression, e.g. inside ASSERT_TRUE( or after =) is an argument or
  // an assigned value, not a discarded statement.
  static const std::regex kOpenEnding(R"re([(,=]\s*$|&&\s*$|\|\|\s*$)re");
  std::string prev;
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    const std::string& code = f.lex.code[i];
    const bool continuation = std::regex_search(prev, kOpenEnding);
    if (!continuation && std::regex_search(code, kIgnored)) {
      Emit(f, i + 1, "status",
           "Status of a JAFAR dispatch is discarded; check it (NDP_CHECK, "
           "JAFAR_RETURN_IF_ERROR, assignment) or waive a deliberate discard",
           out);
    }
    if (code.find_first_not_of(" \t") != std::string::npos) prev = code;
  }
}

// -- watchdog-arm -------------------------------------------------------------

void CheckWatchdogArm(SourceFile& f, std::vector<Finding>* out) {
  // Only library code: benches and tests pump the queue themselves and a
  // wedged job surfaces as a failed RunUntilTrue there.
  if (f.top != "src") return;
  static const std::regex kDispatch(
      R"re((?:\.|->)Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)\s*\()re");
  bool has_watchdog = false;
  for (const std::string& code : f.lex.code) {
    if (code.find("ArmWatchdog") != std::string::npos) {
      has_watchdog = true;
      break;
    }
  }
  if (has_watchdog) return;
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    if (std::regex_search(f.lex.code[i], kDispatch)) {
      Emit(f, i + 1, "watchdog-arm",
           "device job dispatched in a file with no watchdog registration "
           "(ArmWatchdog); an injected hang would wedge this path forever — "
           "route through jafar::Driver or waive with a reason",
           out);
    }
  }
}

// -- runtime-bypass -----------------------------------------------------------

void CheckRuntimeBypass(SourceFile& f, std::vector<Finding>* out) {
  // The core/db layers sit above the multi-query runtime; dispatching to a
  // device (or its driver) from there skips the per-channel queues, so the
  // job runs outside admission control, QoS lease sizing, and work stealing.
  // core/runtime.{h,cc} IS the queue layer and is exempt by construction.
  const bool in_scope = f.rel.rfind("src/core/", 0) == 0 ||
                        f.rel.rfind("src/db/", 0) == 0;
  if (!in_scope || f.rel == "src/core/runtime.cc" ||
      f.rel == "src/core/runtime.h") {
    return;
  }
  static const std::regex kDispatch(
      R"re((?:\.|->)(?:Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy))re"
      R"re(|(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)Jafar)\s*\()re");
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    if (std::regex_search(f.lex.code[i], kDispatch)) {
      Emit(f, i + 1, "runtime-bypass",
           "device dispatch from core/db bypasses the NdpRuntime queues "
           "(admission, leases, stealing); submit through core/runtime.h or "
           "waive a deliberate single-query path",
           out);
    }
  }
}

// -- cross-partition-schedule -------------------------------------------------

void CheckCrossPartitionSchedule(SourceFile& f, std::vector<Finding>* out) {
  // Outside the kernel, an event scheduled straight onto a PartitionSet wheel
  // selected by index lands on another partition with no lookahead hop; the
  // legal channels are PartitionSet::Send and the DimmArray ports. The kernel
  // itself (src/sim/) delivers drained messages this way by construction;
  // benches and tests schedule at barrier time, where direct access is legal.
  if (f.top != "src" || f.rel.rfind("src/sim/", 0) == 0) return;
  static const std::regex kDirect(
      R"re(\bqueue\s*\([^()]*\)\s*(?:\.|->)\s*Schedule(?:At|After)?\s*\()re");
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    if (std::regex_search(f.lex.code[i], kDirect)) {
      Emit(f, i + 1, "cross-partition-schedule",
           "direct schedule onto a partition wheel selected by index; route "
           "through PartitionSet::Send / PostToDevice / PostToHost so the "
           "event pays the lookahead hop, or waive barrier-time setup with a "
           "reason",
           out);
    }
  }
}

// -- generation-dispatch ------------------------------------------------------

void CheckGenerationDispatch(SourceFile& f, std::vector<Finding>* out) {
  // The JAFAR shell is generation-neutral: the DatapathModel factory
  // (datapath.cc) is the ONE sanctioned place that branches on
  // DeviceGeneration. generation.{h,cc} — the enum's own to-string/parse —
  // is exempt by construction.
  if (f.rel.rfind("src/jafar/", 0) != 0 ||
      f.rel == "src/jafar/generation.h" ||
      f.rel == "src/jafar/generation.cc") {
    return;
  }
  static const std::regex kDispatch(
      R"re((?:==|!=)\s*(?:\w+::)*DeviceGeneration::|\bgeneration\s*(?:==|!=))re"
      R"re(|\bswitch\s*\([^)]*\bgen)re");
  for (size_t i = 0; i < f.lex.code.size(); ++i) {
    if (std::regex_search(f.lex.code[i], kDispatch)) {
      Emit(f, i + 1, "generation-dispatch",
           "generation branch outside the DatapathModel factory; put "
           "generation-specific behavior behind DatapathModel (datapath.h) "
           "so the shell stays generation-neutral",
           out);
    }
  }
}

}  // namespace

void RunFileRules(SourceFile& f, std::vector<Finding>* out) {
  CheckIncludeGuard(f, out);
  CheckWallClock(f, out);
  CheckBannedRandom(f, out);
  CheckNoAlloc(f, out);
  CheckStatsPath(f, out);
  CheckUnorderedIteration(f, out);
  CheckStatusIgnored(f, out);
  CheckWatchdogArm(f, out);
  CheckRuntimeBypass(f, out);
  CheckCrossPartitionSchedule(f, out);
  CheckGenerationDispatch(f, out);
}

}  // namespace ndp::analyze
