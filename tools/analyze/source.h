// ndp-analyze file IR: one scanned file, parsed once, shared by every rule
// and pass.
//
// A SourceFile carries the raw lines (only the include scanner and the
// include-guard rule look at them), the lex result (tokens + comments +
// sanitized code lines), and the two comment grammars the tree uses:
//
//   waivers       "// ndp-lint: <rule>-ok <reason...>" — suppresses that rule
//                 on the same line or the line below; the reason text is now
//                 mandatory (the waiver-reason meta rule fires without it),
//                 and a waiver that never suppressed anything is itself a
//                 finding (stale-waiver) — `used` tracks that.
//   annotations   "// ndp: guarded-by(<mutex>)"    field is guarded by mutex
//                 "// ndp: requires(<mutex>)"      next function body holds it
//                 "// ndp: stats-scope(a|b|c)"     a dynamic Sub() only ever
//                                                  produces these segments
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lexer.h"

namespace ndp::analyze {

struct Waiver {
  size_t line = 0;  ///< 1-based line of the waiver comment
  std::string rule;
  bool has_reason = false;
  bool used = false;  ///< set when the waiver suppressed a finding
};

struct Annotation {
  size_t line = 0;   ///< 1-based line of the annotation comment
  std::string kind;  ///< guarded-by | requires | stats-scope
  std::string arg;   ///< the text inside the parentheses
};

struct SourceFile {
  std::string rel;    ///< path relative to the scan root, '/'-separated
  std::string top;    ///< first path component: src | bench | tests
  std::string layer;  ///< for src files, second component (util, sim, ...)
  bool is_header = false;
  std::vector<std::string> raw;  ///< 0-based; finding lines are 1-based
  LexResult lex;
  std::vector<Waiver> waivers;
  std::vector<Annotation> annotations;
};

struct Finding {
  std::string rel;
  size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

bool LoadSourceFile(const std::filesystem::path& root,
                    const std::filesystem::path& path, SourceFile* out);

/// True if a waiver for `rule` sits on `line` (1-based) or the line above;
/// marks every matching waiver used so the stale-waiver pass sees it.
bool Suppressed(SourceFile& f, size_t line, const std::string& rule);

/// Appends the finding unless a waiver suppresses it.
void Emit(SourceFile& f, size_t line, const std::string& rule,
          std::string message, std::vector<Finding>* out);

/// Concatenated text of every comment on 1-based `line` ("" if none).
std::string CommentTextOnLine(const SourceFile& f, size_t line);

}  // namespace ndp::analyze
