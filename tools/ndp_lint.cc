// ndp-lint: project-invariant static analysis for the JAFAR tree.
//
// Scans src/, bench/, and tests/ for violations of the invariants the
// simulator's correctness claims rest on (DESIGN.md "Correctness tooling"):
//
//   include-guard   every header starts with #pragma once (or a classic
//                   #ifndef guard) near the top of the file
//   wall-clock      no wall-clock time sources: system_clock and
//                   high_resolution_clock are banned everywhere, and sim/test
//                   code may not touch std::chrono at all (simulated time is
//                   integer picoseconds; bench/ may use steady_clock to
//                   measure host throughput)
//   banned-random   no std::rand/srand/random_device/mt19937 — all randomness
//                   goes through the seeded, cross-platform ndp::Rng (PCG32),
//                   or experiments stop being reproducible
//   no-alloc        no heap allocation between "// ndp-lint: no-alloc-begin"
//                   and "// ndp-lint: no-alloc-end" markers (the timing-wheel
//                   hot path advertises zero allocation per event)
//   stats-path      string literals registered as stats paths must match the
//                   dotted-path grammar segment("."segment)*, segment =
//                   [a-z0-9_]+ (DESIGN.md §6 naming)
//   unordered-iter  no range-for over a std::unordered_{map,set} declared in
//                   the same file: iteration order is unspecified and has fed
//                   nondeterminism into dumped output before; use a sorted
//                   container or justify with an annotation
//   status          no Status-returning JAFAR dispatch (device Start*, driver
//                   *Jafar) at statement position where the Status vanishes;
//                   [[nodiscard]] catches the plain form at compile time, the
//                   lint also rejects explicit (void) discards — a dropped
//                   dispatch error is how a faulted device wedges silently
//   watchdog-arm    src/ files that dispatch device jobs directly (.Start* /
//                   ->Start*) must contain watchdog registration (ArmWatchdog)
//                   or waive the line — an unguarded dispatch cannot recover
//                   from an injected hang
//   runtime-bypass  src/core/ and src/db/ code must route device work through
//                   the NdpRuntime queues (core/runtime.h): a direct device
//                   Start* or driver *Jafar call from those layers bypasses
//                   admission control, lease sizing, and work stealing; the
//                   runtime itself is exempt, legacy single-query paths waive
//                   with a reason
//   cross-partition-schedule
//                   src/ code outside src/sim/ may not schedule directly onto
//                   a PartitionSet wheel selected by index (queue(p).Schedule*):
//                   cross-partition effects must travel through the ports
//                   (PartitionSet::Send, DimmArray PostToDevice/PostToHost) or
//                   they skip the lookahead hop and break no-past delivery and
//                   thread-count determinism; barrier-time setup waives with a
//                   reason
//   generation-dispatch
//                   src/jafar/ code may not branch on DeviceGeneration
//                   (== / != / switch): generation-specific behavior lives
//                   behind the DatapathModel interface, and the factory in
//                   datapath.cc is the one sanctioned dispatch site (it
//                   carries the waiver); generation.{h,cc} — the enum's own
//                   to-string/parse — is exempt by construction
//
// Any rule can be waived for one line by putting "// ndp-lint: <rule>-ok"
// on that line or the line above it (include a reason).
//
// Adding a rule: write a RuleFn, append a row to kRules[] below, and document
// it in DESIGN.md "Correctness tooling". Rules see one whole file at a time
// (path, classification, and its lines) and append Findings.
//
// Usage: ndp_lint [repo_root]   (default: current directory)
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct SourceFile {
  std::string rel;                  ///< path relative to the repo root
  std::string top;                  ///< first path component: src|bench|tests
  bool is_header = false;
  std::vector<std::string> lines;   ///< 0-based; finding line numbers 1-based
};

struct Finding {
  std::string rel;
  size_t line;  ///< 1-based
  std::string rule;
  std::string message;
};

using RuleFn = void (*)(const SourceFile&, std::vector<Finding>*);

/// The code portion of a line: everything before a // comment. (Good enough
/// for this tree — no multi-line /* */ blocks in checked regions.)
std::string CodePart(const std::string& line) {
  size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// True if line `i` (0-based) or the line above carries the waiver comment
/// "ndp-lint: <rule>-ok".
bool Suppressed(const SourceFile& f, size_t i, const std::string& rule) {
  const std::string token = "ndp-lint: " + rule + "-ok";
  if (f.lines[i].find(token) != std::string::npos) return true;
  return i > 0 && f.lines[i - 1].find(token) != std::string::npos;
}

void Emit(const SourceFile& f, size_t i, const char* rule, std::string message,
          std::vector<Finding>* out) {
  if (Suppressed(f, i, rule)) return;
  out->push_back(Finding{f.rel, i + 1, rule, std::move(message)});
}

// -- include-guard ------------------------------------------------------------

void CheckIncludeGuard(const SourceFile& f, std::vector<Finding>* out) {
  if (!f.is_header) return;
  const size_t horizon = std::min<size_t>(f.lines.size(), 64);
  for (size_t i = 0; i < horizon; ++i) {
    const std::string code = CodePart(f.lines[i]);
    if (code.find("#pragma once") != std::string::npos) return;
    if (code.rfind("#ifndef", 0) == 0) return;  // classic guard
  }
  Emit(f, 0, "include-guard",
       "header has no #pragma once (or #ifndef guard) in its first 64 lines",
       out);
}

// -- wall-clock ---------------------------------------------------------------

void CheckWallClock(const SourceFile& f, std::vector<Finding>* out) {
  const bool chrono_banned = f.top != "bench";  // sim/test code: none at all
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string code = CodePart(f.lines[i]);
    if (code.find("system_clock") != std::string::npos ||
        code.find("high_resolution_clock") != std::string::npos) {
      Emit(f, i, "wall-clock",
           "wall-clock time source; simulated time is sim::Tick and host "
           "timing (bench/ only) uses steady_clock",
           out);
      continue;
    }
    if (chrono_banned && (code.find("std::chrono") != std::string::npos ||
                          code.find("#include <chrono>") != std::string::npos ||
                          f.lines[i].rfind("#include <chrono>", 0) == 0)) {
      Emit(f, i, "wall-clock",
           "std::chrono in sim/test code; simulators and tests must be pure "
           "functions of their inputs (use sim::Tick)",
           out);
    }
  }
}

// -- banned-random ------------------------------------------------------------

void CheckBannedRandom(const SourceFile& f, std::vector<Finding>* out) {
  static const std::regex kBanned(
      R"((\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937\b|\brand\s*\())");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (std::regex_search(CodePart(f.lines[i]), kBanned)) {
      Emit(f, i, "banned-random",
           "non-reproducible randomness source; draw from the seeded "
           "ndp::Rng (util/rng.h) instead",
           out);
    }
  }
}

// -- no-alloc -----------------------------------------------------------------

void CheckNoAlloc(const SourceFile& f, std::vector<Finding>* out) {
  static const std::regex kAlloc(
      R"re(\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(|\bcalloc\s*\()re"
      R"re(|\brealloc\s*\(|(?:\.|->)(?:push_back|emplace_back|resize|reserve|insert|emplace)\s*\()re");
  bool in_region = false;
  size_t region_start = 0;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (f.lines[i].find("ndp-lint: no-alloc-begin") != std::string::npos) {
      if (in_region) {
        Emit(f, i, "no-alloc", "nested no-alloc-begin marker", out);
      }
      in_region = true;
      region_start = i;
      continue;
    }
    if (f.lines[i].find("ndp-lint: no-alloc-end") != std::string::npos) {
      if (!in_region) {
        Emit(f, i, "no-alloc", "no-alloc-end marker without a begin", out);
      }
      in_region = false;
      continue;
    }
    if (in_region && std::regex_search(CodePart(f.lines[i]), kAlloc)) {
      Emit(f, i, "no-alloc",
           "heap allocation inside a no-alloc region (opened at line " +
               std::to_string(region_start + 1) + ")",
           out);
    }
  }
  if (in_region) {
    Emit(f, region_start, "no-alloc", "no-alloc-begin marker never closed",
         out);
  }
}

// -- stats-path ---------------------------------------------------------------

void CheckStatsPath(const SourceFile& f, std::vector<Finding>* out) {
  // A registration call whose first argument is one complete string literal.
  // Literals concatenated with '+' (dynamic names) end in '+' and don't match.
  static const std::regex kCall(
      R"re((?:\.Counter|\.Gauge|\.Histogram|\.Sub|RegisterCounter|RegisterGauge)re"
      R"re(|RegisterHistogram|OwnedCounter)\s*\(\s*"([^"]*)"\s*[,)])re");
  static const std::regex kGrammar(R"([a-z0-9_]+(\.[a-z0-9_]+)*)");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string code = CodePart(f.lines[i]);
    auto begin = std::sregex_iterator(code.begin(), code.end(), kCall);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string path = (*it)[1].str();
      if (!std::regex_match(path, kGrammar)) {
        Emit(f, i, "stats-path",
             "stat path \"" + path +
                 "\" violates the dotted-path grammar [a-z0-9_]+(.[a-z0-9_]+)*"
                 " (DESIGN.md §6)",
             out);
      }
    }
  }
}

// -- unordered-iter -----------------------------------------------------------

void CheckUnorderedIteration(const SourceFile& f, std::vector<Finding>* out) {
  // Names declared in this file as std::unordered_{map,set} (members, locals).
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*(?:;|=|\{|\())");
  std::vector<std::string> unordered_names;
  for (const std::string& line : f.lines) {
    const std::string code = CodePart(line);
    auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.push_back((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  // Range-for whose sequence expression ends in one of those names.
  static const std::regex kRangeFor(R"(for\s*\(.*:\s*\*?([\w.>\-]+)\s*\))");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string code = CodePart(f.lines[i]);
    std::smatch m;
    if (!std::regex_search(code, m, kRangeFor)) continue;
    std::string seq = m[1].str();
    const size_t cut = seq.find_last_of(".>");  // obj.member_ / ptr->member_
    if (cut != std::string::npos) seq = seq.substr(cut + 1);
    if (std::find(unordered_names.begin(), unordered_names.end(), seq) ==
        unordered_names.end()) {
      continue;
    }
    Emit(f, i, "unordered-iter",
         "range-for over unordered container '" + seq +
             "': iteration order is unspecified and must not feed reported "
             "output; sort first or annotate why order cannot escape",
         out);
  }
}

// -- status -------------------------------------------------------------------

void CheckStatusIgnored(const SourceFile& f, std::vector<Finding>* out) {
  // A JAFAR dispatch call at statement position (optionally behind an
  // explicit (void) cast): the returned Status vanishes, so a rejected or
  // failed dispatch is indistinguishable from a started job.
  static const std::regex kIgnored(
      R"re(^\s*(?:\(void\)\s*)?(?:[\w]+(?:\.|->))?)re"
      R"re((?:Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy))re"
      R"re(|(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)Jafar)re"
      R"re(|HierarchicalGroupBy)\s*\()re");
  // A dispatch that begins a continuation line (the previous code line ends
  // mid-expression, e.g. inside ASSERT_TRUE( or after =) is an argument or
  // an assigned value, not a discarded statement.
  static const std::regex kOpenEnding(R"re([(,=]\s*$|&&\s*$|\|\|\s*$)re");
  std::string prev;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    const std::string code = CodePart(f.lines[i]);
    const bool continuation = std::regex_search(prev, kOpenEnding);
    if (!continuation && std::regex_search(code, kIgnored)) {
      Emit(f, i, "status",
           "Status of a JAFAR dispatch is discarded; check it (NDP_CHECK, "
           "JAFAR_RETURN_IF_ERROR, assignment) or waive a deliberate discard",
           out);
    }
    if (!code.empty() &&
        code.find_first_not_of(" \t") != std::string::npos) {
      prev = code;
    }
  }
}

// -- watchdog-arm -------------------------------------------------------------

void CheckWatchdogArm(const SourceFile& f, std::vector<Finding>* out) {
  // Only library code: benches and tests pump the queue themselves and a
  // wedged job surfaces as a failed RunUntilTrue there.
  if (f.top != "src") return;
  static const std::regex kDispatch(
      R"re((?:\.|->)Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)\s*\()re");
  bool has_watchdog = false;
  for (const std::string& line : f.lines) {
    if (CodePart(line).find("ArmWatchdog") != std::string::npos) {
      has_watchdog = true;
      break;
    }
  }
  if (has_watchdog) return;
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (std::regex_search(CodePart(f.lines[i]), kDispatch)) {
      Emit(f, i, "watchdog-arm",
           "device job dispatched in a file with no watchdog registration "
           "(ArmWatchdog); an injected hang would wedge this path forever — "
           "route through jafar::Driver or waive with a reason",
           out);
    }
  }
}

// -- runtime-bypass -----------------------------------------------------------

void CheckRuntimeBypass(const SourceFile& f, std::vector<Finding>* out) {
  // The core/db layers sit above the multi-query runtime; dispatching to a
  // device (or its driver) from there skips the per-channel queues, so the
  // job runs outside admission control, QoS lease sizing, and work stealing.
  // core/runtime.{h,cc} IS the queue layer and is exempt by construction.
  const bool in_scope = f.rel.rfind("src/core/", 0) == 0 ||
                        f.rel.rfind("src/db/", 0) == 0;
  if (!in_scope || f.rel == "src/core/runtime.cc" ||
      f.rel == "src/core/runtime.h") {
    return;
  }
  static const std::regex kDispatch(
      R"re((?:\.|->)(?:Start(?:Select|Aggregate|Project|RowStore|Sort|GroupBy))re"
      R"re(|(?:Select|Aggregate|Project|RowStore|Sort|GroupBy)Jafar)\s*\()re");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (std::regex_search(CodePart(f.lines[i]), kDispatch)) {
      Emit(f, i, "runtime-bypass",
           "device dispatch from core/db bypasses the NdpRuntime queues "
           "(admission, leases, stealing); submit through core/runtime.h or "
           "waive a deliberate single-query path",
           out);
    }
  }
}

// -- cross-partition-schedule -------------------------------------------------

void CheckCrossPartitionSchedule(const SourceFile& f,
                                 std::vector<Finding>* out) {
  // Outside the kernel, an event scheduled straight onto a PartitionSet wheel
  // selected by index lands on another partition with no lookahead hop. Done
  // from inside an epoch that violates no-past delivery (the drain check
  // fires) or silently orders the event differently per thread count; the
  // legal channels are PartitionSet::Send and the DimmArray ports. The kernel
  // itself (src/sim/) delivers drained messages this way by construction;
  // benches and tests schedule at barrier time, where direct access is legal.
  if (f.top != "src" || f.rel.rfind("src/sim/", 0) == 0) return;
  static const std::regex kDirect(
      R"re(\bqueue\s*\([^()]*\)\s*(?:\.|->)\s*Schedule(?:At|After)?\s*\()re");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (std::regex_search(CodePart(f.lines[i]), kDirect)) {
      Emit(f, i, "cross-partition-schedule",
           "direct schedule onto a partition wheel selected by index; route "
           "through PartitionSet::Send / PostToDevice / PostToHost so the "
           "event pays the lookahead hop, or waive barrier-time setup with a "
           "reason",
           out);
    }
  }
}

// -- generation-dispatch ------------------------------------------------------

void CheckGenerationDispatch(const SourceFile& f, std::vector<Finding>* out) {
  // The JAFAR shell is generation-neutral: the DatapathModel factory
  // (datapath.cc) is the ONE sanctioned place that branches on
  // DeviceGeneration. Any other comparison or switch in src/jafar/ is a
  // datapath decision leaking into shared code — it silently falls out of
  // date the day a third generation is added. generation.{h,cc} is the
  // enum's own home (to-string, strict parse) and exempt by construction;
  // bench/ and core/ compare generations to label sweeps and price
  // pushdown, which is reporting, not dispatch.
  if (f.rel.rfind("src/jafar/", 0) != 0 ||
      f.rel == "src/jafar/generation.h" ||
      f.rel == "src/jafar/generation.cc") {
    return;
  }
  static const std::regex kDispatch(
      R"re((?:==|!=)\s*(?:\w+::)*DeviceGeneration::|\bgeneration\s*(?:==|!=))re"
      R"re(|\bswitch\s*\([^)]*\bgen)re");
  for (size_t i = 0; i < f.lines.size(); ++i) {
    if (std::regex_search(CodePart(f.lines[i]), kDispatch)) {
      Emit(f, i, "generation-dispatch",
           "generation branch outside the DatapathModel factory; put "
           "generation-specific behavior behind DatapathModel (datapath.h) "
           "so the shell stays generation-neutral",
           out);
    }
  }
}

// -- rule table ---------------------------------------------------------------

struct Rule {
  const char* id;
  RuleFn fn;
};

constexpr Rule kRules[] = {
    {"include-guard", CheckIncludeGuard},
    {"wall-clock", CheckWallClock},
    {"banned-random", CheckBannedRandom},
    {"no-alloc", CheckNoAlloc},
    {"stats-path", CheckStatsPath},
    {"unordered-iter", CheckUnorderedIteration},
    {"status", CheckStatusIgnored},
    {"watchdog-arm", CheckWatchdogArm},
    {"runtime-bypass", CheckRuntimeBypass},
    {"cross-partition-schedule", CheckCrossPartitionSchedule},
    {"generation-dispatch", CheckGenerationDispatch},
};

bool LoadFile(const fs::path& root, const fs::path& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->rel = fs::relative(path, root).generic_string();
  out->top = out->rel.substr(0, out->rel.find('/'));
  out->is_header = path.extension() == ".h";
  std::string line;
  while (std::getline(in, line)) out->lines.push_back(line);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [repo_root]\n", argv[0]);
    return 2;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::current_path();

  std::vector<fs::path> files;
  for (const char* dir : {"src", "bench", "tests"}) {
    const fs::path sub = root / dir;
    if (!fs::exists(sub)) {
      std::fprintf(stderr, "ndp_lint: missing directory %s\n",
                   sub.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const fs::path ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  size_t scanned = 0;
  for (const fs::path& path : files) {
    SourceFile f;
    if (!LoadFile(root, path, &f)) {
      std::fprintf(stderr, "ndp_lint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    ++scanned;
    for (const Rule& rule : kRules) rule.fn(f, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rel != b.rel) return a.rel < b.rel;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& fd : findings) {
    std::printf("%s:%zu: [%s] %s\n", fd.rel.c_str(), fd.line, fd.rule.c_str(),
                fd.message.c_str());
  }
  std::printf("ndp_lint: %zu files scanned, %zu finding%s\n", scanned,
              findings.size(), findings.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
