#!/usr/bin/env bash
# One-shot correctness lane: configure, build, and run every check the repo
# ships, in the order a reviewer would want them to fail.
#
#   1. default build    — full ctest suite (unit + bench_smoke + lint +
#                         analyze labels)
#   2. ndp-analyze      — whole-program analysis of src/ bench/ tests/ (the
#                         lexed file rules plus the cross-TU stats/guarded-by/
#                         layer-DAG/knob passes; also a ctest, but run
#                         directly here so its findings print even if the
#                         build of the test tree fails), then the fixture
#                         corpus against its golden report
#   3. protocol build   — -DNDP_PROTOCOL_CHECK=ON: every DRAM command the
#                         suite issues is audited against the DDR3 JEDEC
#                         timing rules by the shadow checker
#   4. sanitizer build  — -DNDP_SANITIZE=address,undefined: the fault suite
#                         (ctest -L faults), the multi-query runtime suite
#                         (-L runtime), the device-generation suite
#                         (-L devgen), the serving-ingress suite
#                         (-L serving), the join-pushdown suite (-L join),
#                         and unit tests under ASan+UBSan;
#                         recovery paths (aborts, retries, epoch-guarded
#                         cancellation, deadline-culled slots) are where
#                         lifetime bugs would hide
#   5. tsan build       — -DNDP_SANITIZE=thread: the fault + runtime +
#                         devgen + serving + join + unit suites under TSan
#                         (ParallelSweep shares columns across workers), then
#                         the pdes + devgen + serving + join suites pinned at
#                         NDP_SIM_THREADS=1 and =4 — the partition barrier
#                         handshake and SPSC ports are exactly the code TSan
#                         exists to audit, at both the degenerate and the
#                         contended thread count (the devgen determinism
#                         tests add the v2 result-bus drain traffic, the
#                         serving digests pin the faulted ingress replay)
#   6. clang-tidy       — only if clang-tidy is on PATH (the pinned CI image
#                         ships gcc only)
#
# All three sanitizer/protocol lanes run from this one driver; skip the slow
# tail lanes with NDP_CHECK_FAST=1 (build + analysis + default ctest only).
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
# Environment: JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build}"
JOBS="${JOBS:-$(nproc)}"

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build (${PREFIX})"
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"

step "ndp-analyze"
"./${PREFIX}/tools/ndp_analyze" .
"./${PREFIX}/tools/ndp_analyze" --expect tests/lint/expected.txt \
  tests/lint/fixtures

step "ctest (${PREFIX}: unit + bench_smoke + lint + analyze)"
ctest --test-dir "${PREFIX}" -j "${JOBS}" --output-on-failure

if [[ "${NDP_CHECK_FAST:-0}" == "1" ]]; then
  step "NDP_CHECK_FAST=1: protocol/sanitizer/tidy lanes skipped"
  exit 0
fi

step "configure + build (${PREFIX}-check, NDP_PROTOCOL_CHECK=ON)"
cmake -B "${PREFIX}-check" -S . -DNDP_PROTOCOL_CHECK=ON >/dev/null
cmake --build "${PREFIX}-check" -j "${JOBS}"

step "ctest (${PREFIX}-check: JEDEC audit enabled)"
ctest --test-dir "${PREFIX}-check" -j "${JOBS}" --output-on-failure

step "configure + build (${PREFIX}-asan, NDP_SANITIZE=address,undefined)"
cmake -B "${PREFIX}-asan" -S . -DNDP_SANITIZE=address,undefined >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}"

step "ctest (${PREFIX}-asan: faults + runtime + devgen + serving + join + unit under ASan/UBSan)"
ctest --test-dir "${PREFIX}-asan" -j "${JOBS}" \
  -L 'unit|faults|runtime|devgen|serving|join' --output-on-failure

step "configure + build (${PREFIX}-tsan, NDP_SANITIZE=thread)"
cmake -B "${PREFIX}-tsan" -S . -DNDP_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}"

step "ctest (${PREFIX}-tsan: faults + runtime + devgen + serving + join + unit under TSan)"
ctest --test-dir "${PREFIX}-tsan" -j "${JOBS}" \
  -L 'unit|faults|runtime|devgen|serving|join' --output-on-failure

step "ctest (${PREFIX}-tsan: pdes + devgen + serving + join under TSan, NDP_SIM_THREADS=1)"
NDP_SIM_THREADS=1 ctest --test-dir "${PREFIX}-tsan" -j "${JOBS}" \
  -L 'pdes|devgen|serving|join' --output-on-failure

step "ctest (${PREFIX}-tsan: pdes + devgen + serving + join under TSan, NDP_SIM_THREADS=4)"
NDP_SIM_THREADS=4 ctest --test-dir "${PREFIX}-tsan" -j "${JOBS}" \
  -L 'pdes|devgen|serving|join' --output-on-failure

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy"
  cmake --build "${PREFIX}" --target tidy
else
  step "clang-tidy: not on PATH, skipped"
fi

step "all lanes passed"
