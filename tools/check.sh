#!/usr/bin/env bash
# One-shot correctness lane: configure, build, and run every check the repo
# ships, in the order a reviewer would want them to fail.
#
#   1. default build    — full ctest suite (unit + bench_smoke + lint labels)
#   2. ndp-lint         — invariant scan of src/ bench/ tests/ (also a ctest,
#                         but run directly here so its findings print even if
#                         the build of the test tree fails)
#   3. protocol build   — -DNDP_PROTOCOL_CHECK=ON: every DRAM command the
#                         suite issues is audited against the DDR3 JEDEC
#                         timing rules by the shadow checker
#   4. clang-tidy       — only if clang-tidy is on PATH (the pinned CI image
#                         ships gcc only)
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build)
# Environment: JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build}"
JOBS="${JOBS:-$(nproc)}"

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build (${PREFIX})"
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"

step "ndp-lint"
"./${PREFIX}/tools/ndp_lint" .

step "ctest (${PREFIX}: unit + bench_smoke + lint)"
ctest --test-dir "${PREFIX}" -j "${JOBS}" --output-on-failure

step "configure + build (${PREFIX}-check, NDP_PROTOCOL_CHECK=ON)"
cmake -B "${PREFIX}-check" -S . -DNDP_PROTOCOL_CHECK=ON >/dev/null
cmake --build "${PREFIX}-check" -j "${JOBS}"

step "ctest (${PREFIX}-check: JEDEC audit enabled)"
ctest --test-dir "${PREFIX}-check" -j "${JOBS}" --output-on-failure

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy"
  cmake --build "${PREFIX}" --target tidy
else
  step "clang-tidy: not on PATH, skipped"
fi

step "all lanes passed"
