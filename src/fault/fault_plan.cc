#include "fault/fault_plan.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ndp::fault {

namespace {

Status CheckProbability(const char* name, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a probability in [0, 1]");
  }
  return Status::OK();
}

/// Strict full-string parse (mirrors bench_util's EnvDouble discipline: a
/// typo must fail loudly, not silently configure a different campaign).
Result<double> ParseDouble(const char* name, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty() || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + text +
                                   "' is not a number");
  }
  return v;
}

Result<uint64_t> ParseU64(const char* name, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text.empty() || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + text +
                                   "' is not an unsigned integer");
  }
  return v;
}

/// Overlays one env-var probability onto `field` when the variable is set.
Status OverlayEnvRate(const char* name, double* field) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return Status::OK();
  auto v = ParseDouble(name, raw);
  NDP_RETURN_NOT_OK(v.status());
  NDP_RETURN_NOT_OK(CheckProbability(name, v.value()));
  *field = v.value();
  return Status::OK();
}

}  // namespace

Status FaultPlan::Validate() const {
  NDP_RETURN_NOT_OK(CheckProbability("ecc_ce_per_burst", ecc_ce_per_burst));
  NDP_RETURN_NOT_OK(CheckProbability("ecc_ue_per_burst", ecc_ue_per_burst));
  NDP_RETURN_NOT_OK(CheckProbability("hang_per_job", hang_per_job));
  NDP_RETURN_NOT_OK(CheckProbability("stall_per_burst", stall_per_burst));
  NDP_RETURN_NOT_OK(CheckProbability("corrupt_per_flush", corrupt_per_flush));
  NDP_RETURN_NOT_OK(
      CheckProbability("drop_per_completion", drop_per_completion));
  return Status::OK();
}

Result<FaultPlan> FaultPlan::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("fault plan must be a JSON object");
  }
  FaultPlan plan;
  for (const auto& [key, value] : v.members()) {
    if (key == "seed") {
      if (!value.is_number()) {
        return Status::InvalidArgument("fault plan 'seed' must be a number");
      }
      plan.seed = static_cast<uint64_t>(value.AsNumber());
      continue;
    }
    double* field = nullptr;
    if (key == "ecc_ce_per_burst") field = &plan.ecc_ce_per_burst;
    else if (key == "ecc_ue_per_burst") field = &plan.ecc_ue_per_burst;
    else if (key == "hang_per_job") field = &plan.hang_per_job;
    else if (key == "stall_per_burst") field = &plan.stall_per_burst;
    else if (key == "corrupt_per_flush") field = &plan.corrupt_per_flush;
    else if (key == "drop_per_completion") field = &plan.drop_per_completion;
    if (field == nullptr) {
      return Status::InvalidArgument("unknown fault plan field '" + key + "'");
    }
    if (!value.is_number()) {
      return Status::InvalidArgument("fault plan '" + key +
                                     "' must be a number");
    }
    *field = value.AsNumber();
  }
  NDP_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<FaultPlan> FaultPlan::FromEnv() { return FromEnv(FaultPlan{}); }

Result<FaultPlan> FaultPlan::FromEnv(FaultPlan base) {
  if (const char* path = std::getenv("NDP_FAULT_PLAN")) {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound(std::string("NDP_FAULT_PLAN file '") + path +
                              "' cannot be read");
    }
    std::ostringstream text;
    text << in.rdbuf();
    NDP_ASSIGN_OR_RETURN(json::Value doc, json::Value::Parse(text.str()));
    NDP_ASSIGN_OR_RETURN(base, FromJson(doc));
  }
  if (const char* raw = std::getenv("NDP_FAULT_SEED")) {
    NDP_ASSIGN_OR_RETURN(base.seed, ParseU64("NDP_FAULT_SEED", raw));
  }
  NDP_RETURN_NOT_OK(
      OverlayEnvRate("NDP_FAULT_ECC_CE", &base.ecc_ce_per_burst));
  NDP_RETURN_NOT_OK(
      OverlayEnvRate("NDP_FAULT_ECC_UE", &base.ecc_ue_per_burst));
  NDP_RETURN_NOT_OK(OverlayEnvRate("NDP_FAULT_HANG", &base.hang_per_job));
  NDP_RETURN_NOT_OK(OverlayEnvRate("NDP_FAULT_STALL", &base.stall_per_burst));
  NDP_RETURN_NOT_OK(
      OverlayEnvRate("NDP_FAULT_CORRUPT", &base.corrupt_per_flush));
  NDP_RETURN_NOT_OK(
      OverlayEnvRate("NDP_FAULT_DROP", &base.drop_per_completion));
  NDP_RETURN_NOT_OK(base.Validate());
  return base;
}

}  // namespace ndp::fault
