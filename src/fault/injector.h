// FaultInjector: turns a FaultPlan into deterministic per-layer draw streams
// and counts every injected event in the stats registry ("system.fault.*").
//
// Each fault layer draws from its own PCG32 stream (same seed, distinct
// stream ids), so enabling one layer never perturbs another layer's sequence
// — a plan that only corrupts bitmaps injects the same corruptions whether or
// not ECC faults are also enabled. Draws happen in simulation event order,
// which is itself deterministic, so a (plan, workload) pair fully determines
// the fault sequence.
//
// The injector is wired into the JAFAR device (and consulted by the driver)
// only when the NDP_FAULT_INJECT compile option is on; with it off, no draw
// site exists in the binary at all.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "util/rng.h"
#include "util/stats_registry.h"

namespace ndp::fault {

/// Classification of one read-burst draw (layer 1).
enum class ReadFault : uint8_t {
  kNone,
  kCorrectable,    ///< single-bit flip: SECDED corrects, scrub counter bumps
  kUncorrectable,  ///< double-bit flip: machine check, job must fail
};

/// \brief Seeded fault source. One per simulated system.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, const StatsScope& stats);
  NDP_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  const FaultPlan& plan() const { return plan_; }

  // -- Layer 1: DRAM read path ---------------------------------------------
  ReadFault DrawReadBurst();
  /// Codeword bit position for a correctable flip (0..71).
  uint32_t DrawEccBitPosition();
  /// Two distinct codeword positions for an uncorrectable double flip.
  void DrawEccDoubleFlip(uint32_t* a, uint32_t* b);

  // -- Layer 2: device ------------------------------------------------------
  bool DrawHangAtDispatch();
  bool DrawStallAtBurst();
  bool DrawCorruptAtFlush();
  /// Bit index to flip within a flushed bitmap region of `bits` bits.
  uint64_t DrawCorruptBit(uint64_t bits);

  // -- Layer 3: completion --------------------------------------------------
  bool DrawDropCompletion();

  /// Injected-event counters (also registered under the stats scope).
  struct Counters {
    uint64_t ecc_ce_injected = 0;
    uint64_t ecc_ue_injected = 0;
    uint64_t hangs_injected = 0;
    uint64_t stalls_injected = 0;
    uint64_t corruptions_injected = 0;
    uint64_t drops_injected = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  FaultPlan plan_;
  // Distinct streams per layer keep layers' draw sequences independent.
  Rng ecc_rng_;
  Rng device_rng_;
  Rng completion_rng_;
  Counters counters_;
};

}  // namespace ndp::fault
