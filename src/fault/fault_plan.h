// FaultPlan: the declarative description of a deterministic fault-injection
// campaign. A plan is a seed plus per-layer event probabilities; the
// FaultInjector turns it into seeded PCG32 draw streams, so two simulations
// configured with the same plan inject byte-identical fault sequences.
//
// Plans come from three places, in priority order:
//   1. programmatic  — benches and tests fill the struct directly (e.g.
//      PlatformConfig::fault_plan), which is also thread-safe for ParallelSweep;
//   2. NDP_FAULT_PLAN=<file.json> — a JSON object with the field names below;
//   3. NDP_FAULT_* environment variables — per-field overrides, applied last.
//
// All probabilities are per draw site: ecc_* per DRAM read burst, hang/stall
// per device job (stall re-drawn per burst), corrupt per bitmap flush, drop
// per job completion. Everything defaults to zero; a plan with all-zero rates
// is inactive and the simulation takes no draws at all.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.h"
#include "util/status.h"

namespace ndp::fault {

struct FaultPlan {
  /// Seed for the injector's PCG32 streams (one stream per fault layer).
  uint64_t seed = 20150601;

  // -- Layer 1: DRAM read path (shared IO buffer) ---------------------------
  /// Probability of a correctable single-bit flip per read burst.
  double ecc_ce_per_burst = 0.0;
  /// Probability of an uncorrectable double-bit flip per read burst.
  double ecc_ue_per_burst = 0.0;

  // -- Layer 2: JAFAR device ------------------------------------------------
  /// Probability that a job's command sequencer hangs at dispatch (the first
  /// step is never scheduled; only a watchdog can recover the device).
  double hang_per_job = 0.0;
  /// Probability, per processed burst, that the sequencer stalls mid-job
  /// (partial bitmap already written back).
  double stall_per_burst = 0.0;
  /// Probability, per output-bitmap flush, that one written bit is corrupted
  /// on the way back to DRAM (caught by the driver's writeback checksum).
  double corrupt_per_flush = 0.0;

  // -- Layer 3: completion signalling ---------------------------------------
  /// Probability that a job's completion callback is dropped (the job
  /// finishes; the driver is never told).
  double drop_per_completion = 0.0;

  /// True when any fault layer has a nonzero rate.
  bool active() const {
    return ecc_ce_per_burst > 0 || ecc_ue_per_burst > 0 || hang_per_job > 0 ||
           stall_per_burst > 0 || corrupt_per_flush > 0 ||
           drop_per_completion > 0;
  }

  /// Validates that every rate is a probability in [0, 1].
  Status Validate() const;

  /// Parses a plan from a JSON object (field names match the members:
  /// "seed", "ecc_ce_per_burst", ... ). Unknown fields are rejected.
  static Result<FaultPlan> FromJson(const json::Value& v);

  /// Overlays the NDP_FAULT_* environment onto `base`:
  ///   NDP_FAULT_PLAN=<path to JSON file> (applied first),
  ///   NDP_FAULT_SEED, NDP_FAULT_ECC_CE, NDP_FAULT_ECC_UE, NDP_FAULT_HANG,
  ///   NDP_FAULT_STALL, NDP_FAULT_CORRUPT, NDP_FAULT_DROP.
  /// Returns `base` unchanged when none are set; malformed values are an
  /// InvalidArgument error (silent misconfiguration would invalidate runs).
  static Result<FaultPlan> FromEnv(FaultPlan base);
  static Result<FaultPlan> FromEnv();
};

}  // namespace ndp::fault
