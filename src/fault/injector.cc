#include "fault/injector.h"

#include "fault/ecc.h"

namespace ndp::fault {

namespace {
// PCG32 stream selectors, one per fault layer (arbitrary distinct odd bases).
constexpr uint64_t kEccStream = 0xecc;
constexpr uint64_t kDeviceStream = 0xdec;
constexpr uint64_t kCompletionStream = 0xd0b;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const StatsScope& stats)
    : plan_(plan),
      ecc_rng_(plan.seed, kEccStream),
      device_rng_(plan.seed, kDeviceStream),
      completion_rng_(plan.seed, kCompletionStream) {
  NDP_CHECK_MSG(plan.Validate().ok(), "invalid fault plan");
  stats.Counter("ecc_ce_injected", &counters_.ecc_ce_injected);
  stats.Counter("ecc_ue_injected", &counters_.ecc_ue_injected);
  stats.Counter("hangs_injected", &counters_.hangs_injected);
  stats.Counter("stalls_injected", &counters_.stalls_injected);
  stats.Counter("corruptions_injected", &counters_.corruptions_injected);
  stats.Counter("drops_injected", &counters_.drops_injected);
}

ReadFault FaultInjector::DrawReadBurst() {
  if (plan_.ecc_ce_per_burst <= 0 && plan_.ecc_ue_per_burst <= 0) {
    return ReadFault::kNone;
  }
  // One uniform draw per burst covers both outcomes, so the CE and UE rates
  // partition the unit interval: [0, ue) -> UE, [ue, ue+ce) -> CE.
  double u = ecc_rng_.NextDouble();
  if (u < plan_.ecc_ue_per_burst) {
    ++counters_.ecc_ue_injected;
    return ReadFault::kUncorrectable;
  }
  if (u < plan_.ecc_ue_per_burst + plan_.ecc_ce_per_burst) {
    ++counters_.ecc_ce_injected;
    return ReadFault::kCorrectable;
  }
  return ReadFault::kNone;
}

uint32_t FaultInjector::DrawEccBitPosition() {
  return ecc_rng_.NextBounded(kEccCodewordBits);
}

void FaultInjector::DrawEccDoubleFlip(uint32_t* a, uint32_t* b) {
  *a = ecc_rng_.NextBounded(kEccCodewordBits);
  *b = ecc_rng_.NextBounded(kEccCodewordBits - 1);
  if (*b >= *a) ++*b;  // distinct positions
}

bool FaultInjector::DrawHangAtDispatch() {
  if (plan_.hang_per_job <= 0) return false;
  bool hit = device_rng_.NextBool(plan_.hang_per_job);
  if (hit) ++counters_.hangs_injected;
  return hit;
}

bool FaultInjector::DrawStallAtBurst() {
  if (plan_.stall_per_burst <= 0) return false;
  bool hit = device_rng_.NextBool(plan_.stall_per_burst);
  if (hit) ++counters_.stalls_injected;
  return hit;
}

bool FaultInjector::DrawCorruptAtFlush() {
  if (plan_.corrupt_per_flush <= 0) return false;
  bool hit = device_rng_.NextBool(plan_.corrupt_per_flush);
  if (hit) ++counters_.corruptions_injected;
  return hit;
}

uint64_t FaultInjector::DrawCorruptBit(uint64_t bits) {
  NDP_DCHECK(bits > 0);
  if (bits <= 1) return 0;
  // Two 32-bit draws stitched for ranges past 2^32 (bitmaps stay far below).
  uint64_t hi = bits >> 32;
  if (hi == 0) return device_rng_.NextBounded(static_cast<uint32_t>(bits));
  uint64_t word = device_rng_.NextU64();
  return word % bits;  // bias negligible at these magnitudes
}

bool FaultInjector::DrawDropCompletion() {
  if (plan_.drop_per_completion <= 0) return false;
  bool hit = completion_rng_.NextBool(plan_.drop_per_completion);
  if (hit) ++counters_.drops_injected;
  return hit;
}

}  // namespace ndp::fault
