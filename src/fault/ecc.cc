#include "fault/ecc.h"

#include "util/macros.h"

namespace ndp::fault {

namespace {

constexpr uint32_t kPositions = 71;  ///< codeword positions 1..71 (0 = parity)

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Data-bit index (0..63) occupying codeword position `pos`, or -1 for a
/// check position. Positions are filled in increasing order, skipping the
/// seven power-of-two check positions.
int DataIndexAt(uint32_t pos) {
  if (IsPowerOfTwo(pos)) return -1;
  int idx = -1;
  for (uint32_t p = 1; p <= pos; ++p) {
    if (!IsPowerOfTwo(p)) ++idx;
  }
  return idx;
}

/// Bit value at codeword position `pos` given the data word and the seven
/// Hamming check bits (check bits 1..7 of `check`; bit 0 is overall parity).
uint32_t BitAt(uint64_t data, uint8_t check, uint32_t pos) {
  if (IsPowerOfTwo(pos)) {
    uint32_t i = 0;
    while ((1u << i) != pos) ++i;
    return (check >> (i + 1)) & 1u;
  }
  return static_cast<uint32_t>((data >> DataIndexAt(pos)) & 1u);
}

}  // namespace

uint8_t EccEncode(uint64_t data) {
  uint8_t check = 0;
  // Hamming bits: p_i = even parity over data positions with bit i set.
  for (uint32_t i = 0; i < 7; ++i) {
    uint32_t parity = 0;
    for (uint32_t pos = 1; pos <= kPositions; ++pos) {
      if (IsPowerOfTwo(pos)) continue;
      if ((pos >> i) & 1u) {
        parity ^= static_cast<uint32_t>((data >> DataIndexAt(pos)) & 1u);
      }
    }
    check |= static_cast<uint8_t>(parity << (i + 1));
  }
  // Overall SECDED parity over every data and Hamming bit.
  uint32_t overall = 0;
  for (uint32_t pos = 1; pos <= kPositions; ++pos) {
    overall ^= BitAt(data, check, pos);
  }
  check |= static_cast<uint8_t>(overall & 1u);
  return check;
}

EccDecoded EccDecode(uint64_t data, uint8_t check) {
  // Syndrome: per-group parity including the stored check bit; a clean
  // codeword has even parity in every group.
  uint32_t syndrome = 0;
  for (uint32_t i = 0; i < 7; ++i) {
    uint32_t parity = 0;
    for (uint32_t pos = 1; pos <= kPositions; ++pos) {
      if ((pos >> i) & 1u) parity ^= BitAt(data, check, pos);
    }
    syndrome |= parity << i;
  }
  uint32_t overall = check & 1u;
  for (uint32_t pos = 1; pos <= kPositions; ++pos) {
    overall ^= BitAt(data, check, pos);
  }

  EccDecoded out;
  out.data = data;
  if (syndrome == 0 && overall == 0) {
    out.result = EccResult::kClean;
    return out;
  }
  if (overall == 1) {
    // Odd number of flips with a consistent locator: a single-bit error at
    // position `syndrome` (0 = the overall parity bit itself).
    out.result = EccResult::kCorrected;
    out.error_position = syndrome;
    if (syndrome != 0 && !IsPowerOfTwo(syndrome)) {
      out.data = data ^ (uint64_t{1} << DataIndexAt(syndrome));
    }
    return out;
  }
  // Syndrome set but overall parity intact: an even number of flips.
  out.result = EccResult::kUncorrectable;
  return out;
}

EccCodeword EccFlipBit(uint64_t data, uint8_t check, uint32_t position) {
  NDP_DCHECK(position < kEccCodewordBits);
  EccCodeword cw{data, check};
  if (position == 0) {
    cw.check ^= 1u;  // overall parity bit
  } else if (IsPowerOfTwo(position)) {
    uint32_t i = 0;
    while ((1u << i) != position) ++i;
    cw.check ^= static_cast<uint8_t>(1u << (i + 1));
  } else {
    cw.data ^= uint64_t{1} << DataIndexAt(position);
  }
  return cw;
}

}  // namespace ndp::fault
