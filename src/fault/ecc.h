// SECDED ECC model: the (72,64) single-error-correct / double-error-detect
// Hamming code that commodity ECC DIMMs apply to every 64-bit word (8 check
// bits stored in the x8 ECC device of the rank). The fault framework uses it
// to classify injected IO-buffer bit flips the way a real rank would: a
// single flipped bit is corrected in-line (and scrubbed), a double flip
// raises an uncorrectable-error machine check that the JAFAR driver must
// recover from by retrying the job.
//
// Code construction (even parity): codeword bit positions 1..71 carry the 64
// data bits in the non-power-of-two positions and the 7 Hamming check bits
// p0..p6 at positions 1,2,4,...,64; check bit p_i covers every position with
// bit i set in its index. Position 0 holds the overall (SECDED) parity over
// positions 1..71. Syndrome != 0 with overall-parity mismatch locates a
// single error; syndrome != 0 with overall parity intact means two bits
// flipped — detectable but not correctable.
#pragma once

#include <cstdint>

namespace ndp::fault {

/// Number of bits in one SECDED codeword (64 data + 8 check).
constexpr uint32_t kEccCodewordBits = 72;

/// Computes the 8 check bits (p6..p0 in bits 7..1, overall parity in bit 0)
/// for a 64-bit data word.
uint8_t EccEncode(uint64_t data);

/// Outcome of decoding a (possibly corrupted) codeword.
enum class EccResult : uint8_t {
  kClean,          ///< syndrome zero, parity consistent
  kCorrected,      ///< single-bit error located and repaired
  kUncorrectable,  ///< double-bit error: detected, not repairable
};

/// Decoded word plus classification.
struct EccDecoded {
  EccResult result = EccResult::kClean;
  uint64_t data = 0;           ///< corrected data (valid unless uncorrectable)
  uint32_t error_position = 0; ///< codeword position of a corrected flip
};

/// Decodes `data` against its stored `check` bits.
EccDecoded EccDecode(uint64_t data, uint8_t check);

/// Returns `data` with codeword-position `position` (1..71, data or check
/// position) flipped, as a (data, check) pair packed for re-decoding. Used by
/// the injector to flip physical codeword bits rather than plain data bits.
struct EccCodeword {
  uint64_t data = 0;
  uint8_t check = 0;
};
EccCodeword EccFlipBit(uint64_t data, uint8_t check, uint32_t position);

}  // namespace ndp::fault
