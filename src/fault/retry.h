// Capped exponential backoff for driver-level retries. Delays are simulated
// time (sim::Tick picoseconds), so retry schedules are as deterministic as
// everything else in the simulation.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "util/macros.h"

namespace ndp::fault {

/// \brief Retry budget: bounded attempts with capped exponential backoff.
///
/// Attempt k (1-based) that fails retryably is re-dispatched after
/// min(base_delay_ps * multiplier^(k-1), max_delay_ps). After max_attempts
/// total attempts the failure is permanent and the caller degrades (for a
/// pushdown select: transparent CPU re-execution).
struct RetryPolicy {
  uint32_t max_attempts = 5;
  sim::Tick base_delay_ps = 200'000;      ///< 200 ns
  uint32_t multiplier = 2;
  sim::Tick max_delay_ps = 12'800'000;    ///< 12.8 µs cap

  /// Backoff delay after failed attempt `attempt` (1-based).
  sim::Tick DelayFor(uint32_t attempt) const {
    NDP_DCHECK(attempt >= 1);
    sim::Tick d = base_delay_ps;
    for (uint32_t i = 1; i < attempt; ++i) {
      if (d >= max_delay_ps / (multiplier ? multiplier : 1)) {
        return max_delay_ps;
      }
      d *= multiplier;
    }
    return d < max_delay_ps ? d : max_delay_ps;
  }
};

}  // namespace ndp::fault
