#include "accel/schedule.h"

#include <algorithm>
#include <cstdio>
#include <queue>
#include <vector>

#include "util/macros.h"

namespace ndp::accel {

std::string ScheduleResult::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cycles=%llu ii=%.3f words/cycle=%.3f ops=%llu energy=%.1f fJ",
                static_cast<unsigned long long>(total_cycles), steady_state_ii,
                words_per_cycle, static_cast<unsigned long long>(num_ops),
                dynamic_energy_fj);
  return buf;
}

Result<ScheduleResult> ScheduleKernel(const LoopKernel& kernel,
                                      const DatapathResources& resources,
                                      uint32_t iterations) {
  if (iterations < 2) {
    return Status::InvalidArgument("need >= 2 iterations to measure II");
  }
  for (const IrOp& op : kernel.body) {
    Resource r = ResourceFor(op.code);
    if (resources.CountFor(r) == 0) {
      return Status::FailedPrecondition(
          "kernel '" + kernel.name + "' needs a functional unit of class " +
          std::to_string(static_cast<int>(r)) + " but the datapath has none");
    }
  }
  NDP_ASSIGN_OR_RETURN(Dddg g, Dddg::Build(kernel, iterations));

  const auto& nodes = g.nodes();
  const size_t n = nodes.size();
  std::vector<uint32_t> pending_preds(n);
  std::vector<std::vector<uint32_t>> succs(n);
  std::vector<uint64_t> finish(n, 0);
  std::vector<bool> done(n, false);
  for (size_t i = 0; i < n; ++i) {
    pending_preds[i] = static_cast<uint32_t>(nodes[i].preds.size());
    for (uint32_t p : nodes[i].preds) succs[p].push_back(static_cast<uint32_t>(i));
  }

  // Ready nodes ordered breadth-first (by id, i.e. program order) — Aladdin's
  // traversal order; earliest-ready-first with FIFO tie-break.
  using Entry = std::pair<uint64_t, uint32_t>;  // (earliest cycle, node id)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (size_t i = 0; i < n; ++i) {
    if (pending_preds[i] == 0) ready.emplace(0, static_cast<uint32_t>(i));
  }

  // Per-iteration serialization barrier when pipelining is disabled.
  std::vector<uint64_t> iter_finish(g.iterations(), 0);
  std::vector<uint32_t> iter_remaining(g.iterations(), g.body_size());

  std::map<Resource, uint64_t> busy_slots;
  double energy = 0.0;
  uint64_t scheduled = 0;
  uint64_t cycle = 0;
  uint64_t makespan = 0;
  std::vector<uint32_t> deferred;

  while (scheduled < n) {
    // Count of each resource consumed this cycle.
    uint32_t used[5] = {0, 0, 0, 0, 0};
    deferred.clear();
    bool any = false;
    while (!ready.empty() && ready.top().first <= cycle) {
      uint32_t id = ready.top().second;
      ready.pop();
      const DddgNode& node = nodes[id];
      // Non-pipelined datapaths: an op of iteration i may not start before
      // iteration i-1 has fully finished.
      if (!resources.pipelined && node.iteration > 0) {
        if (iter_remaining[node.iteration - 1] > 0) {
          deferred.push_back(id);
          continue;
        }
        if (cycle < iter_finish[node.iteration - 1]) {
          ready.emplace(iter_finish[node.iteration - 1], id);
          continue;
        }
      }
      Resource r = ResourceFor(node.code);
      uint32_t ri = static_cast<uint32_t>(r);
      if (used[ri] >= resources.CountFor(r)) {
        deferred.push_back(id);  // structural hazard: retry next cycle
        continue;
      }
      ++used[ri];
      ++busy_slots[r];
      uint64_t f = cycle + LatencyFor(node.code);
      finish[id] = f;
      done[id] = true;
      makespan = std::max(makespan, f);
      energy += EnergyFemtojoulesFor(node.code);
      ++scheduled;
      any = true;
      for (uint32_t s : succs[id]) {
        if (--pending_preds[s] == 0) ready.emplace(f, s);
      }
      // Track iteration completion for the non-pipelined barrier.
      uint64_t& itf = iter_finish[node.iteration];
      itf = std::max(itf, f);
      --iter_remaining[node.iteration];
    }
    for (uint32_t id : deferred) ready.emplace(cycle + 1, id);
    if (!any && ready.empty()) break;  // defensive; should not happen
    ++cycle;
    (void)any;
  }
  NDP_CHECK_MSG(scheduled == n, "scheduler deadlock: cyclic dependence?");

  // For the non-pipelined barrier, iteration i completion must be final
  // before iteration i+1 starts; with our single pass over monotonically
  // increasing cycles that holds because ops only defer forward in time.

  ScheduleResult result;
  result.total_cycles = makespan;
  result.num_ops = n;
  result.dynamic_energy_fj = energy;

  // Steady-state II from the completion times of the last iterations.
  uint32_t half = g.iterations() / 2;
  uint64_t mid_finish = 0, last_finish = 0;
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i].iteration == half) mid_finish = std::max(mid_finish, finish[i]);
    if (nodes[i].iteration == g.iterations() - 1) {
      last_finish = std::max(last_finish, finish[i]);
    }
  }
  result.steady_state_ii = static_cast<double>(last_finish - mid_finish) /
                           static_cast<double>(g.iterations() - 1 - half);

  uint32_t loads_per_iter = 0;
  for (const IrOp& op : kernel.body) {
    if (op.code == OpCode::kLoad) ++loads_per_iter;
  }
  result.words_per_cycle =
      result.steady_state_ii > 0
          ? static_cast<double>(loads_per_iter) / result.steady_state_ii
          : 0.0;

  for (const auto& [r, slots] : busy_slots) {
    double capacity = static_cast<double>(resources.CountFor(r)) *
                      static_cast<double>(std::max<uint64_t>(1, makespan));
    result.utilization[r] = static_cast<double>(slots) / capacity;
  }
  return result;
}

DatapathSummary DatapathSummary::FromSchedule(const LoopKernel& kernel,
                                              const ScheduleResult& result) {
  DatapathSummary s;
  s.kernel_name = kernel.name;
  s.words_per_cycle = result.words_per_cycle;
  s.steady_state_ii = result.steady_state_ii;
  uint64_t loads = 0;
  for (const IrOp& op : kernel.body) {
    if (op.code == OpCode::kLoad) ++loads;
  }
  uint64_t iters = result.num_ops / std::max<size_t>(1, kernel.body.size());
  uint64_t words = loads * iters;
  s.energy_per_word_fj =
      words ? result.dynamic_energy_fj / static_cast<double>(words) : 0.0;
  return s;
}

}  // namespace ndp::accel
