// Kernel IR for the pre-RTL accelerator model (Aladdin stand-in, paper §3.1).
// A kernel is the body of one loop iteration expressed as a list of typed
// operations with explicit intra-iteration and loop-carried dependences —
// the "C-style representation of the workload being accelerated" that Aladdin
// converts into a dynamic data dependence graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ndp::accel {

/// Operation classes. Each maps to a functional-unit resource class.
enum class OpCode : uint8_t {
  kLoad,      ///< read one word from the DRAM IO buffer
  kStore,     ///< write one word toward DRAM
  kCmp,       ///< integer comparison (ALU)
  kAdd,       ///< integer add/sub (ALU)
  kMul,       ///< integer multiply (multiplier)
  kBitOp,     ///< and/or/shift/bit-insert (combinational bit logic)
  kMux,       ///< select (combinational)
};

const char* OpCodeToString(OpCode code);

/// Functional-unit resource classes the scheduler arbitrates.
enum class Resource : uint8_t { kMemRead, kMemWrite, kAlu, kMultiplier, kBitLogic };

Resource ResourceFor(OpCode code);
/// Execution latency in accelerator cycles.
uint32_t LatencyFor(OpCode code);
/// Dynamic energy per operation, in femtojoules (coarse 40 nm-class numbers).
double EnergyFemtojoulesFor(OpCode code);

/// \brief One operation in the loop body.
struct IrOp {
  OpCode code;
  std::string label;
  /// Indices (into the body) of same-iteration producers this op consumes.
  std::vector<uint16_t> deps;
  /// Indices of previous-iteration producers (loop-carried dependences).
  std::vector<uint16_t> carried_deps;
};

/// \brief A loop kernel: the unit Aladdin models.
struct LoopKernel {
  std::string name;
  std::vector<IrOp> body;

  /// Validates dependence indices (same-iteration deps must point backwards).
  bool Validate(std::string* error) const;
};

/// Hardware resources available to the datapath.
struct DatapathResources {
  uint32_t mem_read_ports = 1;   ///< words per cycle from the IO buffer
  uint32_t mem_write_ports = 1;  ///< words per cycle toward DRAM
  uint32_t alus = 2;             ///< the paper's two parallel ALUs (§2.2)
  uint32_t multipliers = 0;
  uint32_t bit_units = 8;  ///< cheap combinational logic + the offset counter
  bool pipelined = true;  ///< successive iterations may overlap

  uint32_t CountFor(Resource r) const {
    switch (r) {
      case Resource::kMemRead: return mem_read_ports;
      case Resource::kMemWrite: return mem_write_ports;
      case Resource::kAlu: return alus;
      case Resource::kMultiplier: return multipliers;
      case Resource::kBitLogic: return bit_units;
    }
    return 0;
  }
};

// -- Kernel library: the datapaths JAFAR implements ---------------------------

/// The select/filter kernel of §2.2: per 64-bit word, two parallel range
/// compares, an AND, and a bit-insert into the output buffer, plus the carried
/// row-offset increment.
LoopKernel MakeSelectKernel();

/// Single-compare select (=, <, >, <=, >=): one ALU comparison per word.
LoopKernel MakeSelectSinglePredicateKernel();

/// §4 "Aggregations": sum/min/max via a loop-carried accumulator.
LoopKernel MakeAggregateKernel();

/// §4 "Projections": stream words, select those whose position bit is set,
/// and emit them (load + bit-test + mux + store).
LoopKernel MakeProjectKernel();

/// §4 row-store variant: k predicates applied to k attributes of one tuple
/// per iteration (k loads, k compares, AND-reduce, bit-insert).
LoopKernel MakeRowStoreKernel(uint32_t num_predicates);

/// Semijoin probe (JSPIM-style): per 64-bit join key, `hash_count`
/// multiply-shift hash lanes each index the on-device Bloom filter SRAM
/// (mix → bit-index → SRAM word mux → bit test), AND-reduced into one
/// membership bit inserted into the output bitmap. Needs >= 1 multiplier;
/// the baseline select datapath has none, so probe-capable configs widen
/// the resource vector before scheduling.
LoopKernel MakeProbeKernel(uint32_t hash_count);

}  // namespace ndp::accel
