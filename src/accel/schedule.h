// Resource-constrained cycle-by-cycle DDDG scheduler — Aladdin's core step:
// the graph is "executed cycle-by-cycle by a breadth-first traversal that
// takes into account constraints like memory bandwidth and available
// functional units" (paper §3.1). The result is the accelerator's achievable
// throughput and energy, which configures jafar::Device.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "accel/dddg.h"
#include "accel/ir.h"
#include "util/status.h"

namespace ndp::accel {

/// \brief Outcome of scheduling a kernel onto a datapath.
struct ScheduleResult {
  uint64_t total_cycles = 0;         ///< makespan of the scheduled window
  double steady_state_ii = 0.0;      ///< cycles per iteration, steady state
  double words_per_cycle = 0.0;      ///< input words consumed per cycle
  uint64_t num_ops = 0;
  double dynamic_energy_fj = 0.0;    ///< femtojoules over the window
  std::map<Resource, double> utilization;  ///< busy-slots / (cycles * units)

  std::string ToString() const;
};

/// Schedules `kernel` unrolled over `iterations` iterations onto `resources`.
/// `iterations` should be large enough to reach steady state (>= 32).
Result<ScheduleResult> ScheduleKernel(const LoopKernel& kernel,
                                      const DatapathResources& resources,
                                      uint32_t iterations);

/// \brief Datapath parameters JAFAR's device model consumes.
///
/// This is the hand-off from the Aladdin-style model to the system simulator:
/// the device's word-processing rate is *derived* from the schedule, never
/// hard-coded.
struct DatapathSummary {
  std::string kernel_name;
  double words_per_cycle = 0.0;
  double steady_state_ii = 0.0;
  double energy_per_word_fj = 0.0;

  static DatapathSummary FromSchedule(const LoopKernel& kernel,
                                      const ScheduleResult& result);
};

}  // namespace ndp::accel
