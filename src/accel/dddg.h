// Dynamic data dependence graph: the kernel IR unrolled over concrete
// iterations, exactly as Aladdin traces a program into a DDDG before
// scheduling it onto constrained hardware (paper §3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "accel/ir.h"
#include "util/status.h"

namespace ndp::accel {

/// \brief One dynamic operation instance.
struct DddgNode {
  uint32_t iteration = 0;
  uint16_t op_index = 0;
  OpCode code = OpCode::kAdd;
  /// Node ids of producers (same-iteration and loop-carried).
  std::vector<uint32_t> preds;
};

/// \brief The unrolled graph.
class Dddg {
 public:
  /// Unrolls `kernel` over `iterations` iterations. Node id of (iter, op) is
  /// iter * body_size + op.
  static Result<Dddg> Build(const LoopKernel& kernel, uint32_t iterations);

  const std::vector<DddgNode>& nodes() const { return nodes_; }
  uint32_t iterations() const { return iterations_; }
  uint16_t body_size() const { return body_size_; }

  uint32_t NodeId(uint32_t iteration, uint16_t op) const {
    return iteration * body_size_ + op;
  }

  /// Number of edges in the graph (for reporting).
  uint64_t num_edges() const;

 private:
  std::vector<DddgNode> nodes_;
  uint32_t iterations_ = 0;
  uint16_t body_size_ = 0;
};

}  // namespace ndp::accel
