#include "accel/ir.h"

namespace ndp::accel {

const char* OpCodeToString(OpCode code) {
  switch (code) {
    case OpCode::kLoad: return "load";
    case OpCode::kStore: return "store";
    case OpCode::kCmp: return "cmp";
    case OpCode::kAdd: return "add";
    case OpCode::kMul: return "mul";
    case OpCode::kBitOp: return "bit";
    case OpCode::kMux: return "mux";
  }
  return "?";
}

Resource ResourceFor(OpCode code) {
  switch (code) {
    case OpCode::kLoad: return Resource::kMemRead;
    case OpCode::kStore: return Resource::kMemWrite;
    case OpCode::kCmp:
    case OpCode::kAdd: return Resource::kAlu;
    case OpCode::kMul: return Resource::kMultiplier;
    case OpCode::kBitOp:
    case OpCode::kMux: return Resource::kBitLogic;
  }
  return Resource::kAlu;
}

uint32_t LatencyFor(OpCode code) {
  switch (code) {
    case OpCode::kLoad: return 1;
    case OpCode::kStore: return 1;
    case OpCode::kCmp: return 1;
    case OpCode::kAdd: return 1;
    case OpCode::kMul: return 3;
    case OpCode::kBitOp: return 1;
    case OpCode::kMux: return 1;
  }
  return 1;
}

double EnergyFemtojoulesFor(OpCode code) {
  switch (code) {
    case OpCode::kLoad: return 120.0;   // IO-buffer read port
    case OpCode::kStore: return 140.0;
    case OpCode::kCmp: return 35.0;
    case OpCode::kAdd: return 40.0;
    case OpCode::kMul: return 520.0;
    case OpCode::kBitOp: return 8.0;
    case OpCode::kMux: return 6.0;
  }
  return 0.0;
}

bool LoopKernel::Validate(std::string* error) const {
  for (size_t i = 0; i < body.size(); ++i) {
    for (uint16_t d : body[i].deps) {
      if (d >= i) {
        if (error) {
          *error = "op " + std::to_string(i) + " (" + body[i].label +
                   ") has a forward/self same-iteration dependence on op " +
                   std::to_string(d);
        }
        return false;
      }
    }
    for (uint16_t d : body[i].carried_deps) {
      if (d >= body.size()) {
        if (error) {
          *error = "op " + std::to_string(i) +
                   " has an out-of-range carried dependence";
        }
        return false;
      }
    }
  }
  return true;
}

LoopKernel MakeSelectKernel() {
  LoopKernel k;
  k.name = "jafar_select_range";
  // 0: word = load(io_buffer)
  k.body.push_back({OpCode::kLoad, "load_word", {}, {}});
  // 1: ge = cmp(word, range_low)      -- ALU #1
  k.body.push_back({OpCode::kCmp, "cmp_low", {0}, {}});
  // 2: le = cmp(word, range_high)     -- ALU #2, parallel with op 1
  k.body.push_back({OpCode::kCmp, "cmp_high", {0}, {}});
  // 3: pass = ge & le
  k.body.push_back({OpCode::kBitOp, "and", {1, 2}, {}});
  // 4: out_bits = insert(out_bits, offset, pass)  -- carried output buffer
  k.body.push_back({OpCode::kBitOp, "bit_insert", {3}, {4}});
  // 5: offset = offset + 1            -- carried row offset (§2.2)
  k.body.push_back({OpCode::kBitOp, "offset_inc", {}, {5}});
  return k;
}

LoopKernel MakeSelectSinglePredicateKernel() {
  LoopKernel k;
  k.name = "jafar_select_single";
  k.body.push_back({OpCode::kLoad, "load_word", {}, {}});
  k.body.push_back({OpCode::kCmp, "cmp", {0}, {}});
  k.body.push_back({OpCode::kBitOp, "bit_insert", {1}, {2}});
  k.body.push_back({OpCode::kBitOp, "offset_inc", {}, {3}});
  return k;
}

LoopKernel MakeAggregateKernel() {
  LoopKernel k;
  k.name = "jafar_aggregate_sum";
  k.body.push_back({OpCode::kLoad, "load_word", {}, {}});
  // acc = acc + word: loop-carried accumulate serializes on the ALU chain.
  k.body.push_back({OpCode::kAdd, "accumulate", {0}, {1}});
  return k;
}

LoopKernel MakeProjectKernel() {
  LoopKernel k;
  k.name = "jafar_project";
  k.body.push_back({OpCode::kLoad, "load_word", {}, {}});
  k.body.push_back({OpCode::kBitOp, "test_position_bit", {}, {}});
  k.body.push_back({OpCode::kMux, "select_word", {0, 1}, {}});
  k.body.push_back({OpCode::kStore, "emit", {2}, {}});
  return k;
}

LoopKernel MakeRowStoreKernel(uint32_t num_predicates) {
  LoopKernel k;
  k.name = "jafar_rowstore_select_x" + std::to_string(num_predicates);
  std::vector<uint16_t> cmp_ids;
  for (uint32_t p = 0; p < num_predicates; ++p) {
    uint16_t load_id = static_cast<uint16_t>(k.body.size());
    k.body.push_back({OpCode::kLoad, "load_attr" + std::to_string(p), {}, {}});
    k.body.push_back(
        {OpCode::kCmp, "cmp_attr" + std::to_string(p), {load_id}, {}});
    cmp_ids.push_back(static_cast<uint16_t>(k.body.size() - 1));
  }
  // AND-reduce the predicate results pairwise.
  while (cmp_ids.size() > 1) {
    std::vector<uint16_t> next;
    for (size_t i = 0; i + 1 < cmp_ids.size(); i += 2) {
      k.body.push_back({OpCode::kBitOp, "and_reduce",
                        {cmp_ids[i], cmp_ids[i + 1]}, {}});
      next.push_back(static_cast<uint16_t>(k.body.size() - 1));
    }
    if (cmp_ids.size() % 2 == 1) next.push_back(cmp_ids.back());
    cmp_ids = std::move(next);
  }
  uint16_t insert_id = static_cast<uint16_t>(k.body.size());
  k.body.push_back({OpCode::kBitOp, "bit_insert", {cmp_ids[0]}, {insert_id}});
  k.body.push_back(
      {OpCode::kBitOp, "offset_inc", {}, {static_cast<uint16_t>(insert_id + 1)}});
  return k;
}

LoopKernel MakeProbeKernel(uint32_t hash_count) {
  LoopKernel k;
  k.name = "jafar_probe_x" + std::to_string(hash_count);
  // 0: key = load(io_buffer)
  k.body.push_back({OpCode::kLoad, "load_key", {}, {}});
  std::vector<uint16_t> test_ids;
  for (uint32_t h = 0; h < hash_count; ++h) {
    // Multiply-shift hash lane: mix is the multiply, the bit-index shift and
    // mask are combinational, the SRAM word read is a wide mux over the
    // filter array, and the bit test extracts one membership bit.
    uint16_t mix_id = static_cast<uint16_t>(k.body.size());
    k.body.push_back({OpCode::kMul, "mix" + std::to_string(h), {0}, {}});
    k.body.push_back(
        {OpCode::kBitOp, "bit_index" + std::to_string(h), {mix_id}, {}});
    k.body.push_back({OpCode::kMux, "sram_word" + std::to_string(h),
                      {static_cast<uint16_t>(mix_id + 1)}, {}});
    k.body.push_back({OpCode::kCmp, "bit_test" + std::to_string(h),
                      {static_cast<uint16_t>(mix_id + 2)}, {}});
    test_ids.push_back(static_cast<uint16_t>(k.body.size() - 1));
  }
  // AND-reduce the per-hash membership bits pairwise (all must be set).
  while (test_ids.size() > 1) {
    std::vector<uint16_t> next;
    for (size_t i = 0; i + 1 < test_ids.size(); i += 2) {
      k.body.push_back({OpCode::kBitOp, "and_reduce",
                        {test_ids[i], test_ids[i + 1]}, {}});
      next.push_back(static_cast<uint16_t>(k.body.size() - 1));
    }
    if (test_ids.size() % 2 == 1) next.push_back(test_ids.back());
    test_ids = std::move(next);
  }
  uint16_t insert_id = static_cast<uint16_t>(k.body.size());
  k.body.push_back({OpCode::kBitOp, "bit_insert", {test_ids[0]}, {insert_id}});
  k.body.push_back(
      {OpCode::kBitOp, "offset_inc", {}, {static_cast<uint16_t>(insert_id + 1)}});
  return k;
}

}  // namespace ndp::accel
