#include "accel/dddg.h"

namespace ndp::accel {

Result<Dddg> Dddg::Build(const LoopKernel& kernel, uint32_t iterations) {
  std::string error;
  if (!kernel.Validate(&error)) {
    return Status::InvalidArgument("kernel '" + kernel.name + "': " + error);
  }
  if (iterations == 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  Dddg g;
  g.iterations_ = iterations;
  g.body_size_ = static_cast<uint16_t>(kernel.body.size());
  g.nodes_.reserve(static_cast<size_t>(iterations) * kernel.body.size());
  for (uint32_t it = 0; it < iterations; ++it) {
    for (uint16_t op = 0; op < kernel.body.size(); ++op) {
      DddgNode n;
      n.iteration = it;
      n.op_index = op;
      n.code = kernel.body[op].code;
      for (uint16_t d : kernel.body[op].deps) {
        n.preds.push_back(g.NodeId(it, d));
      }
      if (it > 0) {
        for (uint16_t d : kernel.body[op].carried_deps) {
          n.preds.push_back(g.NodeId(it - 1, d));
        }
      }
      g.nodes_.push_back(std::move(n));
    }
  }
  return g;
}

uint64_t Dddg::num_edges() const {
  uint64_t e = 0;
  for (const auto& n : nodes_) e += n.preds.size();
  return e;
}

}  // namespace ndp::accel
