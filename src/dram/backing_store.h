// Functional contents of physical memory, kept separate from the timing
// model: the timing simulator decides *when* a burst completes, the backing
// store says *what bytes* it carried. Sparse 4 KB pages so a simulated 2 GB /
// 1 TB address space costs only what is actually touched.
//
// The page table is a lock-free two-level radix tree of atomic pointers so
// that partitions of a PartitionSet (per-channel timing wheels on separate
// threads) can touch disjoint rank regions concurrently: first-touch page
// installation races resolve by compare-and-swap (the loser frees its page),
// and every published page is fully zeroed before the release store, so
// contents are deterministic no matter which thread installs it. Concurrent
// accesses to the *same byte range* remain the caller's responsibility —
// rank ownership partitions the address space across devices, and host-side
// copies only ever target freshly allocated regions.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/macros.h"

namespace ndp::dram {

/// \brief Sparse byte-addressable physical memory. Untouched bytes read as 0.
class BackingStore {
 public:
  static constexpr size_t kPageSize = 4096;

  explicit BackingStore(uint64_t capacity_bytes)
      : capacity_(capacity_bytes), root_(NumLeaves(capacity_bytes)) {}
  ~BackingStore() {
    for (auto& slot : root_) {
      Leaf* leaf = slot.load(std::memory_order_relaxed);
      if (leaf == nullptr) continue;
      for (auto& page : leaf->pages) {
        delete[] page.load(std::memory_order_relaxed);
      }
      delete leaf;
    }
  }
  NDP_DISALLOW_COPY_AND_ASSIGN(BackingStore);

  uint64_t capacity() const { return capacity_; }

  void Write(uint64_t addr, const void* src, size_t n) {
    NDP_CHECK_MSG(addr + n <= capacity_, "backing store write out of range");
    const uint8_t* p = static_cast<const uint8_t*>(src);
    while (n > 0) {
      uint64_t page = addr / kPageSize;
      size_t off = addr % kPageSize;
      size_t chunk = std::min(n, kPageSize - off);
      std::memcpy(GetPage(page) + off, p, chunk);
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }

  void Read(uint64_t addr, void* dst, size_t n) const {
    NDP_CHECK_MSG(addr + n <= capacity_, "backing store read out of range");
    uint8_t* p = static_cast<uint8_t*>(dst);
    while (n > 0) {
      uint64_t page = addr / kPageSize;
      size_t off = addr % kPageSize;
      size_t chunk = std::min(n, kPageSize - off);
      const uint8_t* data = PageIfPresent(page);
      if (data == nullptr) {
        std::memset(p, 0, chunk);
      } else {
        std::memcpy(p, data + off, chunk);
      }
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }

  uint64_t Read64(uint64_t addr) const {
    uint64_t v;
    Read(addr, &v, 8);
    return v;
  }
  void Write64(uint64_t addr, uint64_t v) { Write(addr, &v, 8); }

  size_t resident_pages() const {
    return resident_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kLeafBits = 12;  ///< 4096 pages (16 MB) per leaf
  static constexpr size_t kLeafSlots = size_t{1} << kLeafBits;

  struct Leaf {
    std::atomic<uint8_t*> pages[kLeafSlots] = {};
  };

  static size_t NumLeaves(uint64_t capacity_bytes) {
    uint64_t pages = (capacity_bytes + kPageSize - 1) / kPageSize;
    return static_cast<size_t>((pages + kLeafSlots - 1) / kLeafSlots);
  }

  const uint8_t* PageIfPresent(uint64_t page) const {
    const Leaf* leaf = root_[page >> kLeafBits].load(std::memory_order_acquire);
    if (leaf == nullptr) return nullptr;
    return leaf->pages[page & (kLeafSlots - 1)].load(std::memory_order_acquire);
  }

  uint8_t* GetPage(uint64_t page) {
    std::atomic<Leaf*>& rslot = root_[page >> kLeafBits];
    Leaf* leaf = rslot.load(std::memory_order_acquire);
    if (leaf == nullptr) {
      Leaf* fresh = new Leaf();
      if (rslot.compare_exchange_strong(leaf, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        leaf = fresh;
      } else {
        delete fresh;  // another partition installed it first
      }
    }
    std::atomic<uint8_t*>& pslot = leaf->pages[page & (kLeafSlots - 1)];
    uint8_t* data = pslot.load(std::memory_order_acquire);
    if (data == nullptr) {
      uint8_t* fresh = new uint8_t[kPageSize]();
      if (pslot.compare_exchange_strong(data, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        data = fresh;
        resident_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete[] fresh;
      }
    }
    return data;
  }

  uint64_t capacity_;
  std::vector<std::atomic<Leaf*>> root_;
  std::atomic<size_t> resident_{0};
};

}  // namespace ndp::dram
