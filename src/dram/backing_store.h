// Functional contents of physical memory, kept separate from the timing
// model: the timing simulator decides *when* a burst completes, the backing
// store says *what bytes* it carried. Sparse 4 KB pages so a simulated 2 GB /
// 1 TB address space costs only what is actually touched.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "util/macros.h"

namespace ndp::dram {

/// \brief Sparse byte-addressable physical memory. Untouched bytes read as 0.
class BackingStore {
 public:
  static constexpr size_t kPageSize = 4096;

  explicit BackingStore(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}
  NDP_DISALLOW_COPY_AND_ASSIGN(BackingStore);

  uint64_t capacity() const { return capacity_; }

  void Write(uint64_t addr, const void* src, size_t n) {
    NDP_CHECK_MSG(addr + n <= capacity_, "backing store write out of range");
    const uint8_t* p = static_cast<const uint8_t*>(src);
    while (n > 0) {
      uint64_t page = addr / kPageSize;
      size_t off = addr % kPageSize;
      size_t chunk = std::min(n, kPageSize - off);
      std::memcpy(GetPage(page) + off, p, chunk);
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }

  void Read(uint64_t addr, void* dst, size_t n) const {
    NDP_CHECK_MSG(addr + n <= capacity_, "backing store read out of range");
    uint8_t* p = static_cast<uint8_t*>(dst);
    while (n > 0) {
      uint64_t page = addr / kPageSize;
      size_t off = addr % kPageSize;
      size_t chunk = std::min(n, kPageSize - off);
      auto it = pages_.find(page);
      if (it == pages_.end()) {
        std::memset(p, 0, chunk);
      } else {
        std::memcpy(p, it->second.get() + off, chunk);
      }
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }

  uint64_t Read64(uint64_t addr) const {
    uint64_t v;
    Read(addr, &v, 8);
    return v;
  }
  void Write64(uint64_t addr, uint64_t v) { Write(addr, &v, 8); }

  size_t resident_pages() const { return pages_.size(); }

 private:
  uint8_t* GetPage(uint64_t page) {
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      auto mem = std::make_unique<uint8_t[]>(kPageSize);
      std::memset(mem.get(), 0, kPageSize);
      it = pages_.emplace(page, std::move(mem)).first;
    }
    return it->second.get();
  }

  uint64_t capacity_;
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
};

}  // namespace ndp::dram
