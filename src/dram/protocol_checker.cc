#include "dram/protocol_checker.h"

#include <sstream>

#include "util/macros.h"

namespace ndp::dram {

namespace {

/// JEDEC allows postponing up to eight tREFI-spaced refreshes, so the hard
/// legality bound on the gap between refreshes is 9 x tREFI.
constexpr uint64_t kMaxPostponedRefreshes = 9;

}  // namespace

const char* TimingRuleToString(TimingRule rule) {
  switch (rule) {
    case TimingRule::kBankState: return "bank-state";
    case TimingRule::kTrcd: return "tRCD";
    case TimingRule::kTrp: return "tRP";
    case TimingRule::kTras: return "tRAS";
    case TimingRule::kTrc: return "tRC";
    case TimingRule::kTrrd: return "tRRD";
    case TimingRule::kTfaw: return "tFAW";
    case TimingRule::kTccd: return "tCCD";
    case TimingRule::kTwtr: return "tWTR";
    case TimingRule::kTrtp: return "tRTP";
    case TimingRule::kTwr: return "tWR";
    case TimingRule::kTrfc: return "tRFC";
    case TimingRule::kTrefi: return "tREFI";
    case TimingRule::kTmrd: return "tMRD";
    case TimingRule::kDataBus: return "data-bus";
    case TimingRule::kCmdBus: return "cmd-bus";
    case TimingRule::kBankArm: return "bank-arm";
    case TimingRule::kDrainTooEarly: return "drain-too-early";
    case TimingRule::kResultBus: return "result-bus";
    case TimingRule::kRefreshArmed: return "refresh-armed";
    case TimingRule::kProbeWrDuringLoad: return "probe-wr-during-load";
    case TimingRule::kProbeArmDuringLoad: return "probe-arm-during-load";
    case TimingRule::kProbeReentrantLoad: return "probe-reentrant-load";
  }
  return "unknown";
}

std::string ProtocolViolation::ToString() const {
  std::ostringstream os;
  os << "[" << TimingRuleToString(rule) << "] cycle " << bus_cycle << " rank "
     << rank << " bank " << bank << ": " << message;
  return os.str();
}

void ProtocolChecker::Configure(const DramTiming* timing,
                                const DramOrganization* org) {
  timing_ = timing;
  org_ = org;
  tck_ = timing->tck_ps;
  ranks_.assign(org->ranks_per_channel, RankState{});
  for (auto& r : ranks_) r.banks.assign(org->banks_per_rank, BankState{});
  filters_.assign(org->ranks_per_channel, nullptr);
  last_cmd_tick_ = kNever;
  data_bus_busy_end_ = 0;
  commands_observed_ = 0;
  violations_.clear();
}

sim::Tick ProtocolChecker::Cycles(uint32_t n) const { return n * tck_; }

uint64_t ProtocolChecker::CycleOf(sim::Tick t) const { return t / tck_; }

std::string ProtocolChecker::Describe(const Command& cmd, sim::Tick t) const {
  std::ostringstream os;
  os << CommandTypeToString(cmd.type) << " r" << cmd.rank << "/b" << cmd.bank
     << " @cycle " << CycleOf(t);
  return os.str();
}

void ProtocolChecker::Flag(TimingRule rule, const Command& cmd, sim::Tick t,
                           sim::Tick since, const char* what) {
  ProtocolViolation v;
  v.rule = rule;
  v.tick = t;
  v.bus_cycle = CycleOf(t);
  v.rank = cmd.rank;
  v.bank = cmd.bank;
  std::ostringstream os;
  os << Describe(cmd, t);
  if (since != kNever) {
    os << " after " << what << " @cycle " << CycleOf(since) << " ("
       << (t >= since ? CycleOf(t - since) : 0) << " cycles elapsed)";
  } else if (what != nullptr) {
    os << ": " << what;
  }
  v.message = os.str();
  if (fail_fast_) {
    std::fprintf(stderr, "DDR3 protocol violation: %s\n", v.ToString().c_str());
    std::abort();
  }
  violations_.push_back(std::move(v));
}

void ProtocolChecker::Observe(const Command& cmd, sim::Tick t) {
  NDP_CHECK_MSG(timing_ != nullptr, "ProtocolChecker::Configure not called");
  NDP_CHECK(cmd.rank < ranks_.size());
  ++commands_observed_;

  // Channel-wide command-bus legality: one command per bus cycle, on an edge.
  if (t % tck_ != 0) {
    Flag(TimingRule::kCmdBus, cmd, t, kNever,
         "issue tick not aligned to a bus clock edge");
  }
  if (last_cmd_tick_ != kNever && t < last_cmd_tick_ + tck_) {
    Flag(TimingRule::kCmdBus, cmd, t, last_cmd_tick_, "previous command");
  }
  last_cmd_tick_ = (last_cmd_tick_ == kNever) ? t : std::max(last_cmd_tick_, t);

  RankState& rank = ranks_[cmd.rank];

  // tMRD: every command to the rank must wait out a preceding MRS.
  if (cmd.type != CommandType::kModeRegSet && rank.last_mrs != kNever &&
      t < rank.last_mrs + Cycles(timing_->tmrd)) {
    Flag(TimingRule::kTmrd, cmd, t, rank.last_mrs, "MRS");
  }

  // Refresh-interval audit: the rank must be refreshed at least every
  // 9 x tREFI (JEDEC's maximum-postponement bound). Flagged once per lapse.
  if (expect_refresh_ && !rank.refresh_overdue_flagged) {
    sim::Tick base = rank.last_refresh == kNever ? 0 : rank.last_refresh;
    if (t > base + kMaxPostponedRefreshes * Cycles(timing_->trefi)) {
      rank.refresh_overdue_flagged = true;
      Flag(TimingRule::kTrefi, cmd, t, base,
           rank.last_refresh == kNever ? "start of time (no REF ever seen)"
                                       : "last REF");
    }
  }

  switch (cmd.type) {
    case CommandType::kActivate:
      NDP_CHECK(cmd.bank < rank.banks.size());
      ObserveActivate(cmd, t, rank);
      break;
    case CommandType::kRead:
    case CommandType::kWrite:
      NDP_CHECK(cmd.bank < rank.banks.size());
      ObserveColumn(cmd, t, rank);
      break;
    case CommandType::kPrecharge:
      NDP_CHECK(cmd.bank < rank.banks.size());
      ObservePrecharge(cmd, t, rank);
      break;
    case CommandType::kRefresh:
      ObserveRefresh(cmd, t, rank);
      break;
    case CommandType::kModeRegSet:
      ObserveModeRegSet(cmd, t, rank);
      break;
    case CommandType::kBankArm:
      NDP_CHECK(cmd.bank < rank.banks.size());
      ObserveBankArm(cmd, t, rank);
      break;
    case CommandType::kBankDisarm:
      NDP_CHECK(cmd.bank < rank.banks.size());
      ObserveBankDisarm(cmd, t, rank);
      break;
  }
}

void ProtocolChecker::set_bank_filter_timing(uint32_t rank,
                                             const BankFilterTiming* filter) {
  NDP_CHECK(rank < filters_.size());
  filters_[rank] = filter;
}

void ProtocolChecker::NoteBankFilterReset(uint32_t rank) {
  NDP_CHECK(rank < ranks_.size());
  for (BankState& bank : ranks_[rank].banks) {
    bank.armed = false;
    bank.pending_fill = false;
    bank.fill_ready = kNever;
    bank.last_filter_read = kNever;
  }
}

void ProtocolChecker::NoteProbeFilterLoadStart(uint32_t rank, sim::Tick t) {
  NDP_CHECK(rank < ranks_.size());
  RankState& r = ranks_[rank];
  if (r.probe_load_active) {
    // Synthesized command context: the load window opens out-of-band (no DDR3
    // command of its own), so describe it as a rank-wide event at bank 0.
    Command cmd{CommandType::kRead, rank, 0};
    Flag(TimingRule::kProbeReentrantLoad, cmd, t, r.probe_load_start,
         "probe filter load already active; started");
  }
  r.probe_load_active = true;
  r.probe_load_start = t;
}

void ProtocolChecker::NoteProbeFilterLoadDone(uint32_t rank) {
  NDP_CHECK(rank < ranks_.size());
  ranks_[rank].probe_load_active = false;
  ranks_[rank].probe_load_start = kNever;
}

void ProtocolChecker::ObserveActivate(const Command& cmd, sim::Tick t,
                                      RankState& rank) {
  BankState& bank = rank.banks[cmd.bank];
  if (bank.row_open) {
    Flag(TimingRule::kBankState, cmd, t, kNever,
         "ACT to a bank whose row is still open (missing PRE)");
  }
  if (bank.last_pre != kNever && t < bank.last_pre + Cycles(timing_->trp)) {
    Flag(TimingRule::kTrp, cmd, t, bank.last_pre, "PRE");
  }
  if (bank.last_act != kNever && t < bank.last_act + Cycles(timing_->trc)) {
    Flag(TimingRule::kTrc, cmd, t, bank.last_act, "previous ACT (same bank)");
  }
  if (rank.refresh_end != kNever && t < rank.refresh_end) {
    Flag(TimingRule::kTrfc, cmd, t, rank.refresh_end - Cycles(timing_->trfc),
         "REF");
  }
  if (rank.last_act_any != kNever &&
      t < rank.last_act_any + Cycles(timing_->trrd)) {
    Flag(TimingRule::kTrrd, cmd, t, rank.last_act_any, "ACT (other bank)");
  }
  if (rank.act_history.size() >= 4 &&
      t < rank.act_history.front() + Cycles(timing_->tfaw)) {
    Flag(TimingRule::kTfaw, cmd, t, rank.act_history.front(),
         "fourth-to-last ACT");
  }
  bank.row_open = true;
  bank.row = cmd.row;
  bank.last_act = t;
  rank.last_act_any = (rank.last_act_any == kNever)
                          ? t
                          : std::max(rank.last_act_any, t);
  rank.act_history.push_back(t);
  while (rank.act_history.size() > 4) rank.act_history.pop_front();
}

void ProtocolChecker::ObserveColumn(const Command& cmd, sim::Tick t,
                                    RankState& rank) {
  const bool is_read = cmd.type == CommandType::kRead;
  BankState& bank = rank.banks[cmd.bank];
  if (!bank.row_open) {
    Flag(TimingRule::kBankState, cmd, t, kNever,
         is_read ? "RD to a bank with no open row"
                 : "WR to a bank with no open row");
  } else if (bank.row != cmd.row) {
    Flag(TimingRule::kBankState, cmd, t, kNever,
         "column command targets a row other than the open one");
  }
  if (bank.last_act != kNever && t < bank.last_act + Cycles(timing_->trcd)) {
    Flag(TimingRule::kTrcd, cmd, t, bank.last_act, "ACT");
  }
  if (!is_read && rank.probe_load_active) {
    Flag(TimingRule::kProbeWrDuringLoad, cmd, t, rank.probe_load_start,
         "probe filter load start (WR could tear the image mid-latch)");
  }
  if (is_read && bank.armed) {
    // Filter-mode RD: the burst feeds the bank's comparator and never drives
    // the shared IO path, so tCCD/tWTR/data-bus do not apply. Pacing is the
    // comparator's own throughput bound instead.
    const BankFilterTiming* filter = filters_[cmd.rank];
    if (filter != nullptr && bank.last_filter_read != kNever &&
        t < bank.last_filter_read + Cycles(filter->min_rd_spacing_cycles)) {
      Flag(TimingRule::kTccd, cmd, t, bank.last_filter_read,
           "previous filter RD (comparator-rate spacing)");
    }
    bank.last_read = t;
    bank.last_filter_read = t;
    bank.pending_fill = true;
    bank.fill_ready =
        filter != nullptr ? t + Cycles(filter->fill_latency_cycles) : t;
    return;
  }
  if (rank.last_column_cmd != kNever &&
      t < rank.last_column_cmd + Cycles(timing_->tccd)) {
    Flag(TimingRule::kTccd, cmd, t, rank.last_column_cmd,
         "previous column command");
  }
  if (is_read && rank.write_data_end_any != kNever &&
      t < rank.write_data_end_any + Cycles(timing_->twtr)) {
    Flag(TimingRule::kTwtr, cmd, t, rank.write_data_end_any,
         "end of write data");
  }
  // CL/CWL legality audited as data-bus occupancy: project this burst's data
  // window and require it to start no earlier than the previous burst ends.
  const uint32_t cas = is_read ? timing_->cl : timing_->cwl;
  const sim::Tick data_start = t + Cycles(cas);
  const sim::Tick data_end = data_start + Cycles(timing_->tburst);
  if (data_start < data_bus_busy_end_) {
    Flag(TimingRule::kDataBus, cmd, t,
         data_bus_busy_end_ - Cycles(timing_->tburst),
         "previous burst still on the data bus; CL/CWL-projected start");
  }
  data_bus_busy_end_ = std::max(data_bus_busy_end_, data_end);
  rank.last_column_cmd = (rank.last_column_cmd == kNever)
                             ? t
                             : std::max(rank.last_column_cmd, t);
  if (is_read) {
    bank.last_read = t;
  } else {
    bank.write_data_end = data_end;
    rank.write_data_end_any = (rank.write_data_end_any == kNever)
                                  ? data_end
                                  : std::max(rank.write_data_end_any, data_end);
  }
}

void ProtocolChecker::ObservePrecharge(const Command& cmd, sim::Tick t,
                                       RankState& rank) {
  BankState& bank = rank.banks[cmd.bank];
  if (!bank.row_open) return;  // PRE to an idle bank is a legal NOP
  if (bank.last_act != kNever && t < bank.last_act + Cycles(timing_->tras)) {
    Flag(TimingRule::kTras, cmd, t, bank.last_act, "ACT");
  }
  if (bank.last_read != kNever && t < bank.last_read + Cycles(timing_->trtp)) {
    Flag(TimingRule::kTrtp, cmd, t, bank.last_read, "RD");
  }
  if (bank.write_data_end != kNever &&
      t < bank.write_data_end + Cycles(timing_->twr)) {
    Flag(TimingRule::kTwr, cmd, t, bank.write_data_end, "end of write data");
  }
  if (bank.armed && bank.pending_fill) {
    // Draining PRE: the accumulator streams out over the per-rank result bus.
    if (bank.fill_ready != kNever && t < bank.fill_ready) {
      Flag(TimingRule::kDrainTooEarly, cmd, t, bank.last_filter_read,
           "filter RD whose match bits have not latched yet");
    }
    if (rank.result_bus_end != kNever && t < rank.result_bus_end) {
      Flag(TimingRule::kResultBus, cmd, t, rank.result_bus_end,
           "another bank's drain still on the result bus; ends");
    }
    const BankFilterTiming* filter = filters_[cmd.rank];
    rank.result_bus_end =
        filter != nullptr ? t + Cycles(filter->drain_cycles) : t;
    bank.pending_fill = false;
  }
  bank.row_open = false;
  bank.last_pre = t;
}

void ProtocolChecker::ObserveRefresh(const Command& cmd, sim::Tick t,
                                     RankState& rank) {
  for (const BankState& bank : rank.banks) {
    if (bank.armed) {
      Flag(TimingRule::kRefreshArmed, cmd, t, kNever,
           "REF to a rank with armed banks (disarm before refresh)");
      break;
    }
  }
  for (uint32_t b = 0; b < rank.banks.size(); ++b) {
    const BankState& bank = rank.banks[b];
    if (bank.row_open) {
      Flag(TimingRule::kBankState, cmd, t, kNever,
           "REF with a row still open (precharge-all must come first)");
      break;
    }
  }
  for (const BankState& bank : rank.banks) {
    if (bank.last_pre != kNever && t < bank.last_pre + Cycles(timing_->trp)) {
      Flag(TimingRule::kTrp, cmd, t, bank.last_pre, "PRE");
      break;
    }
  }
  if (rank.refresh_end != kNever && t < rank.refresh_end) {
    Flag(TimingRule::kTrfc, cmd, t, rank.refresh_end - Cycles(timing_->trfc),
         "previous REF");
  }
  rank.refresh_end = t + Cycles(timing_->trfc);
  rank.last_refresh = t;
  rank.refresh_overdue_flagged = false;
}

void ProtocolChecker::ObserveModeRegSet(const Command& cmd, sim::Tick t,
                                        RankState& rank) {
  for (const BankState& bank : rank.banks) {
    if (bank.row_open) {
      Flag(TimingRule::kBankState, cmd, t, kNever,
           "MRS with a row still open (all banks must be precharged)");
      break;
    }
  }
  for (const BankState& bank : rank.banks) {
    if (bank.last_pre != kNever && t < bank.last_pre + Cycles(timing_->trp)) {
      Flag(TimingRule::kTrp, cmd, t, bank.last_pre, "PRE");
      break;
    }
  }
  if (rank.refresh_end != kNever && t < rank.refresh_end) {
    Flag(TimingRule::kTrfc, cmd, t, rank.refresh_end - Cycles(timing_->trfc),
         "REF");
  }
  if (rank.last_mrs != kNever && t < rank.last_mrs + Cycles(timing_->tmrd)) {
    Flag(TimingRule::kTmrd, cmd, t, rank.last_mrs, "previous MRS");
  }
  rank.last_mrs = t;
}

void ProtocolChecker::ObserveBankArm(const Command& cmd, sim::Tick t,
                                     RankState& rank) {
  BankState& bank = rank.banks[cmd.bank];
  if (filters_[cmd.rank] == nullptr) {
    Flag(TimingRule::kBankArm, cmd, t, kNever,
         "ARM without bank filter timing installed");
    return;  // do not commit: the device model rejected this command too
  }
  if (bank.armed) {
    Flag(TimingRule::kBankArm, cmd, t, kNever,
         "ARM to an already-armed bank (double arm)");
  }
  if (bank.row_open) {
    Flag(TimingRule::kBankArm, cmd, t, kNever,
         "ARM to a bank with an open row (precharge first)");
  }
  if (rank.probe_load_active) {
    Flag(TimingRule::kProbeArmDuringLoad, cmd, t, rank.probe_load_start,
         "probe filter load start (comparator SRAM port is busy latching)");
  }
  if (rank.refresh_end != kNever && t < rank.refresh_end) {
    Flag(TimingRule::kTrfc, cmd, t, rank.refresh_end - Cycles(timing_->trfc),
         "REF");
  }
  bank.armed = true;
  bank.pending_fill = false;
  bank.fill_ready = kNever;
  bank.last_filter_read = kNever;
}

void ProtocolChecker::ObserveBankDisarm(const Command& cmd, sim::Tick t,
                                        RankState& rank) {
  BankState& bank = rank.banks[cmd.bank];
  if (!bank.armed) {
    Flag(TimingRule::kBankArm, cmd, t, kNever,
         "DISARM to a bank that is not armed");
  }
  if (bank.row_open) {
    Flag(TimingRule::kBankArm, cmd, t, kNever,
         "DISARM to a bank with an open row (drain via PRE first)");
  }
  bank.armed = false;
  bank.pending_fill = false;
  bank.fill_ready = kNever;
  bank.last_filter_read = kNever;
}

std::string ProtocolChecker::Report() const {
  std::string out;
  for (const ProtocolViolation& v : violations_) {
    out += v.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace ndp::dram
