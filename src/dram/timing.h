// DDR3 SDRAM timing parameters (paper §2.1). All constraints are expressed in
// bus-clock cycles, the unit datasheets use; the Bank/Rank state machines
// convert to global picosecond ticks through the bus ClockDomain.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ndp::dram {

/// \brief Timing parameters of one DDR3 speed grade, in bus-clock cycles.
///
/// The four parameters the paper names (CL, tRCD, tRP, tRAS) plus the rest of
/// the JEDEC set needed for a faithful command scheduler.
struct DramTiming {
  std::string name;        ///< e.g. "DDR3-1600K"
  uint64_t tck_ps = 1250;  ///< bus clock period (800 MHz for DDR3-1600)

  uint32_t cl = 11;     ///< CAS latency: RD command to first data
  uint32_t cwl = 8;     ///< CAS write latency: WR command to first data
  uint32_t trcd = 11;   ///< ACT to first RD/WR on the same bank
  uint32_t trp = 11;    ///< PRE to next ACT on the same bank
  uint32_t tras = 28;   ///< ACT to PRE on the same bank
  uint32_t trc = 39;    ///< ACT to next ACT on the same bank (tRAS + tRP)
  uint32_t tccd = 4;    ///< column-command to column-command, same rank
  uint32_t tburst = 4;  ///< data bus occupancy of one BL8 burst
  uint32_t twr = 12;    ///< end of write data to PRE
  uint32_t twtr = 6;    ///< end of write data to next RD, same rank
  uint32_t trtp = 6;    ///< RD to PRE
  uint32_t trrd = 5;    ///< ACT to ACT, different banks of one rank
  uint32_t tfaw = 24;   ///< window in which at most four ACTs may issue
  uint32_t trfc = 208;  ///< refresh command duration (4 Gb-class device)
  uint32_t trefi = 6240;  ///< average refresh interval (7.8 us at 800 MHz)
  uint32_t tmrd = 4;    ///< mode-register set to any other command

  /// DDR3-1600 11-11-11 (the configuration the paper's numbers imply: ~13 ns
  /// CAS latency, 800 MHz bus, 1600 MT/s).
  static DramTiming DDR3_1600();
  /// DDR3-1066 7-7-7, a slower grade used in sensitivity tests.
  static DramTiming DDR3_1066();
  /// DDR3-1866 13-13-13, a faster grade used in sensitivity tests.
  static DramTiming DDR3_1866();

  sim::ClockDomain BusClock() const { return sim::ClockDomain(tck_ps); }

  /// CAS latency in nanoseconds (the paper quotes ~13 ns).
  double CasLatencyNs() const {
    return static_cast<double>(cl) * static_cast<double>(tck_ps) / 1000.0;
  }
};

/// \brief Geometry of the simulated memory system.
struct DramOrganization {
  uint32_t channels = 1;
  uint32_t ranks_per_channel = 1;
  uint32_t banks_per_rank = 8;
  uint32_t rows_per_bank = 32768;
  uint32_t row_size_bytes = 8192;  ///< per paper §3.3: 8 KB rows
  uint32_t bus_width_bits = 64;    ///< 64-bit data bus per channel
  uint32_t burst_length = 8;       ///< 8n-prefetch (DDR3)

  /// Bytes transferred by one RD/WR burst (64 bytes for a 64-bit BL8 bus).
  uint32_t BytesPerBurst() const { return bus_width_bits / 8 * burst_length; }
  /// Burst-granularity column positions per row.
  uint32_t BurstsPerRow() const { return row_size_bytes / BytesPerBurst(); }
  uint64_t BytesPerRank() const {
    return static_cast<uint64_t>(banks_per_rank) * rows_per_bank * row_size_bytes;
  }
  uint64_t TotalBytes() const {
    return BytesPerRank() * ranks_per_channel * channels;
  }
};

}  // namespace ndp::dram
