// A memory channel: the ranks behind one 64-bit data bus plus the shared
// command-bus and data-bus occupancy rules. Both the host memory controller
// and JAFAR issue through the channel, so bus collisions between the two
// agents are physically impossible to mis-model.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/command.h"
#include "dram/protocol_checker.h"
#include "dram/rank.h"
#include "dram/timing.h"
#include "util/status.h"

namespace ndp::dram {

/// \brief One channel: ranks + command bus (one command per bus cycle) +
/// data bus (one burst at a time).
class Channel {
 public:
  Channel() = default;

  void Configure(const DramTiming* timing, const DramOrganization* org);

  uint32_t num_ranks() const { return static_cast<uint32_t>(ranks_.size()); }
  Rank& rank(uint32_t r) { return ranks_[r]; }
  const Rank& rank(uint32_t r) const { return ranks_[r]; }

  /// Earliest tick (aligned to a bus clock edge) at which `cmd` may issue,
  /// including command-bus and data-bus availability.
  sim::Tick EarliestIssue(const Command& cmd) const;

  /// Issues `cmd` at edge-aligned tick `t`. For RD/WR returns the tick the
  /// last data beat completes. Fails with TimingViolation if too early.
  Result<sim::Tick> Issue(const Command& cmd, sim::Tick t);

  /// Installs the v2 per-bank comparator timing on one rank (and the shadow
  /// checker, when compiled in). Must precede any kBankArm to that rank.
  void SetBankFilterTiming(uint32_t rank, const BankFilterTiming* filter);

  /// Out-of-band force-release of a rank's bank filters on job abort; keeps
  /// the shadow checker's armed-state in sync with the device model.
  void ResetBankFilters(uint32_t rank);

  /// Out-of-band notes bracketing the probe engine's Bloom filter-image load
  /// on one rank (shadow checker only): WR/ARM commands to the rank inside
  /// the window are audited as probe-flow violations. Done is idempotent so
  /// job teardown can close the window unconditionally.
  void NoteProbeFilterLoadStart(uint32_t rank, sim::Tick t);
  void NoteProbeFilterLoadDone(uint32_t rank);

  const DramTiming& timing() const { return *timing_; }
  const DramOrganization& organization() const { return *org_; }
  sim::ClockDomain bus_clock() const { return bus_; }

  /// Total data-bus busy time, for bandwidth-utilization reporting.
  sim::Tick data_bus_busy_ticks() const { return data_bus_busy_ticks_; }

#ifdef NDP_PROTOCOL_CHECK
  /// Shadow JEDEC auditor fed by Issue(). Fail-fast by default (an illegal
  /// schedule aborts at the offending command); tests that want to inspect
  /// recorded violations instead call set_fail_fast(false) up front.
  ProtocolChecker& protocol_checker() { return checker_; }
  const ProtocolChecker& protocol_checker() const { return checker_; }
#endif

 private:
  const DramTiming* timing_ = nullptr;
  const DramOrganization* org_ = nullptr;
  sim::ClockDomain bus_;
  std::vector<Rank> ranks_;
  sim::Tick cmd_bus_next_free_ = 0;
  sim::Tick data_bus_free_at_ = 0;
  sim::Tick data_bus_busy_ticks_ = 0;
#ifdef NDP_PROTOCOL_CHECK
  ProtocolChecker checker_;
#endif
};

}  // namespace ndp::dram
