#include "dram/controller.h"

#include <algorithm>

#include "util/logging.h"
#include "util/macros.h"

namespace ndp::dram {

MemoryController::MemoryController(sim::EventQueue* eq, Channel* channel,
                                   const AddressMapper* mapper,
                                   ControllerConfig config,
                                   const StatsScope& stats)
    : sim::TickingComponent(eq, channel->bus_clock()),
      channel_(channel),
      mapper_(mapper),
      config_(config),
      bus_(channel->bus_clock()) {
  stats.Counter("reads_served", &counters_.reads_served);
  stats.Counter("writes_served", &counters_.writes_served);
  stats.Counter("row_hits", &counters_.row_hits);
  stats.Counter("row_misses", &counters_.row_misses);
  stats.Counter("row_conflicts", &counters_.row_conflicts);
  // Busy-time counters are transition-timestamp based; settle them to the
  // current tick on read so snapshots taken mid-busy-period are exact.
  stats.Counter("rc_busy_cycles", std::function<uint64_t()>([this] {
    return counters().read_queue_busy_ticks / bus_.period_ps();
  }));
  stats.Counter("wc_busy_cycles", std::function<uint64_t()>([this] {
    return counters().write_queue_busy_ticks / bus_.period_ps();
  }));
  stats.Histogram("idle_cycles", &idle_hist_);
  next_refresh_due_.resize(channel->num_ranks());
  sim::Tick trefi = channel->timing().trefi * bus_.period_ps();
  for (uint32_t r = 0; r < channel->num_ranks(); ++r) {
    // Stagger refreshes across ranks so they do not collide.
    next_refresh_due_[r] = trefi + r * (trefi / std::max(1u, channel->num_ranks()));
  }
  idle_since_ = eq->Now();
  if (config_.refresh_enabled) ScheduleRefreshWake();
}

MemoryController::~MemoryController() {
  if (refresh_wake_.scheduled()) event_queue()->Cancel(&refresh_wake_);
}

Status MemoryController::Enqueue(const Request& req) {
  NDP_ASSIGN_OR_RETURN(DramLocation loc, mapper_->Decode(req.addr));
  sim::Tick now = event_queue()->Now();
  if (req.is_write) {
    if (write_q_.size() >= config_.write_queue_capacity) {
      return Status::ResourceExhausted("write queue full");
    }
    write_q_.push_back({req, loc, now});
  } else {
    if (read_q_.size() >= config_.read_queue_capacity) {
      return Status::ResourceExhausted("read queue full");
    }
    read_q_.push_back({req, loc, now});
  }
  NoteQueueStateChange(now);
  Wake();
  return Status::OK();
}

void MemoryController::TransferOwnership(uint32_t rank, RankOwner new_owner,
                                         std::function<void(sim::Tick)> done) {
  NDP_CHECK(rank < channel_->num_ranks());
  uint32_t mr3 = channel_->rank(rank).mode_register(3);
  uint32_t value = (new_owner == RankOwner::kAccelerator)
                       ? (mr3 | kMr3MprEnableBit)
                       : (mr3 & ~kMr3MprEnableBit);
  mrs_q_.push_back(MrsOp{rank, value, std::move(done), false});
  Wake();
}

void MemoryController::NoteQueueStateChange(sim::Tick now) {
  // Read-queue busy interval tracking.
  if (!read_q_.empty() && !read_busy_since_) {
    read_busy_since_ = now;
  } else if (read_q_.empty() && read_busy_since_) {
    counters_.read_queue_busy_ticks += now - *read_busy_since_;
    read_busy_since_.reset();
  }
  if (!write_q_.empty() && !write_busy_since_) {
    write_busy_since_ = now;
  } else if (write_q_.empty() && write_busy_since_) {
    counters_.write_queue_busy_ticks += now - *write_busy_since_;
    write_busy_since_.reset();
  }
  // Both-empty ("memory controller idle", paper §3.3) interval tracking.
  bool idle = read_q_.empty() && write_q_.empty();
  if (idle && !idle_since_) {
    idle_since_ = now;
  } else if (!idle && idle_since_) {
    double cycles = static_cast<double>(now - *idle_since_) /
                    static_cast<double>(bus_.period_ps());
    if (now > *idle_since_) idle_hist_.Add(cycles);
    idle_since_.reset();
  }
}

ControllerCounters MemoryController::counters() const {
  ControllerCounters c = counters_;
  sim::Tick now = event_queue()->Now();
  if (read_busy_since_) c.read_queue_busy_ticks += now - *read_busy_since_;
  if (write_busy_since_) c.write_queue_busy_ticks += now - *write_busy_since_;
  return c;
}

void MemoryController::ResetCounters() {
  counters_ = ControllerCounters{};
  sim::Tick now = event_queue()->Now();
  if (read_busy_since_) read_busy_since_ = now;
  if (write_busy_since_) write_busy_since_ = now;
  if (idle_since_) idle_since_ = now;
  idle_hist_ = Histogram(0, 4000, 80);
}

sim::Tick MemoryController::RefreshEmergencyAt(uint32_t rank) const {
  // JEDEC lets a DDR3 device postpone up to eight refreshes, i.e. the REF may
  // run as late as 8 x tREFI past its due point before retention is at risk.
  // An accelerator-owned rank is left alone until one tREFI of that budget
  // remains; past this point refresh outranks ownership.
  return next_refresh_due_[rank] +
         7 * channel_->timing().trefi * bus_.period_ps();
}

void MemoryController::ScheduleRefreshWake() {
  // Host-owned ranks refresh as soon as they are due; accelerator-owned ranks
  // sleep until their emergency deadline (an ownership hand-back in between
  // wakes the controller through the MRS queue anyway).
  sim::Tick due = sim::EventNode::kNever;
  for (uint32_t r = 0; r < channel_->num_ranks(); ++r) {
    sim::Tick t = channel_->rank(r).owner() == RankOwner::kHost
                      ? next_refresh_due_[r]
                      : RefreshEmergencyAt(r);
    due = std::min(due, t);
  }
  sim::Tick at = std::max(due, event_queue()->Now());
  if (refresh_wake_.scheduled()) {
    if (refresh_wake_.when() <= at) return;  // an earlier wake is pending
    event_queue()->Cancel(&refresh_wake_);
  }
  event_queue()->Schedule(at, &refresh_wake_);
}

bool MemoryController::TryRefresh(sim::Tick now) {
  if (!config_.refresh_enabled) return false;
  // Find a rank whose refresh is due. A due refresh on an accelerator-owned
  // rank is postponed — until the JEDEC postponement budget nearly runs out,
  // at which point the controller steals the rank back: the drain below
  // closes JAFAR's rows and the device sequencer backs off (RefreshClaims)
  // until the REF completes.
  if (!refresh_in_progress_) {
    bool due = false;
    for (uint32_t r = 0; r < channel_->num_ranks(); ++r) {
      if (now < next_refresh_due_[r]) continue;
      if (channel_->rank(r).owner() != RankOwner::kHost &&
          now < RefreshEmergencyAt(r)) {
        continue;
      }
      refresh_rank_ = r;
      due = true;
      break;
    }
    if (!due) {
      // Re-arm the wake: the nearest deadline may now be an emergency one.
      ScheduleRefreshWake();
      return false;
    }
    refresh_in_progress_ = true;
  }
  Rank& rank = channel_->rank(refresh_rank_);
  // An armed bank's comparator sits on the sense-amp path, so REF may not
  // issue while any bank is in filter mode — and a controller PRE to an
  // armed bank would trigger an accumulator drain the device still owns.
  // Keep ticking: the device sequencer sees RefreshClaims() and disarms.
  if (rank.AnyBankArmed()) return false;
  // Close any open banks first.
  for (uint32_t b = 0; b < rank.num_banks(); ++b) {
    if (rank.bank(b).has_open_row()) {
      Command pre{CommandType::kPrecharge, refresh_rank_, b};
      if (channel_->EarliestIssue(pre) <= now) {
        NDP_CHECK(channel_->Issue(pre, now).ok());
        return true;  // one command per cycle
      }
      return false;  // must wait; keep ticking
    }
  }
  Command ref{CommandType::kRefresh, refresh_rank_};
  if (channel_->EarliestIssue(ref) <= now) {
    NDP_CHECK(channel_->Issue(ref, now).ok());
    next_refresh_due_[refresh_rank_] +=
        channel_->timing().trefi * bus_.period_ps();
    refresh_in_progress_ = false;
    ScheduleRefreshWake();
    return true;
  }
  return false;
}

bool MemoryController::TryMrs(sim::Tick now) {
  if (mrs_q_.empty()) return false;
  MrsOp& op = mrs_q_.front();
  Rank& rank = channel_->rank(op.rank);
  for (uint32_t b = 0; b < rank.num_banks(); ++b) {
    if (rank.bank(b).has_open_row()) {
      Command pre{CommandType::kPrecharge, op.rank, b};
      if (channel_->EarliestIssue(pre) <= now) {
        NDP_CHECK(channel_->Issue(pre, now).ok());
        return true;
      }
      return false;
    }
  }
  Command mrs{CommandType::kModeRegSet, op.rank};
  mrs.mode_register = 3;
  mrs.mode_value = op.value;
  if (channel_->EarliestIssue(mrs) <= now) {
    NDP_CHECK(channel_->Issue(mrs, now).ok());
    auto done = std::move(op.done);
    mrs_q_.pop_front();
    sim::Tick ready = now + channel_->timing().tmrd * bus_.period_ps();
    if (done) event_queue()->ScheduleAt(ready, [done, ready] { done(ready); });
    return true;
  }
  return false;
}

bool MemoryController::IssueForRequest(QueuedRequest* qr, bool is_write,
                                       sim::Tick now, bool* completed) {
  *completed = false;
  const DramLocation& loc = qr->loc;
  Rank& rank = channel_->rank(loc.rank);
  if (rank.owner() != RankOwner::kHost) return false;  // rank lent to JAFAR
  Bank& bank = rank.bank(loc.bank);

  if (bank.has_open_row() && bank.open_row() == loc.row) {
    Command col{is_write ? CommandType::kWrite : CommandType::kRead, loc.rank,
                loc.bank, loc.row, loc.burst_col};
    if (channel_->EarliestIssue(col) <= now) {
      auto done = channel_->Issue(col, now);
      NDP_CHECK(done.ok());
      if (is_write) {
        ++counters_.writes_served;
      } else {
        ++counters_.reads_served;
      }
      // Classify the request by the worst page outcome it experienced.
      if (qr->caused_precharge) {
        ++counters_.row_conflicts;
      } else if (qr->caused_activate) {
        ++counters_.row_misses;
      } else {
        ++counters_.row_hits;
      }
      if (qr->req.on_complete) {
        auto cb = qr->req.on_complete;
        sim::Tick t = done.value();
        event_queue()->ScheduleAt(t, [cb, t] { cb(t); });
      }
      *completed = true;
      return true;
    }
    return false;
  }
  if (bank.has_open_row()) {
    Command pre{CommandType::kPrecharge, loc.rank, loc.bank};
    if (channel_->EarliestIssue(pre) <= now) {
      NDP_CHECK(channel_->Issue(pre, now).ok());
      qr->caused_precharge = true;
      return true;
    }
    return false;
  }
  Command act{CommandType::kActivate, loc.rank, loc.bank, loc.row};
  if (channel_->EarliestIssue(act) <= now) {
    NDP_CHECK(channel_->Issue(act, now).ok());
    qr->caused_activate = true;
    return true;
  }
  return false;
}

bool MemoryController::ServeQueue(std::deque<QueuedRequest>* q, bool is_write,
                                  sim::Tick now) {
  // FR-FCFS: issue the first request whose row is already open (row hit);
  // otherwise make progress (PRE/ACT) on the oldest serviceable request.
  size_t scan_limit = std::min<size_t>(q->size(), 32);
  for (size_t i = 0; i < scan_limit; ++i) {
    QueuedRequest& qr = (*q)[i];
    Rank& rank = channel_->rank(qr.loc.rank);
    if (rank.owner() != RankOwner::kHost) continue;
    Bank& bank = rank.bank(qr.loc.bank);
    if (bank.has_open_row() && bank.open_row() == qr.loc.row) {
      bool completed = false;
      if (IssueForRequest(&qr, is_write, now, &completed)) {
        if (completed) {
          q->erase(q->begin() + static_cast<long>(i));
          NoteQueueStateChange(now);
        }
        return true;
      }
    }
  }
  for (size_t i = 0; i < scan_limit; ++i) {
    QueuedRequest& qr = (*q)[i];
    Rank& rank = channel_->rank(qr.loc.rank);
    if (rank.owner() != RankOwner::kHost) continue;
    bool completed = false;
    if (IssueForRequest(&qr, is_write, now, &completed)) {
      if (completed) {
        q->erase(q->begin() + static_cast<long>(i));
        NoteQueueStateChange(now);
      }
      return true;
    }
    break;  // strict FCFS progress beyond row hits
  }
  return false;
}

bool MemoryController::Tick() {
  sim::Tick now = event_queue()->Now();

  // Highest priority: refresh (DRAM data integrity), then mode-register ops.
  if (TryRefresh(now)) return true;
  if (refresh_in_progress_) return true;  // wait for precharge windows
  if (TryMrs(now)) return true;

  // Write drain policy with hysteresis.
  if (write_drain_mode_) {
    if (write_q_.size() <= config_.write_drain_low) write_drain_mode_ = false;
  } else {
    if (write_q_.size() >= config_.write_drain_high ||
        (read_q_.empty() && !write_q_.empty())) {
      write_drain_mode_ = true;
    }
  }

  if (write_drain_mode_) {
    if (ServeQueue(&write_q_, /*is_write=*/true, now)) return true;
    if (ServeQueue(&read_q_, /*is_write=*/false, now)) return true;
  } else {
    if (ServeQueue(&read_q_, /*is_write=*/false, now)) return true;
    if (ServeQueue(&write_q_, /*is_write=*/true, now)) return true;
  }

  // Closed-page policy: spend otherwise-idle command slots closing rows that
  // no queued request wants.
  if (config_.page_policy == PagePolicy::kClosed && TryCloseIdleRows(now)) {
    return true;
  }

  // Nothing issued this cycle. Keep ticking only if work remains.
  return HasPendingWork() ||
         (config_.page_policy == PagePolicy::kClosed && has_open_rows_hint_);
}

bool MemoryController::TryCloseIdleRows(sim::Tick now) {
  has_open_rows_hint_ = false;
  for (uint32_t r = 0; r < channel_->num_ranks(); ++r) {
    Rank& rank = channel_->rank(r);
    if (rank.owner() != RankOwner::kHost) continue;
    for (uint32_t b = 0; b < rank.num_banks(); ++b) {
      Bank& bank = rank.bank(b);
      if (!bank.has_open_row()) continue;
      // Keep the row open if any queued request still wants it.
      bool wanted = false;
      for (const auto* q : {&read_q_, &write_q_}) {
        for (const QueuedRequest& qr : *q) {
          if (qr.loc.rank == r && qr.loc.bank == b &&
              qr.loc.row == bank.open_row()) {
            wanted = true;
            break;
          }
        }
        if (wanted) break;
      }
      if (wanted) continue;
      has_open_rows_hint_ = true;
      Command pre{CommandType::kPrecharge, r, b};
      if (channel_->EarliestIssue(pre) <= now) {
        NDP_CHECK(channel_->Issue(pre, now).ok());
        return true;
      }
    }
  }
  return false;
}

}  // namespace ndp::dram
