// Per-bank DRAM state machine. Tracks the open row and the earliest tick at
// which each command class may legally issue, enforcing tRCD/CL/tRP/tRAS and
// friends (paper §2.1). Shared by the memory controller and by JAFAR when it
// owns the rank, so both see identical device timing.
#pragma once

#include <cstdint>

#include "dram/timing.h"
#include "sim/time.h"
#include "util/status.h"

namespace ndp::dram {

/// \brief One DRAM bank: open/closed row plus timing windows in global ticks.
class Bank {
 public:
  Bank() = default;

  void Configure(const DramTiming* timing) {
    timing_ = timing;
    bus_ = timing->BusClock();
  }

  bool has_open_row() const { return open_row_valid_; }
  uint32_t open_row() const { return open_row_; }

  /// Earliest tick an ACT to this bank may issue.
  sim::Tick CanActivateAt() const { return next_act_; }
  /// Earliest tick a RD/WR to this bank may issue (row must also be open).
  sim::Tick CanReadAt() const { return next_read_; }
  sim::Tick CanWriteAt() const { return next_write_; }
  /// Earliest tick a PRE to this bank may issue.
  sim::Tick CanPrechargeAt() const { return next_pre_; }

  /// Applies an ACT issued at tick `t`. Caller must have verified legality.
  Status Activate(sim::Tick t, uint32_t row);
  /// Applies a RD issued at `t`. Returns tick at which the burst's last data
  /// beat has been transferred.
  Result<sim::Tick> Read(sim::Tick t);
  Result<sim::Tick> Write(sim::Tick t);
  Status Precharge(sim::Tick t);
  /// Applies a refresh spanning [t, t + tRFC); bank must be precharged.
  Status Refresh(sim::Tick t);

  /// Forces constraints so no command can issue before `t` (used by rank-level
  /// rules such as tRRD/tFAW/tCCD/tWTR that cut across banks).
  void BlockActivateUntil(sim::Tick t) { next_act_ = std::max(next_act_, t); }
  void BlockColumnUntil(sim::Tick t) {
    next_read_ = std::max(next_read_, t);
    next_write_ = std::max(next_write_, t);
  }
  void BlockPrechargeUntil(sim::Tick t) { next_pre_ = std::max(next_pre_, t); }

  /// Row-activation count (performance counter: row misses cost tRCD+tRP).
  uint64_t activate_count() const { return activate_count_; }

 private:
  sim::Tick Cycles(uint32_t n) const { return n * bus_.period_ps(); }

  const DramTiming* timing_ = nullptr;
  sim::ClockDomain bus_;
  bool open_row_valid_ = false;
  uint32_t open_row_ = 0;
  sim::Tick next_act_ = 0;
  sim::Tick next_read_ = 0;
  sim::Tick next_write_ = 0;
  sim::Tick next_pre_ = 0;
  uint64_t activate_count_ = 0;
};

}  // namespace ndp::dram
