// Per-bank DRAM state machine. Tracks the open row and the earliest tick at
// which each command class may legally issue, enforcing tRCD/CL/tRP/tRAS and
// friends (paper §2.1). Shared by the memory controller and by JAFAR when it
// owns the rank, so both see identical device timing.
#pragma once

#include <algorithm>
#include <cstdint>

#include "dram/timing.h"
#include "sim/time.h"
#include "util/status.h"

namespace ndp::dram {

/// Timing of the per-bank comparator/accumulator datapath (the Membrane-style
/// v2 device generation), in bus-clock cycles. Derived by the accel layer
/// from the scheduled per-bank select kernel (jafar::DeviceConfig::DeriveBank)
/// and pushed into the rank before any kBankArm is issued — the DRAM layer
/// models the command flow, the accel layer owns the numbers.
struct BankFilterTiming {
  /// RD command to the burst's last match bit latched in the accumulator
  /// (internal CAS + the comparator pipeline; replaces CL + tBURST for
  /// filter-mode reads, whose data never leaves the bank).
  uint32_t fill_latency_cycles = 0;
  /// Minimum spacing between filter-mode RDs to the same bank (the per-bank
  /// comparator's throughput bound; replaces the rank-wide tCCD, which only
  /// governs the shared IO path).
  uint32_t min_rd_spacing_cycles = 0;
  /// Occupancy of the per-rank result bus while one accumulator drains on
  /// precharge (accumulator capacity / result-bus width).
  uint32_t drain_cycles = 0;

  bool valid() const {
    return fill_latency_cycles > 0 && min_rd_spacing_cycles > 0 &&
           drain_cycles > 0;
  }
};

/// \brief One DRAM bank: open/closed row plus timing windows in global ticks.
class Bank {
 public:
  Bank() = default;

  void Configure(const DramTiming* timing) {
    timing_ = timing;
    bus_ = timing->BusClock();
  }

  /// Installs the v2 comparator timing; required before Arm(). Not owned.
  void set_filter_timing(const BankFilterTiming* filter) { filter_ = filter; }

  bool has_open_row() const { return open_row_valid_; }
  uint32_t open_row() const { return open_row_; }

  /// Filter (v2 bank-level) state: while armed, RDs latch match bits into the
  /// bank's result accumulator instead of driving the IO bus, and the PRE that
  /// closes the row drains the accumulator over the per-rank result bus.
  bool armed() const { return armed_; }
  /// True while the accumulator holds match bits that have not drained yet.
  bool pending_fill() const { return pending_fill_; }
  /// Tick at which the last filter-mode RD's match bits are latched (PRE may
  /// not drain before this).
  sim::Tick fill_ready_at() const { return fill_ready_at_; }
  /// Called by the rank once the draining PRE has been granted the per-rank
  /// result bus and the accumulator contents are accounted for.
  void NoteAccumulatorDrained() { pending_fill_ = false; }

  /// Earliest tick an ACT to this bank may issue.
  sim::Tick CanActivateAt() const { return next_act_; }
  /// Earliest tick a RD/WR to this bank may issue (row must also be open).
  /// Armed banks additionally pace RDs at the comparator's throughput.
  sim::Tick CanReadAt() const {
    return armed_ ? std::max(next_read_, next_filter_read_) : next_read_;
  }
  sim::Tick CanWriteAt() const { return next_write_; }
  /// Earliest tick a PRE to this bank may issue.
  sim::Tick CanPrechargeAt() const { return next_pre_; }

  /// Applies an ACT issued at tick `t`. Caller must have verified legality.
  Status Activate(sim::Tick t, uint32_t row);
  /// Applies a RD issued at `t`. Returns tick at which the burst's last data
  /// beat has been transferred — or, when armed, the tick at which the
  /// burst's match bits are latched in the accumulator (no IO-bus traffic).
  Result<sim::Tick> Read(sim::Tick t);
  Result<sim::Tick> Write(sim::Tick t);
  Status Precharge(sim::Tick t);
  /// Applies a refresh spanning [t, t + tRFC); bank must be precharged.
  Status Refresh(sim::Tick t);

  /// Switches the bank's comparator into filter mode (kBankArm). The bank
  /// must be precharged and not already armed; filter timing must have been
  /// installed.
  Status Arm(sim::Tick t);
  /// Leaves filter mode (kBankDisarm), discarding any pending accumulator.
  Status Disarm(sim::Tick t);
  /// Out-of-band force-release on job abort: clears filter state without a
  /// command (the device's reset line, not part of the JEDEC command flow).
  void ResetFilter() {
    armed_ = false;
    pending_fill_ = false;
  }

  /// Forces constraints so no command can issue before `t` (used by rank-level
  /// rules such as tRRD/tFAW/tCCD/tWTR that cut across banks).
  void BlockActivateUntil(sim::Tick t) { next_act_ = std::max(next_act_, t); }
  void BlockColumnUntil(sim::Tick t) {
    next_read_ = std::max(next_read_, t);
    next_write_ = std::max(next_write_, t);
  }
  void BlockPrechargeUntil(sim::Tick t) { next_pre_ = std::max(next_pre_, t); }

  /// Row-activation count (performance counter: row misses cost tRCD+tRP).
  uint64_t activate_count() const { return activate_count_; }

 private:
  sim::Tick Cycles(uint32_t n) const { return n * bus_.period_ps(); }

  const DramTiming* timing_ = nullptr;
  const BankFilterTiming* filter_ = nullptr;
  sim::ClockDomain bus_;
  bool open_row_valid_ = false;
  uint32_t open_row_ = 0;
  sim::Tick next_act_ = 0;
  sim::Tick next_read_ = 0;
  sim::Tick next_write_ = 0;
  sim::Tick next_pre_ = 0;
  uint64_t activate_count_ = 0;

  // v2 bank-level filter (Membrane-style) accumulator state.
  bool armed_ = false;
  bool pending_fill_ = false;
  sim::Tick fill_ready_at_ = 0;
  sim::Tick next_filter_read_ = 0;
};

}  // namespace ndp::dram
