// Physical-address decoding into (channel, rank, bank, row, column) — the
// RAS/CAS decomposition of paper §2.1 — plus the DIMM-interleaving layouts of
// §2.2 ("Handling Data Interleaving").
#pragma once

#include <cstdint>
#include <string>

#include "dram/timing.h"
#include "util/status.h"

namespace ndp::dram {

/// Decoded DRAM coordinates of a physical address.
struct DramLocation {
  uint32_t channel = 0;
  uint32_t rank = 0;
  uint32_t bank = 0;
  uint32_t row = 0;
  uint32_t burst_col = 0;  ///< column position in burst (64 B) units
  uint32_t offset = 0;     ///< byte offset within the burst

  bool SameRowBuffer(const DramLocation& o) const {
    return channel == o.channel && rank == o.rank && bank == o.bank && row == o.row;
  }
};

/// How the physical address space is spread across channels/DIMMs (§2.2).
enum class InterleaveScheme {
  /// Fill one channel (DIMM) completely before the next: pages contiguous on a
  /// single DIMM; the straightforward case for JAFAR.
  kContiguous,
  /// Interleave across channels at cache-line (one burst, 64 B) granularity.
  kChannelBurst,
  /// Interleave across channels at 64-bit word granularity — the hard case in
  /// §2.2, requiring masked bitmap write-back from JAFAR.
  kChannelWord,
};

const char* InterleaveSchemeToString(InterleaveScheme scheme);

/// \brief Maps physical addresses to DRAM coordinates and back.
///
/// Within one channel the layout is row : rank : bank : column : offset (low
/// bits = column), so a sequential stream walks an entire 8 KB row before
/// switching banks — the open-page-friendly layout column scans rely on.
class AddressMapper {
 public:
  AddressMapper(const DramOrganization& org, InterleaveScheme scheme);

  /// Decodes `addr`; fails if addr is beyond the installed capacity.
  Result<DramLocation> Decode(uint64_t addr) const;

  /// Inverse of Decode. Exact round-trip for valid locations.
  uint64_t Encode(const DramLocation& loc) const;

  InterleaveScheme scheme() const { return scheme_; }
  const DramOrganization& organization() const { return org_; }

  /// Size of the contiguous span mapped to one channel before the mapping
  /// moves to the next channel (whole channel, 64 B, or 8 B).
  uint64_t ChannelStrideBytes() const;

 private:
  DramOrganization org_;
  InterleaveScheme scheme_;
  uint64_t bytes_per_channel_;
};

}  // namespace ndp::dram
