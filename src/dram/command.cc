#include "dram/command.h"

#include <cstdio>

namespace ndp::dram {

const char* CommandTypeToString(CommandType type) {
  switch (type) {
    case CommandType::kActivate: return "ACT";
    case CommandType::kRead: return "RD";
    case CommandType::kWrite: return "WR";
    case CommandType::kPrecharge: return "PRE";
    case CommandType::kRefresh: return "REF";
    case CommandType::kModeRegSet: return "MRS";
    case CommandType::kBankArm: return "ARM";
    case CommandType::kBankDisarm: return "DISARM";
  }
  return "?";
}

std::string Command::ToString() const {
  char buf[128];
  if (type == CommandType::kModeRegSet) {
    std::snprintf(buf, sizeof(buf), "MRS r%u MR%u=0x%x", rank, mode_register,
                  mode_value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s r%u b%u row%u col%u",
                  CommandTypeToString(type), rank, bank, row, burst_col);
  }
  return buf;
}

}  // namespace ndp::dram
