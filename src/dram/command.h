// DRAM command vocabulary shared by the memory controller and JAFAR's
// DRAM-side sequencer (both are "agents of memory requests", §3.3).
#pragma once

#include <cstdint>
#include <string>

namespace ndp::dram {

enum class CommandType : uint8_t {
  kActivate,    ///< RAS: load a row into the bank's row buffer
  kRead,        ///< CAS read: stream one BL8 burst from the open row
  kWrite,       ///< CAS write: stream one BL8 burst into the open row
  kPrecharge,   ///< close the open row, precharge bitlines
  kRefresh,     ///< all-bank refresh
  kModeRegSet,  ///< MRS: write a mode register (used for MR3/MPR ownership)
  /// Bank-level filtering (Membrane-style v2 generation): switch one bank's
  /// comparator into filter mode. While armed, RDs evaluate in the bank and
  /// latch match bits into the bank's result accumulator instead of driving
  /// the shared IO bus; the accumulator drains over the per-rank result bus
  /// on the precharge that closes the row.
  kBankArm,
  kBankDisarm,  ///< leave filter mode, discarding any pending accumulator
};

const char* CommandTypeToString(CommandType type);

struct Command {
  CommandType type;
  uint32_t rank = 0;
  uint32_t bank = 0;
  uint32_t row = 0;
  uint32_t burst_col = 0;
  uint32_t mode_register = 0;  ///< for kModeRegSet
  uint32_t mode_value = 0;     ///< for kModeRegSet

  std::string ToString() const;
};

}  // namespace ndp::dram
