// A DRAM rank: a set of banks that share command/data buses plus rank-wide
// timing constraints (tRRD, tFAW, tCCD, tWTR). Also owns the DDR3 mode
// registers; the paper proposes repurposing MR3's multipurpose-register (MPR)
// bit to transfer rank ownership between the memory controller and JAFAR
// (§2.2, "Coordinating DRAM Access").
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "dram/bank.h"
#include "dram/command.h"
#include "dram/timing.h"
#include "util/status.h"

namespace ndp::dram {

/// Who is currently permitted to issue ordinary reads/writes to a rank.
enum class RankOwner : uint8_t {
  kHost,         ///< the on-chip memory controller (normal operation)
  kAccelerator,  ///< JAFAR, granted via the MR3/MPR mechanism
};

/// Bit in MR3 that enables the multipurpose register. While set, the memory
/// controller may not send ordinary read/write commands to the rank.
constexpr uint32_t kMr3MprEnableBit = 0x4;

/// \brief One rank: banks + cross-bank constraints + mode registers.
class Rank {
 public:
  Rank() = default;

  void Configure(const DramTiming* timing, const DramOrganization* org);

  uint32_t num_banks() const { return static_cast<uint32_t>(banks_.size()); }
  Bank& bank(uint32_t b) { return banks_[b]; }
  const Bank& bank(uint32_t b) const { return banks_[b]; }

  /// Earliest tick at which `cmd` may legally issue to this rank, considering
  /// bank state, tRRD/tFAW (for ACT), and tCCD/tWTR (for RD/WR). Does not
  /// consider channel-level bus contention (the Channel layers that on top).
  sim::Tick EarliestIssue(const Command& cmd) const;

  /// Issues `cmd` at tick `t`. For RD/WR returns the tick at which the last
  /// data beat completes; for other commands returns `t`. Returns a
  /// TimingViolation error if `t` < EarliestIssue(cmd).
  Result<sim::Tick> Issue(const Command& cmd, sim::Tick t);

  /// True if every bank is precharged (required before REF or ownership
  /// hand-off).
  bool AllBanksIdle() const;

  // -- v2 bank-level filtering ----------------------------------------------

  /// Installs the per-bank comparator timing (derived by the accel layer);
  /// required before any kBankArm may issue. Not owned.
  void set_bank_filter_timing(const BankFilterTiming* filter);
  const BankFilterTiming* bank_filter_timing() const { return filter_; }

  /// True if any bank's comparator is in filter mode. REF may not issue to a
  /// rank with armed banks (the comparators sit on the bank sense-amp path);
  /// the memory controller gates TryRefresh on this and the device disarms on
  /// refresh steal-back.
  bool AnyBankArmed() const;

  /// Out-of-band force-release of every bank's filter state (device reset
  /// line on job abort; not part of the JEDEC command flow). The protocol
  /// checker is told separately via NoteBankFilterReset.
  void ResetBankFilters();

  // -- Mode registers / ownership -------------------------------------------

  // -- Mode registers / ownership -------------------------------------------

  uint32_t mode_register(uint32_t index) const { return mode_regs_[index & 3]; }
  RankOwner owner() const {
    return (mode_regs_[3] & kMr3MprEnableBit) ? RankOwner::kAccelerator
                                              : RankOwner::kHost;
  }

  // -- Counters --------------------------------------------------------------

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t writes_issued() const { return writes_issued_; }
  uint64_t activates_issued() const { return activates_issued_; }
  uint64_t refreshes_issued() const { return refreshes_issued_; }
  uint64_t filter_reads_issued() const { return filter_reads_issued_; }
  uint64_t bank_arms_issued() const { return bank_arms_issued_; }
  uint64_t drains_completed() const { return drains_completed_; }

  // ECC scrub log: read-path bit flips observed on bursts served by this
  // rank, classified by the SECDED model (src/fault/ecc.h). Bumped by the
  // fault-injection path; a real controller would log these to the scrub
  // daemon via machine-check records.
  uint64_t ecc_corrected() const { return ecc_corrected_; }
  uint64_t ecc_uncorrectable() const { return ecc_uncorrectable_; }
  void NoteEccCorrected() { ++ecc_corrected_; }
  void NoteEccUncorrectable() { ++ecc_uncorrectable_; }

 private:
  sim::Tick Cycles(uint32_t n) const { return n * bus_.period_ps(); }
  sim::Tick EarliestActivate(uint32_t bank) const;

  const DramTiming* timing_ = nullptr;
  const DramOrganization* org_ = nullptr;
  const BankFilterTiming* filter_ = nullptr;
  sim::ClockDomain bus_;
  std::vector<Bank> banks_;
  std::array<uint32_t, 4> mode_regs_ = {0, 0, 0, 0};

  /// The per-rank result bus serializes accumulator drains: one bank's
  /// draining PRE occupies it for drain_cycles.
  sim::Tick result_bus_free_at_ = 0;

  // Rank-level windows.
  sim::Tick next_column_cmd_ = 0;  ///< tCCD across banks
  sim::Tick next_read_after_write_ = 0;  ///< tWTR
  sim::Tick next_act_any_ = 0;     ///< tRRD across banks
  sim::Tick mrs_busy_until_ = 0;   ///< tMRD after MRS
  std::deque<sim::Tick> recent_activates_;  ///< for the tFAW 4-ACT window

  uint64_t reads_issued_ = 0;
  uint64_t writes_issued_ = 0;
  uint64_t activates_issued_ = 0;
  uint64_t refreshes_issued_ = 0;
  uint64_t filter_reads_issued_ = 0;
  uint64_t bank_arms_issued_ = 0;
  uint64_t drains_completed_ = 0;
  uint64_t ecc_corrected_ = 0;
  uint64_t ecc_uncorrectable_ = 0;
};

}  // namespace ndp::dram
