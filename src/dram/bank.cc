#include "dram/bank.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::dram {

Status Bank::Activate(sim::Tick t, uint32_t row) {
  NDP_CHECK(timing_ != nullptr);
  if (open_row_valid_) {
    return Status::TimingViolation("ACT to bank with open row");
  }
  if (t < next_act_) {
    return Status::TimingViolation("ACT before tRC/tRP window expired");
  }
  open_row_valid_ = true;
  open_row_ = row;
  ++activate_count_;
  next_read_ = std::max(next_read_, t + Cycles(timing_->trcd));
  next_write_ = std::max(next_write_, t + Cycles(timing_->trcd));
  next_pre_ = std::max(next_pre_, t + Cycles(timing_->tras));
  next_act_ = std::max(next_act_, t + Cycles(timing_->trc));
  return Status::OK();
}

Result<sim::Tick> Bank::Read(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (!open_row_valid_) {
    return Status::TimingViolation("RD to bank with no open row");
  }
  if (armed_) {
    if (t < next_read_ || t < next_filter_read_) {
      return Status::TimingViolation(
          "filter RD before tRCD or comparator-rate window expired");
    }
    // Filter mode: the burst feeds the bank's comparator; match bits latch
    // into the accumulator fill_latency later and nothing touches the IO bus.
    fill_ready_at_ = t + Cycles(filter_->fill_latency_cycles);
    pending_fill_ = true;
    next_filter_read_ = t + Cycles(filter_->min_rd_spacing_cycles);
    // The draining PRE must respect tRTP and may not start before the last
    // match bits have latched.
    next_pre_ = std::max({next_pre_, t + Cycles(timing_->trtp), fill_ready_at_});
    return fill_ready_at_;
  }
  if (t < next_read_) {
    return Status::TimingViolation("RD before tRCD/tCCD/tWTR window expired");
  }
  // tRTP: read-to-precharge.
  next_pre_ = std::max(next_pre_, t + Cycles(timing_->trtp));
  // Data appears on the bus CL cycles later, for tBURST cycles.
  return t + Cycles(timing_->cl + timing_->tburst);
}

Result<sim::Tick> Bank::Write(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (!open_row_valid_) {
    return Status::TimingViolation("WR to bank with no open row");
  }
  if (t < next_write_) {
    return Status::TimingViolation("WR before tRCD/tCCD window expired");
  }
  // Write recovery: PRE must wait until CWL + tBURST + tWR after the command.
  sim::Tick data_end = t + Cycles(timing_->cwl + timing_->tburst);
  next_pre_ = std::max(next_pre_, data_end + Cycles(timing_->twr));
  return data_end;
}

Status Bank::Precharge(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (!open_row_valid_) {
    // Precharging an already-idle bank is a harmless NOP on real devices.
    return Status::OK();
  }
  if (t < next_pre_) {
    return Status::TimingViolation("PRE before tRAS/tRTP/tWR window expired");
  }
  open_row_valid_ = false;
  // An armed bank's PRE doubles as the accumulator drain trigger; the rank
  // layers result-bus arbitration on top and clears pending_fill_ there
  // once it has accounted for the drain.
  next_act_ = std::max(next_act_, t + Cycles(timing_->trp));
  return Status::OK();
}

Status Bank::Arm(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (filter_ == nullptr || !filter_->valid()) {
    return Status::InvalidArgument("ARM without bank filter timing installed");
  }
  if (armed_) {
    return Status::TimingViolation("ARM to already-armed bank");
  }
  if (open_row_valid_) {
    return Status::TimingViolation("ARM to bank with open row (precharge first)");
  }
  armed_ = true;
  pending_fill_ = false;
  // The comparator's mode switch settles within the command cycle; the next
  // filter RD is paced only by tRCD after the following ACT.
  next_filter_read_ = t;
  return Status::OK();
}

Status Bank::Disarm(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  (void)t;
  if (!armed_) {
    return Status::TimingViolation("DISARM to bank that is not armed");
  }
  if (open_row_valid_) {
    return Status::TimingViolation(
        "DISARM to bank with open row (drain via PRE first)");
  }
  armed_ = false;
  pending_fill_ = false;
  return Status::OK();
}

Status Bank::Refresh(sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (open_row_valid_) {
    return Status::TimingViolation("REF with open row (precharge first)");
  }
  if (t < next_act_) {
    return Status::TimingViolation("REF before tRP window expired");
  }
  next_act_ = std::max(next_act_, t + Cycles(timing_->trfc));
  return Status::OK();
}

}  // namespace ndp::dram
