// JEDEC DDR3 protocol checker: a shadow observer that replays every command
// issued on a channel through its own independent per-bank / per-rank state
// machines and validates the full constraint set of dram/timing.h — tRCD,
// CL/CWL (as data-bus occupancy), tRP, tRAS, tRC, tRRD, tFAW, tCCD, tWTR,
// tRTP, tWR, tRFC, tMRD, refresh-interval legality, plus bank-state and
// command-bus legality.
//
// The checker deliberately shares no code with Bank/Rank/Channel: those
// classes *schedule* commands, this one *audits* them, so a scheduler bug
// (e.g. a window the controller forgot to honour) cannot silently vanish by
// being wrong in both places the same way.
//
// Two ways to use it:
//   * Standalone (any build): construct, Configure(), feed Observe(cmd, t).
//     Violations accumulate in violations(); tests inject deliberate
//     protocol errors and assert the checker flags exactly that rule.
//   * Attached (NDP_PROTOCOL_CHECK builds only): every Channel owns one and
//     forwards each successfully issued command from Channel::Issue. The
//     attached checker fail-fasts by default, so an illegal schedule aborts
//     the simulation at the offending command with full context.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dram/bank.h"  // BankFilterTiming (a parameter block, not state-machine code)
#include "dram/command.h"
#include "dram/timing.h"
#include "sim/time.h"

namespace ndp::dram {

/// The individual JEDEC constraint (or structural rule) a violation breaks.
enum class TimingRule : uint8_t {
  kBankState,  ///< command illegal in the bank's current open/closed state
  kTrcd,       ///< ACT to RD/WR, same bank
  kTrp,        ///< PRE to ACT, same bank
  kTras,       ///< ACT to PRE, same bank
  kTrc,        ///< ACT to ACT, same bank
  kTrrd,       ///< ACT to ACT, different banks of one rank
  kTfaw,       ///< more than four ACTs inside one tFAW window
  kTccd,       ///< column command to column command, same rank
  kTwtr,       ///< end of write data to next RD, same rank
  kTrtp,       ///< RD to PRE, same bank
  kTwr,        ///< end of write data to PRE, same bank
  kTrfc,       ///< command to a rank still inside a refresh
  kTrefi,      ///< rank went > 9 x tREFI without a refresh
  kTmrd,       ///< command too soon after a mode-register set
  kDataBus,    ///< CL/CWL-projected data bursts overlap on the channel bus
  kCmdBus,     ///< two commands in one bus cycle, or off-edge issue tick
  // v2 bank-level filtering (kBankArm/kBankDisarm command flow):
  kBankArm,        ///< ARM/DISARM illegal in the bank's current filter state
  kDrainTooEarly,  ///< draining PRE before the last match bits latched
  kResultBus,      ///< two accumulator drains overlap on the rank result bus
  kRefreshArmed,   ///< REF to a rank with armed banks
  // Semijoin probe filter-load window (the probe engine streams its Bloom
  // image from DRAM into device SRAM before the scan; a concurrent writer
  // or ARM would tear the image mid-latch):
  kProbeWrDuringLoad,   ///< WR to the rank while the filter image is loading
  kProbeArmDuringLoad,  ///< bank ARM while the filter image is loading
  kProbeReentrantLoad,  ///< filter load started while one is already active
};

const char* TimingRuleToString(TimingRule rule);

/// One audited protocol violation: which rule, when, where, and the offending
/// command pair (the command that broke the rule and the prior command that
/// opened the still-running window).
struct ProtocolViolation {
  TimingRule rule;
  sim::Tick tick = 0;      ///< issue tick of the offending command
  uint64_t bus_cycle = 0;  ///< same, in bus-clock cycles
  uint32_t rank = 0;
  uint32_t bank = 0;       ///< 0 for rank-wide commands (REF/MRS)
  std::string message;     ///< human-readable "X @cycle N after Y @cycle M"

  std::string ToString() const;
};

/// \brief Shadow DDR3 protocol auditor for one channel.
class ProtocolChecker {
 public:
  ProtocolChecker() = default;

  /// Must be called before Observe(). `timing`/`org` must outlive the checker.
  void Configure(const DramTiming* timing, const DramOrganization* org);

  /// Abort (with the violation's full context) on the first violation instead
  /// of recording it. Off for standalone use; Channel-attached checkers
  /// enable it so test/debug builds fail at the offending command.
  void set_fail_fast(bool on) { fail_fast_ = on; }
  /// Enforce the tREFI rule. Off by default: benches may legitimately run
  /// with refresh disabled, and short runs never reach a refresh deadline.
  void set_expect_refresh(bool on) { expect_refresh_ = on; }

  /// Installs the v2 per-bank comparator timing for one rank, enabling the
  /// filter-flow rules (drain legality, result-bus arbitration, filter-RD
  /// pacing). Without it, any kBankArm is itself flagged.
  void set_bank_filter_timing(uint32_t rank, const BankFilterTiming* filter);

  /// Mirrors the device's out-of-band filter reset on job abort: clears the
  /// shadow armed/pending state so the audit doesn't diverge from hardware.
  void NoteBankFilterReset(uint32_t rank);

  /// Mirrors the probe engine's Bloom filter-image load window. Between Start
  /// and Done the engine is latching DRAM reads into its filter SRAM: a WR to
  /// the rank or a bank ARM inside the window would tear the image, and a
  /// second Start before Done means two engines race one SRAM port.
  void NoteProbeFilterLoadStart(uint32_t rank, sim::Tick t);
  void NoteProbeFilterLoadDone(uint32_t rank);

  /// Audits one command issued at tick `t` and updates the shadow state.
  /// Call in issue order (non-decreasing `t`).
  void Observe(const Command& cmd, sim::Tick t);

  const std::vector<ProtocolViolation>& violations() const {
    return violations_;
  }
  uint64_t commands_observed() const { return commands_observed_; }

  /// All recorded violations, one per line (empty string when clean).
  std::string Report() const;

 private:
  /// Sentinel for "this command has never been observed".
  static constexpr sim::Tick kNever = ~sim::Tick{0};

  struct BankState {
    bool row_open = false;
    uint32_t row = 0;
    sim::Tick last_act = kNever;
    sim::Tick last_pre = kNever;       ///< issue tick of the closing PRE
    sim::Tick last_read = kNever;
    sim::Tick write_data_end = kNever; ///< last WR's final data-beat tick
    // v2 filter-mode shadow state.
    bool armed = false;
    bool pending_fill = false;             ///< accumulator holds undrained bits
    sim::Tick fill_ready = kNever;         ///< last filter RD's latch tick
    sim::Tick last_filter_read = kNever;   ///< comparator-rate pacing audit
  };

  struct RankState {
    std::vector<BankState> banks;
    sim::Tick last_act_any = kNever;        ///< tRRD window
    std::deque<sim::Tick> act_history;      ///< last 4 ACTs, for tFAW
    sim::Tick last_column_cmd = kNever;     ///< tCCD window
    sim::Tick write_data_end_any = kNever;  ///< tWTR window
    sim::Tick refresh_end = kNever;         ///< tRFC window ([REF, REF+tRFC))
    sim::Tick last_refresh = kNever;        ///< tREFI audit
    sim::Tick last_mrs = kNever;            ///< tMRD window
    bool refresh_overdue_flagged = false;   ///< one tREFI report per lapse
    sim::Tick result_bus_end = kNever;      ///< current drain's last beat
    // Probe filter-load window shadow state.
    bool probe_load_active = false;
    sim::Tick probe_load_start = kNever;
  };

  sim::Tick Cycles(uint32_t n) const;
  uint64_t CycleOf(sim::Tick t) const;
  std::string Describe(const Command& cmd, sim::Tick t) const;

  /// Records (or fail-fasts on) a violation of `rule` by `cmd` at `t`.
  /// `since` is the issue/end tick of the prior command that opened the
  /// window (kNever if not applicable); `what` names that prior event.
  void Flag(TimingRule rule, const Command& cmd, sim::Tick t, sim::Tick since,
            const char* what);

  /// Per-command audits. Each checks every applicable window, then commits
  /// the command to the shadow state.
  void ObserveActivate(const Command& cmd, sim::Tick t, RankState& rank);
  void ObserveColumn(const Command& cmd, sim::Tick t, RankState& rank);
  void ObservePrecharge(const Command& cmd, sim::Tick t, RankState& rank);
  void ObserveRefresh(const Command& cmd, sim::Tick t, RankState& rank);
  void ObserveModeRegSet(const Command& cmd, sim::Tick t, RankState& rank);
  void ObserveBankArm(const Command& cmd, sim::Tick t, RankState& rank);
  void ObserveBankDisarm(const Command& cmd, sim::Tick t, RankState& rank);

  const DramTiming* timing_ = nullptr;
  const DramOrganization* org_ = nullptr;
  sim::Tick tck_ = 1;
  bool fail_fast_ = false;
  bool expect_refresh_ = false;

  std::vector<RankState> ranks_;
  /// Per-rank v2 comparator timing (null until installed). Not owned.
  std::vector<const BankFilterTiming*> filters_;
  sim::Tick last_cmd_tick_ = kNever;   ///< channel command-bus audit
  sim::Tick data_bus_busy_end_ = 0;    ///< channel data-bus audit (CL/CWL)
  uint64_t commands_observed_ = 0;
  std::vector<ProtocolViolation> violations_;
};

}  // namespace ndp::dram
