// Memory requests as seen by the controller: one BL8 burst (<= 64 B) per
// request, the granularity of both CPU cache-line fills and JAFAR bursts.
#pragma once

#include <cstdint>
#include <functional>

#include "dram/address.h"
#include "sim/time.h"

namespace ndp::dram {

/// Identifies the agent that generated a request (for attribution in stats).
enum class RequesterId : uint8_t { kCpu = 0, kJafar = 1, kOther = 2 };

/// \brief One burst-sized memory request.
struct Request {
  uint64_t addr = 0;
  bool is_write = false;
  RequesterId requester = RequesterId::kCpu;
  /// Invoked when the last data beat of the burst completes, with that tick.
  std::function<void(sim::Tick)> on_complete;
};

}  // namespace ndp::dram
