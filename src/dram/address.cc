#include "dram/address.h"

#include "util/macros.h"

namespace ndp::dram {

const char* InterleaveSchemeToString(InterleaveScheme scheme) {
  switch (scheme) {
    case InterleaveScheme::kContiguous: return "contiguous";
    case InterleaveScheme::kChannelBurst: return "channel-interleaved-64B";
    case InterleaveScheme::kChannelWord: return "channel-interleaved-8B";
  }
  return "?";
}

AddressMapper::AddressMapper(const DramOrganization& org, InterleaveScheme scheme)
    : org_(org), scheme_(scheme) {
  bytes_per_channel_ = org.BytesPerRank() * org.ranks_per_channel;
}

uint64_t AddressMapper::ChannelStrideBytes() const {
  switch (scheme_) {
    case InterleaveScheme::kContiguous: return bytes_per_channel_;
    case InterleaveScheme::kChannelBurst: return org_.BytesPerBurst();
    case InterleaveScheme::kChannelWord: return 8;
  }
  return bytes_per_channel_;
}

Result<DramLocation> AddressMapper::Decode(uint64_t addr) const {
  if (addr >= org_.TotalBytes()) {
    return Status::OutOfRange("address 0x" + std::to_string(addr) +
                              " beyond installed capacity");
  }
  DramLocation loc;
  uint64_t in_channel;
  if (org_.channels == 1) {
    loc.channel = 0;
    in_channel = addr;
  } else {
    uint64_t stride = ChannelStrideBytes();
    uint64_t chunk = addr / stride;
    if (scheme_ == InterleaveScheme::kContiguous) {
      loc.channel = static_cast<uint32_t>(chunk);
      in_channel = addr % stride;
    } else {
      loc.channel = static_cast<uint32_t>(chunk % org_.channels);
      in_channel = (chunk / org_.channels) * stride + addr % stride;
    }
  }
  // Within a channel: rank : row : bank : burst_col : offset. Each rank is a
  // contiguous region (a whole DIMM side), matching the paper's model of
  // pinning a data region onto the DIMM JAFAR sits on; within a rank,
  // sequential addresses walk a full row and then switch banks so streaming
  // agents can overlap activation with transfer.
  uint32_t bpb = org_.BytesPerBurst();
  loc.offset = static_cast<uint32_t>(in_channel % bpb);
  uint64_t bursts = in_channel / bpb;
  loc.burst_col = static_cast<uint32_t>(bursts % org_.BurstsPerRow());
  uint64_t rows = bursts / org_.BurstsPerRow();
  loc.bank = static_cast<uint32_t>(rows % org_.banks_per_rank);
  uint64_t bank_rows = rows / org_.banks_per_rank;
  loc.row = static_cast<uint32_t>(bank_rows % org_.rows_per_bank);
  loc.rank = static_cast<uint32_t>(bank_rows / org_.rows_per_bank);
  NDP_CHECK(loc.rank < org_.ranks_per_channel);
  return loc;
}

uint64_t AddressMapper::Encode(const DramLocation& loc) const {
  uint64_t bank_rows =
      static_cast<uint64_t>(loc.rank) * org_.rows_per_bank + loc.row;
  uint64_t rows = bank_rows * org_.banks_per_rank + loc.bank;
  uint64_t bursts = rows * org_.BurstsPerRow() + loc.burst_col;
  uint64_t in_channel = bursts * org_.BytesPerBurst() + loc.offset;
  if (org_.channels == 1) return in_channel;
  uint64_t stride = ChannelStrideBytes();
  if (scheme_ == InterleaveScheme::kContiguous) {
    return static_cast<uint64_t>(loc.channel) * stride + in_channel;
  }
  uint64_t chunk = in_channel / stride;
  uint64_t off = in_channel % stride;
  return (chunk * org_.channels + loc.channel) * stride + off;
}

}  // namespace ndp::dram
