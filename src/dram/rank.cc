#include "dram/rank.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::dram {

void Rank::Configure(const DramTiming* timing, const DramOrganization* org) {
  timing_ = timing;
  org_ = org;
  bus_ = timing->BusClock();
  banks_.resize(org->banks_per_rank);
  for (auto& b : banks_) b.Configure(timing);
}

sim::Tick Rank::EarliestActivate(uint32_t bank_idx) const {
  sim::Tick t = std::max(banks_[bank_idx].CanActivateAt(), next_act_any_);
  // tFAW: at most four ACTs in any tFAW window. If four have issued, the next
  // must wait until the oldest leaves the window.
  if (recent_activates_.size() >= 4) {
    t = std::max(t, recent_activates_.front() + Cycles(timing_->tfaw));
  }
  return std::max(t, mrs_busy_until_);
}

sim::Tick Rank::EarliestIssue(const Command& cmd) const {
  NDP_CHECK(timing_ != nullptr);
  switch (cmd.type) {
    case CommandType::kActivate:
      return EarliestActivate(cmd.bank);
    case CommandType::kRead:
      if (banks_[cmd.bank].armed()) {
        // Filter RDs never touch the shared IO path, so the rank-wide tCCD
        // and tWTR turnaround windows do not apply; the bank itself paces
        // them at the comparator rate (folded into CanReadAt).
        return std::max(banks_[cmd.bank].CanReadAt(), mrs_busy_until_);
      }
      return std::max({banks_[cmd.bank].CanReadAt(), next_column_cmd_,
                       next_read_after_write_, mrs_busy_until_});
    case CommandType::kWrite:
      return std::max({banks_[cmd.bank].CanWriteAt(), next_column_cmd_,
                       mrs_busy_until_});
    case CommandType::kPrecharge: {
      sim::Tick t = std::max(banks_[cmd.bank].CanPrechargeAt(), mrs_busy_until_);
      if (banks_[cmd.bank].armed() && banks_[cmd.bank].pending_fill()) {
        // A draining PRE must also win the per-rank result bus.
        t = std::max(t, result_bus_free_at_);
      }
      return t;
    }
    case CommandType::kBankArm:
    case CommandType::kBankDisarm:
      // Mode-switch-like commands: only the MRS quiescence window gates the
      // command itself; bank-state legality is enforced in Issue.
      return mrs_busy_until_;
    case CommandType::kRefresh: {
      sim::Tick t = mrs_busy_until_;
      for (const auto& b : banks_) t = std::max(t, b.CanActivateAt());
      return t;
    }
    case CommandType::kModeRegSet: {
      // MRS requires all banks precharged and quiescent column traffic.
      // CanActivateAt also folds in tRP after the closing PRE and tRFC after
      // a refresh — without it an MRS could slip inside a refresh window.
      sim::Tick t = std::max(next_column_cmd_, mrs_busy_until_);
      for (const auto& b : banks_) {
        t = std::max({t, b.CanPrechargeAt(), b.CanActivateAt()});
      }
      return t;
    }
  }
  return 0;
}

Result<sim::Tick> Rank::Issue(const Command& cmd, sim::Tick t) {
  NDP_CHECK(timing_ != nullptr);
  if (cmd.bank >= banks_.size() && cmd.type != CommandType::kRefresh &&
      cmd.type != CommandType::kModeRegSet) {
    return Status::InvalidArgument("bank index out of range");
  }
  if (t < EarliestIssue(cmd)) {
    return Status::TimingViolation("command " + cmd.ToString() +
                                   " issued before rank window expired");
  }
  switch (cmd.type) {
    case CommandType::kActivate: {
      NDP_RETURN_NOT_OK(banks_[cmd.bank].Activate(t, cmd.row));
      next_act_any_ = std::max(next_act_any_, t + Cycles(timing_->trrd));
      recent_activates_.push_back(t);
      while (recent_activates_.size() > 4) recent_activates_.pop_front();
      ++activates_issued_;
      return t;
    }
    case CommandType::kRead: {
      if (banks_[cmd.bank].armed()) {
        // Filter-mode RD: match bits latch in the bank; the shared column
        // path (tCCD window) is untouched.
        NDP_ASSIGN_OR_RETURN(sim::Tick done, banks_[cmd.bank].Read(t));
        ++filter_reads_issued_;
        return done;
      }
      NDP_ASSIGN_OR_RETURN(sim::Tick done, banks_[cmd.bank].Read(t));
      next_column_cmd_ = std::max(next_column_cmd_, t + Cycles(timing_->tccd));
      ++reads_issued_;
      return done;
    }
    case CommandType::kWrite: {
      NDP_ASSIGN_OR_RETURN(sim::Tick done, banks_[cmd.bank].Write(t));
      next_column_cmd_ = std::max(next_column_cmd_, t + Cycles(timing_->tccd));
      // tWTR starts at the end of write data.
      next_read_after_write_ =
          std::max(next_read_after_write_, done + Cycles(timing_->twtr));
      ++writes_issued_;
      return done;
    }
    case CommandType::kPrecharge: {
      Bank& b = banks_[cmd.bank];
      const bool drains = b.armed() && b.pending_fill();
      NDP_RETURN_NOT_OK(b.Precharge(t));
      if (drains) {
        // The accumulator streams out over the per-rank result bus while the
        // bank precharges; the caller learns when the match bits are home.
        NDP_CHECK(filter_ != nullptr);
        result_bus_free_at_ = t + Cycles(filter_->drain_cycles);
        b.NoteAccumulatorDrained();
        ++drains_completed_;
        return result_bus_free_at_;
      }
      return t;
    }
    case CommandType::kBankArm: {
      NDP_RETURN_NOT_OK(banks_[cmd.bank].Arm(t));
      ++bank_arms_issued_;
      return t;
    }
    case CommandType::kBankDisarm: {
      NDP_RETURN_NOT_OK(banks_[cmd.bank].Disarm(t));
      return t;
    }
    case CommandType::kRefresh: {
      if (AnyBankArmed()) {
        return Status::TimingViolation("REF to rank with armed banks");
      }
      if (!AllBanksIdle()) {
        return Status::TimingViolation("REF with open rows");
      }
      for (auto& b : banks_) NDP_RETURN_NOT_OK(b.Refresh(t));
      ++refreshes_issued_;
      return t + Cycles(timing_->trfc);
    }
    case CommandType::kModeRegSet: {
      if (!AllBanksIdle()) {
        return Status::TimingViolation("MRS with open rows");
      }
      mode_regs_[cmd.mode_register & 3] = cmd.mode_value;
      mrs_busy_until_ = t + Cycles(timing_->tmrd);
      return t;
    }
  }
  return Status::Internal("unreachable");
}

bool Rank::AllBanksIdle() const {
  for (const auto& b : banks_) {
    if (b.has_open_row()) return false;
  }
  return true;
}

void Rank::set_bank_filter_timing(const BankFilterTiming* filter) {
  filter_ = filter;
  for (auto& b : banks_) b.set_filter_timing(filter);
}

bool Rank::AnyBankArmed() const {
  for (const auto& b : banks_) {
    if (b.armed()) return true;
  }
  return false;
}

void Rank::ResetBankFilters() {
  for (auto& b : banks_) b.ResetFilter();
}

}  // namespace ndp::dram
