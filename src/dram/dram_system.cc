#include "dram/dram_system.h"

namespace ndp::dram {

DramSystem::DramSystem(sim::EventQueue* eq, DramTiming timing,
                       DramOrganization org, InterleaveScheme scheme,
                       ControllerConfig ctrl_config, const StatsScope& stats,
                       sim::PartitionSet* partitions)
    : eq_(eq),
      partitions_(partitions),
      timing_(std::move(timing)),
      org_(org),
      mapper_(org, scheme),
      backing_(org.TotalBytes()) {
  if (partitions_ != nullptr) {
    // One partition per channel (extra partitions — e.g. a host partition —
    // may follow the channels).
    NDP_CHECK(partitions_->num_partitions() >= org.channels);
  }
  channels_.reserve(org.channels);
  controllers_.reserve(org.channels);
  for (uint32_t c = 0; c < org.channels; ++c) {
    channels_.push_back(std::make_unique<Channel>());
    channels_.back()->Configure(&timing_, &org_);
#ifdef NDP_PROTOCOL_CHECK
    // Refresh-interval legality is only meaningful when this system's
    // controller actually schedules refreshes.
    channels_.back()->protocol_checker().set_expect_refresh(
        ctrl_config.refresh_enabled);
#endif
    controllers_.push_back(std::make_unique<MemoryController>(
        event_queue(c), channels_.back().get(), &mapper_, ctrl_config,
        stats.Sub("ctrl" + std::to_string(c))));
    // Per-rank ECC scrub counters (fault-injection read path, src/fault).
    StatsScope ch_scope = stats.Sub("ch" + std::to_string(c));
    Channel* ch = channels_.back().get();
    for (uint32_t r = 0; r < ch->num_ranks(); ++r) {
      const Rank& rank = ch->rank(r);
      StatsScope rank_scope = ch_scope.Sub("rank" + std::to_string(r));
      rank_scope.Counter("ecc_corrected",
                         [&rank] { return rank.ecc_corrected(); });
      rank_scope.Counter("ecc_uncorrectable",
                         [&rank] { return rank.ecc_uncorrectable(); });
    }
  }
}

Status DramSystem::EnqueueRequest(const Request& req) {
  NDP_ASSIGN_OR_RETURN(DramLocation loc, mapper_.Decode(req.addr));
  return controllers_[loc.channel]->Enqueue(req);
}

bool DramSystem::CanAccept(const Request& req) const {
  auto loc = mapper_.Decode(req.addr);
  if (!loc.ok()) return false;
  const MemoryController& mc = *controllers_[loc.value().channel];
  return req.is_write ? mc.CanAcceptWrite() : mc.CanAcceptRead();
}

ControllerCounters DramSystem::TotalCounters() const {
  ControllerCounters total;
  for (const auto& mc : controllers_) {
    ControllerCounters c = mc->counters();
    total.reads_served += c.reads_served;
    total.writes_served += c.writes_served;
    total.row_hits += c.row_hits;
    total.row_misses += c.row_misses;
    total.row_conflicts += c.row_conflicts;
    total.read_queue_busy_ticks += c.read_queue_busy_ticks;
    total.write_queue_busy_ticks += c.write_queue_busy_ticks;
  }
  return total;
}

void DramSystem::ResetCounters() {
  for (auto& mc : controllers_) mc->ResetCounters();
}

#ifdef NDP_PROTOCOL_CHECK
uint64_t DramSystem::TotalProtocolViolations() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) {
    total += ch->protocol_checker().violations().size();
  }
  return total;
}
#endif

}  // namespace ndp::dram
