#include "dram/timing.h"

namespace ndp::dram {

DramTiming DramTiming::DDR3_1600() {
  DramTiming t;
  t.name = "DDR3-1600K (11-11-11)";
  t.tck_ps = 1250;  // 800 MHz bus, 1600 MT/s
  t.cl = 11;        // 13.75 ns, the ~13 ns the paper quotes
  t.cwl = 8;
  t.trcd = 11;
  t.trp = 11;
  t.tras = 28;
  t.trc = 39;
  t.tccd = 4;
  t.tburst = 4;
  t.twr = 12;
  t.twtr = 6;
  t.trtp = 6;
  t.trrd = 5;
  t.tfaw = 24;
  t.trfc = 208;
  t.trefi = 6240;
  t.tmrd = 4;
  return t;
}

DramTiming DramTiming::DDR3_1066() {
  DramTiming t;
  t.name = "DDR3-1066F (7-7-7)";
  t.tck_ps = 1875;  // 533 MHz bus
  t.cl = 7;
  t.cwl = 6;
  t.trcd = 7;
  t.trp = 7;
  t.tras = 20;
  t.trc = 27;
  t.tccd = 4;
  t.tburst = 4;
  t.twr = 8;
  t.twtr = 4;
  t.trtp = 4;
  t.trrd = 4;
  t.tfaw = 20;
  t.trfc = 139;
  t.trefi = 4160;
  t.tmrd = 4;
  return t;
}

DramTiming DramTiming::DDR3_1866() {
  DramTiming t;
  t.name = "DDR3-1866M (13-13-13)";
  t.tck_ps = 1071;  // ~933 MHz bus
  t.cl = 13;
  t.cwl = 9;
  t.trcd = 13;
  t.trp = 13;
  t.tras = 32;
  t.trc = 45;
  t.tccd = 4;
  t.tburst = 4;
  t.twr = 14;
  t.twtr = 7;
  t.trtp = 7;
  t.trrd = 6;
  t.tfaw = 27;
  t.trfc = 243;
  t.trefi = 7284;
  t.tmrd = 4;
  return t;
}

}  // namespace ndp::dram
