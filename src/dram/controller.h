// The per-channel memory controller: FR-FCFS scheduling over separate read
// and write queues, open-page policy, write-drain watermarks, periodic
// refresh, and the performance counters the paper samples in §3.3 (cycles the
// read queue is busy, cycles the write queue is busy, request counts).
//
// Rank-ownership awareness: requests to a rank whose MR3/MPR bit is set (rank
// granted to JAFAR) are held in the queues until ownership returns.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "dram/channel.h"
#include "dram/request.h"
#include "sim/event_queue.h"
#include "sim/ticking.h"
#include "util/stats.h"
#include "util/stats_registry.h"
#include "util/status.h"

namespace ndp::dram {

/// Row-buffer management policy.
enum class PagePolicy : uint8_t {
  /// Leave rows open after column commands (bets on locality; the default,
  /// and what streaming scans and JAFAR want).
  kOpen,
  /// Close a row once no queued request targets it (bets against locality;
  /// saves the precharge on the conflict path of random traffic).
  kClosed,
};

/// Tunable controller policy parameters.
struct ControllerConfig {
  size_t read_queue_capacity = 64;
  size_t write_queue_capacity = 64;
  /// Enter write-drain mode when the write queue reaches this fill level.
  size_t write_drain_high = 48;
  /// Leave write-drain mode when it falls back to this level.
  size_t write_drain_low = 16;
  bool refresh_enabled = true;
  PagePolicy page_policy = PagePolicy::kOpen;
};

/// Counters mirroring the uncore IMC events the paper samples (§3.3).
struct ControllerCounters {
  uint64_t reads_served = 0;
  uint64_t writes_served = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;     ///< bank idle, ACT required
  uint64_t row_conflicts = 0;  ///< wrong row open, PRE+ACT required
  sim::Tick read_queue_busy_ticks = 0;   ///< RC_busy
  sim::Tick write_queue_busy_ticks = 0;  ///< WC_busy
};

/// \brief FR-FCFS memory controller for one channel.
class MemoryController : public sim::TickingComponent {
 public:
  /// `stats` (optional) mounts this controller's counters into a registry —
  /// reads_served, row_hits/misses/conflicts, rc/wc busy cycles (settled to
  /// "now" at read time), and the idle-period histogram.
  MemoryController(sim::EventQueue* eq, Channel* channel,
                   const AddressMapper* mapper, ControllerConfig config,
                   const StatsScope& stats = {});
  ~MemoryController() override;

  /// Enqueues a request. Fails with ResourceExhausted when the target queue is
  /// full; the caller must retry later (MSHR-style backpressure).
  Status Enqueue(const Request& req);

  bool CanAcceptRead() const { return read_q_.size() < config_.read_queue_capacity; }
  bool CanAcceptWrite() const {
    return write_q_.size() < config_.write_queue_capacity;
  }

  /// Requests an ownership transfer of `rank` by reprogramming MR3. The
  /// controller precharges all banks of the rank, issues the MRS, then invokes
  /// `done`. Transfers queue behind one another.
  void TransferOwnership(uint32_t rank, RankOwner new_owner,
                         std::function<void(sim::Tick)> done);

  bool HasPendingWork() const {
    return !read_q_.empty() || !write_q_.empty() || !mrs_q_.empty() ||
           refresh_in_progress_;
  }

  /// True while the controller is performing a refresh on `rank` (precharge
  /// drain + REF). Refresh outranks rank ownership: the JAFAR sequencer backs
  /// off the command bus for its duration instead of fighting the drain.
  bool RefreshClaims(uint32_t rank) const {
    return refresh_in_progress_ && refresh_rank_ == rank;
  }

  /// Counter snapshot. Busy-tick counters are settled up to the current tick.
  ControllerCounters counters() const;

  /// Observed distribution of periods during which BOTH queues were empty —
  /// ground truth against which the paper's pessimistic estimator compares.
  const Histogram& idle_period_histogram() const { return idle_hist_; }

  void ResetCounters();

  const ControllerConfig& config() const { return config_; }
  Channel* channel() { return channel_; }

 protected:
  bool Tick() override;

 private:
  struct QueuedRequest {
    Request req;
    DramLocation loc;
    sim::Tick arrival;
    bool caused_activate = false;   ///< an ACT was issued on its behalf
    bool caused_precharge = false;  ///< a PRE (row conflict) was issued
  };
  struct MrsOp {
    uint32_t rank;
    uint32_t value;
    std::function<void(sim::Tick)> done;
    bool precharging = false;
  };

  // Scheduling helpers; each returns true if a command was issued this tick.
  bool TryRefresh(sim::Tick now);
  bool TryMrs(sim::Tick now);
  /// Closed-page policy: precharges open banks no queued request needs.
  bool TryCloseIdleRows(sim::Tick now);
  bool ServeQueue(std::deque<QueuedRequest>* q, bool is_write, sim::Tick now);
  bool IssueForRequest(QueuedRequest* qr, bool is_write, sim::Tick now,
                       bool* completed);

  void NoteQueueStateChange(sim::Tick now);
  void ScheduleRefreshWake();
  void RefreshWake() { Wake(); }
  /// Time at which refresh of `rank` stops deferring to accelerator ownership.
  sim::Tick RefreshEmergencyAt(uint32_t rank) const;

  Channel* channel_;
  const AddressMapper* mapper_;
  ControllerConfig config_;
  sim::ClockDomain bus_;

  std::deque<QueuedRequest> read_q_;
  std::deque<QueuedRequest> write_q_;
  std::deque<MrsOp> mrs_q_;

  bool write_drain_mode_ = false;
  bool has_open_rows_hint_ = false;  ///< closed-page: rows still to close
  bool refresh_in_progress_ = false;
  std::vector<sim::Tick> next_refresh_due_;
  uint32_t refresh_rank_ = 0;
  /// Persistent wake-up for the next refresh deadline; rescheduling it is
  /// allocation-free (one of these exists for the controller's lifetime).
  sim::MemberEventNode<MemoryController, &MemoryController::RefreshWake>
      refresh_wake_{this};

  // Busy-time accounting (transition-timestamp based, exact).
  ControllerCounters counters_;
  std::optional<sim::Tick> read_busy_since_;
  std::optional<sim::Tick> write_busy_since_;
  std::optional<sim::Tick> idle_since_;
  Histogram idle_hist_{0, 4000, 80};  ///< idle periods, in bus cycles
};

}  // namespace ndp::dram
