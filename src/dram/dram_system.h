// Top-level memory system: address mapper + channels + one controller per
// channel + the functional backing store. This is what the cache hierarchy
// (host path) talks to, and what JAFAR devices attach to (device path).
#pragma once

#include <memory>
#include <vector>

#include "dram/address.h"
#include "dram/backing_store.h"
#include "dram/controller.h"
#include "sim/event_queue.h"
#include "sim/partition.h"
#include "util/status.h"

namespace ndp::dram {

/// \brief The complete simulated DRAM subsystem.
class DramSystem {
 public:
  /// `stats` (optional) mounts per-controller counters at
  /// "<prefix>.ctrl<i>.*" in the given registry. `partitions` (optional)
  /// puts channel c's controller (and everything clocked by it) on partition
  /// c's timing wheel instead of `eq` — the parallel-in-time mode; `eq`
  /// remains the host-side queue.
  DramSystem(sim::EventQueue* eq, DramTiming timing, DramOrganization org,
             InterleaveScheme scheme, ControllerConfig ctrl_config,
             const StatsScope& stats = {},
             sim::PartitionSet* partitions = nullptr);
  NDP_DISALLOW_COPY_AND_ASSIGN(DramSystem);

  /// Routes a burst request through the owning channel's controller.
  /// The functional data transfer against the backing store happens at
  /// completion time for reads and at enqueue time for writes.
  Status EnqueueRequest(const Request& req);

  bool CanAccept(const Request& req) const;

  const AddressMapper& mapper() const { return mapper_; }
  const DramTiming& timing() const { return timing_; }
  const DramOrganization& organization() const { return org_; }

  uint32_t num_channels() const { return static_cast<uint32_t>(channels_.size()); }
  Channel& channel(uint32_t c) { return *channels_[c]; }
  MemoryController& controller(uint32_t c) { return *controllers_[c]; }

  BackingStore& backing_store() { return backing_; }
  const BackingStore& backing_store() const { return backing_; }

  /// Aggregated counters across all channels.
  ControllerCounters TotalCounters() const;
  void ResetCounters();

#ifdef NDP_PROTOCOL_CHECK
  /// Sum of recorded protocol violations across every channel's checker
  /// (always zero while the checkers are in their default fail-fast mode).
  uint64_t TotalProtocolViolations() const;
#endif

  sim::EventQueue* event_queue() { return eq_; }
  /// The wheel channel `c`'s controller and devices schedule on: partition
  /// c's queue in partitioned mode, the shared host queue otherwise.
  sim::EventQueue* event_queue(uint32_t c) {
    return partitions_ != nullptr ? &partitions_->queue(c) : eq_;
  }
  sim::PartitionSet* partitions() { return partitions_; }

 private:
  sim::EventQueue* eq_;
  sim::PartitionSet* partitions_;
  DramTiming timing_;
  DramOrganization org_;
  AddressMapper mapper_;
  BackingStore backing_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<MemoryController>> controllers_;
};

}  // namespace ndp::dram
