#include "dram/channel.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::dram {

void Channel::Configure(const DramTiming* timing, const DramOrganization* org) {
  timing_ = timing;
  org_ = org;
  bus_ = timing->BusClock();
  ranks_.resize(org->ranks_per_channel);
  for (auto& r : ranks_) r.Configure(timing, org);
#ifdef NDP_PROTOCOL_CHECK
  checker_.Configure(timing, org);
  checker_.set_fail_fast(true);
#endif
}

sim::Tick Channel::EarliestIssue(const Command& cmd) const {
  NDP_CHECK(cmd.rank < ranks_.size());
  sim::Tick t = std::max(ranks_[cmd.rank].EarliestIssue(cmd), cmd_bus_next_free_);
  // Data-bus availability: the burst must not overlap a burst already
  // scheduled by another rank/agent. Filter-mode RDs (armed bank) evaluate
  // inside the bank and never drive the shared data bus, so only the command
  // bus gates them.
  if (cmd.type == CommandType::kRead &&
      !ranks_[cmd.rank].bank(cmd.bank).armed()) {
    sim::Tick lat = timing_->cl * bus_.period_ps();
    if (t + lat < data_bus_free_at_) t = data_bus_free_at_ - lat;
  } else if (cmd.type == CommandType::kWrite) {
    sim::Tick lat = timing_->cwl * bus_.period_ps();
    if (t + lat < data_bus_free_at_) t = data_bus_free_at_ - lat;
  }
  return bus_.NextEdgeAtOrAfter(t);
}

Result<sim::Tick> Channel::Issue(const Command& cmd, sim::Tick t) {
  NDP_CHECK(cmd.rank < ranks_.size());
  NDP_DCHECK(t % bus_.period_ps() == 0);
  if (t < EarliestIssue(cmd)) {
    return Status::TimingViolation("channel: " + cmd.ToString() +
                                   " issued before bus available");
  }
  // Whether this RD feeds an armed bank's comparator (no data-bus burst);
  // must be sampled before Issue in case it mutates filter state.
  const bool filter_read = cmd.type == CommandType::kRead &&
                           ranks_[cmd.rank].bank(cmd.bank).armed();
  NDP_ASSIGN_OR_RETURN(sim::Tick done, ranks_[cmd.rank].Issue(cmd, t));
#ifdef NDP_PROTOCOL_CHECK
  // Audit only commands the device model accepted: the checker's job is to
  // catch schedules that are illegal per JEDEC yet slipped past the model.
  checker_.Observe(cmd, t);
#endif
  cmd_bus_next_free_ = t + bus_.period_ps();
  if ((cmd.type == CommandType::kRead && !filter_read) ||
      cmd.type == CommandType::kWrite) {
    data_bus_free_at_ = done;
    data_bus_busy_ticks_ += timing_->tburst * bus_.period_ps();
  }
  return done;
}

void Channel::SetBankFilterTiming(uint32_t rank, const BankFilterTiming* filter) {
  NDP_CHECK(rank < ranks_.size());
  ranks_[rank].set_bank_filter_timing(filter);
#ifdef NDP_PROTOCOL_CHECK
  checker_.set_bank_filter_timing(rank, filter);
#endif
}

void Channel::ResetBankFilters(uint32_t rank) {
  NDP_CHECK(rank < ranks_.size());
  ranks_[rank].ResetBankFilters();
#ifdef NDP_PROTOCOL_CHECK
  checker_.NoteBankFilterReset(rank);
#endif
}

void Channel::NoteProbeFilterLoadStart(uint32_t rank, sim::Tick t) {
  NDP_CHECK(rank < ranks_.size());
#ifdef NDP_PROTOCOL_CHECK
  checker_.NoteProbeFilterLoadStart(rank, t);
#else
  (void)t;
#endif
}

void Channel::NoteProbeFilterLoadDone(uint32_t rank) {
  NDP_CHECK(rank < ranks_.size());
#ifdef NDP_PROTOCOL_CHECK
  checker_.NoteProbeFilterLoadDone(rank);
#endif
}

}  // namespace ndp::dram
