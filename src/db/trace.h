// Memory-trace recording for the Figure 4 profiling methodology. Operators
// report their access patterns (sequential scans, gathers, hash probes,
// result appends, interleaved compute) to a TraceRecorder, which lays columns
// out at synthetic physical addresses and produces the cpu::TraceEvent stream
// that is replayed through the simulated Xeon-class memory system while the
// paper's RC_busy / WC_busy counters are sampled.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/kernels.h"
#include "db/column.h"
#include "util/rng.h"
#include "util/macros.h"

namespace ndp::db {

/// \brief Records operator memory behaviour as a replayable event stream.
///
/// Sampling: with sample_period = k, one in k accesses is kept and the
/// compute of skipped iterations is dropped with them, so the compute-to-
/// memory ratio of the replayed trace matches the full execution — a
/// statistically representative 1/k slice of the query (the paper itself
/// argues sampling suffices for regular workloads, §3.1).
class TraceRecorder {
 public:
  /// `compute_scale` multiplies every recorded compute gap: the operator
  /// hooks report tight-loop µop counts, while an interpreted engine like the
  /// MonetDB the paper profiles spends several times that per value on BAT
  /// bookkeeping, type dispatch, and materialization glue. The Figure 4
  /// harness calibrates this factor (see EXPERIMENTS.md).
  explicit TraceRecorder(uint32_t sample_period = 1, uint32_t compute_scale = 1)
      : sample_period_(sample_period), compute_scale_(compute_scale) {
    NDP_CHECK(sample_period >= 1);
    NDP_CHECK(compute_scale >= 1);
  }

  /// Assigns (or returns) the synthetic physical base address of a column.
  uint64_t LayoutColumn(const Column& col) {
    auto it = layout_.find(&col);
    if (it != layout_.end()) return it->second;
    uint64_t base = next_addr_;
    // 4 KB alignment, contiguous columns.
    uint64_t bytes = (col.SizeBytes() + 4095) / 4096 * 4096;
    next_addr_ += bytes;
    layout_.emplace(&col, base);
    return base;
  }

  /// Allocates an anonymous buffer region (intermediates, hash tables).
  uint64_t AllocRegion(uint64_t bytes, const std::string& /*label*/) {
    uint64_t base = next_addr_;
    next_addr_ += (bytes + 4095) / 4096 * 4096;
    return base;
  }

  // -- Operator hooks --------------------------------------------------------

  /// `uops` of pure compute between memory events.
  void Compute(uint64_t uops) {
    if (uops == 0) return;
    pending_compute_ += uops * compute_scale_;
  }

  void Load(uint64_t addr) {
    if (Sampled()) {
      Emit(cpu::TraceEvent{cpu::TraceEvent::Kind::kLoad, addr});
    } else {
      pending_compute_ = 0;  // drop the skipped iteration's compute too
    }
  }

  void Store(uint64_t addr) {
    if (Sampled()) {
      Emit(cpu::TraceEvent{cpu::TraceEvent::Kind::kStore, addr});
    } else {
      pending_compute_ = 0;
    }
  }

  /// Sequential read of `count` values of `width` bytes from `base`.
  void SequentialLoads(uint64_t base, uint64_t count, uint32_t width,
                       uint64_t compute_uops_per_value) {
    for (uint64_t i = 0; i < count; ++i) {
      Compute(compute_uops_per_value);
      Load(base + i * width);
    }
  }

  const std::vector<cpu::TraceEvent>& events() const { return events_; }
  uint64_t total_accesses() const { return total_accesses_; }
  void Clear() {
    events_.clear();
    pending_compute_ = 0;
    total_accesses_ = 0;
  }

  uint32_t sample_period() const { return sample_period_; }

 private:
  bool Sampled() {
    ++total_accesses_;
    if (sample_period_ == 1) return true;
    // Pseudo-random (deterministic) selection: a modulo counter would phase-
    // lock onto alternating load/store patterns and sample only one kind.
    return rng_.NextBounded(sample_period_) == 0;
  }

  void Emit(cpu::TraceEvent ev) {
    if (pending_compute_ > 0) {
      events_.push_back(
          cpu::TraceEvent{cpu::TraceEvent::Kind::kCompute, pending_compute_});
      pending_compute_ = 0;
    }
    events_.push_back(ev);
  }

  uint32_t sample_period_;
  uint32_t compute_scale_;
  Rng rng_{0x7ace5eedULL};
  uint64_t next_addr_ = 0;
  uint64_t pending_compute_ = 0;
  uint64_t total_accesses_ = 0;
  std::unordered_map<const Column*, uint64_t> layout_;
  std::vector<cpu::TraceEvent> events_;
};

}  // namespace ndp::db
