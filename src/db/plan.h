// A bulk-processing physical plan layer over the column-store operators:
// plans are trees of nodes executed operator-at-a-time (each node consumes
// and produces whole column batches, MonetDB-style). A small optimizer pushes
// filters into scans — where they become position-list selects eligible for
// JAFAR pushdown through QueryContext::ndp_select — and Explain() renders the
// tree for inspection.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/operators.h"
#include "db/table.h"

namespace ndp::db::plan {

/// \brief A bulk intermediate: equal-length named int64 vectors.
struct Batch {
  std::vector<std::string> names;
  std::vector<std::vector<int64_t>> columns;

  size_t rows() const { return columns.empty() ? 0 : columns[0].size(); }
  /// Index of `name`, or -1.
  int Find(const std::string& name) const;
  const std::vector<int64_t>& Col(const std::string& name) const;
  void Add(std::string name, std::vector<int64_t> values);
};

/// \brief Base physical plan node.
class Node {
 public:
  virtual ~Node() = default;
  virtual Result<Batch> Execute(QueryContext* ctx) = 0;
  virtual void Explain(std::string* out, int indent) const = 0;
  std::string ExplainString() const {
    std::string s;
    Explain(&s, 0);
    return s;
  }
};

using NodePtr = std::unique_ptr<Node>;

/// \brief Leaf scan: emits the requested columns of a table, applying its
/// conjuncts as position-list selects first (the JAFAR-pushdown-eligible
/// path) and late-materializing only qualifying rows.
class ScanNode : public Node {
 public:
  ScanNode(const Table* table, std::vector<std::string> output_cols)
      : table_(table), output_cols_(std::move(output_cols)) {}

  /// Adds a pushed-down conjunct on `col`.
  void AddConjunct(std::string col, Pred pred) {
    conjuncts_.emplace_back(std::move(col), pred);
  }
  size_t num_conjuncts() const { return conjuncts_.size(); }
  const Table* table() const { return table_; }

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

 private:
  const Table* table_;
  std::vector<std::string> output_cols_;
  std::vector<std::pair<std::string, Pred>> conjuncts_;
};

/// \brief Filter on a materialized batch column.
class FilterNode : public Node {
 public:
  FilterNode(NodePtr child, std::string col, Pred pred)
      : child_(std::move(child)), col_(std::move(col)), pred_(pred) {}

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

  Node* child() { return child_.get(); }
  NodePtr TakeChild() { return std::move(child_); }
  const std::string& column() const { return col_; }
  const Pred& pred() const { return pred_; }

 private:
  NodePtr child_;
  std::string col_;
  Pred pred_;
};

/// A computed column: out = fn(inputs...), evaluated row-wise.
struct Expr {
  std::string name;
  std::vector<std::string> inputs;
  std::function<int64_t(const std::vector<int64_t>&)> fn;
};

/// \brief Projection: keeps `keep` columns and appends computed expressions.
class ProjectNode : public Node {
 public:
  ProjectNode(NodePtr child, std::vector<std::string> keep,
              std::vector<Expr> exprs = {})
      : child_(std::move(child)), keep_(std::move(keep)),
        exprs_(std::move(exprs)) {}

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

 private:
  NodePtr child_;
  std::vector<std::string> keep_;
  std::vector<Expr> exprs_;
};

/// \brief Hash equi-join; output columns are the union (right side's key
/// column is dropped; duplicate names get an "r_" prefix).
class HashJoinNode : public Node {
 public:
  HashJoinNode(NodePtr left, NodePtr right, std::string left_key,
               std::string right_key)
      : left_(std::move(left)), right_(std::move(right)),
        left_key_(std::move(left_key)), right_key_(std::move(right_key)) {}

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

 private:
  NodePtr left_, right_;
  std::string left_key_, right_key_;
};

/// One aggregate output of an AggregateNode.
struct AggOutput {
  AggFn fn;
  std::string input;  ///< ignored for kCount
  std::string output_name;
};

/// \brief Hash group-by over one or more key columns (keys packed into one
/// int64; key columns are re-emitted alongside the aggregates).
class AggregateNode : public Node {
 public:
  AggregateNode(NodePtr child, std::vector<std::string> group_cols,
                std::vector<AggOutput> aggs)
      : child_(std::move(child)), group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)) {}

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

 private:
  NodePtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggOutput> aggs_;
};

/// \brief Sort by one column, optional limit (top-k).
class SortNode : public Node {
 public:
  SortNode(NodePtr child, std::string key, bool descending = false,
           size_t limit = 0)
      : child_(std::move(child)), key_(std::move(key)),
        descending_(descending), limit_(limit) {}

  Result<Batch> Execute(QueryContext* ctx) override;
  void Explain(std::string* out, int indent) const override;

 private:
  NodePtr child_;
  std::string key_;
  bool descending_;
  size_t limit_;
};

// -- Optimizer -----------------------------------------------------------------

/// Pushes FilterNodes down into ScanNodes as conjuncts where the filtered
/// column belongs to the scan's table (making them NDP-pushdown-eligible).
/// Returns the (possibly replaced) root.
NodePtr PushFiltersIntoScans(NodePtr root);

}  // namespace ndp::db::plan
