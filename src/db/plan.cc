#include "db/plan.h"

#include <algorithm>
#include <map>

#include "util/macros.h"

namespace ndp::db::plan {

namespace {
void Indent(std::string* out, int n) { out->append(static_cast<size_t>(n) * 2, ' '); }

const char* PredOpName(Pred::Op op) {
  switch (op) {
    case Pred::Op::kBetween: return "between";
    case Pred::Op::kEq: return "=";
    case Pred::Op::kNe: return "!=";
    case Pred::Op::kLt: return "<";
    case Pred::Op::kGt: return ">";
    case Pred::Op::kLe: return "<=";
    case Pred::Op::kGe: return ">=";
  }
  return "?";
}

std::string PredToString(const Pred& pred) {
  if (pred.op == Pred::Op::kBetween) {
    return "between " + std::to_string(pred.lo) + " and " +
           std::to_string(pred.hi);
  }
  return std::string(PredOpName(pred.op)) + " " + std::to_string(pred.lo);
}
}  // namespace

int Batch::Find(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<int64_t>& Batch::Col(const std::string& name) const {
  int i = Find(name);
  NDP_CHECK_MSG(i >= 0, name.c_str());
  return columns[static_cast<size_t>(i)];
}

void Batch::Add(std::string name, std::vector<int64_t> values) {
  NDP_CHECK(columns.empty() || values.size() == rows());
  names.push_back(std::move(name));
  columns.push_back(std::move(values));
}

// -- ScanNode -------------------------------------------------------------------

Result<Batch> ScanNode::Execute(QueryContext* ctx) {
  // Positions first (selects, JAFAR-eligible), then late materialization.
  PositionList pos;
  bool have_pos = false;
  // Multi-conjunct scans prefer the batched hook: all conjuncts submitted to
  // the NDP runtime at once (their leases overlap across devices), then
  // intersected host-side. Any error falls back to the sequential path.
  if (ctx != nullptr && ctx->ndp_select_batch && conjuncts_.size() > 1) {
    std::vector<std::pair<const Column*, Pred>> selects;
    for (const auto& [col_name, pred] : conjuncts_) {
      const Column* col = table_->FindColumn(col_name);
      if (col == nullptr) {
        return Status::NotFound("scan conjunct column '" + col_name + "'");
      }
      selects.emplace_back(col, pred);
    }
    Result<std::vector<PositionList>> lists = ctx->ndp_select_batch(selects);
    if (lists.ok()) {
      std::vector<PositionList>& per_conjunct = lists.value();
      pos = std::move(per_conjunct[0]);
      for (size_t i = 1; i < per_conjunct.size(); ++i) {
        pos = IntersectSorted(pos, per_conjunct[i]);
      }
      ctx->Record("scan_select_batch", table_->num_rows() * selects.size(),
                  pos.size());
      have_pos = true;
    }
  }
  if (!have_pos) {
    for (const auto& [col_name, pred] : conjuncts_) {
      const Column* col = table_->FindColumn(col_name);
      if (col == nullptr) {
        return Status::NotFound("scan conjunct column '" + col_name + "'");
      }
      if (!have_pos) {
        pos = ScanSelect(ctx, *col, pred);
        have_pos = true;
      } else {
        pos = Refine(ctx, *col, pred, pos);
      }
    }
  }
  if (!have_pos) {
    pos.resize(table_->num_rows());
    for (size_t i = 0; i < pos.size(); ++i) pos[i] = static_cast<uint32_t>(i);
  }
  Batch out;
  for (const std::string& name : output_cols_) {
    const Column* col = table_->FindColumn(name);
    if (col == nullptr) {
      return Status::NotFound("scan output column '" + name + "'");
    }
    out.Add(name, Gather(ctx, *col, pos));
  }
  return out;
}

void ScanNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Scan " + table_->name() + " [";
  for (size_t i = 0; i < output_cols_.size(); ++i) {
    *out += (i ? ", " : "") + output_cols_[i];
  }
  *out += "]";
  for (const auto& [col, pred] : conjuncts_) {
    *out += " where " + col + " " + PredToString(pred);
  }
  *out += "\n";
}

// -- FilterNode -----------------------------------------------------------------

Result<Batch> FilterNode::Execute(QueryContext* ctx) {
  NDP_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  int ci = in.Find(col_);
  if (ci < 0) return Status::NotFound("filter column '" + col_ + "'");
  const auto& vals = in.columns[static_cast<size_t>(ci)];
  std::vector<size_t> keep;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (pred_.Eval(vals[i])) keep.push_back(i);
  }
  if (ctx->trace) ctx->trace->Compute(vals.size() * 3);
  Batch out;
  for (size_t c = 0; c < in.columns.size(); ++c) {
    std::vector<int64_t> col;
    col.reserve(keep.size());
    for (size_t i : keep) col.push_back(in.columns[c][i]);
    out.Add(in.names[c], std::move(col));
  }
  ctx->Record("plan_filter[" + col_ + "]", vals.size(), keep.size());
  return out;
}

void FilterNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Filter " + col_ + " " + PredToString(pred_) + "\n";
  child_->Explain(out, indent + 1);
}

// -- ProjectNode ----------------------------------------------------------------

Result<Batch> ProjectNode::Execute(QueryContext* ctx) {
  NDP_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  Batch out;
  for (const std::string& name : keep_) {
    int i = in.Find(name);
    if (i < 0) return Status::NotFound("project column '" + name + "'");
    out.Add(name, in.columns[static_cast<size_t>(i)]);
  }
  for (const Expr& e : exprs_) {
    std::vector<const std::vector<int64_t>*> ins;
    for (const std::string& name : e.inputs) {
      int i = in.Find(name);
      if (i < 0) return Status::NotFound("expr input '" + name + "'");
      ins.push_back(&in.columns[static_cast<size_t>(i)]);
    }
    std::vector<int64_t> vals(in.rows());
    std::vector<int64_t> args(ins.size());
    for (size_t r = 0; r < in.rows(); ++r) {
      for (size_t a = 0; a < ins.size(); ++a) args[a] = (*ins[a])[r];
      vals[r] = e.fn(args);
    }
    if (ctx->trace) ctx->trace->Compute(in.rows() * (1 + ins.size()));
    out.Add(e.name, std::move(vals));
  }
  ctx->Record("plan_project", in.rows(), out.rows());
  return out;
}

void ProjectNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Project [";
  bool first = true;
  for (const std::string& k : keep_) {
    if (!first) *out += ", ";
    *out += k;
    first = false;
  }
  for (const Expr& e : exprs_) {
    if (!first) *out += ", ";
    *out += e.name + "=f(...)";
    first = false;
  }
  *out += "]\n";
  child_->Explain(out, indent + 1);
}

// -- HashJoinNode ---------------------------------------------------------------

Result<Batch> HashJoinNode::Execute(QueryContext* ctx) {
  NDP_ASSIGN_OR_RETURN(Batch l, left_->Execute(ctx));
  NDP_ASSIGN_OR_RETURN(Batch r, right_->Execute(ctx));
  int lk = l.Find(left_key_);
  int rk = r.Find(right_key_);
  if (lk < 0 || rk < 0) {
    return Status::NotFound("join key missing: " + left_key_ + "/" + right_key_);
  }
  const auto& lkeys = l.columns[static_cast<size_t>(lk)];
  const auto& rkeys = r.columns[static_cast<size_t>(rk)];
  std::unordered_multimap<int64_t, size_t> ht;
  ht.reserve(lkeys.size());
  for (size_t i = 0; i < lkeys.size(); ++i) ht.emplace(lkeys[i], i);
  std::vector<size_t> li, ri;
  for (size_t j = 0; j < rkeys.size(); ++j) {
    auto [first, last] = ht.equal_range(rkeys[j]);
    for (auto it = first; it != last; ++it) {
      li.push_back(it->second);
      ri.push_back(j);
    }
  }
  if (ctx->trace) {
    ctx->trace->Compute(lkeys.size() * 12 + rkeys.size() * 10);
  }
  Batch out;
  for (size_t c = 0; c < l.columns.size(); ++c) {
    std::vector<int64_t> col;
    col.reserve(li.size());
    for (size_t i : li) col.push_back(l.columns[c][i]);
    out.Add(l.names[c], std::move(col));
  }
  for (size_t c = 0; c < r.columns.size(); ++c) {
    if (static_cast<int>(c) == rk) continue;  // drop duplicate key
    std::vector<int64_t> col;
    col.reserve(ri.size());
    for (size_t j : ri) col.push_back(r.columns[c][j]);
    std::string name = r.names[c];
    if (out.Find(name) >= 0) name = "r_" + name;
    out.Add(std::move(name), std::move(col));
  }
  ctx->Record("plan_hash_join", lkeys.size() + rkeys.size(), out.rows());
  return out;
}

void HashJoinNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "HashJoin " + left_key_ + " = " + right_key_ + "\n";
  left_->Explain(out, indent + 1);
  right_->Explain(out, indent + 1);
}

// -- AggregateNode ----------------------------------------------------------------

Result<Batch> AggregateNode::Execute(QueryContext* ctx) {
  NDP_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  // Pack group keys: assumes each key column fits in 21 bits unless there is
  // only one (the common case: dictionary codes and small ids).
  std::vector<const std::vector<int64_t>*> keys;
  for (const std::string& g : group_cols_) {
    int i = in.Find(g);
    if (i < 0) return Status::NotFound("group column '" + g + "'");
    keys.push_back(&in.columns[static_cast<size_t>(i)]);
  }
  std::vector<int64_t> packed(in.rows(), 0);
  if (keys.size() == 1) {
    packed = *keys[0];
  } else {
    for (size_t r = 0; r < in.rows(); ++r) {
      int64_t k = 0;
      for (const auto* kc : keys) {
        int64_t v = (*kc)[r];
        NDP_CHECK_MSG(v >= 0 && v < (int64_t{1} << 21),
                      "multi-key group value out of packing range");
        k = (k << 21) | v;
      }
      packed[r] = k;
    }
  }
  std::vector<AggSpec> specs;
  std::vector<const std::vector<int64_t>*> inputs;
  for (const AggOutput& a : aggs_) {
    const std::vector<int64_t>* input = nullptr;
    if (a.fn != AggFn::kCount) {
      int i = in.Find(a.input);
      if (i < 0) return Status::NotFound("aggregate input '" + a.input + "'");
      input = &in.columns[static_cast<size_t>(i)];
    }
    specs.push_back(AggSpec{a.fn, input});
  }
  auto groups = GroupAggregate(ctx, packed, specs);

  Batch out;
  std::vector<std::vector<int64_t>> key_cols(group_cols_.size());
  std::vector<std::vector<int64_t>> agg_cols(aggs_.size());
  for (const auto& [key, vals] : groups) {
    int64_t k = key;
    for (size_t g = group_cols_.size(); g-- > 0;) {
      if (keys.size() == 1) {
        key_cols[g].push_back(k);
      } else {
        key_cols[g].push_back(k & ((int64_t{1} << 21) - 1));
        k >>= 21;
      }
    }
    for (size_t a = 0; a < aggs_.size(); ++a) agg_cols[a].push_back(vals[a]);
  }
  for (size_t g = 0; g < group_cols_.size(); ++g) {
    out.Add(group_cols_[g], std::move(key_cols[g]));
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    out.Add(aggs_[a].output_name, std::move(agg_cols[a]));
  }
  return out;
}

void AggregateNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Aggregate group by [";
  for (size_t i = 0; i < group_cols_.size(); ++i) {
    *out += (i ? ", " : "") + group_cols_[i];
  }
  *out += "] -> [";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    *out += (i ? ", " : "") + aggs_[i].output_name;
  }
  *out += "]\n";
  child_->Explain(out, indent + 1);
}

// -- SortNode -------------------------------------------------------------------

Result<Batch> SortNode::Execute(QueryContext* ctx) {
  NDP_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  int ki = in.Find(key_);
  if (ki < 0) return Status::NotFound("sort key '" + key_ + "'");
  const auto& keys = in.columns[static_cast<size_t>(ki)];
  std::vector<size_t> order(in.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return descending_ ? keys[a] > keys[b] : keys[a] < keys[b];
  });
  if (limit_ > 0 && order.size() > limit_) order.resize(limit_);
  if (ctx->trace) ctx->trace->Compute(in.rows() * 6);
  Batch out;
  for (size_t c = 0; c < in.columns.size(); ++c) {
    std::vector<int64_t> col;
    col.reserve(order.size());
    for (size_t i : order) col.push_back(in.columns[c][i]);
    out.Add(in.names[c], std::move(col));
  }
  ctx->Record("plan_sort[" + key_ + "]", in.rows(), out.rows());
  return out;
}

void SortNode::Explain(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Sort " + key_ + (descending_ ? " desc" : " asc");
  if (limit_ > 0) *out += " limit " + std::to_string(limit_);
  *out += "\n";
  child_->Explain(out, indent + 1);
}

// -- Optimizer -------------------------------------------------------------------

NodePtr PushFiltersIntoScans(NodePtr root) {
  // Only the Filter->...->Scan chain at the root of each subtree is handled;
  // plans are small enough that a single recursive pattern suffices.
  if (auto* filter = dynamic_cast<FilterNode*>(root.get())) {
    // First optimize the subtree below.
    NodePtr child = PushFiltersIntoScans(filter->TakeChild());
    if (auto* scan = dynamic_cast<ScanNode*>(child.get())) {
      if (scan->table()->FindColumn(filter->column()) != nullptr) {
        scan->AddConjunct(filter->column(), filter->pred());
        return child;  // the filter dissolves into the scan
      }
    }
    return std::make_unique<FilterNode>(std::move(child), filter->column(),
                                        filter->pred());
  }
  // Other nodes: no children rewiring API; handled by construction order in
  // practice (filters are introduced directly above scans by plan builders).
  return root;
}

}  // namespace ndp::db::plan
