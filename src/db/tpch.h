// TPC-H-lite: a scaled-down, self-contained implementation of the TPC-H
// schema subset and data distributions needed by the filter-heavy queries the
// paper profiles in Figure 4 (Q1, Q3, Q6, Q18, Q22). Monetary values are in
// cents, percentages in whole points, and dates in days since 1992-01-01 —
// all int64, hence directly scannable by JAFAR.
#pragma once

#include <cstdint>

#include "db/table.h"
#include "util/rng.h"

namespace ndp::db::tpch {

/// Days since 1992-01-01 for a Gregorian date.
int64_t DayNumber(int year, int month, int day);

/// Generation parameters. scale = 1.0 would be full TPC-H row counts
/// (6M lineitem); the paper-style sampled runs use much smaller scales.
struct TpchConfig {
  double scale = 0.01;  ///< 0.01 -> ~60k lineitem rows
  uint64_t seed = 20150601;  // DaMoN'15
  /// Zipf exponent for the lines-per-order multiplicity. 0 keeps the classic
  /// uniform 1..7 draw (and the exact historical rng stream, so existing
  /// datasets are byte-identical). theta > 0 concentrates lineitem rows on
  /// low orderkeys — order with rank r gets a line budget proportional to
  /// r^-theta (capped, min 1) — which skews the Q18 group-by and the Q3
  /// orderkey join the way the abl_join skew sweep needs.
  double skew_theta = 0.0;

  uint64_t num_customers() const {
    return static_cast<uint64_t>(150000 * scale) + 1;
  }
  uint64_t num_orders() const { return num_customers() * 10; }
};

/// Populates `catalog` with customer, orders, and lineitem tables.
void Generate(const TpchConfig& config, Catalog* catalog);

// Dictionary-backed enumerations used by the generator and queries.
inline constexpr const char* kMktSegments[] = {"AUTOMOBILE", "BUILDING",
                                               "FURNITURE", "HOUSEHOLD",
                                               "MACHINERY"};
inline constexpr int kNumMktSegments = 5;

}  // namespace ndp::db::tpch
