// Bulk-processing relational operators of the prototype column-store
// (paper §3.1: "an in-house prototype column-store capable of performing
// select-project-join queries using bulk processing"). Operators are
// column-at-a-time (MonetDB-style): each consumes and produces full
// position lists / value vectors, which is what makes late materialization
// and JAFAR select pushdown natural.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "db/column.h"
#include "db/trace.h"
#include "util/bitvector.h"
#include "util/stats_registry.h"
#include "util/status.h"

namespace ndp::db {

/// Predicate over int64 values (dictionary codes included).
struct Pred {
  enum class Op : uint8_t { kBetween, kEq, kNe, kLt, kGt, kLe, kGe };
  Op op = Op::kBetween;
  int64_t lo = 0;
  int64_t hi = 0;

  static Pred Between(int64_t lo, int64_t hi) {
    return Pred{Op::kBetween, lo, hi};
  }
  static Pred Eq(int64_t v) { return Pred{Op::kEq, v, v}; }
  static Pred Ne(int64_t v) { return Pred{Op::kNe, v, v}; }
  static Pred Lt(int64_t v) { return Pred{Op::kLt, v, 0}; }
  static Pred Gt(int64_t v) { return Pred{Op::kGt, v, 0}; }
  static Pred Le(int64_t v) { return Pred{Op::kLe, v, 0}; }
  static Pred Ge(int64_t v) { return Pred{Op::kGe, v, 0}; }

  bool Eval(int64_t v) const {
    switch (op) {
      case Op::kBetween: return v >= lo && v <= hi;
      case Op::kEq: return v == lo;
      case Op::kNe: return v != lo;
      case Op::kLt: return v < lo;
      case Op::kGt: return v > lo;
      case Op::kLe: return v <= lo;
      case Op::kGe: return v >= lo;
    }
    return false;
  }
};

/// CPU select implementation style (§3.2 discusses branching vs. predication).
enum class SelectMode : uint8_t { kBranching, kPredicated };

/// Row positions, the currency of late materialization.
using PositionList = std::vector<uint32_t>;

/// Per-operator accounting, also used to sanity-check plans in tests.
struct OperatorStats {
  std::string op;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// Signature of an NDP select pushdown hook (wired by ndp::core): given a
/// column and predicate, return the qualifying positions, or an error to fall
/// back to the CPU path.
using NdpSelectHook =
    std::function<Result<PositionList>(const Column&, const Pred&)>;

/// Batched variant: all conjuncts of one scan submitted concurrently (the
/// multi-query runtime overlaps their leases), returning one position list
/// per input pair in order. An error falls the whole scan back to the
/// single-predicate / CPU path.
using NdpSelectBatchHook = std::function<Result<std::vector<PositionList>>(
    const std::vector<std::pair<const Column*, Pred>>&)>;

/// Semijoin pushdown hook (wired by ndp::core): given the build side
/// (column + qualifying positions) and the probe side, return the probe
/// positions whose key exists among the build keys — bit-identical to the
/// CPU HashSemiJoin. An error falls the join back to the CPU path.
using NdpSemiJoinHook = std::function<Result<PositionList>(
    const Column& build_col, const PositionList& build_pos,
    const Column& probe_col, const PositionList& probe_pos)>;

/// Full-column group-by pushdown hook: SUM of val_col grouped by key_col,
/// returning key -> {sum, count} (count backs AVG and COUNT aggregates).
using NdpGroupByHook =
    std::function<Result<std::map<int64_t, std::pair<int64_t, int64_t>>>(
        const Column& key_col, const Column& val_col)>;

/// \brief Shared execution state: tracing, pushdown, stats.
struct QueryContext {
  TraceRecorder* trace = nullptr;      ///< optional memory-trace recording
  SelectMode select_mode = SelectMode::kBranching;
  NdpSelectHook ndp_select;            ///< optional JAFAR pushdown
  NdpSelectBatchHook ndp_select_batch; ///< optional concurrent-conjunct form
  NdpSemiJoinHook ndp_semi_join;       ///< optional semijoin probe pushdown
  NdpGroupByHook ndp_group_by;         ///< optional group-by pushdown
  std::vector<OperatorStats> stats;
  /// Optional registry scope; when active, every Record() also bumps
  /// "<prefix>.<op>.{calls,rows_in,rows_out}" registry counters so query
  /// executions show up in snapshot deltas alongside hardware counters.
  StatsScope stats_scope;

  void Record(std::string op, uint64_t in, uint64_t out) {
    if (stats_scope.active()) {
      // ndp: stats-scope(scan_select|scan_select_batch|refine|gather|hash_join|aggregate|group_aggregate|sort|merge_runs|zonemap_select|for_select|plan_filter|plan_project|plan_hash_join|plan_sort)
      StatsScope op_scope = stats_scope.Sub(op);
      *op_scope.registry()->OwnedCounter(op_scope.Path("calls")) += 1;
      *op_scope.registry()->OwnedCounter(op_scope.Path("rows_in")) += in;
      *op_scope.registry()->OwnedCounter(op_scope.Path("rows_out")) += out;
    }
    stats.push_back(OperatorStats{std::move(op), in, out});
  }
};

// -- Selection ----------------------------------------------------------------

/// Full-column select: returns positions where `pred` holds. Uses the NDP
/// hook when installed (falling back to CPU execution on error).
PositionList ScanSelect(QueryContext* ctx, const Column& col, const Pred& pred);

/// Refining select: evaluates `pred` on `col` only at `positions` (the
/// conjunct pattern of column-store plans).
PositionList Refine(QueryContext* ctx, const Column& col, const Pred& pred,
                    const PositionList& positions);

// -- Projection (tuple reconstruction, §4 "Projections") ----------------------

/// Gathers col[p] for each position p — the late-materialization fetch.
std::vector<int64_t> Gather(QueryContext* ctx, const Column& col,
                            const PositionList& positions);

// -- Join ----------------------------------------------------------------------

/// Result of an equi-join: parallel position lists into the two inputs.
struct JoinResult {
  PositionList left;
  PositionList right;
};

/// Hash equi-join of left_col[left_pos] with right_col[right_pos]. The left
/// side is built into a hash table; the right side probes.
JoinResult HashJoin(QueryContext* ctx, const Column& left_col,
                    const PositionList& left_pos, const Column& right_col,
                    const PositionList& right_pos);

/// Semi-join: positions of `probe_pos` whose key exists in the built side.
PositionList HashSemiJoin(QueryContext* ctx, const Column& build_col,
                          const PositionList& build_pos,
                          const Column& probe_col,
                          const PositionList& probe_pos, bool anti = false);

// -- Aggregation ----------------------------------------------------------------

enum class AggFn : uint8_t { kSum, kMin, kMax, kCount, kAvgNum };

/// Scalar aggregate over a gathered value vector.
int64_t Aggregate(QueryContext* ctx, AggFn fn, const std::vector<int64_t>& v);

/// One aggregate output of a group-by.
struct AggSpec {
  AggFn fn;
  const std::vector<int64_t>* input;  ///< aligned with the group keys;
                                      ///< nullptr allowed for kCount
};

/// Hash group-by: keys[i] identifies row i's group. Returns group -> one
/// int64 per spec (kAvgNum returns the sum; divide by the kCount spec).
std::map<int64_t, std::vector<int64_t>> GroupAggregate(
    QueryContext* ctx, const std::vector<int64_t>& keys,
    const std::vector<AggSpec>& specs);

/// Full-column SUM group-by: key_col[i] identifies row i's group, the value
/// is val_col[i]; returns key -> {sum, count}. Uses the NDP group-by hook
/// when installed (falling back to the CPU loop on error) — the shape TPC-H
/// Q18's lineitem-by-orderkey aggregation pushes down.
std::map<int64_t, std::pair<int64_t, int64_t>> GroupSumFullColumn(
    QueryContext* ctx, const Column& key_col, const Column& val_col);

// -- Sort -----------------------------------------------------------------------

/// Returns `positions` stably sorted by keys[i] (keys aligned to positions).
PositionList SortBy(QueryContext* ctx, const std::vector<int64_t>& keys,
                    const PositionList& positions, bool descending = false);

/// K-way merges sorted runs into one sorted vector — the host-side half of
/// the §4 divide-and-conquer sorting story (the device emits block-sorted
/// runs, the CPU merges them).
std::vector<int64_t> MergeSortedRuns(QueryContext* ctx,
                                     const std::vector<std::vector<int64_t>>& runs);

// -- Utilities -------------------------------------------------------------------

BitVector PositionsToBitmap(const PositionList& positions, size_t num_rows);
PositionList BitmapToPositions(const BitVector& bm);

/// Intersects two sorted position lists.
PositionList IntersectSorted(const PositionList& a, const PositionList& b);

}  // namespace ndp::db
