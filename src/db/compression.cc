#include "db/compression.h"

#include <algorithm>
#include <limits>

namespace ndp::db {

Result<ForEncodedColumn> ForEncodedColumn::Encode(const Column& col) {
  if (col.size() == 0) {
    return ForEncodedColumn(0, 0, {});
  }
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < col.size(); ++i) {
    lo = std::min(lo, col[i]);
    hi = std::max(hi, col[i]);
  }
  // Deltas must fit a signed 32-bit lane so they are directly scannable by
  // JAFAR's packed-32-bit datapath (which sign-extends halves).
  if (hi - lo > std::numeric_limits<int32_t>::max()) {
    return Status::OutOfRange(
        "value range exceeds 31-bit frame-of-reference deltas");
  }
  std::vector<uint32_t> codes(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    codes[i] = static_cast<uint32_t>(col[i] - lo);
  }
  return ForEncodedColumn(lo, hi - lo, std::move(codes));
}

bool ForEncodedColumn::CodeRangeFor(int64_t value_lo, int64_t value_hi,
                                    int64_t* code_lo, int64_t* code_hi) const {
  if (codes_.empty()) return false;
  // Saturating rebase: sentinel bounds (INT64_MIN/MAX from open-ended
  // operators) must not wrap when the frame base is subtracted.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  int64_t lo = value_lo == kMin ? 0
                                : std::max<int64_t>(value_lo - base_, 0);
  if (value_lo != kMin && value_lo - base_ > max_code_) return false;
  int64_t hi = value_hi == kMax ? max_code_
                                : std::min<int64_t>(value_hi - base_, max_code_);
  if (value_hi != kMax && value_hi < base_) return false;
  *code_lo = lo;
  *code_hi = hi;
  return lo <= hi;
}

Pred ForEncodedColumn::RewritePredicate(const Pred& pred) const {
  // Normalize every operator into a [lo, hi] value range, then shift.
  int64_t vlo = 0, vhi = 0;
  switch (pred.op) {
    case Pred::Op::kBetween: vlo = pred.lo; vhi = pred.hi; break;
    case Pred::Op::kEq: vlo = vhi = pred.lo; break;
    case Pred::Op::kLe: vlo = std::numeric_limits<int64_t>::min(); vhi = pred.lo; break;
    case Pred::Op::kLt:
      vlo = std::numeric_limits<int64_t>::min();
      vhi = pred.lo == std::numeric_limits<int64_t>::min()
                ? pred.lo
                : pred.lo - 1;
      break;
    case Pred::Op::kGe: vlo = pred.lo; vhi = std::numeric_limits<int64_t>::max(); break;
    case Pred::Op::kGt:
      vlo = pred.lo == std::numeric_limits<int64_t>::max()
                ? pred.lo
                : pred.lo + 1;
      vhi = std::numeric_limits<int64_t>::max();
      break;
    case Pred::Op::kNe:
      // Not range-expressible; evaluate != in the code domain directly.
      return Pred::Ne(pred.lo - base_);
  }
  int64_t clo, chi;
  if (!CodeRangeFor(vlo, vhi, &clo, &chi)) {
    return Pred::Between(1, 0);  // canonical empty range
  }
  return Pred::Between(clo, chi);
}

PositionList ForEncodedColumn::Select(QueryContext* ctx,
                                      const Pred& value_pred) const {
  Pred code_pred = RewritePredicate(value_pred);
  PositionList out;
  uint64_t base_addr =
      ctx->trace ? ctx->trace->AllocRegion(SizeBytes(), "for_codes") : 0;
  for (size_t i = 0; i < codes_.size(); ++i) {
    if (ctx->trace) {
      ctx->trace->Compute(5);
      ctx->trace->Load(base_addr + i * 4);
    }
    if (code_pred.Eval(static_cast<int64_t>(codes_[i]))) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  ctx->Record("for_select", codes_.size(), out.size());
  return out;
}

}  // namespace ndp::db
