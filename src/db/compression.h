// Lightweight column compression (paper §4 "Indexing and Compression" and
// "Data Types": "many modern systems effectively handle string columns as
// integers using dictionary compression"). Frame-of-reference (FOR) encoding
// rebases a column's values against their minimum and stores 32-bit deltas —
// halving the bytes a scan must move, whether that scan runs on the CPU or
// on JAFAR's packed-32-bit datapath. Predicates are rewritten into the
// encoded domain so filters run directly on compressed data.
#pragma once

#include <cstdint>
#include <vector>

#include "db/column.h"
#include "db/operators.h"
#include "util/status.h"

namespace ndp::db {

/// \brief A frame-of-reference encoded column: value[i] = base + codes[i],
/// codes stored as unsigned 32-bit.
class ForEncodedColumn {
 public:
  /// Encodes `col`; fails if the value range exceeds 32 bits.
  static Result<ForEncodedColumn> Encode(const Column& col);

  int64_t base() const { return base_; }
  /// Largest delta stored (the frame width).
  int64_t max_code() const { return max_code_; }
  size_t size() const { return codes_.size(); }
  const uint32_t* codes() const { return codes_.data(); }
  size_t SizeBytes() const { return codes_.size() * sizeof(uint32_t); }

  /// Decodes one value.
  int64_t Decode(size_t i) const { return base_ + codes_[i]; }

  /// Rewrites a predicate on values into one on codes. Predicates that can
  /// never match (range entirely below/above the frame) return a canonical
  /// empty predicate; clamping handles partial overlap.
  Pred RewritePredicate(const Pred& pred) const;

  /// Inclusive [lo, hi] bounds in the CODE domain for a value-domain range
  /// select; returns false if no code can match.
  bool CodeRangeFor(int64_t value_lo, int64_t value_hi, int64_t* code_lo,
                    int64_t* code_hi) const;

  /// CPU select over the encoded data (predicate evaluated on codes).
  PositionList Select(QueryContext* ctx, const Pred& value_pred) const;

 private:
  ForEncodedColumn(int64_t base, int64_t max_code,
                   std::vector<uint32_t> codes)
      : base_(base), max_code_(max_code), codes_(std::move(codes)) {}

  int64_t base_ = 0;
  int64_t max_code_ = 0;
  std::vector<uint32_t> codes_;
};

}  // namespace ndp::db
