// Tables and the catalog of the in-house prototype column-store (paper §3.1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/column.h"
#include "util/status.h"

namespace ndp::db {

/// \brief A table: equal-length named columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Column* AddColumn(Column col) {
    NDP_CHECK_MSG(FindColumn(col.name()) == nullptr, "duplicate column");
    columns_.push_back(std::make_unique<Column>(std::move(col)));
    return columns_.back().get();
  }

  Column* FindColumn(const std::string& col_name) {
    for (auto& c : columns_) {
      if (c->name() == col_name) return c.get();
    }
    return nullptr;
  }
  const Column* FindColumn(const std::string& col_name) const {
    return const_cast<Table*>(this)->FindColumn(col_name);
  }

  /// Column lookup that fails loudly; use in query code.
  Column& Col(const std::string& col_name) {
    Column* c = FindColumn(col_name);
    NDP_CHECK_MSG(c != nullptr, col_name.c_str());
    return *c;
  }
  const Column& Col(const std::string& col_name) const {
    return const_cast<Table*>(this)->Col(col_name);
  }

  size_t num_columns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return *columns_[i]; }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }

  /// Verifies all columns have equal length.
  Status Validate() const {
    for (const auto& c : columns_) {
      if (c->size() != num_rows()) {
        return Status::Internal("column '" + c->name() + "' length mismatch in " +
                                name_);
      }
    }
    return Status::OK();
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
};

/// \brief Named collection of tables.
class Catalog {
 public:
  Table* AddTable(std::string table_name) {
    auto [it, inserted] =
        tables_.emplace(table_name, std::make_unique<Table>(table_name));
    NDP_CHECK_MSG(inserted, "duplicate table");
    return it->second.get();
  }

  Table* FindTable(const std::string& table_name) {
    auto it = tables_.find(table_name);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  Table& Tab(const std::string& table_name) {
    Table* t = FindTable(table_name);
    NDP_CHECK_MSG(t != nullptr, table_name.c_str());
    return *t;
  }

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace ndp::db
