// Columnar storage: fixed-width int64 columns plus dictionary-encoded string
// columns ("many modern systems effectively handle string columns as integers
// using dictionary compression", paper §4 "Data Types"). All values are
// exposed to operators as int64 codes, which is exactly what makes them
// JAFAR-compatible.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace ndp::db {

enum class ColumnType : uint8_t {
  kInt64,       ///< raw 64-bit integers (also dates as day numbers)
  kDictionary,  ///< strings stored as int64 codes into a dictionary
};

/// \brief One column of a table.
class Column {
 public:
  static Column Int64(std::string name) {
    return Column(std::move(name), ColumnType::kInt64);
  }
  static Column Dictionary(std::string name) {
    return Column(std::move(name), ColumnType::kDictionary);
  }

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return data_.size(); }

  int64_t operator[](size_t i) const { return data_[i]; }
  const int64_t* data() const { return data_.data(); }
  const std::vector<int64_t>& values() const { return data_; }

  void Append(int64_t v) { data_.push_back(v); }
  void Set(size_t i, int64_t v) {
    NDP_CHECK(i < data_.size());
    data_[i] = v;
  }
  void Reserve(size_t n) { data_.reserve(n); }

  /// Appends a string value, interning it in the dictionary.
  int64_t AppendString(const std::string& s) {
    NDP_CHECK(type_ == ColumnType::kDictionary);
    int64_t code = InternString(s);
    data_.push_back(code);
    return code;
  }

  /// Returns the dictionary code for `s`, interning it if absent.
  int64_t InternString(const std::string& s) {
    auto it = dict_index_.find(s);
    if (it != dict_index_.end()) return it->second;
    int64_t code = static_cast<int64_t>(dict_.size());
    dict_.push_back(s);
    dict_index_.emplace(s, code);
    return code;
  }

  /// Looks up the code for `s` without interning.
  Result<int64_t> CodeOf(const std::string& s) const {
    auto it = dict_index_.find(s);
    if (it == dict_index_.end()) return Status::NotFound("no code for '" + s + "'");
    return it->second;
  }

  /// Decodes a dictionary code back to its string.
  const std::string& StringAt(size_t row) const {
    NDP_CHECK(type_ == ColumnType::kDictionary);
    int64_t code = data_[row];
    NDP_CHECK(code >= 0 && static_cast<size_t>(code) < dict_.size());
    return dict_[static_cast<size_t>(code)];
  }

  const std::string& DecodeCode(int64_t code) const {
    NDP_CHECK(code >= 0 && static_cast<size_t>(code) < dict_.size());
    return dict_[static_cast<size_t>(code)];
  }

  size_t dictionary_size() const { return dict_.size(); }
  size_t SizeBytes() const { return data_.size() * sizeof(int64_t); }

 private:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  std::string name_;
  ColumnType type_;
  std::vector<int64_t> data_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int64_t> dict_index_;
};

}  // namespace ndp::db
