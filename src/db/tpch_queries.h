// Physical plans for the TPC-H queries the paper profiles on MonetDB in
// Figure 4: Q1, Q3, Q6, Q18, Q22 — implemented column-at-a-time against the
// bulk operators, with optional trace recording and NDP select pushdown
// through the QueryContext.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/operators.h"
#include "db/table.h"

namespace ndp::db::tpch {

/// Q1 "pricing summary report": one row per (returnflag, linestatus).
struct Q1Row {
  std::string returnflag;
  std::string linestatus;
  int64_t sum_qty = 0;
  int64_t sum_base_price = 0;   ///< cents
  int64_t sum_disc_price = 0;   ///< cents (rounded per row)
  int64_t sum_charge = 0;       ///< cents (rounded per row)
  int64_t count_order = 0;
};
std::vector<Q1Row> RunQ1(QueryContext* ctx, Catalog* catalog);

/// Q3 "shipping priority": top 10 undelivered orders by revenue.
struct Q3Row {
  int64_t orderkey = 0;
  int64_t revenue = 0;  ///< cents
  int64_t orderdate = 0;
};
std::vector<Q3Row> RunQ3(QueryContext* ctx, Catalog* catalog);

/// Q6 "forecasting revenue change": a single revenue number (cents).
int64_t RunQ6(QueryContext* ctx, Catalog* catalog);

/// Q18 "large volume customer": orders whose lineitems sum to > 300 units.
struct Q18Row {
  int64_t custkey = 0;
  int64_t orderkey = 0;
  int64_t totalprice = 0;
  int64_t sum_quantity = 0;
};
std::vector<Q18Row> RunQ18(QueryContext* ctx, Catalog* catalog);

/// Q22 "global sales opportunity": per phone country code, customers with
/// above-average balances and no orders.
struct Q22Row {
  int64_t country_code = 0;
  int64_t num_customers = 0;
  int64_t total_acctbal = 0;  ///< cents
};
std::vector<Q22Row> RunQ22(QueryContext* ctx, Catalog* catalog);

/// Runs one of the Figure 4 queries by number (1, 3, 6, 18, 22); returns a
/// scalar checksum of the result for cross-configuration validation.
Result<int64_t> RunQueryByNumber(QueryContext* ctx, Catalog* catalog,
                                 int query_number);

}  // namespace ndp::db::tpch
