// Zone maps (a column-imprints-lite secondary structure, cf. paper §4
// "Indexing and Compression"): per-block min/max over a column, letting a
// scan skip blocks that cannot contain qualifying values. Used to study the
// paper's open question of whether extremely efficient NDP scans obviate
// lightweight indexing — the answer depends on value clustering.
#pragma once

#include <cstdint>
#include <vector>

#include "db/column.h"
#include "db/operators.h"

namespace ndp::db {

/// \brief Per-block [min, max] summaries of a column.
class ZoneMap {
 public:
  /// Builds zones of `block_rows` rows each (default 4096 rows = 32 KB).
  ZoneMap(const Column& col, uint32_t block_rows = 4096);

  uint32_t block_rows() const { return block_rows_; }
  size_t num_blocks() const { return mins_.size(); }
  int64_t block_min(size_t b) const { return mins_[b]; }
  int64_t block_max(size_t b) const { return maxs_[b]; }

  /// True if block `b` may contain a value satisfying `pred`.
  bool BlockMayMatch(size_t b, const Pred& pred) const;

  /// Blocks that survive pruning for `pred`.
  std::vector<uint32_t> CandidateBlocks(const Pred& pred) const;

  /// Fraction of blocks pruned for `pred` (1.0 = everything skipped).
  double PruneFraction(const Pred& pred) const {
    return num_blocks() == 0
               ? 0.0
               : 1.0 - static_cast<double>(CandidateBlocks(pred).size()) /
                           static_cast<double>(num_blocks());
  }

  /// Zone-map-accelerated select: scans only candidate blocks. Produces the
  /// same positions as ScanSelect; records per-block traffic when tracing.
  PositionList Select(QueryContext* ctx, const Column& col,
                      const Pred& pred) const;

 private:
  uint32_t block_rows_;
  std::vector<int64_t> mins_;
  std::vector<int64_t> maxs_;
};

}  // namespace ndp::db
