#include "db/zonemap.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::db {

ZoneMap::ZoneMap(const Column& col, uint32_t block_rows)
    : block_rows_(block_rows) {
  NDP_CHECK(block_rows > 0);
  size_t blocks = (col.size() + block_rows - 1) / block_rows;
  mins_.resize(blocks, INT64_MAX);
  maxs_.resize(blocks, INT64_MIN);
  for (size_t i = 0; i < col.size(); ++i) {
    size_t b = i / block_rows;
    mins_[b] = std::min(mins_[b], col[i]);
    maxs_[b] = std::max(maxs_[b], col[i]);
  }
}

bool ZoneMap::BlockMayMatch(size_t b, const Pred& pred) const {
  int64_t lo = mins_[b], hi = maxs_[b];
  switch (pred.op) {
    case Pred::Op::kBetween: return pred.lo <= hi && pred.hi >= lo;
    case Pred::Op::kEq: return pred.lo >= lo && pred.lo <= hi;
    case Pred::Op::kNe: return !(lo == hi && lo == pred.lo);
    case Pred::Op::kLt: return lo < pred.lo;
    case Pred::Op::kGt: return hi > pred.lo;
    case Pred::Op::kLe: return lo <= pred.lo;
    case Pred::Op::kGe: return hi >= pred.lo;
  }
  return true;
}

std::vector<uint32_t> ZoneMap::CandidateBlocks(const Pred& pred) const {
  std::vector<uint32_t> out;
  for (size_t b = 0; b < num_blocks(); ++b) {
    if (BlockMayMatch(b, pred)) out.push_back(static_cast<uint32_t>(b));
  }
  return out;
}

PositionList ZoneMap::Select(QueryContext* ctx, const Column& col,
                             const Pred& pred) const {
  PositionList out;
  uint64_t col_base = 0, out_base = 0, zone_base = 0;
  if (ctx->trace) {
    col_base = ctx->trace->LayoutColumn(col);
    out_base = ctx->trace->AllocRegion(col.size() * 4, "positions");
    zone_base = ctx->trace->AllocRegion(num_blocks() * 16, "zonemap");
  }
  for (size_t b = 0; b < num_blocks(); ++b) {
    if (ctx->trace) {
      // One zone check: load min/max pair, two compares.
      ctx->trace->Compute(3);
      ctx->trace->Load(zone_base + b * 16);
    }
    if (!BlockMayMatch(b, pred)) continue;
    size_t begin = b * block_rows_;
    size_t end = std::min(col.size(), begin + block_rows_);
    for (size_t i = begin; i < end; ++i) {
      if (ctx->trace) {
        ctx->trace->Compute(5);
        ctx->trace->Load(col_base + i * 8);
      }
      if (pred.Eval(col[i])) {
        out.push_back(static_cast<uint32_t>(i));
        if (ctx->trace) ctx->trace->Store(out_base + out.size() * 4);
      }
    }
  }
  ctx->Record("zonemap_select", col.size(), out.size());
  return out;
}

}  // namespace ndp::db
