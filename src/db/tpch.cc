#include "db/tpch.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/macros.h"

namespace ndp::db::tpch {

namespace {
// Days-from-civil (Howard Hinnant's algorithm), rebased to 1992-01-01.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  int era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                 static_cast<unsigned>(d) - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}
const int64_t kEpoch1992 = DaysFromCivil(1992, 1, 1);

/// Lines-per-order cap under skew: one hot order then spans several device
/// pages without letting a single key swallow the whole line budget.
constexpr uint32_t kMaxLinesPerOrder = 2048;

/// Zipf(theta) multiplicities: the order with 1-based rank r receives a
/// share of the total line budget (mean_lines x norders) proportional to
/// r^-theta, floored at 1 line and capped at kMaxLinesPerOrder. Fully
/// deterministic (no rng draws), so the skewed generator stays reproducible
/// for any theta.
std::vector<uint32_t> ZipfLineCounts(uint64_t norders, double theta,
                                     double mean_lines) {
  std::vector<double> w(norders);
  double total_w = 0.0;
  for (uint64_t o = 0; o < norders; ++o) {
    w[o] = std::pow(static_cast<double>(o + 1), -theta);
    total_w += w[o];
  }
  const double budget = mean_lines * static_cast<double>(norders);
  std::vector<uint32_t> lines(norders);
  for (uint64_t o = 0; o < norders; ++o) {
    double share = std::floor(budget * w[o] / total_w);
    share = std::max(1.0, std::min<double>(share, kMaxLinesPerOrder));
    lines[o] = static_cast<uint32_t>(share);
  }
  return lines;
}
}  // namespace

int64_t DayNumber(int year, int month, int day) {
  return DaysFromCivil(year, month, day) - kEpoch1992;
}

void Generate(const TpchConfig& config, Catalog* catalog) {
  Rng rng(config.seed);

  // ---- customer -----------------------------------------------------------
  Table* customer = catalog->AddTable("customer");
  Column* c_custkey = customer->AddColumn(Column::Int64("c_custkey"));
  Column* c_mktsegment =
      customer->AddColumn(Column::Dictionary("c_mktsegment"));
  Column* c_acctbal = customer->AddColumn(Column::Int64("c_acctbal"));
  Column* c_phone_cc = customer->AddColumn(Column::Int64("c_phone_cc"));
  const uint64_t ncust = config.num_customers();
  for (uint64_t c = 0; c < ncust; ++c) {
    c_custkey->Append(static_cast<int64_t>(c + 1));
    c_mktsegment->AppendString(
        kMktSegments[rng.NextBounded(kNumMktSegments)]);
    // acctbal in [-999.99, 9999.99], stored in cents.
    c_acctbal->Append(rng.NextInRange(-99999, 999999));
    // Phone country code: TPC-H uses 10..34.
    c_phone_cc->Append(rng.NextInRange(10, 34));
  }

  // ---- orders --------------------------------------------------------------
  Table* orders = catalog->AddTable("orders");
  Column* o_orderkey = orders->AddColumn(Column::Int64("o_orderkey"));
  Column* o_custkey = orders->AddColumn(Column::Int64("o_custkey"));
  Column* o_orderdate = orders->AddColumn(Column::Int64("o_orderdate"));
  Column* o_totalprice = orders->AddColumn(Column::Int64("o_totalprice"));
  Column* o_shippriority = orders->AddColumn(Column::Int64("o_shippriority"));
  const uint64_t norders = config.num_orders();
  // Order dates span 1992-01-01 .. 1998-08-02 (as in TPC-H).
  const int64_t last_orderdate = DayNumber(1998, 8, 2);
  // One third of customers never place orders (required for Q22's anti-join).
  const uint64_t ordering_customers = std::max<uint64_t>(1, ncust * 2 / 3);
  for (uint64_t o = 0; o < norders; ++o) {
    o_orderkey->Append(static_cast<int64_t>(o + 1));
    o_custkey->Append(
        static_cast<int64_t>(rng.NextBounded(
            static_cast<uint32_t>(ordering_customers)) + 1));
    o_orderdate->Append(rng.NextInRange(0, last_orderdate));
    o_totalprice->Append(0);  // backfilled from lineitem below
    o_shippriority->Append(0);
  }

  // ---- lineitem -------------------------------------------------------------
  Table* lineitem = catalog->AddTable("lineitem");
  Column* l_orderkey = lineitem->AddColumn(Column::Int64("l_orderkey"));
  Column* l_quantity = lineitem->AddColumn(Column::Int64("l_quantity"));
  Column* l_extendedprice =
      lineitem->AddColumn(Column::Int64("l_extendedprice"));
  Column* l_discount = lineitem->AddColumn(Column::Int64("l_discount"));
  Column* l_tax = lineitem->AddColumn(Column::Int64("l_tax"));
  Column* l_returnflag = lineitem->AddColumn(Column::Dictionary("l_returnflag"));
  Column* l_linestatus = lineitem->AddColumn(Column::Dictionary("l_linestatus"));
  Column* l_shipdate = lineitem->AddColumn(Column::Int64("l_shipdate"));
  Column* l_commitdate = lineitem->AddColumn(Column::Int64("l_commitdate"));
  Column* l_receiptdate = lineitem->AddColumn(Column::Int64("l_receiptdate"));

  // Intern dictionary codes in a fixed order so they are stable across runs.
  l_returnflag->InternString("A");
  l_returnflag->InternString("N");
  l_returnflag->InternString("R");
  l_linestatus->InternString("O");
  l_linestatus->InternString("F");

  const int64_t current_date = DayNumber(1995, 6, 17);
  std::vector<uint32_t> zipf_lines;
  if (config.skew_theta > 0.0) {
    // Mean 4 lines/order matches the uniform 1..7 draw's expectation.
    zipf_lines = ZipfLineCounts(norders, config.skew_theta, 4.0);
  }
  std::vector<int64_t> order_totals(norders, 0);
  for (uint64_t o = 0; o < norders; ++o) {
    uint32_t lines = config.skew_theta > 0.0 ? zipf_lines[o]
                                             : 1 + rng.NextBounded(7);
    int64_t orderdate = (*o_orderdate)[o];
    int64_t total = 0;
    for (uint32_t l = 0; l < lines; ++l) {
      int64_t quantity = rng.NextInRange(1, 50);
      int64_t price = quantity * rng.NextInRange(90000, 110000) / 100;
      int64_t discount = rng.NextInRange(0, 10);  // percent
      int64_t tax = rng.NextInRange(0, 8);
      int64_t shipdate = orderdate + rng.NextInRange(1, 121);
      int64_t commitdate = orderdate + rng.NextInRange(30, 90);
      int64_t receiptdate = shipdate + rng.NextInRange(1, 30);

      l_orderkey->Append(static_cast<int64_t>(o + 1));
      l_quantity->Append(quantity);
      l_extendedprice->Append(price);
      l_discount->Append(discount);
      l_tax->Append(tax);
      if (receiptdate <= current_date) {
        l_returnflag->AppendString(rng.NextBool(0.5) ? "A" : "R");
      } else {
        l_returnflag->AppendString("N");
      }
      l_linestatus->AppendString(shipdate > current_date ? "O" : "F");
      l_shipdate->Append(shipdate);
      l_commitdate->Append(commitdate);
      l_receiptdate->Append(receiptdate);
      total += price;
    }
    order_totals[o] = total;
  }
  // Backfill o_totalprice (approximation: sum of extended prices).
  for (uint64_t o = 0; o < norders; ++o) {
    o_totalprice->Set(o, order_totals[o]);
  }

  NDP_CHECK(customer->Validate().ok());
  NDP_CHECK(orders->Validate().ok());
  NDP_CHECK(lineitem->Validate().ok());
}

}  // namespace ndp::db::tpch
