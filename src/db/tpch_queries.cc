#include "db/tpch_queries.h"

#include <algorithm>

#include "db/tpch.h"
#include "util/macros.h"

namespace ndp::db::tpch {

namespace {
/// Packs (returnflag, linestatus) codes into one group key.
int64_t PackQ1Key(int64_t rf, int64_t ls) { return rf * 16 + ls; }
}  // namespace

std::vector<Q1Row> RunQ1(QueryContext* ctx, Catalog* catalog) {
  Table& li = catalog->Tab("lineitem");
  const Column& shipdate = li.Col("l_shipdate");
  // l_shipdate <= date '1998-12-01' - interval '90' day
  int64_t cutoff = DayNumber(1998, 12, 1) - 90;
  PositionList pos = ScanSelect(ctx, shipdate, Pred::Le(cutoff));

  auto qty = Gather(ctx, li.Col("l_quantity"), pos);
  auto price = Gather(ctx, li.Col("l_extendedprice"), pos);
  auto disc = Gather(ctx, li.Col("l_discount"), pos);
  auto tax = Gather(ctx, li.Col("l_tax"), pos);
  auto rf = Gather(ctx, li.Col("l_returnflag"), pos);
  auto ls = Gather(ctx, li.Col("l_linestatus"), pos);

  // Derived measures (disc in percent, tax in percent; results in cents).
  std::vector<int64_t> keys(pos.size()), disc_price(pos.size()),
      charge(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) {
    keys[i] = PackQ1Key(rf[i], ls[i]);
    disc_price[i] = price[i] * (100 - disc[i]) / 100;
    charge[i] = disc_price[i] * (100 + tax[i]) / 100;
  }
  if (ctx->trace) ctx->trace->Compute(pos.size() * 6);

  std::vector<AggSpec> specs = {
      {AggFn::kSum, &qty},        {AggFn::kSum, &price},
      {AggFn::kSum, &disc_price}, {AggFn::kSum, &charge},
      {AggFn::kCount, nullptr},
  };
  auto groups = GroupAggregate(ctx, keys, specs);

  const Column& rf_col = li.Col("l_returnflag");
  const Column& ls_col = li.Col("l_linestatus");
  std::vector<Q1Row> out;
  for (const auto& [key, aggs] : groups) {
    Q1Row row;
    row.returnflag = rf_col.DecodeCode(key / 16);
    row.linestatus = ls_col.DecodeCode(key % 16);
    row.sum_qty = aggs[0];
    row.sum_base_price = aggs[1];
    row.sum_disc_price = aggs[2];
    row.sum_charge = aggs[3];
    row.count_order = aggs[4];
    out.push_back(row);
  }
  return out;
}

std::vector<Q3Row> RunQ3(QueryContext* ctx, Catalog* catalog) {
  Table& cust = catalog->Tab("customer");
  Table& ord = catalog->Tab("orders");
  Table& li = catalog->Tab("lineitem");
  int64_t date = DayNumber(1995, 3, 15);

  // customer: c_mktsegment = 'BUILDING'
  int64_t building =
      cust.Col("c_mktsegment").CodeOf("BUILDING").ValueOrDie();
  PositionList cust_pos =
      ScanSelect(ctx, cust.Col("c_mktsegment"), Pred::Eq(building));

  // orders: o_orderdate < date
  PositionList ord_pos = ScanSelect(ctx, ord.Col("o_orderdate"), Pred::Lt(date));

  // join customer x orders on custkey
  JoinResult co = HashJoin(ctx, cust.Col("c_custkey"), cust_pos,
                           ord.Col("o_custkey"), ord_pos);

  // lineitem: l_shipdate > date
  PositionList li_pos = ScanSelect(ctx, li.Col("l_shipdate"), Pred::Gt(date));

  // JSPIM-style pushdown: when the semijoin hook is installed, prefilter the
  // lineitem positions on-device against the qualifying orderkeys before the
  // host join. The semijoin only drops rows the join would drop anyway, so
  // the join output — and the query result — is bit-identical.
  if (ctx->ndp_semi_join) {
    li_pos = HashSemiJoin(ctx, ord.Col("o_orderkey"), co.right,
                          li.Col("l_orderkey"), li_pos);
  }

  // join (c x o) x lineitem on orderkey
  JoinResult col = HashJoin(ctx, ord.Col("o_orderkey"), co.right,
                            li.Col("l_orderkey"), li_pos);

  // revenue per lineitem = extendedprice * (1 - discount)
  auto price = Gather(ctx, li.Col("l_extendedprice"), col.right);
  auto disc = Gather(ctx, li.Col("l_discount"), col.right);
  auto okey = Gather(ctx, li.Col("l_orderkey"), col.right);
  std::vector<int64_t> revenue(price.size());
  for (size_t i = 0; i < price.size(); ++i) {
    revenue[i] = price[i] * (100 - disc[i]) / 100;
  }
  if (ctx->trace) ctx->trace->Compute(price.size() * 3);

  std::vector<AggSpec> specs = {{AggFn::kSum, &revenue}};
  auto groups = GroupAggregate(ctx, okey, specs);

  std::vector<Q3Row> rows;
  rows.reserve(groups.size());
  const Column& odate = ord.Col("o_orderdate");
  const Column& okey_col = ord.Col("o_orderkey");
  for (const auto& [orderkey, aggs] : groups) {
    Q3Row r;
    r.orderkey = orderkey;
    r.revenue = aggs[0];
    // orderkey is 1-based and dense in our generator.
    NDP_CHECK(okey_col[static_cast<size_t>(orderkey - 1)] == orderkey);
    r.orderdate = odate[static_cast<size_t>(orderkey - 1)];
    rows.push_back(r);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Q3Row& a, const Q3Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.orderdate < b.orderdate;
  });
  if (rows.size() > 10) rows.resize(10);
  if (ctx->trace) ctx->trace->Compute(groups.size() * 5);  // sort cost
  return rows;
}

int64_t RunQ6(QueryContext* ctx, Catalog* catalog) {
  Table& li = catalog->Tab("lineitem");
  int64_t from = DayNumber(1994, 1, 1);
  int64_t to = DayNumber(1995, 1, 1);  // exclusive

  PositionList pos =
      ScanSelect(ctx, li.Col("l_shipdate"), Pred::Between(from, to - 1));
  pos = Refine(ctx, li.Col("l_discount"), Pred::Between(5, 7), pos);
  pos = Refine(ctx, li.Col("l_quantity"), Pred::Lt(24), pos);

  auto price = Gather(ctx, li.Col("l_extendedprice"), pos);
  auto disc = Gather(ctx, li.Col("l_discount"), pos);
  std::vector<int64_t> rev(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) rev[i] = price[i] * disc[i] / 100;
  if (ctx->trace) ctx->trace->Compute(pos.size() * 2);
  return Aggregate(ctx, AggFn::kSum, rev);
}

std::vector<Q18Row> RunQ18(QueryContext* ctx, Catalog* catalog) {
  Table& ord = catalog->Tab("orders");
  Table& li = catalog->Tab("lineitem");

  // Group lineitem by orderkey, sum quantity; keep groups with sum > 300.
  // With the group-by pushdown hook installed the full-column aggregation
  // runs on-device (GroupSumFullColumn); otherwise the classic gather +
  // hash-aggregate CPU plan runs, byte-for-byte as before.
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  if (ctx->ndp_group_by) {
    groups =
        GroupSumFullColumn(ctx, li.Col("l_orderkey"), li.Col("l_quantity"));
  } else {
    PositionList all_li(li.num_rows());
    for (size_t i = 0; i < all_li.size(); ++i) {
      all_li[i] = static_cast<uint32_t>(i);
    }
    auto okey = Gather(ctx, li.Col("l_orderkey"), all_li);
    auto qty = Gather(ctx, li.Col("l_quantity"), all_li);
    std::vector<AggSpec> specs = {{AggFn::kSum, &qty}};
    for (const auto& [key, aggs] : GroupAggregate(ctx, okey, specs)) {
      groups.emplace(key, std::make_pair(aggs[0], int64_t{0}));
    }
  }

  std::vector<Q18Row> rows;
  const Column& okey_col = ord.Col("o_orderkey");
  const Column& ocust = ord.Col("o_custkey");
  const Column& ototal = ord.Col("o_totalprice");
  for (const auto& [orderkey, aggs] : groups) {
    if (aggs.first <= 300) continue;
    Q18Row r;
    r.orderkey = orderkey;
    r.sum_quantity = aggs.first;
    size_t oi = static_cast<size_t>(orderkey - 1);
    NDP_CHECK(okey_col[oi] == orderkey);
    r.custkey = ocust[oi];
    r.totalprice = ototal[oi];
    if (ctx->trace) {
      // Point lookups into the orders table.
      ctx->trace->Compute(6);
      ctx->trace->Load(ctx->trace->LayoutColumn(ocust) + oi * 8);
      ctx->trace->Load(ctx->trace->LayoutColumn(ototal) + oi * 8);
    }
    rows.push_back(r);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Q18Row& a, const Q18Row& b) {
                     if (a.totalprice != b.totalprice) {
                       return a.totalprice > b.totalprice;
                     }
                     return a.orderkey < b.orderkey;
                   });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Q22Row> RunQ22(QueryContext* ctx, Catalog* catalog) {
  Table& cust = catalog->Tab("customer");
  Table& ord = catalog->Tab("orders");
  const Column& cc = cust.Col("c_phone_cc");
  const Column& bal = cust.Col("c_acctbal");

  // Customers in the seven target country codes.
  static constexpr int64_t kCodes[] = {13, 31, 23, 29, 30, 18, 17};
  PositionList in_codes;
  {
    PositionList all;
    for (int64_t code : kCodes) {
      PositionList p = ScanSelect(ctx, cc, Pred::Eq(code));
      all.insert(all.end(), p.begin(), p.end());
    }
    std::sort(all.begin(), all.end());
    in_codes = std::move(all);
  }

  // Average positive balance among those customers.
  PositionList positive = Refine(ctx, bal, Pred::Gt(0), in_codes);
  auto pos_bal = Gather(ctx, bal, positive);
  int64_t avg = positive.empty()
                    ? 0
                    : Aggregate(ctx, AggFn::kSum, pos_bal) /
                          static_cast<int64_t>(positive.size());

  // Above-average balance...
  PositionList rich = Refine(ctx, bal, Pred::Gt(avg), in_codes);

  // ...with no orders: anti semi-join against orders.o_custkey.
  PositionList all_orders(ord.num_rows());
  for (size_t i = 0; i < all_orders.size(); ++i) {
    all_orders[i] = static_cast<uint32_t>(i);
  }
  PositionList no_orders =
      HashSemiJoin(ctx, ord.Col("o_custkey"), all_orders,
                   cust.Col("c_custkey"), rich, /*anti=*/true);

  auto codes = Gather(ctx, cc, no_orders);
  auto bals = Gather(ctx, bal, no_orders);
  std::vector<AggSpec> specs = {{AggFn::kCount, nullptr}, {AggFn::kSum, &bals}};
  auto groups = GroupAggregate(ctx, codes, specs);

  std::vector<Q22Row> rows;
  for (const auto& [code, aggs] : groups) {
    rows.push_back(Q22Row{code, aggs[0], aggs[1]});
  }
  return rows;
}

Result<int64_t> RunQueryByNumber(QueryContext* ctx, Catalog* catalog,
                                 int query_number) {
  switch (query_number) {
    case 1: {
      int64_t sum = 0;
      for (const Q1Row& r : RunQ1(ctx, catalog)) {
        sum += r.sum_qty + r.sum_disc_price + r.count_order;
      }
      return sum;
    }
    case 3: {
      int64_t sum = 0;
      for (const Q3Row& r : RunQ3(ctx, catalog)) sum += r.orderkey + r.revenue;
      return sum;
    }
    case 6:
      return RunQ6(ctx, catalog);
    case 18: {
      int64_t sum = 0;
      for (const Q18Row& r : RunQ18(ctx, catalog)) {
        sum += r.orderkey + r.sum_quantity;
      }
      return sum;
    }
    case 22: {
      int64_t sum = 0;
      for (const Q22Row& r : RunQ22(ctx, catalog)) {
        sum += r.country_code + r.num_customers + r.total_acctbal;
      }
      return sum;
    }
    default:
      return Status::InvalidArgument("unsupported query number " +
                                     std::to_string(query_number));
  }
}

}  // namespace ndp::db::tpch
