#include "db/operators.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/logging.h"

namespace ndp::db {

namespace {
// Trace-model compute costs, in µops per value, mirroring the µop structure
// of cpu::SelectScanStream and friends.
constexpr uint64_t kSelectComputeUops = 5;
constexpr uint64_t kGatherComputeUops = 3;
constexpr uint64_t kHashBuildUops = 12;
constexpr uint64_t kHashProbeUops = 10;
constexpr uint64_t kAggUops = 3;
constexpr uint64_t kGroupAggUops = 8;
}  // namespace

namespace {
// Pushdown declines split into "the device broke" (a dispatched JAFAR job
// failed past its retry budget, or the breaker is open) vs. "not applicable"
// (unsupported predicate, planner said CPU is cheaper). The former is the
// graceful-degradation path and gets its own operator stat.
bool IsDeviceFallback(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kDeviceBusy ||
         code == StatusCode::kResourceExhausted;
}
}  // namespace

PositionList ScanSelect(QueryContext* ctx, const Column& col, const Pred& pred) {
  bool device_fallback = false;
  if (ctx->ndp_select) {
    auto pushed = ctx->ndp_select(col, pred);
    if (pushed.ok()) {
      ctx->Record("scan_select[jafar]", col.size(), pushed.value().size());
      return std::move(pushed).value();
    }
    device_fallback = IsDeviceFallback(pushed.status().code());
    NDP_LOG_DEBUG("NDP pushdown declined, CPU fallback: %s",
                  pushed.status().ToString().c_str());
  }
  PositionList out;
  out.reserve(col.size() / 4);
  uint64_t col_base = 0, out_base = 0;
  if (ctx->trace) {
    col_base = ctx->trace->LayoutColumn(col);
    out_base = ctx->trace->AllocRegion(col.size() * 4, "positions");
  }
  const int64_t* data = col.data();
  const size_t n = col.size();
  if (ctx->select_mode == SelectMode::kPredicated) {
    out.resize(n);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      out[k] = static_cast<uint32_t>(i);
      k += pred.Eval(data[i]) ? 1 : 0;
      if (ctx->trace) {
        ctx->trace->Compute(kSelectComputeUops + 1);
        ctx->trace->Load(col_base + i * 8);
        ctx->trace->Store(out_base + k * 4);
      }
    }
    out.resize(k);
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (ctx->trace) {
        ctx->trace->Compute(kSelectComputeUops);
        ctx->trace->Load(col_base + i * 8);
      }
      if (pred.Eval(data[i])) {
        out.push_back(static_cast<uint32_t>(i));
        if (ctx->trace) ctx->trace->Store(out_base + out.size() * 4);
      }
    }
  }
  ctx->Record(device_fallback ? "scan_select[cpu_fallback]" : "scan_select", n,
              out.size());
  return out;
}

PositionList Refine(QueryContext* ctx, const Column& col, const Pred& pred,
                    const PositionList& positions) {
  PositionList out;
  out.reserve(positions.size());
  uint64_t col_base = ctx->trace ? ctx->trace->LayoutColumn(col) : 0;
  uint64_t pos_base =
      ctx->trace ? ctx->trace->AllocRegion(positions.size() * 4, "pos") : 0;
  for (size_t j = 0; j < positions.size(); ++j) {
    uint32_t p = positions[j];
    if (ctx->trace) {
      ctx->trace->Compute(kSelectComputeUops);
      ctx->trace->Load(pos_base + j * 4);
      ctx->trace->Load(col_base + static_cast<uint64_t>(p) * 8);
    }
    if (pred.Eval(col[p])) out.push_back(p);
  }
  ctx->Record("refine", positions.size(), out.size());
  return out;
}

std::vector<int64_t> Gather(QueryContext* ctx, const Column& col,
                            const PositionList& positions) {
  std::vector<int64_t> out;
  out.reserve(positions.size());
  uint64_t col_base = ctx->trace ? ctx->trace->LayoutColumn(col) : 0;
  uint64_t out_base =
      ctx->trace ? ctx->trace->AllocRegion(positions.size() * 8, "mat") : 0;
  for (size_t j = 0; j < positions.size(); ++j) {
    uint32_t p = positions[j];
    out.push_back(col[p]);
    if (ctx->trace) {
      ctx->trace->Compute(kGatherComputeUops);
      ctx->trace->Load(col_base + static_cast<uint64_t>(p) * 8);
      ctx->trace->Store(out_base + j * 8);
    }
  }
  ctx->Record("gather[" + col.name() + "]", positions.size(), out.size());
  return out;
}

JoinResult HashJoin(QueryContext* ctx, const Column& left_col,
                    const PositionList& left_pos, const Column& right_col,
                    const PositionList& right_pos) {
  JoinResult out;
  std::unordered_multimap<int64_t, uint32_t> ht;
  ht.reserve(left_pos.size());
  uint64_t ht_base =
      ctx->trace ? ctx->trace->AllocRegion(left_pos.size() * 16, "hashtable") : 0;
  uint64_t left_base = ctx->trace ? ctx->trace->LayoutColumn(left_col) : 0;
  uint64_t right_base = ctx->trace ? ctx->trace->LayoutColumn(right_col) : 0;
  uint64_t ht_slots = std::max<uint64_t>(1, left_pos.size());
  for (uint32_t p : left_pos) {
    int64_t key = left_col[p];
    ht.emplace(key, p);
    if (ctx->trace) {
      ctx->trace->Compute(kHashBuildUops);
      ctx->trace->Load(left_base + static_cast<uint64_t>(p) * 8);
      ctx->trace->Store(ht_base +
                        (static_cast<uint64_t>(key) % ht_slots) * 16);
    }
  }
  for (uint32_t p : right_pos) {
    int64_t key = right_col[p];
    if (ctx->trace) {
      ctx->trace->Compute(kHashProbeUops);
      ctx->trace->Load(right_base + static_cast<uint64_t>(p) * 8);
      ctx->trace->Load(ht_base + (static_cast<uint64_t>(key) % ht_slots) * 16);
    }
    auto [first, last] = ht.equal_range(key);
    for (auto it = first; it != last; ++it) {
      out.left.push_back(it->second);
      out.right.push_back(p);
    }
  }
  ctx->Record("hash_join", left_pos.size() + right_pos.size(),
              out.left.size());
  return out;
}

PositionList HashSemiJoin(QueryContext* ctx, const Column& build_col,
                          const PositionList& build_pos,
                          const Column& probe_col,
                          const PositionList& probe_pos, bool anti) {
  bool device_fallback = false;
  if (!anti && ctx->ndp_semi_join) {
    auto pushed =
        ctx->ndp_semi_join(build_col, build_pos, probe_col, probe_pos);
    if (pushed.ok()) {
      ctx->Record("semi_join[jafar]", build_pos.size() + probe_pos.size(),
                  pushed.value().size());
      return std::move(pushed).value();
    }
    device_fallback = IsDeviceFallback(pushed.status().code());
    NDP_LOG_DEBUG("NDP semijoin declined, CPU fallback: %s",
                  pushed.status().ToString().c_str());
  }
  std::unordered_map<int64_t, bool> keys;
  keys.reserve(build_pos.size());
  uint64_t ht_base =
      ctx->trace ? ctx->trace->AllocRegion(build_pos.size() * 16, "semiht") : 0;
  uint64_t build_base = ctx->trace ? ctx->trace->LayoutColumn(build_col) : 0;
  uint64_t probe_base = ctx->trace ? ctx->trace->LayoutColumn(probe_col) : 0;
  uint64_t slots = std::max<uint64_t>(1, build_pos.size());
  for (uint32_t p : build_pos) {
    keys.emplace(build_col[p], true);
    if (ctx->trace) {
      ctx->trace->Compute(kHashBuildUops);
      ctx->trace->Load(build_base + static_cast<uint64_t>(p) * 8);
      ctx->trace->Store(
          ht_base + (static_cast<uint64_t>(build_col[p]) % slots) * 16);
    }
  }
  PositionList out;
  for (uint32_t p : probe_pos) {
    if (ctx->trace) {
      ctx->trace->Compute(kHashProbeUops);
      ctx->trace->Load(probe_base + static_cast<uint64_t>(p) * 8);
      ctx->trace->Load(ht_base +
                       (static_cast<uint64_t>(probe_col[p]) % slots) * 16);
    }
    bool found = keys.count(probe_col[p]) != 0;
    if (found != anti) out.push_back(p);
  }
  ctx->Record(anti ? "anti_join"
                   : (device_fallback ? "semi_join[cpu_fallback]"
                                      : "semi_join"),
              build_pos.size() + probe_pos.size(), out.size());
  return out;
}

int64_t Aggregate(QueryContext* ctx, AggFn fn, const std::vector<int64_t>& v) {
  uint64_t base = ctx->trace ? ctx->trace->AllocRegion(v.size() * 8, "agg") : 0;
  int64_t acc = 0;
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kAvgNum:
    case AggFn::kCount: acc = 0; break;
    case AggFn::kMin: acc = INT64_MAX; break;
    case AggFn::kMax: acc = INT64_MIN; break;
  }
  for (size_t i = 0; i < v.size(); ++i) {
    if (ctx->trace) {
      ctx->trace->Compute(kAggUops);
      ctx->trace->Load(base + i * 8);
    }
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kAvgNum: acc += v[i]; break;
      case AggFn::kCount: acc += 1; break;
      case AggFn::kMin: acc = std::min(acc, v[i]); break;
      case AggFn::kMax: acc = std::max(acc, v[i]); break;
    }
  }
  ctx->Record("aggregate", v.size(), 1);
  return acc;
}

std::map<int64_t, std::vector<int64_t>> GroupAggregate(
    QueryContext* ctx, const std::vector<int64_t>& keys,
    const std::vector<AggSpec>& specs) {
  for (const AggSpec& s : specs) {
    NDP_CHECK(s.fn == AggFn::kCount ||
              (s.input != nullptr && s.input->size() == keys.size()));
  }
  std::map<int64_t, std::vector<int64_t>> groups;
  uint64_t ht_base = ctx->trace ? ctx->trace->AllocRegion(4096 * 64, "groups") : 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (ctx->trace) {
      ctx->trace->Compute(kGroupAggUops * specs.size());
      ctx->trace->Load(ht_base + (static_cast<uint64_t>(keys[i]) % 4096) * 64);
      ctx->trace->Store(ht_base + (static_cast<uint64_t>(keys[i]) % 4096) * 64);
    }
    auto it = groups.find(keys[i]);
    if (it == groups.end()) {
      std::vector<int64_t> init;
      for (const AggSpec& s : specs) {
        switch (s.fn) {
          case AggFn::kSum:
          case AggFn::kAvgNum:
          case AggFn::kCount: init.push_back(0); break;
          case AggFn::kMin: init.push_back(INT64_MAX); break;
          case AggFn::kMax: init.push_back(INT64_MIN); break;
        }
      }
      it = groups.emplace(keys[i], std::move(init)).first;
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      int64_t v = specs[s].input ? (*specs[s].input)[i] : 0;
      switch (specs[s].fn) {
        case AggFn::kSum:
        case AggFn::kAvgNum: it->second[s] += v; break;
        case AggFn::kCount: it->second[s] += 1; break;
        case AggFn::kMin: it->second[s] = std::min(it->second[s], v); break;
        case AggFn::kMax: it->second[s] = std::max(it->second[s], v); break;
      }
    }
  }
  ctx->Record("group_aggregate", keys.size(), groups.size());
  return groups;
}

std::map<int64_t, std::pair<int64_t, int64_t>> GroupSumFullColumn(
    QueryContext* ctx, const Column& key_col, const Column& val_col) {
  NDP_CHECK(key_col.size() == val_col.size());
  bool device_fallback = false;
  if (ctx->ndp_group_by) {
    auto pushed = ctx->ndp_group_by(key_col, val_col);
    if (pushed.ok()) {
      ctx->Record("group_aggregate[jafar]", key_col.size(),
                  pushed.value().size());
      return std::move(pushed).value();
    }
    device_fallback = IsDeviceFallback(pushed.status().code());
    NDP_LOG_DEBUG("NDP group-by declined, CPU fallback: %s",
                  pushed.status().ToString().c_str());
  }
  std::map<int64_t, std::pair<int64_t, int64_t>> groups;
  uint64_t key_base = ctx->trace ? ctx->trace->LayoutColumn(key_col) : 0;
  uint64_t val_base = ctx->trace ? ctx->trace->LayoutColumn(val_col) : 0;
  uint64_t ht_base =
      ctx->trace ? ctx->trace->AllocRegion(4096 * 64, "groups") : 0;
  for (size_t i = 0; i < key_col.size(); ++i) {
    if (ctx->trace) {
      ctx->trace->Compute(kGroupAggUops);
      ctx->trace->Load(key_base + i * 8);
      ctx->trace->Load(val_base + i * 8);
      ctx->trace->Load(ht_base + (static_cast<uint64_t>(key_col[i]) % 4096) * 64);
      ctx->trace->Store(ht_base + (static_cast<uint64_t>(key_col[i]) % 4096) * 64);
    }
    auto& slot = groups[key_col[i]];
    slot.first += val_col[i];
    slot.second += 1;
  }
  ctx->Record(device_fallback ? "group_aggregate[cpu_fallback]"
                              : "group_aggregate",
              key_col.size(), groups.size());
  return groups;
}

PositionList SortBy(QueryContext* ctx, const std::vector<int64_t>& keys,
                    const PositionList& positions, bool descending) {
  NDP_CHECK(keys.size() == positions.size());
  std::vector<size_t> order(positions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return descending ? keys[a] > keys[b] : keys[a] < keys[b];
  });
  PositionList out(positions.size());
  uint64_t base =
      ctx->trace ? ctx->trace->AllocRegion(positions.size() * 12, "sort") : 0;
  for (size_t i = 0; i < order.size(); ++i) {
    out[i] = positions[order[i]];
    if (ctx->trace) {
      // ~log2(n) compares per element amortized for the merge pattern.
      ctx->trace->Compute(4);
      ctx->trace->Load(base + order[i] * 12);
      ctx->trace->Store(base + i * 12);
    }
  }
  ctx->Record("sort", positions.size(), out.size());
  return out;
}

std::vector<int64_t> MergeSortedRuns(
    QueryContext* ctx, const std::vector<std::vector<int64_t>>& runs) {
  // Heap-based k-way merge: (value, run, offset).
  using Entry = std::tuple<int64_t, size_t, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  size_t total = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.emplace(runs[r][0], r, 0);
  }
  std::vector<int64_t> out;
  out.reserve(total);
  uint64_t out_base = ctx->trace ? ctx->trace->AllocRegion(total * 8, "merge") : 0;
  while (!heap.empty()) {
    auto [v, r, off] = heap.top();
    heap.pop();
    out.push_back(v);
    if (ctx->trace) {
      ctx->trace->Compute(6);  // heap sift + cursor updates
      ctx->trace->Load(out_base + off * 8);
      ctx->trace->Store(out_base + (out.size() - 1) * 8);
    }
    if (off + 1 < runs[r].size()) heap.emplace(runs[r][off + 1], r, off + 1);
  }
  ctx->Record("merge_runs", total, out.size());
  return out;
}

BitVector PositionsToBitmap(const PositionList& positions, size_t num_rows) {
  BitVector bm(num_rows);
  for (uint32_t p : positions) bm.Set(p);
  return bm;
}

PositionList BitmapToPositions(const BitVector& bm) {
  PositionList out;
  out.reserve(bm.CountOnes());
  bm.AppendSetPositions(&out);
  return out;
}

PositionList IntersectSorted(const PositionList& a, const PositionList& b) {
  PositionList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace ndp::db
