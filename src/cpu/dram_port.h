// Adapter from the cache hierarchy's MemSink interface to the DRAM system:
// aligns accesses to burst (cache line) granularity and applies a fixed
// front-side latency representing interconnect + controller pipeline.
#pragma once

#include <cstdint>

#include "cpu/mem_if.h"
#include "dram/dram_system.h"

namespace ndp::cpu {

/// \brief Last-level-cache-to-memory port.
class DramPort : public MemSink {
 public:
  /// `frontside_ps`: one-way interconnect latency added to each request
  /// before it reaches the controller queues (and not on the return path,
  /// where it is folded into the same constant for simplicity).
  DramPort(dram::DramSystem* dram, sim::Tick frontside_ps,
           dram::RequesterId requester = dram::RequesterId::kCpu)
      : dram_(dram), frontside_ps_(frontside_ps), requester_(requester) {}

  bool TryAccess(uint64_t addr, bool is_write,
                 std::function<void(sim::Tick)> on_complete) override {
    uint64_t line = addr & ~uint64_t{63};
    dram::Request req;
    req.addr = line;
    req.is_write = is_write;
    req.requester = requester_;
    req.on_complete = std::move(on_complete);
    if (!dram_->CanAccept(req)) return false;
    if (frontside_ps_ == 0) {
      return dram_->EnqueueRequest(req).ok();
    }
    dram_->event_queue()->ScheduleAfter(frontside_ps_, [this, req]() mutable {
      // The queue had room when checked; a race with other agents in the same
      // window can overflow it, in which case we retry every 1 ns.
      RetryEnqueue(req);
    });
    return true;
  }

 private:
  void RetryEnqueue(dram::Request req) {
    if (dram_->EnqueueRequest(req).ok()) return;
    dram_->event_queue()->ScheduleAfter(1000, [this, req]() mutable {
      RetryEnqueue(req);
    });
  }

  dram::DramSystem* dram_;
  sim::Tick frontside_ps_;
  dram::RequesterId requester_;
};

}  // namespace ndp::cpu
