#include "cpu/kernels.h"

namespace ndp::cpu {

bool SelectScanStream::Next(Uop* uop) {
  for (;;) {
    if (row_ >= num_rows_) return false;
    Uop u;
    switch (step_) {
      case 0:  // load col[row]
        u.type = UopType::kLoad;
        u.addr = col_base_ + row_ * elem_bytes_;
        pass_ = values_[row_] >= lo_ && values_[row_] <= hi_;
        break;
      case 1:  // cmp >= lo (depends on the load)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 2:  // cmp <= hi (depends on the load, two µops back)
        u.type = UopType::kAlu;
        u.dep_distance = 2;
        break;
      case 3:  // and of the two compares
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 4:
        if (predicated_) {
          // Unconditional store of the candidate position; the position-list
          // cursor advances by `pass` with no control dependence.
          u.type = UopType::kStore;
          u.addr = out_base_ + matches_ * 4;
        } else {
          u.type = UopType::kBranch;
          u.pc = kPredicateBranchPc;
          u.taken = pass_;
          u.dep_distance = 1;  // depends on the and
        }
        break;
      case 5:
        if (predicated_) {
          // count += pass (data dependence on the and, 2 µops back).
          u.type = UopType::kAlu;
          u.dep_distance = 2;
          if (pass_) ++matches_;
        } else if (pass_) {
          u.type = UopType::kAlu;  // position-list address computation
        } else {
          step_ = 9;
          continue;  // branch fell through: no bookkeeping µops
        }
        break;
      case 6:
        if (predicated_) {
          u.type = UopType::kAlu;  // cursor address computation
        } else {
          u.type = UopType::kStore;  // out[count] = row
          u.addr = out_base_ + matches_ * 4;
        }
        break;
      case 7:
        if (predicated_) {
          ++step_;
          continue;  // cursor advance already accounted in case 5
        }
        u.type = UopType::kAlu;  // count++
        ++matches_;
        break;
      case 8:
        if (!predicated_ && pass_) {
          u.type = UopType::kAlu;  // pack/extend of the recorded position
        } else {
          ++step_;
          continue;
        }
        break;
      case 9:  // i++
        u.type = UopType::kAlu;
        break;
      case 10:  // loop-back branch, strongly biased taken
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = row_ + 1 < num_rows_;
        break;
      default:
        step_ = 0;
        ++row_;
        continue;
    }
    ++step_;
    if (step_ > 10) {
      step_ = 0;
      ++row_;
    }
    *uop = u;
    return true;
  }
}

bool AggregateScanStream::Next(Uop* uop) {
  for (;;) {
    if (row_ >= num_rows_) return false;
    Uop u;
    switch (step_) {
      case 0:
        u.type = UopType::kLoad;
        u.addr = col_base_ + row_ * elem_bytes_;
        break;
      case 1:  // acc += value (depends on the load)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 2:  // i++
        u.type = UopType::kAlu;
        break;
      case 3:
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = row_ + 1 < num_rows_;
        break;
      default:
        step_ = 0;
        ++row_;
        continue;
    }
    ++step_;
    if (step_ > 3) {
      step_ = 0;
      ++row_;
    }
    *uop = u;
    return true;
  }
}

bool ProjectGatherStream::Next(Uop* uop) {
  for (;;) {
    if (j_ >= num_positions_) return false;
    Uop u;
    switch (step_) {
      case 0:  // load pos[j]
        u.type = UopType::kLoad;
        u.addr = pos_base_ + j_ * 4;
        break;
      case 1:  // load col[pos[j]] — address depends on the previous load
        u.type = UopType::kLoad;
        u.addr = col_base_ + static_cast<uint64_t>(positions_[j_]) * elem_bytes_;
        u.dep_distance = 1;
        break;
      case 2:  // store out[j]
        u.type = UopType::kStore;
        u.addr = out_base_ + j_ * elem_bytes_;
        break;
      case 3:  // j++
        u.type = UopType::kAlu;
        break;
      case 4:
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = j_ + 1 < num_positions_;
        break;
      default:
        step_ = 0;
        ++j_;
        continue;
    }
    ++step_;
    if (step_ > 4) {
      step_ = 0;
      ++j_;
    }
    *uop = u;
    return true;
  }
}

bool GroupByScanStream::Next(Uop* uop) {
  for (;;) {
    if (row_ >= num_rows_) return false;
    uint64_t bucket =
        static_cast<uint64_t>(keys_[row_]) % num_buckets_;
    Uop u;
    switch (step_) {
      case 0:  // load key
        u.type = UopType::kLoad;
        u.addr = key_base_ + row_ * 8;
        break;
      case 1:  // load value
        u.type = UopType::kLoad;
        u.addr = val_base_ + row_ * 8;
        break;
      case 2:  // hash (depends on the key load)
        u.type = UopType::kAlu;
        u.dep_distance = 2;
        break;
      case 3:  // bucket line load: address depends on the hash
        u.type = UopType::kLoad;
        u.addr = ht_base_ + bucket * 16;
        u.dep_distance = 1;
        break;
      case 4:  // accumulate (depends on bucket + value)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 5:  // store the bucket back
        u.type = UopType::kStore;
        u.addr = ht_base_ + bucket * 16;
        break;
      case 6:  // i++
        u.type = UopType::kAlu;
        break;
      case 7:  // loop branch
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = row_ + 1 < num_rows_;
        break;
      default:
        step_ = 0;
        ++row_;
        continue;
    }
    ++step_;
    if (step_ > 7) {
      step_ = 0;
      ++row_;
    }
    *uop = u;
    return true;
  }
}

bool HashProbeStream::Next(Uop* uop) {
  for (;;) {
    if (row_ >= num_rows_) return false;
    uint64_t bucket = static_cast<uint64_t>(keys_[row_]) % num_buckets_;
    bool hit = hit_flags_ != nullptr && hit_flags_[row_] != 0;
    Uop u;
    switch (step_) {
      case 0:  // load probe key
        u.type = UopType::kLoad;
        u.addr = key_base_ + row_ * 8;
        break;
      case 1:  // hash (depends on the key load)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 2:  // hash-table line load: address depends on the hash
        u.type = UopType::kLoad;
        u.addr = ht_base_ + bucket * 16;
        u.dep_distance = 1;
        break;
      case 3:  // key compare (depends on the table load)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 4:  // match branch: data-dependent, the semijoin's mispredict tax
        u.type = UopType::kBranch;
        u.pc = kPredicateBranchPc;
        u.taken = hit;
        break;
      case 5:  // matched: append the position
        if (!hit) { ++step_; continue; }
        u.type = UopType::kStore;
        u.addr = out_base_ + matches_ * 4;
        ++matches_;
        break;
      case 6:  // i++
        u.type = UopType::kAlu;
        break;
      case 7:  // loop branch
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = row_ + 1 < num_rows_;
        break;
      default:
        step_ = 0;
        ++row_;
        continue;
    }
    ++step_;
    if (step_ > 7) {
      step_ = 0;
      ++row_;
    }
    *uop = u;
    return true;
  }
}

bool MergeSortStream::Next(Uop* uop) {
  for (;;) {
    if (pass_ >= passes_) return false;
    // Ping-pong buffers between passes.
    uint64_t in_base = (pass_ % 2 == 0) ? src_base_ : dst_base_;
    uint64_t out_base = (pass_ % 2 == 0) ? dst_base_ : src_base_;
    Uop u;
    switch (step_) {
      case 0:  // load the next element of one of the two input runs
        u.type = UopType::kLoad;
        u.addr = in_base + i_ * 8;
        break;
      case 1:  // compare the run heads (depends on the load)
        u.type = UopType::kAlu;
        u.dep_distance = 1;
        break;
      case 2:  // which run wins: data-dependent, ~50/50 on random keys
        u.type = UopType::kBranch;
        u.pc = kPredicateBranchPc + pass_ * 8;
        u.taken = NextBit();
        u.dep_distance = 1;
        break;
      case 3:  // store to the output run
        u.type = UopType::kStore;
        u.addr = out_base + i_ * 8;
        break;
      case 4:  // cursor bookkeeping
        u.type = UopType::kAlu;
        break;
      case 5:  // loop branch
        u.type = UopType::kBranch;
        u.pc = kLoopBranchPc;
        u.taken = i_ + 1 < num_rows_;
        break;
      default:
        step_ = 0;
        if (++i_ >= num_rows_) {
          i_ = 0;
          ++pass_;
        }
        continue;
    }
    ++step_;
    if (step_ > 5) {
      step_ = 0;
      if (++i_ >= num_rows_) {
        i_ = 0;
        ++pass_;
      }
    }
    *uop = u;
    return true;
  }
}

bool ReplayStream::Next(Uop* uop) {
  for (;;) {
    if (compute_left_ > 0) {
      --compute_left_;
      *uop = Uop{};  // independent single-cycle ALU op
      return true;
    }
    if (i_ >= events_->size()) return false;
    const TraceEvent& ev = (*events_)[i_++];
    switch (ev.kind) {
      case TraceEvent::Kind::kCompute:
        compute_left_ = ev.value;
        continue;
      case TraceEvent::Kind::kLoad: {
        Uop u;
        u.type = UopType::kLoad;
        u.addr = ev.value;
        *uop = u;
        return true;
      }
      case TraceEvent::Kind::kStore: {
        Uop u;
        u.type = UopType::kStore;
        u.addr = ev.value;
        *uop = u;
        return true;
      }
    }
  }
}

}  // namespace ndp::cpu
