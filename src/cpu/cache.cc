#include "cpu/cache.h"

#include <algorithm>

#include "util/logging.h"

namespace ndp::cpu {

Cache::Cache(sim::EventQueue* eq, sim::ClockDomain clock, CacheConfig config,
             MemSink* next, const StatsScope& stats)
    : eq_(eq), clock_(clock), config_(config), next_(next) {
  NDP_CHECK(config_.line_bytes != 0 &&
            (config_.line_bytes & (config_.line_bytes - 1)) == 0);
  uint64_t lines = config_.size_bytes / config_.line_bytes;
  NDP_CHECK_MSG(lines % config_.ways == 0, "size/ways/line mismatch");
  num_sets_ = static_cast<uint32_t>(lines / config_.ways);
  lines_.resize(lines);
  stats.Counter("hits", &stats_.hits);
  stats.Counter("misses", &stats_.misses);
  stats.Counter("mshr_merges", &stats_.mshr_merges);
  stats.Counter("writebacks", &stats_.writebacks);
  stats.Counter("prefetches_issued", &stats_.prefetches_issued);
  stats.Counter("prefetch_hits", &stats_.prefetch_hits);
  stats.Counter("rejections", &stats_.rejections);
}

Cache::Line* Cache::Lookup(uint64_t line_addr) {
  uint32_t set = SetIndex(line_addr);
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::Lookup(uint64_t line_addr) const {
  return const_cast<Cache*>(this)->Lookup(line_addr);
}

bool Cache::Contains(uint64_t addr) const { return Lookup(LineAddr(addr)) != nullptr; }

bool Cache::TryAccess(uint64_t addr, bool is_write,
                      std::function<void(sim::Tick)> on_complete) {
  uint64_t line_addr = LineAddr(addr);
  if (Line* line = Lookup(line_addr)) {
    ++stats_.hits;
    if (line->prefetched) {
      ++stats_.prefetch_hits;
      line->prefetched = false;
    }
    line->lru = ++lru_tick_;
    if (is_write) line->dirty = true;
    if (on_complete) {
      eq_->ScheduleAfter(HitLatencyPs(), [cb = std::move(on_complete), this] {
        cb(eq_->Now());
      });
    }
    return true;
  }
  // Miss: merge into a pending fill if one exists for this line.
  auto it = mshr_.find(line_addr);
  if (it != mshr_.end()) {
    if (it->second.waiters.size() >= config_.max_waiters_per_mshr) {
      ++stats_.rejections;
      return false;
    }
    ++stats_.mshr_merges;
    it->second.prefetch_only = false;
    it->second.waiters.emplace_back(is_write, std::move(on_complete));
    return true;
  }
  if (mshr_.size() >= config_.mshrs) {
    ++stats_.rejections;
    return false;
  }
  ++stats_.misses;
  Mshr& m = mshr_[line_addr];
  m.prefetch_only = false;
  m.waiters.emplace_back(is_write, std::move(on_complete));
  IssueFill(line_addr);
  MaybePrefetch(line_addr);
  return true;
}

void Cache::IssueFill(uint64_t line_addr) {
  auto it = mshr_.find(line_addr);
  if (it == mshr_.end() || it->second.issued) return;
  // Lookup latency before the miss propagates downstream.
  eq_->ScheduleAfter(HitLatencyPs(), [this, line_addr] {
    auto it2 = mshr_.find(line_addr);
    if (it2 == mshr_.end()) return;
    bool ok = next_->TryAccess(line_addr, /*is_write=*/false,
                               [this, line_addr](sim::Tick t) {
                                 HandleFill(line_addr, t);
                               });
    if (ok) {
      it2->second.issued = true;
    } else {
      // Downstream backpressure: retry after one cycle.
      eq_->ScheduleAfter(clock_.period_ps(), [this, line_addr] {
        auto it3 = mshr_.find(line_addr);
        if (it3 != mshr_.end()) {
          it3->second.issued = false;
          IssueFill(line_addr);
        }
      });
      it2->second.issued = true;  // suppress duplicate issue until retry fires
    }
  });
}

void Cache::HandleFill(uint64_t line_addr, sim::Tick t) {
  auto it = mshr_.find(line_addr);
  NDP_CHECK(it != mshr_.end());
  Mshr m = std::move(it->second);
  mshr_.erase(it);
  Install(line_addr, m.prefetch_only);
  Line* line = Lookup(line_addr);
  NDP_CHECK(line != nullptr);
  for (auto& [w_is_write, cb] : m.waiters) {
    if (w_is_write) line->dirty = true;
    if (cb) {
      eq_->ScheduleAfter(HitLatencyPs(),
                         [cb = std::move(cb), this] { cb(eq_->Now()); });
    }
  }
  (void)t;
}

void Cache::Install(uint64_t line_addr, bool prefetched) {
  uint32_t set = SetIndex(line_addr);
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];
  Line* victim = &base[0];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    IssueWriteback(victim->tag);
  }
  victim->valid = true;
  victim->dirty = false;
  victim->prefetched = prefetched;
  victim->tag = line_addr;
  victim->lru = ++lru_tick_;
}

void Cache::IssueWriteback(uint64_t line_addr) {
  ++pending_writebacks_;
  if (next_->TryAccess(line_addr, /*is_write=*/true, nullptr)) {
    --pending_writebacks_;
    return;
  }
  eq_->ScheduleAfter(clock_.period_ps(), [this, line_addr] {
    --pending_writebacks_;
    IssueWriteback(line_addr);
  });
}

void Cache::MaybePrefetch(uint64_t line_addr) {
  for (uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
    uint64_t pf = line_addr + static_cast<uint64_t>(d) * config_.line_bytes;
    if (Lookup(pf) != nullptr) continue;
    if (mshr_.count(pf) != 0) continue;
    if (mshr_.size() >= config_.mshrs) break;
    ++stats_.prefetches_issued;
    mshr_[pf];  // prefetch_only MSHR with no waiters
    IssueFill(pf);
  }
}

void Cache::InvalidateAll() {
  for (auto& l : lines_) l = Line{};
}

}  // namespace ndp::cpu
