// Set-associative write-back, write-allocate cache with MSHRs and an optional
// next-line prefetcher. Timing-only: tags and dirty bits are modeled, data
// contents live in the functional BackingStore.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/mem_if.h"
#include "sim/event_queue.h"
#include "util/macros.h"
#include "util/stats_registry.h"

namespace ndp::cpu {

struct CacheConfig {
  std::string name = "L1";
  uint64_t size_bytes = 64 * 1024;
  uint32_t ways = 8;
  uint32_t line_bytes = 64;
  uint32_t hit_latency_cycles = 2;   ///< in the owning clock domain
  uint32_t mshrs = 8;                ///< max outstanding line fills
  uint32_t prefetch_degree = 0;      ///< next-line prefetches per demand miss
  uint32_t max_waiters_per_mshr = 16;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;           ///< demand misses that allocated an MSHR
  uint64_t mshr_merges = 0;      ///< demand misses merged into a pending fill
  uint64_t writebacks = 0;
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_hits = 0;    ///< demand accesses that hit a prefetched line
  uint64_t rejections = 0;       ///< TryAccess refused (backpressure)
};

/// \brief One cache level.
class Cache : public MemSink {
 public:
  /// `stats` (optional) mounts this level's hit/miss/MSHR/writeback counters
  /// into a registry under the scope's prefix.
  Cache(sim::EventQueue* eq, sim::ClockDomain clock, CacheConfig config,
        MemSink* next, const StatsScope& stats = {});
  NDP_DISALLOW_COPY_AND_ASSIGN(Cache);

  bool TryAccess(uint64_t addr, bool is_write,
                 std::function<void(sim::Tick)> on_complete) override;

  /// Drops all lines (dirty contents are NOT written back; test helper).
  void InvalidateAll();

  /// True when no fills or writebacks are in flight.
  bool Quiescent() const { return mshr_.empty() && pending_writebacks_ == 0; }

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }
  const CacheConfig& config() const { return config_; }

  /// Whether `addr`'s line is currently resident (test/inspection helper).
  bool Contains(uint64_t addr) const;

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
    uint64_t lru = 0;  ///< higher = more recently used
  };
  struct Mshr {
    std::vector<std::pair<bool, std::function<void(sim::Tick)>>> waiters;
    bool issued = false;
    bool prefetch_only = true;
  };

  uint64_t LineAddr(uint64_t addr) const { return addr & ~uint64_t{config_.line_bytes - 1}; }
  uint32_t SetIndex(uint64_t line_addr) const {
    return static_cast<uint32_t>((line_addr / config_.line_bytes) % num_sets_);
  }
  Line* Lookup(uint64_t line_addr);
  const Line* Lookup(uint64_t line_addr) const;
  void IssueFill(uint64_t line_addr);
  void HandleFill(uint64_t line_addr, sim::Tick t);
  void Install(uint64_t line_addr, bool prefetched);
  void IssueWriteback(uint64_t line_addr);
  void MaybePrefetch(uint64_t line_addr);
  sim::Tick HitLatencyPs() const {
    return config_.hit_latency_cycles * clock_.period_ps();
  }

  sim::EventQueue* eq_;
  sim::ClockDomain clock_;
  CacheConfig config_;
  MemSink* next_;
  uint32_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ x ways, row-major
  std::unordered_map<uint64_t, Mshr> mshr_;
  uint64_t lru_tick_ = 0;
  uint32_t pending_writebacks_ = 0;
  CacheStats stats_;
};

}  // namespace ndp::cpu
