// Micro-op vocabulary consumed by the core model, and the lazy trace
// generator interface that supplies it. Kernels (select loops, aggregation
// loops, replayed database operator traces) are expressed as µop streams so
// the core never materializes billions of instructions.
#pragma once

#include <cstdint>

namespace ndp::cpu {

enum class UopType : uint8_t {
  kAlu,     ///< integer ALU op (latency configurable, default 1)
  kLoad,    ///< memory read through the cache hierarchy
  kStore,   ///< memory write (retires via store buffer)
  kBranch,  ///< conditional branch, subject to prediction
  kNop,     ///< structural filler (fetch bandwidth only)
};

struct Uop {
  UopType type = UopType::kAlu;
  uint64_t addr = 0;      ///< effective address for kLoad/kStore
  uint64_t pc = 0;        ///< identifies the branch site for the predictor
  bool taken = false;     ///< actual branch outcome
  uint8_t latency = 1;    ///< execution latency in cycles (ALU)
  /// Data dependence: this µop cannot complete before the µop `dep_distance`
  /// positions earlier in program order has completed (0 = independent).
  uint8_t dep_distance = 0;
};

/// \brief Lazy µop stream.
class UopStream {
 public:
  virtual ~UopStream() = default;
  /// Produces the next µop. Returns false at end of stream.
  virtual bool Next(Uop* uop) = 0;
};

}  // namespace ndp::cpu
