// µop stream generators for the workloads the paper runs on the CPU:
// the select scan (branching and predicated variants, §3.2), aggregation and
// projection loops (§4), and a replay stream for recorded database operator
// traces (Figure 4 profiling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/uop.h"

namespace ndp::cpu {

/// Distinct PC values so branch-predictor entries do not alias between the
/// data-dependent predicate branch and the well-predicted loop-back branch.
constexpr uint64_t kPredicateBranchPc = 0x400100;
constexpr uint64_t kLoopBranchPc = 0x400180;

/// \brief CPU select over an integer column: `out[] = positions where
/// lo <= col[i] <= hi`, producing a position list.
///
/// Branching variant (the paper's default, "we do not use predication"):
///   load col[i]; cmp lo; cmp hi; and; branch;   [store pos; count++] if pass
/// Predicated variant (§3.2 discussion):
///   load col[i]; cmp lo; cmp hi; and; store pos; count += pass
class SelectScanStream : public UopStream {
 public:
  SelectScanStream(const int64_t* values, uint64_t num_rows, int64_t lo,
                   int64_t hi, uint64_t col_base_addr, uint64_t out_base_addr,
                   bool predicated, uint32_t elem_bytes = 8)
      : values_(values),
        num_rows_(num_rows),
        lo_(lo),
        hi_(hi),
        col_base_(col_base_addr),
        out_base_(out_base_addr),
        predicated_(predicated),
        elem_bytes_(elem_bytes) {}

  bool Next(Uop* uop) override;

  uint64_t matches() const { return matches_; }

 private:
  const int64_t* values_;
  uint64_t num_rows_;
  int64_t lo_, hi_;
  uint64_t col_base_, out_base_;
  bool predicated_;
  uint32_t elem_bytes_;

  uint64_t row_ = 0;
  uint32_t step_ = 0;
  bool pass_ = false;
  uint64_t matches_ = 0;
};

/// \brief CPU aggregation over an integer column (sum/min/max have identical
/// µop structure): load; accumulate (loop-carried dependence); loop overhead.
class AggregateScanStream : public UopStream {
 public:
  AggregateScanStream(uint64_t num_rows, uint64_t col_base_addr,
                      uint32_t elem_bytes = 8)
      : num_rows_(num_rows), col_base_(col_base_addr), elem_bytes_(elem_bytes) {}

  bool Next(Uop* uop) override;

 private:
  uint64_t num_rows_;
  uint64_t col_base_;
  uint32_t elem_bytes_;
  uint64_t row_ = 0;
  uint32_t step_ = 0;
};

/// \brief CPU projection (tuple reconstruction, §4): gather col[pos[j]] for a
/// position list — the dependent-load pattern of late materialization.
class ProjectGatherStream : public UopStream {
 public:
  ProjectGatherStream(const uint32_t* positions, uint64_t num_positions,
                      uint64_t pos_base_addr, uint64_t col_base_addr,
                      uint64_t out_base_addr, uint32_t elem_bytes = 8)
      : positions_(positions),
        num_positions_(num_positions),
        pos_base_(pos_base_addr),
        col_base_(col_base_addr),
        out_base_(out_base_addr),
        elem_bytes_(elem_bytes) {}

  bool Next(Uop* uop) override;

 private:
  const uint32_t* positions_;
  uint64_t num_positions_;
  uint64_t pos_base_, col_base_, out_base_;
  uint32_t elem_bytes_;
  uint64_t j_ = 0;
  uint32_t step_ = 0;
};

/// \brief CPU hash group-by: per row, load the key and value, hash, a
/// data-dependent load of the bucket line, accumulate, store back — the
/// classic dependent-access pattern of hash aggregation. CPU baseline for
/// the §4 grouped-aggregation engine ablation.
class GroupByScanStream : public UopStream {
 public:
  GroupByScanStream(const int64_t* keys, uint64_t num_rows,
                    uint64_t key_base_addr, uint64_t val_base_addr,
                    uint64_t ht_base_addr, uint32_t num_buckets)
      : keys_(keys),
        num_rows_(num_rows),
        key_base_(key_base_addr),
        val_base_(val_base_addr),
        ht_base_(ht_base_addr),
        num_buckets_(num_buckets) {}

  bool Next(Uop* uop) override;

 private:
  const int64_t* keys_;
  uint64_t num_rows_;
  uint64_t key_base_, val_base_, ht_base_;
  uint32_t num_buckets_;
  uint64_t row_ = 0;
  uint32_t step_ = 0;
};

/// \brief CPU hash semijoin probe: per probe row, load the key, hash, a
/// data-dependent load of the hash-table line, compare, and a data-dependent
/// match branch with a conditional position store — the CPU baseline the
/// device Bloom-probe job competes against in the abl_join ablation.
/// `hit_flags[i]` (nullable, 0/1) drives the branch outcome and the store, so
/// the simulated branch behaviour follows the real join's selectivity.
class HashProbeStream : public UopStream {
 public:
  HashProbeStream(const int64_t* keys, uint64_t num_rows,
                  uint64_t key_base_addr, uint64_t ht_base_addr,
                  uint64_t out_base_addr, uint32_t num_buckets,
                  const uint8_t* hit_flags = nullptr)
      : keys_(keys),
        num_rows_(num_rows),
        key_base_(key_base_addr),
        ht_base_(ht_base_addr),
        out_base_(out_base_addr),
        num_buckets_(num_buckets),
        hit_flags_(hit_flags) {}

  bool Next(Uop* uop) override;

  uint64_t matches() const { return matches_; }

 private:
  const int64_t* keys_;
  uint64_t num_rows_;
  uint64_t key_base_, ht_base_, out_base_;
  uint32_t num_buckets_;
  const uint8_t* hit_flags_;
  uint64_t row_ = 0;
  uint32_t step_ = 0;
  uint64_t matches_ = 0;
};

/// \brief CPU bottom-up merge sort over `num_rows` elements: log2(n) passes,
/// each streaming two input runs and one output run. Per output element: a
/// run load, a compare, a data-dependent branch (the classic ~50%-mispredict
/// merge branch on random keys), a store, and cursor bookkeeping. Used as the
/// CPU baseline for the §4 sorting accelerator ablation.
class MergeSortStream : public UopStream {
 public:
  MergeSortStream(uint64_t num_rows, uint64_t src_base, uint64_t dst_base,
                  uint64_t branch_seed = 0x5eed)
      : num_rows_(num_rows),
        src_base_(src_base),
        dst_base_(dst_base),
        rng_state_(branch_seed | 1) {
    passes_ = 0;
    while ((uint64_t{1} << passes_) < num_rows_) ++passes_;
  }

  bool Next(Uop* uop) override;

  uint32_t passes() const { return passes_; }

 private:
  bool NextBit() {  // xorshift: models the data-dependent branch outcome
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    return rng_state_ & 1;
  }

  uint64_t num_rows_;
  uint64_t src_base_, dst_base_;
  uint64_t rng_state_;
  uint32_t passes_ = 0;
  uint32_t pass_ = 0;
  uint64_t i_ = 0;
  uint32_t step_ = 0;
};

/// One event of a recorded operator trace (see db::TraceRecorder).
struct TraceEvent {
  enum class Kind : uint8_t { kCompute, kLoad, kStore } kind;
  uint64_t value = 0;  ///< µop count for kCompute, address for kLoad/kStore
};

/// \brief Concatenates child streams back to back (e.g., per-block scans of a
/// zone-map-pruned select). Does not own the children.
class ConcatStream : public UopStream {
 public:
  explicit ConcatStream(std::vector<UopStream*> children)
      : children_(std::move(children)) {}

  bool Next(Uop* uop) override {
    while (i_ < children_.size()) {
      if (children_[i_]->Next(uop)) return true;
      ++i_;
    }
    return false;
  }

 private:
  std::vector<UopStream*> children_;
  size_t i_ = 0;
};

/// \brief Replays a recorded database operator trace as a µop stream.
class ReplayStream : public UopStream {
 public:
  explicit ReplayStream(const std::vector<TraceEvent>* events)
      : events_(events) {}

  bool Next(Uop* uop) override;

 private:
  const std::vector<TraceEvent>* events_;
  size_t i_ = 0;
  uint64_t compute_left_ = 0;
};

}  // namespace ndp::cpu
