#include "cpu/core.h"

#include <algorithm>

#include "util/macros.h"

namespace ndp::cpu {

Core::Core(sim::EventQueue* eq, CoreConfig config, MemSink* l1,
           const StatsScope& stats)
    : sim::TickingComponent(eq, config.clock),
      config_(config),
      l1_(l1),
      predictor_(config.branch) {
  NDP_CHECK(config_.rob_entries >= 4);
  NDP_CHECK(config_.rob_entries + config_.issue_width < kRingSize);
  stats.Counter("cycles", &stats_.cycles);
  stats.Counter("uops_retired", &stats_.uops_retired);
  stats.Counter("loads", &stats_.loads);
  stats.Counter("stores", &stats_.stores);
  stats.Counter("branches", &stats_.branches);
  stats.Counter("mispredicts", &stats_.mispredicts);
  stats.Counter("load_reject_cycles", &stats_.load_reject_cycles);
  stats.Counter("rob_full_cycles", &stats_.rob_full_cycles);
  stats.Counter("fetch_stall_cycles", &stats_.fetch_stall_cycles);
  stats.Gauge("max_retire_gap_ps", &stats_.max_retire_gap_ps);
}

Core::~Core() {
  if (drain_retry_.scheduled()) event_queue()->Cancel(&drain_retry_);
}

ndp::Status Core::Run(UopStream* stream, std::function<void(sim::Tick)> on_done) {
  if (stream_ != nullptr) {
    return ndp::Status::FailedPrecondition("core is already running a kernel");
  }
  stream_ = stream;
  on_done_ = std::move(on_done);
  stream_exhausted_ = false;
  pending_uop_.reset();
  fetch_blocked_on_seq_.reset();
  fetch_stalled_until_ = 0;
  last_retire_tick_ = event_queue()->Now();
  // The gap gauge is a per-kernel maximum; counters accumulate across runs
  // (per-run figures come from snapshot deltas), but a max cannot be
  // delta'd, so it restarts with each kernel.
  stats_.max_retire_gap_ps = 0;
  Wake();
  return ndp::Status::OK();
}

std::optional<sim::Tick> Core::CompletionOf(uint64_t seq) const {
  if (ring_seq_[seq % kRingSize] == seq) return ring_completion_[seq % kRingSize];
  for (const RobEntry& e : rob_) {
    if (e.seq == seq) {
      if (e.completion_known) return e.completion;
      return std::nullopt;
    }
  }
  // Older than the ring: retired long ago.
  return sim::Tick{0};
}

void Core::ResolveCompletion(RobEntry* e) {
  if (e->completion_known) return;
  if (e->uop.type == UopType::kLoad) return;  // set by the cache callback
  sim::Tick base = e->dispatch;
  if (e->dep_seq) {
    auto dep = CompletionOf(*e->dep_seq);
    if (!dep) return;  // dependence not resolved yet
    base = std::max(base, *dep);
  }
  e->completion = base + e->uop.latency * clock().period_ps();
  e->completion_known = true;
}

bool Core::DispatchOne(sim::Tick now) {
  if (fetch_blocked_on_seq_ || now < fetch_stalled_until_) {
    ++stats_.fetch_stall_cycles;
    return false;
  }
  if (rob_.size() >= config_.rob_entries) {
    ++stats_.rob_full_cycles;
    return false;
  }
  if (!pending_uop_) {
    Uop u;
    if (stream_exhausted_ || !stream_->Next(&u)) {
      stream_exhausted_ = true;
      return false;
    }
    pending_uop_ = u;
  }

  Uop& u = *pending_uop_;
  RobEntry e;
  e.uop = u;
  e.seq = next_seq_;
  e.dispatch = now;
  if (u.dep_distance > 0 && next_seq_ > u.dep_distance) {
    e.dep_seq = next_seq_ - u.dep_distance;
  }

  switch (u.type) {
    case UopType::kLoad: {
      uint64_t seq = e.seq;
      bool ok = l1_->TryAccess(u.addr, /*is_write=*/false,
                               [this, seq](sim::Tick t) {
                                 for (RobEntry& re : rob_) {
                                   if (re.seq == seq) {
                                     re.completion = t;
                                     re.completion_known = true;
                                     return;
                                   }
                                 }
                                 NDP_CHECK_MSG(false, "load completion lost");
                               });
      if (!ok) {
        ++stats_.load_reject_cycles;
        return false;  // backpressure; retry next cycle
      }
      ++stats_.loads;
      break;
    }
    case UopType::kStore: {
      if (outstanding_stores_ >= config_.store_buffer_entries) return false;
      ++outstanding_stores_;
      ++stats_.stores;
      // Post-retirement write drains through the cache with retry-on-reject.
      DrainStore(u.addr);
      e.completion = now + clock().period_ps();
      e.completion_known = true;
      break;
    }
    case UopType::kBranch: {
      ++stats_.branches;
      bool correct = predictor_.PredictAndUpdate(u.pc, u.taken);
      if (!correct) {
        ++stats_.mispredicts;
        if (config_.block_on_mispredict_resolution) {
          fetch_blocked_on_seq_ = e.seq;
        } else {
          // Front-end refill bubble only; in-flight work keeps executing.
          fetch_stalled_until_ =
              std::max(fetch_stalled_until_,
                       now + config_.branch.mispredict_penalty_cycles *
                                 clock().period_ps());
        }
      }
      break;
    }
    case UopType::kAlu:
    case UopType::kNop:
      break;
  }

  rob_.push_back(std::move(e));
  ResolveCompletion(&rob_.back());
  ++next_seq_;
  pending_uop_.reset();
  return true;
}

void Core::DrainStore(uint64_t addr) {
  if (l1_->TryAccess(addr, /*is_write=*/true, nullptr)) {
    --outstanding_stores_;
    return;
  }
  pending_drains_.push_back(addr);
  if (!drain_retry_.scheduled()) {
    event_queue()->Schedule(event_queue()->Now() + clock().period_ps(),
                            &drain_retry_);
  }
}

void Core::RetryDrains() {
  // Each pending store gets one L1 attempt per cycle, as when each carried
  // its own retry closure.
  for (size_t i = pending_drains_.size(); i > 0; --i) {
    uint64_t addr = pending_drains_.front();
    pending_drains_.pop_front();
    if (l1_->TryAccess(addr, /*is_write=*/true, nullptr)) {
      --outstanding_stores_;
    } else {
      pending_drains_.push_back(addr);
    }
  }
  if (!pending_drains_.empty()) {
    event_queue()->Schedule(event_queue()->Now() + clock().period_ps(),
                            &drain_retry_);
  }
}

void Core::FinishIfDone(sim::Tick now) {
  if (stream_exhausted_ && !pending_uop_ && rob_.empty() &&
      outstanding_stores_ == 0 && stream_ != nullptr) {
    stream_ = nullptr;
    auto cb = std::move(on_done_);
    on_done_ = nullptr;
    if (cb) cb(now);
  }
}

bool Core::Tick() {
  if (stream_ == nullptr) return false;
  sim::Tick now = event_queue()->Now();
  ++stats_.cycles;

  // Retire stage.
  for (uint32_t r = 0; r < config_.retire_width && !rob_.empty(); ++r) {
    RobEntry& head = rob_.front();
    ResolveCompletion(&head);
    if (!head.completion_known || head.completion > now) break;
    stats_.max_retire_gap_ps =
        std::max(stats_.max_retire_gap_ps, now - last_retire_tick_);
    last_retire_tick_ = now;
    ring_seq_[head.seq % kRingSize] = head.seq;
    ring_completion_[head.seq % kRingSize] = head.completion;
    if (fetch_blocked_on_seq_ && *fetch_blocked_on_seq_ == head.seq) {
      fetch_blocked_on_seq_.reset();
      fetch_stalled_until_ =
          head.completion +
          config_.branch.mispredict_penalty_cycles * clock().period_ps();
    }
    ++stats_.uops_retired;
    rob_.pop_front();
  }

  // Dispatch stage.
  for (uint32_t d = 0; d < config_.issue_width; ++d) {
    if (!DispatchOne(now)) break;
  }

  FinishIfDone(now);
  return stream_ != nullptr;
}

}  // namespace ndp::cpu
